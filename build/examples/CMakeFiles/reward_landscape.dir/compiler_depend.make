# Empty compiler generated dependencies file for reward_landscape.
# This may be replaced when dependencies are built.
