file(REMOVE_RECURSE
  "CMakeFiles/reward_landscape.dir/reward_landscape.cpp.o"
  "CMakeFiles/reward_landscape.dir/reward_landscape.cpp.o.d"
  "reward_landscape"
  "reward_landscape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reward_landscape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
