file(REMOVE_RECURSE
  "CMakeFiles/drug_response_search.dir/drug_response_search.cpp.o"
  "CMakeFiles/drug_response_search.dir/drug_response_search.cpp.o.d"
  "drug_response_search"
  "drug_response_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drug_response_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
