# Empty dependencies file for drug_response_search.
# This may be replaced when dependencies are built.
