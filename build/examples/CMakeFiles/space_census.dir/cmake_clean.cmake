file(REMOVE_RECURSE
  "CMakeFiles/space_census.dir/space_census.cpp.o"
  "CMakeFiles/space_census.dir/space_census.cpp.o.d"
  "space_census"
  "space_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/space_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
