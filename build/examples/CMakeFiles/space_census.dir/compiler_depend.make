# Empty compiler generated dependencies file for space_census.
# This may be replaced when dependencies are built.
