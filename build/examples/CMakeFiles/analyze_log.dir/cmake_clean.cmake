file(REMOVE_RECURSE
  "CMakeFiles/analyze_log.dir/analyze_log.cpp.o"
  "CMakeFiles/analyze_log.dir/analyze_log.cpp.o.d"
  "analyze_log"
  "analyze_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
