# Empty compiler generated dependencies file for custom_space.
# This may be replaced when dependencies are built.
