file(REMOVE_RECURSE
  "CMakeFiles/custom_space.dir/custom_space.cpp.o"
  "CMakeFiles/custom_space.dir/custom_space.cpp.o.d"
  "custom_space"
  "custom_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
