# Empty compiler generated dependencies file for export_model.
# This may be replaced when dependencies are built.
