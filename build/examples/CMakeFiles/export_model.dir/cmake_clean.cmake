file(REMOVE_RECURSE
  "CMakeFiles/export_model.dir/export_model.cpp.o"
  "CMakeFiles/export_model.dir/export_model.cpp.o.d"
  "export_model"
  "export_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
