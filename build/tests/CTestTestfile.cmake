# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/nn_layers_test[1]_include.cmake")
include("/root/repo/build/tests/nn_gradcheck_test[1]_include.cmake")
include("/root/repo/build/tests/nn_graph_test[1]_include.cmake")
include("/root/repo/build/tests/nn_train_test[1]_include.cmake")
include("/root/repo/build/tests/lstm_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/space_test[1]_include.cmake")
include("/root/repo/build/tests/builder_test[1]_include.cmake")
include("/root/repo/build/tests/rl_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/presets_test[1]_include.cmake")
include("/root/repo/build/tests/result_io_test[1]_include.cmake")
include("/root/repo/build/tests/parameter_server_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/analytics_test[1]_include.cmake")
include("/root/repo/build/tests/space_property_test[1]_include.cmake")
include("/root/repo/build/tests/activation_property_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/arch_stats_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/graph_gradcheck_test[1]_include.cmake")
include("/root/repo/build/tests/utilization_shape_test[1]_include.cmake")
