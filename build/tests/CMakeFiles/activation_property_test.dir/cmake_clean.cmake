file(REMOVE_RECURSE
  "CMakeFiles/activation_property_test.dir/activation_property_test.cpp.o"
  "CMakeFiles/activation_property_test.dir/activation_property_test.cpp.o.d"
  "activation_property_test"
  "activation_property_test.pdb"
  "activation_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activation_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
