# Empty dependencies file for activation_property_test.
# This may be replaced when dependencies are built.
