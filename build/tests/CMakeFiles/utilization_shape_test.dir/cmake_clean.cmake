file(REMOVE_RECURSE
  "CMakeFiles/utilization_shape_test.dir/utilization_shape_test.cpp.o"
  "CMakeFiles/utilization_shape_test.dir/utilization_shape_test.cpp.o.d"
  "utilization_shape_test"
  "utilization_shape_test.pdb"
  "utilization_shape_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utilization_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
