# Empty dependencies file for utilization_shape_test.
# This may be replaced when dependencies are built.
