file(REMOVE_RECURSE
  "CMakeFiles/arch_stats_test.dir/arch_stats_test.cpp.o"
  "CMakeFiles/arch_stats_test.dir/arch_stats_test.cpp.o.d"
  "arch_stats_test"
  "arch_stats_test.pdb"
  "arch_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
