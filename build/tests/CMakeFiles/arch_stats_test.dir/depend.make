# Empty dependencies file for arch_stats_test.
# This may be replaced when dependencies are built.
