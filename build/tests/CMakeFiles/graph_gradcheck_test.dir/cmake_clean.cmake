file(REMOVE_RECURSE
  "CMakeFiles/graph_gradcheck_test.dir/graph_gradcheck_test.cpp.o"
  "CMakeFiles/graph_gradcheck_test.dir/graph_gradcheck_test.cpp.o.d"
  "graph_gradcheck_test"
  "graph_gradcheck_test.pdb"
  "graph_gradcheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_gradcheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
