
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn_train_test.cpp" "tests/CMakeFiles/nn_train_test.dir/nn_train_test.cpp.o" "gcc" "tests/CMakeFiles/nn_train_test.dir/nn_train_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analytics/CMakeFiles/ncnas_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/ncnas_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/ncnas_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/ncnas_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/space/CMakeFiles/ncnas_space.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ncnas_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ncnas_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ncnas_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
