# Empty dependencies file for parameter_server_test.
# This may be replaced when dependencies are built.
