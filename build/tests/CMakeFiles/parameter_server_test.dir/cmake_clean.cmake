file(REMOVE_RECURSE
  "CMakeFiles/parameter_server_test.dir/parameter_server_test.cpp.o"
  "CMakeFiles/parameter_server_test.dir/parameter_server_test.cpp.o.d"
  "parameter_server_test"
  "parameter_server_test.pdb"
  "parameter_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parameter_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
