file(REMOVE_RECURSE
  "CMakeFiles/space_property_test.dir/space_property_test.cpp.o"
  "CMakeFiles/space_property_test.dir/space_property_test.cpp.o.d"
  "space_property_test"
  "space_property_test.pdb"
  "space_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/space_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
