# Empty dependencies file for space_property_test.
# This may be replaced when dependencies are built.
