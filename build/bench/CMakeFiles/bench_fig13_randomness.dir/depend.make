# Empty dependencies file for bench_fig13_randomness.
# This may be replaced when dependencies are built.
