file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_randomness.dir/bench_fig13_randomness.cpp.o"
  "CMakeFiles/bench_fig13_randomness.dir/bench_fig13_randomness.cpp.o.d"
  "bench_fig13_randomness"
  "bench_fig13_randomness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_randomness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
