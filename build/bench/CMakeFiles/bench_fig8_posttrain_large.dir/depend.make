# Empty dependencies file for bench_fig8_posttrain_large.
# This may be replaced when dependencies are built.
