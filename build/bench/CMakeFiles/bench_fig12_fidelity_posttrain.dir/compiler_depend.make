# Empty compiler generated dependencies file for bench_fig12_fidelity_posttrain.
# This may be replaced when dependencies are built.
