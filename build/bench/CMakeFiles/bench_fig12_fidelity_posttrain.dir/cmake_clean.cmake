file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_fidelity_posttrain.dir/bench_fig12_fidelity_posttrain.cpp.o"
  "CMakeFiles/bench_fig12_fidelity_posttrain.dir/bench_fig12_fidelity_posttrain.cpp.o.d"
  "bench_fig12_fidelity_posttrain"
  "bench_fig12_fidelity_posttrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_fidelity_posttrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
