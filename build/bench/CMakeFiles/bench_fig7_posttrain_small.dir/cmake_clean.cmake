file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_posttrain_small.dir/bench_fig7_posttrain_small.cpp.o"
  "CMakeFiles/bench_fig7_posttrain_small.dir/bench_fig7_posttrain_small.cpp.o.d"
  "bench_fig7_posttrain_small"
  "bench_fig7_posttrain_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_posttrain_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
