# Empty dependencies file for bench_fig7_posttrain_small.
# This may be replaced when dependencies are built.
