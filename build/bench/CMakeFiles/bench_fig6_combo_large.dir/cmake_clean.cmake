file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_combo_large.dir/bench_fig6_combo_large.cpp.o"
  "CMakeFiles/bench_fig6_combo_large.dir/bench_fig6_combo_large.cpp.o.d"
  "bench_fig6_combo_large"
  "bench_fig6_combo_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_combo_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
