# Empty dependencies file for bench_fig10_posttrain_scaling.
# This may be replaced when dependencies are built.
