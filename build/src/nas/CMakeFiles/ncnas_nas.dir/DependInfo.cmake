
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nas/driver.cpp" "src/nas/CMakeFiles/ncnas_nas.dir/driver.cpp.o" "gcc" "src/nas/CMakeFiles/ncnas_nas.dir/driver.cpp.o.d"
  "/root/repo/src/nas/parameter_server.cpp" "src/nas/CMakeFiles/ncnas_nas.dir/parameter_server.cpp.o" "gcc" "src/nas/CMakeFiles/ncnas_nas.dir/parameter_server.cpp.o.d"
  "/root/repo/src/nas/result_io.cpp" "src/nas/CMakeFiles/ncnas_nas.dir/result_io.cpp.o" "gcc" "src/nas/CMakeFiles/ncnas_nas.dir/result_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rl/CMakeFiles/ncnas_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/ncnas_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/space/CMakeFiles/ncnas_space.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ncnas_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ncnas_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ncnas_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
