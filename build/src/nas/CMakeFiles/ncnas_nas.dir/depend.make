# Empty dependencies file for ncnas_nas.
# This may be replaced when dependencies are built.
