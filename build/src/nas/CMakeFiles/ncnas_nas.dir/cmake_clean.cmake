file(REMOVE_RECURSE
  "CMakeFiles/ncnas_nas.dir/driver.cpp.o"
  "CMakeFiles/ncnas_nas.dir/driver.cpp.o.d"
  "CMakeFiles/ncnas_nas.dir/parameter_server.cpp.o"
  "CMakeFiles/ncnas_nas.dir/parameter_server.cpp.o.d"
  "CMakeFiles/ncnas_nas.dir/result_io.cpp.o"
  "CMakeFiles/ncnas_nas.dir/result_io.cpp.o.d"
  "libncnas_nas.a"
  "libncnas_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncnas_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
