file(REMOVE_RECURSE
  "libncnas_nas.a"
)
