# Empty compiler generated dependencies file for ncnas_tensor.
# This may be replaced when dependencies are built.
