file(REMOVE_RECURSE
  "libncnas_tensor.a"
)
