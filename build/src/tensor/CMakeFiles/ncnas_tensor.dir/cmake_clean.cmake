file(REMOVE_RECURSE
  "CMakeFiles/ncnas_tensor.dir/ops.cpp.o"
  "CMakeFiles/ncnas_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/ncnas_tensor.dir/rng.cpp.o"
  "CMakeFiles/ncnas_tensor.dir/rng.cpp.o.d"
  "CMakeFiles/ncnas_tensor.dir/tensor.cpp.o"
  "CMakeFiles/ncnas_tensor.dir/tensor.cpp.o.d"
  "CMakeFiles/ncnas_tensor.dir/thread_pool.cpp.o"
  "CMakeFiles/ncnas_tensor.dir/thread_pool.cpp.o.d"
  "libncnas_tensor.a"
  "libncnas_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncnas_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
