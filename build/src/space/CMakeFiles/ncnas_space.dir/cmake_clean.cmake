file(REMOVE_RECURSE
  "CMakeFiles/ncnas_space.dir/builder.cpp.o"
  "CMakeFiles/ncnas_space.dir/builder.cpp.o.d"
  "CMakeFiles/ncnas_space.dir/op.cpp.o"
  "CMakeFiles/ncnas_space.dir/op.cpp.o.d"
  "CMakeFiles/ncnas_space.dir/search_space.cpp.o"
  "CMakeFiles/ncnas_space.dir/search_space.cpp.o.d"
  "CMakeFiles/ncnas_space.dir/spaces.cpp.o"
  "CMakeFiles/ncnas_space.dir/spaces.cpp.o.d"
  "libncnas_space.a"
  "libncnas_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncnas_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
