# Empty dependencies file for ncnas_space.
# This may be replaced when dependencies are built.
