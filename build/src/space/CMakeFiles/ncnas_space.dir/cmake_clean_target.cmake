file(REMOVE_RECURSE
  "libncnas_space.a"
)
