
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/space/builder.cpp" "src/space/CMakeFiles/ncnas_space.dir/builder.cpp.o" "gcc" "src/space/CMakeFiles/ncnas_space.dir/builder.cpp.o.d"
  "/root/repo/src/space/op.cpp" "src/space/CMakeFiles/ncnas_space.dir/op.cpp.o" "gcc" "src/space/CMakeFiles/ncnas_space.dir/op.cpp.o.d"
  "/root/repo/src/space/search_space.cpp" "src/space/CMakeFiles/ncnas_space.dir/search_space.cpp.o" "gcc" "src/space/CMakeFiles/ncnas_space.dir/search_space.cpp.o.d"
  "/root/repo/src/space/spaces.cpp" "src/space/CMakeFiles/ncnas_space.dir/spaces.cpp.o" "gcc" "src/space/CMakeFiles/ncnas_space.dir/spaces.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/ncnas_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ncnas_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
