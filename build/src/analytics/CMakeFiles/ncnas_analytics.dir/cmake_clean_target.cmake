file(REMOVE_RECURSE
  "libncnas_analytics.a"
)
