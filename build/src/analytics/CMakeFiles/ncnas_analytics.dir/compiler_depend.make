# Empty compiler generated dependencies file for ncnas_analytics.
# This may be replaced when dependencies are built.
