file(REMOVE_RECURSE
  "CMakeFiles/ncnas_analytics.dir/arch_stats.cpp.o"
  "CMakeFiles/ncnas_analytics.dir/arch_stats.cpp.o.d"
  "CMakeFiles/ncnas_analytics.dir/csv.cpp.o"
  "CMakeFiles/ncnas_analytics.dir/csv.cpp.o.d"
  "CMakeFiles/ncnas_analytics.dir/posttrain.cpp.o"
  "CMakeFiles/ncnas_analytics.dir/posttrain.cpp.o.d"
  "CMakeFiles/ncnas_analytics.dir/report.cpp.o"
  "CMakeFiles/ncnas_analytics.dir/report.cpp.o.d"
  "CMakeFiles/ncnas_analytics.dir/series.cpp.o"
  "CMakeFiles/ncnas_analytics.dir/series.cpp.o.d"
  "libncnas_analytics.a"
  "libncnas_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncnas_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
