file(REMOVE_RECURSE
  "libncnas_rl.a"
)
