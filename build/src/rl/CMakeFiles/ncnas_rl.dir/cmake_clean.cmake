file(REMOVE_RECURSE
  "CMakeFiles/ncnas_rl.dir/controller.cpp.o"
  "CMakeFiles/ncnas_rl.dir/controller.cpp.o.d"
  "libncnas_rl.a"
  "libncnas_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncnas_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
