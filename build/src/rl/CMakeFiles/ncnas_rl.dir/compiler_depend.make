# Empty compiler generated dependencies file for ncnas_rl.
# This may be replaced when dependencies are built.
