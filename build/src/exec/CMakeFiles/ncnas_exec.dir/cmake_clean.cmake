file(REMOVE_RECURSE
  "CMakeFiles/ncnas_exec.dir/cost_model.cpp.o"
  "CMakeFiles/ncnas_exec.dir/cost_model.cpp.o.d"
  "CMakeFiles/ncnas_exec.dir/evaluator.cpp.o"
  "CMakeFiles/ncnas_exec.dir/evaluator.cpp.o.d"
  "CMakeFiles/ncnas_exec.dir/presets.cpp.o"
  "CMakeFiles/ncnas_exec.dir/presets.cpp.o.d"
  "CMakeFiles/ncnas_exec.dir/utilization.cpp.o"
  "CMakeFiles/ncnas_exec.dir/utilization.cpp.o.d"
  "libncnas_exec.a"
  "libncnas_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncnas_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
