# Empty compiler generated dependencies file for ncnas_exec.
# This may be replaced when dependencies are built.
