
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/cost_model.cpp" "src/exec/CMakeFiles/ncnas_exec.dir/cost_model.cpp.o" "gcc" "src/exec/CMakeFiles/ncnas_exec.dir/cost_model.cpp.o.d"
  "/root/repo/src/exec/evaluator.cpp" "src/exec/CMakeFiles/ncnas_exec.dir/evaluator.cpp.o" "gcc" "src/exec/CMakeFiles/ncnas_exec.dir/evaluator.cpp.o.d"
  "/root/repo/src/exec/presets.cpp" "src/exec/CMakeFiles/ncnas_exec.dir/presets.cpp.o" "gcc" "src/exec/CMakeFiles/ncnas_exec.dir/presets.cpp.o.d"
  "/root/repo/src/exec/utilization.cpp" "src/exec/CMakeFiles/ncnas_exec.dir/utilization.cpp.o" "gcc" "src/exec/CMakeFiles/ncnas_exec.dir/utilization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/space/CMakeFiles/ncnas_space.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ncnas_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ncnas_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ncnas_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
