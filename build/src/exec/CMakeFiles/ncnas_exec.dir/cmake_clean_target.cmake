file(REMOVE_RECURSE
  "libncnas_exec.a"
)
