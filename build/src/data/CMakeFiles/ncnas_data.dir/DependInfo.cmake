
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/baselines.cpp" "src/data/CMakeFiles/ncnas_data.dir/baselines.cpp.o" "gcc" "src/data/CMakeFiles/ncnas_data.dir/baselines.cpp.o.d"
  "/root/repo/src/data/combo.cpp" "src/data/CMakeFiles/ncnas_data.dir/combo.cpp.o" "gcc" "src/data/CMakeFiles/ncnas_data.dir/combo.cpp.o.d"
  "/root/repo/src/data/nt3.cpp" "src/data/CMakeFiles/ncnas_data.dir/nt3.cpp.o" "gcc" "src/data/CMakeFiles/ncnas_data.dir/nt3.cpp.o.d"
  "/root/repo/src/data/synth.cpp" "src/data/CMakeFiles/ncnas_data.dir/synth.cpp.o" "gcc" "src/data/CMakeFiles/ncnas_data.dir/synth.cpp.o.d"
  "/root/repo/src/data/uno.cpp" "src/data/CMakeFiles/ncnas_data.dir/uno.cpp.o" "gcc" "src/data/CMakeFiles/ncnas_data.dir/uno.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/ncnas_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ncnas_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
