file(REMOVE_RECURSE
  "libncnas_data.a"
)
