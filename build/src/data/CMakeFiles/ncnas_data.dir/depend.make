# Empty dependencies file for ncnas_data.
# This may be replaced when dependencies are built.
