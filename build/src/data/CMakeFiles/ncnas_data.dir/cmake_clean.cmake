file(REMOVE_RECURSE
  "CMakeFiles/ncnas_data.dir/baselines.cpp.o"
  "CMakeFiles/ncnas_data.dir/baselines.cpp.o.d"
  "CMakeFiles/ncnas_data.dir/combo.cpp.o"
  "CMakeFiles/ncnas_data.dir/combo.cpp.o.d"
  "CMakeFiles/ncnas_data.dir/nt3.cpp.o"
  "CMakeFiles/ncnas_data.dir/nt3.cpp.o.d"
  "CMakeFiles/ncnas_data.dir/synth.cpp.o"
  "CMakeFiles/ncnas_data.dir/synth.cpp.o.d"
  "CMakeFiles/ncnas_data.dir/uno.cpp.o"
  "CMakeFiles/ncnas_data.dir/uno.cpp.o.d"
  "libncnas_data.a"
  "libncnas_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncnas_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
