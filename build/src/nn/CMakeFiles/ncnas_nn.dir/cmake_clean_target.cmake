file(REMOVE_RECURSE
  "libncnas_nn.a"
)
