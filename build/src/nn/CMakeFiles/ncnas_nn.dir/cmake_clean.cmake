file(REMOVE_RECURSE
  "CMakeFiles/ncnas_nn.dir/graph.cpp.o"
  "CMakeFiles/ncnas_nn.dir/graph.cpp.o.d"
  "CMakeFiles/ncnas_nn.dir/init.cpp.o"
  "CMakeFiles/ncnas_nn.dir/init.cpp.o.d"
  "CMakeFiles/ncnas_nn.dir/layers.cpp.o"
  "CMakeFiles/ncnas_nn.dir/layers.cpp.o.d"
  "CMakeFiles/ncnas_nn.dir/loss.cpp.o"
  "CMakeFiles/ncnas_nn.dir/loss.cpp.o.d"
  "CMakeFiles/ncnas_nn.dir/lstm.cpp.o"
  "CMakeFiles/ncnas_nn.dir/lstm.cpp.o.d"
  "CMakeFiles/ncnas_nn.dir/metrics.cpp.o"
  "CMakeFiles/ncnas_nn.dir/metrics.cpp.o.d"
  "CMakeFiles/ncnas_nn.dir/optimizer.cpp.o"
  "CMakeFiles/ncnas_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/ncnas_nn.dir/parameter.cpp.o"
  "CMakeFiles/ncnas_nn.dir/parameter.cpp.o.d"
  "CMakeFiles/ncnas_nn.dir/serialize.cpp.o"
  "CMakeFiles/ncnas_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/ncnas_nn.dir/trainer.cpp.o"
  "CMakeFiles/ncnas_nn.dir/trainer.cpp.o.d"
  "libncnas_nn.a"
  "libncnas_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncnas_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
