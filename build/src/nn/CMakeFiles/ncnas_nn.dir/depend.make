# Empty dependencies file for ncnas_nn.
# This may be replaced when dependencies are built.
