
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/graph.cpp" "src/nn/CMakeFiles/ncnas_nn.dir/graph.cpp.o" "gcc" "src/nn/CMakeFiles/ncnas_nn.dir/graph.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/nn/CMakeFiles/ncnas_nn.dir/init.cpp.o" "gcc" "src/nn/CMakeFiles/ncnas_nn.dir/init.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/ncnas_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/ncnas_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/ncnas_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/ncnas_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/nn/CMakeFiles/ncnas_nn.dir/lstm.cpp.o" "gcc" "src/nn/CMakeFiles/ncnas_nn.dir/lstm.cpp.o.d"
  "/root/repo/src/nn/metrics.cpp" "src/nn/CMakeFiles/ncnas_nn.dir/metrics.cpp.o" "gcc" "src/nn/CMakeFiles/ncnas_nn.dir/metrics.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/ncnas_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/ncnas_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/parameter.cpp" "src/nn/CMakeFiles/ncnas_nn.dir/parameter.cpp.o" "gcc" "src/nn/CMakeFiles/ncnas_nn.dir/parameter.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/ncnas_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/ncnas_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/ncnas_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/ncnas_nn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/ncnas_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
