// Table 1 — summary of the best A3C-discovered architecture per benchmark
// against the manually designed network: trainable parameters, training time
// (full post-training), and R2 / ACC.
//
// Paper shape to reproduce: Combo ~7x fewer parameters at equal-or-better
// R2; Uno better on ALL three axes (~11x fewer parameters, higher R2); NT3
// two-to-three orders of magnitude fewer parameters at equal accuracy.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ncnas;
  const bench::Args args = bench::Args::parse(argc, argv, /*default_minutes=*/120.0);
  tensor::ThreadPool pool;

  std::cout << "# Table 1: best A3C architectures vs manually designed networks\n"
            << "# shares the Figure 4 A3C runs via nas_logs/\n\n";

  analytics::Table table({"benchmark", "model", "trainable params", "training time (s)",
                          "R2 or ACC"});
  for (const char* space_name : {"combo-small", "uno-small", "nt3-small"}) {
    const nas::SearchConfig cfg =
        bench::paper_config(space_name, nas::SearchStrategy::kA3C, args.minutes, args.seed);
    const nas::SearchResult res = bench::run_search(space_name, cfg, pool);
    const space::SearchSpace sp = space::space_by_name(space_name);
    const data::Dataset ds = bench::dataset_for_space(space_name);

    analytics::PostTrainOptions opts;  // 20 epochs, full data
    const analytics::PostTrainResult baseline = analytics::post_train_baseline(ds, opts);

    // The paper picks the best architecture by post-trained metric among the
    // top candidates; post-train a small pool and keep the best.
    const auto top = res.top_k(5);
    const auto models = analytics::post_train_many(sp, ds, top, opts, &pool);
    const analytics::PostTrainResult* best = nullptr;
    for (const auto& m : models) {
      if (best == nullptr || m.final_metric > best->final_metric) best = &m;
    }
    const std::string name = bench::dataset_name_of(space_name);
    table.add_row({name, "manually designed", std::to_string(baseline.params),
                   analytics::fmt(baseline.train_seconds, 2),
                   analytics::fmt(baseline.final_metric)});
    if (best != nullptr) {
      table.add_row({name, "A3C-best", std::to_string(best->params),
                     analytics::fmt(best->train_seconds, 2),
                     analytics::fmt(best->final_metric)});
      std::cout << "best " << name << " architecture:\n" << sp.describe(best->arch) << "\n";
    }
  }
  table.print(std::cout);
  return 0;
}
