// Figure 10 — post-training of the top-50 architectures from the AGENT-scaled
// A3C runs (paper's 512- and 1,024-node experiments) on Combo, large space.
//
// Paper shape to reproduce: compared with the base layout (Fig. 8a), the
// scaled runs find architectures with better accuracy, fewer parameters, and
// shorter training time — more agents explore more of the space.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ncnas;
  const bench::Args args = bench::Args::parse(argc, argv, /*default_minutes=*/25.0);
  tensor::ThreadPool pool;

  std::cout << "# Figure 10: post-training after agent scaling (combo-large)\n"
            << "# shares the Figure 9 agent-scaled runs via nas_logs/\n";

  struct Layout {
    const char* heading;
    nas::ClusterConfig cluster;
  };
  const Layout layouts[] = {
      {"Fig 10a: 2Sa (paper 512 nodes, agent scaling)", bench::cluster_2s_agent()},
      {"Fig 10b: 4Sa (paper 1024 nodes, agent scaling)", bench::cluster_4s_agent()},
  };
  for (const Layout& layout : layouts) {
    const nas::SearchConfig cfg =
        bench::paper_config("combo-large", nas::SearchStrategy::kA3C, args.minutes,
                            args.seed, -1.0, layout.cluster);
    const nas::SearchResult res = bench::run_search("combo-large", cfg, pool);
    (void)bench::post_train_report("combo-large", res, /*k=*/15, pool, layout.heading);
  }
  return 0;
}
