// Figure 13 — impact of A3C's randomness: 10 replications on Combo (small
// space), reporting 10/50/90 % quantile bands of the best-so-far trajectory.
//
// Paper shape to reproduce: visible spread early in the search that narrows
// as the search progresses; by the end all quantiles sit near the same
// reward, i.e. the stochasticity does not change where A3C ends up.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ncnas;
  const bench::Args args = bench::Args::parse(argc, argv, /*default_minutes=*/40.0);
  constexpr int kReplications = 10;
  tensor::ThreadPool pool;

  std::cout << "# Figure 13: A3C trajectory quantiles over " << kReplications
            << " replications (combo-small)\n\n";

  std::vector<std::vector<double>> runs;
  for (int rep = 0; rep < kReplications; ++rep) {
    const nas::SearchConfig cfg =
        bench::paper_config("combo-small", nas::SearchStrategy::kA3C, args.minutes,
                            args.seed + static_cast<std::uint64_t>(rep));
    const nas::SearchResult res = bench::run_search("combo-small", cfg, pool);
    runs.push_back(analytics::resample_mean(bench::reward_stream(res), args.minutes * 60.0,
                                            10.0 * 60.0, -1.0));
    bench::print_run_summary("rep" + std::to_string(rep), res);
  }

  const analytics::QuantileBands bands = analytics::quantile_bands(runs);
  std::cout << "\nt(min)\tq10\tq50\tq90\tspread\n";
  for (std::size_t b = 0; b < bands.q50.size(); ++b) {
    std::cout << analytics::fmt((b + 1) * 10.0, 0) << '\t' << analytics::fmt(bands.q10[b])
              << '\t' << analytics::fmt(bands.q50[b]) << '\t' << analytics::fmt(bands.q90[b])
              << '\t' << analytics::fmt(bands.q90[b] - bands.q10[b]) << '\n';
  }
  analytics::print_sparkline(std::cout, "q50", bands.q50, -1.0, 1.0);
  return 0;
}
