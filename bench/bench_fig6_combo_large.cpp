// Figure 6 — Combo with the LARGE search space on the base cluster layout:
// (a) search trajectory and (b) utilization for A3C (with A2C and RDM as the
// comparison runs, as in the paper's text).
//
// Paper shape to reproduce: A3C finds higher rewards faster than A2C/RDM;
// utilization tracks RDM (~0.75) until the cache effect erodes it, but the
// search does NOT converge/stop early in the large space.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ncnas;
  const bench::Args args = bench::Args::parse(argc, argv, /*default_minutes=*/60.0);
  tensor::ThreadPool pool;

  const nas::SearchStrategy strategies[] = {nas::SearchStrategy::kA3C,
                                            nas::SearchStrategy::kA2C,
                                            nas::SearchStrategy::kRandom};
  std::cout << "# Figure 6: Combo, large search space (|S| ~ 1e46)\n\n";
  for (nas::SearchStrategy strategy : strategies) {
    const nas::SearchConfig cfg = bench::paper_config(
        "combo-large", strategy, args.minutes, args.seed, -1.0, bench::cluster_large_space());
    const nas::SearchResult res = bench::run_search("combo-large", cfg, pool);
    const std::string label = std::string("combo-large/") + nas::strategy_name(strategy);
    bench::print_run_summary(label, res);
    std::cout << "-- (a) trajectory\n";
    bench::print_trajectory(label, res, args.minutes, 10.0, -1.0);
    std::cout << "-- (b) utilization (mean "
              << analytics::fmt(res.utilization.empty()
                                    ? 0.0
                                    : std::accumulate(res.utilization.begin(),
                                                      res.utilization.end(), 0.0) /
                                          static_cast<double>(res.utilization.size()))
              << ")\n";
    bench::print_utilization(label + "/util", res, 10.0);
    std::cout << "\n";
  }
  return 0;
}
