// Extension — the paper's future-work comparison: RL-based NAS (A3C) versus
// an "extremely scalable evolutionary approach" (island-model aging
// evolution, MENNDL-style) versus random search, on the identical evaluation
// pipeline and cluster layout. Also demonstrates the custom multi-objective
// reward hook on the evolution strategy.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ncnas;
  const bench::Args args = bench::Args::parse(argc, argv, /*default_minutes=*/60.0);
  tensor::ThreadPool pool;

  std::cout << "# Extension: A3C vs aging evolution vs RDM (nt3-small)\n\n";
  const nas::SearchStrategy strategies[] = {nas::SearchStrategy::kA3C,
                                            nas::SearchStrategy::kEvolution,
                                            nas::SearchStrategy::kRandom};
  analytics::Table table({"strategy", "late mean ACC", "best ACC", "unique", "evals"});
  for (nas::SearchStrategy strategy : strategies) {
    nas::SearchConfig cfg =
        bench::paper_config("nt3-small", strategy, args.minutes, args.seed);
    cfg.evolution = {.population = 48, .tournament = 8};
    const nas::SearchResult res = bench::run_search("nt3-small", cfg, pool);
    const double t_late = 2.0 * res.end_time / 3.0;
    double late = 0.0;
    std::size_t n_late = 0;
    float best = 0.0f;
    for (const auto& e : res.evals) {
      best = std::max(best, e.reward);
      if (e.time >= t_late) {
        late += e.reward;
        ++n_late;
      }
    }
    table.add_row({nas::strategy_name(strategy),
                   analytics::fmt(n_late ? late / n_late : 0.0), analytics::fmt(best),
                   std::to_string(res.unique_archs), std::to_string(res.evals.size())});
    const auto series = analytics::resample_mean(bench::reward_stream(res),
                                                 args.minutes * 60.0, 10.0 * 60.0, 0.0);
    analytics::print_sparkline(std::cout, std::string(nas::strategy_name(strategy)) + " ",
                               series, 0.0, 1.0);
  }
  std::cout << "\n";
  table.print(std::cout);
  return 0;
}
