// Checkpoint overhead proof: the same small search scenario the telemetry
// and fault overhead benches use, run (a) with SearchConfig::checkpoint null
// — the seed driver's code path, which snapshotting must leave untouched —
// and (b) with an active checkpoint policy at two cadences, to price the
// serialize + hash + atomic-write cycle itself. The null path has no timer,
// no writer, and no serialization: it must match the no-checkpoint baseline
// (and produce bit-identical results). Compare the counters directly:
//
//   ./build/bench/bench_checkpoint_overhead --benchmark_repetitions=3
#include <benchmark/benchmark.h>

#include <filesystem>

#include "ncnas/ckpt/checkpoint.hpp"
#include "ncnas/nas/driver.hpp"
#include "ncnas/space/spaces.hpp"

namespace {

using namespace ncnas;

const data::Dataset& small_dataset() {
  static const data::Dataset ds = [] {
    data::Nt3Dims dims;
    dims.train = 64;
    dims.valid = 32;
    dims.length = 64;
    dims.motif = 6;
    return data::make_nt3(5, dims);
  }();
  return ds;
}

nas::SearchConfig small_search_config() {
  nas::SearchConfig cfg;
  cfg.strategy = nas::SearchStrategy::kA3C;
  cfg.cluster = {.num_agents = 3, .workers_per_agent = 4};
  cfg.wall_time_seconds = 900.0;
  cfg.fidelity = {.epochs = 1, .subset_fraction = 1.0};
  cfg.cost = {.startup_seconds = 20.0, .seconds_per_megaunit = 1.0, .timeout_seconds = 600.0};
  cfg.seed = 11;
  return cfg;
}

std::string scratch_dir(const char* name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ncnas_bench_ckpt" / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

void BM_SearchRun_NoCheckpoint(benchmark::State& state) {
  const space::SearchSpace sp = space::nt3_small_space();
  const data::Dataset& ds = small_dataset();
  const nas::SearchConfig cfg = small_search_config();
  std::size_t evals = 0;
  for (auto _ : state) {
    nas::SearchResult res = nas::SearchDriver(sp, ds, cfg).run();
    evals += res.evals.size();
    benchmark::DoNotOptimize(res.end_time);
  }
  state.counters["evals"] =
      benchmark::Counter(static_cast<double>(evals), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_SearchRun_NoCheckpoint)->Unit(benchmark::kMillisecond);

// Active policy; the Arg is the snapshot cadence in virtual seconds. 150 s
// over a 900 s search is an aggressively tight cadence (5 snapshots); 450 s
// is the proportional equivalent of the recommended 30-min interval on the
// paper's 6-hour allocations (1 snapshot mid-run + 1 at the end boundary).
void BM_SearchRun_Checkpointed(benchmark::State& state) {
  const space::SearchSpace sp = space::nt3_small_space();
  const data::Dataset& ds = small_dataset();
  ckpt::CheckpointConfig ckpt_cfg;
  ckpt_cfg.directory = scratch_dir(std::to_string(state.range(0)).c_str());
  ckpt_cfg.interval_seconds = static_cast<double>(state.range(0));
  nas::SearchConfig cfg = small_search_config();
  cfg.checkpoint = &ckpt_cfg;
  std::size_t evals = 0, snapshots = 0;
  for (auto _ : state) {
    nas::SearchResult res = nas::SearchDriver(sp, ds, cfg).run();
    evals += res.evals.size();
    snapshots += res.checkpoints_written;
    benchmark::DoNotOptimize(res.end_time);
  }
  state.counters["evals"] =
      benchmark::Counter(static_cast<double>(evals), benchmark::Counter::kAvgIterations);
  state.counters["snapshots"] =
      benchmark::Counter(static_cast<double>(snapshots), benchmark::Counter::kAvgIterations);
  std::filesystem::remove_all(ckpt_cfg.directory);
}
BENCHMARK(BM_SearchRun_Checkpointed)->Arg(450)->Arg(150)->Unit(benchmark::kMillisecond);

// The snapshot write path in isolation: serialize-free, prices only the
// FNV-1a hash + temp-file write + rename of a payload of Arg kilobytes
// (driver payloads for the small scenario are in the tens of kilobytes).
void BM_SnapshotWrite(benchmark::State& state) {
  const std::string dir = scratch_dir("write");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/snap-000001.ckpt";
  ckpt::SnapshotHeader header;
  header.fingerprint = "bench|a3c|3x4";
  header.space_name = "nt3-small";
  header.ordinal = 1;
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(state.range(0)) * 1024);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
  }
  for (auto _ : state) {
    ckpt::write_snapshot(path, header, payload);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_SnapshotWrite)->Arg(16)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

}  // namespace
