// bench_fidelity_ladder — multi-fidelity throughput proof: successive halving
// with weight-inheritance warm starts vs the flat full-fidelity evaluator.
//
//   bench_fidelity_ladder [--json PATH] [--archs N] [--no-gate]
//
// One candidate pool sampled from the small Combo space is evaluated twice:
//
//   flat     every candidate trains the full `top` epochs from scratch
//   ladder   geometric 3-rung ladder (epochs top/eta², top/eta, top;
//            eta = 4), warm starts paying only the delta epochs per rung
//
// Both paths are fully deterministic (seeded sampling, seeded training, a
// jittered-but-keyed cost model), so every number in the JSON reproduces
// bit-for-bit and perf_diff against the checked-in BENCH_fidelity.json is an
// exact comparison, not a noisy one.
//
// Gates (disable with --no-gate):
//   throughput  the ladder must evaluate >= 5x more architectures per unit
//               of *simulated* train time (the cost model's seconds — the
//               resource the paper's scheduler meters) than the flat path
//   quality     the ladder's final top-k mean reward (k = top-rung
//               survivors) must be equal or better than the flat top-k
//
// The metric column is named "gflops" because perf_diff reads exactly that
// field as its higher-is-better measure; here the value is architectures
// evaluated per kilosecond of simulated train time. Records are ordered
// deterministically and `speedup_vs_ref` is pinned to 1.0 so reruns diff
// cleanly.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ncnas/exec/evaluator.hpp"
#include "ncnas/exec/fidelity_ladder.hpp"
#include "ncnas/space/spaces.hpp"
#include "ncnas/tensor/rng.hpp"
#include "ncnas/tensor/thread_pool.hpp"

namespace {

using ncnas::exec::CostModel;
using ncnas::exec::FidelityConfig;

constexpr std::uint64_t kSeed = 2026;

/// Mean of the k largest rewards — the "did the search surface good
/// architectures" signal both paths are scored on.
float top_k_mean(std::vector<float> rewards, std::size_t k) {
  k = std::min(k, rewards.size());
  if (k == 0) return 0.0f;
  std::partial_sort(rewards.begin(), rewards.begin() + static_cast<std::ptrdiff_t>(k),
                    rewards.end(), std::greater<float>());
  double sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) sum += rewards[i];
  return static_cast<float>(sum / static_cast<double>(k));
}

struct Record {
  std::string op;
  std::size_t size = 0;
  std::string config;
  double value = 0.0;  ///< archs per simulated kilosecond; emitted as "gflops"
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_fidelity.json";
  std::size_t n_archs = 48;
  bool gate = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--archs" && i + 1 < argc) {
      n_archs = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--no-gate") {
      gate = false;
    } else {
      std::cerr << "usage: bench_fidelity_ladder [--json PATH] [--archs N] [--no-gate]\n";
      return 2;
    }
  }

  // Small Combo space on a dimensionally reduced Combo dataset: real
  // trainings, milliseconds each, rewards informative enough to rank.
  const ncnas::space::SearchSpace space = ncnas::space::combo_small_space();
  ncnas::data::ComboDims dims;
  dims.train = 256;
  dims.valid = 96;
  dims.expression = 32;
  dims.descriptors = 48;
  dims.latent = 8;
  const ncnas::data::Dataset ds = ncnas::data::make_combo(7, dims);

  FidelityConfig top;
  top.epochs = 12;
  // Startup is small relative to an epoch here, as on the paper's cluster
  // where training dominates job launch; the timeout never fires so both
  // paths pay for every candidate in full.
  CostModel cost;
  cost.startup_seconds = 1.0;
  cost.seconds_per_megaunit = 1.0;
  cost.timeout_seconds = 1e9;

  // Geometric epochs ladder with sharper low-rung optimization: the cost
  // model meters samples x epochs, so smaller batches (more optimizer steps
  // per epoch) buy ranking fidelity at the cheap rungs for free — simulated
  // cost is identical, only the rank correlation with the top rung improves.
  ncnas::exec::LadderConfig ladder_cfg = ncnas::exec::make_geometric_ladder(top, 3, 4);
  ladder_cfg.rungs[0].batch_size = 8;
  ladder_cfg.rungs[0].learning_rate = 0.002f;
  ladder_cfg.rungs[1].batch_size = 16;

  ncnas::tensor::Rng rng(kSeed);
  std::vector<ncnas::space::ArchEncoding> archs;
  archs.reserve(n_archs);
  for (std::size_t i = 0; i < n_archs; ++i) archs.push_back(space.random_arch(rng));

  ncnas::tensor::ThreadPool pool;

  // ---- flat: everyone trains `top.epochs` from scratch ---------------------
  const ncnas::exec::TrainingEvaluator flat(space, ds, top, cost);
  std::vector<float> flat_rewards(n_archs);
  std::vector<double> flat_secs(n_archs);
  {
    std::vector<ncnas::exec::EvalResult> results(n_archs);
    ncnas::tensor::parallel_for(pool, n_archs, [&](std::size_t i) {
      results[i] = flat.evaluate(archs[i], kSeed + 1);
    });
    for (std::size_t i = 0; i < n_archs; ++i) {
      flat_rewards[i] = results[i].reward;
      flat_secs[i] = results[i].sim_duration;
    }
  }

  // ---- ladder: successive halving with warm starts -------------------------
  const ncnas::exec::FidelityLadder ladder(space, ds, ladder_cfg, cost);
  std::vector<ncnas::exec::LadderRungStats> rung_stats;
  const std::vector<ncnas::exec::LadderOutcome> outcomes =
      ladder.evaluate_batch(archs, kSeed + 1, &rung_stats, &pool);

  double flat_total_s = 0.0;
  for (const double s : flat_secs) flat_total_s += s;
  double ladder_total_s = 0.0;
  std::vector<float> ladder_rewards(n_archs);
  for (std::size_t i = 0; i < n_archs; ++i) {
    // sim_duration accumulates across every rung the candidate climbed, so
    // summing the outcomes is the exact simulated cost of the whole ladder.
    ladder_total_s += outcomes[i].result.sim_duration;
    ladder_rewards[i] = outcomes[i].result.reward;
  }

  const double flat_throughput = static_cast<double>(n_archs) / (flat_total_s / 1e3);
  const double ladder_throughput = static_cast<double>(n_archs) / (ladder_total_s / 1e3);
  const double speedup = flat_total_s / ladder_total_s;

  const std::size_t k = rung_stats.empty() ? 1 : rung_stats.back().candidates;
  const float flat_topk = top_k_mean(flat_rewards, k);
  const float ladder_topk = top_k_mean(ladder_rewards, k);

  std::cout << "candidates: " << n_archs << "   ladder: " << ladder_cfg.fingerprint() << "\n";
  std::cout << "rung  candidates  survivors  trainings  warm\n";
  for (const ncnas::exec::LadderRungStats& rs : rung_stats) {
    std::cout << std::left << std::setw(6) << rs.rung << std::setw(12) << rs.candidates
              << std::setw(11) << rs.survivors << std::setw(11) << rs.trainings << rs.warm_starts
              << "\n";
  }
  std::cout << std::fixed << std::setprecision(3);
  std::cout << "flat   : " << flat_total_s << " sim s  (" << flat_throughput << " archs/ks)  top-"
            << k << " mean reward " << flat_topk << "\n";
  std::cout << "ladder : " << ladder_total_s << " sim s  (" << ladder_throughput
            << " archs/ks)  top-" << k << " mean reward " << ladder_topk << "\n";
  std::cout << "archs per unit simulated train time: " << speedup << "x the flat evaluator\n";

  std::vector<Record> records;
  records.push_back({"fidelity_eval", n_archs, "flat", flat_throughput});
  records.push_back({"fidelity_eval", n_archs, "ladder", ladder_throughput});
  records.push_back({"fidelity_speedup", n_archs, "ladder_vs_flat", speedup});
  records.push_back({"fidelity_topk_reward", k, "flat", static_cast<double>(flat_topk)});
  records.push_back({"fidelity_topk_reward", k, "ladder", static_cast<double>(ladder_topk)});

  std::stable_sort(records.begin(), records.end(), [](const Record& a, const Record& b) {
    if (a.op != b.op) return a.op < b.op;
    if (a.size != b.size) return a.size < b.size;
    return a.config < b.config;
  });

  std::ostringstream json;
  json << "{\n  \"schema_version\": 1,\n  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    json << "    {\"op\": \"" << r.op << "\", \"size\": " << r.size << ", \"config\": \""
         << r.config << "\", \"threads\": 1, \"gflops\": " << std::fixed << std::setprecision(3)
         << r.value << ", \"speedup_vs_ref\": 1.000}";
    json << (i + 1 < records.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";
  std::ofstream out(json_path);
  out << json.str();
  if (!out) {
    std::cerr << "failed to write " << json_path << "\n";
    return 2;
  }
  std::cout << "wrote " << json_path << "\n";

  if (gate) {
    if (speedup < 5.0) {
      std::cerr << "FAIL: ladder throughput advantage " << speedup << "x < 5x\n";
      return 1;
    }
    if (ladder_topk < flat_topk) {
      std::cerr << "FAIL: ladder top-" << k << " reward " << ladder_topk
                << " below flat " << flat_topk << "\n";
      return 1;
    }
    std::cout << "PASS: >=5x throughput at equal-or-better top-" << k << " reward\n";
  }
  return 0;
}
