// Microbenchmarks for the substrates the NAS spends its cycles in: GEMM,
// conv1d, LSTM controller steps, PPO updates, architecture decoding, and one
// full reward estimation.
#include <benchmark/benchmark.h>

#include "ncnas/exec/evaluator.hpp"
#include "ncnas/nn/lstm.hpp"
#include "ncnas/rl/controller.hpp"
#include "ncnas/space/builder.hpp"
#include "ncnas/space/spaces.hpp"
#include "ncnas/tensor/kernel_config.hpp"
#include "ncnas/tensor/ops.hpp"

namespace {

using namespace ncnas;

void BM_Gemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  tensor::Rng rng(1);
  tensor::Tensor a({n, n}), b({n, n}), c({n, n});
  for (float& v : a.flat()) v = static_cast<float>(rng.normal());
  for (float& v : b.flat()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    tensor::gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(96)->Arg(256);

// Blocked-kernel sweep: sizes x thread counts. Thread arg 0 means "hardware
// concurrency" (resolved by KernelConfig::parallel). The serial reference at
// the same size is BM_Gemm above; bench_kernels produces the full GF/s +
// speedup table and BENCH_kernels.json.
void BM_GemmBlocked(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t threads = static_cast<std::size_t>(state.range(1));
  tensor::KernelConfigGuard guard(tensor::KernelConfig::parallel(threads));
  tensor::Rng rng(1);
  tensor::Tensor a({n, n}), b({n, n}), c({n, n});
  for (float& v : a.flat()) v = static_cast<float>(rng.normal());
  for (float& v : b.flat()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    tensor::gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * n * n);
}
BENCHMARK(BM_GemmBlocked)->ArgsProduct({{64, 128, 256, 512}, {1, 2, 0}});

void BM_Conv1dForward(benchmark::State& state) {
  tensor::Rng rng(2);
  nn::Conv1D conv(8, 5, rng);
  tensor::Tensor x({16, 256, 1});
  for (float& v : x.flat()) v = static_cast<float>(rng.normal());
  const tensor::Tensor* in[] = {&x};
  nn::ForwardCtx ctx{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(in, ctx));
  }
}
BENCHMARK(BM_Conv1dForward);

void BM_LstmStep(benchmark::State& state) {
  tensor::Rng rng(3);
  nn::LstmCell cell(16, 32, rng);
  const nn::LstmState s0 = cell.initial_state(8);
  tensor::Tensor x({8, 16});
  for (float& v : x.flat()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell.step_nograd(x, s0));
  }
}
BENCHMARK(BM_LstmStep);

void BM_ControllerSample(benchmark::State& state) {
  const space::SearchSpace sp = space::combo_small_space();
  rl::Controller ctrl(sp.arities(), 1);
  tensor::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctrl.sample(rng));
  }
}
BENCHMARK(BM_ControllerSample);

void BM_PpoUpdate(benchmark::State& state) {
  const space::SearchSpace sp = space::combo_small_space();
  rl::Controller ctrl(sp.arities(), 1);
  tensor::Rng rng(5);
  std::vector<rl::Rollout> rolls;
  std::vector<float> rewards;
  for (int b = 0; b < 11; ++b) {
    rolls.push_back(ctrl.sample(rng));
    rewards.push_back(0.1f * static_cast<float>(b));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctrl.ppo_update(rolls, rewards, {}));
  }
}
BENCHMARK(BM_PpoUpdate);

void BM_BuildComboModel(benchmark::State& state) {
  const space::SearchSpace sp = space::combo_small_space();
  tensor::Rng arch_rng(6);
  const space::ArchEncoding arch = sp.random_arch(arch_rng);
  const std::vector<std::size_t> dims{48, 96, 96};
  for (auto _ : state) {
    tensor::Rng rng(7);
    benchmark::DoNotOptimize(
        space::build_model(sp, arch, dims, space::TaskHead::regression(), rng));
  }
}
BENCHMARK(BM_BuildComboModel);

void BM_RewardEstimation(benchmark::State& state) {
  const space::SearchSpace sp = space::nt3_small_space();
  static const data::Dataset ds = data::make_nt3(1);
  const exec::TrainingEvaluator eval(sp, ds, {.epochs = 1, .subset_fraction = 1.0}, {});
  tensor::Rng rng(8);
  const space::ArchEncoding arch = sp.random_arch(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.evaluate(arch, 1));
  }
}
BENCHMARK(BM_RewardEstimation);

}  // namespace
