// Figure 4 — search trajectory (best reward vs simulated time) for A3C, A2C,
// and random search (RDM) on the small search spaces of Combo, Uno, and NT3.
//
// Paper shape to reproduce: A3C climbs fastest and highest; A2C eventually
// approaches A3C on Combo/Uno but lags (and stays poor on NT3); RDM shows no
// learning. A3C may converge early (all agents regenerate cached archs).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ncnas;
  const bench::Args args = bench::Args::parse(argc, argv, /*default_minutes=*/120.0);
  tensor::ThreadPool pool;

  const char* spaces[] = {"combo-small", "uno-small", "nt3-small"};
  const nas::SearchStrategy strategies[] = {nas::SearchStrategy::kA3C,
                                            nas::SearchStrategy::kA2C,
                                            nas::SearchStrategy::kRandom};

  std::cout << "# Figure 4: reward over time, A3C vs A2C vs RDM (small spaces)\n"
            << "# cluster S (9 agents x 5 workers), " << args.minutes << " simulated min\n\n";

  for (const char* space_name : spaces) {
    const double floor = bench::dataset_name_of(space_name) == "nt3" ? 0.0 : -1.0;
    std::cout << "## " << space_name << "\n";
    for (nas::SearchStrategy strategy : strategies) {
      const nas::SearchConfig cfg =
          bench::paper_config(space_name, strategy, args.minutes, args.seed);
      const nas::SearchResult res = bench::run_search(space_name, cfg, pool);
      const std::string label =
          std::string(space_name) + "/" + nas::strategy_name(strategy);
      bench::print_run_summary(label, res);
      bench::print_trajectory(label, res, args.minutes, /*bucket_minutes=*/10.0, floor);
    }
    // Side-by-side sparklines for quick visual comparison.
    for (nas::SearchStrategy strategy : strategies) {
      const nas::SearchConfig cfg =
          bench::paper_config(space_name, strategy, args.minutes, args.seed);
      const nas::SearchResult res = bench::run_search(space_name, cfg, pool);
      const auto series = analytics::resample_mean(bench::reward_stream(res),
                                                   args.minutes * 60.0, 10.0 * 60.0, floor);
      analytics::print_sparkline(std::cout,
                                 std::string(nas::strategy_name(strategy)) + " ",
                                 series, floor, 1.0);
    }
    std::cout << "\n";
  }
  return 0;
}
