// Telemetry overhead proof: the same small search scenario bench_micro uses,
// run (a) with SearchConfig::telemetry null — which must cost nothing beyond
// the seed driver — (b) with a live Telemetry sink, which must stay within a
// few percent, (c) with the journal and watchdog enabled on top, and (d) with
// the hierarchical profiler recording every kernel, graph-op, and driver
// scope — the acceptance bound for (d) is <5% over (a). Compare the
// BM_SearchRun counters directly:
//
//   ./build/bench/bench_telemetry_overhead --benchmark_repetitions=3
#include <benchmark/benchmark.h>

#include "ncnas/nas/driver.hpp"
#include "ncnas/obs/telemetry.hpp"
#include "ncnas/space/spaces.hpp"

namespace {

using namespace ncnas;

const data::Dataset& small_dataset() {
  static const data::Dataset ds = [] {
    data::Nt3Dims dims;
    dims.train = 64;
    dims.valid = 32;
    dims.length = 64;
    dims.motif = 6;
    return data::make_nt3(5, dims);
  }();
  return ds;
}

nas::SearchConfig small_search_config() {
  nas::SearchConfig cfg;
  cfg.strategy = nas::SearchStrategy::kA3C;
  cfg.cluster = {.num_agents = 3, .workers_per_agent = 4};
  cfg.wall_time_seconds = 900.0;
  cfg.fidelity = {.epochs = 1, .subset_fraction = 1.0};
  cfg.cost = {.startup_seconds = 20.0, .seconds_per_megaunit = 1.0, .timeout_seconds = 600.0};
  cfg.seed = 11;
  return cfg;
}

void BM_SearchRun_NullTelemetry(benchmark::State& state) {
  const space::SearchSpace sp = space::nt3_small_space();
  const data::Dataset& ds = small_dataset();
  const nas::SearchConfig cfg = small_search_config();
  std::size_t evals = 0;
  for (auto _ : state) {
    nas::SearchResult res = nas::SearchDriver(sp, ds, cfg).run();
    evals += res.evals.size();
    benchmark::DoNotOptimize(res.end_time);
  }
  state.counters["evals"] =
      benchmark::Counter(static_cast<double>(evals), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_SearchRun_NullTelemetry)->Unit(benchmark::kMillisecond);

void BM_SearchRun_WithTelemetry(benchmark::State& state) {
  const space::SearchSpace sp = space::nt3_small_space();
  const data::Dataset& ds = small_dataset();
  std::size_t evals = 0;
  for (auto _ : state) {
    obs::Telemetry telemetry;  // fresh sink per run, like a real deployment
    nas::SearchConfig cfg = small_search_config();
    cfg.telemetry = &telemetry;
    nas::SearchResult res = nas::SearchDriver(sp, ds, cfg).run();
    evals += res.evals.size();
    benchmark::DoNotOptimize(res.end_time);
    benchmark::DoNotOptimize(telemetry.trace().recorded());
  }
  state.counters["evals"] =
      benchmark::Counter(static_cast<double>(evals), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_SearchRun_WithTelemetry)->Unit(benchmark::kMillisecond);

void BM_SearchRun_WithJournalAndWatchdog(benchmark::State& state) {
  // The heaviest observation configuration: metrics + trace + structured
  // journal + the watchdog subscriber re-checking every event.
  const space::SearchSpace sp = space::nt3_small_space();
  const data::Dataset& ds = small_dataset();
  std::size_t evals = 0;
  std::size_t journal_events = 0;
  for (auto _ : state) {
    obs::Telemetry telemetry;
    telemetry.enable_journal();
    telemetry.enable_watchdog();
    nas::SearchConfig cfg = small_search_config();
    cfg.telemetry = &telemetry;
    nas::SearchResult res = nas::SearchDriver(sp, ds, cfg).run();
    evals += res.evals.size();
    journal_events += telemetry.journal()->size();
    benchmark::DoNotOptimize(res.end_time);
  }
  state.counters["evals"] =
      benchmark::Counter(static_cast<double>(evals), benchmark::Counter::kAvgIterations);
  state.counters["journal_events"] = benchmark::Counter(
      static_cast<double>(journal_events), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_SearchRun_WithJournalAndWatchdog)->Unit(benchmark::kMillisecond);

void BM_SearchRun_WithExporter(benchmark::State& state) {
  // The live telemetry plane on top of journal + watchdog: a publication
  // every 60 virtual seconds snapshotting metrics, shipping the journal
  // delta, and rendering the OpenMetrics/JSON payloads (no HTTP socket —
  // serving is wall-clock-bound, not search-bound). Acceptance: within 5%
  // of NullTelemetry, same as the profiler configuration.
  const space::SearchSpace sp = space::nt3_small_space();
  const data::Dataset& ds = small_dataset();
  std::size_t evals = 0;
  std::size_t publications = 0;
  for (auto _ : state) {
    obs::Telemetry telemetry;
    telemetry.enable_journal();
    telemetry.enable_watchdog();
    obs::ExporterConfig ecfg;
    ecfg.cadence_seconds = 60.0;
    telemetry.enable_exporter(std::move(ecfg));
    nas::SearchConfig cfg = small_search_config();
    cfg.telemetry = &telemetry;
    nas::SearchResult res = nas::SearchDriver(sp, ds, cfg).run();
    evals += res.evals.size();
    publications += telemetry.exporter()->publications();
    benchmark::DoNotOptimize(res.end_time);
  }
  state.counters["evals"] =
      benchmark::Counter(static_cast<double>(evals), benchmark::Counter::kAvgIterations);
  state.counters["publications"] = benchmark::Counter(
      static_cast<double>(publications), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_SearchRun_WithExporter)->Unit(benchmark::kMillisecond);

void BM_SearchRun_WithProfiler(benchmark::State& state) {
  // Every NCNAS_PROF_SCOPE in the stack live: per-kernel, per-graph-op,
  // trainer phases, driver phases. Must stay within 5% of NullTelemetry.
  const space::SearchSpace sp = space::nt3_small_space();
  const data::Dataset& ds = small_dataset();
  std::size_t evals = 0;
  std::size_t scopes = 0;
  for (auto _ : state) {
    obs::Telemetry telemetry;
    telemetry.enable_profiler();
    nas::SearchConfig cfg = small_search_config();
    cfg.telemetry = &telemetry;
    nas::SearchResult res = nas::SearchDriver(sp, ds, cfg).run();
    evals += res.evals.size();
    scopes += res.telemetry->profile.flat().size();
    benchmark::DoNotOptimize(res.end_time);
  }
  state.counters["evals"] =
      benchmark::Counter(static_cast<double>(evals), benchmark::Counter::kAvgIterations);
  state.counters["profile_scopes"] =
      benchmark::Counter(static_cast<double>(scopes), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_SearchRun_WithProfiler)->Unit(benchmark::kMillisecond);

// The instrument primitives themselves, for the per-event cost picture.
void BM_CounterInc(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  for (auto _ : state) c.inc();
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterInc);

void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("h", obs::exp_buckets(0.001, 2.0, 20));
  double v = 0.0;
  for (auto _ : state) {
    h.observe(v);
    v += 0.37;
    if (v > 1000.0) v = 0.0;
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramObserve);

void BM_JournalAppend(benchmark::State& state) {
  obs::Journal journal(1 << 16);
  double t = 0.0;
  for (auto _ : state) {
    journal.append(obs::JournalEventType::kEvalFinished, t, 0,
                   {{"reward", 0.5}, {"duration_s", 20.0}, {"timed_out", 0.0}});
    t += 1.0;
  }
  benchmark::DoNotOptimize(journal.size());
}
BENCHMARK(BM_JournalAppend);

void BM_ProfileScope(benchmark::State& state) {
  obs::Profiler profiler;
  const obs::ProfilerInstallGuard guard(&profiler);
  for (auto _ : state) {
    obs::ProfileScope scope("bench");
    benchmark::DoNotOptimize(&scope);
  }
  benchmark::DoNotOptimize(profiler.snapshot().flat().size());
}
BENCHMARK(BM_ProfileScope);

void BM_ProfileScopeDisabled(benchmark::State& state) {
  // No profiler installed: the scope must compile down to two atomic loads.
  for (auto _ : state) {
    obs::ProfileScope scope("bench");
    benchmark::DoNotOptimize(&scope);
  }
}
BENCHMARK(BM_ProfileScopeDisabled);

void BM_TraceSpanRecord(benchmark::State& state) {
  obs::TraceRecorder rec(1 << 16);
  double t = 0.0;
  for (auto _ : state) {
    rec.span("agent_cycle", "driver", t, 1.0, 0, {{"batch", 11.0}});
    t += 1.0;
  }
  benchmark::DoNotOptimize(rec.recorded());
}
BENCHMARK(BM_TraceSpanRecord);

}  // namespace
