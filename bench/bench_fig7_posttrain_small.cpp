// Figure 7 — post-training of the top-50 A3C architectures from the SMALL
// search spaces (Combo, Uno, NT3), reported as the paper's three ratios
// against the manually designed networks.
//
// Paper shape to reproduce: a handful of Combo architectures within 2 % of
// the baseline R2; most Uno architectures BEAT the baseline; NT3 reaches the
// baseline accuracy; and across all three, parameter ratios Pb/P are well
// above 1 (NAS nets are much smaller) with training-time ratios above 1.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ncnas;
  const bench::Args args = bench::Args::parse(argc, argv, /*default_minutes=*/120.0);
  tensor::ThreadPool pool;

  std::cout << "# Figure 7: post-training of top-50 A3C architectures (small spaces)\n"
            << "# shares the Figure 4 A3C runs via nas_logs/\n";

  for (const char* space_name : {"combo-small", "uno-small", "nt3-small"}) {
    const nas::SearchConfig cfg =
        bench::paper_config(space_name, nas::SearchStrategy::kA3C, args.minutes, args.seed);
    const nas::SearchResult res = bench::run_search(space_name, cfg, pool);
    (void)bench::post_train_report(space_name, res, /*k=*/50, pool,
                                   "Fig 7 post-training ratios");
  }
  return 0;
}
