// Fault-injection overhead proof: the same small search scenario
// bench_telemetry_overhead uses, run (a) with SearchConfig::faults null —
// the seed driver's code path, (b) with an injector built from an *empty*
// plan — which the driver must treat exactly like (a), costing nothing —
// and (c) with a chaos plan actually firing, to price the recovery
// machinery itself (retries, backoff, requeues). Compare the BM_SearchRun
// counters directly:
//
//   ./build/bench/bench_fault_overhead --benchmark_repetitions=3
#include <benchmark/benchmark.h>

#include "ncnas/exec/fault.hpp"
#include "ncnas/nas/driver.hpp"
#include "ncnas/space/spaces.hpp"

namespace {

using namespace ncnas;

const data::Dataset& small_dataset() {
  static const data::Dataset ds = [] {
    data::Nt3Dims dims;
    dims.train = 64;
    dims.valid = 32;
    dims.length = 64;
    dims.motif = 6;
    return data::make_nt3(5, dims);
  }();
  return ds;
}

nas::SearchConfig small_search_config() {
  nas::SearchConfig cfg;
  cfg.strategy = nas::SearchStrategy::kA3C;
  cfg.cluster = {.num_agents = 3, .workers_per_agent = 4};
  cfg.wall_time_seconds = 900.0;
  cfg.fidelity = {.epochs = 1, .subset_fraction = 1.0};
  cfg.cost = {.startup_seconds = 20.0, .seconds_per_megaunit = 1.0, .timeout_seconds = 600.0};
  cfg.seed = 11;
  return cfg;
}

void BM_SearchRun_NoFaultInjector(benchmark::State& state) {
  const space::SearchSpace sp = space::nt3_small_space();
  const data::Dataset& ds = small_dataset();
  const nas::SearchConfig cfg = small_search_config();
  std::size_t evals = 0;
  for (auto _ : state) {
    nas::SearchResult res = nas::SearchDriver(sp, ds, cfg).run();
    evals += res.evals.size();
    benchmark::DoNotOptimize(res.end_time);
  }
  state.counters["evals"] =
      benchmark::Counter(static_cast<double>(evals), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_SearchRun_NoFaultInjector)->Unit(benchmark::kMillisecond);

void BM_SearchRun_NullPlan(benchmark::State& state) {
  // An injector with nothing to inject: the driver detects the empty plan up
  // front and stays on the fault-free path — this must match
  // BM_SearchRun_NoFaultInjector (and produce bit-identical results).
  const space::SearchSpace sp = space::nt3_small_space();
  const data::Dataset& ds = small_dataset();
  const exec::FaultInjector fx{exec::FaultPlan{}};
  nas::SearchConfig cfg = small_search_config();
  cfg.faults = &fx;
  std::size_t evals = 0;
  for (auto _ : state) {
    nas::SearchResult res = nas::SearchDriver(sp, ds, cfg).run();
    evals += res.evals.size();
    benchmark::DoNotOptimize(res.end_time);
  }
  state.counters["evals"] =
      benchmark::Counter(static_cast<double>(evals), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_SearchRun_NullPlan)->Unit(benchmark::kMillisecond);

void BM_SearchRun_ChaosPlan(benchmark::State& state) {
  // Every fault shape firing at once: prices the retry loop, backoff
  // bookkeeping, dead-worker requeues, and partial PS rounds. Note the
  // recovery work happens on the virtual clock — the real host cost is the
  // per-site hash verdicts plus the extra driver bookkeeping.
  const space::SearchSpace sp = space::nt3_small_space();
  const data::Dataset& ds = small_dataset();
  exec::FaultPlan plan;
  plan.seed = 7;
  plan.eval_failure_prob = 0.25;
  plan.slowdown_prob = 0.15;
  plan.slowdown_multiple = 2.0;
  plan.lost_result_prob = 0.10;
  plan.ps_drop_prob = 0.15;
  plan.ps_delay_prob = 0.15;
  plan.max_retries = 2;
  plan.worker_crashes.push_back({.agent = 1, .worker = 0, .time = 450.0});
  const exec::FaultInjector fx(plan);
  nas::SearchConfig cfg = small_search_config();
  cfg.faults = &fx;
  std::size_t evals = 0;
  std::size_t retries = 0;
  for (auto _ : state) {
    nas::SearchResult res = nas::SearchDriver(sp, ds, cfg).run();
    evals += res.evals.size();
    retries += res.retries;
    benchmark::DoNotOptimize(res.end_time);
  }
  state.counters["evals"] =
      benchmark::Counter(static_cast<double>(evals), benchmark::Counter::kAvgIterations);
  state.counters["retries"] =
      benchmark::Counter(static_cast<double>(retries), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_SearchRun_ChaosPlan)->Unit(benchmark::kMillisecond);

// The verdict primitives themselves: one hash-mix sample per dispatch site.
void BM_TaskFaultVerdict(benchmark::State& state) {
  exec::FaultPlan plan;
  plan.eval_failure_prob = 0.2;
  plan.slowdown_prob = 0.1;
  plan.lost_result_prob = 0.05;
  const exec::FaultInjector fx(plan);
  std::size_t attempt = 0;
  for (auto _ : state) {
    const auto tf = fx.task_fault(2, "c3.k5.f16.d128", attempt++ & 3);
    benchmark::DoNotOptimize(tf.fail);
  }
}
BENCHMARK(BM_TaskFaultVerdict);

void BM_ExchangeFaultVerdict(benchmark::State& state) {
  exec::FaultPlan plan;
  plan.ps_drop_prob = 0.1;
  plan.ps_delay_prob = 0.1;
  const exec::FaultInjector fx(plan);
  std::uint64_t round = 0;
  for (auto _ : state) {
    const auto ef = fx.exchange_fault(1, round++);
    benchmark::DoNotOptimize(ef.drop);
  }
}
BENCHMARK(BM_ExchangeFaultVerdict);

}  // namespace
