// Figure 8 — post-training of the top-50 A3C architectures from the LARGE
// search spaces of Combo and Uno.
//
// Paper shape to reproduce: on Combo the large space yields architectures
// with higher accuracy than the small space (a few within 1 % of baseline,
// at the cost of more parameters / longer training); on Uno the large space
// HURTS accuracy (overparameterization on the small data).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ncnas;
  const bench::Args args = bench::Args::parse(argc, argv, /*default_minutes=*/60.0);
  tensor::ThreadPool pool;

  std::cout << "# Figure 8: post-training of top-50 A3C architectures (large spaces)\n"
            << "# combo-large shares the Figure 6 A3C run via nas_logs/\n";

  for (const char* space_name : {"combo-large", "uno-large"}) {
    const nas::SearchConfig cfg =
        bench::paper_config(space_name, nas::SearchStrategy::kA3C, args.minutes, args.seed,
                            -1.0, bench::cluster_large_space());
    const nas::SearchResult res = bench::run_search(space_name, cfg, pool);
    // Paper post-trains the top 50; the large-space models are ~4x bigger,
    // so the default pool is 20 (the ratio quantiles stabilize well before).
    (void)bench::post_train_report(space_name, res, /*k=*/20, pool,
                                   "Fig 8 post-training ratios");
  }
  return 0;
}
