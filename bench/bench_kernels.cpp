// Kernel throughput sweep with a built-in correctness gate.
//
// Measures gemm/gemm_nt/gemm_tn at several square sizes: the serial
// reference, the blocked tier (SIMD forced off) at thread counts
// {1, 2, hardware}, and the SIMD tier at hardware threads — the
// configuration production search runs actually use. Every non-reference
// measurement is first verified bitwise against the reference result — a
// bench that reports speed on wrong bits is worse than no bench.
//
// Usage:
//   bench_kernels [--json PATH] [--require-speedup X] [--max-size N]
//
// Writes a JSON record per (op, size, threads) to PATH (default
// BENCH_kernels.json) and prints a GF/s + speedup table. Exits nonzero if
// any blocked result mismatches the reference, or if the pooled gemm
// speedup at the largest size falls below --require-speedup (default 1.0 —
// "never slower than the reference"; CI passes 1.0, the acceptance target
// for sizes >= 256 is 2.0).

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ncnas/tensor/kernel_config.hpp"
#include "ncnas/tensor/ops.hpp"
#include "ncnas/tensor/rng.hpp"
#include "ncnas/tensor/tensor.hpp"

namespace {

using ncnas::tensor::KernelConfig;
using ncnas::tensor::KernelConfigGuard;
using ncnas::tensor::Rng;
using ncnas::tensor::Tensor;

using GemmFn = void (*)(const Tensor&, const Tensor&, Tensor&);

struct Op {
  const char* name;
  GemmFn kernel;  // dispatching entry point
  GemmFn ref;     // serial oracle
};

struct Record {
  std::string op;
  std::size_t size = 0;
  std::size_t threads = 0;   // 0 = serial reference row (informational)
  std::string config;        // stable label: "ref", "t1", "t2", "tmax", "simd"
  double gflops = 0.0;
  double speedup = 1.0;  // vs the reference row of the same (op, size)
};

/// Rank for the deterministic record order. Records are keyed (op, size,
/// config) with the "tmax" row standing in for whatever hardware_concurrency
/// is, so two machines' BENCH files diff record-for-record (see perf_diff).
int config_rank(const std::string& config) {
  if (config == "ref") return 0;
  if (config == "tmax") return 1000;
  if (config == "simd") return 2000;
  return std::stoi(config.substr(1));
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-reps timing of fn(), with iteration count scaled so one rep does
/// meaningful work even at small sizes.
double time_best_seconds(std::size_t iters, const std::function<void()>& fn) {
  double best = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const double t0 = now_seconds();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double dt = (now_seconds() - t0) / static_cast<double>(iters);
    best = std::min(best, dt);
  }
  return best;
}

bool bytes_equal(const Tensor& a, const Tensor& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_kernels.json";
  double require_speedup = 1.0;
  std::size_t max_size = 512;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--require-speedup" && i + 1 < argc) {
      require_speedup = std::stod(argv[++i]);
    } else if (arg == "--max-size" && i + 1 < argc) {
      max_size = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  const std::size_t hw = std::max<std::size_t>(2, std::thread::hardware_concurrency());
  std::vector<std::size_t> sizes;
  for (std::size_t n : {64UL, 128UL, 256UL, 512UL}) {
    if (n <= max_size) sizes.push_back(n);
  }
  std::vector<std::size_t> thread_counts{1, 2, hw};
  thread_counts.erase(std::unique(thread_counts.begin(), thread_counts.end()),
                      thread_counts.end());

  const Op ops[] = {
      {"gemm", ncnas::tensor::gemm, ncnas::tensor::gemm_ref},
      {"gemm_nt", ncnas::tensor::gemm_nt, ncnas::tensor::gemm_nt_ref},
      {"gemm_tn", ncnas::tensor::gemm_tn, ncnas::tensor::gemm_tn_ref},
  };

  std::vector<Record> records;
  bool bits_ok = true;
  double gate_speedup = 0.0;  // simd-tier gemm speedup at the largest size

  std::cout << std::left << std::setw(9) << "op" << std::setw(6) << "n"
            << std::setw(9) << "threads" << std::setw(10) << "GF/s"
            << "speedup\n";
  for (const Op& op : ops) {
    for (std::size_t n : sizes) {
      Rng rng(0xBE7CULL + n);
      Tensor a({n, n}), b({n, n});
      for (float& v : a.flat()) v = static_cast<float>(rng.normal());
      for (float& v : b.flat()) v = static_cast<float>(rng.normal());
      const double flops = 2.0 * static_cast<double>(n) * n * n;
      const std::size_t iters =
          std::max<std::size_t>(1, static_cast<std::size_t>(2e8 / flops));

      Tensor want({n, n});
      const double ref_dt =
          time_best_seconds(iters, [&] { op.ref(a, b, want); });
      const double ref_gflops = flops / ref_dt / 1e9;
      records.push_back({op.name, n, 0, "ref", ref_gflops, 1.0});
      std::cout << std::left << std::setw(9) << op.name << std::setw(6) << n
                << std::setw(9) << "ref" << std::setw(10) << std::fixed
                << std::setprecision(2) << ref_gflops << "1.00\n";

      // Blocked tier (SIMD forced off) at each thread count, then the SIMD
      // tier at hardware threads — the default production configuration.
      struct Variant {
        std::string config;
        std::size_t threads;
        ncnas::tensor::SimdMode simd;
      };
      std::vector<Variant> variants;
      for (std::size_t t : thread_counts) {
        variants.push_back({t == hw ? "tmax" : "t" + std::to_string(t), t,
                            ncnas::tensor::SimdMode::kOff});
      }
      variants.push_back({"simd", hw, ncnas::tensor::SimdMode::kOn});
      for (const Variant& v : variants) {
        KernelConfig cfg = KernelConfig::parallel(v.threads);
        cfg.min_blocked_flops = 0;
        cfg.simd = v.simd;
        KernelConfigGuard guard(cfg);
        Tensor got({n, n});
        op.kernel(a, b, got);
        if (!bytes_equal(want, got)) {
          std::cerr << "BIT MISMATCH: " << op.name << " n=" << n
                    << " config=" << v.config << "\n";
          bits_ok = false;
          continue;
        }
        const double dt = time_best_seconds(iters, [&] { op.kernel(a, b, got); });
        const double gflops = flops / dt / 1e9;
        const double speedup = ref_dt / dt;
        records.push_back({op.name, n, v.threads, v.config, gflops, speedup});
        std::cout << std::left << std::setw(9) << op.name << std::setw(6) << n
                  << std::setw(9) << v.config << std::setw(10) << std::fixed
                  << std::setprecision(2) << gflops << std::setprecision(2)
                  << speedup << "\n";
        if (std::string(op.name) == "gemm" && n == sizes.back() && v.config == "simd") {
          gate_speedup = speedup;
        }
      }
    }
  }

  // Deterministic, hardware_threads-independent record order: two machines
  // with different core counts produce files whose records line up.
  std::stable_sort(records.begin(), records.end(), [](const Record& a, const Record& b) {
    if (a.op != b.op) return a.op < b.op;
    if (a.size != b.size) return a.size < b.size;
    return config_rank(a.config) < config_rank(b.config);
  });

  std::ostringstream json;
  json << "{\n  \"schema_version\": 1,\n  \"hardware_threads\": " << hw
       << ",\n  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    json << "    {\"op\": \"" << r.op << "\", \"size\": " << r.size
         << ", \"config\": \"" << r.config << "\", \"threads\": " << r.threads
         << ", \"gflops\": " << std::fixed << std::setprecision(3) << r.gflops
         << ", \"speedup_vs_ref\": " << std::setprecision(3) << r.speedup << "}";
    json << (i + 1 < records.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";
  std::ofstream out(json_path);
  out << json.str();
  if (!out) {
    std::cerr << "failed to write " << json_path << "\n";
    return 2;
  }
  std::cout << "wrote " << json_path << "\n";

  if (!bits_ok) {
    std::cerr << "FAIL: blocked kernels are not bit-identical to the reference\n";
    return 1;
  }
  if (gate_speedup < require_speedup) {
    std::cerr << "FAIL: simd-tier gemm speedup " << gate_speedup << " at n="
              << sizes.back() << " is below required " << require_speedup << "\n";
    return 1;
  }
  std::cout << "OK: simd-tier gemm speedup at n=" << sizes.back() << " is "
            << std::setprecision(2) << gate_speedup << "x (required "
            << require_speedup << "x)\n";
  return 0;
}
