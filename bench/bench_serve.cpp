// bench_serve — serving-plane microbench: DRR scheduler dispatch overhead and
// SharedEvalCache lookup cost.
//
//   bench_serve [--json PATH] [--quick]
//
// Writes perf_diff-compatible records (default BENCH_serve.json) and prints a
// throughput table. Two op families:
//
//   drr_dispatch      size = registered tenants; one op = one
//                     next_round()+release-all cycle on a pool the tenants
//                     either saturate ("saturated") or all fit in at once
//                     ("uncontended"). Per-grant cost is cycle cost divided by
//                     grants issued, printed alongside.
//   shared_cache      size = resident entries; one op = one lookup that hits
//                     ("hit") or misses ("miss") the store.
//
// The metric column is named "gflops" because perf_diff reads exactly that
// field as its higher-is-better measure; for these ops the value is millions
// of operations per second (Mop/s), not floating-point throughput. Records
// are deterministically ordered and `speedup_vs_ref` is pinned to 1.0 so
// reruns diff cleanly.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ncnas/exec/shared_cache.hpp"
#include "ncnas/serve/scheduler.hpp"

namespace {

struct Record {
  std::string op;
  std::size_t size = 0;
  std::string config;
  double mops = 0.0;  // millions of ops per second; emitted as "gflops"
};

/// Runs `body(iters)` in growing batches until the timed region exceeds
/// `min_seconds`, then returns ops/second. `body` must perform exactly
/// `iters` ops per call.
template <typename Body>
double measure_ops_per_second(double min_seconds, std::size_t start_iters, Body&& body) {
  using clock = std::chrono::steady_clock;
  std::size_t iters = start_iters;
  body(iters);  // warmup: touch every cache line the loop will
  for (;;) {
    const auto t0 = clock::now();
    body(iters);
    const double elapsed = std::chrono::duration<double>(clock::now() - t0).count();
    if (elapsed >= min_seconds) return static_cast<double>(iters) / elapsed;
    iters *= 2;
  }
}

int config_rank(const std::string& c) {
  if (c == "saturated") return 0;
  if (c == "uncontended") return 1;
  if (c == "hit") return 0;
  if (c == "miss") return 1;
  return 2;
}

/// One dispatch cycle: a full next_round() followed by releasing every grant,
/// which is the per-quantum steady state of SearchServer::step(). `saturated`
/// sizes the pool so only a fraction of the gangs fit per round (the DRR
/// arbitration path stays hot); otherwise every gang fits at once.
double bench_drr(std::size_t tenants, bool saturated, double min_seconds,
                 std::uint64_t* grants_per_cycle) {
  const std::uint32_t gang = 4;
  const std::uint32_t pool =
      saturated ? gang * static_cast<std::uint32_t>(std::max<std::size_t>(tenants / 4, 1))
                : gang * static_cast<std::uint32_t>(tenants);
  ncnas::serve::DrrScheduler sched(pool);
  for (std::size_t i = 0; i < tenants; ++i) {
    // Mixed weights exercise the deficit arithmetic rather than the trivial
    // equal-share fast path.
    sched.add_tenant(static_cast<std::uint32_t>(i + 1), (i % 3 == 0) ? 2.0 : 1.0, gang);
  }
  std::uint64_t grants = 0;
  std::uint64_t cycles = 0;
  const double ops = measure_ops_per_second(min_seconds, 256, [&](std::size_t iters) {
    for (std::size_t it = 0; it < iters; ++it) {
      const std::vector<std::uint32_t> granted = sched.next_round();
      grants += granted.size();
      ++cycles;
      for (std::uint32_t id : granted) sched.release(id);
    }
  });
  *grants_per_cycle = cycles == 0 ? 0 : grants / std::max<std::uint64_t>(cycles, 1);
  return ops;
}

/// Steady-state lookup cost against a store of `entries` architectures. The
/// key mix cycles through the resident set (hit) or probes keys that were
/// never inserted (miss); both paths pay the same hash + lock cost the
/// serving loop pays per evaluation.
double bench_shared_cache(std::size_t entries, bool hit, double min_seconds) {
  ncnas::exec::SharedEvalCache cache;
  const std::string ctx = "bench|nt3|fidelity:3/0.5/0.001/32/0.2|cost:20/1/600";
  std::vector<std::string> keys(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    keys[i] = "arch-" + std::to_string(i);
    ncnas::exec::EvalResult r;
    r.reward = static_cast<float>(i % 97) * 0.01f;
    r.sim_duration = 100.0;
    cache.insert(ctx, keys[i], /*tenant=*/1, r);
  }
  std::vector<std::string> probes(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    probes[i] = hit ? keys[i] : "absent-" + std::to_string(i);
  }
  double sink = 0.0;
  const double ops = measure_ops_per_second(min_seconds, 4096, [&](std::size_t iters) {
    for (std::size_t it = 0; it < iters; ++it) {
      const auto& key = probes[it % probes.size()];
      if (auto r = cache.lookup(ctx, key, /*tenant=*/2)) sink += r->reward;
    }
  });
  if (sink < -1.0) std::cerr << "";  // keep the lookups observable
  return ops;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_serve.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::cerr << "usage: bench_serve [--json PATH] [--quick]\n";
      return 2;
    }
  }
  const double min_seconds = quick ? 0.02 : 0.15;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  std::vector<Record> records;

  std::cout << "op            size      config       Mop/s      note\n";
  for (const std::size_t tenants : {2u, 8u, 32u, 128u}) {
    for (const bool saturated : {true, false}) {
      std::uint64_t grants_per_cycle = 0;
      const double ops = bench_drr(tenants, saturated, min_seconds, &grants_per_cycle);
      const std::string config = saturated ? "saturated" : "uncontended";
      const double mops = ops / 1e6;
      records.push_back({"drr_dispatch", tenants, config, mops});
      const double ns_per_grant =
          grants_per_cycle == 0 ? 0.0 : 1e9 / (ops * static_cast<double>(grants_per_cycle));
      std::cout << std::left << std::setw(14) << "drr_dispatch" << std::setw(10) << tenants
                << std::setw(13) << config << std::fixed << std::setprecision(3) << std::setw(11)
                << mops << std::setprecision(0) << ns_per_grant << " ns/grant ("
                << grants_per_cycle << " grants/round)\n";
    }
  }
  for (const std::size_t entries : {1000u, 10000u, 100000u}) {
    for (const bool hit : {true, false}) {
      const double ops = bench_shared_cache(entries, hit, min_seconds);
      const std::string config = hit ? "hit" : "miss";
      const double mops = ops / 1e6;
      records.push_back({"shared_cache", entries, config, mops});
      std::cout << std::left << std::setw(14) << "shared_cache" << std::setw(10) << entries
                << std::setw(13) << config << std::fixed << std::setprecision(3) << std::setw(11)
                << mops << std::setprecision(0) << 1e9 / ops << " ns/lookup\n";
    }
  }

  // Deterministic record order, mirroring bench_kernels: files from any two
  // runs line up record-for-record for perf_diff.
  std::stable_sort(records.begin(), records.end(), [](const Record& a, const Record& b) {
    if (a.op != b.op) return a.op < b.op;
    if (a.size != b.size) return a.size < b.size;
    return config_rank(a.config) < config_rank(b.config);
  });

  std::ostringstream json;
  json << "{\n  \"schema_version\": 1,\n  \"hardware_threads\": " << hw
       << ",\n  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    json << "    {\"op\": \"" << r.op << "\", \"size\": " << r.size << ", \"config\": \""
         << r.config << "\", \"threads\": 1, \"gflops\": " << std::fixed << std::setprecision(3)
         << r.mops << ", \"speedup_vs_ref\": 1.000}";
    json << (i + 1 < records.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";
  std::ofstream out(json_path);
  out << json.str();
  if (!out) {
    std::cerr << "failed to write " << json_path << "\n";
    return 2;
  }
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
