// Figure 12 — post-training of the top-50 architectures found at each
// reward-estimation fidelity level (10/20/30/40 % training data).
//
// Paper shape to reproduce: as the fidelity fraction grows, training time in
// reward estimation becomes the bottleneck, so the agents are pushed toward
// architectures with FEWER trainable parameters and SHORTER post-training
// time (the Pb/P and Tb/T medians rise with the fraction).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ncnas;
  const bench::Args args = bench::Args::parse(argc, argv, /*default_minutes=*/60.0);
  tensor::ThreadPool pool;

  std::cout << "# Figure 12: post-training vs reward-estimation fidelity (combo-large)\n"
            << "# shares the Figure 11 runs via nas_logs/\n";
  for (double frac : {0.10, 0.20, 0.30, 0.40}) {
    const nas::SearchConfig cfg =
        bench::paper_config("combo-large", nas::SearchStrategy::kA3C, args.minutes,
                            args.seed, frac, bench::cluster_large_space());
    const nas::SearchResult res = bench::run_search("combo-large", cfg, pool);
    const std::string heading =
        "Fig 12, " + std::to_string(static_cast<int>(frac * 100)) + "% training data";
    (void)bench::post_train_report("combo-large", res, /*k=*/10, pool, heading.c_str());
  }
  return 0;
}
