// Ablations — the design choices DESIGN.md calls out, each toggled on the
// NT3 small-space search (fast enough to sweep):
//
//   1. PPO clipping:   clip=0.2 (paper) vs effectively unclipped
//   2. Evaluation cache: on (paper) vs off — the cache drives both the late
//      utilization decay and the convergence stop
//   3. A3C gradient handling: immediate apply vs windowed recent-average
//   4. Entropy bonus: 0.01 vs none — exploration pressure
//
// Reported per variant: mean reward in the final third of the search, best
// reward, cache hits, and whether the search converged.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ncnas;
  const bench::Args args = bench::Args::parse(argc, argv, /*default_minutes=*/60.0);
  tensor::ThreadPool pool;

  struct Variant {
    const char* name;
    std::function<void(nas::SearchConfig&)> tweak;
  };
  const Variant variants[] = {
      {"paper defaults", [](nas::SearchConfig&) {}},
      {"no PPO clip", [](nas::SearchConfig& c) { c.ppo.clip = 1e6f; }},
      {"no eval cache", [](nas::SearchConfig& c) { c.use_cache = false; }},
      {"A3C window=9", [](nas::SearchConfig& c) { c.async_window = 9; }},
      {"no entropy bonus", [](nas::SearchConfig& c) { c.ppo.entropy_coef = 0.0f; }},
      {"1 PPO epoch", [](nas::SearchConfig& c) { c.ppo.epochs = 1; }},
  };

  std::cout << "# Ablations: A3C on nt3-small, " << args.minutes << " simulated min\n\n";
  analytics::Table table({"variant", "late mean ACC", "best ACC", "cache hits", "unique",
                          "converged"});
  for (const Variant& v : variants) {
    nas::SearchConfig cfg = bench::paper_config("nt3-small", nas::SearchStrategy::kA3C,
                                                args.minutes, args.seed);
    v.tweak(cfg);
    // Ablations are variants, not paper figures: tag them separately.
    const std::string tag = std::string("ablation_") + v.name;
    std::string clean;
    for (char ch : tag) clean += (std::isalnum(static_cast<unsigned char>(ch)) ? ch : '_');
    const nas::SearchResult res = nas::run_or_load(
        bench::kLogDir, clean, nas::config_fingerprint(cfg, "nt3-small") + "|" + v.name, [&] {
          const space::SearchSpace sp = space::space_by_name("nt3-small");
          const data::Dataset ds = bench::dataset_for_space("nt3-small");
          return nas::SearchDriver(sp, ds, cfg, &pool).run();
        });

    const double t_late = 2.0 * res.end_time / 3.0;
    double late_acc = 0.0;
    std::size_t late_n = 0;
    float best = 0.0f;
    for (const auto& e : res.evals) {
      best = std::max(best, e.reward);
      if (e.time >= t_late) {
        late_acc += e.reward;
        ++late_n;
      }
    }
    table.add_row({v.name, analytics::fmt(late_n ? late_acc / late_n : 0.0),
                   analytics::fmt(best), std::to_string(res.cache_hits),
                   std::to_string(res.unique_archs), res.converged_early ? "yes" : "no"});
  }
  table.print(std::cout);
  return 0;
}
