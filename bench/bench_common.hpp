// Shared plumbing for the per-figure bench binaries: dataset/space lookup,
// paper-layout cluster configs, search execution with on-disk log reuse
// (nas_logs/), and result printing.
//
// Cluster scaling: the host is a single core, so the paper's 256/512/1,024
// KNL-node layouts are reproduced at 1/4 node scale with the same
// agent-to-worker structure (the quantities the figures study — utilization
// shape, sync-vs-async behaviour, agent- vs worker-scaling — depend on the
// layout ratios, not the absolute node count):
//
//   paper 256  (21a x 11w)  ->  S   (9a x 5w)
//   paper 512w (21a x 23w)  ->  2Sw (9a x 11w)
//   paper 512a (42a x 11w)  ->  2Sa (18a x 5w)
//   paper 1024w(21a x 47w)  ->  4Sw (9a x 21w)
//   paper 1024a(85a x 11w)  ->  4Sa (36a x 5w)
//
// Every bench accepts:
//   --minutes M     simulated wall-clock per search (default per bench)
//   --seed S        experiment seed
//   --quick         1/4-length runs for smoke testing
#pragma once

#include <cstring>
#include <iostream>
#include <numeric>
#include <sstream>
#include <string>

#include "ncnas/analytics/posttrain.hpp"
#include "ncnas/analytics/report.hpp"
#include "ncnas/analytics/series.hpp"
#include "ncnas/data/baselines.hpp"
#include "ncnas/data/dataset.hpp"
#include "ncnas/exec/presets.hpp"
#include "ncnas/nas/driver.hpp"
#include "ncnas/nas/result_io.hpp"
#include "ncnas/space/spaces.hpp"
#include "ncnas/tensor/thread_pool.hpp"

namespace ncnas::bench {

inline constexpr const char* kLogDir = "nas_logs";

struct Args {
  double minutes;
  std::uint64_t seed = 2019;
  bool quick = false;

  static Args parse(int argc, char** argv, double default_minutes) {
    Args args{default_minutes};
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--minutes") == 0 && i + 1 < argc) {
        args.minutes = std::atof(argv[++i]);
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        args.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--quick") == 0) {
        args.quick = true;
      }
    }
    if (args.quick) args.minutes /= 4.0;
    return args;
  }
};

/// Dataset for a space name ("combo-small" -> combo, ...), fixed seed so all
/// benches study the same synthetic world.
inline data::Dataset dataset_for_space(const std::string& space_name) {
  if (space_name.starts_with("combo")) return data::make_combo(1);
  if (space_name.starts_with("uno")) return data::make_uno(1);
  return data::make_nt3(1);
}

inline std::string dataset_name_of(const std::string& space_name) {
  return space_name.substr(0, space_name.find('-'));
}

/// 1/4-scale equivalents of the paper's node layouts (see file header).
inline nas::ClusterConfig cluster_s() { return {.num_agents = 9, .workers_per_agent = 5}; }
inline nas::ClusterConfig cluster_2s_worker() {
  return {.num_agents = 9, .workers_per_agent = 11};
}
inline nas::ClusterConfig cluster_2s_agent() {
  return {.num_agents = 18, .workers_per_agent = 5};
}
inline nas::ClusterConfig cluster_4s_worker() {
  return {.num_agents = 9, .workers_per_agent = 21};
}
inline nas::ClusterConfig cluster_4s_agent() {
  return {.num_agents = 36, .workers_per_agent = 5};
}

/// Dedicated layout for the compute-heavy large-space trajectory benches
/// (Figs. 6, 8, 11, 12): same agent-to-worker ratio, fewer nodes.
inline nas::ClusterConfig cluster_large_space() {
  return {.num_agents = 5, .workers_per_agent = 3};
}

inline nas::SearchConfig paper_config(const std::string& space_name,
                                      nas::SearchStrategy strategy, double minutes,
                                      std::uint64_t seed, double subset_fraction = -1.0,
                                      nas::ClusterConfig cluster = cluster_s()) {
  const std::string ds = dataset_name_of(space_name);
  nas::SearchConfig cfg;
  cfg.strategy = strategy;
  cfg.cluster = cluster;
  cfg.wall_time_seconds = minutes * 60.0;
  cfg.fidelity = exec::default_fidelity_for_space(space_name, subset_fraction);
  cfg.cost = exec::default_cost_for_space(space_name);
  cfg.seed = seed;
  return cfg;
}

/// Tag encoding the run configuration, used as the log filename.
inline std::string run_tag(const std::string& space_name, const nas::SearchConfig& cfg) {
  std::ostringstream os;
  os << space_name << '_' << nas::strategy_name(cfg.strategy) << '_'
     << cfg.cluster.num_agents << 'x' << cfg.cluster.workers_per_agent << '_'
     << static_cast<int>(cfg.wall_time_seconds / 60.0) << "m_s" << cfg.seed;
  if (cfg.fidelity.subset_fraction != exec::default_fidelity(dataset_name_of(space_name))
                                          .subset_fraction) {
    os << "_f" << static_cast<int>(cfg.fidelity.subset_fraction * 100.0);
  }
  return os.str();
}

/// Runs the search or loads its saved log (shared across bench binaries).
inline nas::SearchResult run_search(const std::string& space_name,
                                    const nas::SearchConfig& cfg, tensor::ThreadPool& pool) {
  return nas::run_or_load(kLogDir, run_tag(space_name, cfg),
                          nas::config_fingerprint(cfg, space_name), [&] {
                            const space::SearchSpace sp = space::space_by_name(space_name);
                            const data::Dataset ds = dataset_for_space(space_name);
                            nas::SearchDriver driver(sp, ds, cfg, &pool);
                            return driver.run();
                          });
}

/// (time, reward) pairs of all completed evaluations, for resample_mean.
inline std::vector<std::pair<double, float>> reward_stream(const nas::SearchResult& res) {
  std::vector<std::pair<double, float>> out;
  out.reserve(res.evals.size());
  for (const auto& e : res.evals) out.emplace_back(e.time, e.reward);
  return out;
}

/// Trajectory rows: per bucket, the paper's reward-over-time view (mean
/// reward of evaluations in the bucket) alongside the running best.
inline void print_trajectory(const std::string& label, const nas::SearchResult& res,
                             double total_minutes, double bucket_minutes, double floor) {
  const double t_end = total_minutes * 60.0;
  const double bucket = bucket_minutes * 60.0;
  const auto mean_series = analytics::resample_mean(reward_stream(res), t_end, bucket, floor);
  const auto best_series = analytics::resample_best(res.best_so_far(), t_end, bucket, floor);
  for (std::size_t i = 0; i < mean_series.size(); ++i) {
    std::cout << label << '\t' << analytics::fmt((i + 1) * bucket_minutes, 0) << '\t'
              << "mean=" << analytics::fmt(mean_series[i], 4) << '\t'
              << "best=" << analytics::fmt(best_series[i], 4) << '\n';
  }
}

/// Utilization rows resampled onto `bucket_minutes`.
inline void print_utilization(const std::string& label, const nas::SearchResult& res,
                              double bucket_minutes) {
  // The stored series is per-minute; aggregate into the requested buckets.
  const std::size_t stride = static_cast<std::size_t>(
      std::max(1.0, bucket_minutes * 60.0 / res.utilization_bucket));
  std::vector<double> coarse;
  for (std::size_t i = 0; i < res.utilization.size(); i += stride) {
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t j = i; j < std::min(i + stride, res.utilization.size()); ++j, ++n) {
      acc += res.utilization[j];
    }
    coarse.push_back(n > 0 ? acc / static_cast<double>(n) : 0.0);
  }
  analytics::print_series(std::cout, label, coarse, bucket_minutes * 60.0);
}

inline void print_run_summary(const std::string& label, const nas::SearchResult& res) {
  float best = -1.0f;
  for (const auto& e : res.evals) best = std::max(best, e.reward);
  std::cout << label << "  evals=" << res.evals.size() << " cached=" << res.cache_hits
            << " timeouts=" << res.timeouts << " unique=" << res.unique_archs
            << " best=" << analytics::fmt(best) << " end="
            << analytics::fmt(res.end_time / 60.0, 0) << "min"
            << (res.converged_early ? " (converged)" : "") << "\n";
}

/// Post-trains the top-k of a search and prints the paper's three ratios per
/// model plus their quantiles. Returns the per-model rows (baseline first).
inline std::vector<analytics::PostTrainResult> post_train_report(
    const std::string& space_name, const nas::SearchResult& res, std::size_t k,
    tensor::ThreadPool& pool, const char* heading) {
  const space::SearchSpace sp = space::space_by_name(space_name);
  const data::Dataset ds = dataset_for_space(space_name);
  analytics::PostTrainOptions opts;  // 20 epochs, full data — the paper's stage 2
  const analytics::PostTrainResult baseline = analytics::post_train_baseline(ds, opts);
  const auto top = res.top_k(k);
  const auto models = analytics::post_train_many(sp, ds, top, opts, &pool);

  std::cout << "\n== " << heading << " (top-" << top.size() << " of " << space_name
            << ", baseline: " << baseline.params << " params, "
            << analytics::fmt(baseline.train_seconds, 2) << "s, "
            << nn::metric_name(ds.metric) << "=" << analytics::fmt(baseline.final_metric)
            << ") ==\n";
  analytics::Table table({"rank", "est.reward", nn::metric_name(ds.metric), "acc ratio",
                          "Pb/P", "Tb/T", "params"});
  std::vector<double> acc_r, par_r, time_r;
  for (std::size_t i = 0; i < models.size(); ++i) {
    const analytics::RatioRow row = analytics::ratios(models[i], baseline);
    acc_r.push_back(row.accuracy_ratio);
    par_r.push_back(row.param_ratio);
    time_r.push_back(row.time_ratio);
    table.add_row({std::to_string(i + 1), analytics::fmt(models[i].search_reward),
                   analytics::fmt(models[i].final_metric), analytics::fmt(row.accuracy_ratio),
                   analytics::fmt(row.param_ratio, 1), analytics::fmt(row.time_ratio, 1),
                   std::to_string(models[i].params)});
  }
  table.print(std::cout);
  if (!models.empty()) {
    std::cout << "quantiles  acc-ratio q10/50/90: " << analytics::fmt(analytics::quantile(acc_r, 0.1))
              << "/" << analytics::fmt(analytics::quantile(acc_r, 0.5)) << "/"
              << analytics::fmt(analytics::quantile(acc_r, 0.9))
              << "   Pb/P: " << analytics::fmt(analytics::quantile(par_r, 0.1), 1) << "/"
              << analytics::fmt(analytics::quantile(par_r, 0.5), 1) << "/"
              << analytics::fmt(analytics::quantile(par_r, 0.9), 1)
              << "   Tb/T: " << analytics::fmt(analytics::quantile(time_r, 0.1), 1) << "/"
              << analytics::fmt(analytics::quantile(time_r, 0.5), 1) << "/"
              << analytics::fmt(analytics::quantile(time_r, 0.9), 1) << "\n";
  }
  std::vector<analytics::PostTrainResult> out;
  out.push_back(baseline);
  out.insert(out.end(), models.begin(), models.end());
  return out;
}

}  // namespace ncnas::bench
