// Figure 11 — impact of reward-estimation fidelity: A3C on Combo (large
// space) with 10 / 20 / 30 / 40 % of the training data, fixed timeout.
//
// Paper shape to reproduce: 10-30 % reach high rewards quickly; at 40 % the
// early search is stuck at reward -1 because most generated architectures
// exceed the evaluation timeout, and only later does the agent learn to emit
// fast-training architectures and catch up.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ncnas;
  const bench::Args args = bench::Args::parse(argc, argv, /*default_minutes=*/60.0);
  tensor::ThreadPool pool;

  std::cout << "# Figure 11: A3C reward vs time at 10/20/30/40 % training data "
               "(combo-large)\n\n";
  for (double frac : {0.10, 0.20, 0.30, 0.40}) {
    const nas::SearchConfig cfg =
        bench::paper_config("combo-large", nas::SearchStrategy::kA3C, args.minutes,
                            args.seed, frac, bench::cluster_large_space());
    const nas::SearchResult res = bench::run_search("combo-large", cfg, pool);
    const std::string label = "fidelity-" + std::to_string(static_cast<int>(frac * 100)) + "%";
    bench::print_run_summary(label, res);
    std::cout << "timeout fraction: "
              << analytics::fmt(res.evals.empty() ? 0.0
                                                  : static_cast<double>(res.timeouts) /
                                                        static_cast<double>(res.evals.size()))
              << "\n";
    bench::print_trajectory(label, res, args.minutes, 10.0, -1.0);
    const auto series = analytics::resample_mean(bench::reward_stream(res),
                                                 args.minutes * 60.0, 10.0 * 60.0, -1.0);
    analytics::print_sparkline(std::cout, label, series, -1.0, 1.0);
    std::cout << "\n";
  }
  return 0;
}
