// Figure 5 — worker-node utilization over time for the same nine runs as
// Figure 4 (A3C / A2C / RDM on the three small spaces).
//
// Paper shape to reproduce: RDM holds a high plateau (~0.75 on Combo, ~0.9
// on Uno); A3C tracks RDM early and decays late as the per-agent caches
// absorb regenerated architectures; A2C shows a sawtooth from its barrier.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ncnas;
  const bench::Args args = bench::Args::parse(argc, argv, /*default_minutes=*/120.0);
  tensor::ThreadPool pool;

  const char* spaces[] = {"combo-small", "uno-small", "nt3-small"};
  const nas::SearchStrategy strategies[] = {nas::SearchStrategy::kA3C,
                                            nas::SearchStrategy::kA2C,
                                            nas::SearchStrategy::kRandom};

  std::cout << "# Figure 5: worker utilization over time (small spaces)\n"
            << "# shares the Figure 4 runs via nas_logs/\n\n";

  for (const char* space_name : spaces) {
    std::cout << "## " << space_name << "\n";
    for (nas::SearchStrategy strategy : strategies) {
      const nas::SearchConfig cfg =
          bench::paper_config(space_name, strategy, args.minutes, args.seed);
      const nas::SearchResult res = bench::run_search(space_name, cfg, pool);
      const std::string label =
          std::string(space_name) + "/util/" + nas::strategy_name(strategy);
      std::cout << label << "  mean="
                << analytics::fmt(res.utilization.empty()
                                      ? 0.0
                                      : std::accumulate(res.utilization.begin(),
                                                        res.utilization.end(), 0.0) /
                                            static_cast<double>(res.utilization.size()))
                << "\n";
      bench::print_utilization(label, res, /*bucket_minutes=*/10.0);
      analytics::print_sparkline(std::cout, std::string(nas::strategy_name(strategy)) + " ",
                                 res.utilization, 0.0, 1.0);
    }
    std::cout << "\n";
  }
  return 0;
}
