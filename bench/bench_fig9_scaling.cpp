// Figure 9 — scaling A3C on Combo (large space): utilization when growing
// the cluster by 2x and 4x via MORE WORKERS PER AGENT vs MORE AGENTS.
//
// Paper shape to reproduce: agent scaling (512-a / 1024-a) keeps utilization
// near the base-layout level; worker scaling (512-w / 1024-w) degrades it,
// because each agent's batch is synchronous and more workers per agent means
// more idle nodes waiting for the slowest evaluation in the batch.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ncnas;
  const bench::Args args = bench::Args::parse(argc, argv, /*default_minutes=*/25.0);
  tensor::ThreadPool pool;

  struct Layout {
    const char* label;
    nas::ClusterConfig cluster;
  };
  const Layout layouts[] = {
      {"S   (9a x  5w, paper 256)", bench::cluster_s()},
      {"2Sw (9a x 11w, paper 512-w)", bench::cluster_2s_worker()},
      {"2Sa (18a x 5w, paper 512-a)", bench::cluster_2s_agent()},
      {"4Sw (9a x 21w, paper 1024-w)", bench::cluster_4s_worker()},
      {"4Sa (36a x 5w, paper 1024-a)", bench::cluster_4s_agent()},
  };

  std::cout << "# Figure 9: A3C utilization under worker- vs agent-scaling (combo-large)\n\n";
  analytics::Table summary({"layout", "workers", "mean util", "evals", "timeouts", "best"});
  for (const Layout& layout : layouts) {
    const nas::SearchConfig cfg =
        bench::paper_config("combo-large", nas::SearchStrategy::kA3C, args.minutes,
                            args.seed, -1.0, layout.cluster);
    const nas::SearchResult res = bench::run_search("combo-large", cfg, pool);
    const double mean_util =
        res.utilization.empty()
            ? 0.0
            : std::accumulate(res.utilization.begin(), res.utilization.end(), 0.0) /
                  static_cast<double>(res.utilization.size());
    float best = -1.0f;
    for (const auto& e : res.evals) best = std::max(best, e.reward);
    summary.add_row({layout.label, std::to_string(layout.cluster.total_workers()),
                     analytics::fmt(mean_util), std::to_string(res.evals.size()),
                     std::to_string(res.timeouts), analytics::fmt(best)});
    bench::print_utilization(std::string("fig9/") + layout.label, res, 10.0);
    analytics::print_sparkline(std::cout, layout.label, res.utilization, 0.0, 1.0);
    std::cout << "\n";
  }
  summary.print(std::cout);
  return 0;
}
