// MetricsRegistry — thread-safe named counters, gauges, and fixed-bucket
// histograms for the search internals (paper §4: Balsam's service monitored
// 1000+ concurrent evaluations; we expose the same runtime signals in-process).
//
// Instruments are registered once by name and returned by stable reference;
// updates are lock-free (relaxed atomics), so evaluator threads on the pool
// can record into the same registry the driver thread uses. A snapshot()
// copies everything into plain structs for analysis or a Prometheus-style
// text dump (`# TYPE` lines, `_bucket{le=...}` cumulative histogram rows).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <span>
#include <string>
#include <vector>

namespace ncnas::obs {

/// Monotone event count (e.g. evaluations dispatched).
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written scalar (e.g. current convergence streak).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper edges; an
/// implicit +Inf bucket catches the tail. Prometheus bucket semantics
/// (observe(v) lands in the first bucket with v <= bound).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// Per-bucket (non-cumulative) counts; last entry is the +Inf bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Exponential bucket edges: `count` bounds starting at `start`, each
/// multiplied by `factor` (the usual latency-histogram layout).
[[nodiscard]] std::vector<double> exp_buckets(double start, double factor, std::size_t count);

// ---- snapshot types (plain data, safe to keep after the registry dies) ----

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> bounds;          ///< ascending upper edges
  std::vector<std::uint64_t> buckets;  ///< per-bucket counts, last = +Inf
  std::uint64_t count = 0;
  double sum = 0.0;

  [[nodiscard]] double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
  /// Bucket-resolution quantile estimate (returns the upper edge of the
  /// bucket containing the q-quantile; +Inf bucket reports the last edge).
  [[nodiscard]] double quantile(double q) const;
};

/// Builds a HistogramSample directly from raw values (same Prometheus bucket
/// semantics as Histogram) — for consumers that aggregate offline, e.g. the
/// journal replay computing PS-exchange latency quantiles.
[[nodiscard]] HistogramSample make_histogram_sample(std::string name, std::vector<double> bounds,
                                                    std::span<const double> values);

struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Lookup helpers; counters/gauges return 0 when absent, histograms null.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  [[nodiscard]] double gauge_value(const std::string& name) const;
  [[nodiscard]] const HistogramSample* histogram(const std::string& name) const;

  /// Prometheus text exposition format.
  void to_prometheus(std::ostream& os) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create by name; the returned reference is stable for the
  /// registry's lifetime. `bounds` only applies on first registration.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  [[nodiscard]] MetricsSnapshot snapshot() const;
  void dump_prometheus(std::ostream& os) const;

 private:
  mutable std::mutex mu_;  // guards the maps only; instruments are atomic
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ncnas::obs
