// Exporter — the live telemetry plane: turns the post-hoc Telemetry bundle
// (metrics / journal / watchdog / profiler) into a stream you can watch while
// the search runs, the in-process analogue of the paper's live Theta
// utilization monitoring (Figs. 5/6b/9).
//
// Three cooperating pieces, all strictly read-only over telemetry snapshots:
//
//   SnapshotBus — a lock-light publish/subscribe fan-out the driver ticks on
//   the *virtual* clock. `due(t)` is one relaxed atomic load, so the null
//   cadence path costs nothing on the event loop; a due tick snapshots the
//   telemetry, computes the journal delta since the previous publication,
//   and hands one PublishedSnapshot to every registered sink.
//
//   HttpExporter — a minimal embedded HTTP server (blocking sockets, no
//   third-party deps) serving the latest published payloads: `/metrics` in
//   OpenMetrics text format, `/healthz` fed by the watchdog, and `/progress`
//   as JSON. Requests never touch live telemetry — they read strings rendered
//   at publish time, so a slow scraper cannot perturb the search.
//
//   Live JSONL journal sink — see Journal::open_live_export: stream-flushed
//   append so `tail -f` mid-run never sees torn lines.
//
// Opt-in via Telemetry::enable_exporter(ExporterConfig) following the PR 1/3
// convention: a Telemetry without an exporter is bit-identical to before, and
// enabling it must not perturb results either — it only reads snapshots
// (Exporter.OnOffLeavesResultsBitIdentical proves this for all 4 strategies).
// Every failure mode (bind in use, write error, dead scraper) degrades
// gracefully into the `ncnas_exporter_errors_total` counter; the search
// never aborts because observation failed.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "ncnas/obs/journal.hpp"
#include "ncnas/obs/metrics.hpp"
#include "ncnas/obs/profiler.hpp"

namespace ncnas::obs {

class Telemetry;  // telemetry.hpp includes this header; break the cycle

struct ExporterConfig {
  /// Virtual seconds between publications; 0 publishes on every driver tick.
  double cadence_seconds = 60.0;
  /// TCP port for the embedded HTTP server: -1 disables it, 0 binds an
  /// ephemeral port (read it back via Exporter::http_port()).
  int http_port = -1;
  std::string bind_address = "127.0.0.1";
  /// Non-empty: open this path as a stream-flushed live JSONL journal sink
  /// (enables the journal). `tail -f` on it works mid-run.
  std::string live_journal_path;
  bool live_journal_append = false;  ///< append to an existing file vs truncate
  std::size_t top_k = 5;       ///< architectures listed in /progress
  std::size_t hot_scopes = 5;  ///< profiler scopes listed in /progress
};

/// One of the top-k architectures by estimated reward, as /progress lists it.
struct TopArchProgress {
  std::string arch;  ///< space::arch_key encoding
  float reward = 0.0f;
  std::size_t params = 0;
  std::uint32_t agent = 0;
};

/// Per-agent live status, as /progress lists it.
struct AgentProgress {
  std::uint32_t id = 0;
  std::string status;  ///< "running" | "stopped" | "converged" | "dead"
  std::size_t evals = 0;
  std::size_t cache_hits = 0;
  std::size_t timeouts = 0;
  std::size_t cached_streak = 0;
  float best_reward = 0.0f;
  bool has_best = false;  ///< false until the agent finished an evaluation
};

/// A profiler scope in the /progress hot-scope list (self-time ranked).
struct HotScopeProgress {
  std::string name;
  std::uint64_t calls = 0;
  double total_ms = 0.0;
  double self_ms = 0.0;
};

/// The live run state served at /progress. The driver fills the search-side
/// fields when it ticks the exporter; the exporter adds the watchdog verdict,
/// profiler hot scopes, and its own bookkeeping at publish time.
struct ProgressSnapshot {
  std::uint64_t seq = 0;        ///< publication ordinal (exporter-assigned)
  double virtual_time = 0.0;    ///< driver tick time, simulated seconds
  double wall_time_seconds = 0.0;
  std::string strategy;
  bool finished = false;
  bool converged = false;

  std::size_t evals_done = 0;
  std::size_t real_evals = 0;
  std::size_t cache_hits = 0;
  std::size_t timeouts = 0;
  std::size_t ppo_updates = 0;
  std::size_t batches_in_flight = 0;
  float best_reward = 0.0f;
  bool has_best = false;
  std::vector<TopArchProgress> top;
  std::vector<AgentProgress> agents;

  // Fault and recovery accounting (all zero on a fault-free run).
  std::size_t retries = 0;
  std::size_t exhausted = 0;
  std::size_t lost_results = 0;
  std::size_t crashed_workers = 0;
  std::size_t dead_agents = 0;

  // Filled by the exporter at publish time.
  bool healthy = true;
  std::size_t stragglers = 0;
  std::size_t stalls = 0;
  std::vector<HotScopeProgress> hot_scopes;
  std::uint64_t journal_events = 0;
  std::uint64_t exporter_errors = 0;
};

/// What a SnapshotBus sink receives per publication: the full metrics
/// snapshot (counters are cumulative — consumers diff), the journal events
/// appended since the previous publication, and the progress view.
struct PublishedSnapshot {
  std::uint64_t seq = 0;
  double virtual_time = 0.0;
  MetricsSnapshot metrics;
  std::size_t journal_offset = 0;  ///< index of journal_delta.front() in the journal
  std::vector<JournalEvent> journal_delta;
  ProgressSnapshot progress;
};

/// Lock-light periodic fan-out on the driver's virtual clock. `due()` is one
/// relaxed atomic load (the event-loop fast path); `publish()` stamps the
/// sequence number, advances the cadence, and dispatches under a mutex.
class SnapshotBus {
 public:
  using Sink = std::function<void(const PublishedSnapshot&)>;

  explicit SnapshotBus(double cadence_seconds) : cadence_(cadence_seconds) {}
  SnapshotBus(const SnapshotBus&) = delete;
  SnapshotBus& operator=(const SnapshotBus&) = delete;

  void add_sink(Sink sink);

  /// True when a publication is due at virtual time `vt`. A cadence of 0
  /// is always due (publish on every tick).
  [[nodiscard]] bool due(double vt) const noexcept {
    return vt >= next_due_.load(std::memory_order_relaxed);
  }

  /// Stamps `snap.seq` (and the nested progress.seq), advances the cadence
  /// so the next publication lands on the following cadence boundary, and
  /// dispatches to every sink in registration order. Returns the seq.
  std::uint64_t publish(PublishedSnapshot snap);

  [[nodiscard]] std::uint64_t publications() const noexcept {
    return seq_.load(std::memory_order_relaxed);
  }

 private:
  double cadence_;
  std::atomic<double> next_due_{0.0};
  std::atomic<std::uint64_t> seq_{0};
  mutable std::mutex mu_;  // guards sinks_ and serializes dispatch
  std::vector<Sink> sinks_;
};

/// Minimal embedded HTTP/1.1 server: blocking sockets, one short-lived
/// connection at a time, Connection: close. The handler maps a request path
/// to (status, content-type, body). A bind failure does not throw — port()
/// reports -1 and every failure increments the error counter.
class HttpExporter {
 public:
  /// status, content-type, body for a GET of `path`.
  using Handler = std::function<std::tuple<int, std::string, std::string>(const std::string&)>;

  HttpExporter(const std::string& bind_address, int port, Handler handler,
               Counter* error_counter);
  ~HttpExporter();
  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Actual bound port; -1 when the bind failed (the server is then inert).
  [[nodiscard]] int port() const noexcept { return port_; }
  void stop();

 private:
  void serve();

  Handler handler_;
  Counter* errors_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> stop_{false};
  std::unique_ptr<std::thread> thread_;
};

/// Blocking HTTP GET against a local exporter (used by nas_top and tests).
/// Returns the body, or nullopt on connect/transport failure; `status_out`
/// (optional) receives the HTTP status code.
[[nodiscard]] std::optional<std::string> http_get(const std::string& host, int port,
                                                  const std::string& path,
                                                  int* status_out = nullptr);

// ---- OpenMetrics text format ------------------------------------------------

/// Renders a metrics snapshot in OpenMetrics text format (counter families
/// lose their `_total` suffix on the TYPE line, histogram buckets are
/// cumulative with a closing `+Inf`, the exposition ends with `# EOF`).
/// `info_labels` (optional) adds one `ncnas_exporter_info{...} 1` gauge with
/// properly escaped label values.
void render_openmetrics(const MetricsSnapshot& m, std::ostream& os,
                        const std::vector<std::pair<std::string, std::string>>& info_labels = {});
[[nodiscard]] std::string openmetrics_text(
    const MetricsSnapshot& m,
    const std::vector<std::pair<std::string, std::string>>& info_labels = {});

/// Textual OpenMetrics conformance check: structure, one trailing `# EOF`,
/// counter samples ending `_total`, cumulative non-decreasing histogram
/// buckets with ascending `le` edges closed by `+Inf`, `_count` equal to the
/// `+Inf` bucket, and label-value escaping. Returns true when the payload
/// conforms; otherwise `error` (optional) receives the first violation.
[[nodiscard]] bool validate_openmetrics(std::string_view text, std::string* error = nullptr);

// ---- /progress JSON ---------------------------------------------------------

[[nodiscard]] std::string progress_to_json(const ProgressSnapshot& p);
/// Parses progress_to_json output (nas_top's poll path). Throws
/// std::runtime_error on malformed input.
[[nodiscard]] ProgressSnapshot parse_progress_json(std::string_view json);

// ---- the exporter facade ----------------------------------------------------

class Exporter {
 public:
  /// Wires the bus, the optional HTTP server, and the optional live journal
  /// sink against `telemetry` (must outlive the exporter). Registers
  /// `ncnas_exporter_errors_total` immediately so a clean run still exports
  /// the zero. Construction never throws on environmental failure (port in
  /// use, unwritable live path): the affected sink is disabled, the error
  /// counter incremented, and a one-line warning goes to stderr.
  Exporter(ExporterConfig cfg, Telemetry& telemetry);
  ~Exporter();
  Exporter(const Exporter&) = delete;
  Exporter& operator=(const Exporter&) = delete;

  [[nodiscard]] const ExporterConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] bool due(double vt) const noexcept { return bus_.due(vt); }

  /// Publish-if-due; the driver calls this between completions.
  void tick(double vt, ProgressSnapshot progress);
  /// Unconditional publish (the driver's final flush at end of run).
  void publish(double vt, ProgressSnapshot progress);

  void add_sink(SnapshotBus::Sink sink) { bus_.add_sink(std::move(sink)); }

  [[nodiscard]] std::uint64_t publications() const noexcept { return bus_.publications(); }
  /// Actual HTTP port; -1 when disabled or the bind failed.
  [[nodiscard]] int http_port() const noexcept { return http_ ? http_->port() : -1; }
  [[nodiscard]] std::uint64_t errors() const noexcept { return errors_->value(); }

  // Latest rendered payloads — what the HTTP endpoints serve. Empty (and
  // healthz 200 "no publication yet") before the first publication.
  [[nodiscard]] std::string metrics_text() const;
  [[nodiscard]] std::string progress_json() const;
  [[nodiscard]] std::string healthz_body() const;
  [[nodiscard]] int healthz_status() const;

  /// Registers (or refreshes) a custom endpoint: a GET of `path` (e.g.
  /// "/tenants") returns 200 with `body` under `content_type`. Like the
  /// built-in payloads, the body is a pre-rendered string — requests never
  /// touch live state. The built-in paths (/metrics, /progress, /healthz)
  /// cannot be overridden. Thread-safe; the SearchServer refreshes its
  /// /tenants JSON through this every scheduling round.
  void set_payload(const std::string& path, std::string content_type, std::string body);
  /// The current body of a custom endpoint (empty when unset).
  [[nodiscard]] std::string payload(const std::string& path) const;

 private:
  void render_payloads(const PublishedSnapshot& snap);  // the bus's first sink

  ExporterConfig cfg_;
  Telemetry* telemetry_;
  Counter* errors_;
  SnapshotBus bus_;
  std::size_t journal_seen_ = 0;  // events already shipped in a delta
  double last_vt_ = 0.0;          // publication clock floor (see publish())
  std::unique_ptr<HttpExporter> http_;

  mutable std::mutex payload_mu_;
  std::string metrics_text_;
  std::string progress_json_;
  std::string healthz_body_ = "ok: no publication yet\n";
  int healthz_status_ = 200;
  /// path -> (content type, body) for set_payload endpoints.
  std::map<std::string, std::pair<std::string, std::string>> custom_payloads_;
};

}  // namespace ncnas::obs
