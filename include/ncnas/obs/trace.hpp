// TraceRecorder — structured span/instant events from the search internals
// (agent cycles, PPO updates, PS round trips, evaluations) into a bounded
// ring buffer, exportable as Chrome about://tracing JSON or JSONL.
//
// Timestamps are the driver's *virtual* clock (simulated seconds, stored as
// microseconds per the Chrome trace format); `tid` is the agent id, so the
// trace viewer lays the run out as one row per agent — the in-process
// equivalent of the paper's Balsam job timeline. record() takes one short
// mutex-protected slot write; when the buffer wraps, the oldest events are
// overwritten and counted in dropped().
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace ncnas::obs {

/// One numeric annotation on an event (flags are encoded as 0/1).
struct TraceArg {
  std::string key;
  double value = 0.0;
};

struct TraceEvent {
  std::string name;
  std::string cat;
  char phase = 'X';     ///< 'X' = complete span, 'i' = instant
  double ts_us = 0.0;   ///< virtual-clock timestamp, microseconds
  double dur_us = 0.0;  ///< span duration, microseconds (0 for instants)
  std::uint32_t tid = 0;  ///< agent id
  std::vector<TraceArg> args;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 1 << 16);

  void record(TraceEvent e);
  /// Convenience constructors; times in virtual seconds.
  void span(std::string name, std::string cat, double start_s, double dur_s, std::uint32_t tid,
            std::vector<TraceArg> args = {});
  void instant(std::string name, std::string cat, double ts_s, std::uint32_t tid,
               std::vector<TraceArg> args = {});

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Total events ever recorded (including since-overwritten ones).
  [[nodiscard]] std::uint64_t recorded() const;
  /// Events lost to ring wraparound.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Copies the retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  void clear();

  /// Chrome trace format: {"traceEvents": [...]} — load via about://tracing
  /// or https://ui.perfetto.dev. `dropped` (events lost to ring wraparound)
  /// is surfaced in the file's otherData block so a truncated trace is never
  /// mistaken for a complete one.
  static void export_chrome(const std::vector<TraceEvent>& events, std::ostream& os,
                            std::uint64_t dropped = 0);
  /// One JSON object per line (no wrapper), for log-pipeline ingestion. A
  /// non-zero `dropped` count appends a final {"meta":...} marker line.
  static void export_jsonl(const std::vector<TraceEvent>& events, std::ostream& os,
                           std::uint64_t dropped = 0);

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;       ///< overwrite cursor once full
  std::uint64_t recorded_ = 0;
};

}  // namespace ncnas::obs
