// Journal — a durable, schema-versioned structured event log of *what the
// search did*: one typed record per run/evaluation/update/exchange event,
// stamped with the agent id and the driver's virtual clock. This is the
// in-process analogue of the paper's Balsam job database, whose per-job
// records made the Theta runs diagnosable (Figures 4–13: reward
// trajectories, utilization, straggler and timeout accounting).
//
// Layering: the driver emits the eval_* events at the same harvest points
// where the SearchResult counters increment, so a journal replay reconciles
// with the result exactly; the ParameterServer and PPO controller emit their
// own exchange/update events through the same opt-in Telemetry bundle.
// Consumers attach either live (subscribe(), e.g. the HealthWatchdog) or
// post-hoc (export_jsonl -> import_jsonl -> summarize_journal, e.g. the
// examples/run_report tool).
//
// The schema is versioned (kJournalSchemaVersion): every exported line
// carries "v", import_jsonl rejects lines from a newer schema, and unknown
// event types from older writers are skipped rather than fatal.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ncnas::obs {

class Counter;  // metrics.hpp; only used as an optional error sink

/// JSON string literal with the journal's escaping rules (quotes, backslash,
/// \n \t \r, \uXXXX for other control bytes). Shared by every JSON-emitting
/// tool in the obs layer so escaping stays consistent across artifacts.
void write_json_string(std::ostream& os, std::string_view s);
/// JSON number: integers print exactly, other finite doubles with enough
/// digits to round-trip; non-finite values clamp to 0 (JSON has no Inf/NaN).
void write_json_number(std::ostream& os, double v);

/// Bump when the JSONL layout or event semantics change incompatibly.
inline constexpr int kJournalSchemaVersion = 1;

/// Agent id used for run-level events (serialized as -1).
inline constexpr std::uint32_t kNoAgent = std::numeric_limits<std::uint32_t>::max();

enum class JournalEventType : std::uint8_t {
  kRunStarted,         ///< payload: agents, workers, batch, wall_time_s, strategy, seed
  kRunFinished,        ///< payload: end_time_s, evals, best_reward, cache_hits, timeouts,
                       ///<          ppo_updates, converged, wall_time_s
  kEvalDispatched,     ///< payload: duration_s, worker, train_wall_ms
  kEvalFinished,       ///< payload: reward, duration_s, timed_out, params
  kEvalCached,         ///< payload: reward, timed_out [, shared=1 for shared-cache hits]
  kEvalTimeout,        ///< payload: duration_s
  kPpoUpdate,          ///< payload: policy_loss, value_loss, entropy, approx_kl, batch
  kPsExchange,         ///< payload: mode (0 sync / 1 async), wait_s, staleness
  kAgentConverged,     ///< payload: streak
  kStragglerDetected,  ///< payload: duration_s, expected_s, multiple (watchdog)
  kAgentStalled,       ///< payload: silent_s, window_s (watchdog)
  // Fault-injection and recovery events (FaultInjector + resilient driver).
  // Additions within schema v1: older readers skip unknown event names.
  kEvalFailed,         ///< payload: attempt, worker, reason (0 fault / 1 crash)
  kEvalRetried,        ///< payload: attempt, backoff_s
  kEvalExhausted,      ///< payload: attempts, reward (the floor)
  kResultLost,         ///< payload: attempt, worker, duration_s
  kWorkerCrashed,      ///< payload: worker (t = planned crash time)
  kAgentDead,          ///< payload: workers (t = detection time)
  kPsDropped,          ///< payload: mode (0 sync / 1 async)
  kPsDelayed,          ///< payload: mode, delay_s
  kBarrierTimeout,     ///< payload: absent, timeout_s (partial A2C release)
  // Checkpoint/restore events (ncnas::ckpt + resumable driver). Additions
  // within schema v1: older readers skip unknown event names.
  kCheckpointWritten,  ///< payload: ordinal, bytes (t = snapshot virtual time)
  kRunResumed,         ///< payload: from_t, prior_events, ordinal, wall_time_s, strategy
  // Multi-fidelity ladder events (exec::FidelityLadder + driver). Additions
  // within schema v1: older readers skip unknown event names.
  kLadderRung,         ///< payload: rung, candidates, survivors, trainings,
                       ///<          warm_starts, rung_hits, timeouts
};

/// Stable wire name of an event type ("eval_finished", ...).
[[nodiscard]] const char* journal_event_name(JournalEventType type);
/// Inverse of journal_event_name; nullopt for unknown names.
[[nodiscard]] std::optional<JournalEventType> journal_event_from_name(std::string_view name);

/// One numeric annotation on an event (flags are encoded as 0/1).
struct JournalField {
  std::string key;
  double value = 0.0;
};

struct JournalEvent {
  JournalEventType type = JournalEventType::kRunStarted;
  double t = 0.0;                  ///< virtual-clock timestamp, seconds
  std::uint32_t agent = kNoAgent;  ///< emitting agent; kNoAgent for run-level
  std::uint64_t seq = 0;           ///< journal-assigned emission order
  std::vector<JournalField> payload;

  [[nodiscard]] double field(std::string_view key, double fallback = 0.0) const;
  [[nodiscard]] bool has_field(std::string_view key) const;
};

/// Thread-safe append-only event log. append() takes one short mutex-guarded
/// buffer write, then notifies subscribers outside the buffer lock, so a
/// subscriber may itself append (the HealthWatchdog does) without deadlock.
/// Subscribers must be registered before events flow and must not subscribe
/// from inside a callback; callback order across concurrently appending
/// threads is unspecified, but every subscriber sees every event exactly once.
class Journal {
 public:
  using Subscriber = std::function<void(const JournalEvent&)>;

  explicit Journal(std::size_t reserve = 1024);
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  void subscribe(Subscriber fn);

  void append(JournalEventType type, double t, std::uint32_t agent = kNoAgent,
              std::vector<JournalField> payload = {});

  [[nodiscard]] std::size_t size() const;
  /// Copies the retained events in emission (seq) order.
  [[nodiscard]] std::vector<JournalEvent> snapshot() const;
  /// Copies events with index >= `start` only (the exporter's delta path;
  /// avoids re-copying the whole journal on every publication).
  [[nodiscard]] std::vector<JournalEvent> snapshot_since(std::size_t start) const;
  void clear();

  // ---- live streaming (opt-in; the default buffered path is untouched) ----

  /// Opens `path` as a live JSONL sink: writes the schema header and every
  /// already-buffered event immediately, then one line per subsequent
  /// append(), each written as a single unbuffered line and flushed before
  /// the appender returns — `tail -f` never sees torn lines. `append` opens
  /// the file in append mode instead of truncating. `error_counter`
  /// (optional) is incremented on write failures; after the first failure
  /// the sink closes itself and the search carries on unobserved. Returns
  /// false (and counts one error) when the file cannot be opened.
  bool open_live_export(const std::string& path, bool append = false,
                        Counter* error_counter = nullptr);
  void close_live_export();
  [[nodiscard]] bool live_export_open() const;
  /// Write failures the live sink swallowed (0 on a healthy stream).
  [[nodiscard]] std::uint64_t live_export_errors() const;

  /// One JSON object per line: a schema header line, then one line per event.
  void export_jsonl(std::ostream& os) const;
  static void export_jsonl(const std::vector<JournalEvent>& events, std::ostream& os);
  /// Parses a stream written by export_jsonl. Throws std::runtime_error on a
  /// newer schema version or malformed lines; events of unknown type (from an
  /// older reader's perspective) are skipped.
  [[nodiscard]] static std::vector<JournalEvent> import_jsonl(std::istream& is);

 private:
  void live_write_locked(const JournalEvent& e);  // requires mu_

  mutable std::mutex mu_;                      // guards events_ / next_seq_ / live sink
  mutable std::recursive_mutex notify_mu_;     // serializes subscriber dispatch
  std::vector<JournalEvent> events_;
  std::vector<Subscriber> subscribers_;
  std::uint64_t next_seq_ = 0;
  std::ofstream live_;                         // open only in live-export mode
  Counter* live_errors_sink_ = nullptr;
  std::uint64_t live_errors_ = 0;
};

// ---- replay -----------------------------------------------------------------

/// Per-agent activity derived from a journal replay.
struct AgentActivity {
  std::size_t evals = 0;        ///< finished + cached
  std::size_t cached = 0;
  std::size_t timeouts = 0;
  std::size_t ppo_updates = 0;
  double last_event_t = 0.0;
  float best_reward = -std::numeric_limits<float>::infinity();
};

/// Everything the run-report tooling derives from one journal. Eval counting
/// applies the driver's own deadline rule (events past wall_time_s are
/// dropped), so `evals` / `best_reward` match the SearchResult exactly.
struct RunSummary {
  bool has_run_started = false;
  bool has_run_finished = false;
  int strategy = -1;  ///< SearchStrategy index from run_started; -1 if absent
  std::size_t agents_declared = 0;
  std::size_t workers_per_agent = 0;
  double wall_time_s = std::numeric_limits<double>::infinity();
  double end_time_s = 0.0;
  bool converged = false;

  std::size_t evals = 0;  ///< finished + cached within the deadline
  std::size_t real_evals = 0;
  std::size_t cache_hits = 0;
  /// Subset of cache_hits whose eval_cached event carries the `shared`
  /// marker: served from the process-wide SharedEvalCache.
  std::size_t shared_cache_hits = 0;
  std::size_t timeouts = 0;
  std::size_t ppo_updates = 0;
  std::size_t ps_exchanges = 0;
  std::size_t stragglers = 0;
  std::size_t stalls = 0;
  std::vector<std::uint32_t> converged_agents;  ///< unique, first-convergence order

  // Fault and recovery accounting. These mirror the SearchResult fault
  // counters exactly (no deadline filter: a retry or crash is real even when
  // the record it fed was cut by the deadline), so a replay of a faulty run
  // reconciles with the returned result.
  std::size_t eval_failures = 0;   ///< failed dispatch attempts (fault or crash)
  std::size_t retries = 0;         ///< attempts re-dispatched after backoff
  std::size_t exhausted = 0;       ///< records floored after retry exhaustion
  std::size_t lost_results = 0;    ///< completed tasks whose result was dropped
  std::size_t crashed_workers = 0; ///< workers lost to the fault plan
  std::size_t dead_agents = 0;     ///< agents that lost every worker
  std::size_t ps_dropped = 0;      ///< PS exchanges that never arrived
  std::size_t ps_delayed = 0;      ///< PS exchanges that arrived late
  std::size_t barrier_timeouts = 0;///< partial A2C rounds forced by timeout

  // Checkpoint/restore accounting. Counted with no deadline filter (a
  // snapshot or a resume is real regardless of when it happened), mirroring
  // SearchResult::checkpoints_written / resumes.
  std::size_t checkpoints = 0;          ///< snapshots made durable
  std::size_t resumes = 0;              ///< run_resumed events seen
  std::vector<double> resume_times;     ///< virtual times the run was resumed at

  // Fidelity-ladder accounting. Counted with no deadline filter (a rung
  // training is real worker time regardless of the deadline), mirroring
  // SearchResult::ladder_* — a replayed ladder run reconciles 1:1 with the
  // returned result's counters. All zero on flat runs.
  struct LadderRungTotals {
    std::size_t candidates = 0;
    std::size_t survivors = 0;
    std::size_t trainings = 0;
    std::size_t warm_starts = 0;
    std::size_t rung_hits = 0;
    std::size_t timeouts = 0;
  };
  std::size_t ladder_rung_events = 0;   ///< ladder_rung events seen
  std::size_t ladder_trainings = 0;
  std::size_t ladder_promotions = 0;    ///< sum of per-event survivors
  std::size_t ladder_warm_starts = 0;
  std::size_t ladder_rung_hits = 0;
  std::size_t ladder_timeouts = 0;
  std::map<std::uint32_t, LadderRungTotals> ladder_rungs;  ///< keyed by rung index
  /// True when the journal recorded any injected fault or recovery action.
  [[nodiscard]] bool faulty() const {
    return eval_failures + retries + exhausted + lost_results + crashed_workers + dead_agents +
               ps_dropped + ps_delayed + barrier_timeouts >
           0;
  }

  float best_reward = -std::numeric_limits<float>::infinity();
  double best_reward_t = 0.0;
  std::vector<std::pair<double, float>> rewards;  ///< (t, reward), sorted by t
  std::map<std::uint32_t, AgentActivity> per_agent;
  std::vector<double> ps_wait_seconds;  ///< sync-exchange barrier waits
  std::vector<double> ps_staleness;     ///< async-exchange gradient staleness

  /// Eval rate of one agent in evaluations per simulated minute.
  [[nodiscard]] double agent_rate_per_min(std::uint32_t agent) const;
};

/// Replays a journal (as exported/imported) into a RunSummary.
[[nodiscard]] RunSummary summarize_journal(const std::vector<JournalEvent>& events);

/// Stitches the journal of a resumed process onto the journal of the process
/// it replaced. `resumed` must contain a run_resumed event whose prior_events
/// payload is the snapshot's journal watermark: every `prior` event past that
/// watermark was re-done (and re-logged) after the resume, so `prior` is
/// truncated to the watermark, `resumed` is appended, and seq is reassigned
/// contiguously. Composes across chained resumes — merge pairwise in order.
/// Throws std::runtime_error when `resumed` has no run_resumed event or
/// `prior` is shorter than the watermark (the journals don't belong together).
[[nodiscard]] std::vector<JournalEvent> merge_resumed_journal(
    std::vector<JournalEvent> prior, const std::vector<JournalEvent>& resumed);

/// Machine-readable form of a RunSummary: one JSON object mirroring every
/// field (per-agent activity keyed by agent id, PS latency samples included),
/// so run_report/analyze_log --format=json and external tooling (nas_top)
/// consume the same replay the terminal report renders.
void export_run_summary_json(const RunSummary& sum, std::ostream& os);

}  // namespace ncnas::obs
