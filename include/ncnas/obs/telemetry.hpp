// Telemetry — the bundle handed to the search stack via
// SearchConfig::telemetry: one MetricsRegistry, one TraceRecorder, and an
// optional structured Journal with an optional HealthWatchdog on top.
// A null pointer disables all instrumentation (zero overhead, bit-identical
// search results); a live instance collects every signal for the whole run.
//
// Canonical metric names and the journal event schema emitted by the
// instrumented internals are documented in README.md §Observability.
#pragma once

#include <memory>
#include <ostream>

#include "ncnas/obs/exporter.hpp"
#include "ncnas/obs/journal.hpp"
#include "ncnas/obs/metrics.hpp"
#include "ncnas/obs/profiler.hpp"
#include "ncnas/obs/stopwatch.hpp"
#include "ncnas/obs/trace.hpp"
#include "ncnas/obs/watchdog.hpp"

namespace ncnas::obs {

/// Plain-data capture of a Telemetry instance at one point in time; safe to
/// keep in a SearchResult after the registry itself is gone.
struct TelemetrySnapshot {
  MetricsSnapshot metrics;
  std::vector<TraceEvent> trace;
  std::vector<JournalEvent> journal;  ///< empty when the journal is disabled
  ProfileSnapshot profile;            ///< empty when the profiler is disabled
};

class Telemetry {
 public:
  explicit Telemetry(std::size_t trace_capacity = 1 << 16) : trace_(trace_capacity) {}
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept { return metrics_; }
  [[nodiscard]] TraceRecorder& trace() noexcept { return trace_; }
  [[nodiscard]] const TraceRecorder& trace() const noexcept { return trace_; }

  /// Opt into the structured journal. Idempotent; call before handing the
  /// bundle to a driver so the instrumented layers resolve the pointer.
  Journal& enable_journal(std::size_t reserve = 1024) {
    if (!journal_) journal_ = std::make_unique<Journal>(reserve);
    return *journal_;
  }
  /// Null until enable_journal(); instrumented layers treat null as "off".
  [[nodiscard]] Journal* journal() noexcept { return journal_.get(); }
  [[nodiscard]] const Journal* journal() const noexcept { return journal_.get(); }

  /// Opt into health watching (enables the journal too). The watchdog
  /// subscribes to the journal and writes verdicts into both the journal and
  /// the metrics registry. Idempotent; `cfg` applies on first call only.
  HealthWatchdog& enable_watchdog(WatchdogConfig cfg = {}) {
    if (!watchdog_) {
      Journal& journal = enable_journal();
      watchdog_ = std::make_unique<HealthWatchdog>(cfg, &journal, &metrics_);
      HealthWatchdog* w = watchdog_.get();
      journal.subscribe([w](const JournalEvent& e) { w->on_event(e); });
    }
    return *watchdog_;
  }
  [[nodiscard]] HealthWatchdog* watchdog() noexcept { return watchdog_.get(); }
  [[nodiscard]] const HealthWatchdog* watchdog() const noexcept { return watchdog_.get(); }

  /// Opt into the hierarchical scoped profiler. Idempotent. The profiler
  /// only records while a driver (or the caller, via ProfilerInstallGuard)
  /// has installed it as the process-wide sink.
  Profiler& enable_profiler() {
    if (!profiler_) profiler_ = std::make_unique<Profiler>();
    return *profiler_;
  }
  /// Null until enable_profiler(); the driver treats null as "off".
  [[nodiscard]] Profiler* profiler() noexcept { return profiler_.get(); }
  [[nodiscard]] const Profiler* profiler() const noexcept { return profiler_.get(); }

  /// Opt into the live telemetry plane (SnapshotBus + optional /metrics
  /// HTTP endpoint + optional stream-flushed live journal). Idempotent;
  /// `cfg` applies on first call only. The driver ticks the exporter on the
  /// virtual clock; publication is read-only over snapshots, so enabling it
  /// leaves SearchResult bit-identical (Exporter tests prove it).
  Exporter& enable_exporter(ExporterConfig cfg = {}) {
    if (!exporter_) exporter_ = std::make_unique<Exporter>(std::move(cfg), *this);
    return *exporter_;
  }
  /// Null until enable_exporter(); the driver treats null as "off".
  [[nodiscard]] Exporter* exporter() noexcept { return exporter_.get(); }
  [[nodiscard]] const Exporter* exporter() const noexcept { return exporter_.get(); }

  [[nodiscard]] TelemetrySnapshot snapshot() const {
    return {metrics_.snapshot(), trace_.snapshot(),
            journal_ ? journal_->snapshot() : std::vector<JournalEvent>{},
            profiler_ ? profiler_->snapshot() : ProfileSnapshot{}};
  }

  void dump_prometheus(std::ostream& os) const { metrics_.dump_prometheus(os); }
  void export_chrome_trace(std::ostream& os) const {
    TraceRecorder::export_chrome(trace_.snapshot(), os, trace_.dropped());
  }
  void export_trace_jsonl(std::ostream& os) const {
    TraceRecorder::export_jsonl(trace_.snapshot(), os, trace_.dropped());
  }
  /// Writes the journal JSONL; a disabled journal writes nothing.
  void export_journal_jsonl(std::ostream& os) const {
    if (journal_) journal_->export_jsonl(os);
  }
  /// Writes the flat-profile JSON document; a disabled profiler writes nothing.
  void export_profile_json(std::ostream& os) const {
    if (profiler_) profiler_->snapshot().export_json(os);
  }
  /// Writes the human-readable call tree + flat table; disabled -> nothing.
  void export_profile_text(std::ostream& os) const {
    if (profiler_) profiler_->snapshot().export_text(os);
  }

 private:
  MetricsRegistry metrics_;
  TraceRecorder trace_;
  std::unique_ptr<Journal> journal_;
  std::unique_ptr<HealthWatchdog> watchdog_;
  std::unique_ptr<Profiler> profiler_;
  // Last member: the exporter references the others, so it must die first.
  std::unique_ptr<Exporter> exporter_;
};

}  // namespace ncnas::obs
