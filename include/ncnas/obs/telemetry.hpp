// Telemetry — the bundle handed to the search stack via
// SearchConfig::telemetry: one MetricsRegistry plus one TraceRecorder.
// A null pointer disables all instrumentation (zero overhead, bit-identical
// search results); a live instance collects both signals for the whole run.
//
// Canonical metric names emitted by the instrumented internals are documented
// in README.md §Observability.
#pragma once

#include <ostream>

#include "ncnas/obs/metrics.hpp"
#include "ncnas/obs/stopwatch.hpp"
#include "ncnas/obs/trace.hpp"

namespace ncnas::obs {

/// Plain-data capture of a Telemetry instance at one point in time; safe to
/// keep in a SearchResult after the registry itself is gone.
struct TelemetrySnapshot {
  MetricsSnapshot metrics;
  std::vector<TraceEvent> trace;
};

class Telemetry {
 public:
  explicit Telemetry(std::size_t trace_capacity = 1 << 16) : trace_(trace_capacity) {}
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept { return metrics_; }
  [[nodiscard]] TraceRecorder& trace() noexcept { return trace_; }
  [[nodiscard]] const TraceRecorder& trace() const noexcept { return trace_; }

  [[nodiscard]] TelemetrySnapshot snapshot() const {
    return {metrics_.snapshot(), trace_.snapshot()};
  }

  void dump_prometheus(std::ostream& os) const { metrics_.dump_prometheus(os); }
  void export_chrome_trace(std::ostream& os) const {
    TraceRecorder::export_chrome(trace_.snapshot(), os);
  }
  void export_trace_jsonl(std::ostream& os) const {
    TraceRecorder::export_jsonl(trace_.snapshot(), os);
  }

 private:
  MetricsRegistry metrics_;
  TraceRecorder trace_;
};

}  // namespace ncnas::obs
