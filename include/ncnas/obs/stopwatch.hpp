// Real wall-time measurement alongside the virtual clock. The driver's
// simulated timeline says how long an evaluation *would* take on Theta; a
// Stopwatch says how long the host actually spent computing it — the pair is
// what makes host-throughput regressions visible without touching results.
#pragma once

#include <chrono>

#include "ncnas/obs/metrics.hpp"

namespace ncnas::obs {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII timer: observes the elapsed wall milliseconds into `hist` on scope
/// exit. Null histogram = no-op, so call sites stay branch-free.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist) : hist_(hist) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (hist_ != nullptr) hist_->observe(watch_.elapsed_ms());
  }

  [[nodiscard]] double elapsed_ms() const { return watch_.elapsed_ms(); }

 private:
  Histogram* hist_;
  Stopwatch watch_;
};

}  // namespace ncnas::obs
