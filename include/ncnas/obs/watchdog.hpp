// HealthWatchdog — a Journal subscriber that watches per-agent progress and
// flags unhealthy runs, the in-process analogue of eyeballing Balsam job logs
// for stuck workers (the paper's 10-minute-timeout discipline):
//
//   straggler — a finished evaluation whose simulated duration exceeded
//   `straggler_multiple` x the expected task duration. The expectation is
//   either pinned (`expected_seconds`, the cost model's nominal duration for
//   the configured workload) or self-calibrated as the running mean of
//   completed evaluations after `min_samples` warm-up. Every eval_timeout is
//   a straggler by definition: it blew the paper's kill timer.
//
//   stall — an agent that stays silent (no journal event) while the rest of
//   the run advances past its last activity by more than the stall window
//   (`stall_seconds`, or `stall_multiple` x expected duration when 0).
//
// Verdicts go three ways at once: into the WatchdogReport (for tooling),
// into metrics (`ncnas_watchdog_stragglers_total` / `_stalls_total`), and
// back into the journal as straggler_detected / agent_stalled events, so an
// exported journal carries its own health annotations. The same on_event()
// entry point serves live subscription and offline replay (run_report).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "ncnas/obs/journal.hpp"
#include "ncnas/obs/metrics.hpp"

namespace ncnas::obs {

struct WatchdogConfig {
  /// Finished evals slower than multiple x expected duration are stragglers.
  double straggler_multiple = 3.0;
  /// Pinned expected task duration in simulated seconds; 0 self-calibrates
  /// from the running mean of completed evaluations.
  double expected_seconds = 0.0;
  /// Completed evaluations required before self-calibrated flagging starts.
  std::size_t min_samples = 8;
  /// Agent silence window as a multiple of the expected duration.
  double stall_multiple = 20.0;
  /// Explicit silence window in simulated seconds; 0 derives it from
  /// stall_multiple x expected duration.
  double stall_seconds = 0.0;
};

struct StragglerVerdict {
  std::uint32_t agent = kNoAgent;
  double t = 0.0;           ///< completion time of the flagged evaluation
  double duration_s = 0.0;  ///< its simulated duration
  double expected_s = 0.0;  ///< the expectation it was judged against
  bool timed_out = false;
};

struct StallVerdict {
  std::uint32_t agent = kNoAgent;
  double t = 0.0;         ///< when the stall was detected
  double silent_s = 0.0;  ///< how long the agent had been silent
  double window_s = 0.0;  ///< the window it exceeded
};

struct WatchdogReport {
  std::vector<StragglerVerdict> stragglers;
  std::vector<StallVerdict> stalls;
  double expected_eval_seconds = 0.0;  ///< current expectation (0 = warming up)
  std::uint64_t evals_seen = 0;
  [[nodiscard]] bool healthy() const { return stragglers.empty() && stalls.empty(); }
};

class HealthWatchdog {
 public:
  /// `journal` (optional) receives verdict events; `metrics` (optional)
  /// receives the straggler/stall counters and the expectation gauge. Both
  /// must outlive the watchdog. With both null the watchdog only accumulates
  /// its report — the replay configuration run_report uses.
  explicit HealthWatchdog(WatchdogConfig cfg = {}, Journal* journal = nullptr,
                          MetricsRegistry* metrics = nullptr);
  HealthWatchdog(const HealthWatchdog&) = delete;
  HealthWatchdog& operator=(const HealthWatchdog&) = delete;

  /// Feed one event — as a Journal subscriber callback or an offline replay
  /// loop. Thread-safe; its own verdict events are ignored on re-entry.
  void on_event(const JournalEvent& e);

  [[nodiscard]] WatchdogReport report() const;
  [[nodiscard]] const WatchdogConfig& config() const noexcept { return cfg_; }

 private:
  [[nodiscard]] double expected_locked() const;
  [[nodiscard]] double stall_window_locked() const;

  WatchdogConfig cfg_;
  Journal* journal_;
  Counter* straggler_counter_ = nullptr;
  Counter* stall_counter_ = nullptr;
  Gauge* expected_gauge_ = nullptr;

  mutable std::mutex mu_;
  double now_ = 0.0;  ///< latest virtual timestamp seen
  double duration_sum_ = 0.0;
  std::uint64_t duration_count_ = 0;
  struct AgentTrack {
    double last_active = 0.0;
    bool stalled = false;
  };
  std::map<std::uint32_t, AgentTrack> agents_;
  WatchdogReport report_;
};

}  // namespace ncnas::obs
