// Hierarchical scoped wall-clock profiler.
//
// A Profiler aggregates, per thread, a call tree of named scopes: wall time,
// call counts, self/total splits, per-scope work counters (FLOPs and bytes
// moved, fed by the tensor kernels) and allocation counters (fed by
// tensor::Tensor). snapshot() merges the per-thread trees by name into one
// ProfileSnapshot with a flat per-name view from which achieved GFLOP/s and
// arithmetic intensity fall out — the roofline inputs.
//
// Layering follows the rest of src/obs: the profiler is opt-in through
// Telemetry (enable_profiler()), and a run only records anything while a
// profiler is *installed* as the process-wide sink (the driver installs the
// telemetry's profiler for the duration of run() via ProfilerInstallGuard).
// The install indirection exists because the hot layers — tensor kernels,
// nn::Graph, nn::fit — sit below SearchConfig and cannot see a telemetry
// pointer; they consult one relaxed atomic instead. With no profiler
// installed, NCNAS_PROF_SCOPE is one atomic load and a branch: results stay
// bit-identical and config_fingerprint() never includes profiling state
// (same contract as the rest of Telemetry and KernelConfig).
//
// Scopes are strictly nested per thread (RAII); a scope opened on a pool
// worker roots at that worker's tree, so kernel time spent inside
// parallel_for appears under the worker threads, not under the caller's
// scope. The flat view aggregates by name across all paths and threads,
// which is what the per-kernel totals are read from.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ncnas::obs {

/// One merged call-tree node. self_ms is derived at snapshot time as
/// total_ms minus the sum of the children's total_ms (clamped at zero).
struct ProfileNode {
  std::string name;
  std::uint64_t calls = 0;
  double total_ms = 0.0;
  double self_ms = 0.0;
  double flops = 0.0;
  double bytes_moved = 0.0;
  std::uint64_t alloc_count = 0;
  std::uint64_t alloc_bytes = 0;
  std::vector<ProfileNode> children;
};

/// Per-name aggregate over every path and thread of the merged tree.
struct FlatProfileEntry {
  std::string name;
  std::uint64_t calls = 0;
  double total_ms = 0.0;
  double self_ms = 0.0;
  double flops = 0.0;
  double bytes_moved = 0.0;
  std::uint64_t alloc_count = 0;
  std::uint64_t alloc_bytes = 0;

  /// Achieved GFLOP/s over self time; 0 when either side is zero.
  [[nodiscard]] double gflops() const noexcept {
    return (flops > 0.0 && self_ms > 0.0) ? flops / (self_ms * 1e6) : 0.0;
  }
  /// FLOPs per byte moved; 0 when no bytes were accounted.
  [[nodiscard]] double arithmetic_intensity() const noexcept {
    return (flops > 0.0 && bytes_moved > 0.0) ? flops / bytes_moved : 0.0;
  }
};

/// Schema version stamped into export_json / parsed by import_profile_json.
inline constexpr int kProfileSchemaVersion = 1;

struct ProfileSnapshot {
  std::vector<ProfileNode> roots;  ///< merged across threads, by name per level
  std::uint64_t threads_merged = 0;

  [[nodiscard]] bool empty() const noexcept { return roots.empty(); }
  /// Flat per-name aggregation, sorted by self_ms descending.
  [[nodiscard]] std::vector<FlatProfileEntry> flat() const;
  /// Human-readable tree + flat table + roofline columns.
  void export_text(std::ostream& os) const;
  /// JSON document: header fields plus one flat record per line (the
  /// line-per-record layout is what import_profile_json and perf_diff parse).
  void export_json(std::ostream& os) const;
};

/// Parsed form of export_json — enough for perf_diff / analyze_log /
/// run_report, which only need the flat records.
struct ImportedProfile {
  int schema_version = 0;
  std::uint64_t threads_merged = 0;
  std::vector<FlatProfileEntry> flat;
};

/// Parses a document written by ProfileSnapshot::export_json. Throws
/// std::runtime_error on a malformed or wrong-schema document.
ImportedProfile import_profile_json(std::istream& is);

class Profiler {
 public:
  Profiler();
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Merges all per-thread trees (safe to call while scopes are running on
  /// other threads; open scopes contribute their completed calls only).
  [[nodiscard]] ProfileSnapshot snapshot() const;

  /// Drops all recorded trees. Not safe concurrently with open scopes.
  void reset();

 private:
  struct ThreadTree;

  ThreadTree* tree_for_current_thread();
  ThreadTree* begin_scope(std::string_view name);
  static void end_scope(ThreadTree* tree, std::uint64_t elapsed_ns, double flops, double bytes);
  static void add_work(ThreadTree* tree, double flops, double bytes);
  static void add_alloc(ThreadTree* tree, std::uint64_t bytes);

  const std::uint64_t epoch_;  // unique per instance; keys the TLS tree cache
  struct Registry;
  std::unique_ptr<Registry> reg_;

  friend class ProfileScope;
  friend void profile_work(double, double) noexcept;
  friend void profile_alloc(std::uint64_t) noexcept;
};

namespace detail {
extern std::atomic<Profiler*> g_profiler;
}  // namespace detail

/// The currently installed process-wide sink; null when profiling is off.
[[nodiscard]] inline Profiler* current_profiler() noexcept {
  return detail::g_profiler.load(std::memory_order_acquire);
}
[[nodiscard]] inline bool profiling_enabled() noexcept { return current_profiler() != nullptr; }

/// RAII install of a profiler as the process-wide sink, restoring the
/// previous sink on destruction. A null argument is a no-op guard (the
/// driver passes telemetry->profiler() verbatim, enabled or not). The
/// profiler must outlive the guard and any scope begun while installed.
class ProfilerInstallGuard {
 public:
  explicit ProfilerInstallGuard(Profiler* p) noexcept : active_(p != nullptr) {
    if (active_) prev_ = detail::g_profiler.exchange(p, std::memory_order_acq_rel);
  }
  ~ProfilerInstallGuard() {
    if (active_) detail::g_profiler.store(prev_, std::memory_order_release);
  }
  ProfilerInstallGuard(const ProfilerInstallGuard&) = delete;
  ProfilerInstallGuard& operator=(const ProfilerInstallGuard&) = delete;

 private:
  Profiler* prev_ = nullptr;
  bool active_;
};

/// RAII scope. With no profiler installed (or an empty name) the constructor
/// is one relaxed atomic load and the destructor a null check. The name is
/// only read during construction, so a temporary is fine.
class ProfileScope {
 public:
  explicit ProfileScope(std::string_view name) noexcept;
  ~ProfileScope();
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  /// Accumulates work onto this scope, folded in at scope exit under the
  /// same lock as the timing update. No-op when the scope is disabled.
  void add_work(double flops, double bytes) noexcept {
    flops_ += flops;
    bytes_ += bytes;
  }

 private:
  void* tree_ = nullptr;  // Profiler::ThreadTree*, null when disabled
  std::uint64_t start_ns_ = 0;
  double flops_ = 0.0;
  double bytes_ = 0.0;
};

/// Attributes work to the innermost open scope of the calling thread (the
/// thread root when none is open). No-op when profiling is off.
void profile_work(double flops, double bytes) noexcept;

/// Attributes one allocation of `bytes` to the innermost open scope of the
/// calling thread. No-op when profiling is off.
void profile_alloc(std::uint64_t bytes) noexcept;

// NCNAS_PROF_SCOPE("phase") — drop-in scope statement; the double expansion
// gives each use a unique variable name per line.
#define NCNAS_PROF_CAT2(a, b) a##b
#define NCNAS_PROF_CAT(a, b) NCNAS_PROF_CAT2(a, b)
#define NCNAS_PROF_SCOPE(name) \
  ::ncnas::obs::ProfileScope NCNAS_PROF_CAT(ncnas_prof_scope_, __LINE__)(name)

}  // namespace ncnas::obs
