// Controller — the paper's policy/value network: a single-layer LSTM (32
// units) that emits one categorical action per variable node of the search
// space, trained with clipped PPO (epochs=4, clip=0.2, lr=1e-3).
//
// Architecture generation is a Markov decision process: the action taken for
// layer t is fed back (through a learned embedding) as the input at t+1, so
// later layer choices condition on earlier ones. Heads share the LSTM state:
// a masked softmax policy head over the largest node arity, and a scalar
// value head used as the PPO baseline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ncnas/nn/lstm.hpp"
#include "ncnas/nn/optimizer.hpp"
#include "ncnas/obs/telemetry.hpp"
#include "ncnas/space/structure.hpp"
#include "ncnas/tensor/rng.hpp"

namespace ncnas::rl {

/// One sampled architecture plus everything PPO needs to learn from it.
struct Rollout {
  space::ArchEncoding actions;
  std::vector<float> log_probs;  ///< log pi_old(a_t | s_t), per step
  std::vector<float> values;     ///< V_old(s_t), per step
};

struct PpoConfig {
  int epochs = 4;           ///< the paper's PPO epochs
  float clip = 0.2f;        ///< the paper's clip epsilon
  float learning_rate = 0.001f;
  float value_coef = 0.5f;
  float entropy_coef = 0.01f;
  bool normalize_advantages = true;
};

struct PpoStats {
  float policy_loss = 0.0f;
  float value_loss = 0.0f;
  float entropy = 0.0f;
  float approx_kl = 0.0f;
};

class Controller {
 public:
  /// `arities[t]` is the option count of decision t (SearchSpace::arities()).
  Controller(std::vector<std::size_t> arities, std::uint64_t seed,
             std::size_t hidden = 32, std::size_t embed = 16);

  [[nodiscard]] std::size_t num_steps() const noexcept { return arities_.size(); }
  [[nodiscard]] const std::vector<std::size_t>& arities() const noexcept { return arities_; }

  /// Samples one architecture stochastically (no gradient bookkeeping).
  [[nodiscard]] Rollout sample(tensor::Rng& rng) const;

  /// Greedy (argmax) decode — the controller's current best guess.
  [[nodiscard]] space::ArchEncoding greedy() const;

  /// One PPO update over a batch of rollouts with terminal `rewards`
  /// (reward b scores rollout b). Runs cfg.epochs passes with the
  /// controller's internal Adam optimizer. `now`/`agent_id` are only read by
  /// the telemetry journal (the driver passes its virtual clock and the
  /// owning agent); both default so standalone callers stay unchanged.
  PpoStats ppo_update(std::span<const Rollout> rollouts, std::span<const float> rewards,
                      const PpoConfig& cfg, double now = 0.0,
                      std::uint32_t agent_id = obs::kNoAgent);

  /// Attach a telemetry sink (null to detach). ppo_update() then records its
  /// real wall time and publishes the latest loss/entropy/KL as gauges.
  void set_telemetry(obs::Telemetry* telemetry);

  /// --- parameter-server interface ------------------------------------------
  [[nodiscard]] std::size_t flat_size() const;
  [[nodiscard]] std::vector<float> get_flat() const;
  void set_flat(std::span<const float> flat);

  [[nodiscard]] std::vector<nn::ParamPtr> parameters() const;

  /// --- checkpoint/restore ---------------------------------------------------
  /// Everything that makes a controller resume bit-identically: the flat
  /// parameter vector plus the internal Adam moments and step count. The
  /// LSTM step cache is deliberately absent — ppo_update() fully unwinds it,
  /// so it is empty at every point a driver may snapshot.
  struct State {
    std::vector<float> flat;
    nn::Adam::State adam;
  };
  [[nodiscard]] State save_state() const;
  void load_state(const State& state);

 private:
  /// Policy-head logits for one batch of hidden states, masked to `arity`.
  void head_logits(const tensor::Tensor& h, std::size_t arity, tensor::Tensor& probs) const;
  [[nodiscard]] float head_value(const tensor::Tensor& h, std::size_t row) const;

  std::vector<std::size_t> arities_;
  std::size_t hidden_;
  std::size_t embed_dim_;
  std::size_t max_arity_;

  nn::ParamPtr embed_;  // [max_arity + 1, embed_dim]; row 0 = start token
  mutable nn::LstmCell lstm_;
  nn::ParamPtr wpi_;    // [hidden, max_arity]
  nn::ParamPtr bpi_;    // [max_arity]
  nn::ParamPtr wv_;     // [hidden, 1]
  nn::ParamPtr bv_;     // [1]
  nn::Adam adam_;

  obs::Histogram* ppo_wall_ms_ = nullptr;
  obs::Journal* journal_ = nullptr;
  obs::Gauge* ppo_policy_loss_ = nullptr;
  obs::Gauge* ppo_value_loss_ = nullptr;
  obs::Gauge* ppo_entropy_ = nullptr;
  obs::Gauge* ppo_approx_kl_ = nullptr;
};

}  // namespace ncnas::rl
