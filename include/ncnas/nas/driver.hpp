// SearchDriver — the scalable NAS run: N agents x M workers on a virtual
// clock, reproducing the paper's Theta deployments without the Theta.
//
// Each agent owns a Controller replica, an agent-specific seed, and a private
// evaluation cache. A cycle: pull parameters from the PS (A3C/A2C), sample M
// architectures, dispatch the non-cached ones onto the agent's dedicated
// worker nodes (real training runs on the host thread pool; the virtual
// clock advances by the cost model's task durations), wait for the batch,
// run local PPO epochs, and exchange deltas through the ParameterServer —
// synchronously (A2C barrier) or asynchronously (A3C). RDM skips all RL
// machinery but keeps the identical evaluation pipeline, as in the paper.
//
// The run ends at the simulated wall-time limit or earlier when every agent
// keeps regenerating cached architectures (the paper's convergence stop on
// Combo and NT3).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ncnas/ckpt/checkpoint.hpp"
#include "ncnas/exec/evaluator.hpp"
#include "ncnas/exec/fault.hpp"
#include "ncnas/exec/fidelity_ladder.hpp"
#include "ncnas/exec/shared_cache.hpp"
#include "ncnas/nas/parameter_server.hpp"
#include "ncnas/obs/telemetry.hpp"
#include "ncnas/rl/controller.hpp"
#include "ncnas/tensor/thread_pool.hpp"

namespace ncnas::nas {

enum class SearchStrategy {
  kA3C,
  kA2C,
  kRandom,
  /// Island-model aging evolution (Real et al., the paper's future-work
  /// comparison point): each agent keeps an independent population, samples
  /// parents by tournament, and mutates one decision per child. Uses the
  /// identical evaluation pipeline, cluster layout, and caches as the RL
  /// strategies, so trajectories are directly comparable.
  kEvolution,
};

[[nodiscard]] const char* strategy_name(SearchStrategy s);

struct EvolutionConfig {
  std::size_t population = 64;   ///< aging window per agent (FIFO)
  std::size_t tournament = 8;    ///< sample size for parent selection
};

struct ClusterConfig {
  std::size_t num_agents = 21;       ///< the paper's 256-node layout
  std::size_t workers_per_agent = 11;

  [[nodiscard]] std::size_t total_workers() const { return num_agents * workers_per_agent; }
  /// Agents + workers + 1 Balsam node, the paper's accounting.
  [[nodiscard]] std::size_t total_nodes() const {
    return num_agents * (1 + workers_per_agent) + 1;
  }
};

struct SearchConfig {
  SearchStrategy strategy = SearchStrategy::kA3C;
  ClusterConfig cluster;
  double wall_time_seconds = 6.0 * 3600.0;  ///< the paper's 6-hour allocations
  exec::FidelityConfig fidelity;
  /// Opt-in successive-halving fidelity ladder (>= 2 rungs enables it; the
  /// default — no rungs — keeps the flat evaluator and every existing result
  /// bit). When enabled it REPLACES `fidelity`: candidates train at
  /// `ladder.rungs` with promotion + weight inheritance, and each record's
  /// reward is its highest-rung signal. Result-affecting, so an enabled
  /// ladder is covered by config_fingerprint() (like a non-empty fault
  /// plan); `max_evaluations` then counts rung trainings, not records —
  /// the rung-weighted cost that serve quotas meter.
  exec::LadderConfig ladder;
  exec::CostModel cost;
  rl::PpoConfig ppo;
  std::uint64_t seed = 42;
  /// Architectures generated per agent cycle; 0 means workers_per_agent.
  std::size_t batch_per_agent = 0;
  /// Simulated seconds for the PPO update + PS round trip between cycles.
  double agent_overhead_seconds = 2.0;
  /// Consecutive fully-cached cycles per agent before declaring convergence.
  std::size_t convergence_streak = 5;
  /// Hard cap on evaluations (0 = none); a safety valve for tests.
  std::size_t max_evaluations = 0;
  /// A3C recent-gradient averaging window (1 = apply each delta directly).
  std::size_t async_window = 1;
  /// Per-agent evaluation cache (paper default: on). Disabling it is the
  /// ablation for the cache-induced utilization decay and convergence stop.
  bool use_cache = true;
  /// Settings for SearchStrategy::kEvolution.
  EvolutionConfig evolution;
  /// Optional telemetry sink (not owned; must outlive the driver). Null
  /// disables all instrumentation — zero overhead, bit-identical results.
  /// Deliberately excluded from config_fingerprint(): observing a search
  /// never changes it.
  obs::Telemetry* telemetry = nullptr;
  /// Optional deterministic fault plan (not owned; must outlive the driver).
  /// Null — or an injector built from an empty plan — leaves the driver on
  /// its fault-free path with bit-identical results. A non-empty plan IS
  /// covered by config_fingerprint(), because faults change the search.
  const exec::FaultInjector* faults = nullptr;
  /// Optional checkpoint policy (not owned; must outlive the driver). Null
  /// disables snapshotting entirely — zero overhead, bit-identical results.
  /// Like telemetry — and unlike a non-empty fault plan — it is excluded
  /// from config_fingerprint(): saving a search never changes it, and a
  /// snapshot must be resumable under a config that differs only in where
  /// (or whether) it keeps checkpointing.
  const ckpt::CheckpointConfig* checkpoint = nullptr;
  /// Optional process-wide cross-tenant evaluation cache (not owned; must
  /// outlive the driver). Null keeps the classic single-search behaviour.
  /// Attaching it IS result-affecting — an architecture another tenant (or
  /// an earlier cycle of this one, via a different agent) already trained is
  /// served from the shared store, skipping training and worker occupancy —
  /// so a non-null pointer is covered by config_fingerprint(), like a
  /// non-empty fault plan and unlike telemetry/checkpoint.
  exec::SharedEvalCache* shared_cache = nullptr;
  /// Identity used for shared-cache ownership/accounting (which tenant
  /// trained an entry, per-tenant hit/miss stats). Accounting only — never
  /// part of cache keys or config_fingerprint().
  std::uint32_t tenant_id = 0;
  // Note: the tensor kernel policy is process-wide (tensor::KernelConfig),
  // not a SearchConfig field — blocked/parallel kernels are bit-identical to
  // the serial reference at every thread count, so it belongs with the
  // result-neutral toggles above and stays out of config_fingerprint().
};

/// One completed reward estimation, stamped with its virtual completion time.
struct EvalRecord {
  double time = 0.0;           ///< simulated seconds since search start
  float reward = 0.0f;
  std::size_t params = 0;
  double sim_duration = 0.0;
  bool cache_hit = false;
  /// True when the result came from the process-wide SharedEvalCache —
  /// possibly trained by another tenant (implies cache_hit).
  bool shared_hit = false;
  bool timed_out = false;
  /// True when every dispatch attempt failed (retry budget spent or no live
  /// worker left): the reward is the evaluator's floor, not a measurement.
  bool failed = false;
  std::size_t agent = 0;
  /// Dispatch attempts behind this record (1 on the fault-free path).
  std::size_t attempts = 1;
  /// Highest fidelity rung the evaluation reached (0 on flat runs and for
  /// candidates eliminated at the bottom rung).
  std::uint32_t rung = 0;
  space::ArchEncoding arch;
};

struct SearchResult {
  std::vector<EvalRecord> evals;   ///< ordered by completion time
  double end_time = 0.0;           ///< when the search stopped (virtual s)
  bool converged_early = false;
  std::size_t cache_hits = 0;
  /// Subset of cache_hits served from SearchConfig::shared_cache (0 when no
  /// shared cache is attached).
  std::size_t shared_cache_hits = 0;
  std::size_t timeouts = 0;
  std::size_t unique_archs = 0;
  std::size_t ppo_updates = 0;
  // Fault-injection and recovery accounting (all zero on a fault-free run).
  // Counted at the moment the fault is handled, with no deadline filter, so
  // they reconcile 1:1 with the journal's fault events.
  std::size_t retries = 0;          ///< failed attempts re-dispatched with backoff
  std::size_t exhausted = 0;        ///< records floored after the retry budget
  std::size_t lost_results = 0;     ///< completed tasks whose result was dropped
  std::size_t crashed_workers = 0;  ///< workers lost to the fault plan
  std::size_t dead_agents = 0;      ///< agents that lost every worker
  // Checkpoint/restore accounting (both zero without a checkpoint policy).
  // checkpoints_written is run-cumulative, so an interrupted-then-resumed
  // run reports the same count as the uninterrupted one; resumes is the one
  // field that legitimately differs (0 uninterrupted, +1 per resume).
  std::size_t checkpoints_written = 0;  ///< snapshots made durable
  std::size_t resumes = 0;              ///< process restarts behind this result
  // Fidelity-ladder accounting (all zero on flat runs). Counted when the
  // ladder batch is dispatched, with no deadline filter, so they reconcile
  // 1:1 with the journal's ladder_rung events.
  std::size_t ladder_trainings = 0;    ///< rung trainings run (budget units)
  std::size_t ladder_promotions = 0;   ///< candidates promoted to a higher rung
  std::size_t ladder_warm_starts = 0;  ///< trainings resumed from inherited weights
  std::size_t ladder_rung_hits = 0;    ///< shared-cache hits at rung contexts
  std::vector<double> utilization;     ///< per-minute worker utilization
  double utilization_bucket = 60.0;
  /// Whether the run was instrumented (recorded in saved logs so replayed
  /// analyses stay comparable across versions).
  bool telemetry_enabled = false;
  /// End-of-run capture of SearchConfig::telemetry; null when disabled.
  std::shared_ptr<const obs::TelemetrySnapshot> telemetry;

  /// Best reward seen up to each eval (handy for trajectory plots).
  [[nodiscard]] std::vector<std::pair<double, float>> best_so_far() const;
  /// Top-k *unique* architectures by estimated reward (the paper's top-50
  /// selection for post-training). Excludes timed-out and retry-exhausted
  /// (floored) evaluations — neither reward is a measurement.
  [[nodiscard]] std::vector<EvalRecord> top_k(std::size_t k) const;
};

class SearchDriver {
 public:
  /// `space` and `dataset` must outlive the driver. `pool` (optional)
  /// parallelizes the real trainings behind each simulated batch.
  SearchDriver(const space::SearchSpace& space, const data::Dataset& dataset,
               SearchConfig config, tensor::ThreadPool* pool = nullptr);

  [[nodiscard]] SearchResult run();

  [[nodiscard]] const SearchConfig& config() const noexcept { return config_; }

 private:
  const space::SearchSpace* space_;
  const data::Dataset* dataset_;
  SearchConfig config_;
  tensor::ThreadPool* pool_;
};

/// Resumes a search from a snapshot written under SearchConfig::checkpoint.
/// `config` must describe the same search (config_fingerprint over
/// `space.name()` is validated against the snapshot; telemetry/checkpoint
/// wiring may differ). Restores the full driver state and runs to
/// completion: the returned SearchResult is bit-identical to the
/// uninterrupted run's, except `resumes` (incremented) — and, when a
/// journal is attached, the new journal opens with a run_resumed event so
/// obs::merge_resumed_journal can stitch it onto the interrupted journal.
/// Throws ckpt::SnapshotError on a corrupt, truncated, or mismatched
/// snapshot — bad state is never silently loaded.
[[nodiscard]] SearchResult resume_search(const std::string& snapshot_path,
                                         const space::SearchSpace& space,
                                         const data::Dataset& dataset, SearchConfig config,
                                         tensor::ThreadPool* pool = nullptr);

}  // namespace ncnas::nas
