// Search-log persistence — the reproduction of the paper's analytics flow,
// where the NAS writes logs and the analytics module parses them afterwards.
//
// Bench binaries share expensive search runs through these logs: the first
// binary that needs a configuration performs the run and saves it; later
// binaries (e.g. the utilization figure over the same experiment as the
// trajectory figure) load the log instead of recomputing. A `fingerprint`
// string recorded in the header guards against stale logs after a
// configuration change.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "ncnas/nas/driver.hpp"

namespace ncnas::nas {

/// Writes `result` to `path` (text, one eval per line). Throws on I/O error.
void save_result(const std::string& path, const SearchResult& result,
                 const std::string& fingerprint);

/// Loads a result previously written by save_result. Returns nullopt when the
/// file is missing or carries a different fingerprint.
[[nodiscard]] std::optional<SearchResult> load_result(const std::string& path,
                                                      const std::string& fingerprint);

/// Convenience: load if a fresh log exists, otherwise invoke `run`, save, and
/// return. `dir` is created if needed.
[[nodiscard]] SearchResult run_or_load(const std::string& dir, const std::string& tag,
                                       const std::string& fingerprint,
                                       const std::function<SearchResult()>& run);

/// Stable fingerprint of a search configuration (fields that affect results).
/// The process-wide tensor::KernelConfig is deliberately not an input: blocked
/// and parallel kernels are bit-identical to the serial reference (the
/// determinism rule in tensor/kernel_config.hpp), so the kernel policy —
/// like telemetry and checkpointing — can never invalidate a saved log.
[[nodiscard]] std::string config_fingerprint(const SearchConfig& cfg,
                                             const std::string& space_name);

}  // namespace ncnas::nas
