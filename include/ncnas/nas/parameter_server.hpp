// ParameterServer — the coordination point of the manager/worker RL scheme
// (paper Fig. 2).
//
// Agents train local copies of the controller and submit parameter *deltas*
// (the net effect of their local PPO epochs, a gradient estimate scaled by
// the optimizer). Two protocols:
//
//   kSync (A2C): the PS holds a barrier; once all N agents of a round have
//   submitted, it applies the average delta and releases everyone. Agents
//   idle at the barrier — the cause of A2C's sawtooth utilization.
//
//   kAsync (A3C): a submission is averaged with the most recent window of
//   deltas and applied immediately; the reply carries the new parameters.
//   No agent ever waits, at the price of gradient staleness.
//
// The driver invokes the PS at deterministic virtual times, so no locking is
// needed; the PS is pure bookkeeping. When a Telemetry sink is attached the
// PS reports barrier-wait time (A2C), gradient staleness and async-window
// depth (A3C), and delta-apply counts; `now` on submit() carries the
// driver's virtual clock for those measurements.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ncnas/obs/telemetry.hpp"

namespace ncnas::nas {

class ParameterServer {
 public:
  enum class Mode { kSync, kAsync };

  ParameterServer(std::vector<float> initial, Mode mode, std::size_t num_agents,
                  std::size_t async_window = 1);

  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] const std::vector<float>& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t dim() const noexcept { return params_.size(); }
  [[nodiscard]] std::size_t updates_applied() const noexcept { return updates_applied_; }

  /// Attach a telemetry sink (null to detach). Pure observation.
  void set_telemetry(obs::Telemetry* telemetry);

  /// Parameter pull that remembers which version `agent` saw, so the PS can
  /// report the gradient staleness of its next submission. Identical payload
  /// to params().
  [[nodiscard]] const std::vector<float>& pull(std::size_t agent);

  /// Async: applies (the windowed average of) `delta` immediately; returns
  /// true. Sync: parks the delta; returns true only when this submission
  /// completed the barrier (the caller then releases all agents).
  /// `now` is the submitting agent's virtual time, used only for telemetry.
  bool submit(std::size_t agent, std::span<const float> delta, double now = 0.0);

  /// Sync only: true when every *active* agent of the round has submitted
  /// (and at least one delta is pending).
  [[nodiscard]] bool barrier_complete() const noexcept;

  // ---- failure tolerance (sync mode) ---------------------------------------
  // The fault-injection layer exercises two A2C failure shapes: an agent
  // whose exchange was dropped in flight (it may return next round) and an
  // agent that died outright (it never returns). The barrier must release
  // a partial round in both cases instead of deadlocking the cluster.

  /// Seconds the barrier tolerates absent agents after the latest arrival
  /// before try_release() may force a partial round. 0 (default) waits
  /// forever — the pre-fault behavior.
  void set_absent_timeout(double seconds);
  [[nodiscard]] double absent_timeout() const noexcept { return absent_timeout_; }

  /// Sync only: releases an incomplete round — averaging only the deltas
  /// that arrived — once `now` is at least absent_timeout past the latest
  /// arrival. Returns true when it released; false when the timeout is
  /// unset, the window has not elapsed, or nothing is pending.
  bool try_release(double now);

  /// Sync only: permanently removes `agent` from barrier accounting (its
  /// worker pool died). If the round thereby completes it is released at
  /// `now` and true is returned. A deactivated agent must not submit again.
  bool deactivate(std::size_t agent, double now = 0.0);

  [[nodiscard]] std::size_t active_agents() const noexcept { return active_count_; }

  /// --- checkpoint/restore ---------------------------------------------------
  /// Full mutable server state. Mode, agent count, async window, and the
  /// absent timeout are config-derived and therefore not part of it — the
  /// resume path reconstructs the server from the same SearchConfig and then
  /// imports this. vector<bool> is avoided in the wire form on purpose.
  struct State {
    std::vector<float> params;
    std::vector<std::vector<float>> pending;
    std::vector<std::uint8_t> submitted;
    std::vector<std::uint8_t> active;
    std::size_t active_count = 0;
    std::size_t pending_count = 0;
    double last_arrival = 0.0;
    std::vector<std::vector<float>> recent;
    std::size_t recent_next = 0;
    std::size_t updates_applied = 0;
    std::vector<std::size_t> pulled_version;
    std::vector<double> arrival_time;
  };
  [[nodiscard]] State export_state() const;
  /// Throws std::invalid_argument when the state's agent count or parameter
  /// dimension does not match this server.
  void import_state(const State& state);

 private:
  void apply(std::span<const float> delta, float scale);
  void release_round(double now);

  Mode mode_;
  std::size_t num_agents_;
  std::size_t async_window_;
  std::vector<float> params_;
  // Sync barrier state.
  std::vector<std::vector<float>> pending_;
  std::vector<bool> submitted_;
  std::vector<bool> active_;
  std::size_t active_count_ = 0;
  std::size_t pending_count_ = 0;
  double absent_timeout_ = 0.0;
  double last_arrival_ = 0.0;
  // Async window state (ring buffer of recent deltas).
  std::vector<std::vector<float>> recent_;
  std::size_t recent_next_ = 0;
  std::size_t updates_applied_ = 0;
  // Telemetry bookkeeping (kept current even when detached — a handful of
  // scalar writes — so attaching mid-run still reports sane staleness).
  std::vector<std::size_t> pulled_version_;
  std::vector<double> arrival_time_;
  obs::Telemetry* telemetry_ = nullptr;
  obs::Counter* delta_applies_ = nullptr;
  obs::Counter* exchanges_ = nullptr;
  obs::Counter* barrier_timeouts_ = nullptr;
  obs::Histogram* staleness_ = nullptr;
  obs::Histogram* barrier_wait_ = nullptr;
  obs::Gauge* window_depth_ = nullptr;
  obs::Journal* journal_ = nullptr;
};

}  // namespace ncnas::nas
