// Optimizers. Adam (the paper's choice, default lr 1e-3) and plain SGD.
// Adam state is keyed by disambiguated parameter *name* (not raw pointer)
// so moments survive serialization across processes; shared (mirrored)
// weights still resolve to a single key — and a single moment estimate —
// no matter how many layers reference them.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "ncnas/nn/parameter.hpp"

namespace ncnas::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies one update from the accumulated gradients, then leaves grads
  /// untouched (callers zero them per step).
  virtual void step(const std::vector<ParamPtr>& params) = 0;
  [[nodiscard]] virtual float learning_rate() const = 0;
  virtual void set_learning_rate(float lr) = 0;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(float lr = 0.01f) : lr_(lr) {}
  void step(const std::vector<ParamPtr>& params) override;
  [[nodiscard]] float learning_rate() const override { return lr_; }
  void set_learning_rate(float lr) override { lr_ = lr; }

 private:
  float lr_;
};

class Adam final : public Optimizer {
 public:
  explicit Adam(float lr = 0.001f, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-7f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void step(const std::vector<ParamPtr>& params) override;
  [[nodiscard]] float learning_rate() const override { return lr_; }
  void set_learning_rate(float lr) override { lr_ = lr; }

  // ---- serialization -------------------------------------------------------
  // Parameter names repeat across layers ("dense.w" exists in every dense
  // layer), so a raw name cannot key the moment map. Keys are therefore the
  // name disambiguated in first-seen order: "dense.w", "dense.w#2", ... —
  // stable across runs because optimizers always see their parameter list in
  // the same order, and identical for a shared (mirrored) parameter, which is
  // one pointer and thus one key.

  /// One parameter's moment estimates, under its disambiguated key.
  struct MomentEntry {
    std::string key;
    tensor::Shape shape;
    std::vector<float> m;
    std::vector<float> v;
  };
  /// Complete optimizer state: bias-correction step count + all moments,
  /// entries sorted by key so the serialized form is canonical.
  struct State {
    long step_count = 0;
    std::vector<MomentEntry> entries;
  };

  [[nodiscard]] State export_state() const;
  /// Replaces all optimizer state. Moments re-attach to parameters by key on
  /// the next step(); a restored optimizer then continues bit-identically.
  void import_state(const State& state);

 private:
  struct Moments {
    tensor::Tensor m;
    tensor::Tensor v;
  };

  /// Disambiguated key for `p` ("name", "name#2", ... in first-seen order).
  const std::string& key_for(const Parameter* p);

  float lr_, beta1_, beta2_, eps_;
  long step_count_ = 0;
  std::unordered_map<std::string, Moments> state_;
  std::unordered_map<const Parameter*, std::string> key_cache_;
  std::unordered_map<std::string, std::size_t> name_counts_;
};

}  // namespace ncnas::nn
