// Optimizers. Adam (the paper's choice, default lr 1e-3) and plain SGD.
// State is keyed by Parameter identity, so shared (mirrored) weights get a
// single moment estimate no matter how many layers reference them.
#pragma once

#include <unordered_map>
#include <vector>

#include "ncnas/nn/parameter.hpp"

namespace ncnas::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies one update from the accumulated gradients, then leaves grads
  /// untouched (callers zero them per step).
  virtual void step(const std::vector<ParamPtr>& params) = 0;
  [[nodiscard]] virtual float learning_rate() const = 0;
  virtual void set_learning_rate(float lr) = 0;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(float lr = 0.01f) : lr_(lr) {}
  void step(const std::vector<ParamPtr>& params) override;
  [[nodiscard]] float learning_rate() const override { return lr_; }
  void set_learning_rate(float lr) override { lr_ = lr; }

 private:
  float lr_;
};

class Adam final : public Optimizer {
 public:
  explicit Adam(float lr = 0.001f, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-7f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void step(const std::vector<ParamPtr>& params) override;
  [[nodiscard]] float learning_rate() const override { return lr_; }
  void set_learning_rate(float lr) override { lr_ = lr; }

 private:
  struct Moments {
    tensor::Tensor m;
    tensor::Tensor v;
  };

  float lr_, beta1_, beta2_, eps_;
  long step_count_ = 0;
  std::unordered_map<const Parameter*, Moments> state_;
};

}  // namespace ncnas::nn
