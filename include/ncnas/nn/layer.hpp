// Layer interface for DAG models.
//
// A Layer is a node in a computation graph: it may take several input tensors
// (Concat / Add combine branches) and produces exactly one output tensor.
// Layers cache whatever they need during forward() so that backward() can be
// called immediately afterwards — graphs are trained sample-batch at a time,
// never re-entered concurrently.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ncnas/nn/parameter.hpp"
#include "ncnas/tensor/rng.hpp"
#include "ncnas/tensor/tensor.hpp"

namespace ncnas::nn {

/// Per-sample shape (batch dimension excluded). Rank-1 [d] for feature
/// vectors; rank-2 [length, channels] for 1-D feature maps.
using FeatShape = tensor::Shape;

/// Mutable state threaded through forward passes.
struct ForwardCtx {
  bool training = false;          ///< enables dropout masks
  tensor::Rng* rng = nullptr;     ///< required when training with dropout
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Short kind tag, e.g. "dense", used in summaries and error messages.
  [[nodiscard]] virtual std::string kind() const = 0;

  /// Per-sample output shape given per-sample input shapes. Throws
  /// std::invalid_argument for incompatible inputs.
  [[nodiscard]] virtual FeatShape output_shape(std::span<const FeatShape> in) const = 0;

  /// Forward pass over a batch. Each input has the batch dimension first.
  [[nodiscard]] virtual tensor::Tensor forward(std::span<const tensor::Tensor* const> inputs,
                                               ForwardCtx& ctx) = 0;

  /// Backward pass; returns gradient w.r.t. each input, in input order.
  /// Parameter gradients are *accumulated* into Parameter::grad.
  [[nodiscard]] virtual std::vector<tensor::Tensor> backward(const tensor::Tensor& grad_out) = 0;

  /// Trainable parameters (possibly shared with other layers). Default: none.
  [[nodiscard]] virtual std::vector<ParamPtr> parameters() const { return {}; }

  /// One-line human-readable description for model summaries.
  [[nodiscard]] virtual std::string describe() const { return kind(); }
};

using LayerPtr = std::unique_ptr<Layer>;

/// Helper shared by single-input layers: validates arity.
const tensor::Tensor& single_input(std::span<const tensor::Tensor* const> inputs,
                                   const char* what);
const FeatShape& single_shape(std::span<const FeatShape> in, const char* what);

}  // namespace ncnas::nn
