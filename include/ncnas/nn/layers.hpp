// Concrete layers: everything the paper's search spaces can emit.
//
//   Dense(units, act)       - fully connected with fused activation
//   Activation(kind)        - standalone nonlinearity (NT3 Act_Node)
//   Dropout(rate)           - inverted dropout
//   Conv1D(filters, kernel) - valid padding, stride 1 (NT3 Conv_Node)
//   MaxPool1D(size)         - stride == size, Keras-style (NT3 Pool_Node)
//   Flatten / Reshape1D     - rank adapters inserted by the model builder
//   Concat / Add            - branch combiners (cell output rules)
//   Identity                - the no-op option present in every node
//   Input                   - named graph entry point
#pragma once

#include <optional>

#include "ncnas/nn/layer.hpp"

namespace ncnas::nn {

enum class Act { kLinear, kRelu, kTanh, kSigmoid, kSoftmax };

[[nodiscard]] const char* act_name(Act a);

/// Applies the activation elementwise (softmax: per row). Returns activated y.
[[nodiscard]] tensor::Tensor apply_act(Act a, const tensor::Tensor& z);
/// dL/dz given dL/dy plus the cached activated output y.
[[nodiscard]] tensor::Tensor act_backward(Act a, const tensor::Tensor& grad_y,
                                          const tensor::Tensor& y);

/// In-place variants — the layers' hot paths use these on reusable scratch
/// tensors so forward/backward allocate nothing in steady state.
/// Turns logits z into activations in place.
void apply_act_inplace(Act a, tensor::Tensor& y);
/// Turns dL/dy into dL/dz in place, given the cached activated output y.
void act_backward_inplace(Act a, tensor::Tensor& g, const tensor::Tensor& y);

// ---------------------------------------------------------------------------

class Input final : public Layer {
 public:
  Input(std::string name, FeatShape shape) : name_(std::move(name)), shape_(std::move(shape)) {}
  [[nodiscard]] std::string kind() const override { return "input"; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const FeatShape& feat_shape() const noexcept { return shape_; }
  [[nodiscard]] FeatShape output_shape(std::span<const FeatShape> in) const override;
  [[nodiscard]] tensor::Tensor forward(std::span<const tensor::Tensor* const> inputs,
                                       ForwardCtx& ctx) override;
  [[nodiscard]] std::vector<tensor::Tensor> backward(const tensor::Tensor& grad_out) override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::string name_;
  FeatShape shape_;
};

class Identity final : public Layer {
 public:
  [[nodiscard]] std::string kind() const override { return "identity"; }
  [[nodiscard]] FeatShape output_shape(std::span<const FeatShape> in) const override;
  [[nodiscard]] tensor::Tensor forward(std::span<const tensor::Tensor* const> inputs,
                                       ForwardCtx& ctx) override;
  [[nodiscard]] std::vector<tensor::Tensor> backward(const tensor::Tensor& grad_out) override;
};

/// Tag selecting the weight-sharing (MirrorNode) copy constructors.
struct share_tag_t {};
inline constexpr share_tag_t share_tag{};

class Dense final : public Layer {
 public:
  /// Fresh weights; they are lazily initialized on the first forward pass,
  /// when the input width is known, using the provided rng.
  Dense(std::size_t units, Act act, tensor::Rng& rng);
  /// Weight-sharing constructor (MirrorNode): reuses the donor's parameters.
  Dense(const Dense& donor, share_tag_t);

  [[nodiscard]] std::string kind() const override { return "dense"; }
  [[nodiscard]] std::size_t units() const noexcept { return units_; }
  [[nodiscard]] Act activation() const noexcept { return act_; }
  [[nodiscard]] FeatShape output_shape(std::span<const FeatShape> in) const override;
  [[nodiscard]] tensor::Tensor forward(std::span<const tensor::Tensor* const> inputs,
                                       ForwardCtx& ctx) override;
  [[nodiscard]] std::vector<tensor::Tensor> backward(const tensor::Tensor& grad_out) override;
  [[nodiscard]] std::vector<ParamPtr> parameters() const override;
  [[nodiscard]] std::string describe() const override;

 private:
  // Weights live behind a shared slot so that mirrors created *before* the
  // donor's lazy initialization still end up sharing the same parameters:
  // whichever instance runs forward first fills the slot for all of them.
  struct Slot {
    ParamPtr w;  // [in, units]
    ParamPtr b;  // [units]
  };

  void ensure_params(std::size_t in_dim);

  std::size_t units_;
  Act act_;
  std::uint64_t init_seed_;    // drawn at construction; lazy init owns its rng
  std::shared_ptr<Slot> slot_;
  bool shared_ = false;        // true when mirroring another Dense's params
  tensor::Tensor x_;           // cached input
  tensor::Tensor y_;           // cached activated output
  tensor::Tensor gz_;          // backward scratch: dL/dz (capacity reused)
  tensor::Tensor dw_;          // backward scratch: this step's dW
};

class Activation final : public Layer {
 public:
  explicit Activation(Act act) : act_(act) {}
  [[nodiscard]] std::string kind() const override { return "activation"; }
  [[nodiscard]] Act activation() const noexcept { return act_; }
  [[nodiscard]] FeatShape output_shape(std::span<const FeatShape> in) const override;
  [[nodiscard]] tensor::Tensor forward(std::span<const tensor::Tensor* const> inputs,
                                       ForwardCtx& ctx) override;
  [[nodiscard]] std::vector<tensor::Tensor> backward(const tensor::Tensor& grad_out) override;
  [[nodiscard]] std::string describe() const override;

 private:
  Act act_;
  tensor::Tensor y_;
};

class Dropout final : public Layer {
 public:
  explicit Dropout(float rate);
  [[nodiscard]] std::string kind() const override { return "dropout"; }
  [[nodiscard]] float rate() const noexcept { return rate_; }
  [[nodiscard]] FeatShape output_shape(std::span<const FeatShape> in) const override;
  [[nodiscard]] tensor::Tensor forward(std::span<const tensor::Tensor* const> inputs,
                                       ForwardCtx& ctx) override;
  [[nodiscard]] std::vector<tensor::Tensor> backward(const tensor::Tensor& grad_out) override;
  [[nodiscard]] std::string describe() const override;

 private:
  float rate_;
  tensor::Tensor mask_;  // scaled keep-mask from the last training forward
  bool masked_ = false;
};

/// 1-D convolution over [batch, length, channels_in], valid padding, stride 1.
class Conv1D final : public Layer {
 public:
  Conv1D(std::size_t filters, std::size_t kernel, tensor::Rng& rng);
  Conv1D(const Conv1D& donor, share_tag_t);

  [[nodiscard]] std::string kind() const override { return "conv1d"; }
  [[nodiscard]] std::size_t filters() const noexcept { return filters_; }
  [[nodiscard]] std::size_t kernel() const noexcept { return kernel_; }
  [[nodiscard]] FeatShape output_shape(std::span<const FeatShape> in) const override;
  [[nodiscard]] tensor::Tensor forward(std::span<const tensor::Tensor* const> inputs,
                                       ForwardCtx& ctx) override;
  [[nodiscard]] std::vector<tensor::Tensor> backward(const tensor::Tensor& grad_out) override;
  [[nodiscard]] std::vector<ParamPtr> parameters() const override;
  [[nodiscard]] std::string describe() const override;

 private:
  struct Slot {
    ParamPtr w;  // [kernel * in_channels, filters]
    ParamPtr b;  // [filters]
  };

  void ensure_params(std::size_t in_channels);

  std::size_t filters_;
  std::size_t kernel_;
  std::uint64_t init_seed_;
  std::shared_ptr<Slot> slot_;
  bool shared_ = false;
  tensor::Tensor x_;
};

/// Max pooling over [batch, length, channels]; window == stride == `size`,
/// trailing partial windows dropped (Keras semantics). A window larger than
/// the input length degenerates to global max pooling.
class MaxPool1D final : public Layer {
 public:
  explicit MaxPool1D(std::size_t size);
  [[nodiscard]] std::string kind() const override { return "maxpool1d"; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] FeatShape output_shape(std::span<const FeatShape> in) const override;
  [[nodiscard]] tensor::Tensor forward(std::span<const tensor::Tensor* const> inputs,
                                       ForwardCtx& ctx) override;
  [[nodiscard]] std::vector<tensor::Tensor> backward(const tensor::Tensor& grad_out) override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::size_t size_;
  tensor::Shape in_shape_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
};

/// [length, channels] -> [length * channels].
class Flatten final : public Layer {
 public:
  [[nodiscard]] std::string kind() const override { return "flatten"; }
  [[nodiscard]] FeatShape output_shape(std::span<const FeatShape> in) const override;
  [[nodiscard]] tensor::Tensor forward(std::span<const tensor::Tensor* const> inputs,
                                       ForwardCtx& ctx) override;
  [[nodiscard]] std::vector<tensor::Tensor> backward(const tensor::Tensor& grad_out) override;

 private:
  tensor::Shape in_shape_;
};

/// [d] -> [d, 1]; adapts a feature vector for Conv1D/MaxPool1D consumption.
class Reshape1D final : public Layer {
 public:
  [[nodiscard]] std::string kind() const override { return "reshape1d"; }
  [[nodiscard]] FeatShape output_shape(std::span<const FeatShape> in) const override;
  [[nodiscard]] tensor::Tensor forward(std::span<const tensor::Tensor* const> inputs,
                                       ForwardCtx& ctx) override;
  [[nodiscard]] std::vector<tensor::Tensor> backward(const tensor::Tensor& grad_out) override;

 private:
  tensor::Shape in_shape_;
};

/// Concatenates rank-1 feature inputs along the feature axis.
class Concat final : public Layer {
 public:
  [[nodiscard]] std::string kind() const override { return "concat"; }
  [[nodiscard]] FeatShape output_shape(std::span<const FeatShape> in) const override;
  [[nodiscard]] tensor::Tensor forward(std::span<const tensor::Tensor* const> inputs,
                                       ForwardCtx& ctx) override;
  [[nodiscard]] std::vector<tensor::Tensor> backward(const tensor::Tensor& grad_out) override;

 private:
  std::vector<std::size_t> widths_;
};

/// Elementwise addition of rank-1 inputs. Inputs narrower than the widest are
/// implicitly zero-padded on the right — a parameter-free way to keep the
/// paper's ConstantNode Add (Uno residual blocks) well-defined when the
/// searched submodels choose different widths.
class Add final : public Layer {
 public:
  [[nodiscard]] std::string kind() const override { return "add"; }
  [[nodiscard]] FeatShape output_shape(std::span<const FeatShape> in) const override;
  [[nodiscard]] tensor::Tensor forward(std::span<const tensor::Tensor* const> inputs,
                                       ForwardCtx& ctx) override;
  [[nodiscard]] std::vector<tensor::Tensor> backward(const tensor::Tensor& grad_out) override;

 private:
  std::vector<std::size_t> widths_;
};

/// Attempts a parameter-sharing clone of `layer` (for MirrorNode). Supported
/// for Dense, Conv1D, Dropout, Activation, Identity; throws otherwise.
[[nodiscard]] LayerPtr clone_shared(const Layer& layer);

}  // namespace ncnas::nn
