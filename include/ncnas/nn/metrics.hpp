// Validation metrics — the paper's reward signals.
//   Combo, Uno : R^2 (coefficient of determination) on held-out data
//   NT3        : classification accuracy
#pragma once

#include "ncnas/tensor/tensor.hpp"

namespace ncnas::nn {

enum class Metric { kR2, kAccuracy };

/// R^2 = 1 - SS_res / SS_tot. Perfect fit -> 1; predicting the mean -> 0;
/// can be arbitrarily negative for bad models (the paper clips rewards at -1).
[[nodiscard]] float r2_score(const tensor::Tensor& pred, const tensor::Tensor& target);

/// Fraction of rows where argmax(pred) equals the class id in target(i, 0).
[[nodiscard]] float accuracy_score(const tensor::Tensor& pred, const tensor::Tensor& target);

[[nodiscard]] float compute_metric(Metric m, const tensor::Tensor& pred,
                                   const tensor::Tensor& target);

[[nodiscard]] const char* metric_name(Metric m);

}  // namespace ncnas::nn
