// Graph — a DAG of layers with reverse-mode differentiation.
//
// Nodes are appended in topological order (every node's inputs must already
// exist), which matches how the search-space builder lowers an architecture:
// input layers first, then cells in order, then the final output rule.
// forward() caches per-node outputs; backward() walks the list in reverse and
// accumulates gradients into shared Parameters, so mirrored layers receive
// the sum of both branches' gradients — exactly the weight-sharing semantics
// of the paper's Combo drug-descriptor submodel.
#pragma once

#include <string>
#include <vector>

#include "ncnas/nn/layer.hpp"

namespace ncnas::nn {

class Graph {
 public:
  /// Adds a named input placeholder; returns its node id. Inputs are fed to
  /// forward() in the order they were added.
  std::size_t add_input(std::string name, FeatShape shape);

  /// Adds a layer consuming the outputs of `inputs` (node ids < the new id).
  std::size_t add(LayerPtr layer, std::vector<std::size_t> inputs);

  /// Marks the node whose output is the model prediction. Defaults to the
  /// last added node.
  void set_output(std::size_t node_id);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t input_count() const noexcept { return input_ids_.size(); }
  [[nodiscard]] std::size_t output_id() const noexcept { return output_id_; }
  [[nodiscard]] const Layer& layer(std::size_t node_id) const { return *nodes_.at(node_id).layer; }

  /// Per-sample output shape of the full model. Runs shape inference; throws
  /// if any layer rejects its inputs. Cheap — no tensors are allocated.
  [[nodiscard]] FeatShape output_shape() const;

  /// Runs the model on a batch. `inputs[i]` feeds the i-th declared input and
  /// must carry the batch dimension first. Returns the output node's tensor.
  [[nodiscard]] tensor::Tensor forward(std::span<const tensor::Tensor> inputs, ForwardCtx& ctx);

  /// Backpropagates dL/d(output); must follow a forward() call. Parameter
  /// gradients are accumulated (call zero_grad() between steps).
  void backward(const tensor::Tensor& grad_output);

  /// All trainable parameters, de-duplicated (shared weights appear once).
  [[nodiscard]] std::vector<ParamPtr> parameters() const;

  /// Number of trainable scalars — the paper's "trainable parameters" metric.
  /// NOTE: lazy layers materialize weights on first forward; call after one
  /// forward pass (or train step) for a final count.
  [[nodiscard]] std::size_t param_count() const;

  void zero_grad();

  /// Multi-line human-readable summary.
  [[nodiscard]] std::string summary() const;

 private:
  struct Node {
    LayerPtr layer;
    std::vector<std::size_t> inputs;
    std::vector<std::size_t> consumers;
    tensor::Tensor output;     // cached from the last forward
    tensor::Tensor grad;       // accumulated during backward
    int pending_consumers = 0; // countdown used by backward()
  };

  std::vector<Node> nodes_;
  std::vector<std::size_t> input_ids_;
  std::size_t output_id_ = 0;
  bool has_output_ = false;
};

}  // namespace ncnas::nn
