// Trainer — minibatch gradient-descent training of a Graph model.
//
// Mirrors the paper's reward-estimation recipe: Adam (lr 1e-3), a configurable
// number of epochs (1 during the search, 20 in post-training), an optional
// subset fraction of the training data (Combo searches on 10–40 %), and a
// stop predicate used to model evaluation timeouts.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "ncnas/nn/graph.hpp"
#include "ncnas/nn/loss.hpp"
#include "ncnas/nn/metrics.hpp"
#include "ncnas/nn/optimizer.hpp"
#include "ncnas/tensor/rng.hpp"

namespace ncnas::nn {

struct TrainOptions {
  std::size_t epochs = 1;
  std::size_t batch_size = 32;
  float learning_rate = 0.001f;
  LossKind loss = LossKind::kMse;
  /// Fraction of the training rows actually used (sampled once, then shuffled
  /// every epoch). 1.0 = full data.
  double subset_fraction = 1.0;
  /// Invoked before every batch; returning true aborts training (timeout).
  std::function<bool()> should_stop;
};

struct TrainResult {
  std::vector<float> epoch_losses;  ///< mean train loss per completed epoch
  std::size_t batches_run = 0;
  bool stopped_early = false;       ///< true when should_stop fired
};

/// Extracts rows [begin, end) from a rank-2 tensor.
[[nodiscard]] tensor::Tensor slice_rows(const tensor::Tensor& t, std::size_t begin,
                                        std::size_t end);

/// Extracts the listed rows from a rank-2 tensor (gather).
[[nodiscard]] tensor::Tensor gather_rows(const tensor::Tensor& t,
                                         std::span<const std::size_t> rows);

/// Trains `model` on (inputs, target); `inputs[i]` is the full data matrix for
/// the model's i-th declared input, all with the same row count as `target`.
/// `rng` drives subset sampling, epoch shuffling, and dropout masks — this is
/// the agent-specific seed of the paper.
TrainResult fit(Graph& model, std::span<const tensor::Tensor> inputs,
                const tensor::Tensor& target, const TrainOptions& opts, tensor::Rng& rng);

/// Runs the model over (inputs, target) in eval mode and returns the metric.
[[nodiscard]] float evaluate(Graph& model, std::span<const tensor::Tensor> inputs,
                             const tensor::Tensor& target, Metric metric,
                             std::size_t batch_size = 256);

}  // namespace ncnas::nn
