// Weight serialization. An ncnas model is fully described by (search space,
// architecture encoding, init seed) plus its trained weights; these helpers
// persist the weights so a discovered architecture can be shipped — rebuild
// the graph with space::build_model, run one forward to materialize the lazy
// layers, then load_weights().
//
// Format: a small text header (magic, parameter count) followed by one
// record per parameter: name, shape, and the float values in row-major
// order. Text keeps the files diffable and portable; the models this library
// trains are small enough (<1 M parameters) that compactness is moot.
#pragma once

#include <string>

#include "ncnas/nn/graph.hpp"

namespace ncnas::nn {

/// Writes every unique parameter of `graph` to `path`. Lazily initialized
/// layers must have been materialized (run one forward pass first); throws
/// std::runtime_error on I/O failure.
void save_weights(const Graph& graph, const std::string& path);

/// Loads weights saved by save_weights into `graph`. The graph must have the
/// same parameter structure (same architecture, same materialization state);
/// mismatched counts or shapes throw std::invalid_argument.
void load_weights(Graph& graph, const std::string& path);

}  // namespace ncnas::nn
