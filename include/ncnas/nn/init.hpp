// Weight initialization schemes (Glorot/He), seeded explicitly.
#pragma once

#include "ncnas/tensor/rng.hpp"
#include "ncnas/tensor/tensor.hpp"

namespace ncnas::nn {

/// Glorot (Xavier) uniform: U(-limit, limit), limit = sqrt(6 / (fan_in + fan_out)).
void glorot_uniform(tensor::Tensor& w, std::size_t fan_in, std::size_t fan_out,
                    tensor::Rng& rng);

/// He normal: N(0, sqrt(2 / fan_in)); better suited to relu stacks.
void he_normal(tensor::Tensor& w, std::size_t fan_in, tensor::Rng& rng);

/// Orthogonal-ish init used for LSTM recurrent weights: scaled normal.
void scaled_normal(tensor::Tensor& w, float stddev, tensor::Rng& rng);

}  // namespace ncnas::nn
