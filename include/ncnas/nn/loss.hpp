// Losses. Each returns the scalar batch loss and the gradient w.r.t. the
// model output (already averaged over the batch), ready for Graph::backward.
#pragma once

#include <utility>

#include "ncnas/tensor/tensor.hpp"

namespace ncnas::nn {

enum class LossKind {
  kMse,                ///< regression (Combo, Uno — predicting growth / dose response)
  kCrossEntropy,       ///< classification from softmax probabilities (NT3)
};

struct LossValue {
  float loss = 0.0f;
  tensor::Tensor grad;  ///< dL/d(pred), same shape as pred
};

/// Mean squared error over all elements; targets shape must equal preds.
[[nodiscard]] LossValue mse_loss(const tensor::Tensor& pred, const tensor::Tensor& target);

/// Cross-entropy taking *probabilities* (softmax output layer) and one-hot or
/// index targets. `target_index` holds the class id per row.
/// The returned gradient is dL/d(probs); combined with the softmax layer's own
/// Jacobian in act_backward this reproduces the standard (p - y) logit grad.
[[nodiscard]] LossValue cross_entropy_loss(const tensor::Tensor& probs,
                                           const std::vector<std::size_t>& target_index);

/// Dispatch on kind. For kCrossEntropy, `target` holds class ids in column 0.
[[nodiscard]] LossValue compute_loss(LossKind kind, const tensor::Tensor& pred,
                                     const tensor::Tensor& target);

}  // namespace ncnas::nn
