// Trainable parameters.
//
// Parameters are shared_ptr-held so that two layers can literally share the
// same weights — this is how the search space's MirrorNode implements the
// paper's shared drug-descriptor submodel in Combo (drug-1 and drug-2
// descriptors flow through the same dense weights).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ncnas/tensor/tensor.hpp"

namespace ncnas::nn {

struct Parameter {
  std::string name;
  tensor::Tensor value;
  tensor::Tensor grad;

  Parameter(std::string n, tensor::Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  [[nodiscard]] std::size_t size() const noexcept { return value.size(); }
  void zero_grad() { grad.zero(); }
};

using ParamPtr = std::shared_ptr<Parameter>;

/// Sum of element counts over a parameter list, de-duplicating shared
/// parameters (mirrored layers must not double-count).
[[nodiscard]] std::size_t unique_param_count(const std::vector<ParamPtr>& params);

/// De-duplicates a parameter list preserving first-seen order.
[[nodiscard]] std::vector<ParamPtr> unique_params(const std::vector<ParamPtr>& params);

}  // namespace ncnas::nn
