// LstmCell — a single-layer LSTM with explicit backpropagation through time.
//
// The paper's policy and value networks are "a single-layer LSTM with 32
// units". The RL controller drives this cell step by step (one step per
// variable node in the search space); steps push caches onto an internal
// stack and backward_step() pops them in reverse, so a full BPTT pass is
// `for t in reverse(T): backward_step(...)`.
#pragma once

#include <vector>

#include "ncnas/nn/parameter.hpp"
#include "ncnas/tensor/rng.hpp"
#include "ncnas/tensor/tensor.hpp"

namespace ncnas::nn {

struct LstmState {
  tensor::Tensor h;  ///< [batch, hidden]
  tensor::Tensor c;  ///< [batch, hidden]
};

class LstmCell {
 public:
  LstmCell(std::size_t input_dim, std::size_t hidden_dim, tensor::Rng& rng);

  [[nodiscard]] std::size_t input_dim() const noexcept { return input_dim_; }
  [[nodiscard]] std::size_t hidden_dim() const noexcept { return hidden_dim_; }

  /// Zero-filled initial state for a batch.
  [[nodiscard]] LstmState initial_state(std::size_t batch) const;

  /// One recurrent step; caches intermediates for a later backward pass.
  [[nodiscard]] LstmState step(const tensor::Tensor& x, const LstmState& prev);

  /// Like step() but without caching — for action sampling where no gradient
  /// will ever be taken (keeps rollouts allocation-light).
  [[nodiscard]] LstmState step_nograd(const tensor::Tensor& x, const LstmState& prev) const;

  /// Pops the most recent cached step. `grad_h` / `grad_c` are dL/dh', dL/dc'
  /// for that step's outputs; returns dL/dx and writes dL/d(prev state).
  /// Parameter gradients are accumulated.
  tensor::Tensor backward_step(const tensor::Tensor& grad_h, const tensor::Tensor& grad_c,
                               tensor::Tensor& grad_h_prev, tensor::Tensor& grad_c_prev);

  /// Discards any cached steps (call before starting a new sequence).
  void clear_cache();
  [[nodiscard]] std::size_t cached_steps() const noexcept { return cache_.size(); }

  [[nodiscard]] std::vector<ParamPtr> parameters() const { return {wx_, wh_, b_}; }

 private:
  struct StepCache {
    tensor::Tensor x, h_prev, c_prev;
    tensor::Tensor i, f, g, o;   // post-nonlinearity gate values
    tensor::Tensor c_new, tanh_c;
  };

  void gates(const tensor::Tensor& x, const LstmState& prev, tensor::Tensor& z) const;

  std::size_t input_dim_;
  std::size_t hidden_dim_;
  ParamPtr wx_;  // [input, 4*hidden]   gate order: i, f, g, o
  ParamPtr wh_;  // [hidden, 4*hidden]
  ParamPtr b_;   // [4*hidden]
  std::vector<StepCache> cache_;
  // Reusable scratch (capacity survives across steps, so steady-state calls
  // allocate nothing). mutable: step_nograd is logically const but still
  // needs the scratch; these hold no observable state between calls.
  mutable tensor::Tensor z_;    // pre-activation gates [batch, 4*hidden]
  mutable tensor::Tensor zh_;   // h_prev * Wh partial inside gates()
  tensor::Tensor dz_;           // backward: dL/dz
  tensor::Tensor dwx_, dwh_;    // backward: per-step weight grads
};

}  // namespace ncnas::nn
