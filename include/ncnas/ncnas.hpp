// Umbrella header — everything a downstream user needs for the common flow:
// make a dataset, pick (or define) a search space, run the multi-agent
// search, post-train the winners, and analyse the logs.
//
//   #include <ncnas/ncnas.hpp>
//
// The library layers, bottom to top:
//   obs       telemetry: metrics registry, trace recorder, stopwatches
//   tensor    dense math + deterministic RNG + thread pool
//   nn        layers, DAG graphs with autodiff, trainer, metrics, LSTM
//   data      synthetic CANDLE benchmarks + manually designed baselines
//   space     the NAS search-space formalism and the paper's five spaces
//   rl        the PPO-trained LSTM controller
//   exec      reward estimation: evaluator, cache, cost model, presets
//   nas       parameter server + the virtual-cluster search driver
//   analytics post-training, series/quantile analysis, reporting
#pragma once

#include "ncnas/analytics/arch_stats.hpp"
#include "ncnas/analytics/csv.hpp"
#include "ncnas/analytics/posttrain.hpp"
#include "ncnas/analytics/report.hpp"
#include "ncnas/analytics/series.hpp"
#include "ncnas/data/baselines.hpp"
#include "ncnas/data/dataset.hpp"
#include "ncnas/exec/cost_model.hpp"
#include "ncnas/exec/evaluator.hpp"
#include "ncnas/exec/fault.hpp"
#include "ncnas/exec/presets.hpp"
#include "ncnas/exec/utilization.hpp"
#include "ncnas/nas/driver.hpp"
#include "ncnas/nas/parameter_server.hpp"
#include "ncnas/nas/result_io.hpp"
#include "ncnas/nn/graph.hpp"
#include "ncnas/obs/metrics.hpp"
#include "ncnas/obs/stopwatch.hpp"
#include "ncnas/obs/telemetry.hpp"
#include "ncnas/obs/trace.hpp"
#include "ncnas/nn/layers.hpp"
#include "ncnas/nn/loss.hpp"
#include "ncnas/nn/lstm.hpp"
#include "ncnas/nn/metrics.hpp"
#include "ncnas/nn/optimizer.hpp"
#include "ncnas/nn/serialize.hpp"
#include "ncnas/nn/trainer.hpp"
#include "ncnas/rl/controller.hpp"
#include "ncnas/space/builder.hpp"
#include "ncnas/space/search_space.hpp"
#include "ncnas/space/spaces.hpp"
#include "ncnas/tensor/kernel_config.hpp"
#include "ncnas/tensor/ops.hpp"
#include "ncnas/tensor/rng.hpp"
#include "ncnas/tensor/tensor.hpp"
#include "ncnas/tensor/thread_pool.hpp"
