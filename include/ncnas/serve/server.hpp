// SearchServer — NAS-as-a-service: one long-lived process hosting many
// concurrent tenant searches over a single shared evaluation-slot pool.
//
// The server loop is round-based on the virtual clock: each round the
// DrrScheduler hands out gang grants, every granted tenant runs exactly one
// quantum-bounded time slice (suspending at a checkpoint when the quantum
// expires — see session.hpp), the slots come back, and the observability
// plane is refreshed (per-tenant `ncnas_tenant_*` metrics, the /tenants
// JSON endpoint, one exporter tick at `rounds x quantum` virtual seconds).
// Slices execute sequentially in grant order, so the whole multi-tenant
// schedule — including every cross-tenant SharedEvalCache interaction — is
// a pure function of the submission sequence: reruns are bit-identical.
//
// Admission control is explicit backpressure: submit() throws
// AdmissionError when the server is at max_tenants (retry after a tenant
// finishes) or when a spec's gang/quota could never be scheduled, and the
// rejection is counted in `ncnas_server_rejections_total`.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ncnas/serve/scheduler.hpp"
#include "ncnas/serve/session.hpp"

namespace ncnas::serve {

struct ServeConfig {
  /// The shared evaluation-slot pool all tenants compete for.
  std::size_t total_slots = 0;
  /// Virtual seconds per time slice (the checkpoint interval a slice runs
  /// under). Smaller quanta preempt faster but write more snapshots.
  double quantum_seconds = 1800.0;
  /// Admission cap on concurrently hosted unfinished tenants.
  std::size_t max_tenants = 8;
  /// Root directory for per-tenant checkpoint state (tenant-<id>/ under it).
  std::string state_dir;
  /// Optional process-wide cross-tenant evaluation cache (not owned).
  /// Tenants opt in per-spec; null disables sharing entirely.
  exec::SharedEvalCache* shared_cache = nullptr;
  /// Optional server-level telemetry (not owned): receives the per-tenant
  /// labeled metrics, and — when its exporter is enabled — the /tenants
  /// endpoint and per-round publications. Distinct from any per-slice
  /// telemetry the sessions create internally.
  obs::Telemetry* telemetry = nullptr;
  /// Optional thread pool shared by all tenants' real trainings.
  tensor::ThreadPool* pool = nullptr;
};

/// submit() refused the spec: server full (backpressure — retry later) or
/// the spec can never be scheduled (bad gang size, quota, or name).
class AdmissionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class SearchServer {
 public:
  /// Throws std::invalid_argument on a zero pool, non-positive quantum,
  /// zero max_tenants, or empty state_dir.
  explicit SearchServer(ServeConfig config);

  /// Admits a tenant and returns its id (stable for the server's lifetime).
  /// Throws AdmissionError when the server is at capacity or the spec is
  /// unschedulable; every rejection is counted.
  std::uint32_t submit(TenantSpec spec);

  /// Runs one scheduling round: DRR grants, one slice per granted tenant
  /// (sequential, in grant order), slot release, observability refresh.
  /// Returns true while any tenant is still unfinished.
  bool step();

  /// Rounds until every tenant is finished or failed.
  void run();

  [[nodiscard]] TenantState state(std::uint32_t id) const;
  /// The finished tenant's SearchResult; throws std::logic_error otherwise.
  [[nodiscard]] const nas::SearchResult& result(std::uint32_t id) const;
  /// The tenant's stitched cross-slice journal.
  [[nodiscard]] const std::vector<obs::JournalEvent>& journal(std::uint32_t id) const;
  [[nodiscard]] const TenantSession& session(std::uint32_t id) const;

  /// The /tenants endpoint body: a JSON document with server totals and one
  /// object per tenant (id, name, state, priority, slots, slices,
  /// preemptions, grants, evals, cache/shared-cache hits, best reward).
  [[nodiscard]] std::string tenants_json() const;

  [[nodiscard]] std::size_t rounds() const noexcept { return scheduler_.rounds(); }
  /// The server's global virtual clock: completed rounds x quantum.
  [[nodiscard]] double virtual_time() const noexcept {
    return static_cast<double>(rounds()) * config_.quantum_seconds;
  }
  [[nodiscard]] std::size_t tenant_count() const noexcept { return sessions_.size(); }
  [[nodiscard]] std::size_t active_tenants() const noexcept;
  [[nodiscard]] std::size_t rejections() const noexcept { return rejections_; }
  [[nodiscard]] const DrrScheduler& scheduler() const noexcept { return scheduler_; }
  [[nodiscard]] const ServeConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] TenantSession& session_ref(std::uint32_t id);
  [[nodiscard]] const TenantSession& session_ref(std::uint32_t id) const;
  void refresh_observability();
  void bump_counter(const std::string& name, const std::string& tenant, std::uint64_t target);

  ServeConfig config_;
  DrrScheduler scheduler_;
  std::vector<std::unique_ptr<TenantSession>> sessions_;  ///< index = id - 1
  std::size_t rejections_ = 0;
  /// Last value pushed into each monotonic labeled counter, so refreshes
  /// emit exact deltas.
  std::map<std::string, std::uint64_t> counter_marks_;
};

}  // namespace ncnas::serve
