// TenantSession — one tenant's search, executed as a sequence of
// checkpoint-bounded time slices under the SearchServer's scheduler.
//
// The suspend/resume mechanism is the existing ckpt plane, unmodified: a
// slice runs the driver with `abort_after_snapshots = 1` and
// `interval_seconds = quantum`, so after one quantum of virtual time the
// driver makes a snapshot durable and throws ckpt::SearchInterrupted — that
// is the preemption point. The next grant resumes from that snapshot
// bit-identically (the kill-and-resume guarantee), so a sliced multi-tenant
// run returns exactly the standalone SearchResult, `resumes` aside.
//
// Each slice gets a fresh obs::Telemetry whose journal opens with the
// run_resumed watermark, and the session stitches slices together with
// obs::merge_resumed_journal — per-tenant journal streams stay one
// continuous, contiguous-seq story across any number of preemptions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ncnas/nas/driver.hpp"
#include "ncnas/obs/journal.hpp"

namespace ncnas::serve {

/// Resource limits attached to a tenant at admission.
struct TenantQuota {
  /// Cap on concurrently held evaluation slots (0 = no cap). Grants are
  /// gangs of config.cluster.total_workers() slots, so admission rejects a
  /// spec whose gang could never fit under its own cap.
  std::size_t max_slots = 0;
  /// Total evaluation budget across the whole session (0 = unlimited).
  /// Enforced deterministically via SearchConfig::max_evaluations, so the
  /// budget stop lands on the same evaluation on every rerun.
  std::size_t eval_budget = 0;
};

struct TenantSpec {
  /// Identity used in metric labels and the /tenants endpoint. Must be
  /// non-empty and limited to [A-Za-z0-9_.:-] (no quoting/escaping needed
  /// anywhere it appears).
  std::string name;
  const space::SearchSpace* space = nullptr;
  const data::Dataset* dataset = nullptr;
  nas::SearchConfig config;
  /// DRR weight: long-run slice share is proportional to priority.
  double priority = 1.0;
  TenantQuota quota;
  /// Opt into the server's cross-tenant SharedEvalCache (result-affecting;
  /// see SearchConfig::shared_cache).
  bool use_shared_cache = true;
  /// Keep a stitched per-tenant journal (needed for eval accounting and the
  /// /tenants progress fields; costs one journal per slice).
  bool enable_journal = true;
};

enum class TenantState : std::uint8_t {
  kQueued,     ///< admitted, not yet granted a first slice
  kRunning,    ///< holds a gang this round (transient within a round)
  kPreempted,  ///< suspended at a checkpoint, awaiting its next grant
  kFinished,   ///< search completed; result() is available
  kFailed,     ///< slice threw; error() has the reason
};

[[nodiscard]] const char* tenant_state_name(TenantState s);

/// What one time slice did.
enum class SliceOutcome : std::uint8_t {
  kExpired,    ///< quantum elapsed: checkpointed and suspended
  kCompleted,  ///< search ran to its natural end inside the slice
  kFailed,     ///< the driver threw something other than SearchInterrupted
};

class TenantSession {
 public:
  /// `spec.space` / `spec.dataset` / `shared_cache` / `pool` must outlive
  /// the session. `state_dir` is this tenant's private checkpoint directory.
  TenantSession(std::uint32_t id, TenantSpec spec, double quantum_seconds,
                std::string state_dir, exec::SharedEvalCache* shared_cache,
                tensor::ThreadPool* pool);

  /// Runs one time slice: a fresh driver on the first call, resume_search
  /// from the latest suspension snapshot afterwards. Returns what happened;
  /// kExpired counts as one preemption.
  SliceOutcome run_slice();

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return spec_.name; }
  [[nodiscard]] const TenantSpec& spec() const noexcept { return spec_; }
  /// Slots one grant occupies: the spec's cluster gang size.
  [[nodiscard]] std::size_t slot_request() const noexcept {
    return config_.cluster.total_workers();
  }

  [[nodiscard]] TenantState state() const noexcept { return state_; }
  void set_state(TenantState s) noexcept { state_ = s; }
  [[nodiscard]] bool unfinished() const noexcept {
    return state_ != TenantState::kFinished && state_ != TenantState::kFailed;
  }

  [[nodiscard]] std::size_t slices() const noexcept { return slices_; }
  [[nodiscard]] std::size_t preemptions() const noexcept { return preemptions_; }
  /// Journal-derived progress (zeros when the journal is disabled).
  [[nodiscard]] std::size_t evals() const noexcept { return evals_; }
  [[nodiscard]] std::size_t cache_hits() const noexcept { return cache_hits_; }
  [[nodiscard]] std::size_t shared_cache_hits() const noexcept { return shared_hits_; }
  /// Fidelity-ladder rung trainings across all slices (0 on flat configs) —
  /// the rung-weighted cost the tenant's eval budget is charged in.
  [[nodiscard]] std::size_t rung_trainings() const noexcept { return rung_trainings_; }
  [[nodiscard]] bool has_best() const noexcept { return has_best_; }
  [[nodiscard]] float best_reward() const noexcept { return best_reward_; }

  /// Snapshot the session is suspended at (empty before the first slice and
  /// after completion).
  [[nodiscard]] const std::string& snapshot_path() const noexcept { return snapshot_path_; }
  /// Only valid in kFinished; throws std::logic_error otherwise.
  [[nodiscard]] const nas::SearchResult& result() const;
  /// Only non-empty in kFailed.
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  /// The stitched cross-slice journal (empty when disabled).
  [[nodiscard]] const std::vector<obs::JournalEvent>& journal() const noexcept {
    return journal_;
  }

 private:
  void absorb_slice_journal(const obs::Telemetry& slice_telemetry);

  std::uint32_t id_;
  TenantSpec spec_;
  nas::SearchConfig config_;  ///< spec.config with quota/cache/tenant wiring applied
  double quantum_seconds_;
  std::string state_dir_;
  tensor::ThreadPool* pool_;

  TenantState state_ = TenantState::kQueued;
  std::string snapshot_path_;
  std::size_t slices_ = 0;
  std::size_t preemptions_ = 0;
  std::size_t evals_ = 0;
  std::size_t cache_hits_ = 0;
  std::size_t shared_hits_ = 0;
  std::size_t rung_trainings_ = 0;
  bool has_best_ = false;
  float best_reward_ = 0.0f;
  nas::SearchResult result_;
  std::string error_;
  std::vector<obs::JournalEvent> journal_;
};

}  // namespace ncnas::serve
