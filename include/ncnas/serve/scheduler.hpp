// DrrScheduler — deficit-round-robin fair sharing of the server's
// evaluation-slot pool across tenant sessions.
//
// Grants are *gangs*: a tenant's request is its whole simulated cluster
// (agents x workers) and is satisfied all-or-nothing, mirroring how the
// paper's allocations hand a search its full node set at once. Per round
// every runnable tenant accrues `weight` deficit credits, then grants are
// handed out — highest deficit first, ties broken by a rotating cursor over
// registration order — while the request still fits in the free pool. A
// grant costs the sum of runnable weights, so long-run slice shares converge
// to the weight ratio, and two equal-weight tenants on a saturated pool
// alternate perfectly (cumulative grants never differ by more than one).
//
// Everything is plain arithmetic over registration order: no wall clock, no
// randomness, no map iteration — rerunning the same submission sequence
// reproduces the same grant sequence bit-for-bit (DESIGN.md §Scheduler
// determinism).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ncnas::serve {

class DrrScheduler {
 public:
  /// Throws std::invalid_argument when total_slots == 0.
  explicit DrrScheduler(std::size_t total_slots);

  /// Registers a tenant competing for slots. `request` is the gang size
  /// (granted all-or-nothing). Throws std::invalid_argument on a duplicate
  /// id, weight <= 0, request == 0, or request > total_slots (the gang
  /// could never be scheduled).
  void add_tenant(std::uint32_t id, double weight, std::size_t request);

  /// Withdraws a tenant (e.g. finished or failed). Its held slots, if any,
  /// are returned to the pool. Unknown ids throw std::invalid_argument.
  void remove_tenant(std::uint32_t id);

  /// A non-runnable tenant accrues no deficit and receives no grants; its
  /// deficit resets to zero (idleness hoards no credit). Held slots are
  /// unaffected — suspend still requires release().
  void set_runnable(std::uint32_t id, bool runnable);

  /// Runs one scheduling round and returns the granted tenant ids in grant
  /// order. Each granted tenant holds `request` slots until release(); a
  /// tenant receives at most one grant per round.
  [[nodiscard]] std::vector<std::uint32_t> next_round();

  /// Returns a grant's slots to the pool. No-op for tenants holding none.
  void release(std::uint32_t id);

  [[nodiscard]] std::size_t total_slots() const noexcept { return total_slots_; }
  [[nodiscard]] std::size_t free_slots() const noexcept { return free_; }
  [[nodiscard]] std::size_t rounds() const noexcept { return rounds_; }
  [[nodiscard]] std::size_t tenant_count() const noexcept { return tenants_.size(); }
  /// Cumulative grants handed to `id` (0 for unknown ids).
  [[nodiscard]] std::uint64_t grants(std::uint32_t id) const noexcept;
  /// Current deficit credit of `id` (0 for unknown ids).
  [[nodiscard]] double deficit(std::uint32_t id) const noexcept;
  /// Whether `id` currently holds its granted slots.
  [[nodiscard]] bool holding(std::uint32_t id) const noexcept;

 private:
  struct Entry {
    std::uint32_t id = 0;
    double weight = 1.0;
    std::size_t request = 0;
    double deficit = 0.0;
    bool runnable = true;
    bool holding = false;
    std::uint64_t grants = 0;
  };

  [[nodiscard]] Entry* find(std::uint32_t id) noexcept;
  [[nodiscard]] const Entry* find(std::uint32_t id) const noexcept;

  std::size_t total_slots_;
  std::size_t free_;
  std::size_t cursor_ = 0;  ///< rotation base for deficit ties
  std::size_t rounds_ = 0;
  std::vector<Entry> tenants_;  ///< registration order — the determinism anchor
};

}  // namespace ncnas::serve
