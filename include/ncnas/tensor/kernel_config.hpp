// Process-wide kernel execution policy for the dense linear-algebra layer.
//
// The default (threads == 0) keeps the original serial reference kernels —
// the seed behaviour, bit for bit. Opting in (threads >= 1) switches
// gemm/gemm_nt/gemm_tn and the large elementwise helpers to cache-blocked
// kernels; threads > 1 additionally spreads row blocks of the output across
// a dedicated internal ThreadPool (separate from the search driver's pool,
// so nested use cannot deadlock).
//
// Determinism is a hard design rule, not an aspiration: every output element
// is produced by exactly one task and accumulated in the same (k-ascending)
// order at every thread count, so results are bit-identical across 1..N
// threads and against the reference kernels. kernel_diff_test verifies this
// exhaustively; because results never change, the kernel configuration is —
// like telemetry and checkpointing, and unlike a non-empty fault plan —
// deliberately excluded from nas::config_fingerprint().
#pragma once

#include <cstddef>

namespace ncnas::tensor {

class ThreadPool;

struct KernelConfig {
  /// 0 = serial reference kernels (the default; the seed code path).
  /// >= 1 = blocked kernels; > 1 also parallelizes across an internal pool.
  std::size_t threads = 0;
  /// Rows of the output handled per task (MC). Each task owns its rows
  /// exclusively — the "one writer per output element" half of the rule.
  std::size_t block_rows = 64;
  /// Columns of B processed per cache pass (NC); rounded up internally to a
  /// whole number of packed micro-panels.
  std::size_t block_cols = 256;
  /// m*n*k below which gemm stays on the reference kernels even in blocked
  /// mode. Purely a dispatch heuristic: both paths produce identical bits,
  /// this only skips pack/dispatch overhead on tiny problems.
  std::size_t min_blocked_flops = 16 * 1024;
  /// Element count below which the elementwise helpers stay serial.
  std::size_t min_parallel_elems = 32 * 1024;

  /// Blocked kernels requested (serial when threads == 1).
  [[nodiscard]] bool blocked() const noexcept { return threads >= 1; }
  /// Blocked kernels spread over the internal pool.
  [[nodiscard]] bool pooled() const noexcept { return threads > 1; }

  /// Blocked + pooled config; `threads` 0 picks hardware concurrency.
  [[nodiscard]] static KernelConfig parallel(std::size_t threads = 0);
  /// The default: serial reference kernels.
  [[nodiscard]] static KernelConfig serial() noexcept { return {}; }
};

/// Installs `cfg` process-wide. Fields are individually atomic, but the
/// switch is not transactional: do not call while kernels are executing on
/// other threads (set it at startup, or between phases, as the tests do).
/// Throws std::invalid_argument on zero block sizes.
void set_kernel_config(const KernelConfig& cfg);

/// The currently installed policy.
[[nodiscard]] KernelConfig kernel_config();

/// RAII scoped override for tests and benches; restores on destruction.
class KernelConfigGuard {
 public:
  explicit KernelConfigGuard(const KernelConfig& cfg) : prev_(kernel_config()) {
    set_kernel_config(cfg);
  }
  ~KernelConfigGuard() { set_kernel_config(prev_); }

  KernelConfigGuard(const KernelConfigGuard&) = delete;
  KernelConfigGuard& operator=(const KernelConfigGuard&) = delete;

 private:
  KernelConfig prev_;
};

namespace detail {
/// The pool behind pooled kernels, created lazily and resized when the
/// configured thread count changes. Only call when kernel_config().pooled().
[[nodiscard]] ThreadPool& kernel_pool();
}  // namespace detail

}  // namespace ncnas::tensor
