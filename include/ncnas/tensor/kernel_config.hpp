// Process-wide kernel execution policy for the dense linear-algebra layer.
//
// The default (threads == 0) keeps the original serial reference kernels —
// the seed behaviour, bit for bit. Opting in (threads >= 1) switches
// gemm/gemm_nt/gemm_tn and the large elementwise helpers to cache-blocked
// kernels; threads > 1 additionally spreads row blocks of the output across
// a dedicated internal ThreadPool (separate from the search driver's pool,
// so nested use cannot deadlock). On the blocked path, SimdMode selects the
// runtime-dispatched SIMD micro-kernel tier (AVX2 on x86-64, NEON on
// aarch64) — same bytes, fewer instructions.
//
// Determinism is a hard design rule, not an aspiration: every output element
// is produced by exactly one task and accumulated in the same (k-ascending)
// order at every thread count, so results are bit-identical across 1..N
// threads and against the reference kernels. kernel_diff_test verifies this
// exhaustively; because results never change, the kernel configuration is —
// like telemetry and checkpointing, and unlike a non-empty fault plan —
// deliberately excluded from nas::config_fingerprint().
#pragma once

#include <cstddef>

namespace ncnas::tensor {

class ThreadPool;

/// Policy for the runtime-dispatched SIMD micro-kernel tier.
///
/// The SIMD tier substitutes explicit vector micro-kernels (AVX2+FMA on
/// x86-64, NEON on aarch64) for the scalar blocked micro-kernels. It is only
/// ever *eligible* when this translation unit set was compiled optimized with
/// FMA contraction available (see simd_available()): the scalar kernels then
/// compile to the exact per-element fused-multiply-add chains the SIMD
/// kernels issue explicitly, so both tiers produce identical bytes. In any
/// other build the tier silently resolves to the blocked kernels.
enum class SimdMode : int {
  kAuto = 0,  ///< Use the SIMD tier whenever it is available (the default).
  kOff = 1,   ///< Never use SIMD micro-kernels, even when available.
  kOn = 2,    ///< Request SIMD; falls back to blocked when unavailable.
};

struct KernelConfig {
  /// 0 = serial reference kernels (the default; the seed code path).
  /// >= 1 = blocked kernels; > 1 also parallelizes across an internal pool.
  std::size_t threads = 0;
  /// Rows of the output handled per task (MC). Each task owns its rows
  /// exclusively — the "one writer per output element" half of the rule.
  std::size_t block_rows = 64;
  /// Columns of B processed per cache pass (NC); rounded up internally to a
  /// whole number of packed micro-panels.
  std::size_t block_cols = 256;
  /// m*n*k below which gemm stays on the reference kernels even in blocked
  /// mode. Purely a dispatch heuristic: both paths produce identical bits,
  /// this only skips pack/dispatch overhead on tiny problems.
  std::size_t min_blocked_flops = 16 * 1024;
  /// Element count below which the elementwise helpers stay serial.
  std::size_t min_parallel_elems = 32 * 1024;
  /// SIMD micro-kernel policy (only consulted on the blocked path; the
  /// serial reference kernels never dispatch to SIMD). The NCNAS_SIMD
  /// environment variable acts as a process-wide kill switch: "off"/"0"
  /// disables the tier regardless of this field.
  SimdMode simd = SimdMode::kAuto;

  /// Blocked kernels requested (serial when threads == 1).
  [[nodiscard]] bool blocked() const noexcept { return threads >= 1; }
  /// Blocked kernels spread over the internal pool.
  [[nodiscard]] bool pooled() const noexcept { return threads > 1; }
  /// True when this config's blocked path will use SIMD micro-kernels:
  /// blocked() and the simd policy resolves on and simd_available().
  [[nodiscard]] bool simd_active() const noexcept;

  /// Blocked + pooled config; `threads` 0 picks hardware concurrency.
  [[nodiscard]] static KernelConfig parallel(std::size_t threads = 0);
  /// The default: serial reference kernels.
  [[nodiscard]] static KernelConfig serial() noexcept { return {}; }

  /// Whether the SIMD tier can run in this process: the library was built
  /// optimized with FMA contraction (x86) or for aarch64, the CPU supports
  /// the ISA (AVX2+FMA checked at runtime on x86), and the NCNAS_SIMD
  /// environment variable does not say "off".
  [[nodiscard]] static bool simd_available() noexcept;
  /// ISA label of the available SIMD tier: "avx2", "neon", or "" when
  /// simd_available() is false.
  [[nodiscard]] static const char* simd_isa() noexcept;
};

/// Installs `cfg` process-wide. Fields are individually atomic, but the
/// switch is not transactional: do not call while kernels are executing on
/// other threads (set it at startup, or between phases, as the tests do).
/// Throws std::invalid_argument on zero block sizes.
void set_kernel_config(const KernelConfig& cfg);

/// The currently installed policy.
[[nodiscard]] KernelConfig kernel_config();

/// RAII scoped override for tests and benches; restores on destruction.
class KernelConfigGuard {
 public:
  explicit KernelConfigGuard(const KernelConfig& cfg) : prev_(kernel_config()) {
    set_kernel_config(cfg);
  }
  ~KernelConfigGuard() { set_kernel_config(prev_); }

  KernelConfigGuard(const KernelConfigGuard&) = delete;
  KernelConfigGuard& operator=(const KernelConfigGuard&) = delete;

 private:
  KernelConfig prev_;
};

namespace detail {
/// The pool behind pooled kernels, created lazily and resized when the
/// configured thread count changes. Only call when kernel_config().pooled().
[[nodiscard]] ThreadPool& kernel_pool();
}  // namespace detail

}  // namespace ncnas::tensor
