// ncnas::tensor — minimal dense float32 tensor used throughout the library.
//
// Tensors are value types backed by std::vector<float>, row-major, rank <= 4.
// They intentionally stay small and boring: everything the NAS needs is
// 2-D matrices (batch x features) and 3-D feature maps (batch x length x
// channels) for the 1-D convolutional NT3 search space.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace ncnas::tensor {

/// Shape of a tensor. Kept as a plain vector so printing/debugging is trivial.
using Shape = std::vector<std::size_t>;

/// Total number of elements described by a shape (empty shape -> 0 elements).
[[nodiscard]] std::size_t numel(const Shape& shape);

/// Human-readable "[a, b, c]" rendering, used in error messages.
[[nodiscard]] std::string to_string(const Shape& shape);

/// Dense row-major float tensor.
class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Allocates and fills with `value`.
  Tensor(Shape shape, float value);

  /// Adopts the provided flat data; `data.size()` must equal `numel(shape)`.
  Tensor(Shape shape, std::vector<float> data);

  /// Convenience factories -------------------------------------------------
  [[nodiscard]] static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  [[nodiscard]] static Tensor full(Shape shape, float value) {
    return Tensor(std::move(shape), value);
  }
  /// 1-D tensor from an initializer list, handy in tests.
  [[nodiscard]] static Tensor of(std::initializer_list<float> values);
  /// 2-D tensor from nested initializer lists.
  [[nodiscard]] static Tensor of2d(std::initializer_list<std::initializer_list<float>> rows);

  /// Structure -------------------------------------------------------------
  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::size_t rank() const noexcept { return shape_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  /// Dimension `i`; asserts in debug builds.
  [[nodiscard]] std::size_t dim(std::size_t i) const {
    assert(i < shape_.size());
    return shape_[i];
  }

  /// Returns a tensor sharing no storage with this one but viewing the same
  /// data reinterpreted under `new_shape` (element count must match).
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  /// Element access ----------------------------------------------------------
  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::span<float> flat() noexcept { return data_; }
  [[nodiscard]] std::span<const float> flat() const noexcept { return data_; }

  [[nodiscard]] float& operator[](std::size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  [[nodiscard]] float operator[](std::size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }
  /// 2-D accessors (row, col).
  [[nodiscard]] float& operator()(std::size_t r, std::size_t c) {
    assert(rank() == 2 && r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
  }
  [[nodiscard]] float operator()(std::size_t r, std::size_t c) const {
    assert(rank() == 2 && r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
  }
  /// 3-D accessors (batch, position, channel).
  [[nodiscard]] float& operator()(std::size_t b, std::size_t p, std::size_t ch) {
    assert(rank() == 3);
    return data_[(b * shape_[1] + p) * shape_[2] + ch];
  }
  [[nodiscard]] float operator()(std::size_t b, std::size_t p, std::size_t ch) const {
    assert(rank() == 3);
    return data_[(b * shape_[1] + p) * shape_[2] + ch];
  }

  /// Mutation helpers --------------------------------------------------------
  void fill(float value);
  void zero() { fill(0.0f); }

  /// Reshapes this tensor in place to `shape`, reusing the existing buffer
  /// capacity whenever it suffices (no heap traffic in that case — this is
  /// how layer scratch tensors stay allocation-free across steps). Contents
  /// after reset are unspecified; callers must overwrite every element.
  void reset(Shape shape);

  /// Throws std::invalid_argument unless `shape() == expected`.
  void require_shape(const Shape& expected, const char* what) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// True when both tensors have identical shape and bitwise-equal contents.
[[nodiscard]] bool operator==(const Tensor& a, const Tensor& b);

/// Max |a_i - b_i|; tensors must be same shape.
[[nodiscard]] float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace ncnas::tensor
