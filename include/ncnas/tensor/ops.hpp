// Dense linear-algebra kernels used by the nn layers.
//
// Three tiers, selected by the process-wide KernelConfig (kernel_config.hpp):
//
//  * Reference kernels (`*_ref`, the default): the original single-threaded
//    triple loops. These are the oracles — simple enough to be obviously
//    correct, and the bit-exact ground truth kernel_diff_test compares
//    against.
//  * Blocked kernels (opt-in): cache-blocked, B-panel-packed micro-kernels,
//    parallelized over row blocks of the output on a dedicated internal
//    ThreadPool. Deterministic by construction — each output element is
//    written by exactly one task and accumulated in the same k-ascending
//    order at every thread count — so results stay bit-identical across
//    1..N threads and against the reference kernels.
//  * SIMD kernels (on by default where eligible, see KernelConfig::simd):
//    explicit AVX2+FMA / NEON micro-kernels consuming the same packed
//    panels as the blocked tier. They issue the identical per-element FMA
//    accumulation chain the compiler produces for the scalar tiers under
//    -ffp-contract (the build gate in kernel_config.cpp guarantees this),
//    so all three tiers remain bit-identical. Ragged edges of every problem
//    are always handled by the scalar micro-kernels.
//
// Both gemm and gemm_nt share one packed-panel driver: gemm_nt packs B^T
// into the same k-major panel layout and runs the exact same micro-kernels,
// rather than a separate strided kernel.
//
// NaN semantics: kernels never skip zero operands, so 0 * NaN = NaN
// propagates into the output like IEEE 754 says it should. (An earlier
// `if (aik == 0.0f) continue;` fast path made FLOP counts data-dependent
// and silently masked NaN/Inf in the other operand; kernel_diff_test pins
// the propagating behaviour.)
//
// Reductions (sum/mean/dot/squared_norm) intentionally stay serial in every
// mode: they are single accumulation chains, and splitting them across
// threads would change the addition tree and break bit-identity.
#pragma once

#include <functional>

#include "ncnas/tensor/tensor.hpp"

namespace ncnas::tensor {

/// The execution tier a gemm dispatches to (see the header comment).
enum class GemmPath {
  kReference = 0,  ///< serial triple loop (small sizes, or blocking off)
  kBlocked = 1,    ///< packed-panel scalar micro-kernels
  kSimd = 2,       ///< packed-panel SIMD micro-kernels (interior only)
};

/// The tier a gemm/gemm_nt/gemm_tn of dims (m, k, n) would run on under the
/// currently installed KernelConfig. Pure planning — no work is done. All
/// three variants share one dispatch rule, so one introspection covers them;
/// tests use this to pin the reference/blocked crossover and to assert the
/// SIMD tier actually engages when expected.
[[nodiscard]] GemmPath planned_gemm_path(std::size_t m, std::size_t k, std::size_t n);

/// C = A(m,k) * B(k,n). Shapes validated; C is overwritten. Dispatches to
/// the blocked kernel when the installed KernelConfig asks for it.
void gemm(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A(m,k) * B(n,k)^T.
void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A(k,m)^T * B(k,n).
void gemm_tn(const Tensor& a, const Tensor& b, Tensor& c);

/// Serial reference kernels — ignore KernelConfig entirely. The differential
/// oracles for the blocked kernels, and the baseline bench_kernels measures
/// speedup against.
void gemm_ref(const Tensor& a, const Tensor& b, Tensor& c);
void gemm_nt_ref(const Tensor& a, const Tensor& b, Tensor& c);
void gemm_tn_ref(const Tensor& a, const Tensor& b, Tensor& c);

/// Returns A * B freshly allocated.
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);

/// y += x (same shape).
void add_inplace(Tensor& y, const Tensor& x);

/// y += alpha * x (same shape). The axpy of reference BLAS.
void axpy(float alpha, const Tensor& x, Tensor& y);

/// y *= alpha.
void scale_inplace(Tensor& y, float alpha);

/// Adds a row vector `bias`(n) to every row of `y`(m,n).
void add_row_bias(Tensor& y, const Tensor& bias);

/// Accumulates column sums of `g`(m,n) into `out`(n): out += sum_rows(g).
void accumulate_col_sums(const Tensor& g, Tensor& out);

/// Sum of all elements.
[[nodiscard]] float sum(const Tensor& t);

/// Mean of all elements (0 for empty tensors).
[[nodiscard]] float mean(const Tensor& t);

/// Dot product of two same-shape tensors viewed flat.
[[nodiscard]] float dot(const Tensor& a, const Tensor& b);

/// Squared L2 norm.
[[nodiscard]] float squared_norm(const Tensor& t);

/// Runs fn(begin, end) over disjoint fixed-grain chunks of [0, n). Chunk
/// boundaries depend only on n — never on the thread count — and each index
/// belongs to exactly one chunk, so any fn whose per-index work is
/// independent produces identical bytes serially and on the pool. Runs on
/// the kernel pool when the installed KernelConfig is pooled and n clears
/// its min_parallel_elems threshold; serially otherwise.
void parallel_elems(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

/// Row-sliced variant for 2-D work: fn(row_begin, row_end) over chunks whose
/// grain is derived from `cols` (so a chunk is a constant amount of work
/// regardless of matrix shape). Same determinism contract as parallel_elems.
void parallel_rows(std::size_t rows, std::size_t cols,
                   const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace ncnas::tensor
