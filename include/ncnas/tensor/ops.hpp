// Dense linear-algebra kernels used by the nn layers.
//
// All kernels are single-threaded by design: in this system parallelism lives
// one level up (many independent architecture evaluations on a thread pool),
// which mirrors the paper's deployment — one reward estimation per KNL node,
// many nodes. Keeping the kernels serial keeps evaluations deterministic and
// avoids nested oversubscription.
#pragma once

#include "ncnas/tensor/tensor.hpp"

namespace ncnas::tensor {

/// C = A(m,k) * B(k,n). Shapes validated; C is overwritten.
void gemm(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A(m,k) * B(n,k)^T.
void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A(k,m)^T * B(k,n).
void gemm_tn(const Tensor& a, const Tensor& b, Tensor& c);

/// Returns A * B freshly allocated.
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);

/// y += x (same shape).
void add_inplace(Tensor& y, const Tensor& x);

/// y += alpha * x (same shape). The axpy of reference BLAS.
void axpy(float alpha, const Tensor& x, Tensor& y);

/// y *= alpha.
void scale_inplace(Tensor& y, float alpha);

/// Adds a row vector `bias`(n) to every row of `y`(m,n).
void add_row_bias(Tensor& y, const Tensor& bias);

/// Accumulates column sums of `g`(m,n) into `out`(n): out += sum_rows(g).
void accumulate_col_sums(const Tensor& g, Tensor& out);

/// Sum of all elements.
[[nodiscard]] float sum(const Tensor& t);

/// Mean of all elements (0 for empty tensors).
[[nodiscard]] float mean(const Tensor& t);

/// Dot product of two same-shape tensors viewed flat.
[[nodiscard]] float dot(const Tensor& a, const Tensor& b);

/// Squared L2 norm.
[[nodiscard]] float squared_norm(const Tensor& t);

}  // namespace ncnas::tensor
