// Per-thread bump arena for kernel scratch memory (pack panels, activation
// scratch). The blocked GEMM kernels used to malloc a fresh pack buffer per
// call — on the reward-estimation hot path that is thousands of allocations
// per architecture evaluation. The arena replaces them with a thread-local
// grow-only chunk list: the first call of a given size grows a chunk (and
// counts the growth through obs::profile_alloc, so `run_report --profile`
// shows it), every later call bumps a pointer and frees nothing.
//
// Usage is strictly scoped: take an ArenaScope, alloc through it, let the
// scope rewind the bump pointer on destruction. Chunks are never returned to
// the OS during a run, so steady-state kernel calls perform zero heap
// allocations. Scopes nest (LIFO per thread); memory handed out by a scope
// may be written by kernel-pool workers, but alloc()/rewind themselves must
// happen on the owning thread.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace ncnas::tensor::detail {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// This thread's arena (thread-local, created on first use).
  [[nodiscard]] static Arena& local();

  /// `n` floats of 64-byte-aligned scratch, valid until the enclosing
  /// scope's rewind. Grows a chunk only when no chunk can hold `n`.
  [[nodiscard]] float* alloc(std::size_t n);

  struct Mark {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };
  [[nodiscard]] Mark mark() const noexcept { return {chunk_, used_}; }
  void rewind(Mark m) noexcept {
    chunk_ = m.chunk;
    used_ = m.used;
  }

  /// Total float capacity across all chunks (bytes = 4x); high-water marks
  /// steady-state behaviour in tests: once warm, capacity stops growing.
  [[nodiscard]] std::size_t capacity_floats() const noexcept;

 private:
  struct AlignedDelete {
    void operator()(float* p) const noexcept;
  };
  struct Chunk {
    std::unique_ptr<float[], AlignedDelete> data;
    std::size_t size = 0;  // floats
  };

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;  // index of the chunk currently bumping
  std::size_t used_ = 0;   // floats consumed in chunks_[chunk_]
};

/// RAII scope: every alloc() through it is released (pointer-bumped back,
/// not freed) when the scope dies.
class ArenaScope {
 public:
  ArenaScope() : arena_(Arena::local()), mark_(arena_.mark()) {}
  ~ArenaScope() { arena_.rewind(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  [[nodiscard]] float* alloc(std::size_t n) { return arena_.alloc(n); }

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

}  // namespace ncnas::tensor::detail
