// Deterministic random number generation.
//
// Every stochastic component of the NAS (weight init, dropout masks, data
// generation, controller sampling, cost-model noise) draws from an explicit
// Rng instance so that runs are reproducible and agent-specific seeds behave
// exactly as in the paper ("agent-specific random weight initialization").
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

namespace ncnas::tensor {

/// Complete serializable state of an Rng stream: the xoshiro256** words plus
/// the Box–Muller cache, so a restored stream continues bit-identically even
/// when it was saved between the two halves of a normal() pair.
struct RngState {
  std::uint64_t s[4]{};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

/// xoshiro256** with SplitMix64 seeding. Fast, high quality, and — unlike
/// std::mt19937 distributions — bit-reproducible across standard libraries.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit integer.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal via Box–Muller (cached second value).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Samples an index from a discrete probability vector (assumed normalized;
  /// falls back to the last index on accumulated rounding error).
  std::size_t categorical(const std::vector<double>& probs);

  /// Derives an independent child stream; children of distinct `stream` values
  /// are decorrelated even under sequential seeds.
  [[nodiscard]] Rng split(std::uint64_t stream) const;

  /// Save/restore the full stream state (checkpoint/resume support). A
  /// stream restored from state() produces the exact draw sequence the
  /// original would have from that point on.
  [[nodiscard]] RngState state() const;
  void set_state(const RngState& st);

 private:
  std::uint64_t state_[4]{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace ncnas::tensor
