// A fixed-size worker pool with a parallel_for helper.
//
// This is the "many KNL nodes" analogue inside one process: the NAS driver
// submits independent reward-estimation closures here while the discrete-event
// simulator advances virtual time. Results must not depend on execution order
// (each closure is seeded independently), so the pool needs no ordering
// guarantees beyond task completion.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace ncnas::tensor {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 -> hardware_concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a task; the future resolves when it has run.
  std::future<void> submit(std::function<void()> task);

  /// Blocks until every task submitted so far has completed.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::jthread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs fn(i) for i in [0, n) across the pool, blocking until all complete.
/// Falls back to a serial loop when n is small or the pool has one thread.
void parallel_for(ThreadPool& pool, std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace ncnas::tensor
