// CheckpointWriter — the rotation policy around snapshot files.
//
// The driver opts in through SearchConfig::checkpoint, exactly the pattern
// of SearchConfig::telemetry and SearchConfig::faults: a null policy leaves
// the driver on its untouched path (zero overhead, bit-identical results),
// and — like telemetry, unlike a non-empty fault plan — an active checkpoint
// policy is deliberately excluded from config_fingerprint(), because saving
// a search never changes it.
//
// Snapshots are named snap-<ordinal>.ckpt; the ordinal is the run's
// cumulative snapshot count, so a resumed process continues the numbering of
// the process it replaced and rotation (keep the newest K) works across
// process generations.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "ncnas/ckpt/snapshot.hpp"

namespace ncnas::ckpt {

struct CheckpointConfig {
  /// Directory snapshots land in (created if absent).
  std::string directory;
  /// Virtual seconds between snapshots. The paper's 6-hour allocations make
  /// every 30 simulated minutes a natural cadence.
  double interval_seconds = 1800.0;
  /// Newest snapshots kept on disk; 0 keeps all.
  std::size_t keep_last = 3;
  /// Test hook: after this many snapshots written *by this process*, the
  /// driver throws SearchInterrupted — a deterministic stand-in for a
  /// preemption signal, used by the kill-and-resume tests and by
  /// examples/resume_search --kill-after (which escalates to a real
  /// SIGKILL). 0 disables.
  std::size_t abort_after_snapshots = 0;
};

/// Thrown by the driver when CheckpointConfig::abort_after_snapshots fires.
/// Carries the path of the snapshot that was just made durable, so the
/// catcher can hand it straight to resume_search().
class SearchInterrupted : public std::runtime_error {
 public:
  explicit SearchInterrupted(std::string snapshot_path)
      : std::runtime_error("search interrupted after snapshot " + snapshot_path),
        path_(std::move(snapshot_path)) {}
  [[nodiscard]] const std::string& snapshot_path() const noexcept { return path_; }

 private:
  std::string path_;
};

class CheckpointWriter {
 public:
  /// Creates the directory if needed. Throws SnapshotError when the
  /// directory cannot be created or the interval is not positive.
  explicit CheckpointWriter(CheckpointConfig config);

  /// Writes snap-<header.ordinal>.ckpt atomically, then rotates (deletes
  /// all but the newest keep_last snapshots). Returns the snapshot path.
  std::string write(const SnapshotHeader& header, const std::vector<std::uint8_t>& payload);

  /// Snapshots written by this writer (i.e. this process), which is what
  /// abort_after_snapshots counts against — not the run-cumulative ordinal.
  [[nodiscard]] std::size_t session_writes() const noexcept { return session_writes_; }
  [[nodiscard]] const CheckpointConfig& config() const noexcept { return config_; }

 private:
  CheckpointConfig config_;
  std::size_t session_writes_ = 0;
};

/// Snapshot files in `directory`, sorted by ordinal ascending. Non-snapshot
/// files are ignored; a missing directory yields an empty list.
[[nodiscard]] std::vector<std::string> list_checkpoints(const std::string& directory);

/// Highest-ordinal snapshot in `directory`, or nullopt when there is none.
[[nodiscard]] std::optional<std::string> latest_checkpoint(const std::string& directory);

}  // namespace ncnas::ckpt
