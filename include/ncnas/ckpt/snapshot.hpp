// Snapshot — the durable on-disk form of a running search.
//
// A snapshot is a single file: a fixed magic + schema version, a small
// header (config fingerprint, search-space name, virtual clock, cumulative
// journal watermark, ordinal), and an opaque payload of driver state. The
// header and payload are covered by one FNV-1a 64 hash, so truncation and
// bit corruption are detected before any state is trusted; the fingerprint
// lets the resume path refuse a snapshot taken under a different search
// configuration. Files are written atomically (temp file + rename), so a
// crash mid-write never leaves a half-snapshot under the real name.
//
// Encoding is explicit little-endian byte shifts — no memcpy of structs, no
// host-endianness in the format — so snapshots are portable and the byte
// stream is canonical: the same search state always serializes to the same
// bytes, which is what makes bit-identical resume testable.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace ncnas::ckpt {

/// "NCKP" — refuses files that are not snapshots at all.
inline constexpr std::uint32_t kSnapshotMagic = 0x4E434B50u;
/// Bump when the header or payload layout changes incompatibly.
/// v2: EvalRecord/EvalResult carry a shared-cache-hit flag, SearchResult
/// carries shared_cache_hits, and agent-cache keys are context-prefixed.
/// v3: EvalRecord/EvalResult carry the fidelity rung and SearchResult
/// carries the four ladder counters.
inline constexpr std::uint32_t kSnapshotVersion = 3;

/// Raised on any malformed, truncated, corrupted, or mismatched snapshot.
/// Never silently loads bad state — the error message says what failed.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only little-endian byte encoder for snapshot payloads.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void flag(bool v) { u8(v ? 1 : 0); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void floats(std::span<const float> v) {
    u64(v.size());
    for (float x : v) f32(x);
  }
  void doubles(std::span<const double> v) {
    u64(v.size());
    for (double x : v) f64(x);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Matching decoder. Every read checks bounds and throws SnapshotError on
/// overrun, so a truncated payload fails loudly instead of reading garbage.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  [[nodiscard]] bool flag() { return u8() != 0; }
  [[nodiscard]] std::uint16_t u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                      static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
  }
  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] float f32() { return std::bit_cast<float>(u32()); }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  [[nodiscard]] std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  [[nodiscard]] std::vector<float> floats() {
    const std::uint64_t n = u64();
    std::vector<float> v(n);
    for (auto& x : v) x = f32();
    return v;
  }
  [[nodiscard]] std::vector<double> doubles() {
    const std::uint64_t n = u64();
    std::vector<double> v(n);
    for (auto& x : v) x = f64();
    return v;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  /// Call after the last field: leftover bytes mean a layout mismatch.
  void require_done() const {
    if (pos_ != data_.size()) throw SnapshotError("snapshot: trailing bytes after payload");
  }

 private:
  void need(std::uint64_t n) const {
    if (pos_ + n > data_.size()) throw SnapshotError("snapshot: truncated payload");
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Everything the resume path validates before touching the payload.
struct SnapshotHeader {
  std::string fingerprint;          ///< nas::config_fingerprint of the search
  std::string space_name;           ///< SearchSpace::name()
  double virtual_time = 0.0;        ///< simulated clock at the safe point
  std::uint64_t journal_events = 0; ///< cumulative valid journal events (watermark)
  std::uint64_t ordinal = 0;        ///< 1-based snapshot count of the run
};

struct Snapshot {
  SnapshotHeader header;
  std::vector<std::uint8_t> payload;
};

/// FNV-1a 64 over a byte range (the snapshot integrity hash).
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::uint8_t> data);

/// Writes `header` + `payload` to `path` atomically: the bytes land in
/// `path.tmp` first and are renamed over `path` only after a successful
/// close, so readers never observe a partial file.
void write_snapshot(const std::string& path, const SnapshotHeader& header,
                    const std::vector<std::uint8_t>& payload);

/// Reads and validates a snapshot: magic, schema version, integrity hash.
/// Throws SnapshotError on any mismatch. Fingerprint validation is the
/// caller's job (it owns the SearchConfig to fingerprint against).
[[nodiscard]] Snapshot read_snapshot(const std::string& path);

}  // namespace ncnas::ckpt
