// Manually designed reference networks (paper §2), the comparison targets for
// every post-training figure and for Table 1's "manually designed" rows.
//
// Architectures follow the paper exactly; widths are scaled by the same
// factor as the data dimensions (DESIGN.md §5): the paper's 1,000-unit hidden
// layers become `hidden` (default 96), NT3's 128 conv filters become 32.
#pragma once

#include "ncnas/data/dataset.hpp"
#include "ncnas/nn/graph.hpp"
#include "ncnas/tensor/rng.hpp"

namespace ncnas::data {

struct BaselineDims {
  std::size_t hidden = 96;       ///< dense submodel width (paper: 1,000)
  std::size_t nt3_filters = 32;  ///< conv filters (paper: 128)
  std::size_t nt3_dense1 = 64;   ///< first dense head (paper: 200)
  std::size_t nt3_dense2 = 20;   ///< second dense head (paper: 20)
};

/// Combo: shared 3-layer drug submodel (weight-shared between the two drug
/// inputs), 3-layer cell submodel, concat, 3 dense layers, scalar output.
[[nodiscard]] nn::Graph combo_baseline(const Dataset& ds, tensor::Rng& rng,
                                       const BaselineDims& dims = {});

/// Uno: three 3-layer feature encoders (rna-seq, descriptors, fingerprints),
/// concatenated with the raw dose, then 3 dense layers and a scalar output.
[[nodiscard]] nn::Graph uno_baseline(const Dataset& ds, tensor::Rng& rng,
                                     const BaselineDims& dims = {});

/// NT3: conv(k=20) + pool(1) + conv(k=10) + pool(10) + flatten +
/// dense + dropout(0.1) + dense + dropout(0.1) + softmax(2).
[[nodiscard]] nn::Graph nt3_baseline(const Dataset& ds, tensor::Rng& rng,
                                     const BaselineDims& dims = {});

/// Dispatch by dataset name ("combo" / "uno" / "nt3").
[[nodiscard]] nn::Graph baseline_for(const Dataset& ds, tensor::Rng& rng,
                                     const BaselineDims& dims = {});

}  // namespace ncnas::data
