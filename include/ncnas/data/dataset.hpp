// Dataset — a multi-input supervised problem, the unit the NAS optimizes for.
//
// The paper's three CANDLE benchmarks are tabular, multi-input problems:
//   Combo : {cell expression, drug-1 descriptors, drug-2 descriptors} -> growth %
//   Uno   : {cell rna-seq, dose, drug descriptors, drug fingerprints} -> response
//   NT3   : {rna-seq gene expression} -> tumor / normal class
// We regenerate them synthetically (see combo.cpp / uno.cpp / nt3.cpp) with
// the same schema at reduced dimensionality; DESIGN.md documents the scaling.
#pragma once

#include <string>
#include <vector>

#include "ncnas/nn/loss.hpp"
#include "ncnas/nn/metrics.hpp"
#include "ncnas/tensor/tensor.hpp"

namespace ncnas::data {

struct Dataset {
  std::string name;
  std::vector<std::string> input_names;
  std::vector<tensor::Tensor> x_train;  ///< one [N, d_i] matrix per input
  tensor::Tensor y_train;               ///< [N, 1]
  std::vector<tensor::Tensor> x_valid;
  tensor::Tensor y_valid;
  nn::Metric metric = nn::Metric::kR2;
  nn::LossKind loss = nn::LossKind::kMse;
  std::size_t batch_size = 32;          ///< the paper's per-benchmark batch size

  [[nodiscard]] std::size_t train_rows() const { return y_train.dim(0); }
  [[nodiscard]] std::size_t valid_rows() const { return y_valid.dim(0); }
  [[nodiscard]] std::size_t input_count() const { return x_train.size(); }
  /// Feature width of input i.
  [[nodiscard]] std::size_t input_dim(std::size_t i) const { return x_train.at(i).dim(1); }
};

/// Dimension configuration shared by the generators; defaults are the scaled
/// values from DESIGN.md §5 chosen so a one-epoch reward estimation costs
/// milliseconds. Pass the paper's full dimensions to reproduce at scale.
struct ComboDims {
  std::size_t train = 2048, valid = 512;
  std::size_t expression = 48, descriptors = 96;
  std::size_t latent = 8;
};
struct UnoDims {
  std::size_t train = 1024, valid = 256;
  std::size_t rnaseq = 48, descriptors = 96, fingerprints = 64;
  std::size_t latent = 8;
};
struct Nt3Dims {
  std::size_t train = 384, valid = 128;
  std::size_t length = 256;     ///< gene-expression profile length (paper: 60,483)
  std::size_t motif = 12;       ///< length of class-specific local signatures
};

/// Drug-pair growth benchmark. Symmetric in the two drugs, so sharing the
/// drug-descriptor submodel (MirrorNode) is genuinely advantageous.
[[nodiscard]] Dataset make_combo(std::uint64_t seed, const ComboDims& dims = {});

/// Dose-response benchmark with a Hill-curve ground truth in the dose input.
[[nodiscard]] Dataset make_uno(std::uint64_t seed, const UnoDims& dims = {});

/// Tumor/normal classification with localized class motifs, which rewards
/// convolutional feature extractors over plain dense stacks.
[[nodiscard]] Dataset make_nt3(std::uint64_t seed, const Nt3Dims& dims = {});

}  // namespace ncnas::data
