// Post-training — the paper's second stage: the top-50 architectures by
// estimated reward are re-trained for 20 epochs on the full training data
// (no timeout) and compared against the manually designed network on three
// ratios (Figs. 7, 8, 10, 12; Table 1):
//
//   accuracy ratio   R2/R2_b  (ACC/ACC_b for NT3)   > 1  NAS wins
//   parameter ratio  P_b/P                          > 1  NAS is smaller
//   time ratio       T_b/T                          > 1  NAS trains faster
//
// Training time here is real wall-clock of our scaled training runs — the
// paper's K80 numbers are replaced by host-CPU seconds, which preserves the
// ratios because both sides run on the same substrate.
#pragma once

#include <vector>

#include "ncnas/data/baselines.hpp"
#include "ncnas/data/dataset.hpp"
#include "ncnas/nas/driver.hpp"
#include "ncnas/space/search_space.hpp"
#include "ncnas/tensor/thread_pool.hpp"

namespace ncnas::analytics {

struct PostTrainOptions {
  std::size_t epochs = 20;  ///< the paper's post-training epoch count
  std::uint64_t seed = 7;
};

struct PostTrainResult {
  space::ArchEncoding arch;      ///< empty for the baseline row
  float search_reward = 0.0f;    ///< estimated reward during the search
  float final_metric = 0.0f;     ///< R2 / ACC after full training
  std::size_t params = 0;
  double train_seconds = 0.0;    ///< real wall-clock of the training loop
};

struct RatioRow {
  float accuracy_ratio = 0.0f;   ///< metric / metric_baseline
  float param_ratio = 0.0f;      ///< params_baseline / params
  float time_ratio = 0.0f;       ///< time_baseline / time
};

/// Fully trains one NAS architecture (20 epochs, full data).
[[nodiscard]] PostTrainResult post_train(const space::SearchSpace& space,
                                         const data::Dataset& ds,
                                         const space::ArchEncoding& arch,
                                         const PostTrainOptions& opts);

/// Fully trains the manually designed reference network for `ds`.
[[nodiscard]] PostTrainResult post_train_baseline(const data::Dataset& ds,
                                                  const PostTrainOptions& opts);

/// Post-trains the given top-k records, optionally in parallel. Results keep
/// the input order.
[[nodiscard]] std::vector<PostTrainResult> post_train_many(
    const space::SearchSpace& space, const data::Dataset& ds,
    const std::vector<nas::EvalRecord>& top, const PostTrainOptions& opts,
    tensor::ThreadPool* pool = nullptr);

/// Ratio of one result against the baseline row.
[[nodiscard]] RatioRow ratios(const PostTrainResult& model, const PostTrainResult& baseline);

}  // namespace ncnas::analytics
