// CSV export — plot-ready dumps of the structures the benches print, for
// users who want real figures out of the reproduction (matplotlib, gnuplot).
#pragma once

#include <string>
#include <vector>

#include "ncnas/nas/driver.hpp"

namespace ncnas::analytics {

/// Writes "t_seconds,value" rows; `bucket_seconds` spaces the time column.
void write_series_csv(const std::string& path, const std::vector<double>& series,
                      double bucket_seconds, const std::string& value_header = "value");

/// Writes several aligned series as columns under the given headers (ragged
/// series are padded with empty cells).
void write_multi_series_csv(const std::string& path,
                            const std::vector<std::string>& headers,
                            const std::vector<std::vector<double>>& columns,
                            double bucket_seconds);

/// One row per evaluation: time, reward, params, sim_duration, cache_hit,
/// timed_out, agent, arch key.
void write_evals_csv(const std::string& path, const nas::SearchResult& result);

}  // namespace ncnas::analytics
