// Architecture statistics — the paper's analytics module parses NAS logs to
// find "the best architectures ... and number of unique architectures"; this
// module adds the per-decision operation histogram, which shows *what* the
// controller learned to prefer (e.g. Combo converging on wide relu stacks
// and the all-inputs skip connection).
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "ncnas/nas/driver.hpp"
#include "ncnas/space/search_space.hpp"

namespace ncnas::analytics {

struct DecisionHistogram {
  std::string decision_name;            ///< e.g. "C1/B1/N0 (connect)"
  std::vector<std::size_t> counts;      ///< per option index
  std::size_t modal_option = 0;         ///< most frequent option
  std::string modal_op_name;            ///< its rendered operation
  double modal_fraction = 0.0;          ///< counts[modal] / total
};

struct ArchStats {
  std::size_t archs = 0;                ///< architectures analysed
  std::size_t unique = 0;               ///< distinct encodings among them
  std::vector<DecisionHistogram> decisions;

  /// Mean modal fraction over all decisions — 1.0 means every architecture
  /// is identical (a fully converged controller), 1/arity means uniform.
  [[nodiscard]] double concentration() const;
};

/// Histogram over an explicit set of architectures (e.g. SearchResult::top_k
/// records, or all evaluations past some time).
[[nodiscard]] ArchStats compute_arch_stats(const space::SearchSpace& space,
                                           const std::vector<space::ArchEncoding>& archs);

/// Convenience: stats over the architectures evaluated after `t_from`
/// simulated seconds (0 = whole search) — shows late-search concentration.
[[nodiscard]] ArchStats compute_arch_stats(const space::SearchSpace& space,
                                           const nas::SearchResult& result,
                                           double t_from = 0.0);

/// Multi-line report: one row per decision with the modal operation.
void print_arch_stats(std::ostream& os, const ArchStats& stats);

}  // namespace ncnas::analytics
