// Time-series utilities for the paper's trajectory plots: running-best reward
// resampling (Figs. 4, 6a, 11) and cross-replication quantile bands (Fig. 13).
#pragma once

#include <utility>
#include <vector>

namespace ncnas::analytics {

/// Resamples a (time, running-best-reward) staircase onto fixed buckets:
/// out[i] = best reward achieved by time (i+1)*bucket_seconds. Buckets before
/// the first observation carry `fill`.
[[nodiscard]] std::vector<double> resample_best(
    const std::vector<std::pair<double, float>>& best_so_far, double t_end,
    double bucket_seconds, double fill = -1.0);

/// Mean of the observations that land in each bucket — the paper's
/// "reward over time" view, where a learning search climbs and random
/// search stays flat. Empty buckets carry the previous bucket's value
/// (`fill` before the first observation).
[[nodiscard]] std::vector<double> resample_mean(
    const std::vector<std::pair<double, float>>& observations, double t_end,
    double bucket_seconds, double fill = -1.0);

struct QuantileBands {
  std::vector<double> q10, q50, q90;
};

/// Per-bucket 10/50/90 % quantiles across replications (each row one run;
/// rows may have different lengths — shorter rows extend with their last
/// value, matching a converged-and-stopped search).
[[nodiscard]] QuantileBands quantile_bands(const std::vector<std::vector<double>>& runs);

/// Linear-interpolated quantile of a sample (q in [0, 1]).
[[nodiscard]] double quantile(std::vector<double> values, double q);

}  // namespace ncnas::analytics
