// Plain-text reporting helpers shared by the bench binaries: fixed-width
// tables, time series rows, and a coarse ASCII sparkline for eyeballing
// trajectory shapes in a terminal.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "ncnas/obs/metrics.hpp"

namespace ncnas::analytics {

/// "t(min), value" rows: one line per bucket, prefixed with `label`.
void print_series(std::ostream& os, const std::string& label, const std::vector<double>& series,
                  double bucket_seconds);

/// Compact one-line rendering: label then one glyph per bucket from
/// " .:-=+*#%@" scaled over [lo, hi].
void print_sparkline(std::ostream& os, const std::string& label,
                     const std::vector<double>& series, double lo, double hi);

/// A fixed-width table. Column widths adapt to content.
class Table {
 public:
  explicit Table(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (benches share one style).
[[nodiscard]] std::string fmt(double value, int precision = 3);

/// Renders a telemetry metrics snapshot as report tables: one for counters
/// and gauges, one summarizing each histogram (count/mean/p50/p90/max edge).
void print_telemetry(std::ostream& os, const obs::MetricsSnapshot& snapshot);

}  // namespace ncnas::analytics
