// Operations — the atoms of the paper's NAS search space (§3.1).
//
// A VariableNode's choice list is a vector of these. Dense/Dropout form the
// MLP_Node menu used by Combo and Uno; Conv1D/MaxPool1D/Activation appear in
// NT3; Connect options realize skip connections (each option names the set of
// earlier tensors to splice in); Add is the ConstantNode operation used by
// Uno's residual blocks.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "ncnas/nn/layers.hpp"

namespace ncnas::space {

/// A reference to a tensor produced earlier in the structure — the targets a
/// Connect/Add operation may splice in.
struct SkipRef {
  enum class Kind : std::uint8_t { kInput, kCellOutput, kNodeOutput };
  Kind kind = Kind::kInput;
  std::size_t input = 0;              ///< kInput: structure input index
  std::size_t cell = 0;               ///< kCellOutput / kNodeOutput
  std::size_t block = 0;              ///< kNodeOutput
  std::size_t node = 0;               ///< kNodeOutput

  [[nodiscard]] static SkipRef to_input(std::size_t p) {
    return {Kind::kInput, p, 0, 0, 0};
  }
  [[nodiscard]] static SkipRef to_cell(std::size_t c) {
    return {Kind::kCellOutput, 0, c, 0, 0};
  }
  [[nodiscard]] static SkipRef to_node(std::size_t c, std::size_t b, std::size_t n) {
    return {Kind::kNodeOutput, 0, c, b, n};
  }
};

struct IdentityOp {};

struct DenseOp {
  std::size_t units = 0;
  nn::Act act = nn::Act::kLinear;
};

struct DropoutOp {
  float rate = 0.0f;
};

struct Conv1DOp {
  std::size_t filters = 8;  ///< the paper fixes NT3 search filters at 8
  std::size_t kernel = 3;
};

struct MaxPool1DOp {
  std::size_t size = 2;
};

struct ActivationOp {
  nn::Act act = nn::Act::kRelu;
};

/// Concatenates the node's sequential input with every referenced tensor.
/// An empty ref list is the paper's "Null" option (plain pass-through).
struct ConnectOp {
  std::vector<SkipRef> refs;
  std::string label;  ///< e.g. "cell-expr & drug1"
};

/// Elementwise addition of the sequential input and the referenced tensors
/// (widths aligned by zero padding; see nn::Add).
struct AddOp {
  std::vector<SkipRef> refs;
};

using Op = std::variant<IdentityOp, DenseOp, DropoutOp, Conv1DOp, MaxPool1DOp, ActivationOp,
                        ConnectOp, AddOp>;

/// Short printable name, e.g. "Dense(48, relu)" or "Connect(drug1 & drug2)".
[[nodiscard]] std::string op_name(const Op& op);

}  // namespace ncnas::space
