// build_model — lowers (SearchSpace, ArchEncoding) to a trainable nn::Graph.
//
// The builder inserts rank adapters automatically (Flatten before a Dense fed
// by a feature map, Reshape1D before a Conv1D fed by a feature vector), skips
// a Conv1D whose kernel exceeds the current length (degrades to Identity),
// and realizes MirrorNodes by parameter-sharing clones of the source node's
// built layer. The task head (scalar regression output or softmax classifier,
// both outside the paper's search space) is appended at the end.
#pragma once

#include <span>

#include "ncnas/nn/graph.hpp"
#include "ncnas/space/search_space.hpp"

namespace ncnas::space {

struct TaskHead {
  enum class Kind { kRegression, kClassification };
  Kind kind = Kind::kRegression;
  std::size_t classes = 1;  ///< used for kClassification

  [[nodiscard]] static TaskHead regression() { return {Kind::kRegression, 1}; }
  [[nodiscard]] static TaskHead classification(std::size_t classes) {
    return {Kind::kClassification, classes};
  }
};

/// `input_dims[p]` is the feature width of structure input p (one per
/// Structure::input_names entry). `rng` seeds the weight initialization —
/// the paper's agent-specific random initializer.
[[nodiscard]] nn::Graph build_model(const SearchSpace& space, const ArchEncoding& arch,
                                    std::span<const std::size_t> input_dims, TaskHead head,
                                    tensor::Rng& rng);

}  // namespace ncnas::space
