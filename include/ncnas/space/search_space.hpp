// SearchSpace — a validated Structure plus the derived quantities the rest of
// the system needs: the ordered list of decision points (variable nodes),
// their arities, the total space size, sampling, and pretty-printing.
#pragma once

#include <string>
#include <vector>

#include "ncnas/space/structure.hpp"
#include "ncnas/tensor/rng.hpp"

namespace ncnas::space {

/// Coordinates of one variable node inside the structure.
struct DecisionPoint {
  std::size_t cell = 0;
  std::size_t block = 0;
  std::size_t node = 0;
  std::size_t arity = 0;
  std::string name;
};

class SearchSpace {
 public:
  /// Validates the structure (mirror sources must precede their mirrors,
  /// skip refs must point backward, every variable node needs >= 1 option).
  explicit SearchSpace(Structure structure);

  [[nodiscard]] const Structure& structure() const noexcept { return structure_; }
  [[nodiscard]] const std::string& name() const noexcept { return structure_.name; }

  [[nodiscard]] const std::vector<DecisionPoint>& decisions() const noexcept {
    return decisions_;
  }
  [[nodiscard]] std::size_t num_decisions() const noexcept { return decisions_.size(); }
  /// Arity per decision, in encoding order — what the RL controller consumes.
  [[nodiscard]] std::vector<std::size_t> arities() const;
  [[nodiscard]] std::size_t max_arity() const noexcept { return max_arity_; }

  /// |space| as a double (the paper quotes e.g. 2.0968e14) and its log10.
  [[nodiscard]] double size() const noexcept { return size_; }
  [[nodiscard]] double log10_size() const noexcept { return log10_size_; }

  [[nodiscard]] ArchEncoding random_arch(tensor::Rng& rng) const;
  [[nodiscard]] bool is_valid(const ArchEncoding& arch) const;
  /// Throws std::invalid_argument with a precise message when invalid.
  void require_valid(const ArchEncoding& arch) const;

  /// The concrete operation selected for decision `d` by `arch`.
  [[nodiscard]] const Op& chosen_op(const ArchEncoding& arch, std::size_t d) const;

  /// One line per decision: "C1/B1/N0 <- Connect(drug1 & drug2)".
  [[nodiscard]] std::string describe(const ArchEncoding& arch) const;

 private:
  Structure structure_;
  std::vector<DecisionPoint> decisions_;
  std::size_t max_arity_ = 0;
  double size_ = 1.0;
  double log10_size_ = 0.0;
};

}  // namespace ncnas::space
