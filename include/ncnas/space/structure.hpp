// Structure / Cell / Block / Node — the paper's search-space formalism (§3.1).
//
//   Structure S = ((I_0..I_{P-1}), (C_0..C_{K-1}), R_out)
//   Cell C_i    = blocks {B_0..B_{L-1}} + an output rule (concatenation)
//   Block B     = a DAG of nodes; here nodes run sequentially from the
//                 block's input, with Connect/Add nodes splicing in earlier
//                 tensors — this covers every space the paper defines.
//
// Node kinds:
//   VariableNode - a list of candidate operations; the search space proper
//   ConstantNode - a fixed operation (excluded from the space)
//   MirrorNode   - reuses another node's operation *and parameters*
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "ncnas/space/op.hpp"

namespace ncnas::space {

struct VariableNode {
  std::string name;
  std::vector<Op> options;
};

struct ConstantNode {
  std::string name;
  Op op;
};

/// Reuses the operation chosen for — and the layer parameters built for —
/// the node at (cell, block, node), which must precede this node.
struct MirrorNode {
  std::string name;
  std::size_t cell = 0;
  std::size_t block = 0;
  std::size_t node = 0;
};

using NodeSpec = std::variant<VariableNode, ConstantNode, MirrorNode>;

struct Block {
  std::string name;
  SkipRef input;                 ///< where the block's first node reads from
  std::vector<NodeSpec> nodes;   ///< applied sequentially
};

struct Cell {
  std::string name;
  std::vector<Block> blocks;     ///< cell output = concat of block outputs
};

struct Structure {
  std::string name;
  std::vector<std::string> input_names;
  std::vector<Cell> cells;
  /// Cells whose outputs are concatenated into the model output; empty means
  /// "the last cell only".
  std::vector<std::size_t> output_cells;
};

/// Architecture encoding: one option index per VariableNode, in structure
/// order (cells, then blocks, then nodes).
using ArchEncoding = std::vector<std::uint16_t>;

/// Hashable key for evaluation caches.
[[nodiscard]] std::string arch_key(const ArchEncoding& arch);

}  // namespace ncnas::space
