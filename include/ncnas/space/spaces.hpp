// Canned search spaces — the five spaces of the paper's §3.1.
//
//   combo_small : 12 MLP nodes (13-way) + 1 Connect (9-way)   |S| = 13^12 * 9
//   combo_large : C1 replicated 8x with growing Connect menus
//   uno_small   : 12 MLP nodes (dose block is constant)        |S| = 13^12
//   uno_large   : 9 cells with 1 MLP + 1 Connect each
//   nt3_small   : (Conv,Act,Pool)^2 + (Dense,Act,Drop)^2       |S| = (5*4*5)^2 * (9*4*7)^2
//
// Dense widths follow the global scaling of DESIGN.md §5: the paper's
// {100, 500, 1000} units become {16, 48, 96}; NT3's dense menu
// {10..1000} becomes {4..96}; conv filters stay at the paper's 8.
#pragma once

#include <string>
#include <vector>

#include "ncnas/space/search_space.hpp"

namespace ncnas::space {

/// The 13-option MLP_Node menu shared by Combo and Uno.
[[nodiscard]] std::vector<Op> mlp_node_options();

[[nodiscard]] SearchSpace combo_small_space();
[[nodiscard]] SearchSpace combo_large_space();
[[nodiscard]] SearchSpace uno_small_space();
[[nodiscard]] SearchSpace uno_large_space();
[[nodiscard]] SearchSpace nt3_small_space();

/// Lookup by the names used throughout benches and examples:
/// "combo-small", "combo-large", "uno-small", "uno-large", "nt3-small".
[[nodiscard]] SearchSpace space_by_name(const std::string& name);
[[nodiscard]] std::vector<std::string> space_names();

}  // namespace ncnas::space
