// FaultInjector — a seeded, fully deterministic chaos plan for the simulated
// cluster (paper §3.3, §4: the production system leaned on Balsam to survive
// killed jobs, straggler nodes, and lost results on Theta; this layer makes
// that robustness testable without the Theta).
//
// A FaultPlan describes *what goes wrong*: workers that crash at a virtual
// time, per-attempt evaluation failure probability, slowdown multipliers
// (straggler nodes), completed tasks whose result is lost in flight, and
// parameter-server exchanges that are dropped or delayed. The injector turns
// the plan into per-site verdicts that are pure functions of
// (seed, site, agent, key, attempt) — no shared RNG stream — so verdicts are
// independent of evaluation order and threading, exactly like the cost
// model's hash jitter. Same plan + same run seed => bit-identical faults.
//
// The injector is threaded through SearchConfig the same opt-in way
// telemetry is: a null pointer or an empty plan leaves the driver on its
// fault-free path with bit-identical results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ncnas::exec {

/// One worker permanently lost at virtual time `time` (a killed Theta node).
/// Tasks it is running at that moment die with it and are requeued.
struct WorkerCrash {
  std::size_t agent = 0;
  std::size_t worker = 0;
  double time = 0.0;
};

struct FaultPlan {
  /// Seed of the fault universe, independent of the search seed.
  std::uint64_t seed = 0;

  /// Workers that permanently die at a virtual time.
  std::vector<WorkerCrash> worker_crashes;

  /// Per-attempt probability that an evaluation task dies mid-run (the
  /// worker survives; the task is retried with backoff).
  double eval_failure_prob = 0.0;
  /// Per-attempt probability that a task runs `slowdown_multiple` slower
  /// (a straggler node; the task still succeeds).
  double slowdown_prob = 0.0;
  double slowdown_multiple = 3.0;
  /// Per-attempt probability that a task completes but its result is lost
  /// in flight (the full duration is paid, then the task is retried).
  double lost_result_prob = 0.0;

  /// Per-exchange probability that a PS exchange is dropped (the delta never
  /// arrives) or delayed by `ps_delay_seconds` before arriving.
  double ps_drop_prob = 0.0;
  double ps_delay_prob = 0.0;
  double ps_delay_seconds = 30.0;

  /// Recovery policy knobs (used by the driver, not by fault sampling).
  std::size_t max_retries = 3;           ///< failed attempts before flooring
  double backoff_base_seconds = 5.0;     ///< first retry delay
  double backoff_cap_seconds = 120.0;    ///< exponential backoff ceiling
  /// A2C only: virtual seconds the barrier waits for absent agents after the
  /// last live arrival before releasing a partial round.
  double barrier_timeout_seconds = 300.0;

  /// True when the plan injects nothing — the driver then behaves (and its
  /// config fingerprint stays) exactly as if no plan were set.
  [[nodiscard]] bool empty() const;
  /// Stable one-line digest of every fault knob, recorded by result_io so
  /// saved logs from different plans never alias.
  [[nodiscard]] std::string fingerprint() const;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Verdict for one dispatch attempt of one task.
  struct TaskFault {
    bool fail = false;        ///< dies mid-run at fail_frac of its duration
    double fail_frac = 0.5;   ///< fraction of the duration served before dying
    bool lost = false;        ///< completes, but the result never arrives
    double slowdown = 1.0;    ///< duration multiplier (1.0 = healthy node)
  };
  /// Pure in (agent, arch key, attempt); independent of call order.
  [[nodiscard]] TaskFault task_fault(std::size_t agent, const std::string& arch_key,
                                     std::size_t attempt) const;

  /// Verdict for one PS exchange (drop wins over delay).
  struct ExchangeFault {
    bool drop = false;
    double delay_seconds = 0.0;
  };
  [[nodiscard]] ExchangeFault exchange_fault(std::size_t agent, std::uint64_t round) const;

  /// Virtual time at which (agent, worker) permanently dies; +infinity when
  /// the plan never kills it. Duplicate plan entries resolve to the earliest.
  [[nodiscard]] double crash_time(std::size_t agent, std::size_t worker) const;

  /// Capped exponential backoff before retry number `attempt` (1-based):
  /// min(cap, base * 2^(attempt-1)).
  [[nodiscard]] double backoff(std::size_t attempt) const;

 private:
  FaultPlan plan_;
  bool enabled_ = false;
};

}  // namespace ncnas::exec
