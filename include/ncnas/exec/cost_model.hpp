// CostModel — maps a reward-estimation task to *simulated* wall-clock seconds.
//
// The paper ran each evaluation on one KNL node with a 10-minute timeout; we
// run the (scaled-down) training for real but advance a virtual clock using a
// deterministic cost proxy:
//
//   duration = startup + seconds_per_megaunit * (params * samples * epochs) / 1e6
//              * lognormal-ish jitter derived from the architecture key
//
// Trainable-parameter count times samples processed is the dominant term of a
// dense model's training cost, so the proxy preserves the *relative* task
// times that drive every utilization/scaling figure, while the jitter term
// reproduces the task-time variance responsible for batch-synchronous idling.
// Determinism: the jitter is hashed from the architecture, not drawn from a
// shared RNG, so results are independent of evaluation order.
#pragma once

#include <cstdint>
#include <string>

namespace ncnas::exec {

struct CostModel {
  double startup_seconds = 20.0;       ///< job launch + framework import cost
  double seconds_per_megaunit = 3.0;   ///< calibration knob, per-benchmark
  double jitter_frac = 0.15;           ///< +/- spread of multiplicative noise
  double timeout_seconds = 600.0;      ///< the paper's 10-minute kill timer

  /// Simulated duration of training `params` trainable weights on `samples`
  /// rows for `epochs` epochs. `arch_key` seeds the deterministic jitter.
  [[nodiscard]] double duration(std::size_t params, std::size_t samples, std::size_t epochs,
                                const std::string& arch_key) const;

  [[nodiscard]] bool times_out(double duration) const { return duration > timeout_seconds; }
};

}  // namespace ncnas::exec
