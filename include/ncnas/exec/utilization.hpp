// UtilizationMonitor — Balsam's "fraction of worker nodes busy" metric.
//
// The launcher (here: the NAS driver's virtual-time loop) reports one busy
// interval per worker task; the monitor integrates them into the utilization
// time series that Figures 5, 6b and 9 plot.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace ncnas::exec {

class UtilizationMonitor {
 public:
  explicit UtilizationMonitor(std::size_t total_workers);

  [[nodiscard]] std::size_t total_workers() const noexcept { return total_workers_; }

  /// Records that one worker was busy during [start, end) simulated seconds.
  void add_busy_interval(double start, double end);

  /// Records that one worker is permanently lost from `from` onwards (a
  /// crashed node): its worker-seconds leave the utilization denominator, so
  /// the surviving capacity is measured against what actually existed.
  void add_capacity_loss(double from);

  /// Mean utilization (busy worker-seconds / available worker-seconds) in
  /// each bucket of `bucket_seconds` covering [0, t_end).
  [[nodiscard]] std::vector<double> series(double t_end, double bucket_seconds) const;

  /// Overall mean utilization in [0, t_end).
  [[nodiscard]] double average(double t_end) const;

  [[nodiscard]] double busy_worker_seconds() const noexcept { return busy_seconds_; }
  [[nodiscard]] std::size_t interval_count() const noexcept { return intervals_.size(); }
  [[nodiscard]] std::size_t capacity_losses() const noexcept { return losses_.size(); }

  /// --- checkpoint/restore ---------------------------------------------------
  /// Intervals are kept in recording order and busy_seconds is carried over
  /// verbatim (not re-summed), so a restored monitor reproduces the original
  /// float accumulation bit-for-bit.
  struct State {
    std::vector<std::pair<double, double>> intervals;  ///< (start, end)
    std::vector<double> losses;
    double busy_seconds = 0.0;
  };
  [[nodiscard]] State export_state() const;
  void import_state(const State& state);

 private:
  struct Interval {
    double start, end;
  };

  std::size_t total_workers_;
  std::vector<Interval> intervals_;
  std::vector<double> losses_;  ///< one entry per dead worker: loss start time
  double busy_seconds_ = 0.0;
};

}  // namespace ncnas::exec
