// Per-benchmark reward-estimation presets — the calibration that maps the
// paper's Theta-scale settings onto our dimensionally scaled substrate.
//
// The paper: 1 training epoch, Adam(1e-3), per-benchmark batch sizes
// (256/32/20), 10 % of Combo's training data, 10-minute timeout. At full
// scale one epoch is ~100 optimizer steps; our scaled datasets would get
// only 2-25 steps with those settings, so the presets shrink the batch and
// raise the learning rate until one low-fidelity epoch covers a comparable
// optimization distance (validated against the paper's reward levels: Combo
// search rewards ~0.5-0.6, Uno ~0.4, NT3 ~1.0).
//
// Cost-model constants are calibrated so the simulated task times land in
// the paper's regime: a typical Combo evaluation is a few simulated minutes,
// the 10-minute timeout is rarely hit at 10 % data, and becomes the dominant
// effect at 40 % (Fig. 11).
#pragma once

#include <string>

#include "ncnas/exec/cost_model.hpp"
#include "ncnas/exec/evaluator.hpp"

namespace ncnas::exec {

/// Search-time fidelity for a benchmark ("combo" / "uno" / "nt3").
/// `subset_fraction` < 0 keeps the benchmark default (Combo 0.10, others 1).
[[nodiscard]] FidelityConfig default_fidelity(const std::string& dataset_name,
                                              double subset_fraction = -1.0);

/// Space-aware fidelity: the deep replicated-cell models of the large Combo
/// space need a gentler learning rate to stay stable under low-fidelity
/// training; everything else matches the dataset default.
[[nodiscard]] FidelityConfig default_fidelity_for_space(const std::string& space_name,
                                                        double subset_fraction = -1.0);

/// Cost model (simulated seconds per megaunit of training work) calibrated
/// per benchmark; timeout fixed at the paper's 600 s.
[[nodiscard]] CostModel default_cost(const std::string& dataset_name);

/// Space-aware calibration: large spaces produce ~3-4x bigger median
/// architectures, so they get their own seconds-per-megaunit constant tuned
/// to keep the median task a few simulated minutes and place the Fig. 11
/// timeout crossover between 30 % and 40 % of the Combo training data.
/// Accepts "combo-small", "combo-large", "uno-small", "uno-large",
/// "nt3-small".
[[nodiscard]] CostModel default_cost_for_space(const std::string& space_name);

}  // namespace ncnas::exec
