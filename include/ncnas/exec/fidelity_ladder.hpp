// FidelityLadder — successive-halving multi-fidelity reward estimation
// (Hyperband-style; Elsken et al. survey §4, Cassimon et al. 2024).
//
// Reward estimation is ~all of NAS compute. Instead of training every
// candidate at the full fidelity, the ladder trains the whole batch at a
// cheap bottom rung (few epochs, small data subset), keeps only the top
// `ceil(n/eta)` by reward, and promotes the survivors to the next rung.
// Promoted candidates inherit their trained weights (warm start): rung r+1
// resumes `nn::fit` on the same `nn::Graph`, paying only the *delta* epochs
// between rungs, so the full-fidelity signal the controller learns from
// costs a fraction of a flat evaluation. Non-promoted candidates report
// their highest-rung reward — a noisier but rank-faithful signal, which is
// exactly the trade successive halving makes.
//
// Cache contract: every rung is its own evaluation context. Rung results
// are cached (per-agent and shared) under `rung_context_key(r)`, which
// appends the ladder shape and rung index to the flat eval_context_key of
// that rung's fidelity — a rung-0 reward (1 epoch) and a flat reward (same
// fidelity config outside a ladder) must never alias, nor may two rungs of
// the same ladder. See DESIGN.md ("rung keys are disjoint cache contexts").
//
// Determinism: candidates within a rung are independent (own Graph, own
// Rng streams derived from the agent seed), so intra-rung training may run
// pool-parallel and stays bit-identical across thread counts. Promotion is
// decided serially after the rung barrier: sort by (reward desc, batch
// index asc) — rank-stable under reward ties by construction.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ncnas/exec/evaluator.hpp"
#include "ncnas/exec/shared_cache.hpp"
#include "ncnas/tensor/thread_pool.hpp"

namespace ncnas::exec {

/// Ladder shape. Disabled (size < 2 rungs) by default, so a
/// default-constructed config leaves every existing code path — and every
/// existing result bit — untouched.
struct LadderConfig {
  /// Rung fidelities, cheapest first. `epochs` are CUMULATIVE totals: a
  /// candidate promoted into rung r has trained rungs[r].epochs epochs in
  /// total (warm starts pay the delta vs the previous rung). Epochs must be
  /// non-decreasing; the last rung is the full-fidelity signal.
  std::vector<FidelityConfig> rungs;
  /// Promotion divisor: `ceil(alive / eta)` candidates survive each rung.
  std::size_t eta = 3;
  /// Inherit trained weights across rungs (successive halving with weight
  /// inheritance). When false every rung trains from scratch at its
  /// cumulative epoch count — the classic, costlier SH variant.
  bool warm_start = true;

  [[nodiscard]] bool enabled() const noexcept { return rungs.size() >= 2; }
  /// Canonical encoding for config_fingerprint / context keys.
  [[nodiscard]] std::string fingerprint() const;
  /// Throws std::invalid_argument on a malformed ladder (eta < 2, epochs
  /// decreasing, zero epochs). A disabled ladder is always valid.
  void validate() const;
};

/// Convenience constructor: a geometric ladder ending at `top` with `rungs`
/// levels, epochs divided by `eta` per step down (floored at 1).
[[nodiscard]] LadderConfig make_geometric_ladder(const FidelityConfig& top,
                                                 std::size_t rungs, std::size_t eta);

/// Per-rung accounting for one evaluate_batch call, in rung order. The
/// driver turns these into ladder_rung journal events and
/// ncnas_fidelity_* counters.
struct LadderRungStats {
  std::size_t rung = 0;
  std::size_t candidates = 0;   ///< entered this rung
  std::size_t survivors = 0;    ///< promoted to the next rung (0 at the top)
  std::size_t trainings = 0;    ///< real trainings run at this rung
  std::size_t warm_starts = 0;  ///< trainings resumed from inherited weights
  std::size_t rung_hits = 0;    ///< shared-cache hits at this rung's context
  std::size_t timeouts = 0;     ///< candidates killed by the cost model here
};

/// One candidate's ladder outcome: the final (highest-rung) result plus the
/// number of trainings it consumed — the rung-weighted budget unit.
struct LadderOutcome {
  EvalResult result;
  std::size_t trainings = 0;
};

/// Multi-fidelity evaluator. Implements Evaluator so CachedEvaluator can
/// wrap it (the ladder-level context key is disjoint from any flat key);
/// a single-candidate evaluate() is successive halving with n = 1, i.e. the
/// candidate climbs every rung via warm starts.
class FidelityLadder final : public Evaluator {
 public:
  /// `space` and `dataset` must outlive the ladder. `config` must validate.
  FidelityLadder(const space::SearchSpace& space, const data::Dataset& dataset,
                 LadderConfig config, CostModel cost);

  /// Installs a custom reward (applied at every rung); nullptr restores the
  /// plain metric.
  void set_reward_fn(RewardFn fn) { reward_fn_ = std::move(fn); }

  /// Attach a telemetry sink (null to detach): training wall time and
  /// training/timeout counts, same instruments as TrainingEvaluator.
  void set_telemetry(obs::Telemetry* telemetry);

  /// Attach the process-wide shared cache: each rung then consults (and
  /// feeds) the store under its own rung context, so one tenant's rung
  /// trainings seed another tenant's promotions. Null detaches.
  void set_shared_cache(SharedEvalCache* cache, std::uint32_t tenant) {
    shared_ = cache;
    tenant_ = tenant;
  }

  /// Evaluates a batch through the full ladder. Intra-rung trainings run on
  /// `pool` when provided (bit-identical to serial). `stats`, when non-null,
  /// receives one entry per rung that saw at least one candidate.
  [[nodiscard]] std::vector<LadderOutcome> evaluate_batch(
      std::span<const space::ArchEncoding> archs, std::uint64_t seed,
      std::vector<LadderRungStats>* stats = nullptr,
      tensor::ThreadPool* pool = nullptr) const;

  [[nodiscard]] EvalResult evaluate(const space::ArchEncoding& arch,
                                    std::uint64_t seed) const override;

  /// Ladder-level context: the top rung's flat context plus the full ladder
  /// shape — never equal to any flat evaluator's key.
  [[nodiscard]] std::string context_key() const override;
  /// Context for rung r's cached results (see file comment).
  [[nodiscard]] std::string rung_context_key(std::size_t rung) const;

  [[nodiscard]] const LadderConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t num_rungs() const noexcept { return config_.rungs.size(); }
  [[nodiscard]] float reward_floor() const noexcept;
  [[nodiscard]] const CostModel& cost_model() const noexcept { return cost_; }

 private:
  struct Candidate;  // defined in the .cpp
  void run_rung(std::vector<Candidate>& cands, std::size_t rung, std::uint64_t seed,
                LadderRungStats& stats, tensor::ThreadPool* pool) const;

  const space::SearchSpace* space_;
  const data::Dataset* dataset_;
  LadderConfig config_;
  CostModel cost_;
  RewardFn reward_fn_;
  SharedEvalCache* shared_ = nullptr;
  std::uint32_t tenant_ = 0;
  obs::Histogram* train_wall_ms_ = nullptr;
  obs::Counter* trainings_ = nullptr;
  obs::Counter* training_timeouts_ = nullptr;
};

}  // namespace ncnas::exec
