// SharedEvalCache — process-wide content-addressed evaluation cache.
//
// The dominant cost of NAS is reward estimation (Elsken et al., survey §4);
// when many tenants search overlapping spaces on the same dataset at the same
// fidelity, a popular architecture only needs to be trained once. Entries are
// keyed by (evaluation context, architecture key), where the context key
// canonically encodes dataset identity + fidelity + cost model — the full
// recipe that determines a reward — so the cache can never serve a stale
// reward across tenants with different data or budgets.
//
// The agent seed is deliberately NOT part of the key: the paper itself reports
// (and tolerates) same-architecture reward variance across agents, and
// amortizing across seeds is the entire point of a cross-tenant cache. A
// tenant that must not share rewards simply does not attach the shared cache
// (SearchConfig::shared_cache stays null), which also keeps its
// config_fingerprint unchanged.
//
// Thread safety: all methods are safe to call concurrently (one mutex); the
// search driver only touches the cache from its serial event loop, so the
// lock is uncontended in-sim and only matters when multiple SearchServer
// tenants interleave.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "ncnas/exec/evaluator.hpp"

namespace ncnas::exec {

/// Canonical identity of an evaluation context: everything besides the
/// architecture (and the agent seed, see file comment) that determines an
/// EvalResult. Two evaluators agree on this string iff a reward computed by
/// one is valid for the other.
[[nodiscard]] std::string eval_context_key(const data::Dataset& dataset,
                                           const FidelityConfig& fidelity,
                                           const CostModel& cost);

class SharedEvalCache {
 public:
  /// Per-tenant accounting. `cross_tenant_hits` counts hits served from an
  /// entry that a *different* tenant trained — the train-once/serve-many
  /// savings the cache exists for. `evictions` counts entries of this
  /// tenant's ownership that the size bound pushed out.
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t inserts = 0;
    std::size_t cross_tenant_hits = 0;
    std::size_t erases = 0;
    std::size_t evictions = 0;
  };

  /// `max_entries` bounds the store: when an insert would exceed it, the
  /// oldest-inserted entries are evicted (deterministic FIFO — insertion
  /// order is a pure function of the request sequence, so two identical
  /// scenarios evict identically). 0 keeps the classic unbounded store.
  explicit SharedEvalCache(std::size_t max_entries = 0) : max_entries_(max_entries) {}

  [[nodiscard]] std::size_t max_entries() const noexcept { return max_entries_; }

  /// Returns the stored result (marked cache_hit + shared_hit) or nullopt.
  /// Records a hit/miss against `tenant`.
  [[nodiscard]] std::optional<EvalResult> lookup(const std::string& context_key,
                                                 const std::string& arch_key,
                                                 std::uint32_t tenant) const;

  /// Stores a freshly trained result under `tenant`'s ownership. First writer
  /// wins: a concurrent duplicate insert leaves the existing entry (and its
  /// owner) untouched, so cross-tenant accounting stays stable.
  void insert(const std::string& context_key, const std::string& arch_key,
              std::uint32_t tenant, const EvalResult& result);

  /// Drops an entry whose evaluation ultimately failed (retry exhaustion) —
  /// the same no-poisoning rule CachedEvaluator::erase applies per agent.
  void erase(const std::string& context_key, const std::string& arch_key);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] Stats stats(std::uint32_t tenant) const;
  /// Sum over all tenants.
  [[nodiscard]] Stats totals() const;
  void clear();

 private:
  struct Entry {
    EvalResult result;
    std::uint32_t owner = 0;
    std::uint64_t ins = 0;  ///< insertion sequence (FIFO eviction order)
  };
  [[nodiscard]] static std::string map_key(const std::string& context_key,
                                           const std::string& arch_key);
  void evict_to_bound_locked();  // requires mu_

  std::size_t max_entries_ = 0;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  /// Insertion sequence → key, mirroring entries_: the eviction policy pops
  /// the smallest sequence (oldest insert) without scanning the whole map.
  std::map<std::uint64_t, std::string> order_;
  std::uint64_t next_ins_ = 0;
  mutable std::map<std::uint32_t, Stats> stats_;
};

}  // namespace ncnas::exec
