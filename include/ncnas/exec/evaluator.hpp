// Evaluator — the reward-estimation strategy (paper §3.3).
//
// TrainingEvaluator performs a genuine low-fidelity training of the generated
// architecture (configurable epochs and training-data fraction, agent-seeded
// weight init) and scores it on the validation split. The cost model decides
// the task's *simulated* duration; a task whose simulated duration exceeds
// the timeout is killed (reward floor) exactly as Balsam killed overlong jobs
// on Theta — we also skip the real training in that case.
//
// CachedEvaluator adds the paper's per-agent evaluation cache: re-generated
// architectures return their stored reward instantly (no worker task), which
// is the mechanism behind A3C's late-search utilization decay and the
// all-agents-converged stopping rule.
//
// Kernel policy: the training hot path (Trainer/Lstm/layers) runs on the
// process-wide tensor::KernelConfig. Installing a blocked/parallel config
// before search() speeds up reward estimation without changing any reward
// bit — the kernels are bit-identical across thread counts by design, which
// is why KernelConfig stays out of config_fingerprint().
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "ncnas/data/dataset.hpp"
#include "ncnas/exec/cost_model.hpp"
#include "ncnas/obs/telemetry.hpp"
#include "ncnas/space/builder.hpp"
#include "ncnas/space/search_space.hpp"

namespace ncnas::exec {

struct FidelityConfig {
  std::size_t epochs = 1;          ///< search-time training epochs (paper: 1)
  double subset_fraction = 1.0;    ///< training-data fraction (Combo: 0.10)
  /// Reward-estimation optimizer settings. The paper used Adam(1e-3) with
  /// per-benchmark batch sizes at full data scale (~100 steps per epoch);
  /// because our data is dimensionally scaled down, the per-benchmark presets
  /// (see benchmark_fidelity()) pick batch/lr so one low-fidelity epoch takes
  /// a comparable number of effective optimizer steps. batch_size 0 means
  /// "use the dataset's default".
  float learning_rate = 0.001f;
  std::size_t batch_size = 0;
  /// Fraction of the validation split used to score the reward (leading
  /// rows). The paper scores on the full validation set; shrinking it is a
  /// host-throughput lever that adds a little reward noise — which the paper
  /// itself reports (same arch, different reward) and tolerates.
  double valid_fraction = 1.0;
};

struct EvalResult {
  float reward = 0.0f;             ///< validation R2 / ACC, floored on timeout
  double sim_duration = 0.0;       ///< simulated seconds the task occupies a worker
  std::size_t params = 0;          ///< trainable parameter count of the model
  bool timed_out = false;
  bool cache_hit = false;
  /// True when the result was served from a process-wide SharedEvalCache
  /// (implies cache_hit) — i.e. some tenant, possibly another one, trained
  /// this architecture earlier and the training was skipped entirely.
  bool shared_hit = false;
  /// Real (host) training wall time. Only measured when a telemetry sink is
  /// attached — stays 0.0 on the null path so results remain bit-identical.
  double train_wall_ms = 0.0;
  /// Highest fidelity rung this result reached (exec::FidelityLadder);
  /// always 0 for flat evaluations, so null-ladder runs are unchanged.
  std::uint32_t rung = 0;
};

class Evaluator {
 public:
  virtual ~Evaluator() = default;
  /// Estimates the reward of `arch`; `seed` is the agent-specific weight
  /// initialization seed (same arch + different seed may differ, per paper).
  [[nodiscard]] virtual EvalResult evaluate(const space::ArchEncoding& arch,
                                            std::uint64_t seed) const = 0;
  /// Canonical identity of everything besides (arch, seed) that determines
  /// this evaluator's results — dataset + fidelity + cost model for
  /// TrainingEvaluator (see exec::eval_context_key). Caches layered on top
  /// fold this into their keys so rewards can never leak between different
  /// data or budgets. Empty when the evaluator has no such identity.
  [[nodiscard]] virtual std::string context_key() const { return {}; }
};

/// Raw measurements handed to a custom reward function.
struct RewardInputs {
  float metric = 0.0f;        ///< validation R2 / ACC
  std::size_t params = 0;     ///< trainable parameter count
  double sim_duration = 0.0;  ///< simulated training seconds
};

/// Custom reward shaping (paper §5: "other metrics can be specified, such as
/// model size, training time, and inference time ... using a custom reward
/// function"). Must be pure and thread-safe.
using RewardFn = std::function<float(const RewardInputs&)>;

/// The paper's multi-objective example: accuracy with a soft penalty on
/// model size — reward = metric - weight * log10(params / ref_params) for
/// params above `ref_params`, unchanged below.
[[nodiscard]] RewardFn size_penalized_reward(float weight, std::size_t ref_params);

class TrainingEvaluator final : public Evaluator {
 public:
  /// Both referents must outlive the evaluator.
  TrainingEvaluator(const space::SearchSpace& space, const data::Dataset& dataset,
                    FidelityConfig fidelity, CostModel cost);

  /// Installs a custom reward; pass nullptr to restore the plain metric.
  void set_reward_fn(RewardFn fn) { reward_fn_ = std::move(fn); }

  /// Attach a telemetry sink (null to detach). evaluate() then records real
  /// training wall time and training/timeout counts; the registry is
  /// thread-safe, so pool-parallel evaluations share one sink.
  void set_telemetry(obs::Telemetry* telemetry);

  [[nodiscard]] EvalResult evaluate(const space::ArchEncoding& arch,
                                    std::uint64_t seed) const override;

  /// eval_context_key(dataset, fidelity, cost_model) — the full recipe that
  /// determines a reward besides (arch, seed).
  [[nodiscard]] std::string context_key() const override;

  /// Builds the model for `arch` without training (used for post-training).
  [[nodiscard]] nn::Graph build(const space::ArchEncoding& arch, std::uint64_t seed) const;

  [[nodiscard]] const data::Dataset& dataset() const noexcept { return *dataset_; }
  [[nodiscard]] const space::SearchSpace& space() const noexcept { return *space_; }
  [[nodiscard]] const FidelityConfig& fidelity() const noexcept { return fidelity_; }
  [[nodiscard]] const CostModel& cost_model() const noexcept { return cost_; }

  /// Reward assigned to killed evaluations: -1 for R2, 0 for accuracy.
  [[nodiscard]] float reward_floor() const noexcept;

 private:
  const space::SearchSpace* space_;
  const data::Dataset* dataset_;
  FidelityConfig fidelity_;
  CostModel cost_;
  RewardFn reward_fn_;
  obs::Histogram* train_wall_ms_ = nullptr;
  obs::Counter* trainings_ = nullptr;
  obs::Counter* training_timeouts_ = nullptr;
};

/// Per-agent cache keyed by (evaluation context, architecture encoding). The
/// context prefix — the inner evaluator's context_key(), i.e. dataset +
/// fidelity + cost model for TrainingEvaluator — means a cache state carried
/// across runs (checkpoint restore, shared backing stores) can never serve a
/// reward computed for different data or a different budget. NOT thread-safe
/// by design: each agent owns one (a global cache would defeat agent-specific
/// seeds, as the paper notes — that cross-tenant role is SharedEvalCache's).
class CachedEvaluator final : public Evaluator {
 public:
  /// `inner` must outlive the cache. The cache key context is taken from
  /// `inner.context_key()`.
  explicit CachedEvaluator(const Evaluator& inner)
      : inner_(&inner), context_key_(inner.context_key()) {}

  /// Attach a telemetry sink (null to detach) counting hits/misses/inserts/
  /// erases across all caches sharing the sink.
  void set_telemetry(obs::Telemetry* telemetry);

  [[nodiscard]] EvalResult evaluate(const space::ArchEncoding& arch,
                                    std::uint64_t seed) const override;

  /// Split-phase access for drivers that batch cache misses onto a thread
  /// pool: lookup() returns the cached result (marked cache_hit) or nullopt;
  /// insert() stores a freshly computed miss. erase() drops an entry whose
  /// evaluation ultimately failed (retry exhaustion), so a later
  /// regeneration re-evaluates instead of replaying a non-measurement —
  /// failed evals never poison the cache.
  [[nodiscard]] std::optional<EvalResult> lookup(const space::ArchEncoding& arch) const;
  void insert(const space::ArchEncoding& arch, const EvalResult& result) const;
  void erase(const space::ArchEncoding& arch) const;

  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::size_t erases() const noexcept { return erases_; }
  [[nodiscard]] std::size_t unique_archs() const noexcept { return cache_.size(); }
  /// The inner evaluator's context at construction time (key prefix).
  [[nodiscard]] std::string context_key() const override { return context_key_; }
  void clear();

  /// --- checkpoint/restore ---------------------------------------------------
  /// Serializable cache contents. Entries are sorted by architecture key so
  /// the exported form is canonical (the map's iteration order is not).
  struct State {
    std::vector<std::pair<std::string, EvalResult>> entries;
    std::size_t hits = 0;
    std::size_t misses = 0;
  };
  [[nodiscard]] State export_state() const;
  void import_state(const State& state);

 private:
  [[nodiscard]] std::string map_key(const space::ArchEncoding& arch) const;

  const Evaluator* inner_;
  std::string context_key_;
  mutable std::unordered_map<std::string, EvalResult> cache_;
  mutable std::size_t hits_ = 0;
  mutable std::size_t misses_ = 0;
  mutable std::size_t erases_ = 0;
  obs::Counter* lookup_hits_ = nullptr;
  obs::Counter* lookup_misses_ = nullptr;
  obs::Counter* inserts_ = nullptr;
  obs::Counter* erases_counter_ = nullptr;
};

/// Task head implied by a dataset's metric (classification for ACC).
[[nodiscard]] space::TaskHead head_for(const data::Dataset& ds);

}  // namespace ncnas::exec
