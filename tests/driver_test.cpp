#include <gtest/gtest.h>

#include "ncnas/nas/driver.hpp"
#include "ncnas/space/spaces.hpp"

namespace ncnas::nas {
namespace {

data::Dataset tiny_nt3() {
  data::Nt3Dims dims;
  dims.train = 64;
  dims.valid = 32;
  dims.length = 64;
  dims.motif = 6;
  return data::make_nt3(5, dims);
}

SearchConfig small_config(SearchStrategy strategy) {
  SearchConfig cfg;
  cfg.strategy = strategy;
  cfg.cluster = {.num_agents = 3, .workers_per_agent = 4};
  cfg.wall_time_seconds = 1800.0;  // 30 simulated minutes
  cfg.fidelity = {.epochs = 1, .subset_fraction = 1.0};
  cfg.cost = {.startup_seconds = 20.0, .seconds_per_megaunit = 1.0, .timeout_seconds = 600.0};
  cfg.seed = 11;
  return cfg;
}

TEST(Driver, RandomSearchProducesOrderedEvaluations) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  SearchDriver driver(s, ds, small_config(SearchStrategy::kRandom));
  const SearchResult res = driver.run();
  EXPECT_GT(res.evals.size(), 10u);
  for (std::size_t i = 1; i < res.evals.size(); ++i) {
    EXPECT_LE(res.evals[i - 1].time, res.evals[i].time);
  }
  EXPECT_LE(res.end_time, 1800.0 + 1e-6);
  EXPECT_GT(res.unique_archs, 0u);
  EXPECT_EQ(res.ppo_updates, 0u);
}

TEST(Driver, A3CRunsPpoUpdates) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  SearchDriver driver(s, ds, small_config(SearchStrategy::kA3C));
  const SearchResult res = driver.run();
  EXPECT_GT(res.ppo_updates, 0u);
  EXPECT_GT(res.evals.size(), 10u);
}

TEST(Driver, A2CRoundsAreSynchronized) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  SearchDriver driver(s, ds, small_config(SearchStrategy::kA2C));
  const SearchResult res = driver.run();
  // Synchronous rounds: PPO update count is a multiple of the agent count,
  // unless the convergence stop fired mid-round (which is legitimate).
  EXPECT_GT(res.ppo_updates, 0u);
  if (!res.converged_early) EXPECT_EQ(res.ppo_updates % 3, 0u);
}

TEST(Driver, DeterministicAcrossRuns) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  SearchConfig cfg = small_config(SearchStrategy::kA3C);
  cfg.wall_time_seconds = 600.0;
  const SearchResult a = SearchDriver(s, ds, cfg).run();
  const SearchResult b = SearchDriver(s, ds, cfg).run();
  ASSERT_EQ(a.evals.size(), b.evals.size());
  for (std::size_t i = 0; i < a.evals.size(); ++i) {
    EXPECT_EQ(a.evals[i].reward, b.evals[i].reward);
    EXPECT_EQ(a.evals[i].arch, b.evals[i].arch);
    EXPECT_DOUBLE_EQ(a.evals[i].time, b.evals[i].time);
  }
}

TEST(Driver, DeterministicWithThreadPool) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  SearchConfig cfg = small_config(SearchStrategy::kA3C);
  cfg.wall_time_seconds = 600.0;
  tensor::ThreadPool pool(4);
  const SearchResult serial = SearchDriver(s, ds, cfg).run();
  const SearchResult parallel = SearchDriver(s, ds, cfg, &pool).run();
  ASSERT_EQ(serial.evals.size(), parallel.evals.size());
  for (std::size_t i = 0; i < serial.evals.size(); ++i) {
    EXPECT_EQ(serial.evals[i].reward, parallel.evals[i].reward);
  }
}

TEST(Driver, UtilizationBounded) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  SearchDriver driver(s, ds, small_config(SearchStrategy::kRandom));
  const SearchResult res = driver.run();
  ASSERT_FALSE(res.utilization.empty());
  for (double u : res.utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
}

TEST(Driver, MaxEvaluationsCapRespected) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  SearchConfig cfg = small_config(SearchStrategy::kRandom);
  cfg.max_evaluations = 20;
  const SearchResult res = SearchDriver(s, ds, cfg).run();
  std::size_t real = 0;
  for (const EvalRecord& e : res.evals) real += !e.cache_hit;
  EXPECT_LE(real, 20u + cfg.cluster.num_agents * cfg.cluster.workers_per_agent);
}

TEST(Driver, FreshEvaluationsAreNotMarkedCached) {
  // Regression: first-occurrence evaluations must count as real worker tasks,
  // not cache hits (random search over a ~6e8 space basically never repeats).
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  SearchConfig cfg = small_config(SearchStrategy::kRandom);
  cfg.wall_time_seconds = 600.0;
  const SearchResult res = SearchDriver(s, ds, cfg).run();
  ASSERT_GT(res.evals.size(), 0u);
  EXPECT_EQ(res.cache_hits, 0u);
  EXPECT_FALSE(res.converged_early);
  for (const EvalRecord& e : res.evals) EXPECT_FALSE(e.cache_hit);
}

TEST(Driver, BestSoFarIsMonotone) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  const SearchResult res = SearchDriver(s, ds, small_config(SearchStrategy::kRandom)).run();
  const auto best = res.best_so_far();
  for (std::size_t i = 1; i < best.size(); ++i) {
    EXPECT_GE(best[i].second, best[i - 1].second);
  }
}

TEST(Driver, TopKUniqueAndSorted) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  const SearchResult res = SearchDriver(s, ds, small_config(SearchStrategy::kRandom)).run();
  const auto top = res.top_k(5);
  ASSERT_LE(top.size(), 5u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].reward, top[i].reward);
    EXPECT_NE(space::arch_key(top[i - 1].arch), space::arch_key(top[i].arch));
  }
}

TEST(Driver, TopKExcludesTimedOutAndFailedRecords) {
  // Floored rewards — timeout kills and retry-exhausted dispatches — are not
  // measurements and must never rank, even when they numerically beat a real
  // (bad) evaluation.
  SearchResult res;
  EvalRecord good;
  good.reward = 0.4f;
  good.arch = {1};
  EvalRecord timed_out;
  timed_out.reward = 0.9f;
  timed_out.timed_out = true;
  timed_out.arch = {2};
  EvalRecord failed;
  failed.reward = 0.9f;
  failed.failed = true;
  failed.arch = {3};
  res.evals = {timed_out, good, failed};
  const auto top = res.top_k(3);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].arch, good.arch);
  EXPECT_EQ(top[0].reward, 0.4f);
}

TEST(Driver, RejectsEmptyCluster) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  SearchConfig cfg = small_config(SearchStrategy::kRandom);
  cfg.cluster.num_agents = 0;
  EXPECT_THROW(SearchDriver(s, ds, cfg), std::invalid_argument);
}

TEST(StrategyName, AllNamed) {
  EXPECT_STREQ(strategy_name(SearchStrategy::kA3C), "A3C");
  EXPECT_STREQ(strategy_name(SearchStrategy::kA2C), "A2C");
  EXPECT_STREQ(strategy_name(SearchStrategy::kRandom), "RDM");
  EXPECT_STREQ(strategy_name(SearchStrategy::kEvolution), "EVO");
}

TEST(Driver, TelemetryCountersReconcileWithResult) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  obs::Telemetry tel;
  tel.enable_journal();
  SearchConfig cfg = small_config(SearchStrategy::kA3C);
  cfg.telemetry = &tel;
  const SearchResult res = SearchDriver(s, ds, cfg).run();

  EXPECT_TRUE(res.telemetry_enabled);
  ASSERT_NE(res.telemetry, nullptr);
  const obs::MetricsSnapshot& m = res.telemetry->metrics;

  const std::uint64_t evals = m.counter_value("ncnas_evals_total");
  const std::uint64_t hits = m.counter_value("ncnas_cache_hits_total");
  const std::uint64_t real = m.counter_value("ncnas_real_evals_total");
  EXPECT_GT(evals, 0u);
  EXPECT_EQ(evals, hits + real);
  EXPECT_EQ(hits, res.cache_hits);
  EXPECT_EQ(m.counter_value("ncnas_eval_timeouts_total"), res.timeouts);
  EXPECT_EQ(m.counter_value("ncnas_ppo_updates_total"), res.ppo_updates);

  // Every real evaluation landed exactly one sample in the sim-duration
  // histogram, and its simulated seconds sum to the histogram's sum.
  const obs::HistogramSample* sim = m.histogram("ncnas_eval_sim_duration_seconds");
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(sim->count, real);
  EXPECT_GT(m.counter_value("ncnas_agent_cycles_total"), 0u);
  EXPECT_GT(m.counter_value("ncnas_ps_delta_applies_total"), 0u);

  // The journal tells the same story as the counters, event for event.
  std::size_t j_cached = 0, j_finished = 0, j_timeouts = 0, j_ppo = 0, j_exchanges = 0;
  for (const obs::JournalEvent& e : res.telemetry->journal) {
    switch (e.type) {
      case obs::JournalEventType::kEvalCached: ++j_cached; break;
      case obs::JournalEventType::kEvalFinished: ++j_finished; break;
      case obs::JournalEventType::kEvalTimeout: ++j_timeouts; break;
      case obs::JournalEventType::kPpoUpdate: ++j_ppo; break;
      case obs::JournalEventType::kPsExchange: ++j_exchanges; break;
      default: break;
    }
  }
  EXPECT_EQ(j_cached, hits);
  EXPECT_EQ(j_finished, real);
  EXPECT_EQ(j_timeouts, m.counter_value("ncnas_eval_timeouts_total"));
  EXPECT_EQ(j_ppo, res.ppo_updates);
  EXPECT_EQ(j_exchanges, m.counter_value("ncnas_ps_exchanges_total"));
  EXPECT_GT(j_exchanges, 0u);
}

TEST(Driver, TelemetryTraceHasCycleSpansPerAgent) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  obs::Telemetry tel;
  SearchConfig cfg = small_config(SearchStrategy::kA2C);
  cfg.telemetry = &tel;
  (void)SearchDriver(s, ds, cfg).run();

  std::vector<std::size_t> cycle_spans(cfg.cluster.num_agents, 0);
  std::size_t barrier_spans = 0;
  for (const obs::TraceEvent& e : tel.trace().snapshot()) {
    if (e.name == "agent_cycle") {
      EXPECT_EQ(e.phase, 'X');
      ASSERT_LT(e.tid, cycle_spans.size());
      ++cycle_spans[e.tid];
    }
    if (e.name == "a2c_barrier_wait") ++barrier_spans;
  }
  for (std::size_t n : cycle_spans) EXPECT_GE(n, 1u);
  EXPECT_GT(barrier_spans, 0u);
}

TEST(Driver, TelemetryDisabledLeavesResultsBitIdentical) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  SearchConfig cfg = small_config(SearchStrategy::kA3C);
  cfg.wall_time_seconds = 600.0;
  const SearchResult plain = SearchDriver(s, ds, cfg).run();
  obs::Telemetry tel;
  tel.enable_journal();   // the heaviest observation configuration:
  tel.enable_watchdog();  // journal + watchdog must still not perturb results
  cfg.telemetry = &tel;
  const SearchResult observed = SearchDriver(s, ds, cfg).run();

  EXPECT_FALSE(plain.telemetry_enabled);
  EXPECT_EQ(plain.telemetry, nullptr);
  ASSERT_EQ(plain.evals.size(), observed.evals.size());
  for (std::size_t i = 0; i < plain.evals.size(); ++i) {
    EXPECT_EQ(plain.evals[i].reward, observed.evals[i].reward);
    EXPECT_EQ(plain.evals[i].arch, observed.evals[i].arch);
    EXPECT_DOUBLE_EQ(plain.evals[i].time, observed.evals[i].time);
  }
  EXPECT_EQ(plain.cache_hits, observed.cache_hits);
  EXPECT_EQ(plain.ppo_updates, observed.ppo_updates);
  EXPECT_DOUBLE_EQ(plain.end_time, observed.end_time);
}

TEST(Driver, ProfilerOnOffLeavesResultsBitIdentical) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  for (const SearchStrategy strategy : {SearchStrategy::kRandom, SearchStrategy::kA3C,
                                        SearchStrategy::kA2C, SearchStrategy::kEvolution}) {
    SearchConfig cfg = small_config(strategy);
    cfg.wall_time_seconds = 600.0;
    const SearchResult plain = SearchDriver(s, ds, cfg).run();

    obs::Telemetry tel;
    tel.enable_profiler();
    cfg.telemetry = &tel;
    const SearchResult profiled = SearchDriver(s, ds, cfg).run();

    ASSERT_EQ(plain.evals.size(), profiled.evals.size());
    for (std::size_t i = 0; i < plain.evals.size(); ++i) {
      EXPECT_EQ(plain.evals[i].reward, profiled.evals[i].reward);
      EXPECT_EQ(plain.evals[i].arch, profiled.evals[i].arch);
      EXPECT_DOUBLE_EQ(plain.evals[i].time, profiled.evals[i].time);
    }
    EXPECT_EQ(plain.cache_hits, profiled.cache_hits);
    EXPECT_EQ(plain.ppo_updates, profiled.ppo_updates);
    EXPECT_DOUBLE_EQ(plain.end_time, profiled.end_time);
    // And the profiler actually saw the run: real training happened inside
    // installed scopes, so the snapshot cannot be empty.
    const obs::ProfileSnapshot prof = tel.profiler()->snapshot();
    EXPECT_FALSE(prof.empty());
    bool saw_eval = false;
    for (const obs::FlatProfileEntry& e : prof.flat()) saw_eval |= e.name == "eval";
    EXPECT_TRUE(saw_eval);
  }
}

}  // namespace
}  // namespace ncnas::nas
