// FidelityLadder proof net: seeded determinism across all four strategies
// (and across thread counts), null-config bit-identity with the flat
// evaluator path, successive-halving promotion properties (exactly
// ceil(n/eta) survivors, rank-stable ties), warm-vs-scratch parity bounds,
// per-rung cache-key disjointness, chaos-plan composition (faults retry
// without double-promoting), and journal-replay reconciliation of the
// ladder counters against the SearchResult.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "ncnas/exec/fault.hpp"
#include "ncnas/exec/fidelity_ladder.hpp"
#include "ncnas/exec/shared_cache.hpp"
#include "ncnas/nas/driver.hpp"
#include "ncnas/nas/result_io.hpp"
#include "ncnas/obs/journal.hpp"
#include "ncnas/obs/telemetry.hpp"
#include "ncnas/space/spaces.hpp"

namespace ncnas {
namespace {

data::Dataset tiny_nt3() {
  data::Nt3Dims dims;
  dims.train = 64;
  dims.valid = 32;
  dims.length = 64;
  dims.motif = 6;
  return data::make_nt3(5, dims);
}

exec::LadderConfig two_rung_ladder() {
  exec::LadderConfig ladder;
  ladder.eta = 2;
  ladder.rungs = {{.epochs = 1, .subset_fraction = 1.0},
                  {.epochs = 2, .subset_fraction = 1.0}};
  return ladder;
}

nas::SearchConfig ladder_config(nas::SearchStrategy strategy, std::uint64_t seed = 11) {
  nas::SearchConfig cfg;
  cfg.strategy = strategy;
  cfg.cluster = {.num_agents = 2, .workers_per_agent = 3};
  cfg.wall_time_seconds = 500.0;
  cfg.fidelity = {.epochs = 1, .subset_fraction = 1.0};
  cfg.cost = {.startup_seconds = 20.0, .seconds_per_megaunit = 1.0, .timeout_seconds = 600.0};
  cfg.seed = seed;
  cfg.ladder = two_rung_ladder();
  return cfg;
}

exec::FaultPlan chaos_plan() {
  exec::FaultPlan plan;
  plan.seed = 7;
  plan.eval_failure_prob = 0.25;
  plan.slowdown_prob = 0.15;
  plan.slowdown_multiple = 2.0;
  plan.lost_result_prob = 0.10;
  plan.ps_drop_prob = 0.15;
  plan.ps_delay_prob = 0.15;
  plan.ps_delay_seconds = 15.0;
  plan.max_retries = 2;
  plan.backoff_base_seconds = 5.0;
  plan.backoff_cap_seconds = 40.0;
  plan.barrier_timeout_seconds = 120.0;
  plan.worker_crashes.push_back({.agent = 1, .worker = 0, .time = 200.0});
  return plan;
}

std::vector<space::ArchEncoding> sample_batch(const space::SearchSpace& s, std::size_t n,
                                              std::uint64_t seed) {
  tensor::Rng rng(seed);
  std::vector<space::ArchEncoding> archs;
  archs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) archs.push_back(s.random_arch(rng));
  return archs;
}

/// Bitwise comparison of two SearchResults from the same config.
void expect_identical_runs(const nas::SearchResult& a, const nas::SearchResult& b) {
  ASSERT_EQ(a.evals.size(), b.evals.size());
  for (std::size_t i = 0; i < a.evals.size(); ++i) {
    SCOPED_TRACE("eval " + std::to_string(i));
    EXPECT_DOUBLE_EQ(a.evals[i].time, b.evals[i].time);
    EXPECT_EQ(a.evals[i].reward, b.evals[i].reward);
    EXPECT_DOUBLE_EQ(a.evals[i].sim_duration, b.evals[i].sim_duration);
    EXPECT_EQ(a.evals[i].cache_hit, b.evals[i].cache_hit);
    EXPECT_EQ(a.evals[i].timed_out, b.evals[i].timed_out);
    EXPECT_EQ(a.evals[i].failed, b.evals[i].failed);
    EXPECT_EQ(a.evals[i].rung, b.evals[i].rung);
    EXPECT_EQ(a.evals[i].agent, b.evals[i].agent);
    EXPECT_EQ(a.evals[i].arch, b.evals[i].arch);
  }
  EXPECT_DOUBLE_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.exhausted, b.exhausted);
  EXPECT_EQ(a.ladder_trainings, b.ladder_trainings);
  EXPECT_EQ(a.ladder_promotions, b.ladder_promotions);
  EXPECT_EQ(a.ladder_warm_starts, b.ladder_warm_starts);
  EXPECT_EQ(a.ladder_rung_hits, b.ladder_rung_hits);
}

// ------------------------------------------------------------- config layer

TEST(LadderConfig, DefaultIsDisabledAndValid) {
  const exec::LadderConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  EXPECT_NO_THROW(cfg.validate());
}

TEST(LadderConfig, ValidateRejectsMalformedLadders) {
  exec::LadderConfig cfg = two_rung_ladder();
  cfg.eta = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = two_rung_ladder();
  cfg.rungs[0].epochs = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = two_rung_ladder();
  cfg.rungs[0].epochs = 3;  // decreasing: cumulative epochs must not shrink
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  // A single rung never enables the ladder, so it is valid by definition.
  cfg = two_rung_ladder();
  cfg.rungs.resize(1);
  EXPECT_FALSE(cfg.enabled());
  EXPECT_NO_THROW(cfg.validate());
}

TEST(LadderConfig, GeometricLadderDividesEpochsByEta) {
  const exec::LadderConfig cfg =
      exec::make_geometric_ladder({.epochs = 12, .subset_fraction = 1.0}, 3, 4);
  ASSERT_EQ(cfg.rungs.size(), 3u);
  EXPECT_EQ(cfg.rungs[0].epochs, 1u);   // 12 / 16 floored at 1
  EXPECT_EQ(cfg.rungs[1].epochs, 3u);   // 12 / 4
  EXPECT_EQ(cfg.rungs[2].epochs, 12u);  // full fidelity
  EXPECT_EQ(cfg.eta, 4u);
}

TEST(LadderConfig, FingerprintSeparatesShapes) {
  const exec::LadderConfig base = two_rung_ladder();
  exec::LadderConfig other = base;
  std::set<std::string> prints{base.fingerprint()};

  other.eta = 3;
  EXPECT_TRUE(prints.insert(other.fingerprint()).second);
  other = base;
  other.warm_start = false;
  EXPECT_TRUE(prints.insert(other.fingerprint()).second);
  other = base;
  other.rungs[1].epochs = 4;
  EXPECT_TRUE(prints.insert(other.fingerprint()).second);
  other = base;
  other.rungs[0].subset_fraction = 0.5;
  EXPECT_TRUE(prints.insert(other.fingerprint()).second);
}

// ----------------------------------------------------- cache-key disjointness

TEST(FidelityLadder, RungContextKeysAreDisjoint) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  const exec::CostModel cost{};
  exec::LadderConfig cfg = two_rung_ladder();
  const exec::FidelityLadder ladder(s, ds, cfg, cost);

  std::set<std::string> keys;
  // Flat contexts at each rung's fidelity: what a non-ladder evaluator with
  // the same recipe would key its cache under.
  for (const exec::FidelityConfig& fid : cfg.rungs) {
    EXPECT_TRUE(keys.insert(exec::eval_context_key(ds, fid, cost)).second);
  }
  // Ladder-level (final outcomes) and per-rung contexts must alias neither
  // the flat keys nor each other.
  EXPECT_TRUE(keys.insert(ladder.context_key()).second);
  for (std::size_t r = 0; r < cfg.rungs.size(); ++r) {
    EXPECT_TRUE(keys.insert(ladder.rung_context_key(r)).second);
  }
  // A different ladder shape over the same fidelities is its own namespace.
  exec::LadderConfig other = cfg;
  other.eta = 3;
  const exec::FidelityLadder ladder3(s, ds, other, cost);
  EXPECT_TRUE(keys.insert(ladder3.context_key()).second);
  for (std::size_t r = 0; r < other.rungs.size(); ++r) {
    EXPECT_TRUE(keys.insert(ladder3.rung_context_key(r)).second);
  }
}

TEST(FidelityLadder, RungResultsNeverServeFlatLookups) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  const exec::CostModel cost{};
  exec::SharedEvalCache cache;
  exec::FidelityLadder ladder(s, ds, two_rung_ladder(), cost);
  ladder.set_shared_cache(&cache, 0);

  const auto archs = sample_batch(s, 3, 5);
  (void)ladder.evaluate_batch(archs, 99);
  EXPECT_GT(cache.size(), 0u);

  // A flat evaluator at the bottom rung's exact fidelity must miss: rung
  // measurements live in the ladder's namespace only.
  const std::string flat_ctx = exec::eval_context_key(ds, two_rung_ladder().rungs[0], cost);
  for (const auto& arch : archs) {
    EXPECT_FALSE(cache.lookup(flat_ctx, space::arch_key(arch), 0).has_value());
  }
}

// ------------------------------------------------------- promotion properties

TEST(FidelityLadder, PromotesExactlyCeilOverEta) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  exec::LadderConfig cfg;
  cfg.eta = 3;
  cfg.rungs = {{.epochs = 1}, {.epochs = 2}, {.epochs = 3}};
  const exec::FidelityLadder ladder(s, ds, cfg, exec::CostModel{});

  const auto archs = sample_batch(s, 7, 3);
  std::vector<exec::LadderRungStats> stats;
  const auto out = ladder.evaluate_batch(archs, 42, &stats);

  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].candidates, 7u);
  EXPECT_EQ(stats[0].survivors, 3u);  // ceil(7/3)
  EXPECT_EQ(stats[1].candidates, 3u);
  EXPECT_EQ(stats[1].survivors, 1u);  // ceil(3/3)
  EXPECT_EQ(stats[2].candidates, 1u);
  EXPECT_EQ(stats[2].survivors, 0u);  // the top rung promotes nobody

  // Rung-weighted cost: every candidate pays one training per rung reached.
  std::size_t trainings = 0;
  for (const auto& o : out) {
    EXPECT_EQ(o.trainings, static_cast<std::size_t>(o.result.rung) + 1);
    trainings += o.trainings;
  }
  EXPECT_EQ(trainings, stats[0].trainings + stats[1].trainings + stats[2].trainings);
  EXPECT_EQ(trainings, 7u + 3u + 1u);
}

TEST(FidelityLadder, TiedRewardsPromoteLowerBatchIndices) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  exec::LadderConfig cfg;
  cfg.eta = 3;
  cfg.rungs = {{.epochs = 1}, {.epochs = 2}, {.epochs = 3}};
  exec::FidelityLadder ladder(s, ds, cfg, exec::CostModel{});
  // Constant reward: every promotion decision is a pure tie, so the
  // rank-stable rule must keep the lowest batch indices at every rung.
  ladder.set_reward_fn([](const exec::RewardInputs&) { return 0.5f; });

  const auto out = ladder.evaluate_batch(sample_batch(s, 7, 3), 42);
  ASSERT_EQ(out.size(), 7u);
  EXPECT_EQ(out[0].result.rung, 2u);  // sole top-rung survivor
  EXPECT_EQ(out[1].result.rung, 1u);
  EXPECT_EQ(out[2].result.rung, 1u);
  for (std::size_t i = 3; i < 7; ++i) EXPECT_EQ(out[i].result.rung, 0u);
}

// ------------------------------------------ determinism and warm-start parity

TEST(FidelityLadder, DeterministicAcrossRunsAndThreadCounts) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  const exec::FidelityLadder ladder(s, ds, two_rung_ladder(), exec::CostModel{});
  const auto archs = sample_batch(s, 6, 17);

  const auto serial = ladder.evaluate_batch(archs, 1234);
  const auto again = ladder.evaluate_batch(archs, 1234);
  tensor::ThreadPool pool(4);
  const auto parallel = ladder.evaluate_batch(archs, 1234, nullptr, &pool);

  ASSERT_EQ(serial.size(), again.size());
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("candidate " + std::to_string(i));
    EXPECT_EQ(serial[i].result.reward, again[i].result.reward);
    EXPECT_EQ(serial[i].result.reward, parallel[i].result.reward);
    EXPECT_DOUBLE_EQ(serial[i].result.sim_duration, parallel[i].result.sim_duration);
    EXPECT_EQ(serial[i].result.rung, parallel[i].result.rung);
    EXPECT_EQ(serial[i].trainings, parallel[i].trainings);
  }
}

TEST(FidelityLadder, SingleEvaluateClimbsEveryRung) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  const exec::FidelityLadder ladder(s, ds, two_rung_ladder(), exec::CostModel{});
  const auto archs = sample_batch(s, 1, 9);
  const exec::EvalResult r = ladder.evaluate(archs[0], 55);
  EXPECT_EQ(r.rung, 1u);  // ceil(1/eta) = 1 survivor: n = 1 always promotes
  EXPECT_GE(r.reward, ladder.reward_floor());
  EXPECT_GT(r.sim_duration, 0.0);
}

TEST(FidelityLadder, WarmAndScratchAgreeWithinParityBounds) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  exec::LadderConfig warm = two_rung_ladder();
  exec::LadderConfig scratch = warm;
  scratch.warm_start = false;

  const exec::FidelityLadder warm_ladder(s, ds, warm, exec::CostModel{});
  const exec::FidelityLadder scratch_ladder(s, ds, scratch, exec::CostModel{});
  const auto archs = sample_batch(s, 6, 21);

  std::vector<exec::LadderRungStats> warm_stats, scratch_stats;
  const auto a = warm_ladder.evaluate_batch(archs, 77, &warm_stats);
  const auto b = scratch_ladder.evaluate_batch(archs, 77, &scratch_stats);

  // Warm starts only happen when weights are inherited; the scratch variant
  // must never record one. Survivor counts are a pure function of alive
  // counts, so both variants promote the same number per rung.
  ASSERT_EQ(warm_stats.size(), scratch_stats.size());
  std::size_t warm_total = 0;
  for (std::size_t r = 0; r < warm_stats.size(); ++r) {
    EXPECT_EQ(warm_stats[r].survivors, scratch_stats[r].survivors);
    EXPECT_EQ(scratch_stats[r].warm_starts, 0u);
    warm_total += warm_stats[r].warm_starts;
  }
  EXPECT_GT(warm_total, 0u);  // rung 1 trainings inherited rung-0 weights

  // Parity bound: both variants train the same cumulative epochs at the top
  // rung (warm pays 1+1, scratch pays 2 from fresh init), so rung-0 rewards
  // are bit-equal and the batch-mean top-level reward gap stays small.
  double gap_sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i].result.reward, warm_ladder.reward_floor());
    EXPECT_LE(a[i].result.reward, 1.0f);
    if (a[i].result.rung == 0 && b[i].result.rung == 0) {
      EXPECT_EQ(a[i].result.reward, b[i].result.reward);  // rung 0 is identical
    }
    gap_sum += std::abs(static_cast<double>(a[i].result.reward) -
                        static_cast<double>(b[i].result.reward));
  }
  EXPECT_LE(gap_sum / static_cast<double>(a.size()), 0.5);
}

// ------------------------------------------------------ shared-cache composition

TEST(FidelityLadder, RungHitsServeRepeatBatchesWithoutTraining) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  exec::SharedEvalCache cache;
  exec::FidelityLadder first(s, ds, two_rung_ladder(), exec::CostModel{});
  exec::FidelityLadder second(s, ds, two_rung_ladder(), exec::CostModel{});
  first.set_shared_cache(&cache, 1);
  second.set_shared_cache(&cache, 2);

  const auto archs = sample_batch(s, 5, 31);
  std::vector<exec::LadderRungStats> s1, s2;
  const auto a = first.evaluate_batch(archs, 7, &s1);
  const auto b = second.evaluate_batch(archs, 7, &s2);

  std::size_t trainings2 = 0, hits2 = 0;
  for (const auto& rs : s2) {
    trainings2 += rs.trainings;
    hits2 += rs.rung_hits;
  }
  EXPECT_EQ(trainings2, 0u);  // every rung served from the shared store
  EXPECT_GT(hits2, 0u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].result.reward, b[i].result.reward);
    EXPECT_EQ(a[i].result.rung, b[i].result.rung);
    EXPECT_EQ(b[i].trainings, 0u);
  }
  EXPECT_GT(cache.stats(2).cross_tenant_hits, 0u);
}

// ----------------------------------------------------------- driver integration

TEST(LadderDriver, NullLadderIsBitIdenticalToFlatPath) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  nas::SearchConfig flat = ladder_config(nas::SearchStrategy::kA3C);
  flat.ladder = exec::LadderConfig{};  // default: disabled
  nas::SearchConfig one_rung = flat;
  one_rung.ladder.rungs = {flat.fidelity};  // size 1: still disabled

  const nas::SearchResult a = nas::SearchDriver(s, ds, flat).run();
  const nas::SearchResult b = nas::SearchDriver(s, ds, one_rung).run();
  expect_identical_runs(a, b);
  EXPECT_EQ(a.ladder_trainings, 0u);
  EXPECT_EQ(a.ladder_promotions, 0u);
  for (const auto& e : a.evals) EXPECT_EQ(e.rung, 0u);
  // A disabled ladder leaves the fingerprint — and so every cached log and
  // snapshot namespace — untouched.
  EXPECT_EQ(nas::config_fingerprint(flat, s.name()),
            nas::config_fingerprint(one_rung, s.name()));
  EXPECT_EQ(nas::config_fingerprint(flat, s.name()).find("|ladder:"), std::string::npos);
}

TEST(LadderDriver, EnabledLadderMarksFingerprint) {
  const space::SearchSpace s = space::nt3_small_space();
  const nas::SearchConfig cfg = ladder_config(nas::SearchStrategy::kA3C);
  const std::string fp = nas::config_fingerprint(cfg, s.name());
  EXPECT_NE(fp.find("|ladder:"), std::string::npos);
  EXPECT_NE(fp.find(cfg.ladder.fingerprint()), std::string::npos);
}

TEST(LadderDriver, DeterministicAcrossRunsForEveryStrategy) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  for (const auto strategy :
       {nas::SearchStrategy::kA3C, nas::SearchStrategy::kA2C, nas::SearchStrategy::kRandom,
        nas::SearchStrategy::kEvolution}) {
    SCOPED_TRACE(nas::strategy_name(strategy));
    const nas::SearchConfig cfg = ladder_config(strategy);
    const nas::SearchResult a = nas::SearchDriver(s, ds, cfg).run();
    const nas::SearchResult b = nas::SearchDriver(s, ds, cfg).run();
    expect_identical_runs(a, b);
    EXPECT_GT(a.ladder_trainings, 0u);
    EXPECT_GT(a.ladder_promotions, 0u);
    std::size_t top_rung_records = 0;
    for (const auto& e : a.evals) {
      EXPECT_LT(e.rung, cfg.ladder.rungs.size());
      if (e.rung + 1 == cfg.ladder.rungs.size()) ++top_rung_records;
    }
    EXPECT_GT(top_rung_records, 0u);
  }
}

TEST(LadderDriver, DeterministicAcrossThreadCounts) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  const nas::SearchConfig cfg = ladder_config(nas::SearchStrategy::kA3C);
  const nas::SearchResult serial = nas::SearchDriver(s, ds, cfg).run();
  tensor::ThreadPool pool(4);
  const nas::SearchResult parallel = nas::SearchDriver(s, ds, cfg, &pool).run();
  expect_identical_runs(serial, parallel);
}

TEST(LadderDriver, BudgetCountsRungTrainings) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  nas::SearchConfig cfg = ladder_config(nas::SearchStrategy::kRandom);
  cfg.wall_time_seconds = 4000.0;
  cfg.max_evaluations = 10;
  const nas::SearchResult res = nas::SearchDriver(s, ds, cfg).run();
  // The budget stop fires on rung trainings, not records: a run that ended
  // on the budget consumed at least the cap, and strictly more trainings
  // than it produced fresh records (multi-rung candidates cost > 1 each).
  std::size_t fresh = 0;
  for (const auto& e : res.evals) fresh += e.cache_hit ? 0 : 1;
  if (!res.converged_early && res.end_time < cfg.wall_time_seconds) {
    EXPECT_GE(res.ladder_trainings, cfg.max_evaluations);
  }
  EXPECT_GT(res.ladder_trainings, fresh);
}

TEST(LadderDriver, ChaosPlanComposesWithoutDoublePromotion) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  const exec::FaultPlan plan = chaos_plan();
  const exec::FaultInjector injector(plan);
  nas::SearchConfig cfg = ladder_config(nas::SearchStrategy::kA3C);
  cfg.faults = &injector;

  obs::Telemetry tel_a, tel_b;
  tel_a.enable_journal();
  tel_b.enable_journal();
  nas::SearchConfig cfg_a = cfg, cfg_b = cfg;
  cfg_a.telemetry = &tel_a;
  cfg_b.telemetry = &tel_b;
  const nas::SearchResult a = nas::SearchDriver(s, ds, cfg_a).run();
  const nas::SearchResult b = nas::SearchDriver(s, ds, cfg_b).run();
  expect_identical_runs(a, b);
  EXPECT_GT(a.retries + a.exhausted + a.crashed_workers, 0u);  // chaos actually bit
  EXPECT_GT(a.ladder_trainings, 0u);

  // A faulty dispatch retries the *finished* ladder outcome on the virtual
  // clock; it must never re-enter the ladder, so every promotion is journaled
  // exactly once and the replay reconciles with the result counters.
  const obs::RunSummary sum = obs::summarize_journal(tel_a.journal()->snapshot());
  EXPECT_EQ(sum.ladder_trainings, a.ladder_trainings);
  EXPECT_EQ(sum.ladder_promotions, a.ladder_promotions);
  EXPECT_EQ(sum.ladder_warm_starts, a.ladder_warm_starts);
  EXPECT_EQ(sum.ladder_rung_hits, a.ladder_rung_hits);
}

TEST(LadderDriver, JournalReplayReconcilesPromotions) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  obs::Telemetry tel;
  tel.enable_journal();
  nas::SearchConfig cfg = ladder_config(nas::SearchStrategy::kA2C);
  cfg.telemetry = &tel;
  const nas::SearchResult res = nas::SearchDriver(s, ds, cfg).run();

  // Round-trip through the JSONL wire format: the replay must see the same
  // ladder story a live subscriber saw.
  std::stringstream wire;
  tel.journal()->export_jsonl(wire);
  const auto events = obs::Journal::import_jsonl(wire);
  const obs::RunSummary sum = obs::summarize_journal(events);

  EXPECT_GT(sum.ladder_rung_events, 0u);
  EXPECT_EQ(sum.ladder_trainings, res.ladder_trainings);
  EXPECT_EQ(sum.ladder_promotions, res.ladder_promotions);
  EXPECT_EQ(sum.ladder_warm_starts, res.ladder_warm_starts);
  EXPECT_EQ(sum.ladder_rung_hits, res.ladder_rung_hits);

  // Per-rung flow conservation: without a shared cache, every candidate that
  // enters rung r+1 is a survivor of rung r in the same batch.
  ASSERT_EQ(sum.ladder_rungs.size(), cfg.ladder.rungs.size());
  for (std::size_t r = 0; r + 1 < cfg.ladder.rungs.size(); ++r) {
    const auto& here = sum.ladder_rungs.at(static_cast<std::uint32_t>(r));
    const auto& next = sum.ladder_rungs.at(static_cast<std::uint32_t>(r + 1));
    EXPECT_EQ(here.survivors, next.candidates);
    EXPECT_LE(here.survivors, here.candidates);
  }
  // The top rung promotes nobody.
  const auto& top =
      sum.ladder_rungs.at(static_cast<std::uint32_t>(cfg.ladder.rungs.size() - 1));
  EXPECT_EQ(top.survivors, 0u);
}

TEST(LadderDriver, ResultLogRoundTripsRungs) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  const nas::SearchConfig cfg = ladder_config(nas::SearchStrategy::kRandom);
  const nas::SearchResult res = nas::SearchDriver(s, ds, cfg).run();

  const std::string dir = ::testing::TempDir() + "ncnas_ladder_log";
  const std::string fp = nas::config_fingerprint(cfg, s.name());
  std::filesystem::create_directories(dir);
  nas::save_result(dir + "/ladder.log", res, fp);
  const auto loaded = nas::load_result(dir + "/ladder.log", fp);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->evals.size(), res.evals.size());
  for (std::size_t i = 0; i < res.evals.size(); ++i) {
    EXPECT_EQ(loaded->evals[i].rung, res.evals[i].rung);
    EXPECT_EQ(loaded->evals[i].reward, res.evals[i].reward);
  }
  EXPECT_EQ(loaded->ladder_trainings, res.ladder_trainings);
  EXPECT_EQ(loaded->ladder_promotions, res.ladder_promotions);
  EXPECT_EQ(loaded->ladder_warm_starts, res.ladder_warm_starts);
  EXPECT_EQ(loaded->ladder_rung_hits, res.ladder_rung_hits);
}

}  // namespace
}  // namespace ncnas
