#include <gtest/gtest.h>

#include <cmath>

#include "ncnas/space/spaces.hpp"

namespace ncnas::space {
namespace {

TEST(MlpNode, ThirteenOptionsAsInPaper) {
  const auto opts = mlp_node_options();
  EXPECT_EQ(opts.size(), 13u);
  EXPECT_TRUE(std::holds_alternative<IdentityOp>(opts[0]));
  // 3 widths x 3 activations = 9 dense options + 3 dropouts + identity.
  std::size_t dense = 0, dropout = 0;
  for (const Op& op : opts) {
    dense += std::holds_alternative<DenseOp>(op);
    dropout += std::holds_alternative<DropoutOp>(op);
  }
  EXPECT_EQ(dense, 9u);
  EXPECT_EQ(dropout, 3u);
}

TEST(ComboSmall, SizeMatchesPaperExactly) {
  const SearchSpace s = combo_small_space();
  // Paper: |S| = 2.0968e14 = 13^12 * 9.
  EXPECT_EQ(s.num_decisions(), 13u);
  const double expected = std::pow(13.0, 12.0) * 9.0;
  EXPECT_NEAR(s.size() / expected, 1.0, 1e-9);
  EXPECT_NEAR(s.size(), 2.0968e14, 0.001e14);
}

TEST(UnoSmall, SizeMatchesPaperExactly) {
  const SearchSpace s = uno_small_space();
  // Paper: |S| = 2.3298e13 = 13^12 (dose block is constant).
  EXPECT_EQ(s.num_decisions(), 12u);
  EXPECT_NEAR(s.size(), 2.3298e13, 0.001e13);
}

TEST(Nt3Small, SizeMatchesPaperExactly) {
  const SearchSpace s = nt3_small_space();
  // Paper: |S| = 6.3504e8 = (5*4*5)^2 * (9*4*7)^2.
  EXPECT_EQ(s.num_decisions(), 12u);
  EXPECT_NEAR(s.size(), 6.3504e8, 1.0);
}

TEST(ComboLarge, StructureAndScale) {
  const SearchSpace s = combo_large_space();
  // 8 replicated middle cells: 6 + 8*3 + 3 = 33 MLP decisions + 8 connects.
  EXPECT_EQ(s.num_decisions(), 41u);
  // The paper quotes ~2.987e44; our derivable construction lands within ~2
  // orders of magnitude (documented in EXPERIMENTS.md).
  EXPECT_GT(s.log10_size(), 42.0);
  EXPECT_LT(s.log10_size(), 48.0);
  // Connect menus grow cell by cell: 9, 10, ..., 16.
  std::vector<std::size_t> connect_arities;
  for (const DecisionPoint& d : s.decisions()) {
    if (d.name == "connect") connect_arities.push_back(d.arity);
  }
  ASSERT_EQ(connect_arities.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(connect_arities[i], 9u + i);
}

TEST(UnoLarge, StructureAndScale) {
  const SearchSpace s = uno_large_space();
  // 9 MLP decisions in C0 + 8 cells x (1 MLP + 1 connect).
  EXPECT_EQ(s.num_decisions(), 25u);
  EXPECT_GT(s.log10_size(), 27.0);
  EXPECT_LT(s.log10_size(), 32.0);
  // Connect arity of cell i: 1 null + 15 input combos + i cell outputs +
  // (i-1) N0 refs.
  std::vector<std::size_t> connect_arities;
  for (const DecisionPoint& d : s.decisions()) {
    if (d.name == "connect") connect_arities.push_back(d.arity);
  }
  ASSERT_EQ(connect_arities.size(), 8u);
  for (std::size_t i = 1; i <= 8; ++i) EXPECT_EQ(connect_arities[i - 1], 15u + 2u * i);
}

TEST(SearchSpace, AritiesMatchDecisions) {
  const SearchSpace s = nt3_small_space();
  const auto arities = s.arities();
  ASSERT_EQ(arities.size(), s.num_decisions());
  // NT3 pattern: (conv 5, act 4, pool 5) x2 then (dense 9, act 4, drop 7) x2.
  const std::vector<std::size_t> expected{5, 4, 5, 5, 4, 5, 9, 4, 7, 9, 4, 7};
  EXPECT_EQ(arities, expected);
  EXPECT_EQ(s.max_arity(), 9u);
}

TEST(SearchSpace, RandomArchitecturesAreValid) {
  const SearchSpace s = combo_small_space();
  tensor::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const ArchEncoding arch = s.random_arch(rng);
    EXPECT_TRUE(s.is_valid(arch));
    EXPECT_NO_THROW(s.require_valid(arch));
  }
}

TEST(SearchSpace, InvalidEncodingsRejected) {
  const SearchSpace s = uno_small_space();
  ArchEncoding too_short(s.num_decisions() - 1, 0);
  EXPECT_FALSE(s.is_valid(too_short));
  EXPECT_THROW(s.require_valid(too_short), std::invalid_argument);
  ArchEncoding oob(s.num_decisions(), 0);
  oob[0] = 13;  // arity is 13, valid range [0, 12]
  EXPECT_FALSE(s.is_valid(oob));
  EXPECT_THROW(s.require_valid(oob), std::invalid_argument);
}

TEST(SearchSpace, DescribeNamesEveryDecision) {
  const SearchSpace s = nt3_small_space();
  const ArchEncoding arch(s.num_decisions(), 0);
  const std::string desc = s.describe(arch);
  EXPECT_NE(desc.find("C0/B0/N0"), std::string::npos);
  EXPECT_NE(desc.find("Identity"), std::string::npos);
}

TEST(SearchSpace, ChosenOpReflectsEncoding) {
  const SearchSpace s = combo_small_space();
  ArchEncoding arch(s.num_decisions(), 0);
  arch[0] = 1;  // Dense(16, relu) per the menu order
  const Op& op = s.chosen_op(arch, 0);
  ASSERT_TRUE(std::holds_alternative<DenseOp>(op));
  EXPECT_EQ(std::get<DenseOp>(op).units, 16u);
}

TEST(SearchSpace, ValidationCatchesBadStructures) {
  // Mirror pointing forward.
  Structure bad;
  bad.name = "bad";
  bad.input_names = {"x"};
  Cell c{"C0", {}};
  Block b{"b", SkipRef::to_input(0), {}};
  b.nodes.emplace_back(MirrorNode{"m", 0, 0, 1});  // mirrors a later node
  b.nodes.emplace_back(VariableNode{"v", {IdentityOp{}}});
  c.blocks.push_back(std::move(b));
  bad.cells.push_back(std::move(c));
  EXPECT_THROW(SearchSpace{bad}, std::invalid_argument);

  // Variable node with no options.
  Structure empty_opts;
  empty_opts.name = "bad2";
  empty_opts.input_names = {"x"};
  Cell c2{"C0", {}};
  Block b2{"b", SkipRef::to_input(0), {}};
  b2.nodes.emplace_back(VariableNode{"v", {}});
  c2.blocks.push_back(std::move(b2));
  empty_opts.cells.push_back(std::move(c2));
  EXPECT_THROW(SearchSpace{empty_opts}, std::invalid_argument);

  // Connect ref pointing at a non-earlier cell.
  Structure bad_ref;
  bad_ref.name = "bad3";
  bad_ref.input_names = {"x"};
  Cell c3{"C0", {}};
  Block b3{"b", SkipRef::to_input(0), {}};
  b3.nodes.emplace_back(VariableNode{"v", {ConnectOp{{SkipRef::to_cell(0)}, "self"}}});
  c3.blocks.push_back(std::move(b3));
  bad_ref.cells.push_back(std::move(c3));
  EXPECT_THROW(SearchSpace{bad_ref}, std::invalid_argument);
}

TEST(SpaceRegistry, AllNamesResolve) {
  for (const std::string& name : space_names()) {
    EXPECT_EQ(space_by_name(name).name(), name);
  }
  EXPECT_THROW((void)space_by_name("nope"), std::invalid_argument);
}

TEST(ArchKey, DistinctArchsDistinctKeys) {
  EXPECT_EQ(arch_key({1, 2, 3}), "1,2,3,");
  EXPECT_NE(arch_key({1, 2, 3}), arch_key({1, 2, 4}));
  EXPECT_NE(arch_key({1, 23}), arch_key({12, 3}));
}

TEST(OpName, Rendering) {
  EXPECT_EQ(op_name(IdentityOp{}), "Identity");
  EXPECT_EQ(op_name(DenseOp{48, nn::Act::kTanh}), "Dense(48, tanh)");
  EXPECT_EQ(op_name(Conv1DOp{8, 5}), "Conv1D(k=5, f=8)");
  EXPECT_EQ(op_name(ConnectOp{{}, ""}), "Connect(null)");
  EXPECT_EQ(op_name(ConnectOp{{SkipRef::to_input(1)}, ""}), "Connect(in1)");
  EXPECT_EQ(op_name(AddOp{{SkipRef::to_node(1, 0, 2)}}), "Add(C1/B0/N2)");
}

}  // namespace
}  // namespace ncnas::space
