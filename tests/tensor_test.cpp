#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "ncnas/nas/driver.hpp"
#include "ncnas/nas/result_io.hpp"
#include "ncnas/space/spaces.hpp"
#include "ncnas/tensor/kernel_config.hpp"
#include "ncnas/tensor/ops.hpp"
#include "ncnas/tensor/rng.hpp"
#include "ncnas/tensor/tensor.hpp"
#include "ncnas/tensor/thread_pool.hpp"

namespace ncnas::tensor {
namespace {

TEST(Shape, NumelAndToString) {
  EXPECT_EQ(numel({}), 0u);
  EXPECT_EQ(numel({5}), 5u);
  EXPECT_EQ(numel({2, 3, 4}), 24u);
  EXPECT_EQ(to_string({2, 3}), "[2, 3]");
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({3, 4});
  EXPECT_EQ(t.size(), 12u);
  EXPECT_EQ(t.rank(), 2u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FullAndFill) {
  Tensor t = Tensor::full({2, 2}, 3.5f);
  EXPECT_EQ(t(1, 1), 3.5f);
  t.fill(-1.0f);
  EXPECT_EQ(t(0, 0), -1.0f);
}

TEST(Tensor, OfInitializerLists) {
  const Tensor v = Tensor::of({1, 2, 3});
  EXPECT_EQ(v.shape(), Shape({3}));
  EXPECT_EQ(v[2], 3.0f);
  const Tensor m = Tensor::of2d({{1, 2}, {3, 4}});
  EXPECT_EQ(m.shape(), Shape({2, 2}));
  EXPECT_EQ(m(1, 0), 3.0f);
}

TEST(Tensor, Of2dRejectsRaggedRows) {
  EXPECT_THROW((void)Tensor::of2d({{1, 2}, {3}}), std::invalid_argument);
}

TEST(Tensor, DataSizeMustMatchShape) {
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, ReshapePreservesData) {
  const Tensor m = Tensor::of2d({{1, 2, 3}, {4, 5, 6}});
  const Tensor r = m.reshaped({3, 2});
  EXPECT_EQ(r(2, 1), 6.0f);
  EXPECT_THROW((void)m.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, ThreeDAccessor) {
  Tensor t({2, 3, 4});
  t(1, 2, 3) = 9.0f;
  EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 9.0f);
}

TEST(Tensor, EqualityAndDiff) {
  const Tensor a = Tensor::of({1, 2, 3});
  Tensor b = a;
  EXPECT_TRUE(a == b);
  b[1] = 2.5f;
  EXPECT_FALSE(a == b);
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.5f);
}

TEST(Tensor, RequireShapeThrowsWithMessage) {
  const Tensor t({2, 3});
  EXPECT_NO_THROW(t.require_shape({2, 3}, "x"));
  EXPECT_THROW(t.require_shape({3, 2}, "x"), std::invalid_argument);
}

TEST(Ops, GemmMatchesHandComputation) {
  const Tensor a = Tensor::of2d({{1, 2}, {3, 4}});
  const Tensor b = Tensor::of2d({{5, 6}, {7, 8}});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 50.0f);
}

TEST(Ops, GemmRejectsMismatchedInner) {
  const Tensor a({2, 3});
  const Tensor b({4, 2});
  Tensor c({2, 2});
  EXPECT_THROW(gemm(a, b, c), std::invalid_argument);
}

TEST(Ops, GemmNtEqualsExplicitTranspose) {
  const Tensor a = Tensor::of2d({{1, 2, 3}, {4, 5, 6}});
  const Tensor bt = Tensor::of2d({{1, 0, 2}, {0, 1, 1}});  // B^T is 2x3; B is 3x2
  Tensor c({2, 2});
  gemm_nt(a, bt, c);
  // a * b where b = bt^T = [[1,0],[0,1],[2,1]]
  EXPECT_FLOAT_EQ(c(0, 0), 1 * 1 + 2 * 0 + 3 * 2);
  EXPECT_FLOAT_EQ(c(0, 1), 1 * 0 + 2 * 1 + 3 * 1);
  EXPECT_FLOAT_EQ(c(1, 0), 4 * 1 + 5 * 0 + 6 * 2);
  EXPECT_FLOAT_EQ(c(1, 1), 4 * 0 + 5 * 1 + 6 * 1);
}

TEST(Ops, GemmTnEqualsExplicitTranspose) {
  const Tensor at = Tensor::of2d({{1, 2}, {3, 4}, {5, 6}});  // A^T stored: A is 2x3? no: gemm_tn computes A^T B with A (k,m)
  const Tensor b = Tensor::of2d({{1, 0}, {0, 1}, {1, 1}});
  Tensor c({2, 2});
  gemm_tn(at, b, c);
  // A^T is 2x3 with rows (1,3,5) and (2,4,6).
  EXPECT_FLOAT_EQ(c(0, 0), 1 * 1 + 3 * 0 + 5 * 1);
  EXPECT_FLOAT_EQ(c(0, 1), 1 * 0 + 3 * 1 + 5 * 1);
  EXPECT_FLOAT_EQ(c(1, 0), 2 * 1 + 4 * 0 + 6 * 1);
  EXPECT_FLOAT_EQ(c(1, 1), 2 * 0 + 4 * 1 + 6 * 1);
}

TEST(Ops, AxpyAndScale) {
  Tensor y = Tensor::of({1, 1, 1});
  const Tensor x = Tensor::of({1, 2, 3});
  axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[2], 7.0f);
  scale_inplace(y, 0.5f);
  EXPECT_FLOAT_EQ(y[0], 1.5f);
}

TEST(Ops, RowBiasAndColSums) {
  Tensor y = Tensor::of2d({{1, 2}, {3, 4}});
  add_row_bias(y, Tensor::of({10, 20}));
  EXPECT_FLOAT_EQ(y(1, 1), 24.0f);
  Tensor sums({2});
  accumulate_col_sums(y, sums);
  EXPECT_FLOAT_EQ(sums[0], 11.0f + 13.0f);
  EXPECT_FLOAT_EQ(sums[1], 22.0f + 24.0f);
}

TEST(Ops, Reductions) {
  const Tensor t = Tensor::of({1, 2, 3, 4});
  EXPECT_FLOAT_EQ(sum(t), 10.0f);
  EXPECT_FLOAT_EQ(mean(t), 2.5f);
  EXPECT_FLOAT_EQ(dot(t, t), 30.0f);
  EXPECT_FLOAT_EQ(squared_norm(t), 30.0f);
}

// --- kernel determinism invariants -----------------------------------------

KernelConfig pooled_config() {
  KernelConfig cfg =
      KernelConfig::parallel(std::max<std::size_t>(2, std::thread::hardware_concurrency()));
  cfg.min_blocked_flops = 0;
  cfg.min_parallel_elems = 0;
  cfg.block_rows = 16;
  cfg.block_cols = 64;
  return cfg;
}

TEST(KernelDeterminism, RandomShapesByteIdenticalSerialVsParallel) {
  // Property test: same seed + same shapes => byte-identical buffers whether
  // the kernels run serially (reference) or blocked on the pool.
  Rng rng(20260806);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t m = 1 + rng.uniform_int(48);
    const std::size_t k = 1 + rng.uniform_int(48);
    const std::size_t n = 1 + rng.uniform_int(48);
    Tensor a({m, k}), bn({k, n}), bt({n, k}), at({k, m});
    for (float& v : a.flat()) v = static_cast<float>(rng.normal());
    for (float& v : bn.flat()) v = static_cast<float>(rng.normal());
    for (float& v : bt.flat()) v = static_cast<float>(rng.normal());
    for (float& v : at.flat()) v = static_cast<float>(rng.normal());

    Tensor c_serial({m, n}), cnt_serial({m, n}), ctn_serial({m, n});
    gemm(a, bn, c_serial);  // default config: serial reference
    gemm_nt(a, bt, cnt_serial);
    gemm_tn(at, bn, ctn_serial);

    KernelConfigGuard guard(pooled_config());
    Tensor c_par({m, n}), cnt_par({m, n}), ctn_par({m, n});
    gemm(a, bn, c_par);
    gemm_nt(a, bt, cnt_par);
    gemm_tn(at, bn, ctn_par);
    ASSERT_TRUE(c_serial == c_par) << "gemm " << m << "x" << k << "x" << n;
    ASSERT_TRUE(cnt_serial == cnt_par) << "gemm_nt " << m << "x" << k << "x" << n;
    ASSERT_TRUE(ctn_serial == ctn_par) << "gemm_tn " << m << "x" << k << "x" << n;
  }
}

TEST(KernelDeterminism, SearchResultBitIdenticalAcrossKernelTiers) {
  // The end-to-end guarantee: a full driver strategy pass (controller LSTM,
  // PPO updates, reward-estimation training) produces a bit-identical
  // SearchResult on every kernel tier — serial reference, blocked on the
  // pool with SIMD forced off, and the SIMD tier — for every strategy.
  data::Nt3Dims dims;
  dims.train = 64;
  dims.valid = 32;
  dims.length = 64;
  dims.motif = 6;
  const data::Dataset ds = data::make_nt3(5, dims);
  const space::SearchSpace s = space::nt3_small_space();

  const nas::SearchStrategy strategies[] = {
      nas::SearchStrategy::kA3C, nas::SearchStrategy::kA2C, nas::SearchStrategy::kRandom,
      nas::SearchStrategy::kEvolution};
  for (const nas::SearchStrategy strategy : strategies) {
    nas::SearchConfig cfg;
    cfg.strategy = strategy;
    cfg.cluster = {.num_agents = 3, .workers_per_agent = 4};
    cfg.wall_time_seconds = 600.0;
    cfg.fidelity = {.epochs = 1, .subset_fraction = 1.0};
    cfg.cost = {.startup_seconds = 20.0, .seconds_per_megaunit = 1.0, .timeout_seconds = 600.0};
    cfg.seed = 11;
    const std::string tag = "strategy " + std::to_string(static_cast<int>(strategy));

    const nas::SearchResult baseline = nas::SearchDriver(s, ds, cfg).run();

    struct Tier {
      const char* label;
      SimdMode simd;
    };
    for (const Tier tier : {Tier{"blocked", SimdMode::kOff}, Tier{"simd", SimdMode::kOn}}) {
      KernelConfig kcfg = pooled_config();
      kcfg.simd = tier.simd;
      KernelConfigGuard guard(kcfg);
      const nas::SearchResult got = nas::SearchDriver(s, ds, cfg).run();

      ASSERT_EQ(baseline.evals.size(), got.evals.size()) << tag << " tier " << tier.label;
      for (std::size_t i = 0; i < baseline.evals.size(); ++i) {
        EXPECT_EQ(baseline.evals[i].reward, got.evals[i].reward)
            << tag << " tier " << tier.label << " eval " << i;
        EXPECT_EQ(baseline.evals[i].arch, got.evals[i].arch)
            << tag << " tier " << tier.label << " eval " << i;
        EXPECT_DOUBLE_EQ(baseline.evals[i].time, got.evals[i].time)
            << tag << " tier " << tier.label << " eval " << i;
      }
      EXPECT_EQ(baseline.cache_hits, got.cache_hits) << tag << " tier " << tier.label;
      EXPECT_EQ(baseline.unique_archs, got.unique_archs) << tag << " tier " << tier.label;
      EXPECT_EQ(baseline.ppo_updates, got.ppo_updates) << tag << " tier " << tier.label;
      EXPECT_EQ(baseline.converged_early, got.converged_early) << tag << " tier " << tier.label;
      EXPECT_DOUBLE_EQ(baseline.end_time, got.end_time) << tag << " tier " << tier.label;
    }
  }
}

TEST(KernelDeterminism, KernelConfigIsFingerprintNeutral) {
  // Kernel policy must not invalidate saved search logs: fingerprints are
  // computed from the SearchConfig alone, whatever kernels are installed.
  nas::SearchConfig cfg;
  cfg.seed = 42;
  const std::string before = nas::config_fingerprint(cfg, "nt3_small");
  std::string during;
  {
    KernelConfigGuard guard(pooled_config());
    during = nas::config_fingerprint(cfg, "nt3_small");
  }
  EXPECT_EQ(before, during);
  EXPECT_EQ(before, nas::config_fingerprint(cfg, "nt3_small"));
}

TEST(ThreadPool, RunsAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i] = 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(pool, 16, [](std::size_t i) {
        if (i == 7) throw std::runtime_error("boom");
      }),
      std::runtime_error);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    (void)pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace ncnas::tensor
