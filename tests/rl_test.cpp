#include <gtest/gtest.h>

#include <cmath>

#include "ncnas/rl/controller.hpp"

namespace ncnas::rl {
namespace {

using tensor::Rng;

TEST(Controller, SampleRespectsArities) {
  Controller ctrl({3, 5, 2}, 42);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Rollout roll = ctrl.sample(rng);
    ASSERT_EQ(roll.actions.size(), 3u);
    EXPECT_LT(roll.actions[0], 3u);
    EXPECT_LT(roll.actions[1], 5u);
    EXPECT_LT(roll.actions[2], 2u);
    ASSERT_EQ(roll.log_probs.size(), 3u);
    for (float lp : roll.log_probs) EXPECT_LE(lp, 0.0f);
  }
}

TEST(Controller, GreedyIsDeterministic) {
  Controller ctrl({4, 4}, 7);
  EXPECT_EQ(ctrl.greedy(), ctrl.greedy());
}

TEST(Controller, FreshControllerSamplesRoughlyUniformly) {
  Controller ctrl({4}, 11);
  Rng rng(2);
  std::vector<int> counts(4, 0);
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) ++counts[ctrl.sample(rng).actions[0]];
  for (int c : counts) EXPECT_NEAR(c, kN / 4, kN / 8);
}

TEST(Controller, FlatRoundTrip) {
  Controller a({3, 3}, 1);
  Controller b({3, 3}, 2);
  const std::vector<float> flat = a.get_flat();
  EXPECT_EQ(flat.size(), a.flat_size());
  b.set_flat(flat);
  EXPECT_EQ(b.get_flat(), flat);
  // After synchronization both controllers decode identically.
  EXPECT_EQ(a.greedy(), b.greedy());
  std::vector<float> wrong(flat.size() - 1);
  EXPECT_THROW(b.set_flat(wrong), std::invalid_argument);
}

TEST(Controller, RejectsDegenerateAritySpecs) {
  EXPECT_THROW(Controller({}, 1), std::invalid_argument);
  EXPECT_THROW(Controller({3, 0, 2}, 1), std::invalid_argument);
}

TEST(Controller, PpoRejectsMalformedBatches) {
  Controller ctrl({3}, 1);
  Rng rng(1);
  const Rollout roll = ctrl.sample(rng);
  const std::vector<Rollout> rolls{roll};
  const std::vector<float> no_rewards;
  EXPECT_THROW((void)ctrl.ppo_update(rolls, no_rewards, {}), std::invalid_argument);
}

TEST(Controller, PpoLearnssingle_stepBandit) {
  // Reward 1 for arm 2, 0 otherwise: after a few updates the controller must
  // concentrate probability on arm 2.
  Controller ctrl({4}, 3);
  Rng rng(5);
  PpoConfig cfg;
  for (int iter = 0; iter < 60; ++iter) {
    std::vector<Rollout> rolls;
    std::vector<float> rewards;
    for (int b = 0; b < 8; ++b) {
      rolls.push_back(ctrl.sample(rng));
      rewards.push_back(rolls.back().actions[0] == 2 ? 1.0f : 0.0f);
    }
    (void)ctrl.ppo_update(rolls, rewards, cfg);
  }
  EXPECT_EQ(ctrl.greedy()[0], 2u);
  int hits = 0;
  for (int i = 0; i < 200; ++i) hits += ctrl.sample(rng).actions[0] == 2;
  EXPECT_GT(hits, 120);  // well above the uniform 50/200
}

TEST(Controller, PpoLearnsSequentialCredit) {
  // Reward requires the RIGHT pair of actions across two steps: tests that
  // the LSTM conditions step 2 on step 1 (the paper's MDP argument).
  Controller ctrl({3, 3}, 9);
  Rng rng(17);
  PpoConfig cfg;
  for (int iter = 0; iter < 120; ++iter) {
    std::vector<Rollout> rolls;
    std::vector<float> rewards;
    for (int b = 0; b < 8; ++b) {
      rolls.push_back(ctrl.sample(rng));
      const auto& a = rolls.back().actions;
      rewards.push_back(a[0] == 1 && a[1] == 2 ? 1.0f : 0.0f);
    }
    (void)ctrl.ppo_update(rolls, rewards, cfg);
  }
  const auto best = ctrl.greedy();
  EXPECT_EQ(best[0], 1u);
  EXPECT_EQ(best[1], 2u);
}

TEST(Controller, PpoStatsAreFinite) {
  Controller ctrl({5, 5}, 21);
  Rng rng(3);
  std::vector<Rollout> rolls;
  std::vector<float> rewards;
  for (int b = 0; b < 6; ++b) {
    rolls.push_back(ctrl.sample(rng));
    rewards.push_back(static_cast<float>(b) / 6.0f);
  }
  const PpoStats stats = ctrl.ppo_update(rolls, rewards, {});
  EXPECT_TRUE(std::isfinite(stats.policy_loss));
  EXPECT_TRUE(std::isfinite(stats.value_loss));
  EXPECT_TRUE(std::isfinite(stats.entropy));
  EXPECT_GT(stats.entropy, 0.0f);
}

TEST(Controller, ValueHeadLearnsConstantReward) {
  // With a constant reward the critic must converge toward it.
  Controller ctrl({3}, 31);
  Rng rng(7);
  PpoConfig cfg;
  for (int iter = 0; iter < 80; ++iter) {
    std::vector<Rollout> rolls;
    std::vector<float> rewards;
    for (int b = 0; b < 4; ++b) {
      rolls.push_back(ctrl.sample(rng));
      rewards.push_back(0.7f);
    }
    (void)ctrl.ppo_update(rolls, rewards, cfg);
  }
  const Rollout roll = ctrl.sample(rng);
  EXPECT_NEAR(roll.values[0], 0.7f, 0.15f);
}

}  // namespace
}  // namespace ncnas::rl
