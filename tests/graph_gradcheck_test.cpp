// Whole-graph gradient check: an end-to-end multi-branch model (shared
// weights, concat, add, dropout-off, conv path) differentiated through
// Graph::backward must agree with finite differences on the training loss —
// the strongest single guarantee that searched architectures train correctly.
#include <gtest/gtest.h>

#include "gradcheck.hpp"
#include "ncnas/nn/graph.hpp"
#include "ncnas/nn/layers.hpp"
#include "ncnas/nn/loss.hpp"

namespace ncnas::nn {
namespace {

using tensor::Rng;
using tensor::Tensor;
using testing::numeric_derivative;
using testing::rel_err;

// Parameterized over kernel modes: the end-to-end backward pass is verified
// under the reference, blocked-serial, and blocked-parallel kernels alike.
using GraphGradCheck = ncnas::testing::KernelModeTest;

/// Branchy model: two inputs, a shared dense encoder on both, a conv path on
/// input 1, concat + add combiners, tanh head.
struct Model {
  Graph g;
  Tensor xa{tensor::Shape{2, 6}};
  Tensor xb{tensor::Shape{2, 6}};
  Tensor target{tensor::Shape{2, 3}};

  explicit Model(std::uint64_t seed) {
    Rng rng(seed);
    for (float& v : xa.flat()) v = 0.5f * static_cast<float>(rng.normal());
    for (float& v : xb.flat()) v = 0.5f * static_cast<float>(rng.normal());
    for (float& v : target.flat()) v = static_cast<float>(rng.normal());

    const std::size_t a = g.add_input("a", {6});
    const std::size_t b = g.add_input("b", {6});
    auto donor = std::make_unique<Dense>(4, Act::kTanh, rng);
    const Dense* donor_ptr = donor.get();
    const std::size_t ea = g.add(std::move(donor), {a});
    const std::size_t eb = g.add(clone_shared(*donor_ptr), {b});

    const std::size_t lifted = g.add(std::make_unique<Reshape1D>(), {a});
    const std::size_t conv = g.add(std::make_unique<Conv1D>(2, 3, rng), {lifted});
    const std::size_t pooled = g.add(std::make_unique<MaxPool1D>(2), {conv});
    const std::size_t flat = g.add(std::make_unique<Flatten>(), {pooled});

    const std::size_t added = g.add(std::make_unique<Add>(), {ea, eb});
    const std::size_t cat = g.add(std::make_unique<Concat>(), {added, flat});
    g.set_output(g.add(std::make_unique<Dense>(3, Act::kTanh, rng), {cat}));
  }

  float loss() {
    ForwardCtx ctx{};
    const Tensor pred = g.forward(std::vector<Tensor>{xa, xb}, ctx);
    return mse_loss(pred, target).loss;
  }
};

TEST_P(GraphGradCheck, EndToEndParametersMatchFiniteDifferences) {
  Model m(3);
  (void)m.loss();  // materialize lazy layers
  m.g.zero_grad();
  ForwardCtx ctx{};
  const Tensor pred = m.g.forward(std::vector<Tensor>{m.xa, m.xb}, ctx);
  const LossValue lv = mse_loss(pred, m.target);
  m.g.backward(lv.grad);

  const auto loss_fn = [&m] { return m.loss(); };
  std::size_t checked = 0;
  for (const ParamPtr& p : m.g.parameters()) {
    for (std::size_t i = 0; i < p->size(); i += std::max<std::size_t>(1, p->size() / 7)) {
      const float num = numeric_derivative(p->value[i], loss_fn);
      EXPECT_LT(rel_err(p->grad[i], num), 4e-2f) << p->name << " slot " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 20u);  // the sweep actually covered the model
}

TEST_P(GraphGradCheck, SharedEncoderGetsBothBranchGradients) {
  Model m(5);
  (void)m.loss();
  m.g.zero_grad();
  ForwardCtx ctx{};
  const Tensor pred = m.g.forward(std::vector<Tensor>{m.xa, m.xb}, ctx);
  m.g.backward(mse_loss(pred, m.target).grad);
  // The shared dense is parameter index 0 (first added); zeroing ONE branch's
  // input must change its gradient — i.e., both branches contribute.
  const ParamPtr shared = m.g.parameters().front();
  const Tensor grad_full = shared->grad;
  m.g.zero_grad();
  Tensor xb_saved = m.xb;
  m.xb.zero();
  const Tensor pred2 = m.g.forward(std::vector<Tensor>{m.xa, m.xb}, ctx);
  m.g.backward(mse_loss(pred2, m.target).grad);
  m.xb = xb_saved;
  EXPECT_GT(tensor::max_abs_diff(grad_full, shared->grad), 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(KernelModes, GraphGradCheck,
                         ::testing::ValuesIn(ncnas::testing::kernel_mode_params()),
                         ncnas::testing::kernel_mode_name);

}  // namespace
}  // namespace ncnas::nn
