#include <gtest/gtest.h>

#include "ncnas/nas/parameter_server.hpp"

namespace ncnas::nas {
namespace {

TEST(ParameterServer, AsyncAppliesImmediately) {
  ParameterServer ps({1.0f, 2.0f}, ParameterServer::Mode::kAsync, 3);
  const std::vector<float> delta{0.5f, -1.0f};
  EXPECT_TRUE(ps.submit(0, delta));
  EXPECT_FLOAT_EQ(ps.params()[0], 1.5f);
  EXPECT_FLOAT_EQ(ps.params()[1], 1.0f);
  EXPECT_EQ(ps.updates_applied(), 1u);
}

TEST(ParameterServer, SyncWaitsForAllAgents) {
  ParameterServer ps({0.0f}, ParameterServer::Mode::kSync, 3);
  EXPECT_FALSE(ps.submit(0, std::vector<float>{3.0f}));
  EXPECT_FALSE(ps.submit(1, std::vector<float>{6.0f}));
  EXPECT_FLOAT_EQ(ps.params()[0], 0.0f);  // nothing applied yet
  EXPECT_TRUE(ps.submit(2, std::vector<float>{0.0f}));
  EXPECT_FLOAT_EQ(ps.params()[0], 3.0f);  // mean of {3, 6, 0}
  EXPECT_EQ(ps.updates_applied(), 1u);
}

TEST(ParameterServer, SyncBarrierResetsBetweenRounds) {
  ParameterServer ps({0.0f}, ParameterServer::Mode::kSync, 2);
  EXPECT_FALSE(ps.submit(0, std::vector<float>{2.0f}));
  EXPECT_TRUE(ps.submit(1, std::vector<float>{4.0f}));
  EXPECT_FLOAT_EQ(ps.params()[0], 3.0f);
  // Next round works the same way.
  EXPECT_FALSE(ps.submit(1, std::vector<float>{1.0f}));
  EXPECT_TRUE(ps.submit(0, std::vector<float>{1.0f}));
  EXPECT_FLOAT_EQ(ps.params()[0], 4.0f);
}

TEST(ParameterServer, SyncDoubleSubmitRejected) {
  ParameterServer ps({0.0f}, ParameterServer::Mode::kSync, 2);
  EXPECT_FALSE(ps.submit(0, std::vector<float>{1.0f}));
  EXPECT_THROW((void)ps.submit(0, std::vector<float>{1.0f}), std::logic_error);
}

TEST(ParameterServer, AsyncWindowAveragesRecentDeltas) {
  ParameterServer ps({0.0f}, ParameterServer::Mode::kAsync, 2, /*async_window=*/2);
  (void)ps.submit(0, std::vector<float>{4.0f});  // window {4}: apply 4
  EXPECT_FLOAT_EQ(ps.params()[0], 4.0f);
  (void)ps.submit(1, std::vector<float>{0.0f});  // window {4, 0}: apply 2
  EXPECT_FLOAT_EQ(ps.params()[0], 6.0f);
}

TEST(ParameterServer, ValidatesInput) {
  EXPECT_THROW(ParameterServer({}, ParameterServer::Mode::kAsync, 2), std::invalid_argument);
  EXPECT_THROW(ParameterServer({1.0f}, ParameterServer::Mode::kAsync, 0),
               std::invalid_argument);
  ParameterServer ps({1.0f, 2.0f}, ParameterServer::Mode::kAsync, 2);
  EXPECT_THROW((void)ps.submit(5, std::vector<float>{1.0f, 1.0f}), std::invalid_argument);
  EXPECT_THROW((void)ps.submit(0, std::vector<float>{1.0f}), std::invalid_argument);
}

}  // namespace
}  // namespace ncnas::nas
