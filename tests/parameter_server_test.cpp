#include <gtest/gtest.h>

#include "ncnas/nas/parameter_server.hpp"

namespace ncnas::nas {
namespace {

TEST(ParameterServer, AsyncAppliesImmediately) {
  ParameterServer ps({1.0f, 2.0f}, ParameterServer::Mode::kAsync, 3);
  const std::vector<float> delta{0.5f, -1.0f};
  EXPECT_TRUE(ps.submit(0, delta));
  EXPECT_FLOAT_EQ(ps.params()[0], 1.5f);
  EXPECT_FLOAT_EQ(ps.params()[1], 1.0f);
  EXPECT_EQ(ps.updates_applied(), 1u);
}

TEST(ParameterServer, SyncWaitsForAllAgents) {
  ParameterServer ps({0.0f}, ParameterServer::Mode::kSync, 3);
  EXPECT_FALSE(ps.submit(0, std::vector<float>{3.0f}));
  EXPECT_FALSE(ps.submit(1, std::vector<float>{6.0f}));
  EXPECT_FLOAT_EQ(ps.params()[0], 0.0f);  // nothing applied yet
  EXPECT_TRUE(ps.submit(2, std::vector<float>{0.0f}));
  EXPECT_FLOAT_EQ(ps.params()[0], 3.0f);  // mean of {3, 6, 0}
  EXPECT_EQ(ps.updates_applied(), 1u);
}

TEST(ParameterServer, SyncBarrierResetsBetweenRounds) {
  ParameterServer ps({0.0f}, ParameterServer::Mode::kSync, 2);
  EXPECT_FALSE(ps.submit(0, std::vector<float>{2.0f}));
  EXPECT_TRUE(ps.submit(1, std::vector<float>{4.0f}));
  EXPECT_FLOAT_EQ(ps.params()[0], 3.0f);
  // Next round works the same way.
  EXPECT_FALSE(ps.submit(1, std::vector<float>{1.0f}));
  EXPECT_TRUE(ps.submit(0, std::vector<float>{1.0f}));
  EXPECT_FLOAT_EQ(ps.params()[0], 4.0f);
}

TEST(ParameterServer, SyncDoubleSubmitRejected) {
  ParameterServer ps({0.0f}, ParameterServer::Mode::kSync, 2);
  EXPECT_FALSE(ps.submit(0, std::vector<float>{1.0f}));
  EXPECT_THROW((void)ps.submit(0, std::vector<float>{1.0f}), std::logic_error);
}

TEST(ParameterServer, AsyncWindowAveragesRecentDeltas) {
  ParameterServer ps({0.0f}, ParameterServer::Mode::kAsync, 2, /*async_window=*/2);
  (void)ps.submit(0, std::vector<float>{4.0f});  // window {4}: apply 4
  EXPECT_FLOAT_EQ(ps.params()[0], 4.0f);
  (void)ps.submit(1, std::vector<float>{0.0f});  // window {4, 0}: apply 2
  EXPECT_FLOAT_EQ(ps.params()[0], 6.0f);
}

TEST(ParameterServer, ValidatesInput) {
  EXPECT_THROW(ParameterServer({}, ParameterServer::Mode::kAsync, 2), std::invalid_argument);
  EXPECT_THROW(ParameterServer({1.0f}, ParameterServer::Mode::kAsync, 0),
               std::invalid_argument);
  ParameterServer ps({1.0f, 2.0f}, ParameterServer::Mode::kAsync, 2);
  EXPECT_THROW((void)ps.submit(5, std::vector<float>{1.0f, 1.0f}), std::invalid_argument);
  EXPECT_THROW((void)ps.submit(0, std::vector<float>{1.0f}), std::invalid_argument);
}

// ---- failure tolerance (sync mode) -----------------------------------------

TEST(ParameterServer, TryReleaseRequiresTimeoutAndPendingDeltas) {
  ParameterServer ps({0.0f}, ParameterServer::Mode::kSync, 3);
  EXPECT_FALSE(ps.try_release(1e9));  // no timeout configured: waits forever
  ps.set_absent_timeout(120.0);
  EXPECT_FALSE(ps.try_release(1e9));  // nothing pending: nothing to release
}

TEST(ParameterServer, SyncBarrierReleasesAfterAbsentTimeout) {
  ParameterServer ps({0.0f}, ParameterServer::Mode::kSync, 3);
  ps.set_absent_timeout(120.0);
  EXPECT_FALSE(ps.submit(0, std::vector<float>{3.0f}, 10.0));
  EXPECT_FALSE(ps.submit(1, std::vector<float>{9.0f}, 20.0));
  // Agent 2 never reports. The window runs from the latest arrival.
  EXPECT_FALSE(ps.try_release(139.9));
  EXPECT_TRUE(ps.try_release(140.0));
  EXPECT_FLOAT_EQ(ps.params()[0], 6.0f);  // mean of the two that arrived
  EXPECT_EQ(ps.updates_applied(), 1u);
  // The absentee was only late, not dead: the next round still counts it.
  EXPECT_FALSE(ps.submit(2, std::vector<float>{0.0f}, 150.0));
  EXPECT_FALSE(ps.submit(0, std::vector<float>{0.0f}, 151.0));
  EXPECT_TRUE(ps.submit(1, std::vector<float>{3.0f}, 152.0));
  EXPECT_FLOAT_EQ(ps.params()[0], 7.0f);
}

TEST(ParameterServer, DeactivateShrinksBarrier) {
  ParameterServer ps({0.0f}, ParameterServer::Mode::kSync, 3);
  EXPECT_EQ(ps.active_agents(), 3u);
  EXPECT_FALSE(ps.deactivate(2));  // no round pending: nothing released
  EXPECT_EQ(ps.active_agents(), 2u);
  // The barrier now completes with the two survivors.
  EXPECT_FALSE(ps.submit(0, std::vector<float>{2.0f}));
  EXPECT_TRUE(ps.submit(1, std::vector<float>{4.0f}));
  EXPECT_FLOAT_EQ(ps.params()[0], 3.0f);
}

TEST(ParameterServer, DeactivateCompletesPendingRound) {
  ParameterServer ps({0.0f}, ParameterServer::Mode::kSync, 3);
  EXPECT_FALSE(ps.submit(0, std::vector<float>{2.0f}, 5.0));
  EXPECT_FALSE(ps.submit(1, std::vector<float>{6.0f}, 6.0));
  // Agent 2's pool died while the others were parked on the barrier: its
  // removal is what completes the round.
  EXPECT_TRUE(ps.deactivate(2, 7.0));
  EXPECT_FLOAT_EQ(ps.params()[0], 4.0f);  // mean of the arrivals only
  EXPECT_EQ(ps.updates_applied(), 1u);
}

TEST(ParameterServer, DeactivatedAgentMustNotSubmit) {
  ParameterServer ps({0.0f}, ParameterServer::Mode::kSync, 2);
  EXPECT_FALSE(ps.deactivate(0));
  EXPECT_THROW((void)ps.submit(0, std::vector<float>{1.0f}), std::logic_error);
}

TEST(ParameterServer, SyncStateRoundTripMidBarrier) {
  // Save with one delta parked at the barrier: the restored server must
  // complete the round exactly as the original would.
  ParameterServer ps({0.0f, 0.0f}, ParameterServer::Mode::kSync, 3);
  (void)ps.pull(0);
  (void)ps.pull(1);
  EXPECT_FALSE(ps.submit(0, std::vector<float>{3.0f, 6.0f}, 1.0));

  ParameterServer restored({9.0f, 9.0f}, ParameterServer::Mode::kSync, 3);
  restored.import_state(ps.export_state());
  EXPECT_EQ(restored.params(), ps.params());

  for (ParameterServer* p : {&ps, &restored}) {
    EXPECT_FALSE(p->submit(1, std::vector<float>{6.0f, 3.0f}, 2.0));
    EXPECT_TRUE(p->submit(2, std::vector<float>{0.0f, 0.0f}, 3.0));
  }
  EXPECT_EQ(restored.params(), ps.params());
  EXPECT_EQ(restored.updates_applied(), ps.updates_applied());
  EXPECT_FLOAT_EQ(restored.params()[0], 3.0f);  // mean of the three deltas
}

TEST(ParameterServer, AsyncStateRoundTripKeepsWindowAndStaleness) {
  ParameterServer ps({0.0f}, ParameterServer::Mode::kAsync, 2, /*async_window=*/2);
  (void)ps.pull(0);
  (void)ps.submit(0, std::vector<float>{2.0f}, 1.0);
  (void)ps.pull(1);

  ParameterServer restored({5.0f}, ParameterServer::Mode::kAsync, 2, /*async_window=*/2);
  restored.import_state(ps.export_state());
  EXPECT_EQ(restored.params(), ps.params());
  // The next submission is averaged with the recent-delta window carried in
  // the state; both servers must land on the same parameters.
  (void)ps.submit(1, std::vector<float>{4.0f}, 2.0);
  (void)restored.submit(1, std::vector<float>{4.0f}, 2.0);
  EXPECT_EQ(restored.params(), ps.params());
  EXPECT_EQ(restored.updates_applied(), ps.updates_applied());
}

TEST(ParameterServer, ImportRejectsMismatchedShape) {
  ParameterServer ps({0.0f, 0.0f}, ParameterServer::Mode::kSync, 3);
  const ParameterServer::State st = ps.export_state();

  ParameterServer wrong_dim({0.0f}, ParameterServer::Mode::kSync, 3);
  EXPECT_THROW(wrong_dim.import_state(st), std::invalid_argument);
  ParameterServer wrong_agents({0.0f, 0.0f}, ParameterServer::Mode::kSync, 2);
  EXPECT_THROW(wrong_agents.import_state(st), std::invalid_argument);
}

}  // namespace
}  // namespace ncnas::nas
