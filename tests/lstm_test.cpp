#include <gtest/gtest.h>

#include "gradcheck.hpp"
#include "ncnas/nn/lstm.hpp"
#include "ncnas/tensor/ops.hpp"

namespace ncnas::nn {
namespace {

using tensor::Rng;
using tensor::Tensor;
using testing::numeric_derivative;
using testing::probe_grad;
using testing::probe_loss;
using testing::rel_err;

// Parameterized over kernel modes so the controller's LSTM math is checked
// under the production (blocked/parallel) kernels, not just the oracles.
using Lstm = ncnas::testing::KernelModeTest;

Tensor random_tensor(tensor::Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (float& v : t.flat()) v = 0.5f * static_cast<float>(rng.normal());
  return t;
}

TEST_P(Lstm, ShapesAndInitialState) {
  Rng rng(1);
  LstmCell cell(3, 5, rng);
  EXPECT_EQ(cell.input_dim(), 3u);
  EXPECT_EQ(cell.hidden_dim(), 5u);
  const LstmState s0 = cell.initial_state(2);
  EXPECT_EQ(s0.h.shape(), tensor::Shape({2, 5}));
  for (float v : s0.h.flat()) EXPECT_EQ(v, 0.0f);
}

TEST_P(Lstm, StepAndNogradAgree) {
  Rng rng(2);
  LstmCell cell(3, 4, rng);
  const Tensor x = random_tensor({2, 3}, rng);
  const LstmState s0 = cell.initial_state(2);
  const LstmState a = cell.step(x, s0);
  const LstmState b = cell.step_nograd(x, s0);
  EXPECT_LT(tensor::max_abs_diff(a.h, b.h), 1e-6f);
  EXPECT_LT(tensor::max_abs_diff(a.c, b.c), 1e-6f);
  EXPECT_EQ(cell.cached_steps(), 1u);
  cell.clear_cache();
  EXPECT_EQ(cell.cached_steps(), 0u);
}

TEST_P(Lstm, HiddenStateBounded) {
  // h = o * tanh(c) is bounded by (-1, 1).
  Rng rng(3);
  LstmCell cell(2, 6, rng);
  LstmState s = cell.initial_state(1);
  for (int t = 0; t < 20; ++t) {
    const Tensor x = random_tensor({1, 2}, rng);
    s = cell.step_nograd(x, s);
    for (float v : s.h.flat()) {
      EXPECT_GT(v, -1.0f);
      EXPECT_LT(v, 1.0f);
    }
  }
}

TEST_P(Lstm, BpttGradcheckThreeSteps) {
  Rng rng(4);
  LstmCell cell(2, 3, rng);
  std::vector<Tensor> xs;
  for (int t = 0; t < 3; ++t) xs.push_back(random_tensor({2, 2}, rng));

  // Loss: probe over the final hidden state.
  const auto loss_fn = [&] {
    LstmState s = cell.initial_state(2);
    for (const Tensor& x : xs) s = cell.step_nograd(x, s);
    return probe_loss(s.h);
  };

  cell.clear_cache();
  LstmState s = cell.initial_state(2);
  for (const Tensor& x : xs) s = cell.step(x, s);
  for (const ParamPtr& p : cell.parameters()) p->zero_grad();

  Tensor dh = probe_grad(s.h);
  Tensor dc({2, 3});
  std::vector<Tensor> dxs(3);
  for (std::size_t t = 3; t-- > 0;) {
    Tensor dh_prev, dc_prev;
    dxs[t] = cell.backward_step(dh, dc, dh_prev, dc_prev);
    dh = std::move(dh_prev);
    dc = std::move(dc_prev);
  }

  // Parameter gradients vs finite differences.
  for (const ParamPtr& p : cell.parameters()) {
    for (std::size_t i = 0; i < p->size(); i += std::max<std::size_t>(1, p->size() / 11)) {
      const float num = numeric_derivative(p->value[i], loss_fn);
      EXPECT_LT(rel_err(p->grad[i], num), 3e-2f) << p->name << " slot " << i;
    }
  }
  // Input gradients at each time step.
  for (std::size_t t = 0; t < 3; ++t) {
    for (std::size_t i = 0; i < xs[t].size(); ++i) {
      const float num = numeric_derivative(xs[t][i], loss_fn);
      EXPECT_LT(rel_err(dxs[t][i], num), 3e-2f) << "x[" << t << "] slot " << i;
    }
  }
}

TEST_P(Lstm, BackwardWithoutCacheThrows) {
  Rng rng(5);
  LstmCell cell(2, 3, rng);
  Tensor dh({1, 3}), dc({1, 3}), dh_prev, dc_prev;
  EXPECT_THROW((void)cell.backward_step(dh, dc, dh_prev, dc_prev), std::logic_error);
}

TEST_P(Lstm, ForgetGateBiasInitializedToOne) {
  Rng rng(6);
  LstmCell cell(2, 4, rng);
  const ParamPtr b = cell.parameters()[2];
  for (std::size_t j = 4; j < 8; ++j) EXPECT_FLOAT_EQ(b->value[j], 1.0f);
  EXPECT_FLOAT_EQ(b->value[0], 0.0f);
}

INSTANTIATE_TEST_SUITE_P(KernelModes, Lstm,
                         ::testing::ValuesIn(ncnas::testing::kernel_mode_params()),
                         ncnas::testing::kernel_mode_name);

}  // namespace
}  // namespace ncnas::nn
