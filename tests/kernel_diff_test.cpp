// Differential oracle suite for the blocked/parallel tensor kernels.
//
// The contract under test (tensor/kernel_config.hpp): blocked kernels — at
// any thread count and any block geometry — produce bytes identical to the
// serial reference kernels. Equality below is exact (EXPECT_EQ on floats /
// Tensor::operator== which is bitwise), never approximate: a one-ULP drift
// is a determinism bug, not noise.

#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ncnas/tensor/kernel_config.hpp"
#include "ncnas/tensor/ops.hpp"
#include "ncnas/tensor/rng.hpp"
#include "ncnas/tensor/tensor.hpp"

namespace {

using ncnas::tensor::GemmPath;
using ncnas::tensor::KernelConfig;
using ncnas::tensor::KernelConfigGuard;
using ncnas::tensor::Rng;
using ncnas::tensor::SimdMode;
using ncnas::tensor::Tensor;

std::size_t hardware_threads() {
  return std::max<std::size_t>(2, std::thread::hardware_concurrency());
}

/// The thread counts the suite sweeps, per the issue: 1, 2, hardware.
std::vector<std::size_t> thread_counts() { return {1, 2, hardware_threads()}; }

KernelConfig test_config(std::size_t threads, SimdMode simd = SimdMode::kAuto) {
  KernelConfig cfg;
  cfg.threads = threads;
  cfg.simd = simd;
  cfg.block_rows = 8;    // small enough that every sweep shape spans blocks
  cfg.block_cols = 32;   // two packed panels per cache pass
  cfg.min_blocked_flops = 0;    // force the blocked path even for 1x1x1
  cfg.min_parallel_elems = 0;   // force pool dispatch for tiny elementwise ops
  return cfg;
}

/// One non-reference tier configuration in the differential sweep: the
/// scalar blocked kernels (SIMD forced off) and the SIMD tier, each at
/// several thread counts. Where the SIMD tier is unavailable its entries
/// degrade to the blocked tier, which keeps the sweep valid everywhere.
struct TierMode {
  std::size_t threads;
  SimdMode simd;
  const char* label;
};

std::vector<TierMode> tier_sweep() {
  static const std::size_t hw = hardware_threads();
  return {{1, SimdMode::kOff, "blocked_t1"},
          {2, SimdMode::kOff, "blocked_t2"},
          {hw, SimdMode::kOff, "blocked_tmax"},
          {1, SimdMode::kOn, "simd_t1"},
          {hw, SimdMode::kOn, "simd_tmax"}};
}

Tensor random_tensor(const ncnas::tensor::Shape& shape, Rng& rng) {
  Tensor t(shape);
  for (float& v : t.flat()) v = static_cast<float>(rng.normal());
  return t;
}

bool bytes_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

/// Shapes stressing every dispatch edge: empty dims, unit dims, exact
/// block/panel multiples, off-by-one around panel (16) and block (8/32)
/// boundaries, tall/thin and short/wide extremes.
struct GemmShape {
  std::size_t m, k, n;
};

std::vector<GemmShape> sweep_shapes() {
  return {
      {0, 0, 0}, {0, 3, 4}, {3, 0, 4}, {3, 4, 0}, {1, 1, 1},  {1, 7, 1},
      {1, 1, 9}, {5, 1, 5}, {4, 4, 4}, {8, 8, 16}, {8, 8, 32}, {16, 16, 16},
      {7, 5, 3}, {9, 11, 17}, {15, 13, 31}, {17, 9, 33}, {23, 29, 19},
      {33, 7, 65}, {1, 64, 96}, {96, 64, 1}, {2, 128, 2}, {64, 3, 64},
  };
}

class KernelDiff : public ::testing::Test {
 protected:
  Rng rng_{0xC0FFEEULL};
};

// --- blocked vs reference, exact ------------------------------------------

TEST_F(KernelDiff, GemmMatchesReferenceBitwiseAcrossShapesAndThreads) {
  for (const GemmShape& s : sweep_shapes()) {
    const Tensor a = random_tensor({s.m, s.k}, rng_);
    const Tensor b = random_tensor({s.k, s.n}, rng_);
    Tensor want({s.m, s.n});
    ncnas::tensor::gemm_ref(a, b, want);
    for (const TierMode& tm : tier_sweep()) {
      KernelConfigGuard guard(test_config(tm.threads, tm.simd));
      Tensor got({s.m, s.n});
      // Poison the output first: the blocked kernel must fully overwrite C.
      for (float& v : got.flat()) v = -123.75f;
      ncnas::tensor::gemm(a, b, got);
      EXPECT_TRUE(bytes_equal(want, got))
          << "gemm " << s.m << "x" << s.k << "x" << s.n << " tier=" << tm.label
          << " max|diff|=" << ncnas::tensor::max_abs_diff(want, got);
    }
  }
}

TEST_F(KernelDiff, GemmNtMatchesReferenceBitwiseAcrossShapesAndThreads) {
  for (const GemmShape& s : sweep_shapes()) {
    const Tensor a = random_tensor({s.m, s.k}, rng_);
    const Tensor b = random_tensor({s.n, s.k}, rng_);
    Tensor want({s.m, s.n});
    ncnas::tensor::gemm_nt_ref(a, b, want);
    for (const TierMode& tm : tier_sweep()) {
      KernelConfigGuard guard(test_config(tm.threads, tm.simd));
      Tensor got({s.m, s.n});
      for (float& v : got.flat()) v = -123.75f;
      ncnas::tensor::gemm_nt(a, b, got);
      EXPECT_TRUE(bytes_equal(want, got))
          << "gemm_nt " << s.m << "x" << s.k << "x" << s.n << " tier=" << tm.label
          << " max|diff|=" << ncnas::tensor::max_abs_diff(want, got);
    }
  }
}

TEST_F(KernelDiff, GemmTnMatchesReferenceBitwiseAcrossShapesAndThreads) {
  for (const GemmShape& s : sweep_shapes()) {
    const Tensor a = random_tensor({s.k, s.m}, rng_);
    const Tensor b = random_tensor({s.k, s.n}, rng_);
    Tensor want({s.m, s.n});
    ncnas::tensor::gemm_tn_ref(a, b, want);
    for (const TierMode& tm : tier_sweep()) {
      KernelConfigGuard guard(test_config(tm.threads, tm.simd));
      Tensor got({s.m, s.n});
      for (float& v : got.flat()) v = -123.75f;
      ncnas::tensor::gemm_tn(a, b, got);
      EXPECT_TRUE(bytes_equal(want, got))
          << "gemm_tn " << s.m << "x" << s.k << "x" << s.n << " tier=" << tm.label
          << " max|diff|=" << ncnas::tensor::max_abs_diff(want, got);
    }
  }
}

TEST_F(KernelDiff, BlockGeometryNeverChangesBits) {
  const Tensor a = random_tensor({37, 23}, rng_);
  const Tensor b = random_tensor({23, 41}, rng_);
  Tensor want({37, 41});
  ncnas::tensor::gemm_ref(a, b, want);
  for (std::size_t br : {1UL, 3UL, 8UL, 64UL, 256UL}) {
    for (std::size_t bc : {1UL, 16UL, 48UL, 256UL}) {
      KernelConfig cfg = test_config(hardware_threads());
      cfg.block_rows = br;
      cfg.block_cols = bc;
      KernelConfigGuard guard(cfg);
      Tensor got({37, 41});
      ncnas::tensor::gemm(a, b, got);
      EXPECT_TRUE(bytes_equal(want, got)) << "block_rows=" << br << " block_cols=" << bc;
    }
  }
}

// --- determinism across thread counts -------------------------------------

TEST_F(KernelDiff, ThreadCountNeverChangesBits) {
  const Tensor a = random_tensor({31, 47}, rng_);
  const Tensor b = random_tensor({47, 29}, rng_);
  Tensor base({31, 29});
  {
    KernelConfigGuard guard(test_config(1));
    ncnas::tensor::gemm(a, b, base);
  }
  for (std::size_t t : {2UL, 3UL, 5UL, hardware_threads()}) {
    KernelConfigGuard guard(test_config(t));
    Tensor got({31, 29});
    ncnas::tensor::gemm(a, b, got);
    EXPECT_TRUE(bytes_equal(base, got)) << "threads=" << t;
  }
}

TEST_F(KernelDiff, RepeatedRunsAreIdenticalUnderPool) {
  // Dynamic task scheduling must not leak into results: hammer the same
  // product repeatedly on the pool and require one unique answer.
  const Tensor a = random_tensor({26, 33}, rng_);
  const Tensor b = random_tensor({33, 50}, rng_);
  KernelConfigGuard guard(test_config(hardware_threads()));
  Tensor first({26, 50});
  ncnas::tensor::gemm(a, b, first);
  for (int run = 0; run < 20; ++run) {
    Tensor again({26, 50});
    ncnas::tensor::gemm(a, b, again);
    ASSERT_TRUE(bytes_equal(first, again)) << "run " << run;
  }
}

// --- inputs unchanged (no in-place scribbling) ----------------------------

TEST_F(KernelDiff, InputsAreNotModified) {
  const Tensor a = random_tensor({19, 21}, rng_);
  const Tensor b = random_tensor({21, 35}, rng_);
  const Tensor a_copy = a;
  const Tensor b_copy = b;
  KernelConfigGuard guard(test_config(hardware_threads()));
  Tensor c({19, 35});
  ncnas::tensor::gemm(a, b, c);
  EXPECT_TRUE(bytes_equal(a, a_copy));
  EXPECT_TRUE(bytes_equal(b, b_copy));
}

// --- NaN/Inf semantics (the removed zero-skip fast path) ------------------

TEST_F(KernelDiff, ZeroTimesNanPropagatesNan) {
  // A has an explicit 0.0 in the slot that multiplies B's NaN. The old
  // `if (aik == 0.0f) continue;` fast path skipped the product and produced
  // a finite (wrong) result; IEEE 754 says 0 * NaN = NaN must reach C.
  Tensor a({2, 3});
  a(0, 0) = 1.0f; a(0, 1) = 0.0f; a(0, 2) = 2.0f;
  a(1, 0) = 0.0f; a(1, 1) = 4.0f; a(1, 2) = 0.5f;
  Tensor b({3, 2});
  for (float& v : b.flat()) v = 1.0f;
  b(1, 0) = std::numeric_limits<float>::quiet_NaN();
  for (std::size_t t : {0UL, 1UL, hardware_threads()}) {
    KernelConfigGuard guard(test_config(t));
    Tensor c({2, 2});
    ncnas::tensor::gemm(a, b, c);
    EXPECT_TRUE(std::isnan(c(0, 0))) << "threads=" << t;  // 0 * NaN in play
    EXPECT_TRUE(std::isnan(c(1, 0))) << "threads=" << t;  // 4 * NaN in play
    EXPECT_FLOAT_EQ(c(0, 1), 3.0f) << "threads=" << t;    // NaN column only
    EXPECT_FLOAT_EQ(c(1, 1), 4.5f) << "threads=" << t;
  }
}

TEST_F(KernelDiff, ZeroTimesInfPropagatesNan) {
  Tensor a({1, 2});
  a(0, 0) = 0.0f;
  a(0, 1) = 1.0f;
  Tensor b({2, 1});
  b(0, 0) = std::numeric_limits<float>::infinity();
  b(1, 0) = 7.0f;
  for (std::size_t t : {0UL, 1UL, hardware_threads()}) {
    KernelConfigGuard guard(test_config(t));
    Tensor c({1, 1});
    ncnas::tensor::gemm(a, b, c);
    EXPECT_TRUE(std::isnan(c(0, 0))) << "threads=" << t;  // 0 * inf = NaN
  }
}

TEST_F(KernelDiff, GemmTnZeroTimesNanPropagatesNan) {
  // Same pinning for gemm_tn, which carried its own `aki == 0.0f` skip.
  Tensor a({2, 1});  // A^T is 1x2
  a(0, 0) = 0.0f;
  a(1, 0) = 1.0f;
  Tensor b({2, 1});
  b(0, 0) = std::numeric_limits<float>::quiet_NaN();
  b(1, 0) = 2.0f;
  for (std::size_t t : {0UL, 1UL, hardware_threads()}) {
    KernelConfigGuard guard(test_config(t));
    Tensor c({1, 1});
    ncnas::tensor::gemm_tn(a, b, c);
    EXPECT_TRUE(std::isnan(c(0, 0))) << "threads=" << t;
  }
}

// --- elementwise helpers ---------------------------------------------------

TEST_F(KernelDiff, ElementwiseOpsMatchSerialBitwise) {
  // Large enough to span many parallel_elems grains.
  const std::size_t n = 100'003;
  const Tensor x = random_tensor({n}, rng_);
  const Tensor y0 = random_tensor({n}, rng_);

  Tensor want_axpy = y0;
  ncnas::tensor::axpy(0.37f, x, want_axpy);  // default config: serial
  Tensor want_scale = y0;
  ncnas::tensor::scale_inplace(want_scale, -1.72f);

  for (const TierMode& tm : tier_sweep()) {
    KernelConfigGuard guard(test_config(tm.threads, tm.simd));
    Tensor got_axpy = y0;
    ncnas::tensor::axpy(0.37f, x, got_axpy);
    EXPECT_TRUE(bytes_equal(want_axpy, got_axpy)) << "axpy tier=" << tm.label;
    Tensor got_scale = y0;
    ncnas::tensor::scale_inplace(got_scale, -1.72f);
    EXPECT_TRUE(bytes_equal(want_scale, got_scale)) << "scale tier=" << tm.label;
  }
}

TEST_F(KernelDiff, RowwiseOpsMatchSerialBitwise) {
  const std::size_t m = 513, n = 259;
  const Tensor g = random_tensor({m, n}, rng_);
  const Tensor bias = random_tensor({n}, rng_);
  const Tensor y0 = random_tensor({m, n}, rng_);
  const Tensor colsum0 = random_tensor({n}, rng_);

  Tensor want_bias = y0;
  ncnas::tensor::add_row_bias(want_bias, bias);
  Tensor want_colsum = colsum0;
  ncnas::tensor::accumulate_col_sums(g, want_colsum);

  for (const TierMode& tm : tier_sweep()) {
    KernelConfigGuard guard(test_config(tm.threads, tm.simd));
    Tensor got_bias = y0;
    ncnas::tensor::add_row_bias(got_bias, bias);
    EXPECT_TRUE(bytes_equal(want_bias, got_bias)) << "add_row_bias tier=" << tm.label;
    Tensor got_colsum = colsum0;
    ncnas::tensor::accumulate_col_sums(g, got_colsum);
    EXPECT_TRUE(bytes_equal(want_colsum, got_colsum)) << "accumulate_col_sums tier=" << tm.label;
  }
}

TEST_F(KernelDiff, ParallelElemsCoversEveryIndexOnce) {
  KernelConfigGuard guard(test_config(hardware_threads()));
  const std::size_t n = 70'000;  // > 4 grains
  std::vector<int> hits(n, 0);
  ncnas::tensor::parallel_elems(n, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

// --- dispatch & validation -------------------------------------------------

TEST_F(KernelDiff, TinyProblemsFallBackToReferenceBelowThreshold) {
  KernelConfig cfg = KernelConfig::parallel();  // default thresholds
  KernelConfigGuard guard(cfg);
  // 2x2x2 is far below min_blocked_flops; both paths are bit-identical
  // anyway, so just sanity-check the result.
  Tensor a({2, 2});
  a(0, 0) = 1.0f; a(0, 1) = 2.0f; a(1, 0) = 3.0f; a(1, 1) = 4.0f;
  Tensor c({2, 2});
  ncnas::tensor::gemm(a, a, c);
  EXPECT_FLOAT_EQ(c(0, 0), 7.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 22.0f);
}

TEST_F(KernelDiff, ShapeValidationStillThrowsInBlockedMode) {
  KernelConfigGuard guard(test_config(hardware_threads()));
  Tensor a({2, 3});
  Tensor b({4, 5});  // inner mismatch
  Tensor c({2, 5});
  EXPECT_THROW(ncnas::tensor::gemm(a, b, c), std::invalid_argument);
  EXPECT_THROW(ncnas::tensor::gemm_nt(a, b, c), std::invalid_argument);
  Tensor bad_c({3, 5});
  Tensor ok_b({3, 5});
  EXPECT_THROW(ncnas::tensor::gemm(a, ok_b, bad_c), std::invalid_argument);
}

TEST_F(KernelDiff, ReferenceBlockedCrossoverPinned) {
  // Pins the small-size cutoff that fixed the gemm_nt regression: below
  // min_blocked_flops every gemm variant takes the reference path outright
  // (no blocking/packing overhead), at or above it the blocked tiers run.
  KernelConfig cfg = KernelConfig::parallel(1);
  cfg.simd = SimdMode::kOff;
  cfg.min_blocked_flops = 1000;
  KernelConfigGuard guard(cfg);
  using ncnas::tensor::planned_gemm_path;
  EXPECT_EQ(planned_gemm_path(9, 9, 9), GemmPath::kReference);     // 729 < 1000
  EXPECT_EQ(planned_gemm_path(10, 10, 10), GemmPath::kBlocked);    // exactly 1000
  EXPECT_EQ(planned_gemm_path(16, 16, 16), GemmPath::kBlocked);
  // The default threshold keeps genuinely tiny products on the reference
  // path even in fully parallel configs.
  KernelConfigGuard defaults{KernelConfig::parallel()};
  EXPECT_EQ(planned_gemm_path(8, 8, 8), GemmPath::kReference);
  EXPECT_EQ(planned_gemm_path(64, 64, 64),
            KernelConfig::simd_available() ? GemmPath::kSimd : GemmPath::kBlocked);
}

TEST_F(KernelDiff, SimdTierEngagesExactlyWhenEligible) {
  using ncnas::tensor::planned_gemm_path;
  {
    // threads == 0 is the serial reference tier; SIMD must never engage.
    KernelConfigGuard guard{KernelConfig{}};
    EXPECT_EQ(planned_gemm_path(64, 64, 64), GemmPath::kReference);
  }
  {
    KernelConfigGuard guard(test_config(1, SimdMode::kOff));
    EXPECT_EQ(planned_gemm_path(64, 64, 64), GemmPath::kBlocked);
  }
  {
    KernelConfigGuard guard(test_config(1, SimdMode::kOn));
    const GemmPath p = planned_gemm_path(64, 64, 64);
    if (KernelConfig::simd_available()) {
      EXPECT_EQ(p, GemmPath::kSimd);
      EXPECT_STRNE(KernelConfig::simd_isa(), "");
    } else {
      EXPECT_EQ(p, GemmPath::kBlocked);
      EXPECT_STREQ(KernelConfig::simd_isa(), "");
    }
  }
}

TEST_F(KernelDiff, SimdNanPropagationMatchesReference) {
  // NaN/Inf travel through the SIMD micro-kernels exactly as through the
  // reference loops — including values that only touch the panel interior
  // vs only the scalar edge region of the same product.
  const std::size_t m = 9, k = 13, n = 47;  // 47 = one full panel + edge 15
  Tensor a = random_tensor({m, k}, rng_);
  Tensor b = random_tensor({k, n}, rng_);
  a(3, 5) = std::numeric_limits<float>::quiet_NaN();
  b(7, 2) = std::numeric_limits<float>::infinity();   // interior column
  b(2, 40) = -std::numeric_limits<float>::infinity();  // edge column
  Tensor want({m, n});
  ncnas::tensor::gemm_ref(a, b, want);
  for (const TierMode& tm : tier_sweep()) {
    KernelConfigGuard guard(test_config(tm.threads, tm.simd));
    Tensor got({m, n});
    ncnas::tensor::gemm(a, b, got);
    EXPECT_TRUE(bytes_equal(want, got)) << "tier=" << tm.label;
  }
}

TEST_F(KernelDiff, SetKernelConfigRejectsZeroBlocks) {
  KernelConfig cfg;
  cfg.block_rows = 0;
  EXPECT_THROW(ncnas::tensor::set_kernel_config(cfg), std::invalid_argument);
  cfg = KernelConfig{};
  cfg.block_cols = 0;
  EXPECT_THROW(ncnas::tensor::set_kernel_config(cfg), std::invalid_argument);
}

TEST_F(KernelDiff, GuardRestoresPreviousConfig) {
  const KernelConfig before = ncnas::tensor::kernel_config();
  {
    KernelConfigGuard guard(test_config(3));
    EXPECT_EQ(ncnas::tensor::kernel_config().threads, 3u);
  }
  const KernelConfig after = ncnas::tensor::kernel_config();
  EXPECT_EQ(after.threads, before.threads);
  EXPECT_EQ(after.block_rows, before.block_rows);
}

}  // namespace
