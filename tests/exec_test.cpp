#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "ncnas/exec/evaluator.hpp"
#include "ncnas/exec/shared_cache.hpp"
#include "ncnas/exec/utilization.hpp"
#include "ncnas/space/spaces.hpp"

namespace ncnas::exec {
namespace {

data::Dataset tiny_nt3() {
  data::Nt3Dims dims;
  dims.train = 64;
  dims.valid = 32;
  dims.length = 64;
  dims.motif = 6;
  return data::make_nt3(5, dims);
}

TEST(CostModel, DeterministicAndMonotone) {
  const CostModel cm{.startup_seconds = 10.0, .seconds_per_megaunit = 2.0};
  const double d1 = cm.duration(10000, 100, 1, "a");
  EXPECT_DOUBLE_EQ(d1, cm.duration(10000, 100, 1, "a"));
  EXPECT_GT(cm.duration(20000, 100, 1, "a"), d1);
  EXPECT_GT(cm.duration(10000, 200, 1, "a"), d1);
  EXPECT_GT(cm.duration(10000, 100, 2, "a"), d1);
}

TEST(CostModel, JitterStaysInBand) {
  const CostModel cm{.startup_seconds = 0.0, .seconds_per_megaunit = 1.0, .jitter_frac = 0.2};
  const double base = 1.0;  // 1e6 units
  for (const char* key : {"a", "b", "c", "d", "e", "f"}) {
    const double d = cm.duration(1000, 1000, 1, key);
    EXPECT_GE(d, base * 0.8 - 1e-9);
    EXPECT_LE(d, base * 1.2 + 1e-9);
  }
}

TEST(CostModel, TimeoutPredicate) {
  const CostModel cm{.timeout_seconds = 600.0};
  EXPECT_FALSE(cm.times_out(599.0));
  EXPECT_TRUE(cm.times_out(601.0));
}

TEST(EvalContextKey, CanonicalEncodingIsInjectiveOverAConfigGrid) {
  // Property: the context key is a canonical encoding of (dataset, fidelity,
  // cost) — equal configs encode equally, and every distinct configuration in
  // a full cross-product grid encodes distinctly. A collision anywhere means
  // the shared cache could serve a reward computed under a different recipe.
  std::vector<data::Dataset> datasets;
  for (const std::uint32_t length : {32u, 64u}) {
    data::Nt3Dims dims;
    dims.train = 64;
    dims.valid = 32;
    dims.length = length;
    dims.motif = 6;
    datasets.push_back(data::make_nt3(5, dims));
  }

  std::vector<FidelityConfig> fidelities;
  for (const std::uint32_t epochs : {1u, 2u}) {
    for (const double subset : {1.0, 0.5}) {
      for (const float lr : {0.001f, 0.01f}) {
        for (const double valid : {1.0, 0.25}) {
          FidelityConfig f;
          f.epochs = epochs;
          f.subset_fraction = subset;
          f.learning_rate = lr;
          f.valid_fraction = valid;
          fidelities.push_back(f);
        }
      }
    }
  }
  // The fraction fields must not collapse into one another: a config that
  // halves the training subset is not a config that halves the validation set.
  {
    FidelityConfig swapped;
    swapped.subset_fraction = 0.2;
    swapped.valid_fraction = 0.75;
    fidelities.push_back(swapped);
    FidelityConfig mirrored;
    mirrored.subset_fraction = 0.75;
    mirrored.valid_fraction = 0.2;
    fidelities.push_back(mirrored);
  }

  std::vector<CostModel> costs;
  for (const double startup : {20.0, 40.0}) {
    for (const double timeout : {600.0, 1200.0}) {
      CostModel c;
      c.startup_seconds = startup;
      c.seconds_per_megaunit = 1.0;
      c.timeout_seconds = timeout;
      costs.push_back(c);
    }
  }

  std::set<std::string> keys;
  std::size_t combos = 0;
  for (const data::Dataset& ds : datasets) {
    for (const FidelityConfig& fid : fidelities) {
      for (const CostModel& cost : costs) {
        const std::string key = eval_context_key(ds, fid, cost);
        EXPECT_FALSE(key.empty());
        EXPECT_EQ(key, eval_context_key(ds, fid, cost))
            << "same config must encode to the same key";
        const bool inserted = keys.insert(key).second;
        EXPECT_TRUE(inserted) << "collision for key '" << key << "'";
        ++combos;
      }
    }
  }
  EXPECT_EQ(keys.size(), combos);
  EXPECT_EQ(combos, datasets.size() * fidelities.size() * costs.size());
}

TEST(TrainingEvaluator, ProducesRealRewards) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  const TrainingEvaluator eval(s, ds, {.epochs = 1, .subset_fraction = 1.0}, CostModel{});
  tensor::Rng rng(1);
  const space::ArchEncoding arch = s.random_arch(rng);
  const EvalResult r = eval.evaluate(arch, 99);
  EXPECT_GE(r.reward, 0.0f);  // accuracy metric
  EXPECT_LE(r.reward, 1.0f);
  EXPECT_GT(r.params, 0u);
  EXPECT_GT(r.sim_duration, 0.0);
  EXPECT_FALSE(r.cache_hit);
}

TEST(TrainingEvaluator, DeterministicPerSeed) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  const TrainingEvaluator eval(s, ds, {.epochs = 1, .subset_fraction = 0.5}, CostModel{});
  tensor::Rng rng(2);
  const space::ArchEncoding arch = s.random_arch(rng);
  const EvalResult a = eval.evaluate(arch, 7);
  const EvalResult b = eval.evaluate(arch, 7);
  EXPECT_EQ(a.reward, b.reward);
  EXPECT_EQ(a.params, b.params);
  // Agent-specific seeds: a different seed may yield a different reward
  // (paper: same arch from different agents gets different rewards).
  const EvalResult c = eval.evaluate(arch, 8);
  EXPECT_EQ(a.params, c.params);  // same architecture, same size
}

TEST(TrainingEvaluator, TimeoutYieldsFloorRewardAndSkipsTraining) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  CostModel cm;
  cm.timeout_seconds = 1.0;       // everything times out
  cm.startup_seconds = 50.0;
  const TrainingEvaluator eval(s, ds, {.epochs = 1, .subset_fraction = 1.0}, cm);
  tensor::Rng rng(3);
  const EvalResult r = eval.evaluate(s.random_arch(rng), 1);
  EXPECT_TRUE(r.timed_out);
  EXPECT_EQ(r.reward, 0.0f);                       // ACC floor
  EXPECT_DOUBLE_EQ(r.sim_duration, cm.timeout_seconds);  // worker held till kill
}

TEST(TrainingEvaluator, R2FloorIsMinusOne) {
  data::ComboDims dims;
  dims.train = 64;
  dims.valid = 32;
  dims.expression = 8;
  dims.descriptors = 8;
  const data::Dataset ds = data::make_combo(5, dims);
  const space::SearchSpace s = space::combo_small_space();
  CostModel cm;
  cm.timeout_seconds = 0.5;
  const TrainingEvaluator eval(s, ds, {.epochs = 1, .subset_fraction = 0.1}, cm);
  tensor::Rng rng(4);
  const EvalResult r = eval.evaluate(s.random_arch(rng), 1);
  EXPECT_TRUE(r.timed_out);
  EXPECT_EQ(r.reward, -1.0f);
}

TEST(CachedEvaluator, HitsAndMisses) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  const TrainingEvaluator inner(s, ds, {.epochs = 1, .subset_fraction = 1.0}, CostModel{});
  const CachedEvaluator cache(inner);
  tensor::Rng rng(5);
  const space::ArchEncoding arch = s.random_arch(rng);
  const EvalResult first = cache.evaluate(arch, 1);
  EXPECT_FALSE(first.cache_hit);
  const EvalResult second = cache.evaluate(arch, 1);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.reward, first.reward);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.unique_archs(), 1u);
}

TEST(CachedEvaluator, SplitPhaseLookupInsert) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  const TrainingEvaluator inner(s, ds, {.epochs = 1, .subset_fraction = 1.0}, CostModel{});
  const CachedEvaluator cache(inner);
  tensor::Rng rng(6);
  const space::ArchEncoding arch = s.random_arch(rng);
  EXPECT_FALSE(cache.lookup(arch).has_value());
  EvalResult r;
  r.reward = 0.5f;
  cache.insert(arch, r);
  const auto hit = cache.lookup(arch);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->cache_hit);
  EXPECT_EQ(hit->reward, 0.5f);
}

TEST(CachedEvaluator, FailedThenRetriedEvalDoesNotPoisonCache) {
  // Property behind the driver's retry-exhaustion handling: the driver
  // pre-inserts the real result, then erases it when every dispatch attempt
  // fails. A later regeneration must re-evaluate (miss), not replay a
  // floored non-measurement — and the hit/miss counters must reconcile with
  // every lookup made along the way.
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  const TrainingEvaluator inner(s, ds, {.epochs = 1, .subset_fraction = 1.0}, CostModel{});
  const CachedEvaluator cache(inner);
  tensor::Rng rng(7);
  const space::ArchEncoding arch = s.random_arch(rng);

  EXPECT_FALSE(cache.lookup(arch).has_value());  // miss 1: first generation
  EvalResult real;
  real.reward = 0.9f;
  cache.insert(arch, real);                      // the driver primes the cache
  cache.erase(arch);                             // ...then the dispatch fails out
  EXPECT_FALSE(cache.lookup(arch).has_value());  // miss 2: no stale replay
  cache.insert(arch, real);                      // retry on regeneration succeeds
  const auto hit = cache.lookup(arch);           // hit 1
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->reward, 0.9f);
  EXPECT_TRUE(hit->cache_hit);

  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits() + cache.misses(), 3u);  // one per lookup, exactly
  EXPECT_EQ(cache.unique_archs(), 1u);

  // Erasing an absent key is a harmless no-op (exhaustion after the driver
  // already erased, or with caching disabled).
  cache.erase(arch);
  cache.erase(arch);
  EXPECT_EQ(cache.unique_archs(), 0u);
}

TEST(CachedEvaluator, StateRoundTripPreservesEntriesAndCounters) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  const TrainingEvaluator inner(s, ds, {.epochs = 1, .subset_fraction = 1.0}, CostModel{});
  const CachedEvaluator cache(inner);
  tensor::Rng rng(9);
  std::vector<space::ArchEncoding> archs;
  for (int i = 0; i < 4; ++i) archs.push_back(s.random_arch(rng));
  for (const auto& a : archs) (void)cache.evaluate(a, 1);  // 4 misses
  (void)cache.evaluate(archs[0], 1);                       // 1 hit

  const CachedEvaluator::State st = cache.export_state();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 4u);
  // Canonical form: entries sorted by key, so equal caches serialize equally.
  for (std::size_t i = 1; i < st.entries.size(); ++i) {
    EXPECT_LT(st.entries[i - 1].first, st.entries[i].first);
  }

  CachedEvaluator restored(inner);
  restored.import_state(st);
  EXPECT_EQ(restored.hits(), cache.hits());
  EXPECT_EQ(restored.misses(), cache.misses());
  EXPECT_EQ(restored.unique_archs(), cache.unique_archs());
  for (const auto& a : archs) {
    const auto orig = cache.lookup(a);
    const auto back = restored.lookup(a);
    ASSERT_TRUE(orig.has_value());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->reward, orig->reward);
    EXPECT_EQ(back->params, orig->params);
    EXPECT_DOUBLE_EQ(back->sim_duration, orig->sim_duration);
    EXPECT_EQ(back->timed_out, orig->timed_out);
  }
}

TEST(Utilization, StateRoundTripReproducesSeriesBitForBit) {
  UtilizationMonitor mon(4);
  // Enough unordered fractional intervals that a re-summed busy_seconds
  // would accumulate differently from the carried-over original.
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double len = 0.1 + 0.0137 * (i % 17);
    mon.add_busy_interval(t, t + len);
    t += 0.73;
  }
  mon.add_capacity_loss(55.5);

  UtilizationMonitor restored(4);
  restored.import_state(mon.export_state());
  EXPECT_EQ(restored.busy_worker_seconds(), mon.busy_worker_seconds());  // exact
  EXPECT_EQ(restored.interval_count(), mon.interval_count());
  EXPECT_EQ(restored.capacity_losses(), mon.capacity_losses());
  const auto a = mon.series(150.0, 10.0);
  const auto b = restored.series(150.0, 10.0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  EXPECT_EQ(mon.average(150.0), restored.average(150.0));
}

TEST(HeadFor, PicksTaskByMetric) {
  const data::Dataset nt3 = tiny_nt3();
  EXPECT_EQ(head_for(nt3).kind, space::TaskHead::Kind::kClassification);
  data::ComboDims dims;
  dims.train = 16;
  dims.valid = 8;
  dims.expression = 4;
  dims.descriptors = 4;
  const data::Dataset combo = data::make_combo(1, dims);
  EXPECT_EQ(head_for(combo).kind, space::TaskHead::Kind::kRegression);
}

TEST(Utilization, SingleWorkerFullyBusy) {
  UtilizationMonitor mon(1);
  mon.add_busy_interval(0.0, 100.0);
  EXPECT_DOUBLE_EQ(mon.average(100.0), 1.0);
  const auto series = mon.series(100.0, 10.0);
  ASSERT_EQ(series.size(), 10u);
  for (double v : series) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Utilization, PartialBusyFractions) {
  UtilizationMonitor mon(2);
  mon.add_busy_interval(0.0, 50.0);   // worker A, first half
  mon.add_busy_interval(0.0, 100.0);  // worker B, whole window
  EXPECT_DOUBLE_EQ(mon.average(100.0), 0.75);
  const auto series = mon.series(100.0, 50.0);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], 1.0);
  EXPECT_DOUBLE_EQ(series[1], 0.5);
}

TEST(Utilization, IntervalSpanningBuckets) {
  UtilizationMonitor mon(1);
  mon.add_busy_interval(5.0, 25.0);
  const auto series = mon.series(30.0, 10.0);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0], 0.5);
  EXPECT_DOUBLE_EQ(series[1], 1.0);
  EXPECT_DOUBLE_EQ(series[2], 0.5);
}

TEST(Utilization, RejectsBadInputs) {
  EXPECT_THROW(UtilizationMonitor(0), std::invalid_argument);
  UtilizationMonitor mon(1);
  EXPECT_THROW(mon.add_busy_interval(5.0, 4.0), std::invalid_argument);
  EXPECT_THROW((void)mon.series(0.0, 10.0), std::invalid_argument);
}

TEST(Utilization, CapacityLossShrinksTheDenominator) {
  // Two workers; one dies at t=50. The survivor is fully busy throughout, so
  // utilization of the capacity that actually existed is 1.0 after the crash.
  UtilizationMonitor mon(2);
  mon.add_busy_interval(0.0, 50.0);    // doomed worker, busy until its death
  mon.add_busy_interval(0.0, 100.0);   // survivor, busy the whole window
  mon.add_capacity_loss(50.0);
  EXPECT_EQ(mon.capacity_losses(), 1u);
  const auto series = mon.series(100.0, 50.0);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], 1.0);    // 100 busy / (100 - 0 lost)
  EXPECT_DOUBLE_EQ(series[1], 1.0);    // 50 busy / (100 - 50 lost)
  // average: 150 busy worker-seconds over 2*100 - 50 available.
  EXPECT_DOUBLE_EQ(mon.average(100.0), 1.0);
}

TEST(Utilization, IdleSurvivorAfterCrashIsStillMeasured) {
  UtilizationMonitor mon(2);
  mon.add_busy_interval(0.0, 50.0);    // survivor busy only in the first half
  mon.add_capacity_loss(50.0);
  const auto series = mon.series(100.0, 50.0);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], 0.5);    // 50 busy / 100 available
  EXPECT_DOUBLE_EQ(series[1], 0.0);    // idle survivor: 0 / 50
  EXPECT_DOUBLE_EQ(mon.average(100.0), 50.0 / 150.0);
}

TEST(Utilization, AllCapacityLostDegradesToZero) {
  // A plan may kill every worker; the monitor must degrade, not divide by 0.
  UtilizationMonitor mon(1);
  mon.add_busy_interval(0.0, 10.0);
  mon.add_capacity_loss(10.0);
  const auto series = mon.series(20.0, 10.0);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], 1.0);
  EXPECT_DOUBLE_EQ(series[1], 0.0);    // zero denominator: reported as idle
  EXPECT_THROW(mon.add_capacity_loss(-1.0), std::invalid_argument);
  EXPECT_THROW(mon.add_capacity_loss(5.0), std::invalid_argument);  // > workers
}

}  // namespace
}  // namespace ncnas::exec
