// Tests for the paper's extension features: custom (multi-objective) reward
// functions and the island-model evolution search strategy.
#include <gtest/gtest.h>

#include "ncnas/nas/driver.hpp"
#include "ncnas/space/spaces.hpp"

namespace ncnas {
namespace {

data::Dataset tiny_nt3() {
  data::Nt3Dims dims;
  dims.train = 64;
  dims.valid = 32;
  dims.length = 64;
  dims.motif = 6;
  return data::make_nt3(5, dims);
}

TEST(CustomReward, SizePenaltyOnlyAboveReference) {
  const exec::RewardFn fn = exec::size_penalized_reward(0.1f, 10000);
  EXPECT_FLOAT_EQ(fn({0.8f, 5000, 0.0}), 0.8f);       // below ref: untouched
  EXPECT_FLOAT_EQ(fn({0.8f, 10000, 0.0}), 0.8f);      // at ref: untouched
  EXPECT_NEAR(fn({0.8f, 100000, 0.0}), 0.7f, 1e-5f);  // 10x over: -0.1
  EXPECT_NEAR(fn({0.8f, 1000000, 0.0}), 0.6f, 1e-5f); // 100x over: -0.2
}

TEST(CustomReward, EvaluatorAppliesRewardFn) {
  const space::SearchSpace sp = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  exec::TrainingEvaluator eval(sp, ds, {.epochs = 1, .subset_fraction = 1.0},
                               exec::CostModel{.timeout_seconds = 1e12});
  tensor::Rng rng(3);
  const space::ArchEncoding arch = sp.random_arch(rng);
  const exec::EvalResult plain = eval.evaluate(arch, 7);
  eval.set_reward_fn([](const exec::RewardInputs& in) { return in.metric - 0.5f; });
  const exec::EvalResult shaped = eval.evaluate(arch, 7);
  EXPECT_NEAR(shaped.reward, std::max(plain.reward - 0.5f, eval.reward_floor()), 1e-6f);
  // Restoring the default brings the plain metric back.
  eval.set_reward_fn(nullptr);
  EXPECT_EQ(eval.evaluate(arch, 7).reward, plain.reward);
}

TEST(CustomReward, FloorStillApplies) {
  const space::SearchSpace sp = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  exec::TrainingEvaluator eval(sp, ds, {.epochs = 1, .subset_fraction = 1.0},
                               exec::CostModel{.timeout_seconds = 1e12});
  eval.set_reward_fn([](const exec::RewardInputs&) { return -100.0f; });
  tensor::Rng rng(3);
  EXPECT_EQ(eval.evaluate(sp.random_arch(rng), 7).reward, eval.reward_floor());
}

nas::SearchConfig evo_config() {
  nas::SearchConfig cfg;
  cfg.strategy = nas::SearchStrategy::kEvolution;
  cfg.cluster = {.num_agents = 3, .workers_per_agent = 4};
  cfg.wall_time_seconds = 2400.0;
  cfg.fidelity = {.epochs = 1, .subset_fraction = 1.0};
  cfg.cost = {.startup_seconds = 20.0, .seconds_per_megaunit = 1.0, .timeout_seconds = 600.0};
  cfg.seed = 21;
  cfg.evolution = {.population = 12, .tournament = 4};
  return cfg;
}

TEST(Evolution, RunsAndProducesEvaluations) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  const nas::SearchResult res = nas::SearchDriver(s, ds, evo_config()).run();
  EXPECT_GT(res.evals.size(), 30u);
  EXPECT_EQ(res.ppo_updates, 0u);  // no RL machinery involved
  for (const auto& e : res.evals) EXPECT_TRUE(s.is_valid(e.arch));
}

TEST(Evolution, ChildrenAreSingleGeneMutants) {
  // Once the population is warm, children must differ from SOME population
  // member in exactly one decision. We verify the weaker, robust property:
  // late-search architectures concentrate (fewer unique archs than pure
  // random would give), because children descend from tournament winners.
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  nas::SearchConfig evo = evo_config();
  const nas::SearchResult evo_res = nas::SearchDriver(s, ds, evo).run();
  nas::SearchConfig rdm = evo_config();
  rdm.strategy = nas::SearchStrategy::kRandom;
  const nas::SearchResult rdm_res = nas::SearchDriver(s, ds, rdm).run();
  const double evo_unique =
      static_cast<double>(evo_res.unique_archs) / static_cast<double>(evo_res.evals.size());
  const double rdm_unique =
      static_cast<double>(rdm_res.unique_archs) / static_cast<double>(rdm_res.evals.size());
  EXPECT_LT(evo_unique, rdm_unique);
}

TEST(Evolution, ImprovesOverItsOwnRandomWarmup) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  nas::SearchConfig cfg = evo_config();
  cfg.wall_time_seconds = 3600.0;
  const nas::SearchResult res = nas::SearchDriver(s, ds, cfg).run();
  // Mean reward in the last third vs the first third (warmup is random).
  double early = 0.0, late = 0.0;
  std::size_t n_early = 0, n_late = 0;
  for (const auto& e : res.evals) {
    if (e.time < res.end_time / 3.0) {
      early += e.reward;
      ++n_early;
    } else if (e.time > 2.0 * res.end_time / 3.0) {
      late += e.reward;
      ++n_late;
    }
  }
  ASSERT_GT(n_early, 0u);
  ASSERT_GT(n_late, 0u);
  EXPECT_GT(late / n_late, early / n_early);
}

TEST(Evolution, DeterministicAcrossRuns) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  const nas::SearchResult a = nas::SearchDriver(s, ds, evo_config()).run();
  const nas::SearchResult b = nas::SearchDriver(s, ds, evo_config()).run();
  ASSERT_EQ(a.evals.size(), b.evals.size());
  for (std::size_t i = 0; i < a.evals.size(); ++i) {
    EXPECT_EQ(a.evals[i].arch, b.evals[i].arch);
    EXPECT_EQ(a.evals[i].reward, b.evals[i].reward);
  }
}

TEST(Evolution, StrategyNamed) {
  EXPECT_STREQ(nas::strategy_name(nas::SearchStrategy::kEvolution), "EVO");
}

}  // namespace
}  // namespace ncnas
