// Checkpoint/restore subsystem tests: snapshot format integrity, rotation,
// and the headline guarantee — an interrupted-then-resumed search reproduces
// the uninterrupted run bit-identically for every strategy, faults included,
// with the journal lineage reconciling counter-for-counter.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "ncnas/ckpt/checkpoint.hpp"
#include "ncnas/ckpt/snapshot.hpp"
#include "ncnas/exec/fault.hpp"
#include "ncnas/nas/driver.hpp"
#include "ncnas/nas/result_io.hpp"
#include "ncnas/obs/journal.hpp"
#include "ncnas/obs/telemetry.hpp"
#include "ncnas/space/spaces.hpp"

namespace ncnas::nas {
namespace {

data::Dataset tiny_nt3() {
  data::Nt3Dims dims;
  dims.train = 64;
  dims.valid = 32;
  dims.length = 64;
  dims.motif = 6;
  return data::make_nt3(5, dims);
}

SearchConfig small_config(SearchStrategy strategy) {
  SearchConfig cfg;
  cfg.strategy = strategy;
  cfg.cluster = {.num_agents = 3, .workers_per_agent = 4};
  cfg.wall_time_seconds = 600.0;
  cfg.fidelity = {.epochs = 1, .subset_fraction = 1.0};
  cfg.cost = {.startup_seconds = 20.0, .seconds_per_megaunit = 1.0, .timeout_seconds = 600.0};
  cfg.seed = 11;
  return cfg;
}

exec::FaultPlan chaos_plan() {
  exec::FaultPlan plan;
  plan.seed = 7;
  plan.eval_failure_prob = 0.25;
  plan.slowdown_prob = 0.15;
  plan.slowdown_multiple = 2.0;
  plan.lost_result_prob = 0.10;
  plan.ps_drop_prob = 0.15;
  plan.ps_delay_prob = 0.15;
  plan.ps_delay_seconds = 15.0;
  plan.max_retries = 2;
  plan.backoff_base_seconds = 5.0;
  plan.backoff_cap_seconds = 40.0;
  plan.barrier_timeout_seconds = 120.0;
  plan.worker_crashes.push_back({.agent = 1, .worker = 0, .time = 300.0});
  return plan;
}

/// Fresh scratch directory per test, cleaned on entry so reruns start empty.
std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ncnas_ckpt_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Every field the search computed must match exactly. The checkpoint
/// bookkeeping counters (checkpoints_written, resumes) are excluded on
/// purpose: they describe the process lineage, not the search.
void expect_bit_identical(const SearchResult& a, const SearchResult& b) {
  ASSERT_EQ(a.evals.size(), b.evals.size());
  for (std::size_t i = 0; i < a.evals.size(); ++i) {
    SCOPED_TRACE("eval " + std::to_string(i));
    const EvalRecord& x = a.evals[i];
    const EvalRecord& y = b.evals[i];
    EXPECT_DOUBLE_EQ(x.time, y.time);
    EXPECT_EQ(x.reward, y.reward);
    EXPECT_EQ(x.params, y.params);
    EXPECT_DOUBLE_EQ(x.sim_duration, y.sim_duration);
    EXPECT_EQ(x.cache_hit, y.cache_hit);
    EXPECT_EQ(x.shared_hit, y.shared_hit);
    EXPECT_EQ(x.timed_out, y.timed_out);
    EXPECT_EQ(x.failed, y.failed);
    EXPECT_EQ(x.attempts, y.attempts);
    EXPECT_EQ(x.agent, y.agent);
    EXPECT_EQ(x.arch, y.arch);
  }
  EXPECT_DOUBLE_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.converged_early, b.converged_early);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.shared_cache_hits, b.shared_cache_hits);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.unique_archs, b.unique_archs);
  EXPECT_EQ(a.ppo_updates, b.ppo_updates);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.exhausted, b.exhausted);
  EXPECT_EQ(a.lost_results, b.lost_results);
  EXPECT_EQ(a.crashed_workers, b.crashed_workers);
  EXPECT_EQ(a.dead_agents, b.dead_agents);
  ASSERT_EQ(a.utilization.size(), b.utilization.size());
  for (std::size_t i = 0; i < a.utilization.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.utilization[i], b.utilization[i]);
  }
}

/// Runs checkpointed until the driver aborts after `kill_after` snapshots,
/// then resumes from the snapshot that interruption left behind. Returns the
/// resumed process's final result.
SearchResult kill_and_resume(const space::SearchSpace& s, const data::Dataset& ds,
                             SearchConfig cfg, ckpt::CheckpointConfig ckpt_cfg,
                             std::size_t kill_after) {
  ckpt_cfg.abort_after_snapshots = kill_after;
  cfg.checkpoint = &ckpt_cfg;
  std::string snapshot_path;
  try {
    (void)SearchDriver(s, ds, cfg).run();
    ADD_FAILURE() << "search finished before writing " << kill_after << " snapshot(s)";
  } catch (const ckpt::SearchInterrupted& e) {
    snapshot_path = e.snapshot_path();
  }
  ckpt_cfg.abort_after_snapshots = 0;
  cfg.checkpoint = &ckpt_cfg;
  return resume_search(snapshot_path, s, ds, cfg);
}

// ---- snapshot format -------------------------------------------------------

TEST(Snapshot, ByteCodecRoundTripsEveryType) {
  ckpt::ByteWriter w;
  w.u8(0xAB);
  w.flag(true);
  w.flag(false);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f32(-1.5f);
  w.f64(3.141592653589793);
  w.str("nt3-small");
  w.floats(std::vector<float>{1.0f, -0.0f, 2.5f});
  w.doubles(std::vector<double>{-7.25, 0.125});

  ckpt::ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_TRUE(r.flag());
  EXPECT_FALSE(r.flag());
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f32(), -1.5f);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_EQ(r.str(), "nt3-small");
  EXPECT_EQ(r.floats(), (std::vector<float>{1.0f, -0.0f, 2.5f}));
  EXPECT_EQ(r.doubles(), (std::vector<double>{-7.25, 0.125}));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_NO_THROW(r.require_done());
}

TEST(Snapshot, ReaderThrowsOnTruncationAndTrailingBytes) {
  ckpt::ByteWriter w;
  w.u64(7);
  {
    // One byte short of the u64: the read must fail loudly, not read garbage.
    std::vector<std::uint8_t> cut(w.bytes().begin(), w.bytes().end() - 1);
    ckpt::ByteReader r(cut);
    EXPECT_THROW((void)r.u64(), ckpt::SnapshotError);
  }
  {
    ckpt::ByteReader r(w.bytes());
    (void)r.u32();  // half the payload consumed
    EXPECT_THROW(r.require_done(), ckpt::SnapshotError);
  }
}

TEST(Snapshot, FileRoundTripPreservesHeaderAndPayload) {
  const std::string dir = scratch_dir("roundtrip");
  std::filesystem::create_directories(dir);
  ckpt::SnapshotHeader header;
  header.fingerprint = "fp|a3c|3x4";
  header.space_name = "nt3-small";
  header.virtual_time = 1234.5;
  header.journal_events = 99;
  header.ordinal = 7;
  const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 251, 252};

  const std::string path = dir + "/snap-000007.ckpt";
  ckpt::write_snapshot(path, header, payload);
  const ckpt::Snapshot snap = ckpt::read_snapshot(path);
  EXPECT_EQ(snap.header.fingerprint, header.fingerprint);
  EXPECT_EQ(snap.header.space_name, header.space_name);
  EXPECT_DOUBLE_EQ(snap.header.virtual_time, header.virtual_time);
  EXPECT_EQ(snap.header.journal_events, header.journal_events);
  EXPECT_EQ(snap.header.ordinal, header.ordinal);
  EXPECT_EQ(snap.payload, payload);
  // Atomic write: no temp file left behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(Snapshot, RejectsMissingGarbageCorruptedAndTruncatedFiles) {
  const std::string dir = scratch_dir("reject");
  std::filesystem::create_directories(dir);

  EXPECT_THROW((void)ckpt::read_snapshot(dir + "/absent.ckpt"), ckpt::SnapshotError);

  const std::string garbage = dir + "/garbage.ckpt";
  std::ofstream(garbage) << "this is not a snapshot";
  EXPECT_THROW((void)ckpt::read_snapshot(garbage), ckpt::SnapshotError);

  ckpt::SnapshotHeader header;
  header.fingerprint = "fp";
  header.space_name = "nt3-small";
  const std::string good = dir + "/snap-000001.ckpt";
  ckpt::write_snapshot(good, header, std::vector<std::uint8_t>(64, 0x5A));
  ASSERT_NO_THROW((void)ckpt::read_snapshot(good));

  // Flip one payload byte: the integrity hash must catch it.
  {
    const auto size = std::filesystem::file_size(good);
    std::fstream f(good, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(size) - 10);
    f.put(static_cast<char>(0xA5));
  }
  EXPECT_THROW((void)ckpt::read_snapshot(good), ckpt::SnapshotError);

  // Rewrite, then truncate: also rejected.
  ckpt::write_snapshot(good, header, std::vector<std::uint8_t>(64, 0x5A));
  const auto size = std::filesystem::file_size(good);
  std::filesystem::resize_file(good, size / 2);
  EXPECT_THROW((void)ckpt::read_snapshot(good), ckpt::SnapshotError);
}

TEST(CheckpointWriter, RotationKeepsNewestAndLatestFindsHighestOrdinal) {
  const std::string dir = scratch_dir("rotate");
  ckpt::CheckpointConfig cfg;
  cfg.directory = dir;
  cfg.keep_last = 2;
  ckpt::CheckpointWriter writer(cfg);

  ckpt::SnapshotHeader header;
  header.fingerprint = "fp";
  header.space_name = "nt3-small";
  for (std::uint64_t ordinal = 1; ordinal <= 4; ++ordinal) {
    header.ordinal = ordinal;
    writer.write(header, {static_cast<std::uint8_t>(ordinal)});
  }
  EXPECT_EQ(writer.session_writes(), 4u);

  const auto files = ckpt::list_checkpoints(dir);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_NE(files[0].find("snap-000003.ckpt"), std::string::npos);
  EXPECT_NE(files[1].find("snap-000004.ckpt"), std::string::npos);
  const auto latest = ckpt::latest_checkpoint(dir);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(*latest, files[1]);

  EXPECT_TRUE(ckpt::list_checkpoints(dir + "/missing").empty());
  EXPECT_FALSE(ckpt::latest_checkpoint(dir + "/missing").has_value());
}

// ---- driver integration ----------------------------------------------------

// Checkpointing must observe the search without perturbing it: a run that
// writes snapshots matches the null-policy run bit-for-bit.
TEST(CheckpointDriver, WritingSnapshotsDoesNotPerturbTheSearch) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  SearchConfig cfg = small_config(SearchStrategy::kA3C);
  const SearchResult plain = SearchDriver(s, ds, cfg).run();

  ckpt::CheckpointConfig ckpt_cfg;
  ckpt_cfg.directory = scratch_dir("noperturb");
  ckpt_cfg.interval_seconds = 120.0;
  cfg.checkpoint = &ckpt_cfg;
  const SearchResult snapped = SearchDriver(s, ds, cfg).run();

  expect_bit_identical(plain, snapped);
  EXPECT_EQ(plain.checkpoints_written, 0u);
  EXPECT_GE(snapped.checkpoints_written, 3u);
  EXPECT_EQ(snapped.resumes, 0u);
  // Rotation held: at most keep_last files remain despite more writes.
  EXPECT_LE(ckpt::list_checkpoints(ckpt_cfg.directory).size(), ckpt_cfg.keep_last);
}

// The headline guarantee, for every strategy: kill after the first snapshot,
// resume, and the final result is bit-identical to the uninterrupted run.
TEST(CheckpointDriver, KillAndResumeIsBitIdenticalForAllStrategies) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  for (SearchStrategy strategy : {SearchStrategy::kA3C, SearchStrategy::kA2C,
                                  SearchStrategy::kRandom, SearchStrategy::kEvolution}) {
    SCOPED_TRACE(strategy_name(strategy));
    SearchConfig cfg = small_config(strategy);
    const SearchResult reference = SearchDriver(s, ds, cfg).run();

    ckpt::CheckpointConfig ckpt_cfg;
    ckpt_cfg.directory = scratch_dir(std::string("kill_") + strategy_name(strategy));
    ckpt_cfg.interval_seconds = 120.0;
    const SearchResult resumed = kill_and_resume(s, ds, cfg, ckpt_cfg, 1);

    expect_bit_identical(reference, resumed);
    EXPECT_EQ(resumed.resumes, 1u);
    EXPECT_GE(resumed.checkpoints_written, 3u);  // cumulative across the lineage
  }
}

// Interrupting later in the run (after several snapshots) restores from a
// state with a populated cache, queue history, and PPO trajectory.
TEST(CheckpointDriver, ResumeFromALateSnapshotIsBitIdentical) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  SearchConfig cfg = small_config(SearchStrategy::kA3C);
  const SearchResult reference = SearchDriver(s, ds, cfg).run();

  ckpt::CheckpointConfig ckpt_cfg;
  ckpt_cfg.directory = scratch_dir("late");
  ckpt_cfg.interval_seconds = 120.0;
  const SearchResult resumed = kill_and_resume(s, ds, cfg, ckpt_cfg, 3);
  expect_bit_identical(reference, resumed);
}

// Preemption under chaos: the deterministic fault plan (retries, crashes,
// lost results, PS drops) must survive the snapshot boundary too.
TEST(CheckpointDriver, KillAndResumeUnderChaosPlanIsBitIdentical) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  const exec::FaultInjector fx(chaos_plan());
  SearchConfig cfg = small_config(SearchStrategy::kA3C);
  cfg.faults = &fx;
  const SearchResult reference = SearchDriver(s, ds, cfg).run();
  ASSERT_GT(reference.retries + reference.lost_results + reference.crashed_workers, 0u);

  ckpt::CheckpointConfig ckpt_cfg;
  ckpt_cfg.directory = scratch_dir("chaos");
  ckpt_cfg.interval_seconds = 120.0;
  const SearchResult resumed = kill_and_resume(s, ds, cfg, ckpt_cfg, 2);
  expect_bit_identical(reference, resumed);
}

// A resumed process keeps checkpointing on the original cadence: the lineage
// writes exactly as many snapshots as the never-interrupted checkpointed run.
TEST(CheckpointDriver, ResumedProcessContinuesTheSnapshotCadence) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  SearchConfig cfg = small_config(SearchStrategy::kA2C);

  ckpt::CheckpointConfig full_cfg;
  full_cfg.directory = scratch_dir("cadence_full");
  full_cfg.interval_seconds = 120.0;
  cfg.checkpoint = &full_cfg;
  const SearchResult full = SearchDriver(s, ds, cfg).run();

  ckpt::CheckpointConfig ckpt_cfg;
  ckpt_cfg.directory = scratch_dir("cadence_killed");
  ckpt_cfg.interval_seconds = 120.0;
  const SearchResult resumed = kill_and_resume(s, ds, cfg, ckpt_cfg, 1);
  EXPECT_EQ(resumed.checkpoints_written, full.checkpoints_written);
}

TEST(CheckpointDriver, ResumeRejectsMismatchedConfigAndSpace) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  SearchConfig cfg = small_config(SearchStrategy::kA3C);
  ckpt::CheckpointConfig ckpt_cfg;
  ckpt_cfg.directory = scratch_dir("mismatch");
  ckpt_cfg.interval_seconds = 120.0;
  ckpt_cfg.abort_after_snapshots = 1;
  cfg.checkpoint = &ckpt_cfg;
  std::string snapshot_path;
  try {
    (void)SearchDriver(s, ds, cfg).run();
    FAIL() << "expected SearchInterrupted";
  } catch (const ckpt::SearchInterrupted& e) {
    snapshot_path = e.snapshot_path();
  }
  ckpt_cfg.abort_after_snapshots = 0;

  // Any config drift changes the fingerprint; the snapshot is refused.
  SearchConfig other_seed = cfg;
  other_seed.seed = cfg.seed + 1;
  EXPECT_THROW((void)resume_search(snapshot_path, s, ds, other_seed), ckpt::SnapshotError);

  SearchConfig other_shape = cfg;
  other_shape.cluster.workers_per_agent += 1;
  EXPECT_THROW((void)resume_search(snapshot_path, s, ds, other_shape), ckpt::SnapshotError);

  const space::SearchSpace other_space = space::space_by_name("combo-small");
  EXPECT_THROW((void)resume_search(snapshot_path, other_space, ds, cfg),
               ckpt::SnapshotError);

  // The unmodified config still resumes fine.
  EXPECT_NO_THROW((void)resume_search(snapshot_path, s, ds, cfg));
}

// Checkpoint policy is excluded from the fingerprint (like telemetry): a
// snapshot from one directory/cadence resumes under another, or none at all.
TEST(CheckpointDriver, FingerprintIgnoresCheckpointPolicy) {
  SearchConfig cfg = small_config(SearchStrategy::kA3C);
  const std::string base = config_fingerprint(cfg, "nt3-small");
  ckpt::CheckpointConfig ckpt_cfg;
  ckpt_cfg.directory = "anywhere";
  cfg.checkpoint = &ckpt_cfg;
  EXPECT_EQ(config_fingerprint(cfg, "nt3-small"), base);
}

// The journals of the interrupted and the resumed process, stitched at the
// run_resumed watermark, must reconcile with the final SearchResult counter
// for counter — the same contract the fault events honor.
TEST(CheckpointDriver, MergedJournalLineageReconcilesWithResult) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  SearchConfig cfg = small_config(SearchStrategy::kA3C);

  ckpt::CheckpointConfig ckpt_cfg;
  ckpt_cfg.directory = scratch_dir("journal");
  ckpt_cfg.interval_seconds = 120.0;
  ckpt_cfg.abort_after_snapshots = 2;
  cfg.checkpoint = &ckpt_cfg;

  obs::Telemetry first;
  first.enable_journal();
  cfg.telemetry = &first;
  std::string snapshot_path;
  try {
    (void)SearchDriver(s, ds, cfg).run();
    FAIL() << "expected SearchInterrupted";
  } catch (const ckpt::SearchInterrupted& e) {
    snapshot_path = e.snapshot_path();
  }

  ckpt_cfg.abort_after_snapshots = 0;
  obs::Telemetry second;
  second.enable_journal();
  cfg.telemetry = &second;
  const SearchResult res = resume_search(snapshot_path, s, ds, cfg);

  // Round-trip both journals through JSONL, the way separate processes
  // exchange them, then stitch and summarize.
  const auto round_trip = [](const obs::Telemetry& t) {
    std::stringstream ss;
    t.export_journal_jsonl(ss);
    return obs::Journal::import_jsonl(ss);
  };
  std::vector<obs::JournalEvent> events = round_trip(first);
  events = obs::merge_resumed_journal(std::move(events), round_trip(second));
  const obs::RunSummary sum = obs::summarize_journal(events);

  EXPECT_EQ(sum.evals, res.evals.size());
  EXPECT_EQ(sum.checkpoints, res.checkpoints_written);
  EXPECT_EQ(sum.resumes, res.resumes);
  EXPECT_EQ(sum.resumes, 1u);
  ASSERT_EQ(sum.resume_times.size(), 1u);
  EXPECT_GT(sum.resume_times[0], 0.0);
  EXPECT_EQ(sum.converged, res.converged_early);
  EXPECT_DOUBLE_EQ(sum.end_time_s, res.end_time);
}

}  // namespace
}  // namespace ncnas::nas
