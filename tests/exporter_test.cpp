#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ncnas/nas/driver.hpp"
#include "ncnas/obs/exporter.hpp"
#include "ncnas/obs/telemetry.hpp"
#include "ncnas/space/spaces.hpp"

namespace ncnas::obs {
namespace {

data::Dataset tiny_nt3() {
  data::Nt3Dims dims;
  dims.train = 64;
  dims.valid = 32;
  dims.length = 64;
  dims.motif = 6;
  return data::make_nt3(5, dims);
}

ExporterConfig every_tick(int http_port = -1) {
  ExporterConfig cfg;
  cfg.cadence_seconds = 0.0;
  cfg.http_port = http_port;
  return cfg;
}

nas::SearchConfig small_config(nas::SearchStrategy strategy) {
  nas::SearchConfig cfg;
  cfg.strategy = strategy;
  cfg.cluster = {.num_agents = 3, .workers_per_agent = 4};
  cfg.wall_time_seconds = 1800.0;  // 30 simulated minutes
  cfg.fidelity = {.epochs = 1, .subset_fraction = 1.0};
  cfg.cost = {.startup_seconds = 20.0, .seconds_per_megaunit = 1.0, .timeout_seconds = 600.0};
  cfg.seed = 11;
  return cfg;
}

/// A throwaway path in the build dir; removed on destruction.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name) : path("exporter_test_" + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

// ---- OpenMetrics rendering and conformance ---------------------------------

MetricsSnapshot sample_metrics() {
  MetricsRegistry reg;
  reg.counter("ncnas_evals_total").inc(42);
  reg.counter("ncnas_cache_hits_total").inc(7);
  reg.gauge("ncnas_best_reward").set(0.75);
  Histogram& h = reg.histogram("ncnas_eval_seconds", {1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  h.observe(500.0);
  return reg.snapshot();
}

TEST(OpenMetrics, RenderedExpositionConforms) {
  const std::string text = openmetrics_text(sample_metrics());
  std::string error;
  EXPECT_TRUE(validate_openmetrics(text, &error)) << error;
  // Counter TYPE lines drop the _total suffix; samples keep it.
  EXPECT_NE(text.find("# TYPE ncnas_evals counter\n"), std::string::npos) << text;
  EXPECT_NE(text.find("ncnas_evals_total 42\n"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE ncnas_best_reward gauge\n"), std::string::npos);
  // Histogram closes with +Inf and carries _count/_sum.
  EXPECT_NE(text.find("ncnas_eval_seconds_bucket{le=\"+Inf\"} 4\n"), std::string::npos) << text;
  EXPECT_NE(text.find("ncnas_eval_seconds_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("ncnas_eval_seconds_sum"), std::string::npos);
  // Exactly one trailing EOF marker.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
  EXPECT_EQ(text.find("# EOF"), text.size() - 6);
}

TEST(OpenMetrics, HistogramBucketsAreCumulativeAndOrdered) {
  const std::string text = openmetrics_text(sample_metrics());
  std::istringstream in(text);
  std::string line;
  std::vector<double> edges;
  std::vector<std::uint64_t> counts;
  while (std::getline(in, line)) {
    const std::string prefix = "ncnas_eval_seconds_bucket{le=\"";
    if (line.rfind(prefix, 0) != 0) continue;
    const std::size_t close = line.find('"', prefix.size());
    ASSERT_NE(close, std::string::npos);
    const std::string le = line.substr(prefix.size(), close - prefix.size());
    edges.push_back(le == "+Inf" ? std::numeric_limits<double>::infinity() : std::stod(le));
    counts.push_back(std::stoull(line.substr(line.rfind(' ') + 1)));
  }
  ASSERT_EQ(edges.size(), 4u);  // three edges + the +Inf close
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_LT(edges[i - 1], edges[i]);
    EXPECT_LE(counts[i - 1], counts[i]);  // cumulative, never decreasing
  }
  EXPECT_EQ(counts.back(), 4u);
}

TEST(OpenMetrics, InfoLabelValuesAreEscaped) {
  const std::string text =
      openmetrics_text(sample_metrics(), {{"strategy", "a\"b\\c\nd"}});
  std::string error;
  EXPECT_TRUE(validate_openmetrics(text, &error)) << error;
  // The three escapable characters, escaped; everything else verbatim.
  EXPECT_NE(text.find("strategy=\"a\\\"b\\\\c\\nd\""), std::string::npos) << text;
}

TEST(OpenMetrics, ValidatorRejectsMalformedPayloads) {
  const std::string good = openmetrics_text(sample_metrics());
  const auto rejects = [](std::string text, const char* why) {
    std::string error;
    EXPECT_FALSE(validate_openmetrics(text, &error)) << why;
    EXPECT_FALSE(error.empty()) << why;
  };
  rejects(good.substr(0, good.size() - 7), "missing # EOF");
  rejects(good + "trailing 1\n", "content after # EOF");
  rejects("# TYPE x counter\nx 1\n# EOF\n", "counter sample without _total");
  rejects("# TYPE x counter\nx_total -1\n# EOF\n", "negative counter");
  rejects("# TYPE x gauge\n# TYPE x gauge\nx 1\n# EOF\n", "duplicate TYPE");
  rejects("orphan_total 1\n# EOF\n", "sample without TYPE");
  rejects(
      "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n"
      "h_bucket{le=\"+Inf\"} 5\nh_count 5\nh_sum 1\n# EOF\n",
      "non-cumulative buckets");
  rejects(
      "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\n"
      "h_bucket{le=\"+Inf\"} 2\nh_count 2\nh_sum 1\n# EOF\n",
      "descending le edges");
  rejects("# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\nh_sum 1\n# EOF\n",
          "histogram without +Inf close");
  rejects(
      "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 3\nh_sum 1\n# EOF\n",
      "_count disagrees with +Inf bucket");
}

// ---- SnapshotBus cadence and sequencing ------------------------------------

TEST(SnapshotBus, CadenceGatesPublications) {
  SnapshotBus bus(60.0);
  EXPECT_TRUE(bus.due(0.0));  // first publication is always due
  bus.publish({});
  EXPECT_FALSE(bus.due(30.0));
  EXPECT_FALSE(bus.due(59.9));
  EXPECT_TRUE(bus.due(60.0));
  // Publishing at t=130 skips straight past the missed boundary: the next
  // one lands on the *following* cadence multiple, not 60s after 130.
  PublishedSnapshot at130;
  at130.virtual_time = 130.0;
  bus.publish(std::move(at130));
  EXPECT_FALSE(bus.due(150.0));
  EXPECT_TRUE(bus.due(180.0));
}

TEST(SnapshotBus, ZeroCadencePublishesEveryTick) {
  SnapshotBus bus(0.0);
  for (double t : {0.0, 0.001, 5.0}) {
    EXPECT_TRUE(bus.due(t));
    PublishedSnapshot s;
    s.virtual_time = t;
    bus.publish(std::move(s));
  }
  EXPECT_EQ(bus.publications(), 3u);
}

TEST(SnapshotBus, SequenceNumbersAreMonotonicAcrossSinks) {
  SnapshotBus bus(0.0);
  std::vector<std::uint64_t> seen_a;
  std::vector<std::uint64_t> seen_b;
  bus.add_sink([&](const PublishedSnapshot& s) {
    seen_a.push_back(s.seq);
    EXPECT_EQ(s.progress.seq, s.seq);  // nested progress carries the same seq
  });
  bus.add_sink([&](const PublishedSnapshot& s) { seen_b.push_back(s.seq); });
  for (int i = 0; i < 5; ++i) bus.publish({});
  const std::vector<std::uint64_t> want{1, 2, 3, 4, 5};
  EXPECT_EQ(seen_a, want);
  EXPECT_EQ(seen_b, want);
}

// ---- progress JSON round-trip ----------------------------------------------

TEST(ProgressJson, RoundTripsEveryField) {
  ProgressSnapshot p;
  p.seq = 9;
  p.virtual_time = 123.5;
  p.wall_time_seconds = 1800.0;
  p.strategy = "A2C";
  p.finished = true;
  p.converged = true;
  p.evals_done = 100;
  p.real_evals = 80;
  p.cache_hits = 20;
  p.timeouts = 3;
  p.ppo_updates = 12;
  p.batches_in_flight = 2;
  p.best_reward = 0.625f;
  p.has_best = true;
  p.top.push_back({"1,2,3,", 0.625f, 4096, 2});
  p.agents.push_back({1, "running", 33, 5, 1, 2, 0.5f, true});
  p.retries = 1;
  p.exhausted = 2;
  p.lost_results = 3;
  p.crashed_workers = 4;
  p.dead_agents = 5;
  p.healthy = false;
  p.stragglers = 6;
  p.stalls = 7;
  p.hot_scopes.push_back({"eval/train", 42, 10.5, 8.25});
  p.journal_events = 321;
  p.exporter_errors = 1;

  const ProgressSnapshot q = parse_progress_json(progress_to_json(p));
  EXPECT_EQ(q.seq, p.seq);
  EXPECT_DOUBLE_EQ(q.virtual_time, p.virtual_time);
  EXPECT_DOUBLE_EQ(q.wall_time_seconds, p.wall_time_seconds);
  EXPECT_EQ(q.strategy, p.strategy);
  EXPECT_EQ(q.finished, p.finished);
  EXPECT_EQ(q.converged, p.converged);
  EXPECT_EQ(q.evals_done, p.evals_done);
  EXPECT_EQ(q.real_evals, p.real_evals);
  EXPECT_EQ(q.cache_hits, p.cache_hits);
  EXPECT_EQ(q.timeouts, p.timeouts);
  EXPECT_EQ(q.ppo_updates, p.ppo_updates);
  EXPECT_EQ(q.batches_in_flight, p.batches_in_flight);
  EXPECT_FLOAT_EQ(q.best_reward, p.best_reward);
  EXPECT_EQ(q.has_best, p.has_best);
  ASSERT_EQ(q.top.size(), 1u);
  EXPECT_EQ(q.top[0].arch, "1,2,3,");
  EXPECT_FLOAT_EQ(q.top[0].reward, 0.625f);
  EXPECT_EQ(q.top[0].params, 4096u);
  EXPECT_EQ(q.top[0].agent, 2u);
  ASSERT_EQ(q.agents.size(), 1u);
  EXPECT_EQ(q.agents[0].id, 1u);
  EXPECT_EQ(q.agents[0].status, "running");
  EXPECT_EQ(q.agents[0].evals, 33u);
  EXPECT_EQ(q.agents[0].cached_streak, 2u);
  EXPECT_TRUE(q.agents[0].has_best);
  EXPECT_EQ(q.retries, p.retries);
  EXPECT_EQ(q.exhausted, p.exhausted);
  EXPECT_EQ(q.lost_results, p.lost_results);
  EXPECT_EQ(q.crashed_workers, p.crashed_workers);
  EXPECT_EQ(q.dead_agents, p.dead_agents);
  EXPECT_EQ(q.healthy, p.healthy);
  EXPECT_EQ(q.stragglers, p.stragglers);
  EXPECT_EQ(q.stalls, p.stalls);
  ASSERT_EQ(q.hot_scopes.size(), 1u);
  EXPECT_EQ(q.hot_scopes[0].name, "eval/train");
  EXPECT_EQ(q.hot_scopes[0].calls, 42u);
  EXPECT_DOUBLE_EQ(q.hot_scopes[0].self_ms, 8.25);
  EXPECT_EQ(q.journal_events, p.journal_events);
  EXPECT_EQ(q.exporter_errors, p.exporter_errors);
}

TEST(ProgressJson, ParserRejectsGarbage) {
  EXPECT_THROW(parse_progress_json("not json"), std::runtime_error);
  EXPECT_THROW(parse_progress_json("{\"seq\":"), std::runtime_error);
}

// ---- /healthz transitions via a scripted watchdog --------------------------

TEST(Exporter, HealthzFollowsWatchdogVerdicts) {
  Telemetry t;
  WatchdogConfig wcfg;
  wcfg.expected_seconds = 10.0;  // pinned: no warm-up needed
  wcfg.straggler_multiple = 3.0;
  t.enable_watchdog(wcfg);
  Exporter& exporter = t.enable_exporter(every_tick());

  EXPECT_EQ(exporter.healthz_status(), 200);  // before any publication

  Journal& journal = *t.journal();
  journal.append(JournalEventType::kEvalFinished, 10.0, 0,
                 {{"reward", 0.5}, {"duration_s", 10.0}, {"timed_out", 0.0}});
  exporter.publish(10.0, {});
  EXPECT_EQ(exporter.healthz_status(), 200);
  EXPECT_EQ(exporter.healthz_body(), "ok\n");

  // A 100s eval against a pinned 10s expectation is a straggler: 503.
  journal.append(JournalEventType::kEvalFinished, 120.0, 1,
                 {{"reward", 0.4}, {"duration_s", 100.0}, {"timed_out", 0.0}});
  exporter.publish(120.0, {});
  EXPECT_EQ(exporter.healthz_status(), 503);
  EXPECT_NE(exporter.healthz_body().find("1 straggler(s)"), std::string::npos)
      << exporter.healthz_body();

  // The verdict sticks (the report is cumulative) even after the run ends.
  ProgressSnapshot done;
  done.finished = true;
  exporter.publish(200.0, std::move(done));
  EXPECT_EQ(exporter.healthz_status(), 503);
}

// ---- HTTP endpoints ---------------------------------------------------------

TEST(Exporter, HttpServesPublishedPayloadsOnEphemeralPort) {
  Telemetry t;
  t.enable_journal();
  Exporter& exporter =
      t.enable_exporter(every_tick(0));
  ASSERT_GT(exporter.http_port(), 0);
  const int port = exporter.http_port();

  // Before the first publication /metrics is an empty-but-valid exposition.
  int status = 0;
  std::optional<std::string> body = http_get("127.0.0.1", port, "/metrics", &status);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(status, 200);
  std::string error;
  EXPECT_TRUE(validate_openmetrics(*body, &error)) << error;

  t.metrics().counter("ncnas_evals_total").inc(5);
  ProgressSnapshot p;
  p.strategy = "RDM";
  p.evals_done = 5;
  exporter.publish(60.0, std::move(p));

  body = http_get("127.0.0.1", port, "/metrics", &status);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(validate_openmetrics(*body, &error)) << error;
  EXPECT_NE(body->find("ncnas_evals_total 5\n"), std::string::npos) << *body;
  EXPECT_NE(body->find("ncnas_exporter_info{strategy=\"RDM\"} 1\n"), std::string::npos);

  body = http_get("127.0.0.1", port, "/progress", &status);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(status, 200);
  const ProgressSnapshot q = parse_progress_json(*body);
  EXPECT_EQ(q.evals_done, 5u);
  EXPECT_EQ(q.strategy, "RDM");
  EXPECT_EQ(q.seq, 1u);

  body = http_get("127.0.0.1", port, "/healthz", &status);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(status, 200);

  body = http_get("127.0.0.1", port, "/nope", &status);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(status, 404);
}

TEST(Exporter, BindFailureDegradesGracefully) {
  Telemetry a;
  Exporter& first = a.enable_exporter(every_tick(0));
  ASSERT_GT(first.http_port(), 0);

  // Second exporter asks for the port the first one holds: bind fails, the
  // endpoint is disabled, the error is counted — and a search still runs.
  Telemetry b;
  Exporter& second =
      b.enable_exporter(every_tick(first.http_port()));
  EXPECT_EQ(second.http_port(), -1);
  EXPECT_GE(second.errors(), 1u);

  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  nas::SearchConfig cfg = small_config(nas::SearchStrategy::kRandom);
  cfg.wall_time_seconds = 300.0;
  cfg.telemetry = &b;
  const nas::SearchResult res = nas::SearchDriver(s, ds, cfg).run();
  EXPECT_GT(res.evals.size(), 0u);
  EXPECT_GT(second.publications(), 0u);
  EXPECT_EQ(b.metrics().snapshot().counter_value("ncnas_exporter_errors_total"),
            second.errors());
}

// ---- live journal sink ------------------------------------------------------

TEST(Journal, LiveExportStreamsAndCatchesUp) {
  TempFile file("live_journal.jsonl");
  Journal journal;
  journal.append(JournalEventType::kRunStarted, 0.0, kNoAgent, {{"agents", 3.0}});
  // Opening after the fact catches up on everything already buffered.
  ASSERT_TRUE(journal.open_live_export(file.path));
  EXPECT_TRUE(journal.live_export_open());
  journal.append(JournalEventType::kEvalFinished, 5.0, 1,
                 {{"reward", 0.5}, {"duration_s", 5.0}});

  // A reader tailing the file mid-run sees complete, parseable lines.
  {
    std::ifstream in(file.path);
    const std::vector<JournalEvent> seen = Journal::import_jsonl(in);
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].type, JournalEventType::kRunStarted);
    EXPECT_EQ(seen[1].type, JournalEventType::kEvalFinished);
    EXPECT_FLOAT_EQ(static_cast<float>(seen[1].field("reward")), 0.5f);
  }

  journal.append(JournalEventType::kRunFinished, 9.0);
  journal.close_live_export();
  EXPECT_FALSE(journal.live_export_open());

  std::ifstream in(file.path);
  const std::vector<JournalEvent> streamed = Journal::import_jsonl(in);
  const std::vector<JournalEvent> buffered = journal.snapshot();
  ASSERT_EQ(streamed.size(), buffered.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].type, buffered[i].type);
    EXPECT_DOUBLE_EQ(streamed[i].t, buffered[i].t);
    EXPECT_EQ(streamed[i].agent, buffered[i].agent);
    EXPECT_EQ(streamed[i].seq, buffered[i].seq);
  }
}

TEST(Journal, LiveExportFailureCountsAndDisables) {
  Journal journal;
  MetricsRegistry reg;
  Counter& errors = reg.counter("ncnas_exporter_errors_total");
  EXPECT_FALSE(journal.open_live_export("/nonexistent-dir/live.jsonl", false, &errors));
  EXPECT_FALSE(journal.live_export_open());
  EXPECT_GE(errors.value(), 1u);
  EXPECT_GE(journal.live_export_errors(), 1u);
  // The journal itself keeps working.
  journal.append(JournalEventType::kRunStarted, 0.0);
  EXPECT_EQ(journal.size(), 1u);
}

// ---- the full loop: exporter on a real search ------------------------------

struct CapturedRun {
  nas::SearchResult result;
  std::vector<std::uint64_t> seqs;
  std::vector<double> times;
  std::vector<std::size_t> offsets;
  std::vector<std::size_t> delta_sizes;
  std::vector<std::uint64_t> evals_counter;
  std::size_t journal_total = 0;
  MetricsSnapshot final_metrics;
  ProgressSnapshot final_progress;
};

CapturedRun run_with_exporter(nas::SearchStrategy strategy, const std::string& live_path) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  Telemetry t;
  t.enable_journal();
  ExporterConfig ecfg;
  ecfg.cadence_seconds = 0.0;  // publish on every driver tick: worst case
  ecfg.live_journal_path = live_path;
  Exporter& exporter = t.enable_exporter(std::move(ecfg));
  CapturedRun cap;
  exporter.add_sink([&cap](const PublishedSnapshot& snap) {
    cap.seqs.push_back(snap.seq);
    cap.times.push_back(snap.virtual_time);
    cap.offsets.push_back(snap.journal_offset);
    cap.delta_sizes.push_back(snap.journal_delta.size());
    cap.evals_counter.push_back(snap.metrics.counter_value("ncnas_evals_total"));
    cap.final_metrics = snap.metrics;
    cap.final_progress = snap.progress;
  });
  nas::SearchConfig cfg = small_config(strategy);
  cfg.telemetry = &t;
  cap.result = nas::SearchDriver(s, ds, cfg).run();
  cap.journal_total = t.journal()->size();
  return cap;
}

TEST(Exporter, SnapshotDeltasAreMonotonicAndStitchTheJournal) {
  const CapturedRun cap = run_with_exporter(nas::SearchStrategy::kA3C, "");
  ASSERT_GT(cap.seqs.size(), 2u);
  std::size_t stitched = 0;
  for (std::size_t i = 0; i < cap.seqs.size(); ++i) {
    EXPECT_EQ(cap.seqs[i], i + 1);  // strictly monotonic, gap-free
    if (i > 0) {
      EXPECT_GE(cap.times[i], cap.times[i - 1]);
      EXPECT_GE(cap.evals_counter[i], cap.evals_counter[i - 1]);  // counters only grow
    }
    EXPECT_EQ(cap.offsets[i], stitched);  // each delta starts where the last ended
    stitched += cap.delta_sizes[i];
  }
  // Concatenated deltas reconstruct the whole journal: nothing lost, nothing
  // duplicated, including the final kRunFinished flush.
  EXPECT_EQ(stitched, cap.journal_total);
  EXPECT_TRUE(cap.final_progress.finished);
}

TEST(Exporter, FinalScrapeReconcilesWithJournalSummary) {
  TempFile live("final_live.jsonl");
  const CapturedRun cap = run_with_exporter(nas::SearchStrategy::kA2C, live.path);

  // The counters in the last published metrics snapshot must agree exactly
  // with a replay of the live-streamed journal file — the "scrape at run end
  // == summarize_journal" contract.
  std::ifstream in(live.path);
  ASSERT_TRUE(in);
  const std::vector<JournalEvent> events = Journal::import_jsonl(in);
  const RunSummary sum = summarize_journal(events);
  EXPECT_TRUE(sum.has_run_finished);

  // The counters count every harvested completion; the journal records one
  // event per harvest. Raw event counts must match the counters exactly.
  std::map<JournalEventType, std::uint64_t> by_type;
  for (const JournalEvent& e : events) ++by_type[e.type];
  const MetricsSnapshot& m = cap.final_metrics;
  EXPECT_EQ(m.counter_value("ncnas_evals_total"),
            by_type[JournalEventType::kEvalFinished] + by_type[JournalEventType::kEvalCached]);
  EXPECT_EQ(m.counter_value("ncnas_real_evals_total"),
            by_type[JournalEventType::kEvalFinished]);
  EXPECT_EQ(m.counter_value("ncnas_cache_hits_total"),
            by_type[JournalEventType::kEvalCached]);
  EXPECT_EQ(m.counter_value("ncnas_eval_timeouts_total"),
            by_type[JournalEventType::kEvalTimeout]);
  EXPECT_EQ(m.counter_value("ncnas_ppo_updates_total"), sum.ppo_updates);
  EXPECT_EQ(m.counter_value("ncnas_ps_exchanges_total"), sum.ps_exchanges);
  EXPECT_EQ(m.counter_value("ncnas_exporter_errors_total"), 0u);

  // summarize_journal applies the driver's deadline filter, so its totals
  // reconcile with the SearchResult, not the raw counters.
  EXPECT_EQ(cap.result.evals.size(), sum.evals);
  EXPECT_EQ(cap.result.cache_hits, sum.cache_hits);
  EXPECT_EQ(cap.result.timeouts, sum.timeouts);
  EXPECT_EQ(cap.result.ppo_updates, sum.ppo_updates);
  EXPECT_EQ(cap.final_progress.evals_done, cap.result.evals.size());
}

TEST(Exporter, OnOffLeavesResultsBitIdentical) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  for (const nas::SearchStrategy strategy :
       {nas::SearchStrategy::kRandom, nas::SearchStrategy::kA3C, nas::SearchStrategy::kA2C,
        nas::SearchStrategy::kEvolution}) {
    const nas::SearchResult plain = nas::SearchDriver(s, ds, small_config(strategy)).run();

    Telemetry t;
    t.enable_watchdog();
    t.enable_profiler();
    t.enable_exporter(every_tick());  // every tick: maximum exposure
    nas::SearchConfig cfg = small_config(strategy);
    cfg.telemetry = &t;
    const nas::SearchResult observed = nas::SearchDriver(s, ds, cfg).run();

    ASSERT_EQ(plain.evals.size(), observed.evals.size()) << nas::strategy_name(strategy);
    for (std::size_t i = 0; i < plain.evals.size(); ++i) {
      EXPECT_EQ(plain.evals[i].arch, observed.evals[i].arch);
      EXPECT_EQ(plain.evals[i].reward, observed.evals[i].reward);
      EXPECT_DOUBLE_EQ(plain.evals[i].time, observed.evals[i].time);
      EXPECT_EQ(plain.evals[i].cache_hit, observed.evals[i].cache_hit);
    }
    EXPECT_EQ(plain.cache_hits, observed.cache_hits);
    EXPECT_EQ(plain.timeouts, observed.timeouts);
    EXPECT_EQ(plain.ppo_updates, observed.ppo_updates);
    EXPECT_EQ(plain.unique_archs, observed.unique_archs);
    EXPECT_DOUBLE_EQ(plain.end_time, observed.end_time);
    EXPECT_EQ(plain.converged_early, observed.converged_early);
    EXPECT_GT(t.exporter()->publications(), 0u) << nas::strategy_name(strategy);
  }
}

}  // namespace
}  // namespace ncnas::obs
