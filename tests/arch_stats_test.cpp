#include <gtest/gtest.h>

#include <sstream>

#include "ncnas/analytics/arch_stats.hpp"
#include "ncnas/space/spaces.hpp"

namespace ncnas::analytics {
namespace {

TEST(ArchStats, CountsUniqueAndModal) {
  const space::SearchSpace sp = space::nt3_small_space();
  space::ArchEncoding a(sp.num_decisions(), 0);
  space::ArchEncoding b = a;
  b[0] = 1;
  const ArchStats stats = compute_arch_stats(sp, {a, a, b});
  EXPECT_EQ(stats.archs, 3u);
  EXPECT_EQ(stats.unique, 2u);
  ASSERT_EQ(stats.decisions.size(), sp.num_decisions());
  EXPECT_EQ(stats.decisions[0].counts[0], 2u);
  EXPECT_EQ(stats.decisions[0].counts[1], 1u);
  EXPECT_EQ(stats.decisions[0].modal_option, 0u);
  EXPECT_NEAR(stats.decisions[0].modal_fraction, 2.0 / 3.0, 1e-9);
  // Decision 1 (and all others) are unanimous.
  EXPECT_NEAR(stats.decisions[1].modal_fraction, 1.0, 1e-9);
  EXPECT_EQ(stats.decisions[0].modal_op_name, "Identity");
}

TEST(ArchStats, ConcentrationBounds) {
  const space::SearchSpace sp = space::nt3_small_space();
  // All identical: concentration 1.0.
  space::ArchEncoding a(sp.num_decisions(), 2);
  const ArchStats converged = compute_arch_stats(sp, {a, a, a, a});
  EXPECT_NEAR(converged.concentration(), 1.0, 1e-9);
  // Spread over options: concentration < 1.
  tensor::Rng rng(3);
  std::vector<space::ArchEncoding> random;
  for (int i = 0; i < 50; ++i) random.push_back(sp.random_arch(rng));
  const ArchStats diffuse = compute_arch_stats(sp, random);
  EXPECT_LT(diffuse.concentration(), 0.7);
  EXPECT_GT(diffuse.concentration(), 0.1);
}

TEST(ArchStats, FromSearchResultFiltersByTime) {
  const space::SearchSpace sp = space::nt3_small_space();
  nas::SearchResult res;
  nas::EvalRecord early;
  early.time = 10.0;
  early.arch = space::ArchEncoding(sp.num_decisions(), 0);
  nas::EvalRecord late;
  late.time = 100.0;
  late.arch = space::ArchEncoding(sp.num_decisions(), 1);
  res.evals = {early, late};
  const ArchStats all = compute_arch_stats(sp, res, 0.0);
  EXPECT_EQ(all.archs, 2u);
  const ArchStats tail = compute_arch_stats(sp, res, 50.0);
  EXPECT_EQ(tail.archs, 1u);
  EXPECT_EQ(tail.decisions[0].modal_option, 1u);
}

TEST(ArchStats, EmptyInputIsSafe) {
  const space::SearchSpace sp = space::nt3_small_space();
  const ArchStats stats = compute_arch_stats(sp, std::vector<space::ArchEncoding>{});
  EXPECT_EQ(stats.archs, 0u);
  EXPECT_EQ(stats.unique, 0u);
  std::ostringstream os;
  print_arch_stats(os, stats);  // must not crash
  EXPECT_FALSE(os.str().empty());
}

TEST(ArchStats, PrintMentionsDecisions) {
  const space::SearchSpace sp = space::nt3_small_space();
  const ArchStats stats =
      compute_arch_stats(sp, {space::ArchEncoding(sp.num_decisions(), 1)});
  std::ostringstream os;
  print_arch_stats(os, stats);
  EXPECT_NE(os.str().find("C0/B0/N0"), std::string::npos);
  EXPECT_NE(os.str().find("Conv1D"), std::string::npos);
}

TEST(ArchStats, RejectsInvalidEncodings) {
  const space::SearchSpace sp = space::nt3_small_space();
  space::ArchEncoding bad(sp.num_decisions(), 0);
  bad[0] = 99;
  EXPECT_THROW((void)compute_arch_stats(sp, {bad}), std::invalid_argument);
}

}  // namespace
}  // namespace ncnas::analytics
