#include <gtest/gtest.h>

#include "ncnas/nn/layers.hpp"
#include "ncnas/nn/loss.hpp"
#include "ncnas/nn/metrics.hpp"

namespace ncnas::nn {
namespace {

using tensor::Rng;
using tensor::Tensor;

ForwardCtx eval_ctx() { return {.training = false, .rng = nullptr}; }

TEST(Activations, ApplyActValues) {
  const Tensor z = Tensor::of({-1.0f, 0.0f, 2.0f});
  const Tensor relu = apply_act(Act::kRelu, z);
  EXPECT_FLOAT_EQ(relu[0], 0.0f);
  EXPECT_FLOAT_EQ(relu[2], 2.0f);
  const Tensor th = apply_act(Act::kTanh, z);
  EXPECT_NEAR(th[0], std::tanh(-1.0f), 1e-6f);
  const Tensor sig = apply_act(Act::kSigmoid, z);
  EXPECT_NEAR(sig[1], 0.5f, 1e-6f);
}

TEST(Activations, SoftmaxRowsSumToOne) {
  const Tensor z = Tensor::of2d({{1, 2, 3}, {-5, 0, 5}});
  const Tensor y = apply_act(Act::kSoftmax, z);
  for (std::size_t r = 0; r < 2; ++r) {
    float s = 0.0f;
    for (std::size_t c = 0; c < 3; ++c) s += y(r, c);
    EXPECT_NEAR(s, 1.0f, 1e-5f);
  }
  EXPECT_GT(y(0, 2), y(0, 0));
}

TEST(Dense, OutputShapeAndLazyInit) {
  Rng rng(1);
  Dense d(7, Act::kLinear, rng);
  const FeatShape in[] = {FeatShape{4}};
  EXPECT_EQ(d.output_shape(in), FeatShape({7}));
  EXPECT_TRUE(d.parameters().empty());  // weights not yet materialized
  Tensor x({2, 4});
  const Tensor* inputs[] = {&x};
  ForwardCtx ctx = eval_ctx();
  const Tensor y = d.forward(inputs, ctx);
  EXPECT_EQ(y.shape(), tensor::Shape({2, 7}));
  EXPECT_EQ(d.parameters().size(), 2u);
  EXPECT_EQ(d.parameters()[0]->size(), 4u * 7u);
}

TEST(Dense, RejectsWidthChangeAfterInit) {
  Rng rng(1);
  Dense d(3, Act::kLinear, rng);
  Tensor x({1, 4});
  const Tensor* inputs[] = {&x};
  ForwardCtx ctx = eval_ctx();
  (void)d.forward(inputs, ctx);
  Tensor wrong({1, 5});
  const Tensor* wrong_in[] = {&wrong};
  EXPECT_THROW((void)d.forward(wrong_in, ctx), std::invalid_argument);
}

TEST(Dense, ZeroUnitsRejected) {
  Rng rng(1);
  EXPECT_THROW(Dense(0, Act::kLinear, rng), std::invalid_argument);
}

TEST(Dropout, EvalModeIsIdentity) {
  Dropout d(0.5f);
  Tensor x = Tensor::of2d({{1, 2}, {3, 4}});
  const Tensor* in[] = {&x};
  ForwardCtx ctx = eval_ctx();
  EXPECT_TRUE(d.forward(in, ctx) == x);
}

TEST(Dropout, TrainingDropsAndRescales) {
  Dropout d(0.5f);
  Tensor x = Tensor::full({1, 10000}, 1.0f);
  const Tensor* in[] = {&x};
  Rng rng(3);
  ForwardCtx ctx{.training = true, .rng = &rng};
  const Tensor y = d.forward(in, ctx);
  std::size_t zeros = 0;
  double mean = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y[i], 2.0f, 1e-5f);  // inverted dropout rescale
    }
    mean += y[i];
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.size(), 0.5, 0.03);
  EXPECT_NEAR(mean / y.size(), 1.0, 0.05);  // expectation preserved
}

TEST(Dropout, TrainingWithoutRngThrows) {
  Dropout d(0.3f);
  Tensor x({1, 4});
  const Tensor* in[] = {&x};
  ForwardCtx ctx{.training = true, .rng = nullptr};
  EXPECT_THROW((void)d.forward(in, ctx), std::invalid_argument);
}

TEST(Dropout, InvalidRateRejected) {
  EXPECT_THROW(Dropout(-0.1f), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0f), std::invalid_argument);
}

TEST(Conv1D, ValidPaddingShapes) {
  Rng rng(5);
  Conv1D conv(4, 3, rng);
  const FeatShape in[] = {FeatShape{10, 2}};
  EXPECT_EQ(conv.output_shape(in), FeatShape({8, 4}));
  const FeatShape too_short[] = {FeatShape{2, 2}};
  EXPECT_THROW((void)conv.output_shape(too_short), std::invalid_argument);
}

TEST(Conv1D, DetectsKnownPattern) {
  // A conv with hand-set weights acts as a sliding dot product.
  Rng rng(6);
  Conv1D conv(1, 2, rng);
  Tensor x({1, 4, 1});
  x(0, 0, 0) = 1;
  x(0, 1, 0) = 2;
  x(0, 2, 0) = 3;
  x(0, 3, 0) = 4;
  const Tensor* in[] = {&x};
  ForwardCtx ctx = eval_ctx();
  (void)conv.forward(in, ctx);  // materialize weights
  auto params = conv.parameters();
  params[0]->value[0] = 1.0f;  // w[offset 0]
  params[0]->value[1] = -1.0f; // w[offset 1]
  params[1]->value[0] = 0.0f;
  const Tensor y = conv.forward(in, ctx);
  EXPECT_EQ(y.shape(), tensor::Shape({1, 3, 1}));
  EXPECT_FLOAT_EQ(y(0, 0, 0), 1.0f - 2.0f);
  EXPECT_FLOAT_EQ(y(0, 2, 0), 3.0f - 4.0f);
}

TEST(MaxPool1D, KerasWindowSemantics) {
  MaxPool1D pool(2);
  Tensor x({1, 5, 1});
  for (std::size_t i = 0; i < 5; ++i) x(0, i, 0) = static_cast<float>(i);
  const Tensor* in[] = {&x};
  ForwardCtx ctx = eval_ctx();
  const Tensor y = pool.forward(in, ctx);
  // floor(5/2) = 2 windows; the trailing element is dropped.
  EXPECT_EQ(y.shape(), tensor::Shape({1, 2, 1}));
  EXPECT_FLOAT_EQ(y(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(y(0, 1, 0), 3.0f);
}

TEST(MaxPool1D, OversizedWindowIsGlobalPooling) {
  MaxPool1D pool(10);
  Tensor x({1, 4, 1});
  x(0, 2, 0) = 9.0f;
  const Tensor* in[] = {&x};
  ForwardCtx ctx = eval_ctx();
  const Tensor y = pool.forward(in, ctx);
  EXPECT_EQ(y.shape(), tensor::Shape({1, 1, 1}));
  EXPECT_FLOAT_EQ(y(0, 0, 0), 9.0f);
}

TEST(ConcatAndAdd, ShapeRules) {
  Concat cat;
  const FeatShape two[] = {FeatShape{3}, FeatShape{4}};
  EXPECT_EQ(cat.output_shape(two), FeatShape({7}));
  Add add;
  EXPECT_EQ(add.output_shape(two), FeatShape({4}));  // widest wins
  const FeatShape bad[] = {FeatShape{3, 2}};
  EXPECT_THROW((void)cat.output_shape(bad), std::invalid_argument);
}

TEST(CloneShared, SharesDenseParameters) {
  Rng rng(7);
  Dense donor(3, Act::kRelu, rng);
  Tensor x({1, 2});
  const Tensor* in[] = {&x};
  ForwardCtx ctx = eval_ctx();
  (void)donor.forward(in, ctx);
  const LayerPtr mirror = clone_shared(donor);
  const Tensor y1 = donor.forward(in, ctx);
  const Tensor y2 = mirror->forward(in, ctx);
  EXPECT_TRUE(y1 == y2);
  EXPECT_EQ(donor.parameters()[0].get(), mirror->parameters()[0].get());
}

TEST(CloneShared, SharesBeforeLazyInitToo) {
  // Mirror created *before* the donor ever ran forward must still share.
  Rng rng(8);
  Dense donor(3, Act::kLinear, rng);
  const LayerPtr mirror = clone_shared(donor);
  Tensor x({1, 2});
  const Tensor* in[] = {&x};
  ForwardCtx ctx = eval_ctx();
  (void)mirror->forward(in, ctx);  // mirror materializes the shared slot
  (void)donor.forward(in, ctx);
  EXPECT_EQ(donor.parameters()[0].get(), mirror->parameters()[0].get());
}

TEST(CloneShared, UnsupportedKindThrows) {
  Concat cat;
  EXPECT_THROW((void)clone_shared(cat), std::invalid_argument);
}

TEST(Loss, MseValueAndGradient) {
  const Tensor pred = Tensor::of2d({{1.0f}, {3.0f}});
  const Tensor target = Tensor::of2d({{0.0f}, {1.0f}});
  const LossValue lv = mse_loss(pred, target);
  EXPECT_NEAR(lv.loss, (1.0f + 4.0f) / 2.0f, 1e-6f);
  EXPECT_NEAR(lv.grad(0, 0), 2.0f / 2.0f * 1.0f, 1e-6f);
}

TEST(Loss, CrossEntropyPrefersCorrectClass) {
  const Tensor good = Tensor::of2d({{0.9f, 0.1f}});
  const Tensor bad = Tensor::of2d({{0.1f, 0.9f}});
  EXPECT_LT(cross_entropy_loss(good, {0}).loss, cross_entropy_loss(bad, {0}).loss);
}

TEST(Metrics, R2PerfectAndMeanPredictor) {
  const Tensor y = Tensor::of({1, 2, 3, 4});
  EXPECT_FLOAT_EQ(r2_score(y, y), 1.0f);
  const Tensor mean_pred = Tensor::full({4}, 2.5f);
  EXPECT_NEAR(r2_score(mean_pred, y), 0.0f, 1e-6f);
}

TEST(Metrics, AccuracyCountsArgmaxMatches) {
  const Tensor pred = Tensor::of2d({{0.9f, 0.1f}, {0.2f, 0.8f}, {0.6f, 0.4f}});
  const Tensor target = Tensor::of2d({{0.0f}, {1.0f}, {1.0f}});
  EXPECT_NEAR(accuracy_score(pred, target), 2.0f / 3.0f, 1e-6f);
}

}  // namespace
}  // namespace ncnas::nn
