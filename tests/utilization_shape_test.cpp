// Integration tests of the scheduling *shapes* the paper's utilization
// figures rest on — on tiny simulated clusters so they run in seconds:
//
//   - worker scaling (more workers per agent) lowers utilization relative to
//     agent scaling at the same worker count (Fig. 9's mechanism);
//   - the per-agent evaluation cache lowers late-search utilization for a
//     converging A3C search (Fig. 5's decay);
//   - A2C's barrier makes its mean utilization <= A3C's on the same problem.
#include <gtest/gtest.h>

#include <numeric>

#include "ncnas/nas/driver.hpp"
#include "ncnas/space/spaces.hpp"

namespace ncnas::nas {
namespace {

data::Dataset tiny_nt3() {
  data::Nt3Dims dims;
  dims.train = 64;
  dims.valid = 32;
  dims.length = 64;
  dims.motif = 6;
  return data::make_nt3(5, dims);
}

double mean_util(const SearchResult& res) {
  if (res.utilization.empty()) return 0.0;
  return std::accumulate(res.utilization.begin(), res.utilization.end(), 0.0) /
         static_cast<double>(res.utilization.size());
}

SearchConfig base_config(SearchStrategy strategy) {
  SearchConfig cfg;
  cfg.strategy = strategy;
  cfg.cluster = {.num_agents = 4, .workers_per_agent = 3};
  cfg.wall_time_seconds = 2400.0;
  cfg.fidelity = {.epochs = 1, .subset_fraction = 1.0};
  // High jitter: task-time variance is what makes batch synchrony expensive.
  cfg.cost = {.startup_seconds = 30.0, .seconds_per_megaunit = 10.0, .jitter_frac = 0.5,
              .timeout_seconds = 600.0};
  cfg.seed = 33;
  return cfg;
}

TEST(UtilizationShape, WorkerScalingWastesMoreThanAgentScaling) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();

  SearchConfig worker_scaled = base_config(SearchStrategy::kRandom);
  worker_scaled.cluster = {.num_agents = 2, .workers_per_agent = 12};
  SearchConfig agent_scaled = base_config(SearchStrategy::kRandom);
  agent_scaled.cluster = {.num_agents = 8, .workers_per_agent = 3};
  ASSERT_EQ(worker_scaled.cluster.total_workers(), agent_scaled.cluster.total_workers());

  const double util_worker = mean_util(SearchDriver(s, ds, worker_scaled).run());
  const double util_agent = mean_util(SearchDriver(s, ds, agent_scaled).run());
  // Waiting for the slowest of 12 tasks idles more worker-seconds than
  // waiting for the slowest of 3 — the paper's Fig. 9 mechanism.
  EXPECT_LT(util_worker, util_agent);
}

TEST(UtilizationShape, UtilizationWithinBounds) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  const SearchResult res = SearchDriver(s, ds, base_config(SearchStrategy::kRandom)).run();
  const double util = mean_util(res);
  EXPECT_GT(util, 0.3);  // the launcher keeps workers busy most of the time
  EXPECT_LE(util, 1.0 + 1e-9);
}

TEST(UtilizationShape, A2CBarrierCostsUtilization) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  const double a3c = mean_util(SearchDriver(s, ds, base_config(SearchStrategy::kA3C)).run());
  const double a2c = mean_util(SearchDriver(s, ds, base_config(SearchStrategy::kA2C)).run());
  // All agents wait for the slowest agent's batch: A2C can only lose.
  EXPECT_LE(a2c, a3c + 0.05);
}

TEST(UtilizationShape, CacheDisabledKeepsWorkersBusier) {
  // A converging A3C search with caching stops submitting tasks for repeated
  // architectures; with the cache off, every repeat occupies a worker again.
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  SearchConfig with_cache = base_config(SearchStrategy::kA3C);
  with_cache.wall_time_seconds = 3600.0;
  SearchConfig no_cache = with_cache;
  no_cache.use_cache = false;
  const SearchResult cached = SearchDriver(s, ds, with_cache).run();
  const SearchResult fresh = SearchDriver(s, ds, no_cache).run();
  // The cached run resolves many repeats without touching a worker; the
  // uncached run may only dedup *within* one batch (a handful of hits).
  EXPECT_GT(cached.cache_hits, 0u);
  EXPECT_LT(fresh.cache_hits, cached.cache_hits);
  EXPECT_LT(fresh.cache_hits, fresh.evals.size() / 20);
  // Fresh never converges early via the all-agents-cached criterion.
  EXPECT_FALSE(fresh.converged_early);
}

}  // namespace
}  // namespace ncnas::nas
