#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <thread>
#include <vector>

#include "ncnas/obs/telemetry.hpp"

namespace ncnas::obs {
namespace {

// ---- minimal recursive-descent JSON validator (well-formedness only) ------

struct JsonCursor {
  const std::string& s;
  std::size_t i = 0;

  void ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool eat(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool value();
  bool string() {
    ws();
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') ++i;
      ++i;
    }
    if (i >= s.size()) return false;
    ++i;
    return true;
  }
  bool number() {
    ws();
    const std::size_t start = i;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' || s[i] == 'e' ||
            s[i] == 'E' || s[i] == '-' || s[i] == '+')) {
      ++i;
    }
    return i > start;
  }
};

bool JsonCursor::value() {
  ws();
  if (i >= s.size()) return false;
  if (s[i] == '{') {
    ++i;
    if (eat('}')) return true;
    do {
      if (!string() || !eat(':') || !value()) return false;
    } while (eat(','));
    return eat('}');
  }
  if (s[i] == '[') {
    ++i;
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }
  if (s[i] == '"') return string();
  if (s.compare(i, 4, "true") == 0) {
    i += 4;
    return true;
  }
  if (s.compare(i, 5, "false") == 0) {
    i += 5;
    return true;
  }
  if (s.compare(i, 4, "null") == 0) {
    i += 4;
    return true;
  }
  return number();
}

bool is_valid_json(const std::string& text) {
  JsonCursor c{text};
  if (!c.value()) return false;
  c.ws();
  return c.i == text.size();
}

// ---- metrics ---------------------------------------------------------------

TEST(Metrics, CounterAndGaugeBasics) {
  MetricsRegistry reg;
  Counter& c = reg.counter("ncnas_test_total");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(&c, &reg.counter("ncnas_test_total"));  // same name, same instrument

  Gauge& g = reg.gauge("ncnas_test_gauge");
  g.set(2.5);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(Metrics, RegistryConcurrentUpdatesFromManyThreads) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Mix registration (map lock) and updates (atomics) across threads.
      Counter& c = reg.counter("ncnas_shared_total");
      Gauge& g = reg.gauge("ncnas_shared_gauge");
      Histogram& h = reg.histogram("ncnas_shared_hist", {1.0, 2.0, 4.0});
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        g.add(1.0);
        h.observe(static_cast<double>(i % 5));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("ncnas_shared_total"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snap.gauge_value("ncnas_shared_gauge"),
                   static_cast<double>(kThreads) * kPerThread);
  const HistogramSample* h = snap.histogram("ncnas_shared_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, HistogramBucketEdgesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0});
  h.observe(0.5);   // le=1
  h.observe(1.0);   // le=1 (edge is inclusive, Prometheus semantics)
  h.observe(1.5);   // le=2
  h.observe(2.0);   // le=2
  h.observe(3.0);   // +Inf
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 8.0);
}

TEST(Metrics, HistogramRejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Metrics, SnapshotQuantileUsesBucketEdges) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {1.0, 10.0, 100.0});
  for (int i = 0; i < 90; ++i) h.observe(0.5);
  for (int i = 0; i < 10; ++i) h.observe(50.0);
  const MetricsSnapshot snap = reg.snapshot();
  const HistogramSample* s = snap.histogram("h");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(s->quantile(0.95), 100.0);
  EXPECT_NEAR(s->mean(), (90 * 0.5 + 10 * 50.0) / 100.0, 1e-9);
}

TEST(Metrics, QuantileEdgeCases) {
  // Empty sample: any quantile is 0 (no data to estimate from).
  HistogramSample empty;
  empty.bounds = {1.0, 2.0};
  empty.buckets = {0, 0, 0};
  EXPECT_DOUBLE_EQ(empty.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(1.0), 0.0);

  // q = 0 returns the first non-empty bucket's edge; q = 1 the last.
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {1.0, 10.0, 100.0});
  h.observe(5.0);    // le=10
  h.observe(50.0);   // le=100
  const MetricsSnapshot snap = reg.snapshot();
  const HistogramSample* s = snap.histogram("h");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s->quantile(1.0), 100.0);
  // Out-of-range q clamps rather than reading out of bounds.
  EXPECT_DOUBLE_EQ(s->quantile(-1.0), s->quantile(0.0));
  EXPECT_DOUBLE_EQ(s->quantile(2.0), s->quantile(1.0));

  // All observations in the +Inf overflow bucket: report the last finite edge
  // (the best bound the histogram can state).
  Histogram& over = reg.histogram("over", {1.0, 2.0});
  over.observe(100.0);
  over.observe(200.0);
  const MetricsSnapshot over_snap = reg.snapshot();
  const HistogramSample* o = over_snap.histogram("over");
  ASSERT_NE(o, nullptr);
  EXPECT_DOUBLE_EQ(o->quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(o->quantile(1.0), 2.0);
}

TEST(Metrics, MakeHistogramSampleMatchesHistogramSemantics) {
  const std::vector<double> values{0.5, 1.0, 1.5, 2.0, 3.0};
  const HistogramSample s = make_histogram_sample("s", {1.0, 2.0}, values);
  ASSERT_EQ(s.buckets.size(), 3u);
  EXPECT_EQ(s.buckets[0], 2u);  // le=1 is inclusive, Prometheus semantics
  EXPECT_EQ(s.buckets[1], 2u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 8.0);
  EXPECT_THROW(make_histogram_sample("bad", {2.0, 1.0}, values), std::invalid_argument);
}

TEST(Metrics, PrometheusDumpShape) {
  MetricsRegistry reg;
  reg.counter("ncnas_evals_total").inc(3);
  reg.gauge("ncnas_streak").set(1.5);
  reg.histogram("ncnas_lat", {1.0, 2.0}).observe(1.5);
  std::ostringstream os;
  reg.dump_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE ncnas_evals_total counter"), std::string::npos);
  EXPECT_NE(text.find("ncnas_evals_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ncnas_streak gauge"), std::string::npos);
  EXPECT_NE(text.find("ncnas_lat_bucket{le=\"2\"} 1"), std::string::npos);
  EXPECT_NE(text.find("ncnas_lat_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("ncnas_lat_count 1"), std::string::npos);
}

TEST(Metrics, ExpBucketsLayout) {
  const std::vector<double> b = exp_buckets(1.0, 2.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[3], 8.0);
  EXPECT_THROW(exp_buckets(0.0, 2.0, 3), std::invalid_argument);
}

// ---- trace -----------------------------------------------------------------

TEST(Trace, RingBufferWraparoundKeepsNewestOldestFirst) {
  TraceRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.instant("e" + std::to_string(i), "t", static_cast<double>(i), 0);
  }
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  const std::vector<TraceEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "e6");
  EXPECT_EQ(events[3].name, "e9");
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
}

TEST(Trace, SpanAndInstantCarryVirtualMicroseconds) {
  TraceRecorder rec(16);
  rec.span("cycle", "driver", 2.0, 0.5, 3, {{"batch", 11.0}});
  rec.instant("ppo", "rl", 2.5, 3);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_DOUBLE_EQ(events[0].ts_us, 2.0e6);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 0.5e6);
  EXPECT_EQ(events[0].tid, 3u);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].key, "batch");
  EXPECT_EQ(events[1].phase, 'i');
}

TEST(Trace, ChromeExportIsWellFormedJson) {
  TraceRecorder rec(64);
  rec.span("eval \"quoted\"\n", "exec", 0.0, 1.0, 0, {{"reward", 0.25}, {"timed_out", 0.0}});
  rec.instant("ppo_update", "rl", 1.0, 1, {{"approx_kl", 1e-4}});
  rec.span("a2c_barrier_wait", "ps", 1.5, 2.5, 2);
  std::ostringstream os;
  TraceRecorder::export_chrome(rec.snapshot(), os);
  const std::string json = os.str();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(Trace, JsonlExportOneValidObjectPerLine) {
  TraceRecorder rec(8);
  rec.instant("a", "t", 0.0, 0);
  rec.span("b", "t", 0.0, 1.0, 1);
  std::ostringstream os;
  TraceRecorder::export_jsonl(rec.snapshot(), os);
  std::istringstream lines(os.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(is_valid_json(line)) << line;
    ++count;
  }
  EXPECT_EQ(count, 2);
}

TEST(Trace, ChromeExportSurfacesDroppedEventCount) {
  TraceRecorder rec(2);
  for (int i = 0; i < 5; ++i) rec.instant("e", "t", static_cast<double>(i), 0);
  EXPECT_EQ(rec.dropped(), 3u);
  std::ostringstream os;
  TraceRecorder::export_chrome(rec.snapshot(), os, rec.dropped());
  const std::string json = os.str();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"droppedEvents\":3"), std::string::npos);
}

TEST(Trace, JsonlExportAppendsDroppedMetaLineOnlyWhenLossy) {
  TraceRecorder rec(2);
  rec.instant("a", "t", 0.0, 0);
  std::ostringstream lossless;
  TraceRecorder::export_jsonl(rec.snapshot(), lossless, rec.dropped());
  EXPECT_EQ(lossless.str().find("ncnas.trace"), std::string::npos);

  for (int i = 0; i < 5; ++i) rec.instant("b", "t", static_cast<double>(i), 0);
  std::ostringstream lossy;
  TraceRecorder::export_jsonl(rec.snapshot(), lossy, rec.dropped());
  std::istringstream lines(lossy.str());
  std::string line, last;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(is_valid_json(line)) << line;
    last = line;
  }
  EXPECT_NE(last.find("\"meta\":\"ncnas.trace\""), std::string::npos);
  EXPECT_NE(last.find("\"dropped\":4"), std::string::npos);
}

TEST(Trace, ConcurrentRecordingLosesNothingBelowCapacity) {
  TraceRecorder rec(1 << 12);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        rec.instant("e", "t", static_cast<double>(i), static_cast<std::uint32_t>(t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(rec.recorded(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.snapshot().size(), static_cast<std::size_t>(kThreads) * kPerThread);
}

// ---- telemetry bundle ------------------------------------------------------

TEST(Telemetry, SnapshotCapturesBothSides) {
  Telemetry tel(32);
  tel.metrics().counter("c").inc(2);
  tel.trace().instant("e", "t", 0.0, 0);
  const TelemetrySnapshot snap = tel.snapshot();
  EXPECT_EQ(snap.metrics.counter_value("c"), 2u);
  EXPECT_EQ(snap.trace.size(), 1u);

  std::ostringstream prom, chrome;
  tel.dump_prometheus(prom);
  tel.export_chrome_trace(chrome);
  EXPECT_NE(prom.str().find("c 2"), std::string::npos);
  EXPECT_TRUE(is_valid_json(chrome.str()));
}

TEST(Stopwatch, MeasuresRealTimeAndScopedTimerObserves) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("ncnas_wall_ms", {1e6});
  {
    ScopedTimer timer(&h);
    Stopwatch w;
    EXPECT_GE(w.elapsed_seconds(), 0.0);
  }
  EXPECT_EQ(h.count(), 1u);
  { ScopedTimer noop(nullptr); }  // null histogram must be safe
  EXPECT_EQ(h.count(), 1u);
}

}  // namespace
}  // namespace ncnas::obs
