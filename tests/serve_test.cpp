// NAS-as-a-service tests: DRR gang-scheduler fairness and determinism,
// admission control and backpressure, the cross-tenant SharedEvalCache
// (keying, accounting, first-writer-wins), and the headline guarantees —
// a tenant searched in preempted time slices returns the standalone
// SearchResult bit-identically (chaos plans included), and the seeded
// shared-cache scenario reproduces exactly across reruns.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "ncnas/exec/fault.hpp"
#include "ncnas/exec/shared_cache.hpp"
#include "ncnas/obs/exporter.hpp"
#include "ncnas/obs/journal.hpp"
#include "ncnas/obs/telemetry.hpp"
#include "ncnas/serve/server.hpp"
#include "ncnas/space/spaces.hpp"

namespace ncnas::serve {
namespace {

data::Dataset tiny_nt3() {
  data::Nt3Dims dims;
  dims.train = 64;
  dims.valid = 32;
  dims.length = 64;
  dims.motif = 6;
  return data::make_nt3(5, dims);
}

nas::SearchConfig small_config(nas::SearchStrategy strategy, std::uint64_t seed = 11) {
  nas::SearchConfig cfg;
  cfg.strategy = strategy;
  cfg.cluster = {.num_agents = 3, .workers_per_agent = 4};
  cfg.wall_time_seconds = 600.0;
  cfg.fidelity = {.epochs = 1, .subset_fraction = 1.0};
  cfg.cost = {.startup_seconds = 20.0, .seconds_per_megaunit = 1.0, .timeout_seconds = 600.0};
  cfg.seed = seed;
  return cfg;
}

exec::FaultPlan chaos_plan() {
  exec::FaultPlan plan;
  plan.seed = 7;
  plan.eval_failure_prob = 0.25;
  plan.slowdown_prob = 0.15;
  plan.slowdown_multiple = 2.0;
  plan.lost_result_prob = 0.10;
  plan.ps_drop_prob = 0.15;
  plan.ps_delay_prob = 0.15;
  plan.ps_delay_seconds = 15.0;
  plan.max_retries = 2;
  plan.backoff_base_seconds = 5.0;
  plan.backoff_cap_seconds = 40.0;
  plan.barrier_timeout_seconds = 120.0;
  plan.worker_crashes.push_back({.agent = 1, .worker = 0, .time = 300.0});
  return plan;
}

std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ncnas_serve_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Every field the search computed must match exactly; only the process
/// lineage counters (checkpoints_written, resumes) may differ between a
/// sliced and an uninterrupted run.
void expect_bit_identical(const nas::SearchResult& a, const nas::SearchResult& b) {
  ASSERT_EQ(a.evals.size(), b.evals.size());
  for (std::size_t i = 0; i < a.evals.size(); ++i) {
    SCOPED_TRACE("eval " + std::to_string(i));
    const nas::EvalRecord& x = a.evals[i];
    const nas::EvalRecord& y = b.evals[i];
    EXPECT_DOUBLE_EQ(x.time, y.time);
    EXPECT_EQ(x.reward, y.reward);
    EXPECT_EQ(x.params, y.params);
    EXPECT_DOUBLE_EQ(x.sim_duration, y.sim_duration);
    EXPECT_EQ(x.cache_hit, y.cache_hit);
    EXPECT_EQ(x.shared_hit, y.shared_hit);
    EXPECT_EQ(x.timed_out, y.timed_out);
    EXPECT_EQ(x.failed, y.failed);
    EXPECT_EQ(x.attempts, y.attempts);
    EXPECT_EQ(x.rung, y.rung);
    EXPECT_EQ(x.agent, y.agent);
    EXPECT_EQ(x.arch, y.arch);
  }
  EXPECT_DOUBLE_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.converged_early, b.converged_early);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.shared_cache_hits, b.shared_cache_hits);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.unique_archs, b.unique_archs);
  EXPECT_EQ(a.ppo_updates, b.ppo_updates);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.exhausted, b.exhausted);
  EXPECT_EQ(a.lost_results, b.lost_results);
  EXPECT_EQ(a.crashed_workers, b.crashed_workers);
  EXPECT_EQ(a.dead_agents, b.dead_agents);
  EXPECT_EQ(a.ladder_trainings, b.ladder_trainings);
  EXPECT_EQ(a.ladder_promotions, b.ladder_promotions);
  EXPECT_EQ(a.ladder_warm_starts, b.ladder_warm_starts);
  EXPECT_EQ(a.ladder_rung_hits, b.ladder_rung_hits);
  ASSERT_EQ(a.utilization.size(), b.utilization.size());
  for (std::size_t i = 0; i < a.utilization.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.utilization[i], b.utilization[i]);
  }
}

// ---------------------------------------------------------------- scheduler

TEST(DrrScheduler, EqualWeightsAlternateOnSaturatedPool) {
  // Two equal tenants, pool fits exactly one gang: grants must alternate —
  // cumulative counts never differ by more than one after any round.
  DrrScheduler sched(12);
  sched.add_tenant(1, 1.0, 12);
  sched.add_tenant(2, 1.0, 12);
  for (int round = 0; round < 50; ++round) {
    const auto grants = sched.next_round();
    ASSERT_EQ(grants.size(), 1u) << "saturated pool fits exactly one gang";
    sched.release(grants[0]);
    const auto a = static_cast<long>(sched.grants(1));
    const auto b = static_cast<long>(sched.grants(2));
    EXPECT_LE(std::abs(a - b), 1) << "after round " << round;
  }
  EXPECT_EQ(sched.grants(1) + sched.grants(2), 50u);
}

TEST(DrrScheduler, WeightsSkewSliceSharesProportionally) {
  DrrScheduler sched(10);
  sched.add_tenant(1, 2.0, 10);
  sched.add_tenant(2, 1.0, 10);
  for (int round = 0; round < 60; ++round) {
    for (const std::uint32_t id : sched.next_round()) sched.release(id);
  }
  const double ratio =
      static_cast<double>(sched.grants(1)) / static_cast<double>(sched.grants(2));
  EXPECT_NEAR(ratio, 2.0, 0.15) << sched.grants(1) << " vs " << sched.grants(2);
}

TEST(DrrScheduler, WorkConservingWhenPoolFitsEveryGang) {
  DrrScheduler sched(24);
  sched.add_tenant(1, 1.0, 12);
  sched.add_tenant(2, 3.0, 12);
  for (int round = 0; round < 10; ++round) {
    const auto grants = sched.next_round();
    EXPECT_EQ(grants.size(), 2u) << "free slots must never idle while a gang fits";
    for (const std::uint32_t id : grants) sched.release(id);
  }
}

TEST(DrrScheduler, GrantSequenceIsDeterministic) {
  std::vector<std::vector<std::uint32_t>> first;
  for (int rep = 0; rep < 2; ++rep) {
    DrrScheduler sched(16);
    sched.add_tenant(1, 2.0, 8);
    sched.add_tenant(2, 1.0, 16);
    sched.add_tenant(3, 1.0, 8);
    std::vector<std::vector<std::uint32_t>> seq;
    for (int round = 0; round < 40; ++round) {
      auto grants = sched.next_round();
      for (const std::uint32_t id : grants) sched.release(id);
      seq.push_back(std::move(grants));
    }
    if (rep == 0) {
      first = std::move(seq);
    } else {
      EXPECT_EQ(first, seq);
    }
  }
}

TEST(DrrScheduler, HoldingTenantReceivesNoSecondGrant) {
  DrrScheduler sched(24);
  sched.add_tenant(1, 1.0, 12);
  auto grants = sched.next_round();
  ASSERT_EQ(grants, std::vector<std::uint32_t>{1});
  EXPECT_EQ(sched.free_slots(), 12u);
  // Still holding: the next round must not double-grant the same gang.
  EXPECT_TRUE(sched.next_round().empty());
  sched.release(1);
  EXPECT_EQ(sched.free_slots(), 24u);
  EXPECT_EQ(sched.next_round(), std::vector<std::uint32_t>{1});
}

TEST(DrrScheduler, IdleTenantsHoardNoCredit) {
  DrrScheduler sched(12);
  sched.add_tenant(1, 1.0, 12);
  sched.add_tenant(2, 1.0, 12);
  sched.set_runnable(2, false);
  for (int round = 0; round < 10; ++round) {
    const auto grants = sched.next_round();
    ASSERT_EQ(grants, std::vector<std::uint32_t>{1});
    sched.release(1);
  }
  EXPECT_EQ(sched.deficit(2), 0.0) << "idle tenants accrue nothing";
  sched.set_runnable(2, true);
  // Reactivation competes fairly from zero — no burst of stored credit.
  for (int round = 0; round < 20; ++round) {
    for (const std::uint32_t id : sched.next_round()) sched.release(id);
    EXPECT_LE(std::abs(static_cast<long>(sched.grants(1)) - 10 -
                       static_cast<long>(sched.grants(2))),
              1);
  }
}

TEST(DrrScheduler, RemoveTenantFreesHeldSlots) {
  DrrScheduler sched(12);
  sched.add_tenant(1, 1.0, 12);
  sched.add_tenant(2, 1.0, 12);
  ASSERT_EQ(sched.next_round(), std::vector<std::uint32_t>{1});
  EXPECT_EQ(sched.free_slots(), 0u);
  sched.remove_tenant(1);
  EXPECT_EQ(sched.free_slots(), 12u);
  EXPECT_EQ(sched.next_round(), std::vector<std::uint32_t>{2});
}

TEST(DrrScheduler, RejectsUnschedulableRegistrations) {
  DrrScheduler sched(12);
  sched.add_tenant(1, 1.0, 12);
  EXPECT_THROW(sched.add_tenant(1, 1.0, 4), std::invalid_argument);   // duplicate
  EXPECT_THROW(sched.add_tenant(2, 0.0, 4), std::invalid_argument);   // weight
  EXPECT_THROW(sched.add_tenant(2, 1.0, 0), std::invalid_argument);   // empty gang
  EXPECT_THROW(sched.add_tenant(2, 1.0, 13), std::invalid_argument);  // oversized
  EXPECT_THROW(sched.release(9), std::invalid_argument);              // unknown id
  EXPECT_THROW(DrrScheduler(0), std::invalid_argument);
}

// ------------------------------------------------------------- shared cache

TEST(SharedEvalCache, ContextKeyCoversDatasetFidelityAndCost) {
  const data::Dataset ds = tiny_nt3();
  const exec::FidelityConfig fid{.epochs = 1, .subset_fraction = 1.0};
  const exec::CostModel cost{};
  const std::string base = exec::eval_context_key(ds, fid, cost);
  EXPECT_FALSE(base.empty());
  EXPECT_EQ(base, exec::eval_context_key(ds, fid, cost)) << "key must be stable";

  data::Nt3Dims other_dims;
  other_dims.train = 64;
  other_dims.valid = 32;
  other_dims.length = 32;  // different sequence length
  other_dims.motif = 6;
  const data::Dataset other_ds = data::make_nt3(5, other_dims);
  EXPECT_NE(base, exec::eval_context_key(other_ds, fid, cost));

  exec::FidelityConfig fid2 = fid;
  fid2.epochs = 2;
  EXPECT_NE(base, exec::eval_context_key(ds, fid2, cost));
  fid2 = fid;
  fid2.subset_fraction = 0.5;
  EXPECT_NE(base, exec::eval_context_key(ds, fid2, cost));
  fid2 = fid;
  fid2.learning_rate = 0.01f;
  EXPECT_NE(base, exec::eval_context_key(ds, fid2, cost));
  fid2 = fid;
  fid2.valid_fraction = 0.5;
  EXPECT_NE(base, exec::eval_context_key(ds, fid2, cost));

  exec::CostModel cost2 = cost;
  cost2.timeout_seconds = 1.0;
  EXPECT_NE(base, exec::eval_context_key(ds, fid, cost2));
}

TEST(SharedEvalCache, FirstWriterWinsWithPerTenantAccounting) {
  exec::SharedEvalCache cache;
  exec::EvalResult r1;
  r1.reward = 0.5f;
  EXPECT_FALSE(cache.lookup("ctx", "arch", 1).has_value());  // miss for tenant 1
  cache.insert("ctx", "arch", 1, r1);

  // Tenant 2 hits an entry tenant 1 trained: a cross-tenant hit, flagged.
  const auto hit = cache.lookup("ctx", "arch", 2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->reward, 0.5f);
  EXPECT_TRUE(hit->cache_hit);
  EXPECT_TRUE(hit->shared_hit);

  // Same (context, arch) from another tenant must not overwrite the entry.
  exec::EvalResult r2;
  r2.reward = 0.9f;
  cache.insert("ctx", "arch", 2, r2);
  EXPECT_EQ(cache.lookup("ctx", "arch", 2)->reward, 0.5f);
  EXPECT_EQ(cache.size(), 1u);

  // A different context is a different entry even for the same arch.
  EXPECT_FALSE(cache.lookup("ctx2", "arch", 1).has_value());

  const exec::SharedEvalCache::Stats t1 = cache.stats(1);
  const exec::SharedEvalCache::Stats t2 = cache.stats(2);
  EXPECT_EQ(t1.misses, 2u);  // the initial probe + the ctx2 probe
  EXPECT_EQ(t1.inserts, 1u);
  EXPECT_EQ(t2.hits, 2u);
  EXPECT_EQ(t2.cross_tenant_hits, 2u);
  const exec::SharedEvalCache::Stats totals = cache.totals();
  EXPECT_EQ(totals.hits, 2u);
  EXPECT_EQ(totals.misses, 2u);

  cache.erase("ctx", "arch");
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup("ctx", "arch", 1).has_value());
}

TEST(SharedEvalCache, ZeroCapKeepsTheClassicUnboundedStore) {
  exec::SharedEvalCache cache;  // default max_entries = 0
  EXPECT_EQ(cache.max_entries(), 0u);
  exec::EvalResult r;
  for (int i = 0; i < 100; ++i) {
    r.reward = static_cast<float>(i);
    cache.insert("ctx", "arch" + std::to_string(i), 1, r);
  }
  EXPECT_EQ(cache.size(), 100u);
  EXPECT_EQ(cache.stats(1).evictions, 0u);
  EXPECT_TRUE(cache.lookup("ctx", "arch0", 1).has_value()) << "nothing may be evicted at cap 0";
}

TEST(SharedEvalCache, BoundedStoreEvictsOldestInsertFirst) {
  exec::SharedEvalCache cache(2);
  EXPECT_EQ(cache.max_entries(), 2u);
  exec::EvalResult r;
  r.reward = 0.1f;
  cache.insert("ctx", "a", 1, r);
  r.reward = 0.2f;
  cache.insert("ctx", "b", 2, r);
  EXPECT_EQ(cache.size(), 2u);

  // Third insert exceeds the bound: the oldest entry ("a") goes, and the
  // entry just inserted ("c") must survive its own insert.
  r.reward = 0.3f;
  cache.insert("ctx", "c", 1, r);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.lookup("ctx", "a", 1).has_value());
  ASSERT_TRUE(cache.lookup("ctx", "b", 1).has_value());
  ASSERT_TRUE(cache.lookup("ctx", "c", 1).has_value());
  EXPECT_EQ(cache.lookup("ctx", "c", 1)->reward, 0.3f);

  // The eviction is charged to the evicted entry's owner, not the inserter.
  EXPECT_EQ(cache.stats(1).evictions, 1u);
  EXPECT_EQ(cache.stats(2).evictions, 0u);
  EXPECT_EQ(cache.totals().evictions, 1u);

  // A losing duplicate insert consumes no slot and evicts nothing.
  r.reward = 0.9f;
  cache.insert("ctx", "b", 1, r);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.totals().evictions, 1u);
  EXPECT_EQ(cache.lookup("ctx", "b", 1)->reward, 0.2f);
}

TEST(SharedEvalCache, EvictionOrderIsAPureFunctionOfTheRequestSequence) {
  // Two caches fed the identical request sequence must retain the identical
  // entry set — the determinism clause the driver's bit-identity contract
  // leans on when a bounded cache is shared across tenants.
  const auto drive = [](exec::SharedEvalCache& cache) {
    exec::EvalResult r;
    for (int i = 0; i < 12; ++i) {
      r.reward = static_cast<float>(i) * 0.125f;
      const std::uint32_t tenant = 1 + static_cast<std::uint32_t>(i % 3);
      (void)cache.lookup("ctx", "arch" + std::to_string(i / 2), tenant);
      cache.insert("ctx", "arch" + std::to_string(i), tenant, r);
    }
  };
  exec::SharedEvalCache first(5);
  exec::SharedEvalCache second(5);
  drive(first);
  drive(second);
  ASSERT_EQ(first.size(), 5u);
  ASSERT_EQ(second.size(), 5u);
  for (int i = 0; i < 12; ++i) {
    const std::string arch = "arch" + std::to_string(i);
    const auto a = first.lookup("ctx", arch, 9);
    const auto b = second.lookup("ctx", arch, 9);
    EXPECT_EQ(a.has_value(), b.has_value()) << arch << " retained in one cache but not the other";
    if (a.has_value() && b.has_value()) EXPECT_EQ(a->reward, b->reward);
    // FIFO with 12 inserts and cap 5 keeps exactly the newest five.
    EXPECT_EQ(a.has_value(), i >= 7) << arch;
  }
  for (std::uint32_t tenant = 1; tenant <= 3; ++tenant) {
    EXPECT_EQ(first.stats(tenant).evictions, second.stats(tenant).evictions);
    EXPECT_EQ(first.stats(tenant).hits, second.stats(tenant).hits);
    EXPECT_EQ(first.stats(tenant).misses, second.stats(tenant).misses);
  }
  EXPECT_EQ(first.totals().evictions, 7u);
}

// ------------------------------------------------------------------ server

TEST(SearchServer, AdmissionControlAndBackpressure) {
  const space::SearchSpace space = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  ServeConfig scfg;
  scfg.total_slots = 12;
  scfg.quantum_seconds = 300.0;
  scfg.max_tenants = 1;
  scfg.state_dir = scratch_dir("admission");
  SearchServer server(scfg);

  const auto spec = [&](const std::string& name) {
    TenantSpec s;
    s.name = name;
    s.space = &space;
    s.dataset = &ds;
    s.config = small_config(nas::SearchStrategy::kRandom);
    s.config.max_evaluations = 24;
    return s;
  };

  TenantSpec bad_name = spec("has space");
  EXPECT_THROW((void)server.submit(std::move(bad_name)), AdmissionError);
  TenantSpec oversized = spec("giant");
  oversized.config.cluster = {.num_agents = 4, .workers_per_agent = 4};
  EXPECT_THROW((void)server.submit(std::move(oversized)), AdmissionError);
  TenantSpec under_quota = spec("pinched");
  under_quota.quota.max_slots = 6;  // gang of 12 can never fit its own cap
  EXPECT_THROW((void)server.submit(std::move(under_quota)), AdmissionError);

  const std::uint32_t first = server.submit(spec("alpha"));
  EXPECT_EQ(server.state(first), TenantState::kQueued);
  EXPECT_THROW((void)server.submit(spec("alpha")), AdmissionError);  // duplicate name
  EXPECT_THROW((void)server.submit(spec("beta")), AdmissionError);   // server full
  EXPECT_EQ(server.rejections(), 5u);

  // Backpressure, not starvation: capacity frees when a tenant finishes.
  server.run();
  EXPECT_EQ(server.state(first), TenantState::kFinished);
  const std::uint32_t second = server.submit(spec("beta"));
  server.run();
  EXPECT_EQ(server.state(second), TenantState::kFinished);
}

TEST(SearchServer, MultiTenantRunMatchesStandaloneForAllStrategies) {
  // Four tenants — one per strategy — compete for a pool that fits one gang,
  // so every search is repeatedly preempted and resumed. With no shared
  // cache, each tenant's SearchResult must be bit-identical to its own
  // uninterrupted standalone run (the process-lineage counters aside).
  const space::SearchSpace space = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  const nas::SearchStrategy strategies[] = {
      nas::SearchStrategy::kA3C, nas::SearchStrategy::kA2C, nas::SearchStrategy::kRandom,
      nas::SearchStrategy::kEvolution};

  ServeConfig scfg;
  scfg.total_slots = 12;
  scfg.quantum_seconds = 150.0;
  scfg.max_tenants = 4;
  scfg.state_dir = scratch_dir("strategies");
  SearchServer server(scfg);
  std::vector<std::uint32_t> ids;
  for (const nas::SearchStrategy strategy : strategies) {
    TenantSpec spec;
    spec.name = std::string("t-") + nas::strategy_name(strategy);
    spec.space = &space;
    spec.dataset = &ds;
    spec.config = small_config(strategy, /*seed=*/17);
    ids.push_back(server.submit(std::move(spec)));
  }
  server.run();

  for (std::size_t i = 0; i < ids.size(); ++i) {
    SCOPED_TRACE(nas::strategy_name(strategies[i]));
    const TenantSession& session = server.session(ids[i]);
    EXPECT_GT(session.preemptions(), 0u) << "saturated pool must have preempted";
    const nas::SearchResult& served = server.result(ids[i]);
    EXPECT_EQ(served.resumes, session.preemptions());
    const nas::SearchResult standalone =
        nas::SearchDriver(space, ds, small_config(strategies[i], 17)).run();
    expect_bit_identical(served, standalone);
  }
}

TEST(SearchServer, LateTenantArrivalIsDeterministicAndBitIdentical) {
  // A tenant submitted mid-scenario (between step() calls) joins the DRR
  // competition at a deterministic round, so rerunning the whole scenario —
  // same submissions at the same rounds — must reproduce the grant sequence,
  // slice counts, preemptions, and every per-tenant result bit-for-bit. The
  // late tenant itself still matches its own uninterrupted standalone run.
  const space::SearchSpace space = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();

  struct Run {
    std::size_t rounds = 0;
    std::vector<std::uint64_t> grants;
    std::vector<std::size_t> slices;
    std::vector<std::size_t> preemptions;
    std::vector<nas::SearchResult> results;
  };
  const auto scenario = [&](const std::string& dir) {
    ServeConfig scfg;
    scfg.total_slots = 12;
    scfg.quantum_seconds = 150.0;
    scfg.max_tenants = 3;
    scfg.state_dir = scratch_dir(dir);
    SearchServer server(scfg);

    const auto spec = [&](const std::string& name, nas::SearchStrategy strategy,
                          std::uint64_t seed) {
      TenantSpec s;
      s.name = name;
      s.space = &space;
      s.dataset = &ds;
      s.config = small_config(strategy, seed);
      return s;
    };
    std::vector<std::uint32_t> ids;
    ids.push_back(server.submit(spec("early-a", nas::SearchStrategy::kRandom, 23)));
    ids.push_back(server.submit(spec("early-b", nas::SearchStrategy::kA2C, 23)));
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(server.step()) << "early tenants must still be running at round " << i;
    }
    ids.push_back(server.submit(spec("late", nas::SearchStrategy::kEvolution, 29)));
    server.run();

    Run out;
    out.rounds = server.rounds();
    for (std::uint32_t id : ids) {
      EXPECT_EQ(server.state(id), TenantState::kFinished);
      out.grants.push_back(server.scheduler().grants(id));
      out.slices.push_back(server.session(id).slices());
      out.preemptions.push_back(server.session(id).preemptions());
      out.results.push_back(server.result(id));
    }
    return out;
  };

  const Run a = scenario("late-arrival-a");
  const Run b = scenario("late-arrival-b");
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.grants, b.grants);
  EXPECT_EQ(a.slices, b.slices);
  EXPECT_EQ(a.preemptions, b.preemptions);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    SCOPED_TRACE("tenant " + std::to_string(i));
    expect_bit_identical(a.results[i], b.results[i]);
  }
  EXPECT_GT(a.grants.back(), 0u) << "the late tenant must have been scheduled";
  const nas::SearchResult standalone =
      nas::SearchDriver(space, ds, small_config(nas::SearchStrategy::kEvolution, 29)).run();
  expect_bit_identical(a.results.back(), standalone);
}

TEST(SearchServer, PreemptionJournalReconcilesWithResult) {
  const space::SearchSpace space = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  ServeConfig scfg;
  scfg.total_slots = 12;
  scfg.quantum_seconds = 120.0;
  scfg.state_dir = scratch_dir("journal");
  SearchServer server(scfg);
  TenantSpec spec;
  spec.name = "solo";
  spec.space = &space;
  spec.dataset = &ds;
  spec.config = small_config(nas::SearchStrategy::kA3C);
  const std::uint32_t id = server.submit(std::move(spec));
  server.run();

  // The per-tenant journal is stitched with merge_resumed_journal across
  // every preemption; its replay must reconcile with the final result
  // exactly the way analyze_log cross-checks a standalone lineage.
  const nas::SearchResult& res = server.result(id);
  const obs::RunSummary sum = obs::summarize_journal(server.journal(id));
  EXPECT_GT(sum.resumes, 0u);
  EXPECT_EQ(sum.resumes, res.resumes);
  EXPECT_EQ(sum.evals, res.evals.size());
  EXPECT_EQ(sum.checkpoints, res.checkpoints_written);
  EXPECT_EQ(sum.shared_cache_hits, res.shared_cache_hits);
  EXPECT_EQ(sum.best_reward, res.best_so_far().back().second);
  // Contiguous seq is merge_resumed_journal's postcondition.
  const auto& events = server.journal(id);
  for (std::size_t i = 0; i < events.size(); ++i) {
    ASSERT_EQ(events[i].seq, i);
  }
}

TEST(SearchServer, PreemptMidRetryBackoffUnderChaosMatchesStandalone) {
  // The fault plan keeps retry backoffs in flight almost continuously, so a
  // 60-second quantum forces suspensions in the middle of them; resuming
  // must still reproduce the uninterrupted faulty run bit-for-bit.
  const space::SearchSpace space = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  const exec::FaultInjector fx(chaos_plan());

  nas::SearchConfig cfg = small_config(nas::SearchStrategy::kA2C);
  cfg.faults = &fx;

  ServeConfig scfg;
  scfg.total_slots = 12;
  scfg.quantum_seconds = 60.0;
  scfg.state_dir = scratch_dir("chaos");
  SearchServer server(scfg);
  TenantSpec spec;
  spec.name = "chaos";
  spec.space = &space;
  spec.dataset = &ds;
  spec.config = cfg;
  const std::uint32_t id = server.submit(std::move(spec));
  server.run();

  const nas::SearchResult& served = server.result(id);
  EXPECT_GT(served.retries, 0u) << "plan must actually have injected faults";
  EXPECT_GT(server.session(id).preemptions(), 4u);
  const nas::SearchResult standalone = nas::SearchDriver(space, ds, cfg).run();
  expect_bit_identical(served, standalone);
}

TEST(SearchServer, SharedCacheScenarioIsDeterministicWithCrossTenantHits) {
  const space::SearchSpace space = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();

  // Two tenants with the same seed and strategy sample identical
  // architectures: whoever evaluates one first trains it, the other is
  // served from the shared store without touching a worker.
  const auto run_scenario = [&](const std::string& tag) {
    exec::SharedEvalCache shared;
    ServeConfig scfg;
    scfg.total_slots = 12;
    scfg.quantum_seconds = 150.0;
    scfg.state_dir = scratch_dir("shared_" + tag);
    scfg.shared_cache = &shared;
    SearchServer server(scfg);
    std::vector<std::uint32_t> ids;
    for (const char* name : {"alice", "bella"}) {
      TenantSpec spec;
      spec.name = name;
      spec.space = &space;
      spec.dataset = &ds;
      spec.config = small_config(nas::SearchStrategy::kRandom, /*seed=*/11);
      ids.push_back(server.submit(std::move(spec)));
    }
    server.run();
    EXPECT_GE(shared.totals().cross_tenant_hits, 1u);
    return std::make_pair(nas::SearchResult(server.result(ids[0])),
                          nas::SearchResult(server.result(ids[1])));
  };

  const auto [a1, b1] = run_scenario("one");
  // The trailing tenant's hits are flagged all the way down to the records.
  EXPECT_GT(b1.shared_cache_hits, 0u);
  bool saw_flagged_record = false;
  for (const nas::EvalRecord& e : b1.evals) {
    if (e.shared_hit) {
      EXPECT_TRUE(e.cache_hit) << "a shared hit is a cache hit";
      saw_flagged_record = true;
    }
  }
  EXPECT_TRUE(saw_flagged_record);

  // Rerunning the identical submission sequence reproduces both tenants'
  // results bit-for-bit — cross-tenant interactions included.
  const auto [a2, b2] = run_scenario("two");
  expect_bit_identical(a1, a2);
  expect_bit_identical(b1, b2);
}

TEST(SearchServer, EvalBudgetQuotaIsDeterministicallyEnforced) {
  const space::SearchSpace space = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  ServeConfig scfg;
  scfg.total_slots = 12;
  scfg.quantum_seconds = 150.0;
  scfg.state_dir = scratch_dir("budget");
  SearchServer server(scfg);
  TenantSpec spec;
  spec.name = "capped";
  spec.space = &space;
  spec.dataset = &ds;
  spec.config = small_config(nas::SearchStrategy::kRandom);
  spec.quota.eval_budget = 40;
  const std::uint32_t id = server.submit(std::move(spec));
  server.run();

  const nas::SearchResult& served = server.result(id);
  EXPECT_LE(served.evals.size(), 40u);
  // The quota maps onto max_evaluations, so the standalone equivalent is the
  // same config with the cap set directly.
  nas::SearchConfig cfg = small_config(nas::SearchStrategy::kRandom);
  cfg.max_evaluations = 40;
  expect_bit_identical(served, nas::SearchDriver(space, ds, cfg).run());
}

TEST(SearchServer, TenantMetricsAndEndpointStayValidOpenMetrics) {
  const space::SearchSpace space = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  obs::Telemetry telemetry;
  ServeConfig scfg;
  scfg.total_slots = 12;
  scfg.quantum_seconds = 200.0;
  scfg.state_dir = scratch_dir("metrics");
  scfg.telemetry = &telemetry;
  SearchServer server(scfg);
  std::vector<std::uint32_t> ids;
  for (const char* name : {"m-one", "m-two"}) {
    TenantSpec spec;
    spec.name = name;
    spec.space = &space;
    spec.dataset = &ds;
    spec.config = small_config(nas::SearchStrategy::kRandom,
                               /*seed=*/name[2] == 'o' ? 5 : 6);
    spec.config.max_evaluations = 36;
    ids.push_back(server.submit(std::move(spec)));
  }
  server.run();

  const obs::MetricsSnapshot m = telemetry.metrics().snapshot();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const TenantSession& s = server.session(ids[i]);
    const std::string label = "{tenant=\"" + s.name() + "\"}";
    EXPECT_EQ(m.counter_value("ncnas_tenant_slices_total" + label), s.slices());
    EXPECT_EQ(m.counter_value("ncnas_tenant_preemptions_total" + label), s.preemptions());
    EXPECT_EQ(m.counter_value("ncnas_tenant_evals_total" + label), s.evals());
    EXPECT_EQ(m.counter_value("ncnas_tenant_grants_total" + label),
              server.scheduler().grants(ids[i]));
  }
  EXPECT_EQ(m.gauge_value("ncnas_server_active_tenants"), 0.0);

  // Labeled families must render as valid OpenMetrics: one TYPE line per
  // family, label variants attributed to it.
  std::string error;
  EXPECT_TRUE(obs::validate_openmetrics(obs::openmetrics_text(m), &error)) << error;

  const std::string json = server.tenants_json();
  EXPECT_NE(json.find("\"name\":\"m-one\""), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"finished\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
}

}  // namespace
}  // namespace ncnas::serve
