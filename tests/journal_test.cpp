#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "ncnas/nas/driver.hpp"
#include "ncnas/obs/telemetry.hpp"
#include "ncnas/space/spaces.hpp"

namespace ncnas::obs {
namespace {

// ---- event basics ----------------------------------------------------------

TEST(Journal, EventNamesRoundTrip) {
  const JournalEventType all[] = {
      JournalEventType::kRunStarted,     JournalEventType::kRunFinished,
      JournalEventType::kEvalDispatched, JournalEventType::kEvalFinished,
      JournalEventType::kEvalCached,     JournalEventType::kEvalTimeout,
      JournalEventType::kPpoUpdate,      JournalEventType::kPsExchange,
      JournalEventType::kAgentConverged, JournalEventType::kStragglerDetected,
      JournalEventType::kAgentStalled,   JournalEventType::kEvalFailed,
      JournalEventType::kEvalRetried,    JournalEventType::kEvalExhausted,
      JournalEventType::kResultLost,     JournalEventType::kWorkerCrashed,
      JournalEventType::kAgentDead,      JournalEventType::kPsDropped,
      JournalEventType::kPsDelayed,      JournalEventType::kBarrierTimeout,
      JournalEventType::kCheckpointWritten, JournalEventType::kRunResumed,
  };
  for (JournalEventType t : all) {
    const char* name = journal_event_name(t);
    ASSERT_STRNE(name, "?");
    const auto back = journal_event_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, t);
  }
  EXPECT_FALSE(journal_event_from_name("not_an_event").has_value());
}

TEST(Journal, AppendAssignsSequentialSeqAndSnapshotPreservesOrder) {
  Journal j;
  j.append(JournalEventType::kRunStarted, 0.0);
  j.append(JournalEventType::kEvalFinished, 12.5, 2, {{"reward", 0.5}});
  j.append(JournalEventType::kRunFinished, 30.0);
  EXPECT_EQ(j.size(), 3u);
  const auto events = j.snapshot();
  ASSERT_EQ(events.size(), 3u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
  }
  EXPECT_EQ(events[0].agent, kNoAgent);
  EXPECT_EQ(events[1].agent, 2u);
  EXPECT_FLOAT_EQ(static_cast<float>(events[1].field("reward")), 0.5f);
  EXPECT_DOUBLE_EQ(events[1].field("missing", -7.0), -7.0);
  EXPECT_TRUE(events[1].has_field("reward"));
  EXPECT_FALSE(events[1].has_field("missing"));

  j.clear();
  EXPECT_EQ(j.size(), 0u);
  j.append(JournalEventType::kRunStarted, 0.0);
  EXPECT_EQ(j.snapshot()[0].seq, 0u);  // seq restarts after clear
}

TEST(Journal, SubscribersSeeEveryEventAndMayAppendReentrantly) {
  Journal j;
  std::vector<JournalEventType> seen;
  j.subscribe([&seen](const JournalEvent& e) { seen.push_back(e.type); });
  // A subscriber that reacts to evals by appending a verdict — the watchdog
  // pattern; must not deadlock and the verdict must reach all subscribers.
  j.subscribe([&j](const JournalEvent& e) {
    if (e.type == JournalEventType::kEvalFinished) {
      j.append(JournalEventType::kStragglerDetected, e.t, e.agent);
    }
  });
  j.append(JournalEventType::kEvalFinished, 5.0, 1);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], JournalEventType::kEvalFinished);
  EXPECT_EQ(seen[1], JournalEventType::kStragglerDetected);
  EXPECT_EQ(j.size(), 2u);
}

TEST(Journal, ConcurrentAppendsLoseNothing) {
  Journal j(1 << 12);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&j, t] {
      for (int i = 0; i < kPerThread; ++i) {
        j.append(JournalEventType::kEvalFinished, static_cast<double>(i),
                 static_cast<std::uint32_t>(t), {{"reward", 0.1}});
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto events = j.snapshot();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);  // seq is the buffer order, gap-free
  }
}

// ---- JSONL export / import -------------------------------------------------

TEST(Journal, JsonlRoundTripIsExact) {
  Journal j;
  j.append(JournalEventType::kRunStarted, 0.0, kNoAgent,
           {{"agents", 3.0}, {"wall_time_s", 1800.0}});
  // Non-representable decimals and large timestamps must survive exactly so a
  // replay applies the deadline rule to bit-identical numbers.
  j.append(JournalEventType::kEvalFinished, 1799.9999999999998, 2,
           {{"reward", 0.30000000000000004}, {"timed_out", 0.0}});
  j.append(JournalEventType::kRunFinished, 1800.0, kNoAgent, {{"converged", 1.0}});

  std::ostringstream os;
  j.export_jsonl(os);
  std::istringstream is(os.str());
  const auto imported = Journal::import_jsonl(is);
  const auto original = j.snapshot();
  ASSERT_EQ(imported.size(), original.size());
  for (std::size_t i = 0; i < imported.size(); ++i) {
    EXPECT_EQ(imported[i].type, original[i].type);
    EXPECT_EQ(imported[i].agent, original[i].agent);
    EXPECT_EQ(imported[i].seq, original[i].seq);
    EXPECT_EQ(imported[i].t, original[i].t);  // exact, not approximate
    ASSERT_EQ(imported[i].payload.size(), original[i].payload.size());
    for (std::size_t f = 0; f < imported[i].payload.size(); ++f) {
      EXPECT_EQ(imported[i].payload[f].key, original[i].payload[f].key);
      EXPECT_EQ(imported[i].payload[f].value, original[i].payload[f].value);
    }
  }
}

TEST(Journal, ExportWritesVersionedHeaderAndEveryLineCarriesVersion) {
  Journal j;
  j.append(JournalEventType::kEvalCached, 1.0, 0, {{"reward", 0.25}});
  std::ostringstream os;
  j.export_jsonl(os);
  std::istringstream lines(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("\"schema\":\"ncnas.journal\""), std::string::npos);
  EXPECT_NE(line.find("\"events\":1"), std::string::npos);
  int events = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("\"v\":1"), std::string::npos) << line;
    ++events;
  }
  EXPECT_EQ(events, 1);
}

TEST(Journal, ImportRejectsNewerSchemaVersion) {
  std::istringstream newer(
      R"({"v":99,"seq":0,"type":"eval_finished","t":1,"agent":0,"payload":{}})" "\n");
  EXPECT_THROW((void)Journal::import_jsonl(newer), std::runtime_error);

  std::istringstream unversioned(
      R"({"seq":0,"type":"eval_finished","t":1,"agent":0,"payload":{}})" "\n");
  EXPECT_THROW((void)Journal::import_jsonl(unversioned), std::runtime_error);
}

TEST(Journal, ImportSkipsUnknownEventTypesFromOlderReadersView) {
  std::istringstream is(
      R"({"v":1,"seq":0,"type":"eval_finished","t":1,"agent":0,"payload":{"reward":1}})" "\n"
      R"({"v":1,"seq":1,"type":"some_future_event","t":2,"agent":0,"payload":{}})" "\n");
  const auto events = Journal::import_jsonl(is);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, JournalEventType::kEvalFinished);
}

// ---- summarize_journal -----------------------------------------------------

TEST(Journal, SummaryAppliesTheDriverDeadlineFilter) {
  Journal j;
  j.append(JournalEventType::kRunStarted, 0.0, kNoAgent,
           {{"agents", 2.0}, {"workers", 4.0}, {"wall_time_s", 100.0}, {"strategy", 0.0}});
  j.append(JournalEventType::kEvalFinished, 50.0, 0, {{"reward", 0.4}});
  j.append(JournalEventType::kEvalCached, 99.0, 1, {{"reward", 0.2}});
  // Past the deadline: the driver drops this record, so must the replay.
  j.append(JournalEventType::kEvalFinished, 101.0, 0, {{"reward", 0.9}});
  j.append(JournalEventType::kRunFinished, 100.0, kNoAgent,
           {{"end_time_s", 100.0}, {"converged", 0.0}});

  const RunSummary sum = summarize_journal(j.snapshot());
  EXPECT_TRUE(sum.has_run_started);
  EXPECT_TRUE(sum.has_run_finished);
  EXPECT_EQ(sum.agents_declared, 2u);
  EXPECT_EQ(sum.evals, 2u);
  EXPECT_EQ(sum.real_evals, 1u);
  EXPECT_EQ(sum.cache_hits, 1u);
  EXPECT_FLOAT_EQ(sum.best_reward, 0.4f);  // the 0.9 is post-deadline
  EXPECT_DOUBLE_EQ(sum.best_reward_t, 50.0);
  EXPECT_DOUBLE_EQ(sum.end_time_s, 100.0);
  EXPECT_EQ(sum.per_agent.size(), 2u);
  EXPECT_EQ(sum.per_agent.at(0).evals, 1u);
  EXPECT_EQ(sum.per_agent.at(1).cached, 1u);
}

// ---- resume stitching ------------------------------------------------------

TEST(Journal, MergeResumedTruncatesAtWatermarkAndReseqs) {
  // The interrupted process journaled 5 events, snapshotted at watermark 4,
  // then journaled one more (the eval at t=60) before dying: that event's
  // work was re-done by the resumed process and must not be double-counted.
  Journal prior;
  prior.append(JournalEventType::kRunStarted, 0.0, kNoAgent,
               {{"agents", 2.0}, {"workers", 4.0}, {"wall_time_s", 100.0}, {"strategy", 0.0}});
  prior.append(JournalEventType::kEvalFinished, 20.0, 0, {{"reward", 0.2}});
  prior.append(JournalEventType::kEvalFinished, 40.0, 1, {{"reward", 0.3}});
  prior.append(JournalEventType::kCheckpointWritten, 50.0, kNoAgent,
               {{"ordinal", 1.0}, {"bytes", 1024.0}});
  prior.append(JournalEventType::kEvalFinished, 60.0, 0, {{"reward", 0.9}});

  Journal resumed;
  resumed.append(JournalEventType::kRunResumed, 50.0, kNoAgent,
                 {{"from_t", 50.0}, {"prior_events", 4.0}, {"ordinal", 1.0}});
  resumed.append(JournalEventType::kEvalFinished, 60.0, 0, {{"reward", 0.9}});
  resumed.append(JournalEventType::kEvalFinished, 80.0, 1, {{"reward", 0.5}});
  resumed.append(JournalEventType::kRunFinished, 100.0, kNoAgent,
                 {{"end_time_s", 100.0}, {"converged", 0.0}});

  const auto merged = merge_resumed_journal(prior.snapshot(), resumed.snapshot());
  ASSERT_EQ(merged.size(), 8u);  // 4 kept + 4 resumed
  for (std::size_t i = 0; i < merged.size(); ++i) EXPECT_EQ(merged[i].seq, i);
  EXPECT_EQ(merged[3].type, JournalEventType::kCheckpointWritten);
  EXPECT_EQ(merged[4].type, JournalEventType::kRunResumed);

  const RunSummary sum = summarize_journal(merged);
  EXPECT_EQ(sum.evals, 4u);  // the pre-death t=60 eval appears exactly once
  EXPECT_EQ(sum.checkpoints, 1u);
  EXPECT_EQ(sum.resumes, 1u);
  ASSERT_EQ(sum.resume_times.size(), 1u);
  EXPECT_DOUBLE_EQ(sum.resume_times[0], 50.0);
  EXPECT_TRUE(sum.has_run_started);
  EXPECT_TRUE(sum.has_run_finished);
}

TEST(Journal, MergeResumedRejectsForeignOrMarkerlessJournals) {
  Journal prior;
  prior.append(JournalEventType::kRunStarted, 0.0);

  Journal no_marker;
  no_marker.append(JournalEventType::kEvalFinished, 10.0, 0, {{"reward", 0.1}});
  EXPECT_THROW((void)merge_resumed_journal(prior.snapshot(), no_marker.snapshot()),
               std::runtime_error);

  // Watermark beyond the prior journal: these artifacts cannot be one run.
  Journal foreign;
  foreign.append(JournalEventType::kRunResumed, 50.0, kNoAgent,
                 {{"from_t", 50.0}, {"prior_events", 99.0}});
  EXPECT_THROW((void)merge_resumed_journal(prior.snapshot(), foreign.snapshot()),
               std::runtime_error);
}

// ---- watchdog --------------------------------------------------------------

JournalEvent eval_finished(double t, std::uint32_t agent, double duration) {
  JournalEvent e;
  e.type = JournalEventType::kEvalFinished;
  e.t = t;
  e.agent = agent;
  e.payload = {{"reward", 0.1}, {"duration_s", duration}, {"timed_out", 0.0}};
  return e;
}

TEST(Watchdog, PinnedExpectationFlagsSlowEvals) {
  HealthWatchdog w({.straggler_multiple = 3.0, .expected_seconds = 10.0});
  w.on_event(eval_finished(10.0, 0, 10.0));
  w.on_event(eval_finished(40.0, 0, 30.0));  // exactly 3x: not a straggler
  EXPECT_TRUE(w.report().healthy());
  w.on_event(eval_finished(80.0, 1, 31.0));  // over the multiple
  const WatchdogReport r = w.report();
  ASSERT_EQ(r.stragglers.size(), 1u);
  EXPECT_EQ(r.stragglers[0].agent, 1u);
  EXPECT_DOUBLE_EQ(r.stragglers[0].duration_s, 31.0);
  EXPECT_DOUBLE_EQ(r.stragglers[0].expected_s, 10.0);
  EXPECT_FALSE(r.stragglers[0].timed_out);
  EXPECT_EQ(r.evals_seen, 3u);
}

TEST(Watchdog, SelfCalibratedExpectationFromRunningMean) {
  // No pinned expectation: the first min_samples evals only calibrate, then
  // a 100 s eval against a ~10 s mean crosses the 3x default multiple.
  HealthWatchdog w({.expected_seconds = 0.0, .min_samples = 8});
  for (int i = 0; i < 10; ++i) {
    w.on_event(eval_finished(10.0 * (i + 1), 0, 10.0));
    EXPECT_TRUE(w.report().healthy());
  }
  EXPECT_DOUBLE_EQ(w.report().expected_eval_seconds, 10.0);
  w.on_event(eval_finished(200.0, 1, 100.0));
  const WatchdogReport r = w.report();
  ASSERT_EQ(r.stragglers.size(), 1u);
  EXPECT_DOUBLE_EQ(r.stragglers[0].expected_s, 10.0);
}

TEST(Watchdog, EveryTimeoutIsAStraggler) {
  HealthWatchdog w;  // no expectation yet: timeouts flag regardless
  JournalEvent e;
  e.type = JournalEventType::kEvalTimeout;
  e.t = 600.0;
  e.agent = 3;
  e.payload = {{"duration_s", 600.0}};
  w.on_event(e);
  const WatchdogReport r = w.report();
  ASSERT_EQ(r.stragglers.size(), 1u);
  EXPECT_TRUE(r.stragglers[0].timed_out);
  EXPECT_EQ(r.stragglers[0].agent, 3u);
}

TEST(Watchdog, FlagsSilentAgentAsStalledOncePerEpisode) {
  HealthWatchdog w({.expected_seconds = 10.0, .stall_multiple = 2.0});
  w.on_event(eval_finished(10.0, 0, 10.0));
  w.on_event(eval_finished(12.0, 1, 10.0));
  // Agent 1 stays silent while agent 0 advances past the 20 s window.
  w.on_event(eval_finished(40.0, 0, 10.0));
  WatchdogReport r = w.report();
  ASSERT_EQ(r.stalls.size(), 1u);
  EXPECT_EQ(r.stalls[0].agent, 1u);
  EXPECT_DOUBLE_EQ(r.stalls[0].silent_s, 28.0);
  EXPECT_DOUBLE_EQ(r.stalls[0].window_s, 20.0);
  // Still silent: the episode is already flagged, no duplicate verdicts.
  w.on_event(eval_finished(60.0, 0, 10.0));
  EXPECT_EQ(w.report().stalls.size(), 1u);
  // Activity clears the episode; a fresh silence flags again.
  w.on_event(eval_finished(61.0, 1, 10.0));
  w.on_event(eval_finished(90.0, 0, 10.0));
  EXPECT_EQ(w.report().stalls.size(), 2u);
}

TEST(Watchdog, VerdictsFlowIntoJournalAndMetricsViaTelemetry) {
  Telemetry tel;
  tel.enable_watchdog({.straggler_multiple = 2.0, .expected_seconds = 10.0});
  Journal& j = *tel.journal();
  j.append(JournalEventType::kEvalFinished, 25.0, 0,
           {{"reward", 0.1}, {"duration_s", 25.0}, {"timed_out", 0.0}});
  std::size_t verdicts = 0;
  for (const JournalEvent& e : j.snapshot()) {
    verdicts += e.type == JournalEventType::kStragglerDetected;
  }
  EXPECT_EQ(verdicts, 1u);
  EXPECT_EQ(tel.metrics().snapshot().counter_value("ncnas_watchdog_stragglers_total"), 1u);
  ASSERT_NE(tel.watchdog(), nullptr);
  EXPECT_FALSE(tel.watchdog()->report().healthy());
  // The verdict replays like any other event, and a summary counts it.
  EXPECT_EQ(summarize_journal(j.snapshot()).stragglers, 1u);
}

// ---- driver integration ----------------------------------------------------

data::Dataset tiny_nt3() {
  data::Nt3Dims dims;
  dims.train = 64;
  dims.valid = 32;
  dims.length = 64;
  dims.motif = 6;
  return data::make_nt3(5, dims);
}

nas::SearchConfig small_config(nas::SearchStrategy strategy) {
  nas::SearchConfig cfg;
  cfg.strategy = strategy;
  cfg.cluster = {.num_agents = 3, .workers_per_agent = 4};
  cfg.wall_time_seconds = 1800.0;
  cfg.fidelity = {.epochs = 1, .subset_fraction = 1.0};
  cfg.cost = {.startup_seconds = 20.0, .seconds_per_megaunit = 1.0, .timeout_seconds = 600.0};
  cfg.seed = 11;
  return cfg;
}

TEST(JournalDriver, ReplaySummaryMatchesSearchResultExactly) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  Telemetry tel;
  tel.enable_journal();
  nas::SearchConfig cfg = small_config(nas::SearchStrategy::kA3C);
  cfg.telemetry = &tel;
  const nas::SearchResult res = nas::SearchDriver(s, ds, cfg).run();

  // Round-trip through the wire format, as run_report does.
  std::ostringstream os;
  tel.export_journal_jsonl(os);
  std::istringstream is(os.str());
  const RunSummary sum = summarize_journal(Journal::import_jsonl(is));

  EXPECT_TRUE(sum.has_run_started);
  EXPECT_TRUE(sum.has_run_finished);
  EXPECT_EQ(sum.strategy, static_cast<int>(nas::SearchStrategy::kA3C));
  EXPECT_EQ(sum.agents_declared, cfg.cluster.num_agents);
  EXPECT_EQ(sum.evals, res.evals.size());
  EXPECT_EQ(sum.ppo_updates, res.ppo_updates);
  EXPECT_EQ(sum.converged, res.converged_early);
  EXPECT_DOUBLE_EQ(sum.end_time_s, res.end_time);

  float best = -std::numeric_limits<float>::infinity();
  for (const auto& e : res.evals) best = std::max(best, e.reward);
  EXPECT_EQ(sum.best_reward, best);

  std::size_t per_agent_evals = 0;
  for (const auto& [id, a] : sum.per_agent) per_agent_evals += a.evals;
  EXPECT_EQ(per_agent_evals, res.evals.size());
}

TEST(JournalDriver, WatchdogFlagsInjectedSlowEvaluations) {
  // Pin the expectation well below the cost model's cheapest task (startup
  // alone is 20 s), so every real evaluation is a deterministic straggler —
  // the injected-slow-eval acceptance scenario.
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  Telemetry tel;
  tel.enable_watchdog({.straggler_multiple = 2.0, .expected_seconds = 5.0});
  nas::SearchConfig cfg = small_config(nas::SearchStrategy::kRandom);
  cfg.wall_time_seconds = 300.0;
  cfg.telemetry = &tel;
  const nas::SearchResult res = nas::SearchDriver(s, ds, cfg).run();

  std::size_t real = 0;
  for (const auto& e : res.evals) real += !e.cache_hit;
  ASSERT_GT(real, 0u);

  const WatchdogReport health = tel.watchdog()->report();
  EXPECT_FALSE(health.healthy());
  EXPECT_GE(health.stragglers.size(), real);  // post-deadline tails may add more
  EXPECT_EQ(res.telemetry->metrics.counter_value("ncnas_watchdog_stragglers_total"),
            health.stragglers.size());
  std::size_t verdict_events = 0;
  for (const JournalEvent& e : res.telemetry->journal) {
    verdict_events += e.type == JournalEventType::kStragglerDetected;
  }
  EXPECT_EQ(verdict_events, health.stragglers.size());
}

}  // namespace
}  // namespace ncnas::obs
