// Finite-difference gradient checking helpers shared by the nn tests.
#pragma once

#include <cmath>
#include <functional>

#include "ncnas/nn/layer.hpp"
#include "ncnas/tensor/ops.hpp"

namespace ncnas::testing {

/// Scalar probe loss: L = sum_i w_i * y_i with fixed pseudo-random weights,
/// which exercises every output element with distinct sensitivities.
inline float probe_loss(const tensor::Tensor& y) {
  float loss = 0.0f;
  for (std::size_t i = 0; i < y.size(); ++i) {
    loss += y[i] * (0.1f + 0.01f * static_cast<float>(i % 17));
  }
  return loss;
}

/// dL/dy for probe_loss.
inline tensor::Tensor probe_grad(const tensor::Tensor& y) {
  tensor::Tensor g(y.shape());
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = 0.1f + 0.01f * static_cast<float>(i % 17);
  }
  return g;
}

/// Central-difference derivative of `loss_fn` w.r.t. one scalar slot.
inline float numeric_derivative(float& slot, const std::function<float()>& loss_fn,
                                float eps = 1e-3f) {
  const float saved = slot;
  slot = saved + eps;
  const float up = loss_fn();
  slot = saved - eps;
  const float down = loss_fn();
  slot = saved;
  return (up - down) / (2.0f * eps);
}

/// Relative error tolerant of tiny denominators.
inline float rel_err(float a, float b) {
  return std::fabs(a - b) / std::max({std::fabs(a), std::fabs(b), 1e-3f});
}

}  // namespace ncnas::testing
