// Finite-difference gradient checking helpers shared by the nn tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ncnas/nn/layer.hpp"
#include "ncnas/tensor/kernel_config.hpp"
#include "ncnas/tensor/ops.hpp"

namespace ncnas::testing {

/// One kernel-tier configuration a parameterized suite runs under: a thread
/// count (0 = serial reference kernels) and whether the SIMD tier may engage.
struct KernelMode {
  std::size_t threads;
  tensor::SimdMode simd;
};

/// Parameterized fixture that re-runs a suite under each kernel mode.
/// Dispatch thresholds are zeroed and blocks shrunk so even the tiny
/// problems gradchecks use genuinely exercise the blocked paths (including
/// edge panels) instead of falling back to the reference.
class KernelModeTest : public ::testing::TestWithParam<KernelMode> {
 protected:
  void SetUp() override {
    tensor::KernelConfig cfg;
    cfg.threads = GetParam().threads;
    cfg.simd = GetParam().simd;
    cfg.block_rows = 8;
    cfg.block_cols = 32;
    cfg.min_blocked_flops = 0;
    cfg.min_parallel_elems = 0;
    guard_.emplace(cfg);
  }
  void TearDown() override { guard_.reset(); }

 private:
  std::optional<tensor::KernelConfigGuard> guard_;
};

/// The modes every kernel-mode suite runs under: reference, blocked (SIMD
/// forced off) serially and on the hardware's worth of pool threads, and the
/// SIMD tier at the same two thread counts. On machines where the SIMD tier
/// is unavailable the simd entries degrade to the blocked tier — still a
/// valid (if redundant) run, so no skipping logic is needed.
inline std::vector<KernelMode> kernel_mode_params() {
  const std::size_t hw = std::max<std::size_t>(2, std::thread::hardware_concurrency());
  return {{0, tensor::SimdMode::kOff},
          {1, tensor::SimdMode::kOff},
          {hw, tensor::SimdMode::kOff},
          {1, tensor::SimdMode::kOn},
          {hw, tensor::SimdMode::kOn}};
}

/// Stable, unique test-name suffix per mode (the hardware entry can never
/// collide with the serial entries because it is clamped to >= 2).
inline std::string kernel_mode_name(const ::testing::TestParamInfo<KernelMode>& info) {
  const KernelMode& m = info.param;
  if (m.threads == 0) return "ref";
  const std::string tier = m.simd == tensor::SimdMode::kOn ? "simd" : "blocked";
  if (m.threads == 1) return tier + "_serial";
  return tier + "_t" + std::to_string(m.threads);
}

/// Scalar probe loss: L = sum_i w_i * y_i with fixed pseudo-random weights,
/// which exercises every output element with distinct sensitivities.
inline float probe_loss(const tensor::Tensor& y) {
  float loss = 0.0f;
  for (std::size_t i = 0; i < y.size(); ++i) {
    loss += y[i] * (0.1f + 0.01f * static_cast<float>(i % 17));
  }
  return loss;
}

/// dL/dy for probe_loss.
inline tensor::Tensor probe_grad(const tensor::Tensor& y) {
  tensor::Tensor g(y.shape());
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = 0.1f + 0.01f * static_cast<float>(i % 17);
  }
  return g;
}

/// Central-difference derivative of `loss_fn` w.r.t. one scalar slot.
inline float numeric_derivative(float& slot, const std::function<float()>& loss_fn,
                                float eps = 1e-3f) {
  const float saved = slot;
  slot = saved + eps;
  const float up = loss_fn();
  slot = saved - eps;
  const float down = loss_fn();
  slot = saved;
  return (up - down) / (2.0f * eps);
}

/// Relative error tolerant of tiny denominators.
inline float rel_err(float a, float b) {
  return std::fabs(a - b) / std::max({std::fabs(a), std::fabs(b), 1e-3f});
}

}  // namespace ncnas::testing
