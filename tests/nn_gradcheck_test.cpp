// Finite-difference checks of every layer's backward pass — the backbone
// guarantee that rewards produced by the evaluator are real gradients' work.
#include <gtest/gtest.h>

#include "gradcheck.hpp"
#include "ncnas/nn/layers.hpp"

namespace ncnas::nn {
namespace {

using tensor::Rng;
using tensor::Tensor;
using testing::numeric_derivative;
using testing::probe_grad;
using testing::probe_loss;
using testing::rel_err;

// Every check runs once per kernel mode (reference / blocked serial /
// blocked parallel), so gradients are verified under the kernels production
// actually uses — not just the serial oracles.
using GradCheck = ncnas::testing::KernelModeTest;

Tensor random_tensor(tensor::Shape shape, Rng& rng, float scale = 1.0f) {
  Tensor t(std::move(shape));
  for (float& v : t.flat()) v = scale * static_cast<float>(rng.normal());
  return t;
}

/// Checks dL/dx and dL/dtheta of a single-input layer against finite
/// differences on a fresh forward pass per probe.
void check_layer(Layer& layer, Tensor x, float tol = 2e-2f) {
  ForwardCtx ctx{.training = false, .rng = nullptr};
  const auto loss_fn = [&] {
    const Tensor* in[] = {&x};
    return probe_loss(layer.forward(in, ctx));
  };

  const Tensor* in[] = {&x};
  const Tensor y = layer.forward(in, ctx);
  for (const ParamPtr& p : layer.parameters()) p->zero_grad();
  const std::vector<Tensor> dx = layer.backward(probe_grad(y));
  ASSERT_EQ(dx.size(), 1u);

  // Input gradients (a sample of slots to keep the test fast).
  for (std::size_t i = 0; i < x.size(); i += std::max<std::size_t>(1, x.size() / 13)) {
    const float num = numeric_derivative(x[i], loss_fn);
    EXPECT_LT(rel_err(dx[0][i], num), tol) << "input slot " << i;
  }
  // Parameter gradients.
  for (const ParamPtr& p : layer.parameters()) {
    for (std::size_t i = 0; i < p->size(); i += std::max<std::size_t>(1, p->size() / 13)) {
      const float num = numeric_derivative(p->value[i], loss_fn);
      EXPECT_LT(rel_err(p->grad[i], num), tol) << p->name << " slot " << i;
    }
  }
}

TEST_P(GradCheck, DenseLinear) {
  Rng rng(1);
  Dense layer(5, Act::kLinear, rng);
  check_layer(layer, random_tensor({3, 4}, rng));
}

TEST_P(GradCheck, DenseTanh) {
  Rng rng(2);
  Dense layer(6, Act::kTanh, rng);
  check_layer(layer, random_tensor({2, 3}, rng));
}

TEST_P(GradCheck, DenseSigmoid) {
  Rng rng(3);
  Dense layer(4, Act::kSigmoid, rng);
  check_layer(layer, random_tensor({2, 5}, rng));
}

TEST_P(GradCheck, DenseRelu) {
  Rng rng(4);
  Dense layer(8, Act::kRelu, rng);
  // Offset inputs away from the relu kink so finite differences are clean.
  Tensor x = random_tensor({3, 4}, rng);
  for (float& v : x.flat()) v += (v >= 0 ? 0.5f : -0.5f);
  check_layer(layer, std::move(x));
}

TEST_P(GradCheck, DenseSoftmax) {
  Rng rng(5);
  Dense layer(5, Act::kSoftmax, rng);
  // Softmax couples every output; float32 central differences carry a bit
  // more rounding error than the elementwise activations.
  check_layer(layer, random_tensor({2, 3}, rng), /*tol=*/4e-2f);
}

TEST_P(GradCheck, StandaloneActivationTanh) {
  Rng rng(6);
  Activation layer(Act::kTanh);
  check_layer(layer, random_tensor({4, 6}, rng));
}

TEST_P(GradCheck, Conv1D) {
  Rng rng(7);
  Conv1D layer(3, 4, rng);
  check_layer(layer, random_tensor({2, 9, 2}, rng));
}

TEST_P(GradCheck, MaxPool1D) {
  Rng rng(8);
  MaxPool1D layer(3);
  check_layer(layer, random_tensor({2, 10, 2}, rng));
}

TEST_P(GradCheck, FlattenAndReshape) {
  Rng rng(9);
  Flatten flat;
  check_layer(flat, random_tensor({2, 4, 3}, rng));
  Reshape1D lift;
  check_layer(lift, random_tensor({3, 5}, rng));
}

TEST_P(GradCheck, MultiInputConcat) {
  Rng rng(10);
  Concat layer;
  Tensor a = random_tensor({2, 3}, rng);
  Tensor b = random_tensor({2, 4}, rng);
  ForwardCtx ctx{};
  const auto loss_fn = [&] {
    const Tensor* in[] = {&a, &b};
    return probe_loss(layer.forward(in, ctx));
  };
  const Tensor* in[] = {&a, &b};
  const Tensor y = layer.forward(in, ctx);
  const std::vector<Tensor> dx = layer.backward(probe_grad(y));
  ASSERT_EQ(dx.size(), 2u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LT(rel_err(dx[0][i], numeric_derivative(a[i], loss_fn)), 2e-2f);
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_LT(rel_err(dx[1][i], numeric_derivative(b[i], loss_fn)), 2e-2f);
  }
}

TEST_P(GradCheck, MultiInputAddWithPadding) {
  Rng rng(11);
  Add layer;
  Tensor a = random_tensor({2, 5}, rng);
  Tensor b = random_tensor({2, 3}, rng);  // narrower: zero-padded
  ForwardCtx ctx{};
  const auto loss_fn = [&] {
    const Tensor* in[] = {&a, &b};
    return probe_loss(layer.forward(in, ctx));
  };
  const Tensor* in[] = {&a, &b};
  const Tensor y = layer.forward(in, ctx);
  ASSERT_EQ(y.dim(1), 5u);
  const std::vector<Tensor> dx = layer.backward(probe_grad(y));
  ASSERT_EQ(dx.size(), 2u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LT(rel_err(dx[0][i], numeric_derivative(a[i], loss_fn)), 2e-2f);
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_LT(rel_err(dx[1][i], numeric_derivative(b[i], loss_fn)), 2e-2f);
  }
}

TEST_P(GradCheck, SharedDenseAccumulatesBothBranches) {
  // A mirrored Dense must receive gradient contributions from both uses.
  Rng rng(12);
  Dense donor(4, Act::kLinear, rng);
  const LayerPtr mirror = clone_shared(donor);
  Tensor x1 = random_tensor({2, 3}, rng);
  Tensor x2 = random_tensor({2, 3}, rng);
  ForwardCtx ctx{};
  const auto loss_fn = [&] {
    const Tensor* in1[] = {&x1};
    const Tensor* in2[] = {&x2};
    return probe_loss(donor.forward(in1, ctx)) + probe_loss(mirror->forward(in2, ctx));
  };
  const Tensor* in1[] = {&x1};
  const Tensor* in2[] = {&x2};
  const Tensor y1 = donor.forward(in1, ctx);
  const Tensor y2 = mirror->forward(in2, ctx);
  ASSERT_EQ(donor.parameters()[0].get(), mirror->parameters()[0].get());
  for (const ParamPtr& p : donor.parameters()) p->zero_grad();
  (void)donor.backward(probe_grad(y1));
  (void)mirror->backward(probe_grad(y2));
  const ParamPtr w = donor.parameters()[0];
  for (std::size_t i = 0; i < w->size(); i += 3) {
    const float num = numeric_derivative(w->value[i], loss_fn);
    EXPECT_LT(rel_err(w->grad[i], num), 2e-2f) << "shared w slot " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(KernelModes, GradCheck,
                         ::testing::ValuesIn(ncnas::testing::kernel_mode_params()),
                         ncnas::testing::kernel_mode_name);

}  // namespace
}  // namespace ncnas::nn
