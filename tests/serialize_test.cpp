#include <gtest/gtest.h>

#include <filesystem>

#include "ncnas/data/dataset.hpp"
#include "ncnas/nn/layers.hpp"
#include "ncnas/nn/serialize.hpp"
#include "ncnas/nn/trainer.hpp"
#include "ncnas/space/builder.hpp"
#include "ncnas/space/spaces.hpp"

namespace ncnas::nn {
namespace {

using tensor::Rng;
using tensor::Tensor;

struct TempFile {
  std::filesystem::path path;
  TempFile() {
    path = std::filesystem::temp_directory_path() /
           ("ncnas_w_" + std::to_string(::getpid()) + ".txt");
  }
  ~TempFile() { std::filesystem::remove(path); }
};

Graph small_model(Rng& rng) {
  Graph g;
  const std::size_t in = g.add_input("x", {3});
  const std::size_t d1 = g.add(std::make_unique<Dense>(4, Act::kRelu, rng), {in});
  g.set_output(g.add(std::make_unique<Dense>(2, Act::kLinear, rng), {d1}));
  return g;
}

void materialize(Graph& g) {
  Tensor x({1, 3});
  ForwardCtx ctx{};
  (void)g.forward(std::vector<Tensor>{x}, ctx);
}

TEST(Serialize, RoundTripPreservesPredictions) {
  TempFile file;
  Rng rng_a(1);
  Graph a = small_model(rng_a);
  materialize(a);
  save_weights(a, file.path.string());

  Rng rng_b(999);  // different init; must be overwritten by load
  Graph b = small_model(rng_b);
  materialize(b);
  load_weights(b, file.path.string());

  Tensor x = Tensor::of2d({{0.5f, -1.0f, 2.0f}});
  ForwardCtx ctx{};
  const Tensor ya = a.forward(std::vector<Tensor>{x}, ctx);
  const Tensor yb = b.forward(std::vector<Tensor>{x}, ctx);
  EXPECT_LT(tensor::max_abs_diff(ya, yb), 1e-6f);
}

TEST(Serialize, RejectsParameterCountMismatch) {
  TempFile file;
  Rng rng(1);
  Graph a = small_model(rng);
  materialize(a);
  save_weights(a, file.path.string());

  Graph unmaterialized = small_model(rng);  // lazy layers: zero parameters
  EXPECT_THROW(load_weights(unmaterialized, file.path.string()), std::invalid_argument);
}

TEST(Serialize, RejectsShapeMismatch) {
  TempFile file;
  Rng rng(1);
  Graph a = small_model(rng);
  materialize(a);
  save_weights(a, file.path.string());

  Graph wider;
  const std::size_t in = wider.add_input("x", {3});
  const std::size_t d1 = wider.add(std::make_unique<Dense>(5, Act::kRelu, rng), {in});
  wider.set_output(wider.add(std::make_unique<Dense>(2, Act::kLinear, rng), {d1}));
  materialize(wider);
  EXPECT_THROW(load_weights(wider, file.path.string()), std::invalid_argument);
}

TEST(Serialize, MissingFileThrows) {
  Rng rng(1);
  Graph g = small_model(rng);
  EXPECT_THROW(load_weights(g, "/nonexistent/w.txt"), std::runtime_error);
}

TEST(Serialize, SearchedArchitectureSurvivesRoundTrip) {
  // End-to-end: build a NAS architecture, train briefly, save, reload into a
  // freshly built copy, verify identical validation metric.
  const space::SearchSpace sp = space::nt3_small_space();
  data::Nt3Dims dims;
  dims.train = 48;
  dims.valid = 24;
  dims.length = 64;
  dims.motif = 6;
  const data::Dataset ds = data::make_nt3(3, dims);
  tensor::Rng arch_rng(5);
  const space::ArchEncoding arch = sp.random_arch(arch_rng);
  const std::vector<std::size_t> input_dims{ds.input_dim(0)};

  Rng build_rng(7);
  Graph trained =
      space::build_model(sp, arch, input_dims, space::TaskHead::classification(2), build_rng);
  TrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 8;
  opts.loss = ds.loss;
  Rng train_rng(9);
  (void)fit(trained, ds.x_train, ds.y_train, opts, train_rng);
  const float acc = evaluate(trained, ds.x_valid, ds.y_valid, ds.metric);

  TempFile file;
  save_weights(trained, file.path.string());

  Rng rebuild_rng(1234);
  Graph restored =
      space::build_model(sp, arch, input_dims, space::TaskHead::classification(2), rebuild_rng);
  {
    ForwardCtx ctx{};
    std::vector<Tensor> probe{slice_rows(ds.x_train[0], 0, 1)};
    (void)restored.forward(probe, ctx);
  }
  load_weights(restored, file.path.string());
  EXPECT_FLOAT_EQ(evaluate(restored, ds.x_valid, ds.y_valid, ds.metric), acc);
}

}  // namespace
}  // namespace ncnas::nn
