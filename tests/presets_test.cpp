#include <gtest/gtest.h>

#include "ncnas/exec/presets.hpp"

namespace ncnas::exec {
namespace {

TEST(Presets, ComboDefaultsMatchPaperKnobs) {
  const FidelityConfig fid = default_fidelity("combo");
  EXPECT_DOUBLE_EQ(fid.subset_fraction, 0.10);  // paper: 10 % of Combo data
  const CostModel cost = default_cost("combo");
  EXPECT_DOUBLE_EQ(cost.timeout_seconds, 600.0);  // paper: 10-minute timeout
}

TEST(Presets, SpaceAwareVariantsDiffer) {
  // The large Combo space gets a gentler learning rate and a cheaper
  // per-megaunit constant (its median architecture is ~4x larger).
  EXPECT_LT(default_fidelity_for_space("combo-large").learning_rate,
            default_fidelity_for_space("combo-small").learning_rate);
  EXPECT_LT(default_cost_for_space("combo-large").seconds_per_megaunit,
            default_cost_for_space("combo-small").seconds_per_megaunit);
  EXPECT_DOUBLE_EQ(default_cost_for_space("nt3-small").seconds_per_megaunit,
                   default_cost("nt3").seconds_per_megaunit);
}

TEST(Presets, UnoAndNt3UseFullTrainingData) {
  EXPECT_DOUBLE_EQ(default_fidelity("uno").subset_fraction, 1.0);
  EXPECT_DOUBLE_EQ(default_fidelity("nt3").subset_fraction, 1.0);
}

TEST(Presets, SubsetOverrideForFidelitySweeps) {
  const FidelityConfig fid = default_fidelity("combo", 0.4);
  EXPECT_DOUBLE_EQ(fid.subset_fraction, 0.4);
}

TEST(Presets, UnknownDatasetRejected) {
  EXPECT_THROW((void)default_fidelity("bogus"), std::invalid_argument);
  EXPECT_THROW((void)default_cost("bogus"), std::invalid_argument);
}

TEST(Presets, Fig11TimeoutCrossover) {
  // The calibration property behind Fig. 11 (run on combo-large): a
  // median-size large-space architecture (~132k params on 2048 rows) fits
  // the 600 s timeout at 10-30 % of the training data and exceeds it at 40 %.
  const CostModel cost = default_cost_for_space("combo-large");
  const FidelityConfig fid = default_fidelity_for_space("combo-large");
  const std::size_t params = 132000;
  const auto dur = [&](double frac) {
    return cost.duration(params, static_cast<std::size_t>(2048 * frac), fid.epochs,
                         "median-arch");
  };
  EXPECT_FALSE(cost.times_out(dur(0.10)));
  EXPECT_FALSE(cost.times_out(dur(0.20)));
  EXPECT_FALSE(cost.times_out(dur(0.30)));
  EXPECT_TRUE(cost.times_out(dur(0.40)));
}

}  // namespace
}  // namespace ncnas::exec
