// Property-style sweeps over ALL canned search spaces: every random
// architecture must validate, build, forward, backward, and train a step —
// the invariant the whole search pipeline rests on.
#include <gtest/gtest.h>

#include "ncnas/exec/evaluator.hpp"
#include "ncnas/nn/trainer.hpp"
#include "ncnas/space/builder.hpp"
#include "ncnas/space/spaces.hpp"

namespace ncnas::space {
namespace {

class SpaceProperty : public ::testing::TestWithParam<std::string> {
 protected:
  static data::Dataset tiny_dataset_for(const std::string& space_name) {
    if (space_name.starts_with("combo")) {
      data::ComboDims dims;
      dims.train = 48;
      dims.valid = 24;
      dims.expression = 8;
      dims.descriptors = 10;
      return data::make_combo(3, dims);
    }
    if (space_name.starts_with("uno")) {
      data::UnoDims dims;
      dims.train = 48;
      dims.valid = 24;
      dims.rnaseq = 8;
      dims.descriptors = 10;
      dims.fingerprints = 6;
      return data::make_uno(3, dims);
    }
    data::Nt3Dims dims;
    dims.train = 48;
    dims.valid = 24;
    dims.length = 64;
    dims.motif = 6;
    return data::make_nt3(3, dims);
  }
};

TEST_P(SpaceProperty, SizeConsistentWithArities) {
  const SearchSpace sp = space_by_name(GetParam());
  double log10 = 0.0;
  for (std::size_t a : sp.arities()) log10 += std::log10(static_cast<double>(a));
  EXPECT_NEAR(sp.log10_size(), log10, 1e-9);
  EXPECT_GT(sp.size(), 1.0);
}

TEST_P(SpaceProperty, RandomArchsAreValidAndDistinct) {
  const SearchSpace sp = space_by_name(GetParam());
  tensor::Rng rng(11);
  std::set<std::string> keys;
  for (int i = 0; i < 100; ++i) {
    const ArchEncoding arch = sp.random_arch(rng);
    ASSERT_TRUE(sp.is_valid(arch));
    keys.insert(arch_key(arch));
  }
  // Spaces are astronomically large; 100 draws should essentially never
  // collide.
  EXPECT_GT(keys.size(), 95u);
}

TEST_P(SpaceProperty, EveryRandomArchBuildsForwardsAndBackwards) {
  const SearchSpace sp = space_by_name(GetParam());
  const data::Dataset ds = tiny_dataset_for(GetParam());
  std::vector<std::size_t> dims;
  for (std::size_t i = 0; i < ds.input_count(); ++i) dims.push_back(ds.input_dim(i));
  const TaskHead head = exec::head_for(ds);

  tensor::Rng arch_rng(17);
  for (int trial = 0; trial < 15; ++trial) {
    const ArchEncoding arch = sp.random_arch(arch_rng);
    tensor::Rng rng(1);
    nn::Graph g = build_model(sp, arch, dims, head, rng);
    // Shape inference agrees with the actual forward pass.
    const nn::FeatShape inferred = g.output_shape();
    nn::ForwardCtx ctx{};
    std::vector<tensor::Tensor> probe;
    for (const auto& x : ds.x_train) probe.push_back(nn::slice_rows(x, 0, 3));
    const tensor::Tensor y = g.forward(probe, ctx);
    ASSERT_EQ(y.dim(0), 3u) << sp.describe(arch);
    ASSERT_EQ(y.size() / y.dim(0), tensor::numel(inferred)) << sp.describe(arch);
    // Backward runs and produces finite parameter gradients.
    g.zero_grad();
    tensor::Tensor grad(y.shape());
    grad.fill(0.1f);
    g.backward(grad);
    for (const nn::ParamPtr& p : g.parameters()) {
      for (float v : p->grad.flat()) ASSERT_TRUE(std::isfinite(v)) << sp.describe(arch);
    }
  }
}

TEST_P(SpaceProperty, EveryRandomArchTrainsOneEpoch) {
  const SearchSpace sp = space_by_name(GetParam());
  const data::Dataset ds = tiny_dataset_for(GetParam());
  const exec::TrainingEvaluator eval(sp, ds, {.epochs = 1, .subset_fraction = 1.0},
                                     exec::CostModel{.timeout_seconds = 1e12});
  tensor::Rng arch_rng(23);
  for (int trial = 0; trial < 8; ++trial) {
    const exec::EvalResult r = eval.evaluate(sp.random_arch(arch_rng), 7);
    EXPECT_TRUE(std::isfinite(r.reward));
    EXPECT_GE(r.reward, eval.reward_floor());
    EXPECT_GT(r.params, 0u);
  }
}

TEST_P(SpaceProperty, DeterministicBuildsProduceIdenticalRewards) {
  const SearchSpace sp = space_by_name(GetParam());
  const data::Dataset ds = tiny_dataset_for(GetParam());
  const exec::TrainingEvaluator eval(sp, ds, {.epochs = 1, .subset_fraction = 0.5},
                                     exec::CostModel{.timeout_seconds = 1e12});
  tensor::Rng arch_rng(29);
  const ArchEncoding arch = sp.random_arch(arch_rng);
  EXPECT_EQ(eval.evaluate(arch, 42).reward, eval.evaluate(arch, 42).reward);
}

INSTANTIATE_TEST_SUITE_P(AllSpaces, SpaceProperty,
                         ::testing::Values("combo-small", "combo-large", "uno-small",
                                           "uno-large", "nt3-small"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace ncnas::space
