#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "ncnas/analytics/csv.hpp"
#include "ncnas/ncnas.hpp"  // umbrella header must compile standalone

namespace ncnas::analytics {
namespace {

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    path = std::filesystem::temp_directory_path() /
           ("ncnas_csv_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Csv, SeriesRowsAndHeader) {
  TempDir dir;
  const auto file = dir.path / "s.csv";
  write_series_csv(file.string(), {0.5, 0.75}, 60.0, "util");
  const std::string content = slurp(file);
  EXPECT_NE(content.find("t_seconds,util"), std::string::npos);
  EXPECT_NE(content.find("60,0.5"), std::string::npos);
  EXPECT_NE(content.find("120,0.75"), std::string::npos);
}

TEST(Csv, MultiSeriesPadsRagged) {
  TempDir dir;
  const auto file = dir.path / "m.csv";
  write_multi_series_csv(file.string(), {"a", "b"}, {{1.0, 2.0}, {9.0}}, 10.0);
  const std::string content = slurp(file);
  EXPECT_NE(content.find("t_seconds,a,b"), std::string::npos);
  EXPECT_NE(content.find("10,1,9"), std::string::npos);
  EXPECT_NE(content.find("20,2,"), std::string::npos);  // padded cell
}

TEST(Csv, MultiSeriesValidatesShape) {
  TempDir dir;
  EXPECT_THROW(
      write_multi_series_csv((dir.path / "x.csv").string(), {"a"}, {{1.0}, {2.0}}, 1.0),
      std::invalid_argument);
}

TEST(Csv, EvalRows) {
  TempDir dir;
  const auto file = dir.path / "e.csv";
  nas::SearchResult res;
  nas::EvalRecord e;
  e.time = 30.0;
  e.reward = 0.5f;
  e.params = 123;
  e.sim_duration = 90.0;
  e.agent = 2;
  e.arch = {1, 2};
  res.evals.push_back(e);
  write_evals_csv(file.string(), res);
  const std::string content = slurp(file);
  EXPECT_NE(content.find("t_seconds,reward,params"), std::string::npos);
  EXPECT_NE(content.find("30,0.5,123,90,0,0,2,1,2,"), std::string::npos);
}

TEST(Csv, UnwritablePathThrows) {
  EXPECT_THROW(write_series_csv("/nonexistent/dir/x.csv", {1.0}, 1.0), std::runtime_error);
}

}  // namespace
}  // namespace ncnas::analytics
