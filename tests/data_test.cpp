#include <gtest/gtest.h>

#include "ncnas/data/baselines.hpp"
#include "ncnas/data/dataset.hpp"
#include "ncnas/nn/trainer.hpp"

namespace ncnas::data {
namespace {

using tensor::Rng;

TEST(Combo, SchemaMatchesPaper) {
  const Dataset ds = make_combo(1);
  EXPECT_EQ(ds.name, "combo");
  ASSERT_EQ(ds.input_count(), 3u);
  EXPECT_EQ(ds.input_names[0], "cell.expression");
  EXPECT_EQ(ds.input_dim(1), ds.input_dim(2));  // the two drugs share a schema
  EXPECT_EQ(ds.y_train.dim(0), ds.x_train[0].dim(0));
  EXPECT_EQ(ds.metric, nn::Metric::kR2);
  EXPECT_EQ(ds.batch_size, 256u);
}

TEST(Uno, SchemaMatchesPaper) {
  const Dataset ds = make_uno(1);
  ASSERT_EQ(ds.input_count(), 4u);
  EXPECT_EQ(ds.input_dim(1), 1u);  // scalar dose
  EXPECT_EQ(ds.metric, nn::Metric::kR2);
  EXPECT_EQ(ds.batch_size, 32u);
}

TEST(Nt3, SchemaMatchesPaper) {
  const Dataset ds = make_nt3(1);
  ASSERT_EQ(ds.input_count(), 1u);
  EXPECT_EQ(ds.metric, nn::Metric::kAccuracy);
  EXPECT_EQ(ds.loss, nn::LossKind::kCrossEntropy);
  EXPECT_EQ(ds.batch_size, 20u);
  // Labels are 0/1.
  for (std::size_t i = 0; i < ds.train_rows(); ++i) {
    const float y = ds.y_train(i, 0);
    EXPECT_TRUE(y == 0.0f || y == 1.0f);
  }
}

TEST(Generators, DeterministicPerSeed) {
  const Dataset a = make_combo(7);
  const Dataset b = make_combo(7);
  const Dataset c = make_combo(8);
  EXPECT_TRUE(a.x_train[0] == b.x_train[0]);
  EXPECT_TRUE(a.y_valid == b.y_valid);
  EXPECT_FALSE(a.x_train[0] == c.x_train[0]);
}

TEST(Generators, TrainFeaturesStandardized) {
  const Dataset ds = make_combo(3);
  const tensor::Tensor& x = ds.x_train[0];
  const std::size_t rows = x.dim(0);
  for (std::size_t j = 0; j < 5; ++j) {  // spot-check a few columns
    double mean = 0.0, var = 0.0;
    for (std::size_t i = 0; i < rows; ++i) mean += x(i, j);
    mean /= static_cast<double>(rows);
    for (std::size_t i = 0; i < rows; ++i) var += (x(i, j) - mean) * (x(i, j) - mean);
    var /= static_cast<double>(rows);
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(Generators, CustomDimsRespected) {
  ComboDims dims;
  dims.train = 100;
  dims.valid = 20;
  dims.expression = 10;
  dims.descriptors = 12;
  const Dataset ds = make_combo(5, dims);
  EXPECT_EQ(ds.train_rows(), 100u);
  EXPECT_EQ(ds.valid_rows(), 20u);
  EXPECT_EQ(ds.input_dim(0), 10u);
  EXPECT_EQ(ds.input_dim(1), 12u);
}

TEST(Baselines, ComboSharesDrugSubmodel) {
  const Dataset ds = make_combo(2);
  Rng rng(1);
  nn::Graph g = combo_baseline(ds, rng);
  nn::ForwardCtx ctx{};
  std::vector<tensor::Tensor> probe;
  for (const auto& x : ds.x_train) probe.push_back(nn::slice_rows(x, 0, 2));
  (void)g.forward(probe, ctx);
  // Parameter count with a *shared* drug submodel: the drug2 branch adds
  // nothing. Verify by comparing against an unshared estimate.
  const std::size_t h = 96;
  const std::size_t d_expr = ds.input_dim(0), d_drug = ds.input_dim(1);
  const std::size_t cell_sub = (d_expr * h + h) + 2 * (h * h + h);
  const std::size_t drug_sub = (d_drug * h + h) + 2 * (h * h + h);
  const std::size_t head = (3 * h * h + h) + 2 * (h * h + h);
  const std::size_t out = h + 1;
  EXPECT_EQ(g.param_count(), cell_sub + drug_sub + head + out);
}

TEST(Baselines, BuildAndEvaluateAll) {
  // Each baseline must build, train a little, and beat a trivial predictor.
  {
    ComboDims dims;
    dims.train = 512;
    dims.valid = 128;
    const Dataset ds = make_combo(11, dims);
    Rng rng(1);
    nn::Graph g = combo_baseline(ds, rng);
    nn::TrainOptions opts;
    opts.epochs = 3;
    opts.batch_size = ds.batch_size;
    Rng train_rng(2);
    (void)nn::fit(g, ds.x_train, ds.y_train, opts, train_rng);
    EXPECT_GT(nn::evaluate(g, ds.x_valid, ds.y_valid, ds.metric), 0.0f);
  }
  {
    UnoDims dims;
    dims.train = 512;
    dims.valid = 128;
    const Dataset ds = make_uno(11, dims);
    Rng rng(1);
    nn::Graph g = uno_baseline(ds, rng);
    nn::TrainOptions opts;
    opts.epochs = 3;
    opts.batch_size = ds.batch_size;
    Rng train_rng(2);
    (void)nn::fit(g, ds.x_train, ds.y_train, opts, train_rng);
    EXPECT_GT(nn::evaluate(g, ds.x_valid, ds.y_valid, ds.metric), 0.0f);
  }
  {
    Nt3Dims dims;
    dims.train = 128;
    dims.valid = 64;
    dims.length = 128;
    const Dataset ds = make_nt3(11, dims);
    Rng rng(1);
    nn::Graph g = nt3_baseline(ds, rng);
    nn::TrainOptions opts;
    opts.epochs = 3;
    opts.batch_size = ds.batch_size;
    opts.loss = ds.loss;
    Rng train_rng(2);
    (void)nn::fit(g, ds.x_train, ds.y_train, opts, train_rng);
    EXPECT_GT(nn::evaluate(g, ds.x_valid, ds.y_valid, ds.metric), 0.6f);
  }
}

TEST(Baselines, DispatchByName) {
  const Dataset ds = make_nt3(1, {.train = 32, .valid = 16, .length = 96, .motif = 8});
  Rng rng(1);
  EXPECT_NO_THROW((void)baseline_for(ds, rng));
  Dataset bogus = ds;
  bogus.name = "unknown";
  EXPECT_THROW((void)baseline_for(bogus, rng), std::invalid_argument);
}

}  // namespace
}  // namespace ncnas::data
