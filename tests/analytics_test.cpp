#include <gtest/gtest.h>

#include <sstream>

#include "ncnas/analytics/posttrain.hpp"
#include "ncnas/analytics/report.hpp"
#include "ncnas/analytics/series.hpp"
#include "ncnas/space/spaces.hpp"

namespace ncnas::analytics {
namespace {

TEST(Series, ResampleBestStaircase) {
  const std::vector<std::pair<double, float>> best{{30.0, 0.2f}, {90.0, 0.5f}, {150.0, 0.7f}};
  const auto series = resample_best(best, 240.0, 60.0, -1.0);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_NEAR(series[0], 0.2, 1e-6);  // by t=60
  EXPECT_NEAR(series[1], 0.5, 1e-6);  // by t=120
  EXPECT_NEAR(series[2], 0.7, 1e-6);  // by t=180
  EXPECT_NEAR(series[3], 0.7, 1e-6);  // plateau
}

TEST(Series, ResampleEmptyUsesFill) {
  const auto series = resample_best({}, 120.0, 60.0, -1.0);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], -1.0);
}

TEST(Series, ResampleMeanAveragesPerBucket) {
  const std::vector<std::pair<double, float>> obs{
      {10.0, 0.0f}, {20.0, 1.0f},   // bucket 0: mean 0.5
      {70.0, 0.2f},                 // bucket 1: 0.2
                                    // bucket 2: empty -> carries 0.2
      {190.0, 0.8f}};               // bucket 3: 0.8
  const auto series = resample_mean(obs, 240.0, 60.0, -1.0);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_NEAR(series[0], 0.5, 1e-6);
  EXPECT_NEAR(series[1], 0.2, 1e-6);
  EXPECT_NEAR(series[2], 0.2, 1e-6);
  EXPECT_NEAR(series[3], 0.8, 1e-6);
}

TEST(Series, ResampleMeanEmptyUsesFill) {
  const auto series = resample_mean({}, 120.0, 60.0, -0.5);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], -0.5);
  EXPECT_DOUBLE_EQ(series[1], -0.5);
}

TEST(Series, ResampleMeanIgnoresOutOfRange) {
  const std::vector<std::pair<double, float>> obs{{-5.0, 9.0f}, {500.0, 9.0f}, {30.0, 0.3f}};
  const auto series = resample_mean(obs, 60.0, 60.0, 0.0);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_NEAR(series[0], 0.3, 1e-6);
}

TEST(Series, QuantileInterpolates) {
  EXPECT_DOUBLE_EQ(quantile({1, 2, 3, 4, 5}, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile({1, 2, 3, 4}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile({7}, 0.9), 7.0);
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
}

TEST(Series, QuantileBandsAcrossRuns) {
  const std::vector<std::vector<double>> runs{
      {0.1, 0.2, 0.3}, {0.2, 0.3, 0.4}, {0.3, 0.4, 0.5}};
  const QuantileBands bands = quantile_bands(runs);
  ASSERT_EQ(bands.q50.size(), 3u);
  EXPECT_DOUBLE_EQ(bands.q50[0], 0.2);
  EXPECT_DOUBLE_EQ(bands.q50[2], 0.4);
  EXPECT_LT(bands.q10[1], bands.q90[1]);
}

TEST(Series, ShorterRunsExtendWithLastValue) {
  const std::vector<std::vector<double>> runs{{0.5}, {0.1, 0.9}};
  const QuantileBands bands = quantile_bands(runs);
  ASSERT_EQ(bands.q50.size(), 2u);
  // Bucket 1 sees {0.5 (extended), 0.9}.
  EXPECT_DOUBLE_EQ(bands.q50[1], 0.7);
}

TEST(PostTrain, BaselineAndArchProduceComparableRows) {
  data::Nt3Dims dims;
  dims.train = 64;
  dims.valid = 32;
  dims.length = 64;
  dims.motif = 6;
  const data::Dataset ds = data::make_nt3(5, dims);
  const space::SearchSpace s = space::nt3_small_space();

  PostTrainOptions opts;
  opts.epochs = 2;
  const PostTrainResult base = post_train_baseline(ds, opts);
  EXPECT_GT(base.params, 0u);
  EXPECT_GT(base.train_seconds, 0.0);

  tensor::Rng rng(1);
  const PostTrainResult mine = post_train(s, ds, s.random_arch(rng), opts);
  EXPECT_GT(mine.params, 0u);

  const RatioRow row = ratios(mine, base);
  EXPECT_GT(row.param_ratio, 0.0f);
  EXPECT_GT(row.time_ratio, 0.0f);
}

TEST(PostTrain, ManyKeepsInputOrder) {
  data::Nt3Dims dims;
  dims.train = 32;
  dims.valid = 16;
  dims.length = 64;
  dims.motif = 6;
  const data::Dataset ds = data::make_nt3(5, dims);
  const space::SearchSpace s = space::nt3_small_space();
  tensor::Rng rng(2);
  std::vector<nas::EvalRecord> top(3);
  for (auto& rec : top) {
    rec.arch = s.random_arch(rng);
    rec.reward = 0.5f;
  }
  PostTrainOptions opts;
  opts.epochs = 1;
  const auto results = post_train_many(s, ds, top, opts);
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(results[i].arch, top[i].arch);
    EXPECT_EQ(results[i].search_reward, 0.5f);
  }
}

TEST(Report, TableAlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Report, SeriesAndSparkline) {
  std::ostringstream os;
  print_series(os, "u", {0.5, 0.75}, 60.0);
  EXPECT_NE(os.str().find("u\t1.0\t0.5000"), std::string::npos);
  std::ostringstream spark;
  print_sparkline(spark, "traj", {0.0, 0.5, 1.0}, 0.0, 1.0);
  EXPECT_NE(spark.str().find("traj |"), std::string::npos);
}

TEST(Report, FmtPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace ncnas::analytics
