#include <gtest/gtest.h>

#include "ncnas/nn/graph.hpp"
#include "ncnas/nn/layers.hpp"

namespace ncnas::nn {
namespace {

using tensor::Rng;
using tensor::Tensor;

TEST(Graph, SingleChainForward) {
  Rng rng(1);
  Graph g;
  const std::size_t in = g.add_input("x", {3});
  const std::size_t d = g.add(std::make_unique<Dense>(2, Act::kLinear, rng), {in});
  g.set_output(d);
  Tensor x({4, 3});
  ForwardCtx ctx{};
  const Tensor y = g.forward(std::vector<Tensor>{x}, ctx);
  EXPECT_EQ(y.shape(), tensor::Shape({4, 2}));
  EXPECT_EQ(g.output_shape(), FeatShape({2}));
}

TEST(Graph, MultiInputConcatModel) {
  Rng rng(2);
  Graph g;
  const std::size_t a = g.add_input("a", {2});
  const std::size_t b = g.add_input("b", {3});
  const std::size_t cat = g.add(std::make_unique<Concat>(), {a, b});
  g.set_output(cat);
  Tensor xa = Tensor::of2d({{1, 2}});
  Tensor xb = Tensor::of2d({{3, 4, 5}});
  ForwardCtx ctx{};
  const Tensor y = g.forward(std::vector<Tensor>{xa, xb}, ctx);
  EXPECT_EQ(y.shape(), tensor::Shape({1, 5}));
  EXPECT_FLOAT_EQ(y(0, 4), 5.0f);
}

TEST(Graph, ForwardValidatesInputCountAndShape) {
  Rng rng(3);
  Graph g;
  (void)g.add_input("x", {3});
  ForwardCtx ctx{};
  EXPECT_THROW((void)g.forward(std::vector<Tensor>{}, ctx), std::invalid_argument);
  Tensor wrong({2, 4});
  EXPECT_THROW((void)g.forward(std::vector<Tensor>{wrong}, ctx), std::invalid_argument);
}

TEST(Graph, TopologicalOrderEnforced) {
  Rng rng(4);
  Graph g;
  const std::size_t in = g.add_input("x", {2});
  EXPECT_THROW((void)g.add(std::make_unique<Identity>(), {in + 5}), std::invalid_argument);
}

TEST(Graph, FanOutAccumulatesGradients) {
  // x -> dense -> {identity, identity} -> add; the dense's grad must be the
  // sum of both branch gradients (numeric check via training one step).
  Rng rng(5);
  Graph g;
  const std::size_t in = g.add_input("x", {2});
  const std::size_t d = g.add(std::make_unique<Dense>(2, Act::kLinear, rng), {in});
  const std::size_t i1 = g.add(std::make_unique<Identity>(), {d});
  const std::size_t i2 = g.add(std::make_unique<Identity>(), {d});
  const std::size_t sum = g.add(std::make_unique<Add>(), {i1, i2});
  g.set_output(sum);
  Tensor x = Tensor::of2d({{1, 1}});
  ForwardCtx ctx{};
  (void)g.forward(std::vector<Tensor>{x}, ctx);
  g.zero_grad();
  Tensor grad_out = Tensor::full({1, 2}, 1.0f);
  g.backward(grad_out);
  // dL/d(dense out) = 2 (two identity consumers of the same tensor).
  // dW[i][j] = x_i * 2 = 2.
  const auto params = g.parameters();
  ASSERT_FALSE(params.empty());
  for (std::size_t i = 0; i < params[0]->size(); ++i) {
    EXPECT_FLOAT_EQ(params[0]->grad[i], 2.0f);
  }
}

TEST(Graph, DeadBranchesAreSkippedInBackward) {
  Rng rng(6);
  Graph g;
  const std::size_t in = g.add_input("x", {2});
  const std::size_t live = g.add(std::make_unique<Dense>(2, Act::kLinear, rng), {in});
  const std::size_t dead = g.add(std::make_unique<Dense>(2, Act::kLinear, rng), {in});
  g.set_output(live);
  Tensor x = Tensor::of2d({{1, 2}});
  ForwardCtx ctx{};
  (void)g.forward(std::vector<Tensor>{x}, ctx);
  g.zero_grad();
  g.backward(Tensor::full({1, 2}, 1.0f));
  const Layer& dead_layer = g.layer(dead);
  for (const ParamPtr& p : dead_layer.parameters()) {
    for (std::size_t i = 0; i < p->size(); ++i) EXPECT_FLOAT_EQ(p->grad[i], 0.0f);
  }
}

TEST(Graph, SharedParametersCountedOnce) {
  Rng rng(7);
  Graph g;
  const std::size_t a = g.add_input("a", {3});
  const std::size_t b = g.add_input("b", {3});
  auto donor = std::make_unique<Dense>(4, Act::kLinear, rng);
  const Dense* donor_ptr = donor.get();
  const std::size_t d1 = g.add(std::move(donor), {a});
  const std::size_t d2 = g.add(clone_shared(*donor_ptr), {b});
  const std::size_t cat = g.add(std::make_unique<Concat>(), {d1, d2});
  g.set_output(cat);
  Tensor xa({2, 3}), xb({2, 3});
  ForwardCtx ctx{};
  (void)g.forward(std::vector<Tensor>{xa, xb}, ctx);
  // 3*4 weights + 4 biases, shared across both branches => counted once.
  EXPECT_EQ(g.param_count(), 3u * 4u + 4u);
}

TEST(Graph, SummaryMentionsEveryNode) {
  Rng rng(8);
  Graph g;
  const std::size_t in = g.add_input("x", {2});
  (void)g.add(std::make_unique<Dense>(3, Act::kRelu, rng), {in});
  const std::string s = g.summary();
  EXPECT_NE(s.find("input 'x'"), std::string::npos);
  EXPECT_NE(s.find("dense(3, relu)"), std::string::npos);
  EXPECT_NE(s.find("[output]"), std::string::npos);
}

TEST(Graph, SetOutputValidatesId) {
  Graph g;
  (void)g.add_input("x", {1});
  EXPECT_THROW(g.set_output(99), std::invalid_argument);
}

}  // namespace
}  // namespace ncnas::nn
