#include <gtest/gtest.h>

#include "ncnas/nn/graph.hpp"
#include "ncnas/nn/layers.hpp"
#include "ncnas/nn/trainer.hpp"

namespace ncnas::nn {
namespace {

using tensor::Rng;
using tensor::Tensor;

/// y = X w* + b* with small noise.
struct LinearProblem {
  Tensor x_train, y_train, x_valid, y_valid;
};

LinearProblem make_linear(std::size_t rows, std::size_t dims, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> w(dims);
  for (float& v : w) v = static_cast<float>(rng.normal());
  const auto gen = [&](std::size_t n) {
    Tensor x({n, dims}), y({n, 1});
    for (std::size_t i = 0; i < n; ++i) {
      float acc = 0.3f;
      for (std::size_t j = 0; j < dims; ++j) {
        x(i, j) = static_cast<float>(rng.normal());
        acc += x(i, j) * w[j];
      }
      y(i, 0) = acc + 0.01f * static_cast<float>(rng.normal());
    }
    return std::pair{std::move(x), std::move(y)};
  };
  auto [xt, yt] = gen(rows);
  auto [xv, yv] = gen(rows / 4);
  return {std::move(xt), std::move(yt), std::move(xv), std::move(yv)};
}

Graph linear_model(std::size_t dims, Rng& rng) {
  Graph g;
  const std::size_t in = g.add_input("x", {dims});
  g.set_output(g.add(std::make_unique<Dense>(1, Act::kLinear, rng), {in}));
  return g;
}

TEST(Trainer, LearnsLinearRegression) {
  const LinearProblem prob = make_linear(512, 6, 21);
  Rng rng(1);
  Graph model = linear_model(6, rng);
  TrainOptions opts;
  opts.epochs = 30;
  opts.batch_size = 32;
  // Adam's per-step movement is bounded by the learning rate; give the test
  // enough travel to recover |w*| ~ 1 coefficients.
  opts.learning_rate = 0.02f;
  Rng train_rng(2);
  const TrainResult res =
      fit(model, std::vector<Tensor>{prob.x_train}, prob.y_train, opts, train_rng);
  EXPECT_FALSE(res.stopped_early);
  EXPECT_EQ(res.epoch_losses.size(), 30u);
  EXPECT_LT(res.epoch_losses.back(), res.epoch_losses.front());
  const float r2 =
      evaluate(model, std::vector<Tensor>{prob.x_valid}, prob.y_valid, Metric::kR2);
  EXPECT_GT(r2, 0.95f);
}

TEST(Trainer, LearnsSeparableClassification) {
  Rng rng(5);
  constexpr std::size_t kN = 400;
  Tensor x({kN, 2}), y({kN, 1});
  for (std::size_t i = 0; i < kN; ++i) {
    const float cls = static_cast<float>(i % 2);
    x(i, 0) = static_cast<float>(rng.normal()) + (cls > 0 ? 2.5f : -2.5f);
    x(i, 1) = static_cast<float>(rng.normal());
    y(i, 0) = cls;
  }
  Graph g;
  const std::size_t in = g.add_input("x", {2});
  g.set_output(g.add(std::make_unique<Dense>(2, Act::kSoftmax, rng), {in}));
  TrainOptions opts;
  opts.epochs = 20;
  opts.batch_size = 16;
  opts.loss = LossKind::kCrossEntropy;
  Rng train_rng(6);
  (void)fit(g, std::vector<Tensor>{x}, y, opts, train_rng);
  const float acc = evaluate(g, std::vector<Tensor>{x}, y, Metric::kAccuracy);
  EXPECT_GT(acc, 0.95f);
}

TEST(Trainer, SubsetFractionUsesFewerRows) {
  const LinearProblem prob = make_linear(1000, 4, 9);
  Rng rng(1);
  Graph model = linear_model(4, rng);
  TrainOptions opts;
  opts.epochs = 1;
  opts.batch_size = 50;
  opts.subset_fraction = 0.1;
  Rng train_rng(2);
  const TrainResult res =
      fit(model, std::vector<Tensor>{prob.x_train}, prob.y_train, opts, train_rng);
  EXPECT_EQ(res.batches_run, 2u);  // 100 rows / 50 per batch
}

TEST(Trainer, ShouldStopAbortsTraining) {
  const LinearProblem prob = make_linear(256, 4, 10);
  Rng rng(1);
  Graph model = linear_model(4, rng);
  TrainOptions opts;
  opts.epochs = 50;
  opts.batch_size = 32;
  int budget = 3;
  opts.should_stop = [&budget] { return budget-- <= 0; };
  Rng train_rng(2);
  const TrainResult res =
      fit(model, std::vector<Tensor>{prob.x_train}, prob.y_train, opts, train_rng);
  EXPECT_TRUE(res.stopped_early);
  EXPECT_EQ(res.batches_run, 3u);
}

TEST(Trainer, DeterministicGivenSeeds) {
  const LinearProblem prob = make_linear(128, 3, 11);
  TrainOptions opts;
  opts.epochs = 3;
  opts.batch_size = 16;
  const auto run = [&] {
    Rng rng(1);
    Graph model = linear_model(3, rng);
    Rng train_rng(2);
    (void)fit(model, std::vector<Tensor>{prob.x_train}, prob.y_train, opts, train_rng);
    return evaluate(model, std::vector<Tensor>{prob.x_valid}, prob.y_valid, Metric::kR2);
  };
  EXPECT_FLOAT_EQ(run(), run());
}

TEST(Trainer, RejectsMismatchedInputs) {
  Rng rng(1);
  Graph model = linear_model(3, rng);
  Tensor x({10, 3}), y({12, 1});
  TrainOptions opts;
  Rng train_rng(2);
  EXPECT_THROW((void)fit(model, std::vector<Tensor>{x}, y, opts, train_rng),
               std::invalid_argument);
}

// Deterministic synthetic gradients, varied per step so moments evolve.
void fill_grads(const std::vector<ParamPtr>& params, int step) {
  for (std::size_t p = 0; p < params.size(); ++p) {
    float* g = params[p]->grad.data();
    for (std::size_t i = 0; i < params[p]->size(); ++i) {
      g[i] = 0.01f * static_cast<float>((step + 1) * (p + 1)) +
             0.001f * static_cast<float>(i);
    }
  }
}

TEST(Adam, ExportImportThenStepContinuesBitIdentically) {
  // Two distinct parameters sharing a name (every Dense layer calls its
  // kernel "dense.w") plus one genuinely shared (mirrored) parameter that
  // appears twice in the list: the name-keyed moment map must keep the
  // duplicates apart and the shared pointer unified.
  const auto make_params = [] {
    auto w1 = std::make_shared<Parameter>("dense.w", tensor::Tensor({2, 3}, 0.5f));
    auto w2 = std::make_shared<Parameter>("dense.w", tensor::Tensor({3, 1}, -0.25f));
    auto shared = std::make_shared<Parameter>("embed.w", tensor::Tensor({4}, 1.0f));
    return std::vector<ParamPtr>{w1, w2, shared, shared};
  };

  std::vector<ParamPtr> live = make_params();
  Adam adam(0.01f);
  for (int step = 0; step < 5; ++step) {
    fill_grads(live, step);
    adam.step(live);
  }

  const Adam::State st = adam.export_state();
  EXPECT_EQ(st.step_count, 5);
  ASSERT_EQ(st.entries.size(), 3u);  // dense.w, dense.w#2, embed.w — not 4
  EXPECT_EQ(st.entries[0].key, "dense.w");
  EXPECT_EQ(st.entries[1].key, "dense.w#2");
  EXPECT_EQ(st.entries[2].key, "embed.w");

  // A second optimizer in a fresh process: parameters rebuilt at the same
  // values the live ones hold right now, moments imported by key.
  std::vector<ParamPtr> restored = make_params();
  for (std::size_t p = 0; p < live.size(); ++p) {
    restored[p]->value = live[p]->value;
  }
  Adam adam2(0.01f);
  adam2.import_state(st);

  for (int step = 5; step < 10; ++step) {
    fill_grads(live, step);
    adam.step(live);
    fill_grads(restored, step);
    adam2.step(restored);
  }
  for (std::size_t p = 0; p < live.size(); ++p) {
    SCOPED_TRACE("param " + std::to_string(p));
    const float* a = live[p]->value.data();
    const float* b = restored[p]->value.data();
    for (std::size_t i = 0; i < live[p]->size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(Adam, ImportedStateSerializesBackCanonically) {
  std::vector<ParamPtr> params = {
      std::make_shared<Parameter>("b", tensor::Tensor({2}, 1.0f)),
      std::make_shared<Parameter>("a", tensor::Tensor({2}, 2.0f)),
  };
  Adam adam;
  fill_grads(params, 0);
  adam.step(params);
  const Adam::State st = adam.export_state();
  // Canonical form: sorted by key regardless of first-seen order.
  ASSERT_EQ(st.entries.size(), 2u);
  EXPECT_EQ(st.entries[0].key, "a");
  EXPECT_EQ(st.entries[1].key, "b");

  Adam other;
  other.import_state(st);
  const Adam::State again = other.export_state();
  EXPECT_EQ(again.step_count, st.step_count);
  ASSERT_EQ(again.entries.size(), st.entries.size());
  for (std::size_t i = 0; i < st.entries.size(); ++i) {
    EXPECT_EQ(again.entries[i].key, st.entries[i].key);
    EXPECT_EQ(again.entries[i].m, st.entries[i].m);
    EXPECT_EQ(again.entries[i].v, st.entries[i].v);
  }
}

TEST(SliceGather, RowExtraction) {
  const Tensor t = Tensor::of2d({{1, 2}, {3, 4}, {5, 6}});
  const Tensor s = slice_rows(t, 1, 3);
  EXPECT_EQ(s.shape(), tensor::Shape({2, 2}));
  EXPECT_FLOAT_EQ(s(0, 0), 3.0f);
  const std::size_t rows[] = {2, 0};
  const Tensor gathered = gather_rows(t, rows);
  EXPECT_FLOAT_EQ(gathered(0, 1), 6.0f);
  EXPECT_FLOAT_EQ(gathered(1, 0), 1.0f);
  EXPECT_THROW((void)slice_rows(t, 2, 1), std::invalid_argument);
}

}  // namespace
}  // namespace ncnas::nn
