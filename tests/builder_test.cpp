#include <gtest/gtest.h>

#include "ncnas/data/dataset.hpp"
#include "ncnas/nn/trainer.hpp"
#include "ncnas/space/builder.hpp"
#include "ncnas/space/spaces.hpp"

namespace ncnas::space {
namespace {

using tensor::Rng;
using tensor::Tensor;

data::Dataset tiny_combo() {
  data::ComboDims dims;
  dims.train = 64;
  dims.valid = 32;
  dims.expression = 8;
  dims.descriptors = 12;
  return data::make_combo(3, dims);
}

std::vector<std::size_t> dims_of(const data::Dataset& ds) {
  std::vector<std::size_t> dims;
  for (std::size_t i = 0; i < ds.input_count(); ++i) dims.push_back(ds.input_dim(i));
  return dims;
}

TEST(Builder, ComboAllIdentityStillProducesScalarOutput) {
  const SearchSpace s = combo_small_space();
  const data::Dataset ds = tiny_combo();
  ArchEncoding arch(s.num_decisions(), 0);  // all Identity / Connect-null
  Rng rng(1);
  nn::Graph g = build_model(s, arch, dims_of(ds), TaskHead::regression(), rng);
  EXPECT_EQ(g.output_shape(), nn::FeatShape({1}));
  nn::ForwardCtx ctx{};
  std::vector<Tensor> probe;
  for (const auto& x : ds.x_train) probe.push_back(nn::slice_rows(x, 0, 4));
  const Tensor y = g.forward(probe, ctx);
  EXPECT_EQ(y.shape(), tensor::Shape({4, 1}));
}

TEST(Builder, EveryComboConnectOptionBuilds) {
  const SearchSpace s = combo_small_space();
  const data::Dataset ds = tiny_combo();
  const auto dims = dims_of(ds);
  // Decision 9 is C1/B1's connect node (after C0's 6 and C1/B0's 3 MLPs).
  std::size_t connect_idx = SIZE_MAX;
  for (std::size_t d = 0; d < s.num_decisions(); ++d) {
    if (s.decisions()[d].name == "connect") connect_idx = d;
  }
  ASSERT_NE(connect_idx, SIZE_MAX);
  for (std::uint16_t opt = 0; opt < 9; ++opt) {
    ArchEncoding arch(s.num_decisions(), 1);  // Dense(16, relu) everywhere
    arch[connect_idx] = opt;
    Rng rng(1);
    nn::Graph g = build_model(s, arch, dims, TaskHead::regression(), rng);
    nn::ForwardCtx ctx{};
    std::vector<Tensor> probe;
    for (const auto& x : ds.x_train) probe.push_back(nn::slice_rows(x, 0, 2));
    EXPECT_NO_THROW((void)g.forward(probe, ctx)) << "connect option " << opt;
  }
}

TEST(Builder, MirrorNodesShareDrugSubmodelWeights) {
  const SearchSpace s = combo_small_space();
  const data::Dataset ds = tiny_combo();
  ArchEncoding arch(s.num_decisions(), 9);  // Dense(96, relu) everywhere
  for (std::size_t d = 0; d < s.num_decisions(); ++d) {
    if (s.decisions()[d].name == "connect") arch[d] = 0;  // connect: null
  }
  Rng rng(1);
  nn::Graph g = build_model(s, arch, dims_of(ds), TaskHead::regression(), rng);
  nn::ForwardCtx ctx{};
  std::vector<Tensor> probe;
  for (const auto& x : ds.x_train) probe.push_back(nn::slice_rows(x, 0, 2));
  (void)g.forward(probe, ctx);

  // With sharing, the drug1 stack's weights serve drug2 as well. Parameter
  // accounting: cell submodel (8->96, 96->96, 96->96) + drug submodel
  // (12->96, 96->96, 96->96) + C1 stack (288->96, 96->96, 96->96)
  // + C2 stack (288->96...? no: C1 out = concat(B0 96, B1 null-pass 288)).
  // Rather than hand-derive the whole graph, check the key invariant:
  // building the same arch with mirrors disabled would add exactly the drug
  // submodel once more.
  const std::size_t with_sharing = g.param_count();
  const std::size_t drug_submodel = (12 * 96 + 96) + 2 * (96 * 96 + 96);
  // Compare against an arch-equivalent graph built by pretending drug2 is
  // independent: simulate by adding drug_submodel.
  EXPECT_GT(with_sharing, drug_submodel);  // sanity
  // Feed identical drug1/drug2 inputs: shared encoders must produce outputs
  // symmetric under drug swap.
  std::vector<Tensor> symm = probe;
  symm[2] = symm[1];
  const Tensor y1 = g.forward(symm, ctx);
  std::swap(symm[1], symm[2]);
  const Tensor y2 = g.forward(symm, ctx);
  EXPECT_LT(tensor::max_abs_diff(y1, y2), 1e-5f);
}

TEST(Builder, UnoResidualAddNodesBuild) {
  const SearchSpace s = uno_small_space();
  data::UnoDims dims;
  dims.train = 64;
  dims.valid = 16;
  dims.rnaseq = 8;
  dims.descriptors = 10;
  dims.fingerprints = 6;
  const data::Dataset ds = data::make_uno(3, dims);
  tensor::Rng arch_rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const ArchEncoding arch = s.random_arch(arch_rng);
    Rng rng(1);
    nn::Graph g = build_model(s, arch, dims_of(ds), TaskHead::regression(), rng);
    nn::ForwardCtx ctx{};
    std::vector<Tensor> probe;
    for (const auto& x : ds.x_train) probe.push_back(nn::slice_rows(x, 0, 2));
    const Tensor y = g.forward(probe, ctx);
    EXPECT_EQ(y.shape(), tensor::Shape({2, 1})) << "trial " << trial;
  }
}

TEST(Builder, Nt3RandomArchitecturesBuildAndClassify) {
  const SearchSpace s = nt3_small_space();
  data::Nt3Dims dims;
  dims.train = 32;
  dims.valid = 16;
  dims.length = 64;
  dims.motif = 6;
  const data::Dataset ds = data::make_nt3(3, dims);
  tensor::Rng arch_rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const ArchEncoding arch = s.random_arch(arch_rng);
    Rng rng(1);
    nn::Graph g = build_model(s, arch, dims_of(ds), TaskHead::classification(2), rng);
    nn::ForwardCtx ctx{};
    std::vector<Tensor> probe{nn::slice_rows(ds.x_train[0], 0, 3)};
    const Tensor y = g.forward(probe, ctx);
    ASSERT_EQ(y.shape(), tensor::Shape({3, 2})) << "trial " << trial;
    for (std::size_t r = 0; r < 3; ++r) {
      EXPECT_NEAR(y(r, 0) + y(r, 1), 1.0f, 1e-5f);  // softmax head
    }
  }
}

TEST(Builder, OversizedConvDegradesToIdentity) {
  // Aggressive pooling can shrink the sequence below the next kernel; the
  // builder must degrade that conv to identity instead of failing.
  const SearchSpace s = nt3_small_space();
  data::Nt3Dims dims;
  dims.train = 16;
  dims.valid = 8;
  dims.length = 20;  // tiny: pool(6) twice -> length 3 < kernel 6
  dims.motif = 4;
  const data::Dataset ds = data::make_nt3(3, dims);
  ArchEncoding arch = {4, 1, 4, 4, 1, 4, 1, 1, 1, 1, 1, 1};  // conv6/pool6 twice
  Rng rng(1);
  nn::Graph g = build_model(s, arch, dims_of(ds), TaskHead::classification(2), rng);
  nn::ForwardCtx ctx{};
  std::vector<Tensor> probe{nn::slice_rows(ds.x_train[0], 0, 2)};
  EXPECT_NO_THROW((void)g.forward(probe, ctx));
}

TEST(Builder, NullConnectContributesNothing) {
  // Combo C1 with a Null connect: the cell output is just the MLP block, so
  // the model with connect=null must have FEWER parameters than the same
  // model with an input splice (which widens the next concat).
  const SearchSpace s = combo_small_space();
  const data::Dataset ds = tiny_combo();
  const auto dims = dims_of(ds);
  std::size_t connect_idx = SIZE_MAX;
  for (std::size_t d = 0; d < s.num_decisions(); ++d) {
    if (s.decisions()[d].name == "connect") connect_idx = d;
  }
  ASSERT_NE(connect_idx, SIZE_MAX);
  const auto params_for = [&](std::uint16_t connect_opt) {
    ArchEncoding arch(s.num_decisions(), 1);  // Dense(16, relu) everywhere
    arch[connect_idx] = connect_opt;
    Rng rng(1);
    nn::Graph g = build_model(s, arch, dims, TaskHead::regression(), rng);
    nn::ForwardCtx ctx{};
    std::vector<Tensor> probe;
    for (const auto& x : ds.x_train) probe.push_back(nn::slice_rows(x, 0, 1));
    (void)g.forward(probe, ctx);
    return g.param_count();
  };
  const std::size_t with_null = params_for(0);       // Null
  const std::size_t with_all_inputs = params_for(5); // all three inputs
  EXPECT_LT(with_null, with_all_inputs);
}

TEST(Builder, RejectsWrongInputCount) {
  const SearchSpace s = combo_small_space();
  ArchEncoding arch(s.num_decisions(), 0);
  Rng rng(1);
  const std::vector<std::size_t> dims{8, 12};  // needs 3
  EXPECT_THROW((void)build_model(s, arch, dims, TaskHead::regression(), rng),
               std::invalid_argument);
}

TEST(Builder, RejectsInvalidEncoding) {
  const SearchSpace s = combo_small_space();
  ArchEncoding arch(s.num_decisions(), 0);
  arch[0] = 99;
  Rng rng(1);
  const std::vector<std::size_t> dims{8, 12, 12};
  EXPECT_THROW((void)build_model(s, arch, dims, TaskHead::regression(), rng),
               std::invalid_argument);
}

TEST(Builder, BuiltComboModelTrains) {
  const SearchSpace s = combo_small_space();
  const data::Dataset ds = tiny_combo();
  ArchEncoding arch(s.num_decisions(), 1);  // Dense(16, relu) everywhere
  arch.back() = 5;                          // connect: all inputs
  Rng rng(1);
  nn::Graph g = build_model(s, arch, dims_of(ds), TaskHead::regression(), rng);
  nn::TrainOptions opts;
  opts.epochs = 8;
  opts.batch_size = 16;
  Rng train_rng(2);
  const auto res = nn::fit(g, ds.x_train, ds.y_train, opts, train_rng);
  EXPECT_LT(res.epoch_losses.back(), res.epoch_losses.front());
}

}  // namespace
}  // namespace ncnas::space
