#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <limits>
#include <sstream>

#include "ncnas/exec/fault.hpp"
#include "ncnas/nas/driver.hpp"
#include "ncnas/nas/result_io.hpp"
#include "ncnas/obs/journal.hpp"
#include "ncnas/space/spaces.hpp"

namespace ncnas::nas {
namespace {

data::Dataset tiny_nt3() {
  data::Nt3Dims dims;
  dims.train = 64;
  dims.valid = 32;
  dims.length = 64;
  dims.motif = 6;
  return data::make_nt3(5, dims);
}

SearchConfig small_config(SearchStrategy strategy) {
  SearchConfig cfg;
  cfg.strategy = strategy;
  cfg.cluster = {.num_agents = 3, .workers_per_agent = 4};
  cfg.wall_time_seconds = 1800.0;
  cfg.fidelity = {.epochs = 1, .subset_fraction = 1.0};
  cfg.cost = {.startup_seconds = 20.0, .seconds_per_megaunit = 1.0, .timeout_seconds = 600.0};
  cfg.seed = 11;
  return cfg;
}

// A plan that exercises every fault shape at once.
exec::FaultPlan chaos_plan() {
  exec::FaultPlan plan;
  plan.seed = 7;
  plan.eval_failure_prob = 0.25;
  plan.slowdown_prob = 0.15;
  plan.slowdown_multiple = 2.0;
  plan.lost_result_prob = 0.10;
  plan.ps_drop_prob = 0.15;
  plan.ps_delay_prob = 0.15;
  plan.ps_delay_seconds = 15.0;
  plan.max_retries = 2;
  plan.backoff_base_seconds = 5.0;
  plan.backoff_cap_seconds = 40.0;
  plan.barrier_timeout_seconds = 120.0;
  plan.worker_crashes.push_back({.agent = 1, .worker = 0, .time = 600.0});
  return plan;
}

void expect_bit_identical(const SearchResult& a, const SearchResult& b) {
  ASSERT_EQ(a.evals.size(), b.evals.size());
  for (std::size_t i = 0; i < a.evals.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.evals[i].time, b.evals[i].time) << i;
    EXPECT_EQ(a.evals[i].reward, b.evals[i].reward) << i;
    EXPECT_EQ(a.evals[i].params, b.evals[i].params) << i;
    EXPECT_DOUBLE_EQ(a.evals[i].sim_duration, b.evals[i].sim_duration) << i;
    EXPECT_EQ(a.evals[i].cache_hit, b.evals[i].cache_hit) << i;
    EXPECT_EQ(a.evals[i].timed_out, b.evals[i].timed_out) << i;
    EXPECT_EQ(a.evals[i].failed, b.evals[i].failed) << i;
    EXPECT_EQ(a.evals[i].attempts, b.evals[i].attempts) << i;
    EXPECT_EQ(a.evals[i].agent, b.evals[i].agent) << i;
    EXPECT_EQ(a.evals[i].arch, b.evals[i].arch) << i;
  }
  EXPECT_DOUBLE_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.converged_early, b.converged_early);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.unique_archs, b.unique_archs);
  EXPECT_EQ(a.ppo_updates, b.ppo_updates);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.exhausted, b.exhausted);
  EXPECT_EQ(a.lost_results, b.lost_results);
  EXPECT_EQ(a.crashed_workers, b.crashed_workers);
  EXPECT_EQ(a.dead_agents, b.dead_agents);
  ASSERT_EQ(a.utilization.size(), b.utilization.size());
  for (std::size_t i = 0; i < a.utilization.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.utilization[i], b.utilization[i]) << i;
  }
}

// ---- injector unit behavior ------------------------------------------------

TEST(FaultPlan, EmptyDetection) {
  exec::FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(exec::FaultInjector(plan).enabled());

  exec::FaultPlan failing;
  failing.eval_failure_prob = 0.1;
  EXPECT_FALSE(failing.empty());
  EXPECT_TRUE(exec::FaultInjector(failing).enabled());

  exec::FaultPlan crashing;
  crashing.worker_crashes.push_back({.agent = 0, .worker = 0, .time = 100.0});
  EXPECT_FALSE(crashing.empty());
  EXPECT_TRUE(exec::FaultInjector(crashing).enabled());
}

TEST(FaultInjector, BackoffIsCappedExponential) {
  exec::FaultPlan plan;
  plan.eval_failure_prob = 1.0;
  plan.backoff_base_seconds = 5.0;
  plan.backoff_cap_seconds = 60.0;
  const exec::FaultInjector fx(plan);
  EXPECT_DOUBLE_EQ(fx.backoff(0), 0.0);
  EXPECT_DOUBLE_EQ(fx.backoff(1), 5.0);
  EXPECT_DOUBLE_EQ(fx.backoff(2), 10.0);
  EXPECT_DOUBLE_EQ(fx.backoff(3), 20.0);
  EXPECT_DOUBLE_EQ(fx.backoff(4), 40.0);
  EXPECT_DOUBLE_EQ(fx.backoff(5), 60.0);   // capped
  EXPECT_DOUBLE_EQ(fx.backoff(12), 60.0);  // stays capped, no overflow
}

TEST(FaultInjector, TaskFaultIsPureAndRespectsProbabilityEndpoints) {
  exec::FaultPlan always;
  always.eval_failure_prob = 1.0;
  const exec::FaultInjector fx_always(always);

  exec::FaultPlan never;
  never.slowdown_prob = 0.0;
  never.worker_crashes.push_back({.agent = 9, .worker = 9, .time = 1.0});  // enable
  const exec::FaultInjector fx_never(never);

  const char* keys[] = {"c3.k5.f16", "c5.k3.f32", "d128.relu", "d64.tanh"};
  for (std::size_t agent = 0; agent < 3; ++agent) {
    for (const char* key : keys) {
      for (std::size_t attempt = 0; attempt < 4; ++attempt) {
        const auto a = fx_always.task_fault(agent, key, attempt);
        const auto b = fx_always.task_fault(agent, key, attempt);
        EXPECT_TRUE(a.fail);
        EXPECT_GE(a.fail_frac, 0.1);
        EXPECT_LE(a.fail_frac, 0.9);
        EXPECT_EQ(a.fail, b.fail);            // pure: same site, same verdict
        EXPECT_EQ(a.fail_frac, b.fail_frac);
        EXPECT_EQ(a.lost, b.lost);
        EXPECT_EQ(a.slowdown, b.slowdown);

        const auto clean = fx_never.task_fault(agent, key, attempt);
        EXPECT_FALSE(clean.fail);
        EXPECT_FALSE(clean.lost);
        EXPECT_DOUBLE_EQ(clean.slowdown, 1.0);
      }
    }
  }
}

TEST(FaultInjector, LostResultExcludesMidRunFailure) {
  exec::FaultPlan plan;
  plan.lost_result_prob = 1.0;
  const exec::FaultInjector fx(plan);
  for (std::size_t attempt = 0; attempt < 4; ++attempt) {
    const auto tf = fx.task_fault(0, "c3.k5.f16", attempt);
    EXPECT_TRUE(tf.lost);
    EXPECT_FALSE(tf.fail);  // a lost result is a *completed* task
  }
}

TEST(FaultInjector, ExchangeFaultEndpointsAndPurity) {
  exec::FaultPlan drops;
  drops.ps_drop_prob = 1.0;
  drops.ps_delay_prob = 1.0;  // drop wins over delay
  const exec::FaultInjector fx(drops);
  for (std::uint64_t round = 0; round < 8; ++round) {
    const auto a = fx.exchange_fault(2, round);
    const auto b = fx.exchange_fault(2, round);
    EXPECT_TRUE(a.drop);
    EXPECT_DOUBLE_EQ(a.delay_seconds, 0.0);
    EXPECT_EQ(a.drop, b.drop);
  }

  exec::FaultPlan delays;
  delays.ps_delay_prob = 1.0;
  delays.ps_delay_seconds = 42.0;
  const exec::FaultInjector fx2(delays);
  const auto ef = fx2.exchange_fault(0, 3);
  EXPECT_FALSE(ef.drop);
  EXPECT_DOUBLE_EQ(ef.delay_seconds, 42.0);
}

TEST(FaultInjector, CrashTimeEarliestWinsAndDefaultsToInfinity) {
  exec::FaultPlan plan;
  plan.worker_crashes.push_back({.agent = 1, .worker = 2, .time = 500.0});
  plan.worker_crashes.push_back({.agent = 1, .worker = 2, .time = 300.0});
  const exec::FaultInjector fx(plan);
  EXPECT_DOUBLE_EQ(fx.crash_time(1, 2), 300.0);
  EXPECT_EQ(fx.crash_time(0, 0), std::numeric_limits<double>::infinity());
  EXPECT_EQ(fx.crash_time(1, 3), std::numeric_limits<double>::infinity());
}

TEST(FaultPlan, FingerprintDistinguishesPlans) {
  const exec::FaultPlan empty;
  exec::FaultPlan a = chaos_plan();
  EXPECT_EQ(a.fingerprint(), chaos_plan().fingerprint());  // stable
  EXPECT_NE(a.fingerprint(), empty.fingerprint());
  exec::FaultPlan b = chaos_plan();
  b.seed = a.seed + 1;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  exec::FaultPlan c = chaos_plan();
  c.worker_crashes.push_back({.agent = 0, .worker = 1, .time = 50.0});
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

// ---- driver resilience -----------------------------------------------------

// The headline regression: a null fault plan must leave the driver on its
// original code path with bit-identical results, for every strategy.
TEST(FaultDriver, NullPlanBitIdenticalForAllStrategies) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  const exec::FaultInjector null_fx{exec::FaultPlan{}};
  for (SearchStrategy strategy : {SearchStrategy::kA3C, SearchStrategy::kA2C,
                                  SearchStrategy::kRandom, SearchStrategy::kEvolution}) {
    SCOPED_TRACE(strategy_name(strategy));
    SearchConfig cfg = small_config(strategy);
    cfg.wall_time_seconds = 600.0;
    const SearchResult plain = SearchDriver(s, ds, cfg).run();
    cfg.faults = &null_fx;
    const SearchResult injected = SearchDriver(s, ds, cfg).run();
    expect_bit_identical(plain, injected);
    EXPECT_EQ(injected.retries, 0u);
    EXPECT_EQ(injected.crashed_workers, 0u);
  }
}

TEST(FaultDriver, DeterministicUnderSameFaultPlan) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  const exec::FaultInjector fx(chaos_plan());
  SearchConfig cfg = small_config(SearchStrategy::kA3C);
  cfg.faults = &fx;
  const SearchResult a = SearchDriver(s, ds, cfg).run();
  const SearchResult b = SearchDriver(s, ds, cfg).run();
  expect_bit_identical(a, b);
  // The plan actually bit: at least one fault shape fired.
  EXPECT_GT(a.retries + a.lost_results + a.exhausted, 0u);
  EXPECT_EQ(a.crashed_workers, 1u);
}

TEST(FaultDriver, RetryExhaustionFloorsRecordsAndKeepsThemOutOfTopK) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  exec::FaultPlan plan;
  plan.eval_failure_prob = 1.0;  // every attempt dies mid-run
  plan.max_retries = 1;
  const exec::FaultInjector fx(plan);
  SearchConfig cfg = small_config(SearchStrategy::kRandom);
  cfg.wall_time_seconds = 600.0;
  cfg.faults = &fx;
  const SearchResult res = SearchDriver(s, ds, cfg).run();
  ASSERT_GT(res.evals.size(), 0u);
  for (const EvalRecord& e : res.evals) {
    EXPECT_TRUE(e.failed);
    EXPECT_EQ(e.reward, 0.0f);               // ACC floor, not a measurement
    EXPECT_EQ(e.attempts, plan.max_retries + 1);
  }
  EXPECT_TRUE(res.top_k(10).empty());        // floored rewards never rank
  EXPECT_EQ(res.cache_hits, 0u);             // failures never poison the cache
  EXPECT_GE(res.exhausted, res.evals.size());
  EXPECT_EQ(res.retries, res.exhausted * plan.max_retries);
}

TEST(FaultDriver, LostResultsArePaidForAndRetried) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  exec::FaultPlan plan;
  plan.lost_result_prob = 0.5;
  plan.max_retries = 3;
  const exec::FaultInjector fx(plan);
  SearchConfig cfg = small_config(SearchStrategy::kRandom);
  cfg.wall_time_seconds = 600.0;
  cfg.faults = &fx;
  const SearchResult res = SearchDriver(s, ds, cfg).run();
  EXPECT_GT(res.lost_results, 0u);
  EXPECT_GT(res.retries, 0u);
  // Retried tasks paid for the lost attempts: attempts > 1 somewhere.
  bool any_retried = false;
  for (const EvalRecord& e : res.evals) any_retried |= e.attempts > 1;
  EXPECT_TRUE(any_retried);
}

TEST(FaultDriver, CrashedWorkerPoolKillsAgentButRunSurvives) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  exec::FaultPlan plan;
  for (std::size_t w = 0; w < 4; ++w) {
    plan.worker_crashes.push_back({.agent = 0, .worker = w, .time = 0.0});
  }
  const exec::FaultInjector fx(plan);
  SearchConfig cfg = small_config(SearchStrategy::kA2C);
  cfg.faults = &fx;
  const SearchResult res = SearchDriver(s, ds, cfg).run();
  EXPECT_EQ(res.crashed_workers, 4u);
  EXPECT_EQ(res.dead_agents, 1u);
  // The surviving agents keep searching and keep synchronizing.
  EXPECT_GT(res.evals.size(), 10u);
  EXPECT_GT(res.ppo_updates, 0u);
  bool survivors_evaluated = false;
  for (const EvalRecord& e : res.evals) survivors_evaluated |= e.agent != 0 && !e.failed;
  EXPECT_TRUE(survivors_evaluated);
  // Dead capacity leaves the utilization denominator; buckets stay bounded.
  for (double u : res.utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
}

TEST(FaultDriver, A3CDroppedExchangesNeverReachTheServer) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  exec::FaultPlan plan;
  plan.ps_drop_prob = 1.0;
  const exec::FaultInjector fx(plan);
  obs::Telemetry tel;
  SearchConfig cfg = small_config(SearchStrategy::kA3C);
  cfg.wall_time_seconds = 600.0;
  cfg.faults = &fx;
  cfg.telemetry = &tel;
  const SearchResult res = SearchDriver(s, ds, cfg).run();
  ASSERT_NE(res.telemetry, nullptr);
  const obs::MetricsSnapshot& m = res.telemetry->metrics;
  EXPECT_GT(res.ppo_updates, 0u);  // local PPO still runs
  EXPECT_EQ(m.counter_value("ncnas_ps_delta_applies_total"), 0u);
  EXPECT_GT(m.counter_value("ncnas_fault_ps_dropped_total"), 0u);
}

TEST(FaultDriver, A2CPartialRoundReleasesAfterTimeout) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  exec::FaultPlan plan;
  plan.ps_drop_prob = 0.5;  // some agents arrive, some don't: partial rounds
  plan.barrier_timeout_seconds = 120.0;
  const exec::FaultInjector fx(plan);
  obs::Telemetry tel;
  SearchConfig cfg = small_config(SearchStrategy::kA2C);
  cfg.faults = &fx;
  cfg.telemetry = &tel;
  const SearchResult res = SearchDriver(s, ds, cfg).run();
  ASSERT_NE(res.telemetry, nullptr);
  const obs::MetricsSnapshot& m = res.telemetry->metrics;
  // The run neither deadlocked nor starved: rounds kept coming, and at least
  // one of them was a timeout-forced partial release.
  EXPECT_GT(res.ppo_updates, 0u);
  EXPECT_GT(m.counter_value("ncnas_a2c_barrier_timeouts_total"), 0u);
  EXPECT_GT(m.counter_value("ncnas_ps_delta_applies_total"), 0u);
}

// The acceptance check: a journal replay of a faulty run reconciles exactly
// with the returned SearchResult — evals, retries, and dead-worker requeues.
TEST(FaultDriver, JournalReplayReconcilesWithFaultyResult) {
  const space::SearchSpace s = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  exec::FaultPlan plan = chaos_plan();
  for (std::size_t w = 0; w < 4; ++w) {  // kill agent 1's pool mid-run
    plan.worker_crashes.push_back({.agent = 1, .worker = w, .time = 300.0});
  }
  const exec::FaultInjector fx(plan);
  obs::Telemetry tel;
  tel.enable_journal();
  SearchConfig cfg = small_config(SearchStrategy::kA2C);
  cfg.faults = &fx;
  cfg.telemetry = &tel;
  const SearchResult res = SearchDriver(s, ds, cfg).run();
  ASSERT_NE(res.telemetry, nullptr);
  EXPECT_EQ(res.dead_agents, 1u);

  // Round-trip the journal through its wire format, as run_report would.
  std::ostringstream os;
  obs::Journal::export_jsonl(res.telemetry->journal, os);
  std::istringstream is(os.str());
  const obs::RunSummary sum = obs::summarize_journal(obs::Journal::import_jsonl(is));

  EXPECT_TRUE(sum.faulty());
  EXPECT_EQ(sum.evals, res.evals.size());
  EXPECT_EQ(sum.cache_hits, res.cache_hits);
  EXPECT_EQ(sum.timeouts, res.timeouts);
  EXPECT_EQ(sum.ppo_updates, res.ppo_updates);
  EXPECT_EQ(sum.retries, res.retries);
  EXPECT_EQ(sum.exhausted, res.exhausted);
  EXPECT_EQ(sum.lost_results, res.lost_results);
  EXPECT_EQ(sum.crashed_workers, res.crashed_workers);
  EXPECT_EQ(sum.dead_agents, res.dead_agents);

  const obs::MetricsSnapshot& m = res.telemetry->metrics;
  EXPECT_EQ(sum.eval_failures, m.counter_value("ncnas_fault_eval_failures_total"));
  EXPECT_EQ(sum.ps_dropped, m.counter_value("ncnas_fault_ps_dropped_total"));
  EXPECT_EQ(sum.ps_delayed, m.counter_value("ncnas_fault_ps_delayed_total"));
  EXPECT_EQ(sum.barrier_timeouts, m.counter_value("ncnas_a2c_barrier_timeouts_total"));

  float best = -std::numeric_limits<float>::infinity();
  for (const EvalRecord& e : res.evals) best = std::max(best, e.reward);
  EXPECT_EQ(sum.best_reward, best);
}

// ---- persistence -----------------------------------------------------------

TEST(FaultDriver, FingerprintCoversPlanButNotNullPlan) {
  SearchConfig cfg = small_config(SearchStrategy::kA3C);
  const std::string base = config_fingerprint(cfg, "nt3");

  const exec::FaultInjector null_fx{exec::FaultPlan{}};
  cfg.faults = &null_fx;
  EXPECT_EQ(config_fingerprint(cfg, "nt3"), base);  // empty plan: no alias break

  const exec::FaultInjector fx(chaos_plan());
  cfg.faults = &fx;
  const std::string faulty = config_fingerprint(cfg, "nt3");
  EXPECT_NE(faulty, base);
  EXPECT_NE(faulty.find("faults:"), std::string::npos);
}

TEST(FaultDriver, SaveLoadRoundTripsFaultAccounting) {
  SearchResult res;
  res.end_time = 1234.5;
  res.retries = 7;
  res.exhausted = 2;
  res.lost_results = 3;
  res.crashed_workers = 4;
  res.dead_agents = 1;
  res.utilization = {0.5, 0.25};
  EvalRecord ok;
  ok.time = 100.0;
  ok.reward = 0.75f;
  ok.arch = {1, 2, 3};
  ok.attempts = 2;
  EvalRecord floored;
  floored.time = 200.0;
  floored.failed = true;
  floored.attempts = 4;
  floored.arch = {4, 5};
  res.evals = {ok, floored};

  const std::string path =
      (std::filesystem::temp_directory_path() / "ncnas_fault_roundtrip.log").string();
  save_result(path, res, "fp-fault-test");
  const auto loaded = load_result(path, "fp-fault-test");
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->retries, 7u);
  EXPECT_EQ(loaded->exhausted, 2u);
  EXPECT_EQ(loaded->lost_results, 3u);
  EXPECT_EQ(loaded->crashed_workers, 4u);
  EXPECT_EQ(loaded->dead_agents, 1u);
  ASSERT_EQ(loaded->evals.size(), 2u);
  EXPECT_FALSE(loaded->evals[0].failed);
  EXPECT_EQ(loaded->evals[0].attempts, 2u);
  EXPECT_TRUE(loaded->evals[1].failed);
  EXPECT_EQ(loaded->evals[1].attempts, 4u);
}

}  // namespace
}  // namespace ncnas::nas
