#include <gtest/gtest.h>

#include <cmath>

#include "ncnas/tensor/rng.hpp"

namespace ncnas::tensor {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double mn = 1.0, mx = 0.0, mean = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    mn = std::min(mn, u);
    mx = std::max(mx, u);
    mean += u;
  }
  mean /= kN;
  EXPECT_GE(mn, 0.0);
  EXPECT_LT(mx, 1.0);
  EXPECT_NEAR(mean, 0.5, 0.02);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversAllValuesUnbiased) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  constexpr int kN = 70000;
  for (int i = 0; i < kN; ++i) ++counts[rng.uniform_int(7)];
  for (int c : counts) EXPECT_NEAR(c, kN / 7, kN / 70);  // within 10 %
}

TEST(Rng, UniformIntRejectsZero) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform_int(0), std::invalid_argument);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(13);
  double mean = 0.0, m2 = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double z = rng.normal();
    mean += z;
    m2 += z * z;
  }
  mean /= kN;
  m2 /= kN;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(m2, 1.0, 0.05);
}

TEST(Rng, NormalWithMeanAndStd) {
  Rng rng(17);
  double mean = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) mean += rng.normal(10.0, 0.5);
  EXPECT_NEAR(mean / kN, 10.0, 0.05);
}

TEST(Rng, CategoricalFollowsDistribution) {
  Rng rng(19);
  const std::vector<double> probs{0.1, 0.6, 0.3};
  std::vector<int> counts(3, 0);
  constexpr int kN = 30000;
  for (int i = 0; i < kN; ++i) ++counts[rng.categorical(probs)];
  EXPECT_NEAR(counts[0], 0.1 * kN, 0.02 * kN);
  EXPECT_NEAR(counts[1], 0.6 * kN, 0.02 * kN);
  EXPECT_NEAR(counts[2], 0.3 * kN, 0.02 * kN);
}

TEST(Rng, CategoricalRejectsEmpty) {
  Rng rng(1);
  EXPECT_THROW((void)rng.categorical({}), std::invalid_argument);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  const Rng base(42);
  Rng a = base.split(0);
  Rng b = base.split(1);
  Rng a2 = base.split(0);
  EXPECT_NE(a.next_u64(), b.next_u64());
  Rng a3 = base.split(0);
  EXPECT_EQ(a2.next_u64(), a3.next_u64());
}

TEST(Rng, ReseedResetsSequence) {
  Rng rng(5);
  const std::uint64_t first = rng.next_u64();
  rng.reseed(5);
  EXPECT_EQ(rng.next_u64(), first);
}

TEST(Rng, StateRoundTripContinuesBitIdentically) {
  Rng rng(77);
  // Mixed draws so the saved state is mid-stream, not at a seed boundary.
  for (int i = 0; i < 13; ++i) (void)rng.next_u64();
  (void)rng.uniform();
  (void)rng.normal();

  const RngState st = rng.state();
  Rng restored(0);  // different seed: everything must come from the state
  restored.set_state(st);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(rng.next_u64(), restored.next_u64());
    EXPECT_EQ(rng.uniform(), restored.uniform());
    EXPECT_EQ(rng.normal(), restored.normal());
    EXPECT_EQ(rng.uniform_int(97), restored.uniform_int(97));
  }
}

TEST(Rng, StateCapturesTheBoxMullerCache) {
  // An odd number of normal() draws leaves the cached second half of the
  // Box–Muller pair pending; the state must carry it, or the restored
  // stream shifts by one normal draw.
  Rng rng(31);
  (void)rng.normal();
  const RngState st = rng.state();
  EXPECT_TRUE(st.has_cached_normal);

  Rng restored(0);
  restored.set_state(st);
  EXPECT_EQ(rng.normal(), restored.normal());   // the cached value itself
  EXPECT_EQ(rng.normal(), restored.normal());   // and the stream after it
  EXPECT_EQ(rng.next_u64(), restored.next_u64());
}

}  // namespace
}  // namespace ncnas::tensor
