// Parameterized gradient checks across every activation function, both fused
// into Dense and standalone — the property that keeps every search-space
// option trainable.
#include <gtest/gtest.h>

#include "gradcheck.hpp"
#include "ncnas/nn/layers.hpp"

namespace ncnas::nn {
namespace {

using tensor::Rng;
using tensor::Tensor;
using testing::numeric_derivative;
using testing::probe_grad;
using testing::probe_loss;
using testing::rel_err;

class ActivationProperty : public ::testing::TestWithParam<Act> {};

Tensor smooth_input(std::size_t rows, std::size_t cols, Rng& rng) {
  Tensor x({rows, cols});
  // Keep values away from the relu kink for clean finite differences.
  for (float& v : x.flat()) {
    const float z = static_cast<float>(rng.normal());
    v = z + (z >= 0 ? 0.4f : -0.4f);
  }
  return x;
}

TEST_P(ActivationProperty, StandaloneBackwardMatchesFiniteDifferences) {
  Rng rng(31);
  Activation layer(GetParam());
  Tensor x = smooth_input(3, 4, rng);
  ForwardCtx ctx{};
  const auto loss_fn = [&] {
    const Tensor* in[] = {&x};
    return probe_loss(layer.forward(in, ctx));
  };
  const Tensor* in[] = {&x};
  const Tensor y = layer.forward(in, ctx);
  const auto dx = layer.backward(probe_grad(y));
  ASSERT_EQ(dx.size(), 1u);
  // float32 central differences on coupled outputs (softmax) carry a little
  // extra rounding error; 4e-2 still catches any sign/scale defect.
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_LT(rel_err(dx[0][i], numeric_derivative(x[i], loss_fn)), 4e-2f) << "slot " << i;
  }
}

TEST_P(ActivationProperty, FusedDenseBackwardMatchesFiniteDifferences) {
  Rng rng(37);
  Dense layer(4, GetParam(), rng);
  Tensor x = smooth_input(2, 3, rng);
  ForwardCtx ctx{};
  const auto loss_fn = [&] {
    const Tensor* in[] = {&x};
    return probe_loss(layer.forward(in, ctx));
  };
  const Tensor* in[] = {&x};
  const Tensor y = layer.forward(in, ctx);
  for (const ParamPtr& p : layer.parameters()) p->zero_grad();
  (void)layer.backward(probe_grad(y));
  for (const ParamPtr& p : layer.parameters()) {
    for (std::size_t i = 0; i < p->size(); ++i) {
      EXPECT_LT(rel_err(p->grad[i], numeric_derivative(p->value[i], loss_fn)), 3e-2f)
          << p->name << " slot " << i;
    }
  }
}

TEST_P(ActivationProperty, OutputRangeRespected) {
  Rng rng(41);
  Tensor x = smooth_input(4, 5, rng);
  const Tensor y = apply_act(GetParam(), x);
  for (float v : y.flat()) {
    ASSERT_TRUE(std::isfinite(v));
    switch (GetParam()) {
      case Act::kRelu: EXPECT_GE(v, 0.0f); break;
      case Act::kTanh:
        EXPECT_GE(v, -1.0f);
        EXPECT_LE(v, 1.0f);
        break;
      case Act::kSigmoid:
      case Act::kSoftmax:
        EXPECT_GE(v, 0.0f);
        EXPECT_LE(v, 1.0f);
        break;
      case Act::kLinear: break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationProperty,
                         ::testing::Values(Act::kLinear, Act::kRelu, Act::kTanh,
                                           Act::kSigmoid, Act::kSoftmax),
                         [](const ::testing::TestParamInfo<Act>& info) {
                           return act_name(info.param);
                         });

}  // namespace
}  // namespace ncnas::nn
