#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "ncnas/nas/result_io.hpp"

namespace ncnas::nas {
namespace {

SearchResult sample_result() {
  SearchResult res;
  res.end_time = 1234.5;
  res.converged_early = true;
  res.cache_hits = 7;
  res.timeouts = 2;
  res.unique_archs = 11;
  res.ppo_updates = 4;
  res.utilization = {0.5, 0.75, 1.0};
  EvalRecord e;
  e.time = 10.0;
  e.reward = 0.25f;
  e.params = 999;
  e.sim_duration = 120.0;
  e.cache_hit = false;
  e.timed_out = true;
  e.agent = 3;
  e.arch = {1, 0, 12};
  res.evals.push_back(e);
  e.time = 20.0;
  e.cache_hit = true;
  e.arch = {2, 2, 2};
  res.evals.push_back(e);
  return res;
}

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    path = std::filesystem::temp_directory_path() /
           ("ncnas_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

TEST(ResultIo, RoundTrip) {
  TempDir dir;
  const std::string file = (dir.path / "run.log").string();
  const SearchResult original = sample_result();
  save_result(file, original, "fp-1");
  const auto loaded = load_result(file, "fp-1");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_DOUBLE_EQ(loaded->end_time, original.end_time);
  EXPECT_EQ(loaded->converged_early, original.converged_early);
  EXPECT_EQ(loaded->cache_hits, original.cache_hits);
  EXPECT_EQ(loaded->timeouts, original.timeouts);
  EXPECT_EQ(loaded->unique_archs, original.unique_archs);
  EXPECT_EQ(loaded->ppo_updates, original.ppo_updates);
  EXPECT_EQ(loaded->utilization, original.utilization);
  ASSERT_EQ(loaded->evals.size(), original.evals.size());
  for (std::size_t i = 0; i < original.evals.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded->evals[i].time, original.evals[i].time);
    EXPECT_EQ(loaded->evals[i].reward, original.evals[i].reward);
    EXPECT_EQ(loaded->evals[i].params, original.evals[i].params);
    EXPECT_EQ(loaded->evals[i].cache_hit, original.evals[i].cache_hit);
    EXPECT_EQ(loaded->evals[i].timed_out, original.evals[i].timed_out);
    EXPECT_EQ(loaded->evals[i].agent, original.evals[i].agent);
    EXPECT_EQ(loaded->evals[i].arch, original.evals[i].arch);
  }
}

TEST(ResultIo, TelemetryFlagRoundTripsInHeader) {
  TempDir dir;
  const std::string file = (dir.path / "tel.log").string();
  SearchResult res = sample_result();
  res.telemetry_enabled = true;
  save_result(file, res, "fp");
  const auto loaded = load_result(file, "fp");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->telemetry_enabled);
}

TEST(ResultIo, ReaderToleratesPreTelemetryV3Header) {
  // A v3 log written before the telemetry flag existed: the stats line has
  // only seven fields. It must still load, with the flag defaulting to off.
  TempDir dir;
  const std::string file = (dir.path / "old.log").string();
  {
    std::ofstream out(file);
    out << "ncnas-search-log-v3\nfp\n";
    out << "100.5 1 7 2 11 4 60\n";    // no trailing telemetry field
    out << "2 0.5 1\n";                // utilization
    out << "1\n";                      // evals
    out << "10 0.25 99 12 0 1 3 2 1 0\n";
  }
  const auto loaded = load_result(file, "fp");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_FALSE(loaded->telemetry_enabled);
  EXPECT_DOUBLE_EQ(loaded->end_time, 100.5);
  EXPECT_EQ(loaded->cache_hits, 7u);
  ASSERT_EQ(loaded->evals.size(), 1u);
  EXPECT_EQ(loaded->evals[0].params, 99u);
}

TEST(ResultIo, FingerprintMismatchInvalidatesLog) {
  TempDir dir;
  const std::string file = (dir.path / "run.log").string();
  save_result(file, sample_result(), "fp-old");
  EXPECT_FALSE(load_result(file, "fp-new").has_value());
}

TEST(ResultIo, MissingFileYieldsNullopt) {
  EXPECT_FALSE(load_result("/nonexistent/nope.log", "fp").has_value());
}

TEST(ResultIo, RunOrLoadRunsOnceThenCaches) {
  TempDir dir;
  int calls = 0;
  const auto runner = [&] {
    ++calls;
    return sample_result();
  };
  const SearchResult a = run_or_load(dir.path.string(), "tag", "fp", runner);
  const SearchResult b = run_or_load(dir.path.string(), "tag", "fp", runner);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(a.evals.size(), b.evals.size());
  // Changing the fingerprint triggers a rerun.
  (void)run_or_load(dir.path.string(), "tag", "fp2", runner);
  EXPECT_EQ(calls, 2);
}

TEST(ResultIo, FingerprintCoversKeyConfigFields) {
  SearchConfig a;
  SearchConfig b = a;
  EXPECT_EQ(config_fingerprint(a, "s"), config_fingerprint(b, "s"));
  b.seed += 1;
  EXPECT_NE(config_fingerprint(a, "s"), config_fingerprint(b, "s"));
  b = a;
  b.fidelity.subset_fraction = 0.4;
  EXPECT_NE(config_fingerprint(a, "s"), config_fingerprint(b, "s"));
  b = a;
  b.cluster.num_agents *= 2;
  EXPECT_NE(config_fingerprint(a, "s"), config_fingerprint(b, "s"));
  b = a;
  b.strategy = SearchStrategy::kRandom;
  EXPECT_NE(config_fingerprint(a, "s"), config_fingerprint(b, "s"));
  EXPECT_NE(config_fingerprint(a, "s"), config_fingerprint(a, "t"));
}

}  // namespace
}  // namespace ncnas::nas
