#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "ncnas/obs/profiler.hpp"
#include "ncnas/obs/telemetry.hpp"
#include "ncnas/tensor/ops.hpp"
#include "ncnas/tensor/tensor.hpp"

namespace ncnas::obs {
namespace {

void spin_for(std::chrono::microseconds us) {
  const auto until = std::chrono::steady_clock::now() + us;
  while (std::chrono::steady_clock::now() < until) {
  }
}

const FlatProfileEntry* find_entry(const std::vector<FlatProfileEntry>& flat,
                                   const std::string& name) {
  for (const FlatProfileEntry& e : flat) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

TEST(Profiler, NestingRecordsTreeWithSelfTotalSplit) {
  Profiler prof;
  {
    ProfilerInstallGuard guard(&prof);
    for (int i = 0; i < 3; ++i) {
      NCNAS_PROF_SCOPE("outer");
      spin_for(std::chrono::microseconds(200));
      {
        NCNAS_PROF_SCOPE("inner");
        spin_for(std::chrono::microseconds(200));
      }
      {
        NCNAS_PROF_SCOPE("inner");
        spin_for(std::chrono::microseconds(200));
      }
    }
  }
  const ProfileSnapshot snap = prof.snapshot();
  ASSERT_EQ(snap.roots.size(), 1u);
  const ProfileNode& outer = snap.roots[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.calls, 3u);
  ASSERT_EQ(outer.children.size(), 1u);  // same name at the same level merges
  const ProfileNode& inner = outer.children[0];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.calls, 6u);
  // Total covers the children; self is total minus the children's total.
  EXPECT_GE(outer.total_ms, inner.total_ms);
  EXPECT_NEAR(outer.self_ms, outer.total_ms - inner.total_ms, 1e-9);
  EXPECT_GT(outer.self_ms, 0.0);
  EXPECT_GT(inner.total_ms, 0.0);
}

TEST(Profiler, ScopesFromMultipleThreadsMergeByName) {
  Profiler prof;
  {
    ProfilerInstallGuard guard(&prof);
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([] {
        for (int i = 0; i < 5; ++i) {
          NCNAS_PROF_SCOPE("work");
          NCNAS_PROF_SCOPE("work/sub");
          spin_for(std::chrono::microseconds(50));
        }
      });
    }
    for (std::thread& th : threads) th.join();
  }
  const ProfileSnapshot snap = prof.snapshot();
  EXPECT_EQ(snap.threads_merged, 3u);
  ASSERT_EQ(snap.roots.size(), 1u);
  EXPECT_EQ(snap.roots[0].name, "work");
  EXPECT_EQ(snap.roots[0].calls, 15u);
  ASSERT_EQ(snap.roots[0].children.size(), 1u);
  EXPECT_EQ(snap.roots[0].children[0].calls, 15u);
}

TEST(Profiler, DisabledPathRecordsNothing) {
  ASSERT_EQ(current_profiler(), nullptr);
  {
    NCNAS_PROF_SCOPE("never");
    profile_work(100.0, 100.0);
    profile_alloc(42);
  }
  Profiler prof;  // never installed: scopes above went nowhere
  const ProfileSnapshot snap = prof.snapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.threads_merged, 0u);
  EXPECT_TRUE(snap.flat().empty());
}

TEST(Profiler, EmptyNameScopeIsNoOp) {
  Profiler prof;
  {
    ProfilerInstallGuard guard(&prof);
    ProfileScope scope{std::string_view{}};
  }
  EXPECT_TRUE(prof.snapshot().empty());
}

TEST(Profiler, KernelWorkAndAllocationsAttributeToScopes) {
  Profiler prof;
  {
    ProfilerInstallGuard guard(&prof);
    NCNAS_PROF_SCOPE("phase");
    tensor::Tensor a({4, 8}, 1.0f);
    tensor::Tensor b({8, 5}, 2.0f);
    const tensor::Tensor c = tensor::matmul(a, b);
    ASSERT_EQ(c.dim(1), 5u);
  }
  const std::vector<FlatProfileEntry> flat = prof.snapshot().flat();
  const FlatProfileEntry* gemm = find_entry(flat, "gemm");
  ASSERT_NE(gemm, nullptr);
  EXPECT_EQ(gemm->calls, 1u);
  EXPECT_DOUBLE_EQ(gemm->flops, 2.0 * 4 * 8 * 5);
  EXPECT_DOUBLE_EQ(gemm->bytes_moved, 4.0 * (4 * 8 + 8 * 5 + 4 * 5));
  EXPECT_GT(gemm->arithmetic_intensity(), 0.0);
  // a, b, and matmul's result buffer all allocate inside "phase".
  const FlatProfileEntry* phase = find_entry(flat, "phase");
  ASSERT_NE(phase, nullptr);
  EXPECT_EQ(phase->alloc_count, 3u);
  EXPECT_EQ(phase->alloc_bytes, sizeof(float) * (4 * 8 + 8 * 5 + 4 * 5));
}

TEST(Profiler, UnscopedWorkSurfacesAsPseudoNode) {
  Profiler prof;
  {
    ProfilerInstallGuard guard(&prof);
    profile_alloc(128);
    profile_work(10.0, 20.0);
  }
  const std::vector<FlatProfileEntry> flat = prof.snapshot().flat();
  const FlatProfileEntry* unscoped = find_entry(flat, "(unscoped)");
  ASSERT_NE(unscoped, nullptr);
  EXPECT_EQ(unscoped->alloc_count, 1u);
  EXPECT_EQ(unscoped->alloc_bytes, 128u);
  EXPECT_DOUBLE_EQ(unscoped->flops, 10.0);
}

TEST(Profiler, InstallGuardRestoresPreviousSink) {
  Profiler outer_prof;
  Profiler inner_prof;
  {
    ProfilerInstallGuard outer(&outer_prof);
    EXPECT_EQ(current_profiler(), &outer_prof);
    {
      ProfilerInstallGuard inner(&inner_prof);
      EXPECT_EQ(current_profiler(), &inner_prof);
      ProfilerInstallGuard noop(nullptr);  // null guard must not disturb the sink
      EXPECT_EQ(current_profiler(), &inner_prof);
    }
    EXPECT_EQ(current_profiler(), &outer_prof);
  }
  EXPECT_EQ(current_profiler(), nullptr);
}

TEST(Profiler, ResetDropsRecordedData) {
  Profiler prof;
  {
    ProfilerInstallGuard guard(&prof);
    NCNAS_PROF_SCOPE("x");
  }
  EXPECT_FALSE(prof.snapshot().empty());
  prof.reset();
  EXPECT_TRUE(prof.snapshot().empty());
  {  // still usable after reset
    ProfilerInstallGuard guard(&prof);
    NCNAS_PROF_SCOPE("y");
  }
  ASSERT_EQ(prof.snapshot().roots.size(), 1u);
  EXPECT_EQ(prof.snapshot().roots[0].name, "y");
}

TEST(Profiler, FlatAggregatesOneNameAcrossPaths) {
  Profiler prof;
  {
    ProfilerInstallGuard guard(&prof);
    {
      NCNAS_PROF_SCOPE("a");
      NCNAS_PROF_SCOPE("leaf");
    }
    {
      NCNAS_PROF_SCOPE("b");
      NCNAS_PROF_SCOPE("leaf");
    }
  }
  const std::vector<FlatProfileEntry> flat = prof.snapshot().flat();
  const FlatProfileEntry* leaf = find_entry(flat, "leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->calls, 2u);
}

TEST(Profiler, ExportJsonRoundTripsThroughImport) {
  Profiler prof;
  {
    ProfilerInstallGuard guard(&prof);
    NCNAS_PROF_SCOPE("phase \"quoted\"");
    tensor::Tensor a({4, 8}, 1.0f);
    tensor::Tensor b({8, 5}, 2.0f);
    (void)tensor::matmul(a, b);
  }
  const ProfileSnapshot snap = prof.snapshot();
  std::ostringstream os;
  snap.export_json(os);
  std::istringstream is(os.str());
  const ImportedProfile imported = import_profile_json(is);
  EXPECT_EQ(imported.schema_version, kProfileSchemaVersion);
  EXPECT_EQ(imported.threads_merged, snap.threads_merged);
  const std::vector<FlatProfileEntry> flat = snap.flat();
  ASSERT_EQ(imported.flat.size(), flat.size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(imported.flat[i].name, flat[i].name);
    EXPECT_EQ(imported.flat[i].calls, flat[i].calls);
    EXPECT_NEAR(imported.flat[i].self_ms, flat[i].self_ms, 1e-6);
    EXPECT_NEAR(imported.flat[i].flops, flat[i].flops, 1e-3);
    EXPECT_EQ(imported.flat[i].alloc_count, flat[i].alloc_count);
    EXPECT_EQ(imported.flat[i].alloc_bytes, flat[i].alloc_bytes);
  }
}

TEST(Profiler, ImportRejectsMissingOrWrongSchema) {
  std::istringstream empty("{}\n");
  EXPECT_THROW((void)import_profile_json(empty), std::runtime_error);
  std::istringstream wrong("{\n\"schema_version\": 999\n}\n");
  EXPECT_THROW((void)import_profile_json(wrong), std::runtime_error);
}

TEST(Profiler, ExportTextRendersTreeAndFlatTable) {
  Profiler prof;
  {
    ProfilerInstallGuard guard(&prof);
    NCNAS_PROF_SCOPE("outer");
    NCNAS_PROF_SCOPE("inner");
  }
  std::ostringstream os;
  prof.snapshot().export_text(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("call tree"), std::string::npos);
  EXPECT_NE(text.find("outer"), std::string::npos);
  EXPECT_NE(text.find("  inner"), std::string::npos);
  EXPECT_NE(text.find("flat (by self time)"), std::string::npos);
}

TEST(Telemetry, EnableProfilerIsIdempotentAndFeedsSnapshot) {
  Telemetry tel;
  EXPECT_EQ(tel.profiler(), nullptr);
  EXPECT_TRUE(tel.snapshot().profile.empty());
  Profiler& p1 = tel.enable_profiler();
  Profiler& p2 = tel.enable_profiler();
  EXPECT_EQ(&p1, &p2);
  {
    ProfilerInstallGuard guard(tel.profiler());
    NCNAS_PROF_SCOPE("tel/scope");
  }
  const TelemetrySnapshot snap = tel.snapshot();
  ASSERT_FALSE(snap.profile.empty());
  EXPECT_EQ(snap.profile.roots[0].name, "tel/scope");
  std::ostringstream os;
  tel.export_profile_json(os);
  EXPECT_NE(os.str().find("\"schema_version\""), std::string::npos);
  EXPECT_NE(os.str().find("tel/scope"), std::string::npos);
}

TEST(ChromeTrace, ExportShapeAndEventCountSurvive) {
  TraceRecorder rec(64);
  rec.span("eval \"x\"", "driver", 1.0, 0.5, 7, {{"reward", 0.25}});
  rec.span("train", "nn", 2.0, 0.25, 3);
  rec.instant("fault", "driver", 3.0, 1);
  std::ostringstream os;
  TraceRecorder::export_chrome(rec.snapshot(), os, rec.dropped());
  const std::string json = os.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);  // document shape
  // Balanced braces/brackets — the document must stay parseable JSON.
  long depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      ++depth;
    } else if (!in_string && (c == '}' || c == ']')) {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
  // One record per event, phases intact, quotes escaped, no drops reported.
  std::size_t spans = 0;
  for (std::size_t at = json.find("\"ph\":\"X\""); at != std::string::npos;
       at = json.find("\"ph\":\"X\"", at + 1)) {
    ++spans;
  }
  EXPECT_EQ(spans, 2u);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("eval \\\"x\\\""), std::string::npos);
  EXPECT_NE(json.find("\"droppedEvents\":0"), std::string::npos);
}

}  // namespace
}  // namespace ncnas::obs
