// Seeded randomized differential fuzz harness for the kernel tiers.
//
// Every iteration draws a random problem (shape, construction path, special
// values, aliasing) and a random non-reference kernel configuration (thread
// count, tier, block geometry, dispatch thresholds), then requires the
// result to be byte-for-byte identical to the serial reference kernels.
// 1000 iterations per op; the base seed prints at startup and can be
// overridden with --seed=N to replay a failing run exactly.
//
// This is the property half of the determinism contract (tensor/ops.hpp):
// the hand-picked shapes in kernel_diff_test pin the known dispatch edges,
// the fuzzer hunts for the ones nobody thought of.
//
// --runs=N repeats the whole suite N times, rotating the seed each run
// (splitmix64 of base+run; run 0 keeps the base seed untouched so a --seed=S
// replay reproduces exactly). Any failing run prints its absolute seed on a
// FAILING SEED line — replay that one run with --seed=S, no --runs needed.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ncnas/tensor/kernel_config.hpp"
#include "ncnas/tensor/ops.hpp"
#include "ncnas/tensor/rng.hpp"
#include "ncnas/tensor/tensor.hpp"

namespace {

using ncnas::tensor::KernelConfig;
using ncnas::tensor::KernelConfigGuard;
using ncnas::tensor::Rng;
using ncnas::tensor::SimdMode;
using ncnas::tensor::Tensor;

std::uint64_t g_seed = 0xF0221DBeefULL;
constexpr int kIters = 1000;

std::size_t hardware_threads() {
  return std::max<std::size_t>(2, std::thread::hardware_concurrency());
}

bool bytes_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

/// One fuzzing stream, salted per-op so the ops explore independent spaces
/// while staying reproducible from the single base seed.
class Fuzz {
 public:
  explicit Fuzz(std::uint64_t salt) : rng_(g_seed ^ salt) {}

  /// Dimension skewed toward panel/block boundaries and small odd sizes;
  /// occasionally 0 and occasionally larger than every block dimension.
  std::size_t dim() {
    const double roll = rng_.uniform();
    if (roll < 0.04) return 0;
    if (roll < 0.30) {
      // Hug the interesting boundaries: micro rows (4/6), vector chunks
      // (8/16), panels (32), default blocks (64).
      static constexpr std::size_t kEdges[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17,
                                               31, 32, 33, 47, 48, 63, 64, 65};
      return kEdges[rng_.uniform_int(std::size(kEdges))];
    }
    if (roll < 0.95) return 1 + static_cast<std::size_t>(rng_.uniform_int(40));
    return 66 + static_cast<std::size_t>(rng_.uniform_int(80));
  }

  /// A random non-reference kernel configuration.
  KernelConfig config() {
    KernelConfig cfg;
    cfg.threads = 1 + rng_.uniform_int(hardware_threads());
    const double tier = rng_.uniform();
    cfg.simd = tier < 0.4 ? SimdMode::kOff : (tier < 0.8 ? SimdMode::kOn : SimdMode::kAuto);
    static constexpr std::size_t kRows[] = {1, 3, 4, 8, 16, 64, 256};
    static constexpr std::size_t kCols[] = {1, 16, 32, 48, 64, 256};
    cfg.block_rows = kRows[rng_.uniform_int(std::size(kRows))];
    cfg.block_cols = kCols[rng_.uniform_int(std::size(kCols))];
    // Mostly force the blocked tiers; sometimes leave real thresholds in so
    // the reference fallback and its crossover get fuzzed too.
    cfg.min_blocked_flops = rng_.uniform() < 0.8 ? 0 : KernelConfig{}.min_blocked_flops;
    cfg.min_parallel_elems = rng_.uniform() < 0.8 ? 0 : KernelConfig{}.min_parallel_elems;
    return cfg;
  }

  /// Random tensor; sometimes built flat and reshaped into place (exercising
  /// the reshape path), sometimes seeded with non-finite values, -0, or
  /// denormals.
  Tensor tensor(std::vector<std::size_t> shape) {
    const std::size_t n = ncnas::tensor::numel(shape);
    Tensor t = rng_.uniform() < 0.25 ? Tensor({n}).reshaped(shape) : Tensor(shape);
    for (float& v : t.flat()) v = static_cast<float>(rng_.normal());
    if (n != 0 && rng_.uniform() < 0.08) {
      static const float kSpecials[] = {
          std::numeric_limits<float>::quiet_NaN(), std::numeric_limits<float>::infinity(),
          -std::numeric_limits<float>::infinity(), -0.0f, 1e-42f, -1e-42f};
      const std::size_t hits = 1 + rng_.uniform_int(3);
      for (std::size_t h = 0; h < hits; ++h) {
        t[rng_.uniform_int(n)] = kSpecials[rng_.uniform_int(std::size(kSpecials))];
      }
    }
    return t;
  }

  void poison(Tensor& t) {
    for (float& v : t.flat()) v = -123.75f;
  }

  double uniform() { return rng_.uniform(); }
  std::uint64_t uniform_int(std::uint64_t n) { return rng_.uniform_int(n); }

 private:
  Rng rng_;
};

/// Shared driver for the three gemm variants. `shape_a` / `shape_b` map the
/// logical (m, k, n) onto storage shapes; `op` / `op_ref` are the entry
/// points under test and the oracle.
void fuzz_gemm(std::uint64_t salt, const char* name,
               std::vector<std::size_t> (*shape_a)(std::size_t, std::size_t, std::size_t),
               std::vector<std::size_t> (*shape_b)(std::size_t, std::size_t, std::size_t),
               void (*op)(const Tensor&, const Tensor&, Tensor&),
               void (*op_ref)(const Tensor&, const Tensor&, Tensor&)) {
  Fuzz fz(salt);
  for (int it = 0; it < kIters; ++it) {
    const std::size_t m = fz.dim(), k = fz.dim(), n = fz.dim();
    const Tensor a = fz.tensor(shape_a(m, k, n));
    const Tensor b = fz.tensor(shape_b(m, k, n));
    Tensor want({m, n});
    op_ref(a, b, want);
    const KernelConfig cfg = fz.config();
    KernelConfigGuard guard(cfg);
    Tensor got({m, n});
    fz.poison(got);
    op(a, b, got);
    ASSERT_TRUE(bytes_equal(want, got))
        << name << " iter=" << it << " " << m << "x" << k << "x" << n
        << " threads=" << cfg.threads << " simd=" << static_cast<int>(cfg.simd)
        << " blocks=" << cfg.block_rows << "x" << cfg.block_cols
        << " min_flops=" << cfg.min_blocked_flops << " (replay with --seed=" << g_seed << ")";
  }
}

std::vector<std::size_t> nk_mk(std::size_t m, std::size_t k, std::size_t) { return {m, k}; }
std::vector<std::size_t> nk_kn(std::size_t, std::size_t k, std::size_t n) { return {k, n}; }
std::vector<std::size_t> nk_nk(std::size_t, std::size_t k, std::size_t n) { return {n, k}; }
std::vector<std::size_t> nk_km(std::size_t m, std::size_t k, std::size_t) { return {k, m}; }

TEST(KernelFuzz, GemmAllTiersBitwiseVsReference) {
  fuzz_gemm(0x67656D6D, "gemm", nk_mk, nk_kn, ncnas::tensor::gemm, ncnas::tensor::gemm_ref);
}

TEST(KernelFuzz, GemmNtAllTiersBitwiseVsReference) {
  fuzz_gemm(0x676D6E74, "gemm_nt", nk_mk, nk_nk, ncnas::tensor::gemm_nt,
            ncnas::tensor::gemm_nt_ref);
}

TEST(KernelFuzz, GemmTnAllTiersBitwiseVsReference) {
  fuzz_gemm(0x676D746E, "gemm_tn", nk_km, nk_kn, ncnas::tensor::gemm_tn,
            ncnas::tensor::gemm_tn_ref);
}

TEST(KernelFuzz, AxpyScaleAllTiersBitwiseVsReference) {
  Fuzz fz(0x61787079);
  for (int it = 0; it < kIters; ++it) {
    // Sizes span from empty through several parallel grains.
    const std::size_t n = it % 7 == 0 ? fz.uniform_int(200'000) : fz.dim() * (1 + fz.dim());
    const Tensor x = fz.tensor({n});
    const Tensor y0 = fz.tensor({n});
    const float alpha = static_cast<float>(fz.uniform() * 4.0 - 2.0);
    const bool alias = fz.uniform() < 0.15;  // y += alpha * y: legal, per-element

    Tensor want = y0;
    {
      KernelConfigGuard serial{KernelConfig{}};
      ncnas::tensor::axpy(alpha, alias ? want : x, want);
      ncnas::tensor::scale_inplace(want, alpha);
    }
    const KernelConfig cfg = fz.config();
    KernelConfigGuard guard(cfg);
    Tensor got = y0;
    ncnas::tensor::axpy(alpha, alias ? got : x, got);
    ncnas::tensor::scale_inplace(got, alpha);
    ASSERT_TRUE(bytes_equal(want, got))
        << "axpy/scale iter=" << it << " n=" << n << " alias=" << alias
        << " threads=" << cfg.threads << " simd=" << static_cast<int>(cfg.simd)
        << " (replay with --seed=" << g_seed << ")";
  }
}

TEST(KernelFuzz, RowwiseOpsAllTiersBitwiseVsReference) {
  Fuzz fz(0x726F7773);
  for (int it = 0; it < kIters; ++it) {
    const std::size_t m = fz.dim(), n = fz.dim();
    if (n == 0 || m == 0) continue;  // rank-2 ops require nonempty dims
    const Tensor g = fz.tensor({m, n});
    const Tensor bias = fz.tensor({n});
    const Tensor y0 = fz.tensor({m, n});
    const Tensor sums0 = fz.tensor({n});

    Tensor want_bias = y0;
    Tensor want_sums = sums0;
    {
      KernelConfigGuard serial{KernelConfig{}};
      ncnas::tensor::add_row_bias(want_bias, bias);
      ncnas::tensor::accumulate_col_sums(g, want_sums);
    }
    const KernelConfig cfg = fz.config();
    KernelConfigGuard guard(cfg);
    Tensor got_bias = y0;
    ncnas::tensor::add_row_bias(got_bias, bias);
    Tensor got_sums = sums0;
    ncnas::tensor::accumulate_col_sums(g, got_sums);
    ASSERT_TRUE(bytes_equal(want_bias, got_bias) && bytes_equal(want_sums, got_sums))
        << "rowwise iter=" << it << " " << m << "x" << n << " threads=" << cfg.threads
        << " simd=" << static_cast<int>(cfg.simd) << " (replay with --seed=" << g_seed << ")";
  }
}

/// splitmix64 — decorrelates the per-run seeds so --runs=N explores N
/// genuinely different streams instead of N neighbors of the base seed.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Rotates g_seed at the start of each --gtest_repeat iteration and prints
/// the absolute failing seed at the end of any iteration that failed, so a
/// multi-run CI log always names the exact seed to replay.
class SeedRotator : public ::testing::Environment {
 public:
  explicit SeedRotator(std::uint64_t base) : base_(base) {}

  void SetUp() override {
    g_seed = run_ == 0 ? base_ : mix64(base_ + run_);
    std::printf("kernel_fuzz_test run %d seed: %llu (replay with --seed=%llu)\n", run_ + 1,
                static_cast<unsigned long long>(g_seed),
                static_cast<unsigned long long>(g_seed));
    std::fflush(stdout);
    ++run_;
  }

  void TearDown() override {
    if (::testing::UnitTest::GetInstance()->failed_test_count() > 0) {
      std::printf("kernel_fuzz_test FAILING SEED: %llu (replay with --seed=%llu)\n",
                  static_cast<unsigned long long>(g_seed),
                  static_cast<unsigned long long>(g_seed));
      std::fflush(stdout);
    }
  }

 private:
  std::uint64_t base_;
  int run_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int runs = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      g_seed = std::stoull(arg.substr(7));
    } else if (arg == "--seed" && i + 1 < argc) {
      g_seed = std::stoull(argv[++i]);
    } else if (arg.rfind("--runs=", 0) == 0) {
      runs = std::max(1, std::stoi(arg.substr(7)));
    } else if (arg == "--runs" && i + 1 < argc) {
      runs = std::max(1, std::stoi(argv[++i]));
    }
  }
  std::printf("kernel_fuzz_test base seed: %llu, runs: %d (override with --seed=N --runs=N)\n",
              static_cast<unsigned long long>(g_seed), runs);
  ::testing::GTEST_FLAG(repeat) = runs;
  ::testing::AddGlobalTestEnvironment(new SeedRotator(g_seed));
  return RUN_ALL_TESTS();
}
