// serve_nas — NAS-as-a-service demo: one SearchServer hosting several
// tenants over a shared evaluation-slot pool, with fair-share scheduling,
// checkpoint-based preemption, and a cross-tenant evaluation cache.
//
//   ./examples/serve_nas [--serve <port>] [--linger <s>] [--quantum <s>]
//                        [--wall <s>] [--state-dir <dir>]
//
// The scripted scenario: three tenants on the NT3 benchmark compete for a
// pool that fits exactly one gang, so every round preempts somebody.
//   alice — A3C, priority 2 (twice bob's/carol's slice share)
//   bob   — random search, priority 1
//   carol — random search with bob's exact seed: every architecture carol
//           samples was already trained by bob (or vice versa), so the
//           SharedEvalCache serves it cross-tenant without retraining
// A fourth submission (an oversized gang) and a fifth (server full) are
// rejected at admission — the backpressure path.
//
// With --serve the server telemetry exposes /metrics (OpenMetrics,
// per-tenant ncnas_tenant_* series), /progress, /healthz, and the /tenants
// JSON endpoint; --linger keeps the HTTP plane up after the run for
// external scrapers (the serve-smoke CI job curls it).
#include <chrono>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>

#include "ncnas/data/dataset.hpp"
#include "ncnas/obs/telemetry.hpp"
#include "ncnas/serve/server.hpp"
#include "ncnas/space/spaces.hpp"

namespace {

ncnas::data::Dataset tiny_nt3() {
  ncnas::data::Nt3Dims dims;
  dims.train = 64;
  dims.valid = 32;
  dims.length = 64;
  dims.motif = 6;
  return ncnas::data::make_nt3(5, dims);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ncnas;

  int serve_port = -1;
  double linger_seconds = 0.0;
  double quantum_seconds = 120.0;
  double wall_seconds = 600.0;
  std::string state_dir = "serve_state";
  const auto need = [&](const char* flag, int& i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << flag << " needs an argument\n";
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--serve") {
      serve_port = std::stoi(need("--serve", i));
    } else if (arg == "--linger") {
      linger_seconds = std::stod(need("--linger", i));
    } else if (arg == "--quantum") {
      quantum_seconds = std::stod(need("--quantum", i));
    } else if (arg == "--wall") {
      wall_seconds = std::stod(need("--wall", i));
    } else if (arg == "--state-dir") {
      state_dir = need("--state-dir", i);
    } else {
      std::cerr << "usage: serve_nas [--serve <port>] [--linger <s>] [--quantum <s>]"
                   " [--wall <s>] [--state-dir <dir>]\n";
      return 2;
    }
  }
  std::filesystem::remove_all(state_dir);

  const space::SearchSpace space = space::nt3_small_space();
  const data::Dataset dataset = tiny_nt3();

  obs::Telemetry telemetry;
  if (serve_port >= 0) {
    obs::ExporterConfig ecfg;
    ecfg.cadence_seconds = quantum_seconds;  // publish every round
    ecfg.http_port = serve_port;
    telemetry.enable_exporter(std::move(ecfg));
    if (telemetry.exporter()->http_port() > 0) {
      std::cout << "server telemetry on 127.0.0.1:" << telemetry.exporter()->http_port()
                << " (/metrics /progress /healthz /tenants)\n";
    }
  }

  exec::SharedEvalCache shared;
  nas::SearchConfig base;
  base.cluster = {.num_agents = 3, .workers_per_agent = 4};
  base.wall_time_seconds = wall_seconds;
  base.fidelity = {.epochs = 1, .subset_fraction = 1.0};
  base.cost = {.startup_seconds = 20.0, .seconds_per_megaunit = 1.0, .timeout_seconds = 600.0};

  serve::ServeConfig scfg;
  scfg.total_slots = base.cluster.total_workers();  // one gang: every round preempts
  scfg.quantum_seconds = quantum_seconds;
  scfg.max_tenants = 3;
  scfg.state_dir = state_dir;
  scfg.shared_cache = &shared;
  scfg.telemetry = &telemetry;
  serve::SearchServer server(scfg);

  const auto tenant = [&](const std::string& name, nas::SearchStrategy strategy,
                          std::uint64_t seed, double priority) {
    serve::TenantSpec spec;
    spec.name = name;
    spec.space = &space;
    spec.dataset = &dataset;
    spec.config = base;
    spec.config.strategy = strategy;
    spec.config.seed = seed;
    spec.priority = priority;
    return spec;
  };

  const std::uint32_t alice = server.submit(tenant("alice", nas::SearchStrategy::kA3C, 7, 2.0));
  const std::uint32_t bob = server.submit(tenant("bob", nas::SearchStrategy::kRandom, 11, 1.0));
  // carol reuses bob's seed: identical sampling, so her evaluations resolve
  // from the shared cache — trained once, served to both tenants.
  const std::uint32_t carol =
      server.submit(tenant("carol", nas::SearchStrategy::kRandom, 11, 1.0));

  // Admission control: an oversized gang is unschedulable, and with three
  // active tenants the server is full — both submissions bounce.
  try {
    serve::TenantSpec giant = tenant("giant", nas::SearchStrategy::kRandom, 3, 1.0);
    giant.config.cluster = {.num_agents = 8, .workers_per_agent = 8};
    (void)server.submit(std::move(giant));
    std::cerr << "oversized gang was admitted — admission control broken\n";
    return 1;
  } catch (const serve::AdmissionError& e) {
    std::cout << "rejected: " << e.what() << "\n";
  }
  try {
    (void)server.submit(tenant("dave", nas::SearchStrategy::kRandom, 3, 1.0));
    std::cerr << "fourth tenant was admitted past max_tenants — backpressure broken\n";
    return 1;
  } catch (const serve::AdmissionError& e) {
    std::cout << "rejected: " << e.what() << "\n";
  }
  std::cout << "\n";

  while (server.step()) {
    std::cout << "round " << server.rounds() << " (t=" << server.virtual_time() << "s):";
    for (std::uint32_t id : {alice, bob, carol}) {
      const serve::TenantSession& s = server.session(id);
      std::cout << "  " << s.name() << "=" << serve::tenant_state_name(s.state()) << " ("
                << s.slices() << " slices, " << s.evals() << " evals, "
                << s.shared_cache_hits() << " shared hits)";
    }
    std::cout << "\n";
  }

  std::cout << "\nall tenants done after " << server.rounds() << " rounds\n";
  for (std::uint32_t id : {alice, bob, carol}) {
    const serve::TenantSession& s = server.session(id);
    const nas::SearchResult& r = server.result(id);
    std::cout << s.name() << ": " << r.evals.size() << " evals, " << r.cache_hits
              << " cached (" << r.shared_cache_hits << " shared), best ";
    const auto best = r.best_so_far();
    std::cout << (best.empty() ? 0.0f : best.back().second) << ", " << s.preemptions()
              << " preemption(s), " << r.resumes << " resume(s)\n";
  }
  const exec::SharedEvalCache::Stats totals = shared.totals();
  std::cout << "shared cache: " << shared.size() << " entries, " << totals.hits << " hits ("
            << totals.cross_tenant_hits << " cross-tenant), " << totals.misses
            << " misses, " << totals.inserts << " inserts\n";
  if (totals.cross_tenant_hits == 0) {
    std::cerr << "expected at least one cross-tenant shared-cache hit\n";
    return 1;
  }
  bool preempted = false;
  for (std::uint32_t id : {alice, bob, carol}) {
    preempted = preempted || server.session(id).preemptions() > 0;
  }
  if (!preempted) {
    std::cerr << "expected at least one preemption on a saturated pool\n";
    return 1;
  }

  std::cout << "\n" << server.tenants_json() << "\n";

  if (telemetry.exporter() != nullptr && linger_seconds > 0.0) {
    std::cout << "lingering " << linger_seconds << "s for live scrapes on port "
              << telemetry.exporter()->http_port() << "...\n"
              << std::flush;
    std::this_thread::sleep_for(std::chrono::duration<double>(linger_seconds));
  }
  return 0;
}
