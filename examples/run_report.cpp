// run_report — replays a structured journal (written by
// Telemetry::export_journal_jsonl or examples/telemetry_dump) into a
// terminal or markdown run report: reward trajectory, per-agent evaluation
// rates, cache hit ratio, PS exchange latency quantiles, and the
// HealthWatchdog's straggler/stall verdicts — the offline counterpart of
// eyeballing a Balsam job database after a Theta allocation.
//
//   ./examples/run_report <journal.jsonl>... [--md] [--profile <file>]
//
// A checkpointed run that was interrupted and resumed leaves one journal per
// process; pass them in process order and they are stitched with
// obs::merge_resumed_journal at each run_resumed watermark, so the report
// covers the whole lineage and marks the resume boundaries.
//
// With --profile (a profile JSON written by Telemetry::export_profile_json or
// examples/telemetry_dump) the report gains a Profile section: the flat
// profile's hottest scopes, a roofline view of the kernel scopes (GFLOP/s and
// arithmetic intensity from the per-kernel FLOP/byte counters), allocation
// accounting, and a reconciliation of the profiler's eval wall time against
// the journal's per-eval train_wall_ms sum.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>

#include "ncnas/analytics/report.hpp"
#include "ncnas/analytics/series.hpp"
#include "ncnas/nas/driver.hpp"
#include "ncnas/obs/journal.hpp"
#include "ncnas/obs/profiler.hpp"
#include "ncnas/obs/watchdog.hpp"

namespace {

const char* strategy_label(int strategy) {
  if (strategy < 0 || strategy > static_cast<int>(ncnas::nas::SearchStrategy::kEvolution)) {
    return "?";
  }
  return ncnas::nas::strategy_name(static_cast<ncnas::nas::SearchStrategy>(strategy));
}

/// Bucket-quantile over raw samples via the shared histogram machinery.
double sample_quantile(const std::vector<double>& values, double q) {
  if (values.empty()) return 0.0;
  const auto sample = ncnas::obs::make_histogram_sample(
      "q", ncnas::obs::exp_buckets(0.5, 2.0, 20), values);
  return sample.quantile(q);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ncnas;
  bool markdown = false;
  bool json = false;
  std::vector<std::string> paths;
  std::string profile_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--md") {
      markdown = true;
    } else if (arg == "--format") {
      if (i + 1 >= argc) {
        std::cerr << "--format needs 'json' or 'text'\n";
        return 2;
      }
      const std::string fmt = argv[++i];
      if (fmt == "json") {
        json = true;
      } else if (fmt != "text") {
        std::cerr << "--format must be 'json' or 'text'\n";
        return 2;
      }
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--format=text") {
      json = false;
    } else if (arg == "--profile") {
      if (i + 1 >= argc) {
        std::cerr << "--profile needs a file argument\n";
        return 2;
      }
      profile_path = argv[++i];
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: run_report <journal.jsonl>... [--md] [--format=json] "
                 "[--profile <file>]\n";
    return 2;
  }
  const std::string path = paths.front();

  std::vector<obs::JournalEvent> events;
  try {
    for (std::size_t j = 0; j < paths.size(); ++j) {
      std::ifstream in(paths[j]);
      if (!in) {
        std::cerr << "cannot open " << paths[j] << "\n";
        return 1;
      }
      std::vector<obs::JournalEvent> part = obs::Journal::import_jsonl(in);
      // The first journal stands alone; each later one opens with a
      // run_resumed event whose watermark stitches it onto the lineage.
      events = j == 0 ? std::move(part)
                      : obs::merge_resumed_journal(std::move(events), part);
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  const obs::RunSummary sum = obs::summarize_journal(events);

  // Machine-readable path: the same replay, one JSON object, nothing else on
  // stdout — what nas_top and external tooling consume.
  if (json) {
    obs::export_run_summary_json(sum, std::cout);
    return 0;
  }

  // Re-run the watchdog over the replayed events (report-only: no journal or
  // metrics sink), so a journal from an un-watched run still gets verdicts.
  obs::HealthWatchdog watchdog;
  for (const obs::JournalEvent& e : events) watchdog.on_event(e);
  const obs::WatchdogReport health = watchdog.report();

  std::ostream& os = std::cout;
  const char* h2 = markdown ? "## " : "== ";
  if (markdown) os << "# Run report: " << path << "\n\n";
  else os << "run report: " << path << "\n\n";

  os << h2 << "Run\n";
  os << "strategy: " << strategy_label(sum.strategy) << ", " << sum.agents_declared
     << " agents x " << sum.workers_per_agent << " workers\n";
  os << "span: " << analytics::fmt(sum.end_time_s / 60.0, 1) << " min of "
     << (sum.wall_time_s == std::numeric_limits<double>::infinity()
             ? std::string("?")
             : analytics::fmt(sum.wall_time_s / 60.0, 1))
     << " min budget" << (sum.converged ? " (converged early)" : "") << "\n";
  os << sum.evals << " evaluations (" << sum.real_evals << " real, " << sum.cache_hits
     << " cached, " << sum.timeouts << " timed out), " << sum.ppo_updates
     << " PPO updates, " << sum.ps_exchanges << " PS exchanges\n";
  const double hit_ratio =
      sum.evals > 0 ? static_cast<double>(sum.cache_hits) / static_cast<double>(sum.evals)
                    : 0.0;
  os << "cache hit ratio: " << analytics::fmt(100.0 * hit_ratio, 1) << "%\n";
  if (sum.shared_cache_hits > 0) {
    os << "shared eval cache: " << sum.shared_cache_hits
       << " hit(s) served from the cross-tenant store\n";
  }
  os << "best reward: " << analytics::fmt(sum.best_reward) << " at "
     << analytics::fmt(sum.best_reward_t / 60.0, 1) << " min\n";
  if (sum.checkpoints + sum.resumes > 0) {
    os << "checkpoints: " << sum.checkpoints << " snapshot(s) written, " << sum.resumes
       << " resume(s)";
    if (!sum.resume_times.empty()) {
      os << " — resumed at";
      for (const double t : sum.resume_times) os << ' ' << analytics::fmt(t / 60.0, 1) << " min";
    }
    os << "\n";
  }
  os << "\n";

  if (!sum.rewards.empty() && sum.end_time_s > 0.0) {
    os << h2 << "Reward trajectory\n";
    if (markdown) os << "```\n";
    const double bucket = std::max(sum.end_time_s / 60.0, 1.0);
    const auto mean = analytics::resample_mean(sum.rewards, sum.end_time_s, bucket, -1.0);
    analytics::print_sparkline(os, "mean reward ", mean, -1.0, 1.0);
    if (markdown) os << "```\n";
    os << "\n";
  }

  os << h2 << "Agents\n";
  analytics::Table agents({"agent", "evals", "cached", "timeouts", "ppo", "evals/min",
                           "best reward"});
  for (const auto& [id, a] : sum.per_agent) {
    agents.add_row({std::to_string(id), std::to_string(a.evals), std::to_string(a.cached),
                    std::to_string(a.timeouts), std::to_string(a.ppo_updates),
                    analytics::fmt(sum.agent_rate_per_min(id), 2),
                    analytics::fmt(a.best_reward)});
  }
  agents.print(os);
  if (!sum.converged_agents.empty()) {
    os << "converged agents (in order):";
    for (std::uint32_t id : sum.converged_agents) os << ' ' << id;
    os << "\n";
  }
  os << "\n";

  if (!sum.ps_wait_seconds.empty() || !sum.ps_staleness.empty()) {
    os << h2 << "Parameter server\n";
    if (!sum.ps_wait_seconds.empty()) {
      os << "sync barrier wait (s): p50 " << analytics::fmt(sample_quantile(sum.ps_wait_seconds, 0.50), 1)
         << ", p95 " << analytics::fmt(sample_quantile(sum.ps_wait_seconds, 0.95), 1) << " over "
         << sum.ps_wait_seconds.size() << " exchanges\n";
    }
    if (!sum.ps_staleness.empty()) {
      os << "async gradient staleness (updates): p50 "
         << analytics::fmt(sample_quantile(sum.ps_staleness, 0.50), 1) << ", p95 "
         << analytics::fmt(sample_quantile(sum.ps_staleness, 0.95), 1) << " over "
         << sum.ps_staleness.size() << " exchanges\n";
    }
    os << "\n";
  }

  if (sum.ladder_rung_events > 0) {
    // Rendered only for multi-fidelity runs; a flat journal keeps the flat
    // report layout.
    os << h2 << "Fidelity ladder\n";
    os << sum.ladder_trainings << " rung trainings (" << sum.ladder_warm_starts
       << " warm-started), " << sum.ladder_promotions << " promotions, "
       << sum.ladder_rung_hits << " rung-level shared-cache hits, " << sum.ladder_timeouts
       << " rung timeouts\n";
    analytics::Table rungs({"rung", "candidates", "survivors", "trainings", "warm",
                            "rung hits", "timeouts"});
    for (const auto& [rung, rt] : sum.ladder_rungs) {
      rungs.add_row({std::to_string(rung), std::to_string(rt.candidates),
                     std::to_string(rt.survivors), std::to_string(rt.trainings),
                     std::to_string(rt.warm_starts), std::to_string(rt.rung_hits),
                     std::to_string(rt.timeouts)});
    }
    rungs.print(os);
    os << "\n";
  }

  if (sum.faulty()) {
    // Rendered only for runs whose journal recorded injected faults or
    // recovery actions; a clean journal keeps the clean report layout.
    os << h2 << "Faults and recovery\n";
    os << sum.eval_failures << " failed dispatch attempts, " << sum.retries
       << " retried with backoff, " << sum.exhausted << " floored after retry budget, "
       << sum.lost_results << " results lost in flight\n";
    os << sum.crashed_workers << " worker(s) crashed, " << sum.dead_agents
       << " agent(s) lost their whole pool\n";
    os << "parameter server: " << sum.ps_dropped << " exchange(s) dropped, "
       << sum.ps_delayed << " delayed, " << sum.barrier_timeouts
       << " partial A2C round(s) forced by barrier timeout\n\n";
  }

  os << h2 << "Health\n";
  os << "expected eval duration: "
     << (health.expected_eval_seconds > 0.0
             ? analytics::fmt(health.expected_eval_seconds, 1) + " s"
             : std::string("warming up"))
     << " (" << health.evals_seen << " completed evals observed)\n";
  if (health.healthy()) {
    os << "verdict: healthy — no stragglers, no stalls\n";
  } else {
    os << "verdict: " << health.stragglers.size() << " straggler(s), "
       << health.stalls.size() << " stall(s)\n";
    for (const auto& v : health.stragglers) {
      os << "  straggler: agent " << v.agent << " at " << analytics::fmt(v.t / 60.0, 1)
         << " min, " << analytics::fmt(v.duration_s, 1) << " s vs expected "
         << analytics::fmt(v.expected_s, 1) << " s" << (v.timed_out ? " (timed out)" : "")
         << "\n";
    }
    for (const auto& v : health.stalls) {
      os << "  stall: agent " << v.agent << " silent " << analytics::fmt(v.silent_s, 1)
         << " s at " << analytics::fmt(v.t / 60.0, 1) << " min (window "
         << analytics::fmt(v.window_s, 1) << " s)\n";
    }
  }

  if (!profile_path.empty()) {
    std::ifstream pin(profile_path);
    if (!pin) {
      std::cerr << "cannot open profile " << profile_path << "\n";
      return 1;
    }
    obs::ImportedProfile prof;
    try {
      prof = obs::import_profile_json(pin);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 1;
    }

    os << "\n" << h2 << "Profile\n";
    os << prof.flat.size() << " scopes over " << prof.threads_merged
       << " thread(s); hottest by self time:\n";
    analytics::Table hot({"scope", "calls", "total ms", "self ms"});
    std::size_t shown = 0;
    for (const obs::FlatProfileEntry& e : prof.flat) {
      if (shown++ >= 10) break;
      hot.add_row({e.name, std::to_string(e.calls), analytics::fmt(e.total_ms, 1),
                   analytics::fmt(e.self_ms, 1)});
    }
    hot.print(os);

    // Kernel scopes carry FLOP/byte counters, so they place themselves on a
    // roofline: achieved GFLOP/s against arithmetic intensity.
    analytics::Table roofline({"kernel", "GFLOP", "GFLOP/s", "flop/B"});
    std::size_t kernel_rows = 0;
    for (const obs::FlatProfileEntry& e : prof.flat) {
      if (e.flops == 0) continue;
      ++kernel_rows;
      roofline.add_row({e.name, analytics::fmt(static_cast<double>(e.flops) / 1e9, 2),
                        analytics::fmt(e.gflops(), 2),
                        analytics::fmt(e.arithmetic_intensity(), 2)});
    }
    if (kernel_rows > 0) {
      os << "\nroofline (kernel scopes with FLOP counters):\n";
      roofline.print(os);
    }

    std::uint64_t alloc_count = 0, alloc_bytes = 0;
    for (const obs::FlatProfileEntry& e : prof.flat) {
      alloc_count += e.alloc_count;
      alloc_bytes += e.alloc_bytes;
    }
    os << "\nallocations: " << alloc_count << " tensor buffer(s), "
       << analytics::fmt(static_cast<double>(alloc_bytes) / (1024.0 * 1024.0), 1)
       << " MiB total\n";

    // The eval/train + eval/validate scopes bracket the same region the
    // journal's train_wall_ms stopwatch measures.
    double profile_ms = 0.0;
    for (const obs::FlatProfileEntry& e : prof.flat) {
      if (e.name == "eval/train" || e.name == "eval/validate") profile_ms += e.total_ms;
    }
    double journal_ms = 0.0;
    for (const obs::JournalEvent& e : events) {
      if (e.type == obs::JournalEventType::kEvalDispatched) {
        journal_ms += e.field("train_wall_ms");
      }
    }
    if (journal_ms > 0.0) {
      const double rel = std::abs(profile_ms - journal_ms) / journal_ms;
      os << "eval wall time: profiler " << analytics::fmt(profile_ms, 1) << " ms vs journal "
         << analytics::fmt(journal_ms, 1) << " ms (" << analytics::fmt(100.0 * rel, 1)
         << "% apart)\n";
    }
  }
  return 0;
}
