// space_census — prints every canned search space: decision count, arity
// profile, and exact space size (compare with the paper's §3.1 numbers:
// combo-small 2.0968e14, uno-small 2.3298e13, nt3-small 6.3504e8).
#include <iostream>
#include <sstream>

#include "ncnas/analytics/report.hpp"
#include "ncnas/space/spaces.hpp"

int main() {
  using namespace ncnas;
  analytics::Table table({"space", "decisions", "max arity", "|S|", "log10|S|"});
  for (const std::string& name : space::space_names()) {
    const space::SearchSpace sp = space::space_by_name(name);
    std::ostringstream size;
    size.precision(5);
    size << sp.size();
    table.add_row({name, std::to_string(sp.num_decisions()), std::to_string(sp.max_arity()),
                   size.str(), analytics::fmt(sp.log10_size(), 2)});
  }
  table.print(std::cout);

  std::cout << "\nExample decode (combo-small, all-zero encoding):\n";
  const space::SearchSpace combo = space::combo_small_space();
  std::cout << combo.describe(space::ArchEncoding(combo.num_decisions(), 0));

  std::cout << "\nArity profile of nt3-small: ";
  for (std::size_t a : space::nt3_small_space().arities()) std::cout << a << ' ';
  std::cout << "\n";
  return 0;
}
