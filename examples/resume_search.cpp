// resume_search — end-to-end kill-and-resume harness for the checkpoint
// subsystem, and the tool behind the CI smoke job:
//
//   ./examples/resume_search reference <dir>   uninterrupted run  -> <dir>/reference.log
//   ./examples/resume_search run <dir>         checkpointed run that dies (SIGKILL,
//                                              exit 137) after --kill-after snapshots
//   ./examples/resume_search resume <dir>      continue from the newest snapshot
//                                              in <dir>/snaps  -> <dir>/resumed.log
//   ./examples/resume_search verify <a> <b>    compare two result logs field by
//                                              field (exit 1 on any divergence)
//
// Common flags: --strategy a3c|a2c|rdm|evo (default a3c), --minutes M (default
// 30 simulated minutes), --kill-after N (default 1). All three run modes build
// the identical SearchConfig, so `verify reference.log resumed.log` proves the
// interrupted-then-resumed lineage reproduced the uninterrupted search
// bit-identically. Each process also exports its structured journal
// (<dir>/journal-reference.jsonl, journal-0.jsonl, journal-1.jsonl, ...) so the
// lineage can be stitched back together with run_report or analyze_log.
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "ncnas/ckpt/checkpoint.hpp"
#include "ncnas/nas/driver.hpp"
#include "ncnas/nas/result_io.hpp"
#include "ncnas/obs/telemetry.hpp"
#include "ncnas/space/spaces.hpp"
#include "ncnas/tensor/thread_pool.hpp"

using namespace ncnas;

namespace {

nas::SearchStrategy parse_strategy(const std::string& s) {
  if (s == "a3c") return nas::SearchStrategy::kA3C;
  if (s == "a2c") return nas::SearchStrategy::kA2C;
  if (s == "rdm") return nas::SearchStrategy::kRandom;
  if (s == "evo") return nas::SearchStrategy::kEvolution;
  std::cerr << "unknown strategy '" << s << "' (want a3c|a2c|rdm|evo)\n";
  std::exit(2);
}

/// The one config every subcommand shares: identical fingerprint, so the
/// reference log and the resumed log are comparable artifacts.
nas::SearchConfig shared_config(nas::SearchStrategy strategy, double minutes) {
  nas::SearchConfig cfg;
  cfg.strategy = strategy;
  cfg.cluster = {.num_agents = 3, .workers_per_agent = 4};
  cfg.wall_time_seconds = minutes * 60.0;
  cfg.fidelity = {.epochs = 1, .subset_fraction = 1.0};
  cfg.cost = {.startup_seconds = 20.0, .seconds_per_megaunit = 1.0, .timeout_seconds = 600.0};
  cfg.seed = 11;
  return cfg;
}

data::Dataset tiny_nt3() {
  data::Nt3Dims dims;
  dims.train = 64;
  dims.valid = 32;
  dims.length = 64;
  dims.motif = 6;
  return data::make_nt3(5, dims);
}

void export_journal(const obs::Telemetry& telemetry, const std::string& path) {
  std::ofstream out(path);
  telemetry.export_journal_jsonl(out);
}

int verify(const std::string& path_a, const std::string& path_b) {
  const auto read_fp = [](const std::string& path) {
    std::ifstream in(path);
    std::string magic, fp;
    std::getline(in, magic);
    std::getline(in, fp);
    return fp;
  };
  const std::string fp_a = read_fp(path_a);
  const std::string fp_b = read_fp(path_b);
  if (fp_a != fp_b) {
    std::cerr << "FINGERPRINT MISMATCH:\n  " << path_a << ": " << fp_a << "\n  " << path_b
              << ": " << fp_b << "\n";
    return 1;
  }
  const auto a = nas::load_result(path_a, fp_a);
  const auto b = nas::load_result(path_b, fp_b);
  if (!a || !b) {
    std::cerr << "cannot load " << (!a ? path_a : path_b) << "\n";
    return 1;
  }

  std::size_t mismatches = 0;
  const auto check = [&](const char* what, auto va, auto vb) {
    if (va == vb) return;
    std::cerr << "MISMATCH " << what << ": " << va << " vs " << vb << "\n";
    ++mismatches;
  };
  // Everything the search computed must agree. The two checkpoint/resume
  // bookkeeping counters are deliberately excluded: the reference run has no
  // checkpoint policy (0 snapshots, 0 resumes) while the interrupted lineage
  // legitimately reports its own — that difference is the point, not a bug.
  check("eval count", a->evals.size(), b->evals.size());
  check("end_time", a->end_time, b->end_time);
  check("converged_early", a->converged_early, b->converged_early);
  check("cache_hits", a->cache_hits, b->cache_hits);
  check("timeouts", a->timeouts, b->timeouts);
  check("unique_archs", a->unique_archs, b->unique_archs);
  check("ppo_updates", a->ppo_updates, b->ppo_updates);
  check("retries", a->retries, b->retries);
  check("exhausted", a->exhausted, b->exhausted);
  check("lost_results", a->lost_results, b->lost_results);
  check("crashed_workers", a->crashed_workers, b->crashed_workers);
  check("dead_agents", a->dead_agents, b->dead_agents);
  check("utilization buckets", a->utilization.size(), b->utilization.size());
  for (std::size_t i = 0; i < std::min(a->utilization.size(), b->utilization.size()); ++i) {
    check("utilization", a->utilization[i], b->utilization[i]);
  }
  for (std::size_t i = 0; i < std::min(a->evals.size(), b->evals.size()); ++i) {
    const nas::EvalRecord& ea = a->evals[i];
    const nas::EvalRecord& eb = b->evals[i];
    check("eval.time", ea.time, eb.time);
    check("eval.reward", ea.reward, eb.reward);
    check("eval.params", ea.params, eb.params);
    check("eval.sim_duration", ea.sim_duration, eb.sim_duration);
    check("eval.cache_hit", ea.cache_hit, eb.cache_hit);
    check("eval.timed_out", ea.timed_out, eb.timed_out);
    check("eval.failed", ea.failed, eb.failed);
    check("eval.attempts", ea.attempts, eb.attempts);
    check("eval.agent", ea.agent, eb.agent);
    if (ea.arch != eb.arch) {
      std::cerr << "MISMATCH eval.arch at record " << i << "\n";
      ++mismatches;
    }
    if (mismatches > 20) {
      std::cerr << "... giving up after 20 mismatches\n";
      break;
    }
  }
  if (mismatches > 0) {
    std::cerr << "verify FAILED: " << path_a << " and " << path_b << " diverge\n";
    return 1;
  }
  std::cout << "verify OK: " << a->evals.size() << " evaluations bit-identical ("
            << path_a << " == " << path_b << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  std::string strategy_arg = "a3c";
  double minutes = 30.0;
  std::size_t kill_after = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strategy" && i + 1 < argc) {
      strategy_arg = argv[++i];
    } else if (arg == "--minutes" && i + 1 < argc) {
      minutes = std::atof(argv[++i]);
    } else if (arg == "--kill-after" && i + 1 < argc) {
      kill_after = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() < 2) {
    std::cerr << "usage: resume_search reference|run|resume <dir> [--strategy a3c|a2c|rdm|evo]"
                 " [--minutes M] [--kill-after N]\n"
                 "       resume_search verify <log-a> <log-b>\n";
    return 2;
  }
  const std::string mode = positional[0];
  if (mode == "verify") {
    if (positional.size() < 3) {
      std::cerr << "usage: resume_search verify <log-a> <log-b>\n";
      return 2;
    }
    return verify(positional[1], positional[2]);
  }

  const std::string dir = positional[1];
  std::filesystem::create_directories(dir);
  const std::string snap_dir = dir + "/snaps";

  const space::SearchSpace sp = space::nt3_small_space();
  const data::Dataset ds = tiny_nt3();
  nas::SearchConfig cfg = shared_config(parse_strategy(strategy_arg), minutes);
  const std::string fingerprint = nas::config_fingerprint(cfg, sp.name());

  obs::Telemetry telemetry;
  telemetry.enable_journal();
  cfg.telemetry = &telemetry;

  // Snapshot every 5 simulated minutes: a 30-minute search crosses several
  // checkpoint boundaries, so --kill-after has room to bite.
  ckpt::CheckpointConfig ckpt_cfg;
  ckpt_cfg.directory = snap_dir;
  ckpt_cfg.interval_seconds = 5.0 * 60.0;

  tensor::ThreadPool pool;
  if (mode == "reference") {
    // No checkpoint policy at all: the baseline the lineage must reproduce.
    const nas::SearchResult res = nas::SearchDriver(sp, ds, cfg, &pool).run();
    nas::save_result(dir + "/reference.log", res, fingerprint);
    export_journal(telemetry, dir + "/journal-reference.jsonl");
    std::cout << "reference: " << res.evals.size() << " evaluations, end t " << res.end_time
              << " s -> " << dir << "/reference.log\n";
    return 0;
  }
  if (mode == "run") {
    cfg.checkpoint = &ckpt_cfg;
    ckpt_cfg.abort_after_snapshots = kill_after;
    try {
      const nas::SearchResult res = nas::SearchDriver(sp, ds, cfg, &pool).run();
      // Interval longer than the search: nothing to kill, run just finishes.
      nas::save_result(dir + "/resumed.log", res, fingerprint);
      export_journal(telemetry, dir + "/journal-0.jsonl");
      std::cout << "run finished before writing " << kill_after
                << " snapshot(s); nothing to resume\n";
      return 0;
    } catch (const ckpt::SearchInterrupted& e) {
      // The snapshot is on disk; journal out, then die the way a preempted
      // job does. Exit code 137 = 128 + SIGKILL, which the CI job asserts.
      export_journal(telemetry, dir + "/journal-0.jsonl");
      std::cout << "interrupted after snapshot " << e.snapshot_path() << "; dying\n";
      std::cout.flush();
      std::raise(SIGKILL);
      return 1;  // unreachable
    }
  }
  if (mode == "resume") {
    cfg.checkpoint = &ckpt_cfg;
    const auto latest = ckpt::latest_checkpoint(snap_dir);
    if (!latest) {
      std::cerr << "no snapshots in " << snap_dir << " (run `resume_search run " << dir
                << "` first)\n";
      return 1;
    }
    std::cout << "resuming from " << *latest << "\n";
    const nas::SearchResult res = nas::resume_search(*latest, sp, ds, cfg, &pool);
    nas::save_result(dir + "/resumed.log", res, fingerprint);
    export_journal(telemetry, dir + "/journal-1.jsonl");
    std::cout << "resumed: " << res.evals.size() << " evaluations, end t " << res.end_time
              << " s, " << res.checkpoints_written << " snapshot(s) over the lineage -> "
              << dir << "/resumed.log\n";
    return 0;
  }
  std::cerr << "unknown mode '" << mode << "'\n";
  return 2;
}
