// reward_landscape — samples random architectures from each benchmark's
// search space and prints the low-fidelity reward distribution the RL agents
// actually see. Useful for sanity-checking that the search problem is
// neither saturated (everything scores 1.0) nor hopeless (everything -1).
//
//   ./examples/reward_landscape [samples_per_space]
#include <cstdlib>
#include <iostream>

#include "ncnas/analytics/report.hpp"
#include "ncnas/analytics/series.hpp"
#include "ncnas/exec/evaluator.hpp"
#include "ncnas/exec/presets.hpp"
#include "ncnas/space/spaces.hpp"
#include "ncnas/tensor/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace ncnas;
  const std::size_t samples = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 40;

  struct Case {
    const char* space_name;
    data::Dataset dataset;
    exec::FidelityConfig fidelity;
  };
  std::vector<Case> cases;
  cases.push_back({"combo-small", data::make_combo(1), exec::default_fidelity("combo")});
  cases.push_back({"uno-small", data::make_uno(1), exec::default_fidelity("uno")});
  cases.push_back({"nt3-small", data::make_nt3(1), exec::default_fidelity("nt3")});

  tensor::ThreadPool pool;
  analytics::Table table(
      {"space", "metric", "min", "q10", "median", "q90", "max", "params q50", "sim s q50"});

  for (const Case& c : cases) {
    const space::SearchSpace sp = space::space_by_name(c.space_name);
    const exec::TrainingEvaluator eval(sp, c.dataset, c.fidelity,
                                       exec::default_cost(c.dataset.name));
    tensor::Rng rng(7);
    std::vector<space::ArchEncoding> archs;
    for (std::size_t i = 0; i < samples; ++i) archs.push_back(sp.random_arch(rng));
    std::vector<exec::EvalResult> results(samples);
    tensor::parallel_for(pool, samples,
                         [&](std::size_t i) { results[i] = eval.evaluate(archs[i], 1234 + i); });

    std::vector<double> rewards, params, secs;
    for (const auto& r : results) {
      rewards.push_back(r.reward);
      params.push_back(static_cast<double>(r.params));
      secs.push_back(r.sim_duration);
    }
    table.add_row({c.space_name, nn::metric_name(c.dataset.metric),
                   analytics::fmt(analytics::quantile(rewards, 0.0)),
                   analytics::fmt(analytics::quantile(rewards, 0.1)),
                   analytics::fmt(analytics::quantile(rewards, 0.5)),
                   analytics::fmt(analytics::quantile(rewards, 0.9)),
                   analytics::fmt(analytics::quantile(rewards, 1.0)),
                   analytics::fmt(analytics::quantile(params, 0.5), 0),
                   analytics::fmt(analytics::quantile(secs, 0.5), 1)});
  }
  table.print(std::cout);
  return 0;
}
