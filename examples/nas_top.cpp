// nas_top — a refresh-in-place terminal dashboard for a live NAS search,
// the `top(1)` of the exporter's telemetry plane. Two data paths:
//
//   HTTP poll (default): GET /progress from a search running with
//   Telemetry::enable_exporter and an http_port, every --interval seconds.
//
//   Journal tail (--journal <file>): re-reads a (live, stream-flushed) JSONL
//   journal and replays it with summarize_journal — works on a finished run
//   too, or over a shared filesystem where no port is reachable.
//
//   ./examples/nas_top [--host H] [--port P] [--interval S] [--once]
//   ./examples/nas_top --journal live.jsonl [--interval S] [--once]
//   ./examples/nas_top --validate-metrics [file]   # OpenMetrics checker
//
// --validate-metrics reads an OpenMetrics exposition (from a file or stdin,
// e.g. piped from `curl /metrics`) through validate_openmetrics and exits
// 0/1 — the conformance gate CI's live-obs-smoke job runs against a live
// endpoint.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ncnas/nas/driver.hpp"
#include "ncnas/obs/exporter.hpp"
#include "ncnas/obs/journal.hpp"

namespace {

using namespace ncnas;

/// Unicode block sparkline of a series, scaled to its own min/max.
std::string sparkline(const std::vector<float>& values, std::size_t width = 48) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) return "(no data)";
  const std::size_t start = values.size() > width ? values.size() - width : 0;
  float lo = values[start];
  float hi = values[start];
  for (std::size_t i = start; i < values.size(); ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  std::string out;
  for (std::size_t i = start; i < values.size(); ++i) {
    const float span = hi - lo;
    const int level =
        span <= 0.0f ? 0
                     : std::min(7, static_cast<int>((values[i] - lo) / span * 7.999f));
    out += kLevels[level];
  }
  return out;
}

std::string fixed(double v, int digits = 2) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << v;
  return os.str();
}

void render(const obs::ProgressSnapshot& p, const std::vector<float>& reward_history,
            bool clear) {
  std::ostringstream os;
  if (clear) os << "\x1b[H\x1b[2J";  // home + clear: refresh in place
  os << "nas_top — " << p.strategy << " search  [seq " << p.seq << "]"
     << (p.finished ? (p.converged ? "  FINISHED (converged)" : "  FINISHED") : "") << '\n';
  os << "  t = " << fixed(p.virtual_time, 0) << "s / " << fixed(p.wall_time_seconds, 0)
     << "s virtual   health: "
     << (p.healthy ? "ok" : "DEGRADED (" + std::to_string(p.stragglers) + " stragglers, " +
                                std::to_string(p.stalls) + " stalls)")
     << "   exporter errors: " << p.exporter_errors << '\n';
  const double minutes = p.virtual_time > 0.0 ? p.virtual_time / 60.0 : 0.0;
  os << "  evals " << p.evals_done << " (" << p.real_evals << " real, " << p.cache_hits
     << " cached, " << p.timeouts << " timeouts)   "
     << fixed(minutes > 0.0 ? static_cast<double>(p.evals_done) / minutes : 0.0, 1)
     << " evals/min   in-flight batches " << p.batches_in_flight << "   ppo updates "
     << p.ppo_updates << '\n';
  if (p.retries + p.lost_results + p.crashed_workers + p.dead_agents + p.exhausted > 0) {
    os << "  faults: " << p.retries << " retries, " << p.exhausted << " exhausted, "
       << p.lost_results << " lost, " << p.crashed_workers << " crashed workers, "
       << p.dead_agents << " dead agents\n";
  }
  os << '\n';
  os << "  best reward " << (p.has_best ? fixed(p.best_reward, 4) : "—") << "   "
     << sparkline(reward_history) << '\n';
  if (!p.top.empty()) {
    os << "  top architectures:\n";
    for (const obs::TopArchProgress& t : p.top) {
      os << "    " << fixed(t.reward, 4) << "  agent " << t.agent << "  " << t.params
         << " params  " << t.arch << '\n';
    }
  }
  os << '\n';
  os << "  agent  status     evals  cached  timeouts  streak  best\n";
  for (const obs::AgentProgress& a : p.agents) {
    std::ostringstream row;
    row << "  " << a.id;
    std::string line = row.str();
    line.resize(7, ' ');
    std::string status = a.status;
    status.resize(9, ' ');
    os << line << status << "  " << a.evals << "      " << a.cache_hits << "       "
       << a.timeouts << "         " << a.cached_streak << "      "
       << (a.has_best ? fixed(a.best_reward, 4) : "—") << '\n';
  }
  if (!p.hot_scopes.empty()) {
    os << "\n  hot scopes (self ms):\n";
    for (const obs::HotScopeProgress& h : p.hot_scopes) {
      os << "    " << fixed(h.self_ms, 1) << "  " << h.name << "  (" << h.calls
         << " calls, total " << fixed(h.total_ms, 1) << ")\n";
    }
  }
  os << "\n  journal events " << p.journal_events << '\n';
  std::cout << os.str() << std::flush;
}

/// The journal-tail path: replay the file into the same ProgressSnapshot
/// shape the HTTP path serves, so both render identically.
obs::ProgressSnapshot progress_from_journal(const std::vector<obs::JournalEvent>& events) {
  const obs::RunSummary sum = obs::summarize_journal(events);
  obs::ProgressSnapshot p;
  p.virtual_time = sum.end_time_s;
  p.wall_time_seconds = std::isfinite(sum.wall_time_s) ? sum.wall_time_s : 0.0;
  if (sum.strategy >= 0 &&
      sum.strategy <= static_cast<int>(nas::SearchStrategy::kEvolution)) {
    p.strategy = nas::strategy_name(static_cast<nas::SearchStrategy>(sum.strategy));
  } else {
    p.strategy = "?";
  }
  p.finished = sum.has_run_finished;
  p.converged = sum.converged;
  p.evals_done = sum.evals;
  p.real_evals = sum.real_evals;
  p.cache_hits = sum.cache_hits;
  p.timeouts = sum.timeouts;
  p.ppo_updates = sum.ppo_updates;
  p.best_reward = sum.best_reward;
  p.has_best = !sum.rewards.empty();
  p.retries = sum.retries;
  p.exhausted = sum.exhausted;
  p.lost_results = sum.lost_results;
  p.crashed_workers = sum.crashed_workers;
  p.dead_agents = sum.dead_agents;
  p.stragglers = sum.stragglers;
  p.stalls = sum.stalls;
  p.healthy = sum.stragglers + sum.stalls == 0;
  p.journal_events = events.size();
  for (const auto& [id, a] : sum.per_agent) {
    obs::AgentProgress ap;
    ap.id = id;
    ap.status = std::find(sum.converged_agents.begin(), sum.converged_agents.end(), id) !=
                        sum.converged_agents.end()
                    ? "converged"
                    : (sum.has_run_finished ? "stopped" : "running");
    ap.evals = a.evals;
    ap.cache_hits = a.cached;
    ap.timeouts = a.timeouts;
    ap.best_reward = a.evals > 0 ? a.best_reward : 0.0f;
    ap.has_best = a.evals > 0;
    p.agents.push_back(std::move(ap));
  }
  return p;
}

int validate_metrics(const std::string& path) {
  std::string text;
  if (path.empty() || path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    text = buf.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "nas_top: cannot open '" << path << "'\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  std::string error;
  if (!obs::validate_openmetrics(text, &error)) {
    std::cerr << "nas_top: OpenMetrics validation FAILED: " << error << '\n';
    return 1;
  }
  std::cout << "nas_top: OpenMetrics exposition OK (" << text.size() << " bytes)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 9109;
  double interval = 2.0;
  bool once = false;
  bool validate = false;
  std::string journal_path;
  std::string validate_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << what << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      host = need("--host");
    } else if (arg == "--port") {
      port = std::stoi(need("--port"));
    } else if (arg == "--interval") {
      interval = std::stod(need("--interval"));
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--journal") {
      journal_path = need("--journal");
    } else if (arg == "--validate-metrics") {
      validate = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') validate_path = argv[++i];
    } else {
      std::cerr << "usage: nas_top [--host H] [--port P] [--interval S] [--once]\n"
                << "       nas_top --journal <live.jsonl> [--interval S] [--once]\n"
                << "       nas_top --validate-metrics [file|-]\n";
      return 2;
    }
  }
  if (validate) return validate_metrics(validate_path);

  std::vector<float> reward_history;
  std::uint64_t misses = 0;
  for (;;) {
    obs::ProgressSnapshot p;
    bool have = false;
    if (!journal_path.empty()) {
      std::ifstream in(journal_path);
      if (in) {
        try {
          p = progress_from_journal(obs::Journal::import_jsonl(in));
          have = true;
        } catch (const std::exception& e) {
          std::cerr << "nas_top: journal parse failed: " << e.what() << '\n';
        }
      }
    } else {
      int status = 0;
      const std::optional<std::string> body = obs::http_get(host, port, "/progress", &status);
      if (body && status == 200) {
        try {
          p = obs::parse_progress_json(*body);
          have = true;
        } catch (const std::exception& e) {
          std::cerr << "nas_top: bad /progress payload: " << e.what() << '\n';
        }
      }
    }
    if (have) {
      misses = 0;
      if (p.has_best) reward_history.push_back(p.best_reward);
      render(p, reward_history, /*clear=*/!once);
      if (p.finished) {
        std::cout << "run finished — exiting\n";
        return 0;
      }
    } else {
      ++misses;
      std::cerr << "nas_top: no data from "
                << (journal_path.empty() ? host + ":" + std::to_string(port) : journal_path)
                << " (attempt " << misses << ")\n";
      if (misses >= 30) return 1;
    }
    if (once) return have ? 0 : 1;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
  }
}
