// analyze_log — the analytics module as a standalone tool: reads a search
// log from nas_logs/ (written by any bench or by nas::save_result) and
// reports the reward trajectory, utilization, top architectures, and the
// controller's decision histogram.
//
//   ./examples/analyze_log nas_logs/<tag>.log <space-name> [--journal <file>]...
//
// With --journal the tool also replays a structured journal (JSONL written by
// Telemetry::export_journal_jsonl) of the same run and cross-checks its final
// eval count and best reward against the result log — a divergence means the
// two artifacts are from different runs (exit 1).
//
// --journal may repeat for a checkpointed run that was interrupted and
// resumed: pass the journals in process order (original first, each resumed
// process after it) and they are stitched with obs::merge_resumed_journal at
// each run_resumed watermark before the replay, so the cross-check covers
// the whole lineage as if the run had never been interrupted.
//
// With --profile (requires --journal) the tool also loads a profile JSON
// (written by Telemetry::export_profile_json) and cross-checks the profiler's
// eval/train + eval/validate wall time against the journal's per-eval
// train_wall_ms sum — the two instruments bracket the same code region, so a
// large gap means the artifacts are from different runs (exit 1, unless the
// run had retry-exhausted evals, which train without ever being journaled as
// dispatched).
#include <cmath>
#include <fstream>
#include <iostream>

#include "ncnas/analytics/arch_stats.hpp"
#include "ncnas/analytics/report.hpp"
#include "ncnas/analytics/series.hpp"
#include "ncnas/nas/result_io.hpp"
#include "ncnas/obs/journal.hpp"
#include "ncnas/obs/profiler.hpp"
#include "ncnas/space/spaces.hpp"

int main(int argc, char** argv) {
  using namespace ncnas;
  std::vector<std::string> positional;
  std::vector<std::string> journal_paths;
  std::string profile_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--journal") {
      if (i + 1 >= argc) {
        std::cerr << "--journal needs a file argument\n";
        return 2;
      }
      journal_paths.push_back(argv[++i]);
    } else if (arg == "--profile") {
      if (i + 1 >= argc) {
        std::cerr << "--profile needs a file argument\n";
        return 2;
      }
      profile_path = argv[++i];
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() < 2) {
    std::cerr << "usage: analyze_log <log-file> <space-name> [--journal <file>]..."
                 " [--profile <file>]\n  spaces:";
    for (const auto& n : space::space_names()) std::cerr << ' ' << n;
    std::cerr << '\n';
    return 2;
  }
  if (!profile_path.empty() && journal_paths.empty()) {
    std::cerr << "--profile requires --journal (the cross-check needs the journal's"
                 " train_wall_ms stream)\n";
    return 2;
  }
  const std::string path = positional[0];
  const space::SearchSpace sp = space::space_by_name(positional[1]);

  // Accept whatever fingerprint the log carries (this is a viewer, not a
  // cache): read it from line 2 and pass it back.
  std::string fingerprint;
  {
    std::ifstream in(path);
    std::string magic;
    std::getline(in, magic);
    std::getline(in, fingerprint);
  }
  const auto res = nas::load_result(path, fingerprint);
  if (!res) {
    std::cerr << "cannot read " << path << "\n";
    return 1;
  }

  std::cout << "log: " << path << "\nconfig: " << fingerprint << "\n\n";
  std::cout << res->evals.size() << " evaluations (" << res->cache_hits << " cached, "
            << res->timeouts << " timed out), " << res->unique_archs
            << " unique architectures, " << res->ppo_updates << " PPO updates\n";
  std::cout << "search span: " << analytics::fmt(res->end_time / 60.0, 1) << " min"
            << (res->converged_early ? " (converged early)" : "") << "\n";
  if (res->retries + res->exhausted + res->lost_results + res->crashed_workers +
          res->dead_agents >
      0) {
    std::cout << "faults: " << res->retries << " retries, " << res->exhausted
              << " floored after retry budget, " << res->lost_results << " lost results, "
              << res->crashed_workers << " crashed worker(s), " << res->dead_agents
              << " dead agent(s)\n";
  }
  if (res->checkpoints_written + res->resumes > 0) {
    std::cout << "checkpoints: " << res->checkpoints_written << " snapshot(s) written, "
              << res->resumes << " resume(s) behind this result\n";
  }
  std::cout << "\n";

  std::vector<std::pair<double, float>> rewards;
  for (const auto& e : res->evals) rewards.emplace_back(e.time, e.reward);
  const auto mean = analytics::resample_mean(rewards, res->end_time, 600.0, -1.0);
  analytics::print_sparkline(std::cout, "mean reward ", mean, -1.0, 1.0);
  analytics::print_sparkline(std::cout, "utilization ", res->utilization, 0.0, 1.0);

  std::cout << "\ntop-5 architectures by estimated reward:\n";
  for (const auto& rec : res->top_k(5)) {
    std::cout << "  reward " << analytics::fmt(rec.reward) << ", " << rec.params
              << " params, agent " << rec.agent << ": " << space::arch_key(rec.arch) << "\n";
  }

  std::cout << "\nlate-search decision histogram (second half):\n";
  const auto stats = analytics::compute_arch_stats(sp, *res, res->end_time / 2.0);
  analytics::print_arch_stats(std::cout, stats);

  if (!journal_paths.empty()) {
    obs::RunSummary sum;
    std::vector<obs::JournalEvent> events;
    try {
      for (std::size_t j = 0; j < journal_paths.size(); ++j) {
        std::ifstream jin(journal_paths[j]);
        if (!jin) {
          std::cerr << "cannot open journal " << journal_paths[j] << "\n";
          return 1;
        }
        std::vector<obs::JournalEvent> part = obs::Journal::import_jsonl(jin);
        // The first journal stands alone; each later one opens with a
        // run_resumed event whose watermark stitches it onto the lineage.
        events = j == 0 ? std::move(part)
                        : obs::merge_resumed_journal(std::move(events), part);
      }
      sum = obs::summarize_journal(events);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 1;
    }
    float log_best = -std::numeric_limits<float>::infinity();
    for (const auto& e : res->evals) log_best = std::max(log_best, e.reward);

    std::cout << "\njournal cross-check (" << journal_paths.size() << " journal(s), "
              << events.size() << " events):\n";
    if (sum.resumes > 0) {
      std::cout << "  resume boundaries:";
      for (const double t : sum.resume_times) {
        std::cout << ' ' << analytics::fmt(t / 60.0, 1) << " min";
      }
      std::cout << "\n";
    }
    bool ok = true;
    if (sum.evals != res->evals.size()) {
      std::cout << "  MISMATCH: journal has " << sum.evals << " evals, log has "
                << res->evals.size() << "\n";
      ok = false;
    }
    if (!res->evals.empty() && sum.best_reward != log_best) {
      std::cout << "  MISMATCH: journal best reward " << analytics::fmt(sum.best_reward)
                << ", log best reward " << analytics::fmt(log_best) << "\n";
      ok = false;
    }
    // Fault accounting is recorded on both sides with the same no-deadline
    // convention, so a faulty run's journal must reconcile counter-for-counter.
    const auto check_fault = [&](const char* what, std::size_t journal_n, std::size_t log_n) {
      if (journal_n == log_n) return;
      std::cout << "  MISMATCH: journal has " << journal_n << " " << what << ", log has "
                << log_n << "\n";
      ok = false;
    };
    check_fault("retries", sum.retries, res->retries);
    check_fault("retry-exhausted evals", sum.exhausted, res->exhausted);
    check_fault("lost results", sum.lost_results, res->lost_results);
    check_fault("crashed workers", sum.crashed_workers, res->crashed_workers);
    check_fault("dead agents", sum.dead_agents, res->dead_agents);
    // Checkpoint accounting follows the same no-deadline convention, so a
    // merged lineage must reconcile with the final result counter-for-counter.
    check_fault("checkpoints", sum.checkpoints, res->checkpoints_written);
    check_fault("resumes", sum.resumes, res->resumes);
    if (ok) {
      std::cout << "  OK: " << sum.evals << " evals, best reward "
                << analytics::fmt(sum.best_reward) << " — journal and log agree\n";
    } else {
      std::cerr << "journal/log divergence: the artifacts are not from the same run\n";
      return 1;
    }

    if (!profile_path.empty()) {
      std::ifstream pin(profile_path);
      if (!pin) {
        std::cerr << "cannot open profile " << profile_path << "\n";
        return 1;
      }
      obs::ImportedProfile prof;
      try {
        prof = obs::import_profile_json(pin);
      } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 1;
      }
      double profile_ms = 0.0;
      bool saw_eval_scopes = false;
      for (const obs::FlatProfileEntry& e : prof.flat) {
        if (e.name == "eval/train" || e.name == "eval/validate") {
          profile_ms += e.total_ms;
          saw_eval_scopes = true;
        }
      }
      double journal_ms = 0.0;
      for (const obs::JournalEvent& e : events) {
        if (e.type == obs::JournalEventType::kEvalDispatched) {
          journal_ms += e.field("train_wall_ms");
        }
      }
      const double rel = journal_ms > 0.0
                             ? std::abs(profile_ms - journal_ms) / journal_ms
                             : (profile_ms > 0.0 ? 1.0 : 0.0);
      std::cout << "\nprofile cross-check (" << profile_path << "):\n"
                << "  profiler eval train+validate " << analytics::fmt(profile_ms, 1)
                << " ms vs journal train wall " << analytics::fmt(journal_ms, 1) << " ms ("
                << analytics::fmt(100.0 * rel, 1) << "% apart)\n";
      if (!saw_eval_scopes) {
        std::cout << "  no eval/train or eval/validate scopes in the profile — was the"
                     " run profiled?\n";
      }
      // Retry-exhausted evals train but are never journaled as dispatched, so
      // a faulty run's instruments legitimately diverge: report, don't fail.
      if (rel > 0.25 && sum.exhausted == 0) {
        std::cerr << "profile/journal divergence: eval wall time disagrees beyond 25%\n";
        return 1;
      }
      if (rel > 0.25) {
        std::cout << "  (informational: " << sum.exhausted
                  << " retry-exhausted evals trained without a dispatch event)\n";
      }
    }
  }
  return 0;
}
