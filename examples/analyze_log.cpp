// analyze_log — the analytics module as a standalone tool: reads a search
// log from nas_logs/ (written by any bench or by nas::save_result) and
// reports the reward trajectory, utilization, top architectures, and the
// controller's decision histogram.
//
//   ./examples/analyze_log nas_logs/<tag>.log <space-name> [--journal <file>]...
//
// With --journal the tool also replays a structured journal (JSONL written by
// Telemetry::export_journal_jsonl) of the same run and cross-checks its final
// eval count and best reward against the result log — a divergence means the
// two artifacts are from different runs (exit 1).
//
// --journal may repeat for a checkpointed run that was interrupted and
// resumed: pass the journals in process order (original first, each resumed
// process after it) and they are stitched with obs::merge_resumed_journal at
// each run_resumed watermark before the replay, so the cross-check covers
// the whole lineage as if the run had never been interrupted.
//
// With --profile (requires --journal) the tool also loads a profile JSON
// (written by Telemetry::export_profile_json) and cross-checks the profiler's
// eval/train + eval/validate wall time against the journal's per-eval
// train_wall_ms sum — the two instruments bracket the same code region, so a
// large gap means the artifacts are from different runs (exit 1, unless the
// run had retry-exhausted evals, which train without ever being journaled as
// dispatched).
//
// With --format=json the same analysis is emitted as one JSON object on
// stdout (log counters, top-k, utilization, the journal replay via
// export_run_summary_json, and the cross-check verdicts) so nas_top and
// external tooling consume it without scraping terminal text. Exit codes are
// identical to the text path.
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>

#include "ncnas/analytics/arch_stats.hpp"
#include "ncnas/analytics/report.hpp"
#include "ncnas/analytics/series.hpp"
#include "ncnas/nas/result_io.hpp"
#include "ncnas/obs/journal.hpp"
#include "ncnas/obs/profiler.hpp"
#include "ncnas/space/spaces.hpp"

int main(int argc, char** argv) {
  using namespace ncnas;
  std::vector<std::string> positional;
  std::vector<std::string> journal_paths;
  std::string profile_path;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--journal") {
      if (i + 1 >= argc) {
        std::cerr << "--journal needs a file argument\n";
        return 2;
      }
      journal_paths.push_back(argv[++i]);
    } else if (arg == "--profile") {
      if (i + 1 >= argc) {
        std::cerr << "--profile needs a file argument\n";
        return 2;
      }
      profile_path = argv[++i];
    } else if (arg == "--format") {
      if (i + 1 >= argc) {
        std::cerr << "--format needs 'json' or 'text'\n";
        return 2;
      }
      const std::string fmt = argv[++i];
      if (fmt == "json") {
        json = true;
      } else if (fmt != "text") {
        std::cerr << "--format must be 'json' or 'text'\n";
        return 2;
      }
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--format=text") {
      json = false;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() < 2) {
    std::cerr << "usage: analyze_log <log-file> <space-name> [--journal <file>]..."
                 " [--profile <file>] [--format=json]\n  spaces:";
    for (const auto& n : space::space_names()) std::cerr << ' ' << n;
    std::cerr << '\n';
    return 2;
  }
  if (!profile_path.empty() && journal_paths.empty()) {
    std::cerr << "--profile requires --journal (the cross-check needs the journal's"
                 " train_wall_ms stream)\n";
    return 2;
  }
  const std::string path = positional[0];
  const space::SearchSpace sp = space::space_by_name(positional[1]);

  // Accept whatever fingerprint the log carries (this is a viewer, not a
  // cache): read it from line 2 and pass it back.
  std::string fingerprint;
  {
    std::ifstream in(path);
    std::string magic;
    std::getline(in, magic);
    std::getline(in, fingerprint);
  }
  const auto res = nas::load_result(path, fingerprint);
  if (!res) {
    std::cerr << "cannot read " << path << "\n";
    return 1;
  }

  // ---- journal replay + cross-check (computed up front, rendered later) ----
  obs::RunSummary sum;
  std::vector<obs::JournalEvent> events;
  std::vector<std::string> mismatches;
  const bool have_journal = !journal_paths.empty();
  if (have_journal) {
    try {
      for (std::size_t j = 0; j < journal_paths.size(); ++j) {
        std::ifstream jin(journal_paths[j]);
        if (!jin) {
          std::cerr << "cannot open journal " << journal_paths[j] << "\n";
          return 1;
        }
        std::vector<obs::JournalEvent> part = obs::Journal::import_jsonl(jin);
        // The first journal stands alone; each later one opens with a
        // run_resumed event whose watermark stitches it onto the lineage.
        events = j == 0 ? std::move(part)
                        : obs::merge_resumed_journal(std::move(events), part);
      }
      sum = obs::summarize_journal(events);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 1;
    }
    float log_best = -std::numeric_limits<float>::infinity();
    for (const auto& e : res->evals) log_best = std::max(log_best, e.reward);

    if (sum.evals != res->evals.size()) {
      mismatches.push_back("journal has " + std::to_string(sum.evals) + " evals, log has " +
                           std::to_string(res->evals.size()));
    }
    if (!res->evals.empty() && sum.best_reward != log_best) {
      mismatches.push_back("journal best reward " + analytics::fmt(sum.best_reward) +
                           ", log best reward " + analytics::fmt(log_best));
    }
    // Fault accounting is recorded on both sides with the same no-deadline
    // convention, so a faulty run's journal must reconcile counter-for-counter.
    const auto check_fault = [&](const char* what, std::size_t journal_n, std::size_t log_n) {
      if (journal_n == log_n) return;
      mismatches.push_back("journal has " + std::to_string(journal_n) + " " + what +
                           ", log has " + std::to_string(log_n));
    };
    check_fault("retries", sum.retries, res->retries);
    check_fault("retry-exhausted evals", sum.exhausted, res->exhausted);
    check_fault("lost results", sum.lost_results, res->lost_results);
    check_fault("crashed workers", sum.crashed_workers, res->crashed_workers);
    check_fault("dead agents", sum.dead_agents, res->dead_agents);
    // Checkpoint accounting follows the same no-deadline convention, so a
    // merged lineage must reconcile with the final result counter-for-counter.
    check_fault("checkpoints", sum.checkpoints, res->checkpoints_written);
    check_fault("resumes", sum.resumes, res->resumes);
    // Shared-cache hits are journaled as eval_cached events with a `shared`
    // marker, so the stitched lineage must agree with the result counter.
    check_fault("shared cache hits", sum.shared_cache_hits, res->shared_cache_hits);
    // Ladder accounting is journaled as ladder_rung events with the same
    // no-deadline convention, so a multi-fidelity run's journal must
    // reconcile counter-for-counter too.
    check_fault("ladder trainings", sum.ladder_trainings, res->ladder_trainings);
    check_fault("ladder promotions", sum.ladder_promotions, res->ladder_promotions);
    check_fault("ladder warm starts", sum.ladder_warm_starts, res->ladder_warm_starts);
    check_fault("ladder rung hits", sum.ladder_rung_hits, res->ladder_rung_hits);
  }

  // ---- profile cross-check (requires the journal's train_wall_ms stream) ----
  double profile_ms = 0.0;
  double journal_ms = 0.0;
  double profile_rel = 0.0;
  bool saw_eval_scopes = false;
  bool profile_diverged = false;
  if (!profile_path.empty()) {
    std::ifstream pin(profile_path);
    if (!pin) {
      std::cerr << "cannot open profile " << profile_path << "\n";
      return 1;
    }
    obs::ImportedProfile prof;
    try {
      prof = obs::import_profile_json(pin);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 1;
    }
    for (const obs::FlatProfileEntry& e : prof.flat) {
      if (e.name == "eval/train" || e.name == "eval/validate") {
        profile_ms += e.total_ms;
        saw_eval_scopes = true;
      }
    }
    for (const obs::JournalEvent& e : events) {
      if (e.type == obs::JournalEventType::kEvalDispatched) {
        journal_ms += e.field("train_wall_ms");
      }
    }
    profile_rel = journal_ms > 0.0 ? std::abs(profile_ms - journal_ms) / journal_ms
                                   : (profile_ms > 0.0 ? 1.0 : 0.0);
    // Retry-exhausted evals train but are never journaled as dispatched, so
    // a faulty run's instruments legitimately diverge: report, don't fail.
    profile_diverged = profile_rel > 0.25 && sum.exhausted == 0;
  }

  // ---- machine-readable rendering ----
  if (json) {
    std::ostream& os = std::cout;
    os << '{';
    obs::write_json_string(os, "log");
    os << ':';
    obs::write_json_string(os, path);
    os << ',';
    obs::write_json_string(os, "config");
    os << ':';
    obs::write_json_string(os, fingerprint);
    os << ",\"evals\":" << res->evals.size() << ",\"cache_hits\":" << res->cache_hits
       << ",\"shared_cache_hits\":" << res->shared_cache_hits
       << ",\"timeouts\":" << res->timeouts << ",\"unique_archs\":" << res->unique_archs
       << ",\"ppo_updates\":" << res->ppo_updates << ",\"end_time_s\":";
    obs::write_json_number(os, res->end_time);
    os << ",\"converged\":" << (res->converged_early ? "true" : "false")
       << ",\"retries\":" << res->retries << ",\"exhausted\":" << res->exhausted
       << ",\"lost_results\":" << res->lost_results
       << ",\"crashed_workers\":" << res->crashed_workers
       << ",\"dead_agents\":" << res->dead_agents
       << ",\"checkpoints_written\":" << res->checkpoints_written
       << ",\"resumes\":" << res->resumes
       << ",\"ladder_trainings\":" << res->ladder_trainings
       << ",\"ladder_promotions\":" << res->ladder_promotions
       << ",\"ladder_warm_starts\":" << res->ladder_warm_starts
       << ",\"ladder_rung_hits\":" << res->ladder_rung_hits << ",\"top\":[";
    bool first = true;
    for (const auto& rec : res->top_k(5)) {
      if (!first) os << ',';
      first = false;
      os << "{\"reward\":";
      obs::write_json_number(os, rec.reward);
      os << ",\"params\":" << rec.params << ",\"agent\":" << rec.agent << ",\"arch\":";
      obs::write_json_string(os, space::arch_key(rec.arch));
      os << '}';
    }
    os << "],\"utilization\":[";
    for (std::size_t i = 0; i < res->utilization.size(); ++i) {
      if (i) os << ',';
      obs::write_json_number(os, res->utilization[i]);
    }
    os << ']';
    if (have_journal) {
      std::ostringstream summary;
      obs::export_run_summary_json(sum, summary);
      std::string summary_str = summary.str();
      while (!summary_str.empty() && summary_str.back() == '\n') summary_str.pop_back();
      os << ",\"journal_summary\":" << summary_str;
      os << ",\"cross_check_ok\":" << (mismatches.empty() ? "true" : "false")
         << ",\"mismatches\":[";
      for (std::size_t i = 0; i < mismatches.size(); ++i) {
        if (i) os << ',';
        obs::write_json_string(os, mismatches[i]);
      }
      os << ']';
    }
    if (!profile_path.empty()) {
      os << ",\"profile_eval_ms\":";
      obs::write_json_number(os, profile_ms);
      os << ",\"journal_eval_ms\":";
      obs::write_json_number(os, journal_ms);
      os << ",\"profile_rel_gap\":";
      obs::write_json_number(os, profile_rel);
      os << ",\"profile_cross_check_ok\":" << (profile_diverged ? "false" : "true");
    }
    os << "}\n";
    if (!mismatches.empty()) {
      std::cerr << "journal/log divergence: the artifacts are not from the same run\n";
      return 1;
    }
    if (profile_diverged) {
      std::cerr << "profile/journal divergence: eval wall time disagrees beyond 25%\n";
      return 1;
    }
    return 0;
  }

  // ---- terminal rendering ----
  std::cout << "log: " << path << "\nconfig: " << fingerprint << "\n\n";
  std::cout << res->evals.size() << " evaluations (" << res->cache_hits << " cached, "
            << res->timeouts << " timed out), " << res->unique_archs
            << " unique architectures, " << res->ppo_updates << " PPO updates\n";
  if (res->shared_cache_hits > 0) {
    std::cout << "shared eval cache: " << res->shared_cache_hits
              << " hit(s) served from the cross-tenant store\n";
  }
  std::cout << "search span: " << analytics::fmt(res->end_time / 60.0, 1) << " min"
            << (res->converged_early ? " (converged early)" : "") << "\n";
  if (res->retries + res->exhausted + res->lost_results + res->crashed_workers +
          res->dead_agents >
      0) {
    std::cout << "faults: " << res->retries << " retries, " << res->exhausted
              << " floored after retry budget, " << res->lost_results << " lost results, "
              << res->crashed_workers << " crashed worker(s), " << res->dead_agents
              << " dead agent(s)\n";
  }
  if (res->checkpoints_written + res->resumes > 0) {
    std::cout << "checkpoints: " << res->checkpoints_written << " snapshot(s) written, "
              << res->resumes << " resume(s) behind this result\n";
  }
  if (res->ladder_trainings > 0) {
    std::cout << "fidelity ladder: " << res->ladder_trainings << " rung trainings ("
              << res->ladder_warm_starts << " warm-started), " << res->ladder_promotions
              << " promotions, " << res->ladder_rung_hits << " rung-level shared-cache hits\n";
  }
  std::cout << "\n";

  std::vector<std::pair<double, float>> rewards;
  for (const auto& e : res->evals) rewards.emplace_back(e.time, e.reward);
  const auto mean = analytics::resample_mean(rewards, res->end_time, 600.0, -1.0);
  analytics::print_sparkline(std::cout, "mean reward ", mean, -1.0, 1.0);
  analytics::print_sparkline(std::cout, "utilization ", res->utilization, 0.0, 1.0);

  std::cout << "\ntop-5 architectures by estimated reward:\n";
  for (const auto& rec : res->top_k(5)) {
    std::cout << "  reward " << analytics::fmt(rec.reward) << ", " << rec.params
              << " params, agent " << rec.agent << ": " << space::arch_key(rec.arch) << "\n";
  }

  std::cout << "\nlate-search decision histogram (second half):\n";
  const auto stats = analytics::compute_arch_stats(sp, *res, res->end_time / 2.0);
  analytics::print_arch_stats(std::cout, stats);

  if (have_journal) {
    std::cout << "\njournal cross-check (" << journal_paths.size() << " journal(s), "
              << events.size() << " events):\n";
    if (sum.resumes > 0) {
      std::cout << "  resume boundaries:";
      for (const double t : sum.resume_times) {
        std::cout << ' ' << analytics::fmt(t / 60.0, 1) << " min";
      }
      std::cout << "\n";
    }
    for (const std::string& m : mismatches) std::cout << "  MISMATCH: " << m << "\n";
    if (mismatches.empty()) {
      std::cout << "  OK: " << sum.evals << " evals, best reward "
                << analytics::fmt(sum.best_reward) << " — journal and log agree\n";
    } else {
      std::cerr << "journal/log divergence: the artifacts are not from the same run\n";
      return 1;
    }

    if (!profile_path.empty()) {
      std::cout << "\nprofile cross-check (" << profile_path << "):\n"
                << "  profiler eval train+validate " << analytics::fmt(profile_ms, 1)
                << " ms vs journal train wall " << analytics::fmt(journal_ms, 1) << " ms ("
                << analytics::fmt(100.0 * profile_rel, 1) << "% apart)\n";
      if (!saw_eval_scopes) {
        std::cout << "  no eval/train or eval/validate scopes in the profile — was the"
                     " run profiled?\n";
      }
      if (profile_diverged) {
        std::cerr << "profile/journal divergence: eval wall time disagrees beyond 25%\n";
        return 1;
      }
      if (profile_rel > 0.25) {
        std::cout << "  (informational: " << sum.exhausted
                  << " retry-exhausted evals trained without a dispatch event)\n";
      }
    }
  }
  return 0;
}
