// drug_response_search — the paper's headline scenario: discover a drug-pair
// response model (Combo) with multi-agent A3C, then compare the best found
// architectures against the manually designed CANDLE network.
//
//   ./examples/drug_response_search [minutes_of_simulated_search] [top_k]
#include <cstdlib>
#include <iostream>

#include "ncnas/analytics/posttrain.hpp"
#include "ncnas/analytics/report.hpp"
#include "ncnas/analytics/series.hpp"
#include "ncnas/exec/presets.hpp"
#include "ncnas/nas/driver.hpp"
#include "ncnas/space/spaces.hpp"

int main(int argc, char** argv) {
  using namespace ncnas;
  const double minutes = argc > 1 ? std::atof(argv[1]) : 120.0;
  const std::size_t top_k = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 5;

  const data::Dataset ds = data::make_combo(/*seed=*/1);
  const space::SearchSpace sp = space::combo_small_space();
  std::cout << "Combo: " << ds.train_rows() << " train rows, " << ds.input_count()
            << " inputs (" << ds.input_names[0] << " d=" << ds.input_dim(0) << ", "
            << ds.input_names[1] << " d=" << ds.input_dim(1) << ", shared drug submodel)\n";
  std::cout << "search space: " << sp.num_decisions() << " decisions, |S| = " << sp.size()
            << "\n\n";

  nas::SearchConfig cfg;
  cfg.strategy = nas::SearchStrategy::kA3C;
  cfg.cluster = {.num_agents = 6, .workers_per_agent = 5};
  cfg.wall_time_seconds = minutes * 60.0;
  cfg.fidelity = exec::default_fidelity("combo");  // low fidelity, 10 % data
  cfg.cost = exec::default_cost("combo");          // 10-minute timeout
  cfg.seed = 7;

  tensor::ThreadPool pool;
  nas::SearchDriver driver(sp, ds, cfg, &pool);
  const nas::SearchResult res = driver.run();

  std::cout << "search: " << res.evals.size() << " evaluations, " << res.unique_archs
            << " unique architectures, " << res.timeouts << " timeouts\n";
  const auto traj = analytics::resample_best(res.best_so_far(), res.end_time, 300.0, -1.0);
  analytics::print_sparkline(std::cout, "best R2 (5-min buckets)", traj, -1.0, 1.0);

  // Post-train the top-k and the manual baseline, paper-style.
  analytics::PostTrainOptions post;  // 20 epochs, full data
  const auto baseline = analytics::post_train_baseline(ds, post);
  const auto top = res.top_k(top_k);
  const auto models = analytics::post_train_many(sp, ds, top, post, &pool);

  analytics::Table table({"model", "est.R2", "R2", "R2/R2b", "Pb/P", "Tb/T", "params"});
  table.add_row({"manually designed", "-", analytics::fmt(baseline.final_metric), "1.000",
                 "1.0", "1.0", std::to_string(baseline.params)});
  for (std::size_t i = 0; i < models.size(); ++i) {
    const auto row = analytics::ratios(models[i], baseline);
    table.add_row({"A3C #" + std::to_string(i + 1), analytics::fmt(models[i].search_reward),
                   analytics::fmt(models[i].final_metric), analytics::fmt(row.accuracy_ratio),
                   analytics::fmt(row.param_ratio, 1), analytics::fmt(row.time_ratio, 1),
                   std::to_string(models[i].params)});
  }
  std::cout << "\n";
  table.print(std::cout);
  if (!models.empty()) {
    std::cout << "\nbest discovered architecture:\n" << sp.describe(models[0].arch);
  }
  return 0;
}
