// drug_response_search — the paper's headline scenario: discover a drug-pair
// response model (Combo) with multi-agent A3C, then compare the best found
// architectures against the manually designed CANDLE network.
//
//   ./examples/drug_response_search [minutes] [top_k] [--checkpoint-dir <dir>]
//                                   [--resume <snapshot-or-dir>]
//
// --checkpoint-dir snapshots the search every 30 simulated minutes, so a
// preempted process loses at most one interval. --resume continues from a
// snapshot (or from the newest snapshot in a directory) and keeps
// checkpointing into the same directory; the final result is bit-identical
// to the run that was never interrupted.
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "ncnas/analytics/posttrain.hpp"
#include "ncnas/analytics/report.hpp"
#include "ncnas/analytics/series.hpp"
#include "ncnas/ckpt/checkpoint.hpp"
#include "ncnas/exec/presets.hpp"
#include "ncnas/nas/driver.hpp"
#include "ncnas/space/spaces.hpp"

int main(int argc, char** argv) {
  using namespace ncnas;
  std::vector<std::string> positional;
  std::string resume_from, ckpt_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--resume" && i + 1 < argc) {
      resume_from = argv[++i];
    } else if (arg == "--checkpoint-dir" && i + 1 < argc) {
      ckpt_dir = argv[++i];
    } else {
      positional.push_back(arg);
    }
  }
  const double minutes = !positional.empty() ? std::atof(positional[0].c_str()) : 120.0;
  const std::size_t top_k =
      positional.size() > 1 ? static_cast<std::size_t>(std::atoi(positional[1].c_str())) : 5;

  const data::Dataset ds = data::make_combo(/*seed=*/1);
  const space::SearchSpace sp = space::combo_small_space();
  std::cout << "Combo: " << ds.train_rows() << " train rows, " << ds.input_count()
            << " inputs (" << ds.input_names[0] << " d=" << ds.input_dim(0) << ", "
            << ds.input_names[1] << " d=" << ds.input_dim(1) << ", shared drug submodel)\n";
  std::cout << "search space: " << sp.num_decisions() << " decisions, |S| = " << sp.size()
            << "\n\n";

  nas::SearchConfig cfg;
  cfg.strategy = nas::SearchStrategy::kA3C;
  cfg.cluster = {.num_agents = 6, .workers_per_agent = 5};
  cfg.wall_time_seconds = minutes * 60.0;
  cfg.fidelity = exec::default_fidelity("combo");  // low fidelity, 10 % data
  cfg.cost = exec::default_cost("combo");          // 10-minute timeout
  cfg.seed = 7;

  // A resumed run keeps checkpointing where the interrupted one did, unless
  // an explicit --checkpoint-dir overrides it.
  if (!resume_from.empty() && ckpt_dir.empty()) {
    ckpt_dir = std::filesystem::is_directory(resume_from)
                   ? resume_from
                   : std::filesystem::path(resume_from).parent_path().string();
  }
  ckpt::CheckpointConfig ckpt_cfg;
  if (!ckpt_dir.empty()) {
    ckpt_cfg.directory = ckpt_dir;
    ckpt_cfg.interval_seconds = 30.0 * 60.0;  // every 30 simulated minutes
    cfg.checkpoint = &ckpt_cfg;
  }

  tensor::ThreadPool pool;
  nas::SearchResult res;
  if (!resume_from.empty()) {
    std::string snap = resume_from;
    if (std::filesystem::is_directory(snap)) {
      const auto latest = ckpt::latest_checkpoint(snap);
      if (!latest) {
        std::cerr << "no snapshots found in " << snap << "\n";
        return 1;
      }
      snap = *latest;
    }
    std::cout << "resuming from " << snap << "\n";
    res = nas::resume_search(snap, sp, ds, cfg, &pool);
  } else {
    nas::SearchDriver driver(sp, ds, cfg, &pool);
    res = driver.run();
  }

  std::cout << "search: " << res.evals.size() << " evaluations, " << res.unique_archs
            << " unique architectures, " << res.timeouts << " timeouts\n";
  const auto traj = analytics::resample_best(res.best_so_far(), res.end_time, 300.0, -1.0);
  analytics::print_sparkline(std::cout, "best R2 (5-min buckets)", traj, -1.0, 1.0);

  // Post-train the top-k and the manual baseline, paper-style.
  analytics::PostTrainOptions post;  // 20 epochs, full data
  const auto baseline = analytics::post_train_baseline(ds, post);
  const auto top = res.top_k(top_k);
  const auto models = analytics::post_train_many(sp, ds, top, post, &pool);

  analytics::Table table({"model", "est.R2", "R2", "R2/R2b", "Pb/P", "Tb/T", "params"});
  table.add_row({"manually designed", "-", analytics::fmt(baseline.final_metric), "1.000",
                 "1.0", "1.0", std::to_string(baseline.params)});
  for (std::size_t i = 0; i < models.size(); ++i) {
    const auto row = analytics::ratios(models[i], baseline);
    table.add_row({"A3C #" + std::to_string(i + 1), analytics::fmt(models[i].search_reward),
                   analytics::fmt(models[i].final_metric), analytics::fmt(row.accuracy_ratio),
                   analytics::fmt(row.param_ratio, 1), analytics::fmt(row.time_ratio, 1),
                   std::to_string(models[i].params)});
  }
  std::cout << "\n";
  table.print(std::cout);
  if (!models.empty()) {
    std::cout << "\nbest discovered architecture:\n" << sp.describe(models[0].arch);
  }
  return 0;
}
