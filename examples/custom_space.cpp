// custom_space — how a domain expert defines their OWN search space with the
// paper's formalism: multiple input layers, VariableNodes with custom menus,
// a ConstantNode injecting domain knowledge, and a MirrorNode sharing weights
// between two symmetric inputs — then searches it.
//
// Scenario: a two-assay screening problem. Two replicate assay panels (same
// measurement modality, so they should share an encoder) plus a scalar
// covariate that domain knowledge says must always be concatenated in.
#include <iostream>

#include "ncnas/analytics/report.hpp"
#include "ncnas/data/dataset.hpp"
#include "ncnas/exec/presets.hpp"
#include "ncnas/nas/driver.hpp"
#include "ncnas/nn/trainer.hpp"
#include "ncnas/space/builder.hpp"
#include "ncnas/space/search_space.hpp"

using namespace ncnas;

namespace {

/// A three-input synthetic task shaped like the scenario above. Reuses the
/// Combo generator and relabels: assay panels = the two drug-descriptor
/// views, covariate = the first expression feature.
data::Dataset make_two_assay_task() {
  data::ComboDims dims;
  dims.train = 1024;
  dims.valid = 256;
  dims.expression = 1;   // scalar covariate
  dims.descriptors = 48; // assay panel width
  data::Dataset ds = data::make_combo(3, dims);
  ds.name = "two-assay";
  ds.input_names = {"covariate", "assay.panel.a", "assay.panel.b"};
  return ds;
}

space::SearchSpace make_two_assay_space() {
  using namespace ncnas::space;
  // A compact custom menu: the expert only trusts relu and moderate widths.
  const std::vector<Op> encoder_menu{
      IdentityOp{}, DenseOp{16, nn::Act::kRelu}, DenseOp{32, nn::Act::kRelu},
      DenseOp{64, nn::Act::kRelu}, DropoutOp{0.1f}};

  Structure s;
  s.name = "two-assay";
  s.input_names = {"covariate", "assay.panel.a", "assay.panel.b"};

  // C0: encode panel A with two searched layers; panel B mirrors them
  // (shared weights); the covariate passes through a ConstantNode so it is
  // guaranteed to reach the head unchanged.
  Cell c0{"C0", {}};
  Block panel_a{"panel-a", SkipRef::to_input(1), {}};
  panel_a.nodes.emplace_back(VariableNode{"enc0", encoder_menu});
  panel_a.nodes.emplace_back(VariableNode{"enc1", encoder_menu});
  c0.blocks.push_back(std::move(panel_a));
  Block panel_b{"panel-b", SkipRef::to_input(2), {}};
  panel_b.nodes.emplace_back(MirrorNode{"enc0'", 0, 0, 0});
  panel_b.nodes.emplace_back(MirrorNode{"enc1'", 0, 0, 1});
  c0.blocks.push_back(std::move(panel_b));
  Block covariate{"covariate", SkipRef::to_input(0), {}};
  covariate.nodes.emplace_back(ConstantNode{"pass", IdentityOp{}});
  c0.blocks.push_back(std::move(covariate));
  s.cells.push_back(std::move(c0));

  // C1: a searched head with an optional skip back to the raw inputs.
  Cell c1{"C1", {}};
  Block head{"head", SkipRef::to_cell(0), {}};
  head.nodes.emplace_back(VariableNode{"head0", encoder_menu});
  head.nodes.emplace_back(VariableNode{
      "skip", {ConnectOp{{}, "null"}, ConnectOp{{SkipRef::to_input(1), SkipRef::to_input(2)},
                                                "raw panels"}}});
  head.nodes.emplace_back(VariableNode{"head1", encoder_menu});
  c1.blocks.push_back(std::move(head));
  s.cells.push_back(std::move(c1));
  s.output_cells = {1};
  return space::SearchSpace(std::move(s));
}

}  // namespace

int main() {
  const data::Dataset ds = make_two_assay_task();
  const space::SearchSpace sp = make_two_assay_space();
  std::cout << "custom space '" << sp.name() << "': " << sp.num_decisions()
            << " decisions, |S| = " << sp.size() << "\n";
  std::cout << "decisions:";
  for (const auto& d : sp.decisions()) std::cout << ' ' << d.name << '(' << d.arity << ')';
  std::cout << "\n\n";

  nas::SearchConfig cfg;
  cfg.strategy = nas::SearchStrategy::kA3C;
  cfg.cluster = {.num_agents = 4, .workers_per_agent = 3};
  cfg.wall_time_seconds = 45.0 * 60.0;
  cfg.fidelity = {.epochs = 1, .subset_fraction = 0.5, .learning_rate = 0.02f, .batch_size = 8};
  cfg.cost = exec::default_cost("combo");
  cfg.seed = 13;

  tensor::ThreadPool pool;
  const nas::SearchResult res = nas::SearchDriver(sp, ds, cfg, &pool).run();
  std::cout << "search: " << res.evals.size() << " evaluations, best R2 so far = ";
  float best = -1.0f;
  for (const auto& e : res.evals) best = std::max(best, e.reward);
  std::cout << analytics::fmt(best) << "\n\n";

  const auto top = res.top_k(1);
  if (!top.empty()) {
    std::cout << "best architecture:\n" << sp.describe(top[0].arch);
    // Weight sharing in action: the mirrored encoder adds zero parameters.
    tensor::Rng rng(1);
    std::vector<std::size_t> dims{ds.input_dim(0), ds.input_dim(1), ds.input_dim(2)};
    nn::Graph g = space::build_model(sp, top[0].arch, dims, space::TaskHead::regression(), rng);
    nn::ForwardCtx ctx{};
    std::vector<tensor::Tensor> probe;
    for (const auto& x : ds.x_train) probe.push_back(nn::slice_rows(x, 0, 2));
    (void)g.forward(probe, ctx);
    std::cout << "\ntrainable parameters (panel B shares panel A's encoder): "
              << g.param_count() << "\n";
  }
  return 0;
}
