// perf_diff — baseline-compare tool for the two perf artifacts the repo
// produces:
//
//   bench JSON    BENCH_kernels.json written by bench/bench_kernels
//                 (records keyed op/size/config, metric = GFLOP/s, higher
//                 is better)
//   profile JSON  written by Telemetry::export_profile_json or
//                 examples/telemetry_dump (records keyed by scope name,
//                 metric = self ms, lower is better)
//
//   ./examples/perf_diff <baseline.json> <current.json> \
//       [--threshold 0.15] [--fail-on-regress] [--match SUBSTR]...
//
// The file kind is auto-detected (both inputs must be the same kind) and
// every record present on both sides is compared; relative deltas beyond the
// threshold are flagged. --match (repeatable) restricts the comparison to
// records whose key contains any given substring — e.g. `--match gemm/
// --match gemm_nt/` gates CI on just the gemm families while the rest of
// the table stays informational. The default mode is informational — it always exits
// 0 so CI can surface regressions without failing the build; --fail-on-regress
// turns flagged regressions into exit code 1. Profile self-times are only
// comparable between runs of the same workload on the same machine; bench
// GFLOP/s records are keyed machine-independently (see bench_kernels).
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ncnas/obs/profiler.hpp"

namespace {

enum class Kind { kUnknown, kBench, kProfile };

struct Record {
  double value = 0.0;
  bool higher_is_better = true;
};

bool find_number(const std::string& line, const std::string& key, double& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t pos = at + needle.size();
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  try {
    out = std::stod(line.substr(pos));
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

bool find_string(const std::string& line, const std::string& key, std::string& out) {
  const std::string needle = "\"" + key + "\":";
  std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  if (pos >= line.size() || line[pos] != '"') return false;
  ++pos;
  out.clear();
  while (pos < line.size() && line[pos] != '"') {
    if (line[pos] == '\\' && pos + 1 < line.size()) ++pos;
    out.push_back(line[pos]);
    ++pos;
  }
  return pos < line.size();
}

Kind detect_kind(const std::string& content) {
  if (content.find("\"op\":") != std::string::npos) return Kind::kBench;
  if (content.find("\"self_ms\":") != std::string::npos) return Kind::kProfile;
  return Kind::kUnknown;
}

std::map<std::string, Record> load_bench(const std::string& content) {
  std::map<std::string, Record> out;
  std::istringstream is(content);
  std::string line;
  while (std::getline(is, line)) {
    std::string op;
    if (!find_string(line, "op", op)) continue;
    double size = 0.0, gflops = 0.0;
    if (!find_number(line, "size", size) || !find_number(line, "gflops", gflops)) continue;
    std::string config;
    if (!find_string(line, "config", config)) {
      // Pre-schema records carried only a raw thread count.
      double threads = 0.0;
      find_number(line, "threads", threads);
      config = "t" + std::to_string(static_cast<long long>(threads));
    }
    const std::string key =
        op + "/" + std::to_string(static_cast<long long>(size)) + "/" + config;
    out[key] = {gflops, /*higher_is_better=*/true};
  }
  return out;
}

std::map<std::string, Record> load_profile(const std::string& content) {
  std::istringstream is(content);
  const ncnas::obs::ImportedProfile prof = ncnas::obs::import_profile_json(is);
  std::map<std::string, Record> out;
  for (const ncnas::obs::FlatProfileEntry& e : prof.flat) {
    out[e.name] = {e.self_ms, /*higher_is_better=*/false};
  }
  return out;
}

std::string fmt(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::vector<std::string> matches;
  double threshold = 0.15;
  bool fail_on_regress = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold") {
      if (i + 1 >= argc) {
        std::cerr << "--threshold needs a value\n";
        return 2;
      }
      threshold = std::stod(argv[++i]);
    } else if (arg == "--match") {
      if (i + 1 >= argc) {
        std::cerr << "--match needs a substring\n";
        return 2;
      }
      matches.push_back(argv[++i]);
    } else if (arg == "--fail-on-regress") {
      fail_on_regress = true;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::cerr << "usage: perf_diff <baseline.json> <current.json> [--threshold 0.15]"
                 " [--fail-on-regress] [--match SUBSTR]...\n";
    return 2;
  }
  const auto matched = [&matches](const std::string& key) {
    if (matches.empty()) return true;
    return std::any_of(matches.begin(), matches.end(),
                       [&key](const std::string& m) { return key.find(m) != std::string::npos; });
  };

  std::string contents[2];
  for (int i = 0; i < 2; ++i) {
    std::ifstream in(paths[i]);
    if (!in) {
      std::cerr << "cannot open " << paths[i] << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    contents[i] = buf.str();
  }
  const Kind kind = detect_kind(contents[0]);
  if (kind == Kind::kUnknown || detect_kind(contents[1]) != kind) {
    std::cerr << "inputs must both be bench JSON or both be profile JSON\n";
    return 2;
  }

  std::map<std::string, Record> base, cur;
  try {
    base = kind == Kind::kBench ? load_bench(contents[0]) : load_profile(contents[0]);
    cur = kind == Kind::kBench ? load_bench(contents[1]) : load_profile(contents[1]);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  const char* metric = kind == Kind::kBench ? "GFLOP/s" : "self_ms";
  std::cout << "perf_diff (" << (kind == Kind::kBench ? "bench" : "profile") << ", metric "
            << metric << ", threshold " << fmt(100.0 * threshold) << "%)\n";
  std::cout << "  baseline: " << paths[0] << " (" << base.size() << " records)\n";
  std::cout << "  current:  " << paths[1] << " (" << cur.size() << " records)\n";
  if (!matches.empty()) {
    std::cout << "  match:   ";
    for (const std::string& m : matches) std::cout << " \"" << m << "\"";
    std::cout << "\n";
  }
  std::cout << "\n";

  std::size_t regressions = 0, improvements = 0, compared = 0, added = 0, removed = 0;
  std::cout << std::left << std::setw(34) << "record" << std::right << std::setw(12)
            << "baseline" << std::setw(12) << "current" << std::setw(10) << "delta"
            << "  verdict\n";
  for (const auto& [key, b] : base) {
    if (!matched(key)) continue;
    const auto it = cur.find(key);
    if (it == cur.end()) {
      ++removed;
      continue;
    }
    ++compared;
    const Record& c = it->second;
    const double delta = b.value != 0.0 ? (c.value - b.value) / std::abs(b.value) : 0.0;
    const bool worse = b.higher_is_better ? delta < -threshold : delta > threshold;
    const bool better = b.higher_is_better ? delta > threshold : delta < -threshold;
    regressions += worse;
    improvements += better;
    const char* verdict = worse ? "REGRESSED" : (better ? "improved" : "ok");
    std::cout << std::left << std::setw(34) << key << std::right << std::setw(12)
              << fmt(b.value) << std::setw(12) << fmt(c.value) << std::setw(9)
              << fmt(100.0 * delta) << "%  " << verdict << "\n";
  }
  for (const auto& [key, c] : cur) {
    added += matched(key) && base.find(key) == base.end();
  }

  std::cout << "\n"
            << compared << " compared: " << regressions << " regressed beyond threshold, "
            << improvements << " improved, " << compared - regressions - improvements
            << " within threshold";
  if (added + removed > 0) {
    std::cout << " (" << added << " only in current, " << removed << " only in baseline)";
  }
  std::cout << "\n";
  if (regressions > 0 && !fail_on_regress) {
    std::cout << "informational mode: regressions reported but exit code stays 0\n";
  }
  return (fail_on_regress && regressions > 0) ? 1 : 0;
}
