// export_model — ship a discovered architecture: search briefly on Uno, post-
// train the best candidate, save its weights plus a human-readable model
// card, then reload into a freshly built graph and verify the metric.
//
//   ./examples/export_model [output_prefix]
#include <fstream>
#include <iostream>

#include "ncnas/analytics/posttrain.hpp"
#include "ncnas/analytics/report.hpp"
#include "ncnas/exec/presets.hpp"
#include "ncnas/nas/driver.hpp"
#include "ncnas/nn/serialize.hpp"
#include "ncnas/nn/trainer.hpp"
#include "ncnas/space/builder.hpp"
#include "ncnas/space/spaces.hpp"

int main(int argc, char** argv) {
  using namespace ncnas;
  const std::string prefix = argc > 1 ? argv[1] : "uno_best";

  const data::Dataset ds = data::make_uno(1);
  const space::SearchSpace sp = space::uno_small_space();

  nas::SearchConfig cfg;
  cfg.strategy = nas::SearchStrategy::kA3C;
  cfg.cluster = {.num_agents = 4, .workers_per_agent = 4};
  cfg.wall_time_seconds = 45.0 * 60.0;
  cfg.fidelity = exec::default_fidelity("uno");
  cfg.cost = exec::default_cost("uno");
  cfg.seed = 3;

  tensor::ThreadPool pool;
  const nas::SearchResult res = nas::SearchDriver(sp, ds, cfg, &pool).run();
  const auto top = res.top_k(1);
  if (top.empty()) {
    std::cerr << "search produced no candidates\n";
    return 1;
  }

  // Post-train fully, measure, save.
  constexpr std::uint64_t kBuildSeed = 7;
  std::vector<std::size_t> dims;
  for (std::size_t i = 0; i < ds.input_count(); ++i) dims.push_back(ds.input_dim(i));
  tensor::Rng build_rng(kBuildSeed);
  nn::Graph model =
      space::build_model(sp, top[0].arch, dims, space::TaskHead::regression(), build_rng);
  nn::TrainOptions train;
  train.epochs = 20;
  train.batch_size = ds.batch_size;
  tensor::Rng train_rng(kBuildSeed + 1);
  (void)nn::fit(model, ds.x_train, ds.y_train, train, train_rng);
  const float r2 = nn::evaluate(model, ds.x_valid, ds.y_valid, ds.metric);

  const std::string weights_path = prefix + ".weights";
  nn::save_weights(model, weights_path);
  {
    std::ofstream card(prefix + ".card");
    card << "benchmark: uno\nspace: " << sp.name() << "\nencoding: "
         << space::arch_key(top[0].arch) << "\nbuild_seed: " << kBuildSeed
         << "\nvalidation_R2: " << r2 << "\nparams: " << model.param_count() << "\n\n"
         << sp.describe(top[0].arch) << "\nlayers:\n" << model.summary();
  }
  std::cout << "saved " << weights_path << " and " << prefix << ".card (R2 "
            << analytics::fmt(r2) << ", " << model.param_count() << " params)\n";

  // Reload into a fresh graph and verify bit-identical behaviour.
  tensor::Rng fresh_rng(12345);
  nn::Graph restored =
      space::build_model(sp, top[0].arch, dims, space::TaskHead::regression(), fresh_rng);
  {
    nn::ForwardCtx ctx{};
    std::vector<tensor::Tensor> probe;
    for (const auto& x : ds.x_train) probe.push_back(nn::slice_rows(x, 0, 1));
    (void)restored.forward(probe, ctx);  // materialize lazy layers
  }
  nn::load_weights(restored, weights_path);
  const float r2_restored = nn::evaluate(restored, ds.x_valid, ds.y_valid, ds.metric);
  std::cout << "reloaded model validation R2: " << analytics::fmt(r2_restored)
            << (r2_restored == r2 ? "  (exact match)" : "  (MISMATCH!)") << "\n";
  return r2_restored == r2 ? 0 : 1;
}
