// quickstart — the smallest end-to-end NAS run.
//
// Builds the NT3 benchmark (synthetic RNA-seq tumor/normal data), runs a
// short A3C search on a small simulated cluster, prints the reward
// trajectory, and fully trains the best discovered architecture against the
// manually designed baseline.
//
//   ./examples/quickstart [minutes_of_simulated_search]
#include <cstdlib>
#include <iostream>

#include "ncnas/analytics/posttrain.hpp"
#include "ncnas/analytics/report.hpp"
#include "ncnas/analytics/series.hpp"
#include "ncnas/exec/presets.hpp"
#include "ncnas/nas/driver.hpp"
#include "ncnas/space/spaces.hpp"

int main(int argc, char** argv) {
  using namespace ncnas;
  const double minutes = argc > 1 ? std::atof(argv[1]) : 60.0;

  // 1. Problem: the NT3 benchmark and its search space.
  const data::Dataset ds = data::make_nt3(/*seed=*/1);
  const space::SearchSpace sp = space::nt3_small_space();
  std::cout << "search space " << sp.name() << ": " << sp.num_decisions()
            << " decisions, |S| = " << sp.size() << "\n\n";

  // 2. Search: A3C with 4 agents x 4 workers on the virtual cluster.
  nas::SearchConfig cfg;
  cfg.strategy = nas::SearchStrategy::kA3C;
  cfg.cluster = {.num_agents = 4, .workers_per_agent = 4};
  cfg.wall_time_seconds = minutes * 60.0;
  cfg.fidelity = exec::default_fidelity("nt3");
  cfg.cost = exec::default_cost("nt3");
  cfg.seed = 42;

  tensor::ThreadPool pool;
  nas::SearchDriver driver(sp, ds, cfg, &pool);
  const nas::SearchResult res = driver.run();

  std::cout << "evaluations: " << res.evals.size() << " (" << res.cache_hits << " cached, "
            << res.timeouts << " timed out), unique architectures: " << res.unique_archs
            << "\n";
  std::cout << "search ended at " << analytics::fmt(res.end_time / 60.0, 1) << " simulated min"
            << (res.converged_early ? " (converged)" : "") << "\n\n";

  const auto best_series =
      analytics::resample_best(res.best_so_far(), res.end_time, 60.0, 0.0);
  analytics::print_sparkline(std::cout, "best ACC over time", best_series, 0.0, 1.0);

  // 3. Post-training: best architecture vs the manually designed NT3 CNN.
  const auto top = res.top_k(1);
  if (top.empty()) {
    std::cout << "no architecture survived the search\n";
    return 1;
  }
  std::cout << "\nbest architecture (estimated ACC " << analytics::fmt(top[0].reward) << "):\n"
            << sp.describe(top[0].arch) << "\n";

  analytics::PostTrainOptions post;
  post.epochs = 20;
  const auto baseline = analytics::post_train_baseline(ds, post);
  const auto mine = analytics::post_train(sp, ds, top[0].arch, post);
  const auto row = analytics::ratios(mine, baseline);

  analytics::Table table({"model", "params", "train s", "ACC"});
  table.add_row({"manually designed", std::to_string(baseline.params),
                 analytics::fmt(baseline.train_seconds, 2), analytics::fmt(baseline.final_metric)});
  table.add_row({"A3C-best", std::to_string(mine.params), analytics::fmt(mine.train_seconds, 2),
                 analytics::fmt(mine.final_metric)});
  table.print(std::cout);
  std::cout << "\nratios vs baseline: ACC/ACCb = " << analytics::fmt(row.accuracy_ratio)
            << ", Pb/P = " << analytics::fmt(row.param_ratio, 1)
            << "x, Tb/T = " << analytics::fmt(row.time_ratio, 1) << "x\n";
  return 0;
}
