// Runs a small Combo search with telemetry enabled and emits every export
// format the obs subsystem supports:
//
//   telemetry_metrics.prom   Prometheus text exposition (scrape-style)
//   telemetry_metrics.om     OpenMetrics exposition (exporter-rendered)
//   telemetry_trace.json     Chrome trace — load in about://tracing or
//                            https://ui.perfetto.dev (one row per agent)
//   telemetry_trace.jsonl    one event per line for log pipelines
//   telemetry_journal.jsonl  the structured run journal (replay it with
//                            examples/run_report)
//   telemetry_profile.json   flat profile + roofline inputs (diff two runs
//                            with examples/perf_diff)
//
// plus the analytics report's telemetry section on stdout, with a
// reconciliation of the instrumented counters against SearchResult, of
// the journal's event counts against the counters, and of the profiler's
// eval wall time against the journal's per-eval train_wall_ms.
//
//   ./examples/telemetry_dump [--serve <port>] [--linger <s>]
//                             [--cadence <virtual-s>] [--live-journal <file>]
//
// --serve enables the live exporter on that HTTP port (0 = ephemeral; the
// bound port is printed) and --linger keeps the process alive that many wall
// seconds after the search so /metrics, /healthz, and /progress can be
// curled — the hook CI's live-obs-smoke job uses. An unwritable artifact or
// a failed bind degrades gracefully: one clear message, one bump of
// ncnas_exporter_errors_total, and the run carries on.
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <thread>

#include "ncnas/analytics/report.hpp"
#include "ncnas/nas/driver.hpp"
#include "ncnas/obs/telemetry.hpp"
#include "ncnas/space/spaces.hpp"
#include "ncnas/tensor/thread_pool.hpp"

using namespace ncnas;

int main(int argc, char** argv) {
  int serve_port = -1;
  double linger_seconds = 0.0;
  double cadence = 60.0;
  std::string live_journal;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << what << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--serve") {
      serve_port = std::stoi(need("--serve"));
    } else if (arg == "--linger") {
      linger_seconds = std::stod(need("--linger"));
    } else if (arg == "--cadence") {
      cadence = std::stod(need("--cadence"));
    } else if (arg == "--live-journal") {
      live_journal = need("--live-journal");
    } else {
      std::cerr << "usage: telemetry_dump [--serve <port>] [--linger <s>]"
                   " [--cadence <virtual-s>] [--live-journal <file>]\n";
      return 2;
    }
  }

  data::ComboDims dims;
  dims.train = 512;
  dims.valid = 128;
  const data::Dataset ds = data::make_combo(1, dims);
  const space::SearchSpace sp = space::combo_small_space();

  obs::Telemetry telemetry;
  telemetry.enable_journal();
  telemetry.enable_watchdog();
  telemetry.enable_profiler();
  const bool exporter_on = serve_port >= 0 || !live_journal.empty();
  if (exporter_on) {
    obs::ExporterConfig ecfg;
    ecfg.cadence_seconds = cadence;
    ecfg.http_port = serve_port;
    ecfg.live_journal_path = live_journal;
    telemetry.enable_exporter(std::move(ecfg));
    if (serve_port >= 0 && telemetry.exporter()->http_port() > 0) {
      std::cout << "exporter serving on 127.0.0.1:" << telemetry.exporter()->http_port()
                << " (/metrics /healthz /progress)\n"
                << std::flush;
    }
  }
  nas::SearchConfig cfg;
  cfg.strategy = nas::SearchStrategy::kA2C;  // barrier waits show in the trace
  cfg.cluster = {.num_agents = 4, .workers_per_agent = 4};
  cfg.wall_time_seconds = 30.0 * 60.0;
  cfg.fidelity = {.epochs = 1, .subset_fraction = 0.5};
  cfg.cost = {.startup_seconds = 20.0, .seconds_per_megaunit = 1.0, .timeout_seconds = 600.0};
  cfg.seed = 7;
  cfg.telemetry = &telemetry;

  tensor::ThreadPool pool;
  std::cout << "searching (" << nas::strategy_name(cfg.strategy) << ", "
            << cfg.cluster.num_agents << " agents x " << cfg.cluster.workers_per_agent
            << " workers, 30 simulated minutes)...\n";
  const nas::SearchResult res = nas::SearchDriver(sp, ds, cfg, &pool).run();

  std::cout << "\n== run summary ==\n"
            << "evals " << res.evals.size() << ", cache hits " << res.cache_hits
            << ", timeouts " << res.timeouts << ", ppo updates " << res.ppo_updates
            << ", end t " << res.end_time << "s\n";

  const obs::TelemetrySnapshot& snap = *res.telemetry;
  std::cout << "\n== telemetry ==\n";
  analytics::print_telemetry(std::cout, snap.metrics);

  std::cout << "\n== reconciliation (telemetry vs SearchResult) ==\n";
  const auto check = [](const char* what, std::uint64_t a, std::uint64_t b) {
    std::cout << (a == b ? "  ok   " : "  FAIL ") << what << ": " << a << " vs " << b << '\n';
    return a == b;
  };
  bool ok = true;
  const obs::MetricsSnapshot& m = snap.metrics;
  ok &= check("cache hits", m.counter_value("ncnas_cache_hits_total"), res.cache_hits);
  ok &= check("timeouts", m.counter_value("ncnas_eval_timeouts_total"), res.timeouts);
  ok &= check("ppo updates", m.counter_value("ncnas_ppo_updates_total"), res.ppo_updates);
  ok &= check("evals = hits + real", m.counter_value("ncnas_evals_total"),
              m.counter_value("ncnas_cache_hits_total") +
                  m.counter_value("ncnas_real_evals_total"));

  std::cout << "\n== reconciliation (journal vs counters) ==\n";
  std::map<obs::JournalEventType, std::uint64_t> by_type;
  for (const obs::JournalEvent& e : snap.journal) ++by_type[e.type];
  ok &= check("eval_cached events", by_type[obs::JournalEventType::kEvalCached],
              m.counter_value("ncnas_cache_hits_total"));
  ok &= check("eval_finished events", by_type[obs::JournalEventType::kEvalFinished],
              m.counter_value("ncnas_real_evals_total"));
  ok &= check("eval_timeout events", by_type[obs::JournalEventType::kEvalTimeout],
              m.counter_value("ncnas_eval_timeouts_total"));
  ok &= check("ppo_update events", by_type[obs::JournalEventType::kPpoUpdate],
              m.counter_value("ncnas_ppo_updates_total"));
  ok &= check("ps_exchange events", by_type[obs::JournalEventType::kPsExchange],
              m.counter_value("ncnas_ps_exchanges_total"));
  ok &= check("straggler events", by_type[obs::JournalEventType::kStragglerDetected],
              m.counter_value("ncnas_watchdog_stragglers_total"));
  ok &= check("stall events", by_type[obs::JournalEventType::kAgentStalled],
              m.counter_value("ncnas_watchdog_stalls_total"));

  const obs::WatchdogReport health = telemetry.watchdog()->report();
  std::cout << "\n== watchdog ==\n"
            << (health.healthy() ? "healthy" : "unhealthy") << ": "
            << health.stragglers.size() << " stragglers, " << health.stalls.size()
            << " stalls, expected eval " << health.expected_eval_seconds << "s over "
            << health.evals_seen << " completed evals\n";

  if (exporter_on) {
    const obs::Exporter& exporter = *telemetry.exporter();
    std::cout << "\n== exporter ==\n"
              << exporter.publications() << " publication(s), " << exporter.errors()
              << " error(s), http port " << exporter.http_port() << "\n";
    // Exporter publications must not change what the search returned, and
    // its final /metrics payload must be a conformant OpenMetrics exposition.
    std::string err;
    const bool om_ok = obs::validate_openmetrics(exporter.metrics_text(), &err);
    std::cout << (om_ok ? "  ok   " : "  FAIL ") << "OpenMetrics conformance"
              << (om_ok ? "" : ": " + err) << "\n";
    ok &= om_ok;
    ok &= check("publications", exporter.publications() > 0 ? 1 : 0, 1);
  }

  std::cout << "\n== profile ==\n";
  snap.profile.export_text(std::cout);

  // The eval/train + eval/validate scopes cover the same code region the
  // train_wall_ms stopwatch measures, so the profile and the journal must
  // agree on total eval wall time up to scope overhead.
  std::cout << "\n== reconciliation (profile vs journal eval wall time) ==\n";
  double profile_ms = 0.0;
  for (const obs::FlatProfileEntry& e : snap.profile.flat()) {
    if (e.name == "eval/train" || e.name == "eval/validate") profile_ms += e.total_ms;
  }
  double journal_ms = 0.0;
  for (const obs::JournalEvent& e : snap.journal) {
    if (e.type == obs::JournalEventType::kEvalDispatched) {
      journal_ms += e.field("train_wall_ms");
    }
  }
  const double rel = journal_ms > 0.0
                         ? std::abs(profile_ms - journal_ms) / journal_ms
                         : (profile_ms > 0.0 ? 1.0 : 0.0);
  const bool wall_ok = rel <= 0.10;
  std::cout << (wall_ok ? "  ok   " : "  FAIL ") << "profile train+validate " << profile_ms
            << " ms vs journal train wall " << journal_ms << " ms ("
            << static_cast<int>(100.0 * rel) << "% apart)\n";
  ok &= wall_ok;

  // A full disk or read-only cwd must not look like a crash: each artifact
  // degrades independently with a message and an error-counter bump.
  std::size_t artifacts = 0;
  const auto write_artifact = [&](const char* path, auto&& emit) {
    std::ofstream out(path);
    if (out) {
      emit(out);
      out.flush();
    }
    if (!out) {
      std::cerr << "telemetry_dump: cannot write " << path
                << "; skipping this artifact and carrying on\n";
      telemetry.metrics().counter("ncnas_exporter_errors_total").inc();
      return;
    }
    ++artifacts;
  };
  write_artifact("telemetry_metrics.prom", [&](std::ostream& o) { telemetry.dump_prometheus(o); });
  write_artifact("telemetry_metrics.om",
                 [&](std::ostream& o) { obs::render_openmetrics(snap.metrics, o); });
  write_artifact("telemetry_trace.json", [&](std::ostream& o) { telemetry.export_chrome_trace(o); });
  write_artifact("telemetry_trace.jsonl", [&](std::ostream& o) { telemetry.export_trace_jsonl(o); });
  write_artifact("telemetry_journal.jsonl",
                 [&](std::ostream& o) { telemetry.export_journal_jsonl(o); });
  write_artifact("telemetry_profile.json", [&](std::ostream& o) { telemetry.export_profile_json(o); });
  std::cout << "\nwrote " << artifacts << "/6 artifacts: telemetry_metrics.prom,"
            << " telemetry_metrics.om, telemetry_trace.json ("
            << telemetry.trace().recorded() << " events, " << telemetry.trace().dropped()
            << " dropped), telemetry_trace.jsonl, telemetry_journal.jsonl ("
            << snap.journal.size() << " events), telemetry_profile.json ("
            << snap.profile.flat().size() << " scopes)\n";

  if (exporter_on && linger_seconds > 0.0) {
    std::cout << "lingering " << linger_seconds << "s for live scrapes on port "
              << telemetry.exporter()->http_port() << "...\n"
              << std::flush;
    std::this_thread::sleep_for(std::chrono::duration<double>(linger_seconds));
  }
  return ok ? 0 : 1;
}
