#include "ncnas/ckpt/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

namespace ncnas::ckpt {

namespace {

constexpr const char* kPrefix = "snap-";
constexpr const char* kSuffix = ".ckpt";

/// Parses "snap-<digits>.ckpt"; nullopt for anything else.
std::optional<std::uint64_t> parse_ordinal(const std::string& filename) {
  const std::size_t plen = std::string(kPrefix).size();
  const std::size_t slen = std::string(kSuffix).size();
  if (filename.size() <= plen + slen) return std::nullopt;
  if (filename.compare(0, plen, kPrefix) != 0) return std::nullopt;
  if (filename.compare(filename.size() - slen, slen, kSuffix) != 0) return std::nullopt;
  const std::string digits = filename.substr(plen, filename.size() - plen - slen);
  std::uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

std::string snapshot_name(std::uint64_t ordinal) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%06llu%s", kPrefix,
                static_cast<unsigned long long>(ordinal), kSuffix);
  return buf;
}

std::vector<std::pair<std::uint64_t, std::string>> scan(const std::string& directory) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (const auto ord = parse_ordinal(name)) found.emplace_back(*ord, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  return found;
}

}  // namespace

CheckpointWriter::CheckpointWriter(CheckpointConfig config) : config_(std::move(config)) {
  if (config_.interval_seconds <= 0.0) {
    throw SnapshotError("checkpoint: interval_seconds must be positive");
  }
  if (config_.directory.empty()) {
    throw SnapshotError("checkpoint: directory must be set");
  }
  std::error_code ec;
  std::filesystem::create_directories(config_.directory, ec);
  if (ec) {
    throw SnapshotError("checkpoint: cannot create directory " + config_.directory + ": " +
                        ec.message());
  }
}

std::string CheckpointWriter::write(const SnapshotHeader& header,
                                    const std::vector<std::uint8_t>& payload) {
  const std::string path =
      (std::filesystem::path(config_.directory) / snapshot_name(header.ordinal)).string();
  write_snapshot(path, header, payload);
  ++session_writes_;

  if (config_.keep_last > 0) {
    auto found = scan(config_.directory);
    if (found.size() > config_.keep_last) {
      for (std::size_t i = 0; i + config_.keep_last < found.size(); ++i) {
        std::error_code ec;
        std::filesystem::remove(found[i].second, ec);  // best-effort rotation
      }
    }
  }
  return path;
}

std::vector<std::string> list_checkpoints(const std::string& directory) {
  std::vector<std::string> out;
  for (auto& [ord, path] : scan(directory)) out.push_back(std::move(path));
  return out;
}

std::optional<std::string> latest_checkpoint(const std::string& directory) {
  auto found = scan(directory);
  if (found.empty()) return std::nullopt;
  return found.back().second;
}

}  // namespace ncnas::ckpt
