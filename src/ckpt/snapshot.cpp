#include "ncnas/ckpt/snapshot.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace ncnas::ckpt {

namespace {

void encode_header(ByteWriter& w, const SnapshotHeader& h) {
  w.str(h.fingerprint);
  w.str(h.space_name);
  w.f64(h.virtual_time);
  w.u64(h.journal_events);
  w.u64(h.ordinal);
}

SnapshotHeader decode_header(ByteReader& r) {
  SnapshotHeader h;
  h.fingerprint = r.str();
  h.space_name = r.str();
  h.virtual_time = r.f64();
  h.journal_events = r.u64();
  h.ordinal = r.u64();
  return h;
}

}  // namespace

std::uint64_t fnv1a64(std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001B3ull;
  }
  return h;
}

void write_snapshot(const std::string& path, const SnapshotHeader& header,
                    const std::vector<std::uint8_t>& payload) {
  ByteWriter hw;
  encode_header(hw, header);
  const std::vector<std::uint8_t>& hb = hw.bytes();

  // One hash over header + payload: a flipped bit anywhere is caught.
  std::vector<std::uint8_t> hashed;
  hashed.reserve(hb.size() + payload.size());
  hashed.insert(hashed.end(), hb.begin(), hb.end());
  hashed.insert(hashed.end(), payload.begin(), payload.end());
  const std::uint64_t hash = fnv1a64(hashed);

  ByteWriter pre;
  pre.u32(kSnapshotMagic);
  pre.u32(kSnapshotVersion);
  pre.u64(hb.size());
  pre.u64(payload.size());
  pre.u64(hash);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw SnapshotError("snapshot: cannot open " + tmp + " for writing");
    out.write(reinterpret_cast<const char*>(pre.bytes().data()),
              static_cast<std::streamsize>(pre.size()));
    out.write(reinterpret_cast<const char*>(hb.data()), static_cast<std::streamsize>(hb.size()));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    if (!out) throw SnapshotError("snapshot: write failed for " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw SnapshotError("snapshot: cannot rename " + tmp + " to " + path + ": " + ec.message());
  }
}

Snapshot read_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SnapshotError("snapshot: cannot open " + path);
  std::vector<std::uint8_t> raw((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());

  ByteReader pre(raw);
  if (raw.size() < 4 + 4 + 8 + 8 + 8) throw SnapshotError("snapshot: " + path + " is truncated");
  if (pre.u32() != kSnapshotMagic) {
    throw SnapshotError("snapshot: " + path + " is not a ncnas snapshot (bad magic)");
  }
  const std::uint32_t version = pre.u32();
  if (version != kSnapshotVersion) {
    throw SnapshotError("snapshot: " + path + " has schema version " + std::to_string(version) +
                        ", expected " + std::to_string(kSnapshotVersion));
  }
  const std::uint64_t header_size = pre.u64();
  const std::uint64_t payload_size = pre.u64();
  const std::uint64_t stored_hash = pre.u64();
  if (pre.remaining() != header_size + payload_size) {
    throw SnapshotError("snapshot: " + path + " is truncated or padded (expected " +
                        std::to_string(header_size + payload_size) + " body bytes, have " +
                        std::to_string(pre.remaining()) + ")");
  }
  const std::span<const std::uint8_t> body(raw.data() + (raw.size() - pre.remaining()),
                                           pre.remaining());
  if (fnv1a64(body) != stored_hash) {
    throw SnapshotError("snapshot: " + path + " failed its integrity check (corrupted)");
  }

  ByteReader hr(body.subspan(0, header_size));
  Snapshot snap;
  snap.header = decode_header(hr);
  hr.require_done();
  snap.payload.assign(body.begin() + static_cast<std::ptrdiff_t>(header_size), body.end());
  return snap;
}

}  // namespace ncnas::ckpt
