#include "ncnas/analytics/arch_stats.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "ncnas/analytics/report.hpp"

namespace ncnas::analytics {

double ArchStats::concentration() const {
  if (decisions.empty()) return 0.0;
  double acc = 0.0;
  for (const DecisionHistogram& d : decisions) acc += d.modal_fraction;
  return acc / static_cast<double>(decisions.size());
}

ArchStats compute_arch_stats(const space::SearchSpace& space,
                             const std::vector<space::ArchEncoding>& archs) {
  ArchStats stats;
  stats.archs = archs.size();
  std::unordered_set<std::string> unique;
  for (const auto& a : archs) unique.insert(space::arch_key(a));
  stats.unique = unique.size();

  const auto& decisions = space.decisions();
  stats.decisions.resize(decisions.size());
  for (std::size_t d = 0; d < decisions.size(); ++d) {
    DecisionHistogram& hist = stats.decisions[d];
    std::ostringstream name;
    name << 'C' << decisions[d].cell << "/B" << decisions[d].block << "/N"
         << decisions[d].node << " (" << decisions[d].name << ')';
    hist.decision_name = name.str();
    hist.counts.assign(decisions[d].arity, 0);
    for (const auto& a : archs) {
      space.require_valid(a);
      ++hist.counts[a[d]];
    }
    if (!archs.empty()) {
      const auto it = std::ranges::max_element(hist.counts);
      hist.modal_option = static_cast<std::size_t>(it - hist.counts.begin());
      hist.modal_fraction =
          static_cast<double>(*it) / static_cast<double>(archs.size());
      // Render the modal operation via any valid arch with that choice.
      space::ArchEncoding probe(decisions.size(), 0);
      probe[d] = static_cast<std::uint16_t>(hist.modal_option);
      hist.modal_op_name = space::op_name(space.chosen_op(probe, d));
    }
  }
  return stats;
}

ArchStats compute_arch_stats(const space::SearchSpace& space, const nas::SearchResult& result,
                             double t_from) {
  std::vector<space::ArchEncoding> archs;
  archs.reserve(result.evals.size());
  for (const nas::EvalRecord& e : result.evals) {
    if (e.time >= t_from) archs.push_back(e.arch);
  }
  return compute_arch_stats(space, archs);
}

void print_arch_stats(std::ostream& os, const ArchStats& stats) {
  os << stats.archs << " architectures, " << stats.unique << " unique, concentration "
     << fmt(stats.concentration()) << "\n";
  Table table({"decision", "modal op", "share"});
  for (const DecisionHistogram& d : stats.decisions) {
    table.add_row({d.decision_name, d.modal_op_name, fmt(d.modal_fraction)});
  }
  table.print(os);
}

}  // namespace ncnas::analytics
