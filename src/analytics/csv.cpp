#include "ncnas/analytics/csv.hpp"

#include <fstream>
#include <stdexcept>

namespace ncnas::analytics {

namespace {

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("csv: cannot open " + path);
  return out;
}

}  // namespace

void write_series_csv(const std::string& path, const std::vector<double>& series,
                      double bucket_seconds, const std::string& value_header) {
  std::ofstream out = open_or_throw(path);
  out << "t_seconds," << value_header << '\n';
  for (std::size_t i = 0; i < series.size(); ++i) {
    out << static_cast<double>(i + 1) * bucket_seconds << ',' << series[i] << '\n';
  }
  if (!out) throw std::runtime_error("csv: write failed for " + path);
}

void write_multi_series_csv(const std::string& path, const std::vector<std::string>& headers,
                            const std::vector<std::vector<double>>& columns,
                            double bucket_seconds) {
  if (headers.size() != columns.size()) {
    throw std::invalid_argument("csv: headers/columns count mismatch");
  }
  std::ofstream out = open_or_throw(path);
  out << "t_seconds";
  for (const std::string& h : headers) out << ',' << h;
  out << '\n';
  std::size_t rows = 0;
  for (const auto& c : columns) rows = std::max(rows, c.size());
  for (std::size_t r = 0; r < rows; ++r) {
    out << static_cast<double>(r + 1) * bucket_seconds;
    for (const auto& c : columns) {
      out << ',';
      if (r < c.size()) out << c[r];
    }
    out << '\n';
  }
  if (!out) throw std::runtime_error("csv: write failed for " + path);
}

void write_evals_csv(const std::string& path, const nas::SearchResult& result) {
  std::ofstream out = open_or_throw(path);
  out << "t_seconds,reward,params,sim_duration,cache_hit,timed_out,agent,arch\n";
  for (const nas::EvalRecord& e : result.evals) {
    out << e.time << ',' << e.reward << ',' << e.params << ',' << e.sim_duration << ','
        << e.cache_hit << ',' << e.timed_out << ',' << e.agent << ','
        << space::arch_key(e.arch) << '\n';
  }
  if (!out) throw std::runtime_error("csv: write failed for " + path);
}

}  // namespace ncnas::analytics
