#include "ncnas/analytics/posttrain.hpp"

#include <chrono>

#include "ncnas/exec/evaluator.hpp"
#include "ncnas/nn/trainer.hpp"
#include "ncnas/space/builder.hpp"

namespace ncnas::analytics {

namespace {

PostTrainResult train_graph(nn::Graph model, const data::Dataset& ds,
                            const PostTrainOptions& opts) {
  nn::TrainOptions train;
  train.epochs = opts.epochs;
  train.batch_size = ds.batch_size;
  train.loss = ds.loss;
  train.subset_fraction = 1.0;  // full data, no timeout: the paper's stage 2

  tensor::Rng rng(opts.seed);
  const auto start = std::chrono::steady_clock::now();
  (void)nn::fit(model, ds.x_train, ds.y_train, train, rng);
  const auto stop = std::chrono::steady_clock::now();

  PostTrainResult result;
  result.train_seconds = std::chrono::duration<double>(stop - start).count();
  result.final_metric = nn::evaluate(model, ds.x_valid, ds.y_valid, ds.metric);
  result.params = model.param_count();
  return result;
}

}  // namespace

PostTrainResult post_train(const space::SearchSpace& space, const data::Dataset& ds,
                           const space::ArchEncoding& arch, const PostTrainOptions& opts) {
  tensor::Rng rng(opts.seed);
  std::vector<std::size_t> dims;
  dims.reserve(ds.input_count());
  for (std::size_t i = 0; i < ds.input_count(); ++i) dims.push_back(ds.input_dim(i));
  nn::Graph model = space::build_model(space, arch, dims, exec::head_for(ds), rng);
  PostTrainResult result = train_graph(std::move(model), ds, opts);
  result.arch = arch;
  return result;
}

PostTrainResult post_train_baseline(const data::Dataset& ds, const PostTrainOptions& opts) {
  tensor::Rng rng(opts.seed);
  return train_graph(data::baseline_for(ds, rng), ds, opts);
}

std::vector<PostTrainResult> post_train_many(const space::SearchSpace& space,
                                             const data::Dataset& ds,
                                             const std::vector<nas::EvalRecord>& top,
                                             const PostTrainOptions& opts,
                                             tensor::ThreadPool* pool) {
  std::vector<PostTrainResult> results(top.size());
  const auto one = [&](std::size_t i) {
    results[i] = post_train(space, ds, top[i].arch, opts);
    results[i].search_reward = top[i].reward;
  };
  if (pool != nullptr && top.size() > 1) {
    tensor::parallel_for(*pool, top.size(), one);
  } else {
    for (std::size_t i = 0; i < top.size(); ++i) one(i);
  }
  return results;
}

RatioRow ratios(const PostTrainResult& model, const PostTrainResult& baseline) {
  RatioRow row;
  row.accuracy_ratio =
      baseline.final_metric != 0.0f ? model.final_metric / baseline.final_metric : 0.0f;
  row.param_ratio = model.params != 0
                        ? static_cast<float>(baseline.params) / static_cast<float>(model.params)
                        : 0.0f;
  row.time_ratio = model.train_seconds > 0.0
                       ? static_cast<float>(baseline.train_seconds / model.train_seconds)
                       : 0.0f;
  return row;
}

}  // namespace ncnas::analytics
