#include "ncnas/analytics/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace ncnas::analytics {

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void print_series(std::ostream& os, const std::string& label, const std::vector<double>& series,
                  double bucket_seconds) {
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double t_min = static_cast<double>(i + 1) * bucket_seconds / 60.0;
    os << label << '\t' << fmt(t_min, 1) << '\t' << fmt(series[i], 4) << '\n';
  }
}

void print_sparkline(std::ostream& os, const std::string& label,
                     const std::vector<double>& series, double lo, double hi) {
  static const char kGlyphs[] = " .:-=+*#%@";
  constexpr int kLevels = 9;
  os << label << " |";
  for (double v : series) {
    const double unit = hi > lo ? std::clamp((v - lo) / (hi - lo), 0.0, 1.0) : 0.0;
    os << kGlyphs[static_cast<int>(std::lround(unit * kLevels))];
  }
  os << "|\n";
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cell;
    }
    os << '\n';
  };
  print_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += std::string(widths[c], '-') + "  ";
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

void print_telemetry(std::ostream& os, const obs::MetricsSnapshot& snapshot) {
  if (!snapshot.counters.empty() || !snapshot.gauges.empty()) {
    Table scalars({"metric", "type", "value"});
    for (const obs::CounterSample& c : snapshot.counters) {
      scalars.add_row({c.name, "counter", std::to_string(c.value)});
    }
    for (const obs::GaugeSample& g : snapshot.gauges) {
      scalars.add_row({g.name, "gauge", fmt(g.value)});
    }
    scalars.print(os);
  }
  if (!snapshot.histograms.empty()) {
    os << '\n';
    Table hists({"histogram", "count", "mean", "p50", "p90"});
    for (const obs::HistogramSample& h : snapshot.histograms) {
      hists.add_row({h.name, std::to_string(h.count), fmt(h.mean()), fmt(h.quantile(0.5)),
                     fmt(h.quantile(0.9))});
    }
    hists.print(os);
  }
}

}  // namespace ncnas::analytics
