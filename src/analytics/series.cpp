#include "ncnas/analytics/series.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ncnas::analytics {

std::vector<double> resample_best(const std::vector<std::pair<double, float>>& best_so_far,
                                  double t_end, double bucket_seconds, double fill) {
  if (bucket_seconds <= 0.0 || t_end <= 0.0) {
    throw std::invalid_argument("resample_best: positive spans required");
  }
  const std::size_t buckets =
      static_cast<std::size_t>((t_end + bucket_seconds - 1e-9) / bucket_seconds);
  std::vector<double> out(buckets, fill);
  std::size_t i = 0;
  double best = fill;
  for (std::size_t b = 0; b < buckets; ++b) {
    const double deadline = static_cast<double>(b + 1) * bucket_seconds;
    while (i < best_so_far.size() && best_so_far[i].first <= deadline) {
      best = std::max(best, static_cast<double>(best_so_far[i].second));
      ++i;
    }
    out[b] = best;
  }
  return out;
}

std::vector<double> resample_mean(const std::vector<std::pair<double, float>>& observations,
                                  double t_end, double bucket_seconds, double fill) {
  if (bucket_seconds <= 0.0 || t_end <= 0.0) {
    throw std::invalid_argument("resample_mean: positive spans required");
  }
  const std::size_t buckets =
      static_cast<std::size_t>((t_end + bucket_seconds - 1e-9) / bucket_seconds);
  std::vector<double> out(buckets, fill);
  std::vector<double> acc(buckets, 0.0);
  std::vector<std::size_t> count(buckets, 0);
  for (const auto& [t, v] : observations) {
    if (t < 0.0 || t >= t_end) continue;
    const std::size_t b = static_cast<std::size_t>(t / bucket_seconds);
    acc[b] += v;
    ++count[b];
  }
  double last = fill;
  for (std::size_t b = 0; b < buckets; ++b) {
    if (count[b] > 0) last = acc[b] / static_cast<double>(count[b]);
    out[b] = last;
  }
  return out;
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile: empty sample");
  q = std::clamp(q, 0.0, 1.0);
  std::ranges::sort(values);
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

QuantileBands quantile_bands(const std::vector<std::vector<double>>& runs) {
  if (runs.empty()) throw std::invalid_argument("quantile_bands: no runs");
  std::size_t len = 0;
  for (const auto& r : runs) len = std::max(len, r.size());
  QuantileBands bands;
  bands.q10.reserve(len);
  bands.q50.reserve(len);
  bands.q90.reserve(len);
  for (std::size_t b = 0; b < len; ++b) {
    std::vector<double> column;
    column.reserve(runs.size());
    for (const auto& r : runs) {
      if (r.empty()) continue;
      column.push_back(b < r.size() ? r[b] : r.back());
    }
    bands.q10.push_back(quantile(column, 0.10));
    bands.q50.push_back(quantile(column, 0.50));
    bands.q90.push_back(quantile(column, 0.90));
  }
  return bands;
}

}  // namespace ncnas::analytics
