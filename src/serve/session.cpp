#include "ncnas/serve/session.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "ncnas/ckpt/checkpoint.hpp"
#include "ncnas/obs/telemetry.hpp"

namespace ncnas::serve {

const char* tenant_state_name(TenantState s) {
  switch (s) {
    case TenantState::kQueued: return "queued";
    case TenantState::kRunning: return "running";
    case TenantState::kPreempted: return "preempted";
    case TenantState::kFinished: return "finished";
    case TenantState::kFailed: return "failed";
  }
  return "unknown";
}

TenantSession::TenantSession(std::uint32_t id, TenantSpec spec, double quantum_seconds,
                             std::string state_dir, exec::SharedEvalCache* shared_cache,
                             tensor::ThreadPool* pool)
    : id_(id),
      spec_(std::move(spec)),
      config_(spec_.config),
      quantum_seconds_(quantum_seconds),
      state_dir_(std::move(state_dir)),
      pool_(pool) {
  config_.tenant_id = id_;
  config_.shared_cache = spec_.use_shared_cache ? shared_cache : nullptr;
  if (spec_.quota.eval_budget != 0) {
    config_.max_evaluations = config_.max_evaluations == 0
                                  ? spec_.quota.eval_budget
                                  : std::min(config_.max_evaluations, spec_.quota.eval_budget);
  }
  // The server's per-slice checkpoint/telemetry wiring replaces whatever the
  // spec carried; both are result-neutral, so the tenant's search is still
  // the search its fingerprint describes.
  config_.checkpoint = nullptr;
  config_.telemetry = nullptr;
}

const nas::SearchResult& TenantSession::result() const {
  if (state_ != TenantState::kFinished) {
    throw std::logic_error("TenantSession::result: tenant '" + spec_.name + "' is " +
                           tenant_state_name(state_) + ", not finished");
  }
  return result_;
}

void TenantSession::absorb_slice_journal(const obs::Telemetry& slice_telemetry) {
  if (!spec_.enable_journal) return;
  const obs::Journal* journal = slice_telemetry.journal();
  if (journal == nullptr) return;
  std::vector<obs::JournalEvent> events = journal->snapshot();
  if (journal_.empty()) {
    journal_ = std::move(events);
  } else {
    // Later slices open with run_resumed at the snapshot's watermark; the
    // merge truncates redone tail events and reassigns seq contiguously.
    journal_ = obs::merge_resumed_journal(std::move(journal_), events);
  }
  // Recompute progress by replaying the stitched stream — the merge may
  // have truncated events the previous slice counted, and summarize_journal
  // applies the same deadline convention the final SearchResult uses, so
  // /tenants and the result never disagree.
  const obs::RunSummary sum = obs::summarize_journal(journal_);
  evals_ = sum.evals;
  cache_hits_ = sum.cache_hits;
  shared_hits_ = sum.shared_cache_hits;
  rung_trainings_ = sum.ladder_trainings;
  has_best_ = sum.evals > 0;
  best_reward_ = sum.best_reward;
}

SliceOutcome TenantSession::run_slice() {
  ckpt::CheckpointConfig slice_checkpoint;
  slice_checkpoint.directory = state_dir_;
  slice_checkpoint.interval_seconds = quantum_seconds_;
  slice_checkpoint.keep_last = 2;
  // One snapshot, then SearchInterrupted: the quantum expiry signal.
  slice_checkpoint.abort_after_snapshots = 1;

  obs::Telemetry slice_telemetry;
  if (spec_.enable_journal) slice_telemetry.enable_journal();

  nas::SearchConfig cfg = config_;
  cfg.checkpoint = &slice_checkpoint;
  cfg.telemetry = &slice_telemetry;

  try {
    nas::SearchResult r =
        snapshot_path_.empty()
            ? nas::SearchDriver(*spec_.space, *spec_.dataset, cfg, pool_).run()
            : nas::resume_search(snapshot_path_, *spec_.space, *spec_.dataset, cfg, pool_);
    ++slices_;
    snapshot_path_.clear();
    absorb_slice_journal(slice_telemetry);
    result_ = std::move(r);
    state_ = TenantState::kFinished;
    return SliceOutcome::kCompleted;
  } catch (const ckpt::SearchInterrupted& stop) {
    ++slices_;
    ++preemptions_;
    snapshot_path_ = stop.snapshot_path();
    absorb_slice_journal(slice_telemetry);
    state_ = TenantState::kPreempted;
    return SliceOutcome::kExpired;
  } catch (const std::exception& err) {
    error_ = err.what();
    state_ = TenantState::kFailed;
    return SliceOutcome::kFailed;
  }
}

}  // namespace ncnas::serve
