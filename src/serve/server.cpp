#include "ncnas/serve/server.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "ncnas/obs/telemetry.hpp"

namespace ncnas::serve {

namespace {

bool valid_tenant_name(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.' || c == ':' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

SearchServer::SearchServer(ServeConfig config)
    : config_(std::move(config)),
      scheduler_(config_.total_slots == 0 ? 1 : config_.total_slots) {
  if (config_.total_slots == 0) {
    throw std::invalid_argument("SearchServer: total_slots must be positive");
  }
  if (config_.quantum_seconds <= 0.0) {
    throw std::invalid_argument("SearchServer: quantum_seconds must be positive");
  }
  if (config_.max_tenants == 0) {
    throw std::invalid_argument("SearchServer: max_tenants must be positive");
  }
  if (config_.state_dir.empty()) {
    throw std::invalid_argument("SearchServer: state_dir is required");
  }
}

std::size_t SearchServer::active_tenants() const noexcept {
  std::size_t n = 0;
  for (const auto& s : sessions_) {
    if (s->unfinished()) ++n;
  }
  return n;
}

std::uint32_t SearchServer::submit(TenantSpec spec) {
  const auto reject = [this](const std::string& why) -> std::uint32_t {
    ++rejections_;
    if (config_.telemetry != nullptr) {
      config_.telemetry->metrics().counter("ncnas_server_rejections_total").inc();
    }
    throw AdmissionError("SearchServer::submit: " + why);
  };

  if (!valid_tenant_name(spec.name)) {
    return reject("tenant name must be non-empty [A-Za-z0-9_.:-], got '" + spec.name + "'");
  }
  for (const auto& s : sessions_) {
    if (s->name() == spec.name) return reject("tenant name '" + spec.name + "' already hosted");
  }
  if (spec.space == nullptr || spec.dataset == nullptr) {
    return reject("tenant '" + spec.name + "' needs a search space and a dataset");
  }
  if (spec.priority <= 0.0) {
    return reject("tenant '" + spec.name + "' priority must be positive");
  }
  const std::size_t request = spec.config.cluster.total_workers();
  if (request == 0) {
    return reject("tenant '" + spec.name + "' requests an empty cluster");
  }
  if (request > config_.total_slots) {
    return reject("tenant '" + spec.name + "' gang of " + std::to_string(request) +
                  " slots can never fit the pool of " + std::to_string(config_.total_slots));
  }
  if (spec.quota.max_slots != 0 && request > spec.quota.max_slots) {
    return reject("tenant '" + spec.name + "' gang of " + std::to_string(request) +
                  " slots exceeds its own quota of " + std::to_string(spec.quota.max_slots));
  }
  if (active_tenants() >= config_.max_tenants) {
    return reject("server full (" + std::to_string(config_.max_tenants) +
                  " active tenants); retry after one finishes");
  }

  const auto id = static_cast<std::uint32_t>(sessions_.size() + 1);
  const double priority = spec.priority;
  sessions_.push_back(std::make_unique<TenantSession>(
      id, std::move(spec), config_.quantum_seconds,
      config_.state_dir + "/tenant-" + std::to_string(id), config_.shared_cache, config_.pool));
  scheduler_.add_tenant(id, priority, request);
  refresh_observability();
  return id;
}

bool SearchServer::step() {
  if (active_tenants() == 0) return false;

  const std::vector<std::uint32_t> grants = scheduler_.next_round();
  for (std::uint32_t id : grants) {
    TenantSession& s = session_ref(id);
    s.set_state(TenantState::kRunning);
    const SliceOutcome outcome = s.run_slice();
    scheduler_.release(id);
    if (outcome != SliceOutcome::kExpired) {
      // Finished or failed: out of the competition for good.
      scheduler_.set_runnable(id, false);
    }
  }
  refresh_observability();
  return active_tenants() != 0;
}

void SearchServer::run() {
  while (step()) {
  }
}

TenantSession& SearchServer::session_ref(std::uint32_t id) {
  if (id == 0 || id > sessions_.size()) {
    throw std::out_of_range("SearchServer: unknown tenant id " + std::to_string(id));
  }
  return *sessions_[id - 1];
}

const TenantSession& SearchServer::session_ref(std::uint32_t id) const {
  if (id == 0 || id > sessions_.size()) {
    throw std::out_of_range("SearchServer: unknown tenant id " + std::to_string(id));
  }
  return *sessions_[id - 1];
}

TenantState SearchServer::state(std::uint32_t id) const { return session_ref(id).state(); }

const nas::SearchResult& SearchServer::result(std::uint32_t id) const {
  return session_ref(id).result();
}

const std::vector<obs::JournalEvent>& SearchServer::journal(std::uint32_t id) const {
  return session_ref(id).journal();
}

const TenantSession& SearchServer::session(std::uint32_t id) const { return session_ref(id); }

std::string SearchServer::tenants_json() const {
  std::ostringstream os;
  os << "{\"schema_version\":1,\"round\":" << rounds() << ",\"virtual_time_s\":" << virtual_time()
     << ",\"quantum_s\":" << config_.quantum_seconds << ",\"total_slots\":" << config_.total_slots
     << ",\"free_slots\":" << scheduler_.free_slots()
     << ",\"active_tenants\":" << active_tenants() << ",\"rejections\":" << rejections_
     << ",\"tenants\":[";
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    const TenantSession& s = *sessions_[i];
    if (i != 0) os << ',';
    os << "{\"id\":" << s.id() << ",\"name\":\"" << s.name() << "\",\"state\":\""
       << tenant_state_name(s.state()) << "\",\"priority\":" << s.spec().priority
       << ",\"slots\":" << s.slot_request() << ",\"slices\":" << s.slices()
       << ",\"preemptions\":" << s.preemptions() << ",\"grants\":" << scheduler_.grants(s.id())
       << ",\"evals\":" << s.evals() << ",\"cache_hits\":" << s.cache_hits()
       << ",\"shared_cache_hits\":" << s.shared_cache_hits()
       << ",\"rung_trainings\":" << s.rung_trainings()
       << ",\"eval_budget\":" << s.spec().quota.eval_budget << ",\"best_reward\":";
    if (s.has_best()) {
      os << s.best_reward();
    } else {
      os << "null";
    }
    if (s.state() == TenantState::kFailed) {
      // Error strings come from exception messages; keep the JSON valid.
      os << ",\"error\":\"";
      for (char c : s.error()) {
        if (c == '"' || c == '\\') os << '\\' << c;
        else if (c == '\n') os << "\\n";
        else if (static_cast<unsigned char>(c) >= 0x20) os << c;
      }
      os << '"';
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

void SearchServer::bump_counter(const std::string& name, const std::string& tenant,
                                std::uint64_t target) {
  const std::string full = name + "{tenant=\"" + tenant + "\"}";
  std::uint64_t& mark = counter_marks_[full];
  if (target > mark) {
    config_.telemetry->metrics().counter(full).inc(target - mark);
    mark = target;
  }
}

void SearchServer::refresh_observability() {
  if (config_.telemetry == nullptr) return;
  obs::MetricsRegistry& reg = config_.telemetry->metrics();

  reg.gauge("ncnas_server_rounds").set(static_cast<double>(rounds()));
  reg.gauge("ncnas_server_free_slots").set(static_cast<double>(scheduler_.free_slots()));
  reg.gauge("ncnas_server_active_tenants").set(static_cast<double>(active_tenants()));

  std::size_t total_evals = 0;
  std::size_t total_shared = 0;
  bool any_best = false;
  float best = 0.0f;
  for (const auto& sp : sessions_) {
    const TenantSession& s = *sp;
    bump_counter("ncnas_tenant_slices_total", s.name(), s.slices());
    bump_counter("ncnas_tenant_preemptions_total", s.name(), s.preemptions());
    bump_counter("ncnas_tenant_grants_total", s.name(), scheduler_.grants(s.id()));
    bump_counter("ncnas_tenant_evals_total", s.name(), s.evals());
    bump_counter("ncnas_tenant_cache_hits_total", s.name(), s.cache_hits());
    bump_counter("ncnas_tenant_shared_cache_hits_total", s.name(), s.shared_cache_hits());
    bump_counter("ncnas_tenant_rung_trainings_total", s.name(), s.rung_trainings());
    reg.gauge("ncnas_tenant_state{tenant=\"" + s.name() + "\"}")
        .set(static_cast<double>(static_cast<std::uint8_t>(s.state())));
    total_evals += s.evals();
    total_shared += s.shared_cache_hits();
    if (s.has_best() && (!any_best || s.best_reward() > best)) {
      any_best = true;
      best = s.best_reward();
    }
  }

  if (obs::Exporter* exporter = config_.telemetry->exporter(); exporter != nullptr) {
    exporter->set_payload("/tenants", "application/json", tenants_json());
    obs::ProgressSnapshot progress;
    progress.virtual_time = virtual_time();
    progress.strategy = "serve";
    progress.finished = active_tenants() == 0 && !sessions_.empty();
    progress.evals_done = total_evals;
    progress.cache_hits = total_shared;
    progress.best_reward = best;
    progress.has_best = any_best;
    exporter->tick(virtual_time(), std::move(progress));
  }
}

}  // namespace ncnas::serve
