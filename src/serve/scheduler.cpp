#include "ncnas/serve/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ncnas::serve {

DrrScheduler::DrrScheduler(std::size_t total_slots)
    : total_slots_(total_slots), free_(total_slots) {
  if (total_slots == 0) {
    throw std::invalid_argument("DrrScheduler: total_slots must be positive");
  }
}

DrrScheduler::Entry* DrrScheduler::find(std::uint32_t id) noexcept {
  for (Entry& e : tenants_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

const DrrScheduler::Entry* DrrScheduler::find(std::uint32_t id) const noexcept {
  for (const Entry& e : tenants_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

void DrrScheduler::add_tenant(std::uint32_t id, double weight, std::size_t request) {
  if (find(id) != nullptr) {
    throw std::invalid_argument("DrrScheduler: duplicate tenant id " + std::to_string(id));
  }
  if (weight <= 0.0) {
    throw std::invalid_argument("DrrScheduler: weight must be positive");
  }
  if (request == 0 || request > total_slots_) {
    throw std::invalid_argument("DrrScheduler: gang request " + std::to_string(request) +
                                " cannot fit a pool of " + std::to_string(total_slots_));
  }
  Entry e;
  e.id = id;
  e.weight = weight;
  e.request = request;
  tenants_.push_back(e);
}

void DrrScheduler::remove_tenant(std::uint32_t id) {
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i].id != id) continue;
    if (tenants_[i].holding) free_ += tenants_[i].request;
    tenants_.erase(tenants_.begin() + static_cast<std::ptrdiff_t>(i));
    // Keep the cursor pointing at the same successor tenant.
    if (cursor_ > i) --cursor_;
    if (!tenants_.empty()) cursor_ %= tenants_.size();
    else cursor_ = 0;
    return;
  }
  throw std::invalid_argument("DrrScheduler: unknown tenant id " + std::to_string(id));
}

void DrrScheduler::set_runnable(std::uint32_t id, bool runnable) {
  Entry* e = find(id);
  if (e == nullptr) {
    throw std::invalid_argument("DrrScheduler: unknown tenant id " + std::to_string(id));
  }
  e->runnable = runnable;
  if (!runnable) e->deficit = 0.0;
}

std::vector<std::uint32_t> DrrScheduler::next_round() {
  std::vector<std::uint32_t> granted;
  const std::size_t n = tenants_.size();
  if (n == 0) {
    ++rounds_;
    return granted;
  }

  // Competitors this round: runnable and not already holding a gang.
  double total_weight = 0.0;
  for (Entry& e : tenants_) {
    if (e.runnable && !e.holding) total_weight += e.weight;
  }
  for (Entry& e : tenants_) {
    if (e.runnable && !e.holding) e.deficit += e.weight;
  }

  // Hand out grants while something still fits: highest deficit first, ties
  // resolved by distance from the rotating cursor. A grant costs the round's
  // total competitor weight, so shares converge to the weight ratio.
  std::vector<bool> granted_this_round(n, false);
  for (;;) {
    std::size_t best = n;
    std::size_t best_distance = n;
    for (std::size_t offset = 0; offset < n; ++offset) {
      const std::size_t idx = (cursor_ + offset) % n;
      const Entry& e = tenants_[idx];
      if (!e.runnable || e.holding || granted_this_round[idx]) continue;
      if (e.request > free_) continue;
      if (best == n || e.deficit > tenants_[best].deficit ||
          (e.deficit == tenants_[best].deficit && offset < best_distance)) {
        best = idx;
        best_distance = offset;
      }
    }
    if (best == n) break;
    Entry& e = tenants_[best];
    granted_this_round[best] = true;
    e.holding = true;
    e.deficit -= total_weight;
    ++e.grants;
    free_ -= e.request;
    granted.push_back(e.id);
  }

  cursor_ = (cursor_ + 1) % n;
  // Bound staleness: a tenant starved by pool pressure saturates at one
  // round's worth of aggregate credit rather than accruing without limit.
  for (Entry& e : tenants_) {
    e.deficit = std::clamp(e.deficit, -total_weight, total_weight);
  }
  ++rounds_;
  return granted;
}

void DrrScheduler::release(std::uint32_t id) {
  Entry* e = find(id);
  if (e == nullptr) {
    throw std::invalid_argument("DrrScheduler: unknown tenant id " + std::to_string(id));
  }
  if (!e->holding) return;
  e->holding = false;
  free_ += e->request;
}

std::uint64_t DrrScheduler::grants(std::uint32_t id) const noexcept {
  const Entry* e = find(id);
  return e != nullptr ? e->grants : 0;
}

double DrrScheduler::deficit(std::uint32_t id) const noexcept {
  const Entry* e = find(id);
  return e != nullptr ? e->deficit : 0.0;
}

bool DrrScheduler::holding(std::uint32_t id) const noexcept {
  const Entry* e = find(id);
  return e != nullptr && e->holding;
}

}  // namespace ncnas::serve
