#include "ncnas/space/builder.hpp"

#include <map>
#include <stdexcept>

#include "ncnas/nn/layers.hpp"

namespace ncnas::space {

using nn::FeatShape;
using nn::LayerPtr;

namespace {

/// Wraps the graph under construction with incremental shape inference.
struct BuildState {
  nn::Graph g;
  std::vector<FeatShape> shapes;                 // per graph node
  std::vector<std::size_t> input_ids;            // per structure input
  std::vector<std::size_t> cell_out;             // per built cell
  std::map<std::tuple<std::size_t, std::size_t, std::size_t>, std::size_t> node_out;
  std::map<std::tuple<std::size_t, std::size_t, std::size_t>, std::size_t> node_layer;

  std::size_t add(LayerPtr layer, std::vector<std::size_t> inputs) {
    std::vector<FeatShape> in;
    in.reserve(inputs.size());
    for (std::size_t id : inputs) in.push_back(shapes.at(id));
    FeatShape out = layer->output_shape(in);
    const std::size_t id = g.add(std::move(layer), std::move(inputs));
    shapes.push_back(std::move(out));
    return id;
  }

  std::size_t add_input(const std::string& name, std::size_t dim) {
    const std::size_t id = g.add_input(name, {dim});
    shapes.push_back({dim});
    input_ids.push_back(id);
    return id;
  }

  /// Feature vector view of `id`: flattens feature maps.
  std::size_t to_rank1(std::size_t id) {
    if (shapes.at(id).size() == 1) return id;
    return add(std::make_unique<nn::Flatten>(), {id});
  }

  /// Feature map view of `id`: lifts vectors to single-channel sequences.
  std::size_t to_seq(std::size_t id) {
    if (shapes.at(id).size() == 2) return id;
    return add(std::make_unique<nn::Reshape1D>(), {id});
  }

  std::size_t resolve(const SkipRef& ref) const {
    switch (ref.kind) {
      case SkipRef::Kind::kInput:
        return input_ids.at(ref.input);
      case SkipRef::Kind::kCellOutput:
        return cell_out.at(ref.cell);
      case SkipRef::Kind::kNodeOutput:
        return node_out.at({ref.cell, ref.block, ref.node});
    }
    throw std::logic_error("resolve: bad SkipRef kind");
  }
};

/// Applies one operation to the running block tensor; returns the new graph
/// node id and records the op's own layer id for mirroring.
struct OpApplier {
  BuildState& st;
  std::size_t current;
  tensor::Rng& rng;
  std::size_t op_layer_id = SIZE_MAX;  // graph node of the op's layer

  std::size_t operator()(const IdentityOp&) {
    op_layer_id = st.add(std::make_unique<nn::Identity>(), {current});
    return op_layer_id;
  }
  std::size_t operator()(const DenseOp& op) {
    const std::size_t src = st.to_rank1(current);
    op_layer_id = st.add(std::make_unique<nn::Dense>(op.units, op.act, rng), {src});
    return op_layer_id;
  }
  std::size_t operator()(const DropoutOp& op) {
    op_layer_id = st.add(std::make_unique<nn::Dropout>(op.rate), {current});
    return op_layer_id;
  }
  std::size_t operator()(const Conv1DOp& op) {
    const std::size_t src = st.to_seq(current);
    if (st.shapes.at(src)[0] < op.kernel) {
      // Feature map shrank below the kernel: degrade gracefully to Identity,
      // as an over-pooled Keras model would simply be an invalid sample.
      op_layer_id = st.add(std::make_unique<nn::Identity>(), {src});
      return op_layer_id;
    }
    op_layer_id = st.add(std::make_unique<nn::Conv1D>(op.filters, op.kernel, rng), {src});
    return op_layer_id;
  }
  std::size_t operator()(const MaxPool1DOp& op) {
    const std::size_t src = st.to_seq(current);
    op_layer_id = st.add(std::make_unique<nn::MaxPool1D>(op.size), {src});
    return op_layer_id;
  }
  std::size_t operator()(const ActivationOp& op) {
    op_layer_id = st.add(std::make_unique<nn::Activation>(op.act), {current});
    return op_layer_id;
  }
  std::size_t operator()(const ConnectOp& op) {
    // A Connect node *selects* earlier tensors to splice into the cell
    // output (DeepHyper semantics): its output is the concatenation of the
    // selected sources only. The Null option (empty refs) contributes
    // nothing — signalled with SIZE_MAX and handled by the block loop.
    // Passing the sequential input through as well would compound cell
    // widths geometrically across replicated cells.
    if (op.refs.empty()) {
      op_layer_id = SIZE_MAX;
      return SIZE_MAX;
    }
    if (op.refs.size() == 1) {
      op_layer_id = st.add(std::make_unique<nn::Identity>(), {st.resolve(op.refs[0])});
      return op_layer_id;
    }
    std::vector<std::size_t> ids;
    ids.reserve(op.refs.size());
    for (const SkipRef& ref : op.refs) ids.push_back(st.to_rank1(st.resolve(ref)));
    op_layer_id = st.add(std::make_unique<nn::Concat>(), std::move(ids));
    return op_layer_id;
  }
  std::size_t operator()(const AddOp& op) {
    if (op.refs.empty()) {
      op_layer_id = st.add(std::make_unique<nn::Identity>(), {current});
      return op_layer_id;
    }
    std::vector<std::size_t> ids{st.to_rank1(current)};
    for (const SkipRef& ref : op.refs) ids.push_back(st.to_rank1(st.resolve(ref)));
    op_layer_id = st.add(std::make_unique<nn::Add>(), std::move(ids));
    return op_layer_id;
  }
};

}  // namespace

nn::Graph build_model(const SearchSpace& space, const ArchEncoding& arch,
                      std::span<const std::size_t> input_dims, TaskHead head,
                      tensor::Rng& rng) {
  space.require_valid(arch);
  const Structure& s = space.structure();
  if (input_dims.size() != s.input_names.size()) {
    throw std::invalid_argument("build_model: expected " +
                                std::to_string(s.input_names.size()) + " input dims, got " +
                                std::to_string(input_dims.size()));
  }

  BuildState st;
  for (std::size_t p = 0; p < input_dims.size(); ++p) {
    st.add_input(s.input_names[p], input_dims[p]);
  }

  std::size_t decision = 0;
  for (std::size_t c = 0; c < s.cells.size(); ++c) {
    const Cell& cell = s.cells[c];
    std::vector<std::size_t> block_outs;
    for (std::size_t b = 0; b < cell.blocks.size(); ++b) {
      const Block& block = cell.blocks[b];
      std::size_t current = st.resolve(block.input);
      bool contributes = true;
      for (std::size_t n = 0; n < block.nodes.size(); ++n) {
        const NodeSpec& spec = block.nodes[n];
        if (std::holds_alternative<MirrorNode>(spec)) {
          const auto& mirror = std::get<MirrorNode>(spec);
          const std::size_t donor_layer =
              st.node_layer.at({mirror.cell, mirror.block, mirror.node});
          const nn::Layer& donor = st.g.layer(donor_layer);
          // Match the donor's expected input rank before attaching the clone.
          if (donor.kind() == "dense") current = st.to_rank1(current);
          if (donor.kind() == "conv1d") current = st.to_seq(current);
          current = st.add(nn::clone_shared(donor), {current});
          st.node_layer[{c, b, n}] = current;
        } else {
          const Op* op = nullptr;
          if (const auto* var = std::get_if<VariableNode>(&spec)) {
            op = &var->options.at(arch.at(decision));
            ++decision;
          } else {
            op = &std::get<ConstantNode>(spec).op;
          }
          OpApplier apply{st, current, rng};
          const std::size_t next = std::visit(apply, *op);
          if (next == SIZE_MAX) {
            // Null Connect: this block contributes nothing to the cell.
            contributes = false;
            break;
          }
          current = next;
          st.node_layer[{c, b, n}] = apply.op_layer_id;
        }
        st.node_out[{c, b, n}] = current;
      }
      if (contributes) block_outs.push_back(current);
    }
    std::size_t out;
    if (block_outs.empty()) {
      // Every block opted out (all-Null connects): the cell passes its first
      // block's input through unchanged.
      out = st.resolve(cell.blocks.front().input);
    } else if (block_outs.size() == 1) {
      out = block_outs[0];
    } else {
      std::vector<std::size_t> flat;
      flat.reserve(block_outs.size());
      for (std::size_t id : block_outs) flat.push_back(st.to_rank1(id));
      out = st.add(std::make_unique<nn::Concat>(), std::move(flat));
    }
    st.cell_out.push_back(out);
  }

  // Structure output rule.
  std::vector<std::size_t> outs = s.output_cells;
  if (outs.empty()) outs.push_back(s.cells.size() - 1);
  std::size_t model_out;
  if (outs.size() == 1) {
    model_out = st.cell_out.at(outs[0]);
  } else {
    std::vector<std::size_t> flat;
    flat.reserve(outs.size());
    for (std::size_t c : outs) flat.push_back(st.to_rank1(st.cell_out.at(c)));
    model_out = st.add(std::make_unique<nn::Concat>(), std::move(flat));
  }

  // Task head (outside the search space, as in the paper).
  model_out = st.to_rank1(model_out);
  if (head.kind == TaskHead::Kind::kRegression) {
    model_out = st.add(std::make_unique<nn::Dense>(1, nn::Act::kLinear, rng), {model_out});
  } else {
    model_out =
        st.add(std::make_unique<nn::Dense>(head.classes, nn::Act::kSoftmax, rng), {model_out});
  }
  st.g.set_output(model_out);
  return std::move(st.g);
}

}  // namespace ncnas::space
