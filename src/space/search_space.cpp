#include "ncnas/space/search_space.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace ncnas::space {

namespace {

/// True when (c2,b2,n2) strictly precedes (c1,b1,n1) in structure order.
bool precedes(std::size_t c2, std::size_t b2, std::size_t n2, std::size_t c1, std::size_t b1,
              std::size_t n1) {
  if (c2 != c1) return c2 < c1;
  if (b2 != b1) return b2 < b1;
  return n2 < n1;
}

void validate_ref(const Structure& s, const SkipRef& r, std::size_t cell, std::size_t block,
                  std::size_t node, const char* what) {
  switch (r.kind) {
    case SkipRef::Kind::kInput:
      if (r.input >= s.input_names.size()) {
        throw std::invalid_argument(std::string(what) + ": input ref out of range");
      }
      return;
    case SkipRef::Kind::kCellOutput:
      if (r.cell < cell) return;  // strictly earlier cell
      throw std::invalid_argument(std::string(what) +
                                  ": cell-output ref must point to an earlier cell");
    case SkipRef::Kind::kNodeOutput:
      if (r.cell >= s.cells.size() || r.block >= s.cells[r.cell].blocks.size() ||
          r.node >= s.cells[r.cell].blocks[r.block].nodes.size()) {
        throw std::invalid_argument(std::string(what) + ": node ref out of range");
      }
      if (!precedes(r.cell, r.block, r.node, cell, block, node)) {
        throw std::invalid_argument(std::string(what) + ": node ref must point backward");
      }
      return;
  }
}

void validate_op_refs(const Structure& s, const Op& op, std::size_t cell, std::size_t block,
                      std::size_t node) {
  if (const auto* c = std::get_if<ConnectOp>(&op)) {
    for (const SkipRef& r : c->refs) validate_ref(s, r, cell, block, node, "Connect");
  } else if (const auto* a = std::get_if<AddOp>(&op)) {
    for (const SkipRef& r : a->refs) validate_ref(s, r, cell, block, node, "Add");
  }
}

}  // namespace

SearchSpace::SearchSpace(Structure structure) : structure_(std::move(structure)) {
  const Structure& s = structure_;
  if (s.input_names.empty()) throw std::invalid_argument("SearchSpace: no inputs");
  if (s.cells.empty()) throw std::invalid_argument("SearchSpace: no cells");
  for (std::size_t out : s.output_cells) {
    if (out >= s.cells.size()) throw std::invalid_argument("SearchSpace: output cell oob");
  }

  double log10_size = 0.0;
  for (std::size_t c = 0; c < s.cells.size(); ++c) {
    const Cell& cell = s.cells[c];
    if (cell.blocks.empty()) throw std::invalid_argument("SearchSpace: empty cell");
    for (std::size_t b = 0; b < cell.blocks.size(); ++b) {
      const Block& block = cell.blocks[b];
      // Block inputs may reference any earlier cell output / any input; a
      // block reading its own cell's output would be circular.
      if (block.input.kind == SkipRef::Kind::kCellOutput && block.input.cell >= c) {
        throw std::invalid_argument("SearchSpace: block input must be an earlier cell");
      }
      for (std::size_t n = 0; n < block.nodes.size(); ++n) {
        const NodeSpec& spec = block.nodes[n];
        if (const auto* var = std::get_if<VariableNode>(&spec)) {
          if (var->options.empty()) {
            throw std::invalid_argument("SearchSpace: variable node '" + var->name +
                                        "' has no options");
          }
          for (const Op& op : var->options) validate_op_refs(s, op, c, b, n);
          decisions_.push_back({c, b, n, var->options.size(),
                                var->name.empty() ? "node" : var->name});
          max_arity_ = std::max(max_arity_, var->options.size());
          log10_size += std::log10(static_cast<double>(var->options.size()));
        } else if (const auto* cst = std::get_if<ConstantNode>(&spec)) {
          validate_op_refs(s, cst->op, c, b, n);
        } else {
          const auto& mirror = std::get<MirrorNode>(spec);
          if (mirror.cell >= s.cells.size() ||
              mirror.block >= s.cells[mirror.cell].blocks.size() ||
              mirror.node >= s.cells[mirror.cell].blocks[mirror.block].nodes.size()) {
            throw std::invalid_argument("SearchSpace: mirror source out of range");
          }
          if (!precedes(mirror.cell, mirror.block, mirror.node, c, b, n)) {
            throw std::invalid_argument("SearchSpace: mirror must follow its source");
          }
          if (std::holds_alternative<MirrorNode>(
                  s.cells[mirror.cell].blocks[mirror.block].nodes[mirror.node])) {
            throw std::invalid_argument("SearchSpace: mirror of a mirror is not allowed");
          }
        }
      }
    }
  }
  log10_size_ = log10_size;
  size_ = std::pow(10.0, log10_size);
}

std::vector<std::size_t> SearchSpace::arities() const {
  std::vector<std::size_t> out;
  out.reserve(decisions_.size());
  for (const DecisionPoint& d : decisions_) out.push_back(d.arity);
  return out;
}

ArchEncoding SearchSpace::random_arch(tensor::Rng& rng) const {
  ArchEncoding arch;
  arch.reserve(decisions_.size());
  for (const DecisionPoint& d : decisions_) {
    arch.push_back(static_cast<std::uint16_t>(rng.uniform_int(d.arity)));
  }
  return arch;
}

bool SearchSpace::is_valid(const ArchEncoding& arch) const {
  if (arch.size() != decisions_.size()) return false;
  for (std::size_t i = 0; i < arch.size(); ++i) {
    if (arch[i] >= decisions_[i].arity) return false;
  }
  return true;
}

void SearchSpace::require_valid(const ArchEncoding& arch) const {
  if (arch.size() != decisions_.size()) {
    throw std::invalid_argument("arch has " + std::to_string(arch.size()) + " choices, space '" +
                                name() + "' expects " + std::to_string(decisions_.size()));
  }
  for (std::size_t i = 0; i < arch.size(); ++i) {
    if (arch[i] >= decisions_[i].arity) {
      throw std::invalid_argument("arch choice " + std::to_string(i) + " = " +
                                  std::to_string(arch[i]) + " exceeds arity " +
                                  std::to_string(decisions_[i].arity));
    }
  }
}

const Op& SearchSpace::chosen_op(const ArchEncoding& arch, std::size_t d) const {
  const DecisionPoint& dp = decisions_.at(d);
  const auto& var = std::get<VariableNode>(
      structure_.cells[dp.cell].blocks[dp.block].nodes[dp.node]);
  return var.options.at(arch.at(d));
}

std::string SearchSpace::describe(const ArchEncoding& arch) const {
  require_valid(arch);
  std::ostringstream os;
  for (std::size_t d = 0; d < decisions_.size(); ++d) {
    const DecisionPoint& dp = decisions_[d];
    os << "C" << dp.cell << "/B" << dp.block << "/N" << dp.node << " (" << dp.name
       << ") <- " << op_name(chosen_op(arch, d)) << '\n';
  }
  return os.str();
}

std::string arch_key(const ArchEncoding& arch) {
  std::string key;
  key.reserve(arch.size() * 3);
  for (std::uint16_t v : arch) {
    key += std::to_string(v);
    key += ',';
  }
  return key;
}

}  // namespace ncnas::space
