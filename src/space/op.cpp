#include "ncnas/space/op.hpp"

#include <sstream>

namespace ncnas::space {

namespace {

std::string ref_name(const SkipRef& r) {
  std::ostringstream os;
  switch (r.kind) {
    case SkipRef::Kind::kInput: os << "in" << r.input; break;
    case SkipRef::Kind::kCellOutput: os << "C" << r.cell; break;
    case SkipRef::Kind::kNodeOutput:
      os << "C" << r.cell << "/B" << r.block << "/N" << r.node;
      break;
  }
  return os.str();
}

std::string refs_name(const std::vector<SkipRef>& refs) {
  if (refs.empty()) return "null";
  std::ostringstream os;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    if (i != 0) os << " & ";
    os << ref_name(refs[i]);
  }
  return os.str();
}

struct Namer {
  std::string operator()(const IdentityOp&) const { return "Identity"; }
  std::string operator()(const DenseOp& op) const {
    std::ostringstream os;
    os << "Dense(" << op.units << ", " << nn::act_name(op.act) << ")";
    return os.str();
  }
  std::string operator()(const DropoutOp& op) const {
    std::ostringstream os;
    os << "Dropout(" << op.rate << ")";
    return os.str();
  }
  std::string operator()(const Conv1DOp& op) const {
    std::ostringstream os;
    os << "Conv1D(k=" << op.kernel << ", f=" << op.filters << ")";
    return os.str();
  }
  std::string operator()(const MaxPool1DOp& op) const {
    std::ostringstream os;
    os << "MaxPooling1D(" << op.size << ")";
    return os.str();
  }
  std::string operator()(const ActivationOp& op) const {
    return std::string("Activation(") + nn::act_name(op.act) + ")";
  }
  std::string operator()(const ConnectOp& op) const {
    return "Connect(" + (op.label.empty() ? refs_name(op.refs) : op.label) + ")";
  }
  std::string operator()(const AddOp& op) const { return "Add(" + refs_name(op.refs) + ")"; }
};

}  // namespace

std::string op_name(const Op& op) { return std::visit(Namer{}, op); }

}  // namespace ncnas::space
