#include "ncnas/space/spaces.hpp"

#include <stdexcept>

namespace ncnas::space {

using nn::Act;

std::vector<Op> mlp_node_options() {
  // Order follows the paper's listing: Identity, the 100-unit family,
  // Dropout(0.05), the 500-unit family, Dropout(0.1), the 1000-unit family,
  // Dropout(0.2) — with units scaled 100/500/1000 -> 16/48/96.
  return {
      IdentityOp{},
      DenseOp{16, Act::kRelu},  DenseOp{16, Act::kTanh},  DenseOp{16, Act::kSigmoid},
      DropoutOp{0.05f},
      DenseOp{48, Act::kRelu},  DenseOp{48, Act::kTanh},  DenseOp{48, Act::kSigmoid},
      DropoutOp{0.1f},
      DenseOp{96, Act::kRelu},  DenseOp{96, Act::kTanh},  DenseOp{96, Act::kSigmoid},
      DropoutOp{0.2f},
  };
}

namespace {

VariableNode mlp_node(std::string name) { return {std::move(name), mlp_node_options()}; }

Block mlp_block(std::string name, SkipRef input, std::size_t depth) {
  Block b{std::move(name), input, {}};
  for (std::size_t i = 0; i < depth; ++i) {
    b.nodes.emplace_back(mlp_node("mlp" + std::to_string(i)));
  }
  return b;
}

/// The Combo Connect menu: Null, each single input, cell-0 output, all
/// inputs, and each input pair — 9 options, as in the paper. `extra_cells`
/// appends outputs of cells C1..C{i-1} for the large space.
std::vector<Op> combo_connect_options(std::size_t extra_cells_from, std::size_t extra_cells_to) {
  std::vector<Op> ops;
  ops.push_back(ConnectOp{{}, "null"});
  ops.push_back(ConnectOp{{SkipRef::to_input(0)}, "cell-expr"});
  ops.push_back(ConnectOp{{SkipRef::to_input(1)}, "drug1"});
  ops.push_back(ConnectOp{{SkipRef::to_input(2)}, "drug2"});
  ops.push_back(ConnectOp{{SkipRef::to_cell(0)}, "cell0-out"});
  ops.push_back(ConnectOp{{SkipRef::to_input(0), SkipRef::to_input(1), SkipRef::to_input(2)},
                          "all-inputs"});
  ops.push_back(ConnectOp{{SkipRef::to_input(0), SkipRef::to_input(1)}, "cell-expr & drug1"});
  ops.push_back(ConnectOp{{SkipRef::to_input(0), SkipRef::to_input(2)}, "cell-expr & drug2"});
  ops.push_back(ConnectOp{{SkipRef::to_input(1), SkipRef::to_input(2)}, "drug1 & drug2"});
  for (std::size_t c = extra_cells_from; c < extra_cells_to; ++c) {
    ops.push_back(ConnectOp{{SkipRef::to_cell(c)}, "cell" + std::to_string(c) + "-out"});
  }
  return ops;
}

Cell combo_input_cell() {
  Cell c0{"C0", {}};
  c0.blocks.push_back(mlp_block("cell-expr", SkipRef::to_input(0), 3));
  c0.blocks.push_back(mlp_block("drug1", SkipRef::to_input(1), 3));
  // drug2 mirrors drug1's submodel: shared weights (paper's MirrorNodes).
  Block drug2{"drug2", SkipRef::to_input(2), {}};
  for (std::size_t n = 0; n < 3; ++n) {
    drug2.nodes.emplace_back(MirrorNode{"mirror" + std::to_string(n), 0, 1, n});
  }
  c0.blocks.push_back(std::move(drug2));
  return c0;
}

Structure combo_structure(std::size_t middle_cells) {
  Structure s;
  s.name = middle_cells == 1 ? "combo-small" : "combo-large";
  s.input_names = {"cell.expression", "drug1.descriptors", "drug2.descriptors"};
  s.cells.push_back(combo_input_cell());
  for (std::size_t i = 1; i <= middle_cells; ++i) {
    Cell ci{"C" + std::to_string(i), {}};
    ci.blocks.push_back(mlp_block("mlp", SkipRef::to_cell(i - 1), 3));
    Block skip{"skip", SkipRef::to_cell(i - 1), {}};
    skip.nodes.emplace_back(VariableNode{"connect", combo_connect_options(1, i)});
    ci.blocks.push_back(std::move(skip));
    s.cells.push_back(std::move(ci));
  }
  Cell last{"C" + std::to_string(middle_cells + 1), {}};
  last.blocks.push_back(mlp_block("mlp", SkipRef::to_cell(middle_cells), 3));
  s.cells.push_back(std::move(last));
  // Output rule: concatenate every cell's output (paper: C0, C1, C2).
  for (std::size_t c = 0; c < s.cells.size(); ++c) s.output_cells.push_back(c);
  return s;
}

Cell uno_input_cell() {
  Cell c0{"C0", {}};
  c0.blocks.push_back(mlp_block("rna-seq", SkipRef::to_input(0), 3));
  // The dose is a calibrated scalar: it flows through unchanged (constant
  // node), which keeps |S| = 13^12 exactly as the paper reports.
  Block dose{"dose", SkipRef::to_input(1), {}};
  dose.nodes.emplace_back(ConstantNode{"dose-pass", IdentityOp{}});
  c0.blocks.push_back(std::move(dose));
  c0.blocks.push_back(mlp_block("descriptors", SkipRef::to_input(2), 3));
  c0.blocks.push_back(mlp_block("fingerprints", SkipRef::to_input(3), 3));
  return c0;
}

Structure uno_small_structure() {
  Structure s;
  s.name = "uno-small";
  s.input_names = {"cell.rna-seq", "dose", "drug.descriptors", "drug.fingerprints"};
  s.cells.push_back(uno_input_cell());

  // C1: N0 -> N1 -> N2(Add: N0) -> N3 -> N4(Add: N2), a residual stack.
  Cell c1{"C1", {}};
  Block b{"residual", SkipRef::to_cell(0), {}};
  b.nodes.emplace_back(mlp_node("n0"));
  b.nodes.emplace_back(mlp_node("n1"));
  b.nodes.emplace_back(ConstantNode{"n2-add", AddOp{{SkipRef::to_node(1, 0, 0)}}});
  b.nodes.emplace_back(mlp_node("n3"));
  b.nodes.emplace_back(ConstantNode{"n4-add", AddOp{{SkipRef::to_node(1, 0, 2)}}});
  c1.blocks.push_back(std::move(b));
  s.cells.push_back(std::move(c1));
  s.output_cells = {1};
  return s;
}

/// All 15 non-empty subsets of the four Uno inputs, in bitmask order.
void append_uno_input_combos(std::vector<Op>& ops) {
  static const char* kNames[4] = {"rna", "dose", "desc", "fp"};
  for (unsigned mask = 1; mask < 16; ++mask) {
    ConnectOp op;
    for (unsigned p = 0; p < 4; ++p) {
      if ((mask >> p) & 1u) {
        op.refs.push_back(SkipRef::to_input(p));
        if (!op.label.empty()) op.label += " & ";
        op.label += kNames[p];
      }
    }
    ops.push_back(std::move(op));
  }
}

Structure uno_large_structure() {
  Structure s;
  s.name = "uno-large";
  s.input_names = {"cell.rna-seq", "dose", "drug.descriptors", "drug.fingerprints"};
  s.cells.push_back(uno_input_cell());
  for (std::size_t i = 1; i <= 8; ++i) {
    Cell ci{"C" + std::to_string(i), {}};
    Block mlp{"mlp", SkipRef::to_cell(i - 1), {}};
    mlp.nodes.emplace_back(mlp_node("n0"));
    ci.blocks.push_back(std::move(mlp));

    Block skip{"skip", SkipRef::to_cell(i - 1), {}};
    std::vector<Op> ops;
    ops.push_back(ConnectOp{{}, "null"});
    append_uno_input_combos(ops);
    // Outputs of all previous cells (C0 .. C_{i-1}).
    for (std::size_t c = 0; c < i; ++c) {
      ops.push_back(ConnectOp{{SkipRef::to_cell(c)}, "cell" + std::to_string(c) + "-out"});
    }
    // N0 of previous cells except C0.
    for (std::size_t c = 1; c < i; ++c) {
      ops.push_back(ConnectOp{{SkipRef::to_node(c, 0, 0)}, "cell" + std::to_string(c) + "-n0"});
    }
    skip.nodes.emplace_back(VariableNode{"connect", std::move(ops)});
    ci.blocks.push_back(std::move(skip));
    s.cells.push_back(std::move(ci));
  }
  s.output_cells = {8};
  return s;
}

Structure nt3_structure() {
  Structure s;
  s.name = "nt3-small";
  s.input_names = {"rna-seq.expression"};

  const std::vector<Op> conv_opts = {IdentityOp{}, Conv1DOp{8, 3}, Conv1DOp{8, 4},
                                     Conv1DOp{8, 5}, Conv1DOp{8, 6}};
  const std::vector<Op> act_opts = {IdentityOp{}, ActivationOp{Act::kRelu},
                                    ActivationOp{Act::kTanh}, ActivationOp{Act::kSigmoid}};
  const std::vector<Op> pool_opts = {IdentityOp{}, MaxPool1DOp{3}, MaxPool1DOp{4},
                                     MaxPool1DOp{5}, MaxPool1DOp{6}};
  // Paper menu {10,50,100,200,250,500,750,1000} scaled to {4..96}.
  const std::vector<Op> dense_opts = {
      IdentityOp{},           DenseOp{4, Act::kLinear},  DenseOp{8, Act::kLinear},
      DenseOp{16, Act::kLinear}, DenseOp{24, Act::kLinear}, DenseOp{32, Act::kLinear},
      DenseOp{48, Act::kLinear}, DenseOp{64, Act::kLinear}, DenseOp{96, Act::kLinear}};
  const std::vector<Op> drop_opts = {IdentityOp{},     DropoutOp{0.5f}, DropoutOp{0.4f},
                                     DropoutOp{0.3f},  DropoutOp{0.2f}, DropoutOp{0.1f},
                                     DropoutOp{0.05f}};

  for (std::size_t c = 0; c < 4; ++c) {
    Cell cell{"C" + std::to_string(c), {}};
    Block b{"b0", c == 0 ? SkipRef::to_input(0) : SkipRef::to_cell(c - 1), {}};
    if (c < 2) {
      b.nodes.emplace_back(VariableNode{"conv", conv_opts});
      b.nodes.emplace_back(VariableNode{"act", act_opts});
      b.nodes.emplace_back(VariableNode{"pool", pool_opts});
    } else {
      b.nodes.emplace_back(VariableNode{"dense", dense_opts});
      b.nodes.emplace_back(VariableNode{"act", act_opts});
      b.nodes.emplace_back(VariableNode{"drop", drop_opts});
    }
    cell.blocks.push_back(std::move(b));
    s.cells.push_back(std::move(cell));
  }
  s.output_cells = {3};
  return s;
}

}  // namespace

SearchSpace combo_small_space() { return SearchSpace(combo_structure(1)); }
SearchSpace combo_large_space() { return SearchSpace(combo_structure(8)); }
SearchSpace uno_small_space() { return SearchSpace(uno_small_structure()); }
SearchSpace uno_large_space() { return SearchSpace(uno_large_structure()); }
SearchSpace nt3_small_space() { return SearchSpace(nt3_structure()); }

SearchSpace space_by_name(const std::string& name) {
  if (name == "combo-small") return combo_small_space();
  if (name == "combo-large") return combo_large_space();
  if (name == "uno-small") return uno_small_space();
  if (name == "uno-large") return uno_large_space();
  if (name == "nt3-small") return nt3_small_space();
  throw std::invalid_argument("space_by_name: unknown space '" + name + "'");
}

std::vector<std::string> space_names() {
  return {"combo-small", "combo-large", "uno-small", "uno-large", "nt3-small"};
}

}  // namespace ncnas::space
