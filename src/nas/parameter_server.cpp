#include "ncnas/nas/parameter_server.hpp"

#include <stdexcept>

#include "ncnas/obs/profiler.hpp"

namespace ncnas::nas {

ParameterServer::ParameterServer(std::vector<float> initial, Mode mode, std::size_t num_agents,
                                 std::size_t async_window)
    : mode_(mode),
      num_agents_(num_agents),
      async_window_(async_window == 0 ? 1 : async_window),
      params_(std::move(initial)),
      submitted_(num_agents, false),
      active_(num_agents, true),
      active_count_(num_agents),
      pulled_version_(num_agents, 0),
      arrival_time_(num_agents, 0.0) {
  if (num_agents == 0) throw std::invalid_argument("ParameterServer: need agents");
  if (params_.empty()) throw std::invalid_argument("ParameterServer: empty parameter vector");
  if (mode_ == Mode::kSync) pending_.resize(num_agents);
}

void ParameterServer::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) {
    delta_applies_ = nullptr;
    exchanges_ = nullptr;
    barrier_timeouts_ = nullptr;
    staleness_ = nullptr;
    barrier_wait_ = nullptr;
    window_depth_ = nullptr;
    journal_ = nullptr;
    return;
  }
  obs::MetricsRegistry& m = telemetry_->metrics();
  delta_applies_ = &m.counter("ncnas_ps_delta_applies_total");
  exchanges_ = &m.counter("ncnas_ps_exchanges_total");
  barrier_timeouts_ = &m.counter("ncnas_a2c_barrier_timeouts_total");
  journal_ = telemetry_->journal();
  // Staleness is counted in PS updates that landed between an agent's pull
  // and its submit; 0 means the agent trained on fresh parameters.
  staleness_ = &m.histogram("ncnas_a3c_gradient_staleness_updates",
                            {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
  barrier_wait_ = &m.histogram("ncnas_a2c_barrier_wait_seconds",
                               obs::exp_buckets(1.0, 2.0, 14));
  window_depth_ = &m.gauge("ncnas_a3c_async_window_depth");
}

const std::vector<float>& ParameterServer::pull(std::size_t agent) {
  NCNAS_PROF_SCOPE("ps/pull");
  if (agent >= num_agents_) throw std::invalid_argument("ParameterServer: bad agent id");
  pulled_version_[agent] = updates_applied_;
  return params_;
}

void ParameterServer::apply(std::span<const float> delta, float scale) {
  if (delta.size() != params_.size()) {
    throw std::invalid_argument("ParameterServer: delta dimension mismatch");
  }
  for (std::size_t i = 0; i < params_.size(); ++i) params_[i] += scale * delta[i];
  ++updates_applied_;
  if (delta_applies_ != nullptr) delta_applies_->inc();
}

bool ParameterServer::submit(std::size_t agent, std::span<const float> delta, double now) {
  NCNAS_PROF_SCOPE("ps/submit");
  if (agent >= num_agents_) throw std::invalid_argument("ParameterServer: bad agent id");
  if (delta.size() != params_.size()) {
    throw std::invalid_argument("ParameterServer: delta dimension mismatch");
  }

  if (mode_ == Mode::kAsync) {
    // An async exchange completes at the submit itself.
    if (exchanges_ != nullptr) exchanges_->inc();
    const auto staleness =
        static_cast<double>(updates_applied_ - pulled_version_[agent]);
    if (staleness_ != nullptr) staleness_->observe(staleness);
    if (telemetry_ != nullptr) {
      telemetry_->trace().instant("ps_submit", "ps", now, static_cast<std::uint32_t>(agent),
                                  {{"staleness", staleness}});
    }
    if (journal_ != nullptr) {
      journal_->append(obs::JournalEventType::kPsExchange, now,
                       static_cast<std::uint32_t>(agent),
                       {{"mode", 1.0}, {"staleness", staleness}});
    }
    if (async_window_ <= 1) {
      apply(delta, 1.0f);
      return true;
    }
    // Keep the newest `window` deltas; apply their mean. Old deltas in the
    // window model the paper's "average of recently received gradients".
    std::vector<float> copy(delta.begin(), delta.end());
    if (recent_.size() < async_window_) {
      recent_.push_back(std::move(copy));
    } else {
      recent_[recent_next_] = std::move(copy);
      recent_next_ = (recent_next_ + 1) % async_window_;
    }
    if (window_depth_ != nullptr) window_depth_->set(static_cast<double>(recent_.size()));
    std::vector<float> avg(params_.size(), 0.0f);
    for (const auto& d : recent_) {
      for (std::size_t i = 0; i < avg.size(); ++i) avg[i] += d[i];
    }
    const float inv = 1.0f / static_cast<float>(recent_.size());
    for (float& v : avg) v *= inv;
    apply(avg, 1.0f);
    return true;
  }

  // Sync barrier.
  if (!active_[agent]) {
    throw std::logic_error("ParameterServer: deactivated agent submitted");
  }
  if (submitted_[agent]) {
    throw std::logic_error("ParameterServer: agent submitted twice in one round");
  }
  submitted_[agent] = true;
  arrival_time_[agent] = now;
  last_arrival_ = std::max(last_arrival_, now);
  pending_[agent].assign(delta.begin(), delta.end());
  ++pending_count_;
  if (!barrier_complete()) return false;
  release_round(now);
  return true;
}

bool ParameterServer::barrier_complete() const noexcept {
  if (mode_ != Mode::kSync || pending_count_ == 0) return false;
  for (std::size_t a = 0; a < num_agents_; ++a) {
    if (active_[a] && !submitted_[a]) return false;
  }
  return true;
}

void ParameterServer::set_absent_timeout(double seconds) {
  if (seconds < 0.0) throw std::invalid_argument("ParameterServer: negative absent timeout");
  absent_timeout_ = seconds;
}

bool ParameterServer::try_release(double now) {
  if (mode_ != Mode::kSync || absent_timeout_ <= 0.0) return false;
  if (pending_count_ == 0) return false;
  if (now < last_arrival_ + absent_timeout_) return false;
  std::size_t absent = 0;
  for (std::size_t a = 0; a < num_agents_; ++a) {
    if (active_[a] && !submitted_[a]) ++absent;
  }
  if (barrier_timeouts_ != nullptr) barrier_timeouts_->inc();
  if (journal_ != nullptr) {
    journal_->append(obs::JournalEventType::kBarrierTimeout, now, obs::kNoAgent,
                     {{"absent", static_cast<double>(absent)},
                      {"timeout_s", absent_timeout_}});
  }
  release_round(now);
  return true;
}

bool ParameterServer::deactivate(std::size_t agent, double now) {
  if (agent >= num_agents_) throw std::invalid_argument("ParameterServer: bad agent id");
  if (mode_ != Mode::kSync || !active_[agent]) return false;
  active_[agent] = false;
  --active_count_;
  // The dead agent's removal may be exactly what completes the round: the
  // remaining live agents are all at the barrier waiting on it.
  if (!barrier_complete()) return false;
  release_round(now);
  return true;
}

ParameterServer::State ParameterServer::export_state() const {
  State out;
  out.params = params_;
  out.pending = pending_;
  out.submitted.assign(submitted_.begin(), submitted_.end());
  out.active.assign(active_.begin(), active_.end());
  out.active_count = active_count_;
  out.pending_count = pending_count_;
  out.last_arrival = last_arrival_;
  out.recent = recent_;
  out.recent_next = recent_next_;
  out.updates_applied = updates_applied_;
  out.pulled_version = pulled_version_;
  out.arrival_time = arrival_time_;
  return out;
}

void ParameterServer::import_state(const State& state) {
  if (state.params.size() != params_.size()) {
    throw std::invalid_argument("ParameterServer::import_state: parameter dim mismatch");
  }
  if (state.submitted.size() != num_agents_ || state.active.size() != num_agents_ ||
      state.pulled_version.size() != num_agents_ || state.arrival_time.size() != num_agents_) {
    throw std::invalid_argument("ParameterServer::import_state: agent count mismatch");
  }
  if (mode_ == Mode::kSync && state.pending.size() != num_agents_) {
    throw std::invalid_argument("ParameterServer::import_state: pending round mismatch");
  }
  params_ = state.params;
  pending_ = state.pending;
  submitted_.assign(state.submitted.begin(), state.submitted.end());
  active_.assign(state.active.begin(), state.active.end());
  active_count_ = state.active_count;
  pending_count_ = state.pending_count;
  last_arrival_ = state.last_arrival;
  recent_ = state.recent;
  recent_next_ = state.recent_next;
  updates_applied_ = state.updates_applied;
  pulled_version_ = state.pulled_version;
  arrival_time_ = state.arrival_time;
}

void ParameterServer::release_round(double now) {
  // Round release: each submitted agent idled from its arrival until the
  // round closed — the A2C sawtooth in paper Fig. 5. On a full round this is
  // every agent; a partial (timeout / deactivation) release only covers the
  // deltas that actually arrived.
  if (telemetry_ != nullptr) {
    for (std::size_t a = 0; a < num_agents_; ++a) {
      if (!submitted_[a]) continue;
      const double wait = now - arrival_time_[a];
      barrier_wait_->observe(wait);
      telemetry_->trace().span("a2c_barrier_wait", "ps", arrival_time_[a], wait,
                               static_cast<std::uint32_t>(a));
      // A sync exchange completes only at barrier release: one count and one
      // journal event per agent of the round, stamped at the release time
      // (the paper's A2C sawtooth: wait_s is the idle gap). Submissions of a
      // round the deadline cut short are deliberately not counted, so the
      // counter and the journal always agree.
      if (exchanges_ != nullptr) exchanges_->inc();
      if (journal_ != nullptr) {
        journal_->append(obs::JournalEventType::kPsExchange, now,
                         static_cast<std::uint32_t>(a),
                         {{"mode", 0.0}, {"wait_s", wait}});
      }
    }
  }

  // Apply the average of the arrived deltas, reset the barrier. On a full
  // round pending_count_ == num_agents_, so the scale is bit-identical to
  // the fault-free server.
  std::vector<float> avg(params_.size(), 0.0f);
  for (std::size_t a = 0; a < num_agents_; ++a) {
    if (!submitted_[a]) continue;  // absent agents hold no delta this round
    const std::vector<float>& d = pending_[a];
    for (std::size_t i = 0; i < avg.size(); ++i) avg[i] += d[i];
  }
  const float inv = 1.0f / static_cast<float>(pending_count_);
  for (float& v : avg) v *= inv;
  apply(avg, 1.0f);
  for (auto& d : pending_) d.clear();
  submitted_.assign(num_agents_, false);
  pending_count_ = 0;
}

}  // namespace ncnas::nas
