#include "ncnas/nas/parameter_server.hpp"

#include <stdexcept>

namespace ncnas::nas {

ParameterServer::ParameterServer(std::vector<float> initial, Mode mode, std::size_t num_agents,
                                 std::size_t async_window)
    : mode_(mode),
      num_agents_(num_agents),
      async_window_(async_window == 0 ? 1 : async_window),
      params_(std::move(initial)),
      submitted_(num_agents, false) {
  if (num_agents == 0) throw std::invalid_argument("ParameterServer: need agents");
  if (params_.empty()) throw std::invalid_argument("ParameterServer: empty parameter vector");
  if (mode_ == Mode::kSync) pending_.resize(num_agents);
}

void ParameterServer::apply(std::span<const float> delta, float scale) {
  if (delta.size() != params_.size()) {
    throw std::invalid_argument("ParameterServer: delta dimension mismatch");
  }
  for (std::size_t i = 0; i < params_.size(); ++i) params_[i] += scale * delta[i];
  ++updates_applied_;
}

bool ParameterServer::submit(std::size_t agent, std::span<const float> delta) {
  if (agent >= num_agents_) throw std::invalid_argument("ParameterServer: bad agent id");
  if (delta.size() != params_.size()) {
    throw std::invalid_argument("ParameterServer: delta dimension mismatch");
  }

  if (mode_ == Mode::kAsync) {
    if (async_window_ <= 1) {
      apply(delta, 1.0f);
      return true;
    }
    // Keep the newest `window` deltas; apply their mean. Old deltas in the
    // window model the paper's "average of recently received gradients".
    std::vector<float> copy(delta.begin(), delta.end());
    if (recent_.size() < async_window_) {
      recent_.push_back(std::move(copy));
    } else {
      recent_[recent_next_] = std::move(copy);
      recent_next_ = (recent_next_ + 1) % async_window_;
    }
    std::vector<float> avg(params_.size(), 0.0f);
    for (const auto& d : recent_) {
      for (std::size_t i = 0; i < avg.size(); ++i) avg[i] += d[i];
    }
    const float inv = 1.0f / static_cast<float>(recent_.size());
    for (float& v : avg) v *= inv;
    apply(avg, 1.0f);
    return true;
  }

  // Sync barrier.
  if (submitted_[agent]) {
    throw std::logic_error("ParameterServer: agent submitted twice in one round");
  }
  submitted_[agent] = true;
  pending_[agent].assign(delta.begin(), delta.end());
  ++pending_count_;
  if (pending_count_ < num_agents_) return false;

  // Round complete: apply the average of all deltas, reset the barrier.
  std::vector<float> avg(params_.size(), 0.0f);
  for (const auto& d : pending_) {
    for (std::size_t i = 0; i < avg.size(); ++i) avg[i] += d[i];
  }
  const float inv = 1.0f / static_cast<float>(num_agents_);
  for (float& v : avg) v *= inv;
  apply(avg, 1.0f);
  for (auto& d : pending_) d.clear();
  submitted_.assign(num_agents_, false);
  pending_count_ = 0;
  return true;
}

}  // namespace ncnas::nas
