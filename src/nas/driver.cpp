#include "ncnas/nas/driver.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <queue>
#include <stdexcept>
#include <unordered_set>

#include "ncnas/exec/utilization.hpp"

namespace ncnas::nas {

const char* strategy_name(SearchStrategy s) {
  switch (s) {
    case SearchStrategy::kA3C: return "A3C";
    case SearchStrategy::kA2C: return "A2C";
    case SearchStrategy::kRandom: return "RDM";
    case SearchStrategy::kEvolution: return "EVO";
  }
  return "?";
}

std::vector<std::pair<double, float>> SearchResult::best_so_far() const {
  std::vector<std::pair<double, float>> out;
  out.reserve(evals.size());
  float best = -std::numeric_limits<float>::infinity();
  for (const EvalRecord& e : evals) {
    best = std::max(best, e.reward);
    out.emplace_back(e.time, best);
  }
  return out;
}

std::vector<EvalRecord> SearchResult::top_k(std::size_t k) const {
  std::map<std::string, EvalRecord> best_by_arch;
  for (const EvalRecord& e : evals) {
    if (e.timed_out || e.failed) continue;  // floored rewards are not measurements
    const std::string key = space::arch_key(e.arch);
    const auto it = best_by_arch.find(key);
    if (it == best_by_arch.end() || e.reward > it->second.reward) {
      best_by_arch.insert_or_assign(key, e);
    }
  }
  std::vector<EvalRecord> out;
  out.reserve(best_by_arch.size());
  for (auto& [key, rec] : best_by_arch) out.push_back(rec);
  std::ranges::sort(out, [](const EvalRecord& a, const EvalRecord& b) {
    return a.reward > b.reward;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

namespace {

struct AgentState {
  std::size_t id = 0;
  std::optional<rl::Controller> controller;
  // Evolution strategy: aging population (FIFO of scored architectures).
  std::deque<std::pair<space::ArchEncoding, float>> population;
  tensor::Rng rng{0};
  std::uint64_t eval_seed = 0;
  std::unique_ptr<exec::CachedEvaluator> cache;
  std::vector<float> theta_pull;

  // Current in-flight batch.
  std::vector<rl::Rollout> rollouts;
  std::vector<space::ArchEncoding> archs;
  std::vector<EvalRecord> records;

  std::size_t cached_streak = 0;
  bool stopped = false;

  // Fault-injection state (only populated when a plan is active).
  std::vector<double> crash_at;      ///< per-worker planned death time (+inf = never)
  bool dead = false;                 ///< every worker lost; no further cycles
  std::uint64_t exchange_seq = 0;    ///< PS exchange counter for fault verdicts
};

struct Completion {
  double time;
  std::size_t seq;    // tiebreak: submission order
  std::size_t agent;
  bool operator>(const Completion& o) const {
    return time != o.time ? time > o.time : seq > o.seq;
  }
};

/// Pre-resolved instrument handles so the hot loop never touches the
/// registry maps. Only constructed when SearchConfig::telemetry is set; all
/// instrumentation sites are guarded on this, keeping the null path free.
struct Instruments {
  obs::Counter* evals;
  obs::Counter* cache_hits;
  obs::Counter* real_evals;
  obs::Counter* timeouts;
  obs::Counter* cycles;
  obs::Counter* ppo_updates;
  // Fault-injection and recovery counters (untouched on a fault-free run).
  obs::Counter* fault_failures;
  obs::Counter* fault_retries;
  obs::Counter* fault_exhausted;
  obs::Counter* fault_lost;
  obs::Counter* fault_crashes;
  obs::Counter* fault_dead;
  obs::Counter* fault_ps_dropped;
  obs::Counter* fault_ps_delayed;
  obs::Gauge* streak_min;
  obs::Histogram* cycle_latency;
  obs::Histogram* eval_sim;
  obs::TraceRecorder* trace;
  obs::Journal* journal;  ///< null unless Telemetry::enable_journal() was called

  explicit Instruments(obs::Telemetry& t) {
    obs::MetricsRegistry& m = t.metrics();
    evals = &m.counter("ncnas_evals_total");
    cache_hits = &m.counter("ncnas_cache_hits_total");
    real_evals = &m.counter("ncnas_real_evals_total");
    timeouts = &m.counter("ncnas_eval_timeouts_total");
    cycles = &m.counter("ncnas_agent_cycles_total");
    ppo_updates = &m.counter("ncnas_ppo_updates_total");
    fault_failures = &m.counter("ncnas_fault_eval_failures_total");
    fault_retries = &m.counter("ncnas_fault_retries_total");
    fault_exhausted = &m.counter("ncnas_fault_exhausted_total");
    fault_lost = &m.counter("ncnas_fault_lost_results_total");
    fault_crashes = &m.counter("ncnas_fault_workers_crashed_total");
    fault_dead = &m.counter("ncnas_fault_dead_agents_total");
    fault_ps_dropped = &m.counter("ncnas_fault_ps_dropped_total");
    fault_ps_delayed = &m.counter("ncnas_fault_ps_delayed_total");
    streak_min = &m.gauge("ncnas_convergence_streak_min");
    cycle_latency = &m.histogram("ncnas_cycle_latency_seconds", obs::exp_buckets(4.0, 2.0, 14));
    eval_sim = &m.histogram("ncnas_eval_sim_duration_seconds", obs::exp_buckets(4.0, 2.0, 14));
    trace = &t.trace();
    journal = t.journal();
  }
};

}  // namespace

SearchDriver::SearchDriver(const space::SearchSpace& space, const data::Dataset& dataset,
                           SearchConfig config, tensor::ThreadPool* pool)
    : space_(&space), dataset_(&dataset), config_(std::move(config)), pool_(pool) {
  if (config_.cluster.num_agents == 0 || config_.cluster.workers_per_agent == 0) {
    throw std::invalid_argument("SearchDriver: agents and workers must be positive");
  }
  if (config_.batch_per_agent == 0) {
    config_.batch_per_agent = config_.cluster.workers_per_agent;
  }
}

SearchResult SearchDriver::run() {
  const std::size_t N = config_.cluster.num_agents;
  const std::size_t W = config_.cluster.workers_per_agent;
  const std::size_t M = config_.batch_per_agent;
  const bool rl_enabled = config_.strategy == SearchStrategy::kA3C ||
                          config_.strategy == SearchStrategy::kA2C;
  const bool evolution = config_.strategy == SearchStrategy::kEvolution;

  // The fault plan is consulted only when non-null AND non-empty, so an
  // injector built from an empty plan is indistinguishable from no injector:
  // bit-identical results, identical config fingerprint.
  const exec::FaultInjector* fx =
      (config_.faults != nullptr && config_.faults->enabled()) ? config_.faults : nullptr;

  exec::TrainingEvaluator evaluator(*space_, *dataset_, config_.fidelity, config_.cost);
  const float floor_reward = evaluator.reward_floor();
  exec::UtilizationMonitor monitor(config_.cluster.total_workers());
  std::optional<Instruments> inst;
  if (config_.telemetry != nullptr) {
    inst.emplace(*config_.telemetry);
    evaluator.set_telemetry(config_.telemetry);
    if (inst->journal != nullptr) {
      inst->journal->append(obs::JournalEventType::kRunStarted, 0.0, obs::kNoAgent,
                            {{"agents", static_cast<double>(N)},
                             {"workers", static_cast<double>(W)},
                             {"batch", static_cast<double>(M)},
                             {"wall_time_s", config_.wall_time_seconds},
                             {"strategy", static_cast<double>(config_.strategy)},
                             {"seed", static_cast<double>(config_.seed)}});
    }
  }

  // All agents start from the same policy parameters, held by the PS.
  std::optional<ParameterServer> ps;
  if (rl_enabled) {
    rl::Controller init(space_->arities(), config_.seed);
    ps.emplace(init.get_flat(),
               config_.strategy == SearchStrategy::kA2C ? ParameterServer::Mode::kSync
                                                        : ParameterServer::Mode::kAsync,
               N, config_.async_window);
    ps->set_telemetry(config_.telemetry);
    if (fx != nullptr) ps->set_absent_timeout(fx->plan().barrier_timeout_seconds);
  }

  tensor::Rng seeder(config_.seed);
  std::vector<AgentState> agents(N);
  for (std::size_t i = 0; i < N; ++i) {
    agents[i].id = i;
    agents[i].rng = seeder.split(1000 + i);
    agents[i].eval_seed = seeder.split(5000 + i).next_u64();
    agents[i].cache = std::make_unique<exec::CachedEvaluator>(evaluator);
    agents[i].cache->set_telemetry(config_.telemetry);
    if (rl_enabled) {
      agents[i].controller.emplace(space_->arities(), config_.seed + 17 * i);
      agents[i].controller->set_telemetry(config_.telemetry);
    }
  }

  SearchResult result;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>> queue;
  std::size_t seq = 0;
  std::size_t real_evals = 0;
  bool budget_exhausted = false;
  double a2c_round_time = 0.0;
  // Number of agents of the current A2C round still to harvest; when it hits
  // zero with the barrier stuck (drops / deaths) the round is force-released.
  std::size_t a2c_outstanding = 0;
  double last_completion = 0.0;

  // Register the plan's worker crashes up front: the planned death times are
  // known (a crash schedule, like a maintenance window), the capacity loss
  // leaves the utilization denominator from the crash on, and the journal
  // records each at t=0 with the crash time in the payload so the watchdog's
  // event clock never runs ahead of the search.
  if (fx != nullptr) {
    for (AgentState& agent : agents) {
      agent.crash_at.assign(W, std::numeric_limits<double>::infinity());
      for (std::size_t w = 0; w < W; ++w) {
        const double when = fx->crash_time(agent.id, w);
        if (when >= config_.wall_time_seconds) continue;  // never felt by this run
        agent.crash_at[w] = when;
        ++result.crashed_workers;
        monitor.add_capacity_loss(when);
        if (inst) {
          inst->fault_crashes->inc();
          if (inst->journal != nullptr) {
            inst->journal->append(obs::JournalEventType::kWorkerCrashed, 0.0,
                                  static_cast<std::uint32_t>(agent.id),
                                  {{"worker", static_cast<double>(w)}, {"at", when}});
          }
        }
      }
    }
  }

  // ---- fault-aware dispatch: one real task with retries and backoff -----
  // Only reached when a fault plan is active. Walks the retry loop on the
  // virtual clock: each attempt picks the earliest-start live worker, asks
  // the injector for this attempt's verdict, and on failure re-dispatches
  // after capped exponential backoff until success or the retry budget is
  // spent (the record is then floored). Returns false when no live worker
  // remains — the caller marks the agent dead. The real training behind the
  // record ran once up front; faults only replay its virtual-time cost.
  const auto dispatch_faulty = [&](AgentState& agent, std::vector<double>& worker_free,
                                   const exec::EvalResult& r, EvalRecord& rec, double t,
                                   double& batch_done) -> bool {
    const std::string key = space::arch_key(rec.arch);
    const auto aid = static_cast<std::uint32_t>(agent.id);
    const std::size_t max_retries = fx->plan().max_retries;
    const auto floor_record = [&](double at, std::size_t attempts) {
      rec.time = at;
      rec.reward = floor_reward;
      rec.failed = true;
      rec.attempts = attempts;
      batch_done = std::max(batch_done, at);
      ++result.exhausted;
      // The cache was primed with the real result before dispatch; a task
      // that never delivered must not leave that result behind (a later
      // regeneration re-evaluates instead of replaying a non-measurement).
      if (config_.use_cache) agent.cache->erase(rec.arch);
      if (inst) {
        inst->fault_exhausted->inc();
        if (inst->journal != nullptr) {
          inst->journal->append(obs::JournalEventType::kEvalExhausted, at, aid,
                                {{"attempts", static_cast<double>(attempts)},
                                 {"reward", static_cast<double>(floor_reward)}});
        }
      }
    };

    std::size_t attempt = 0;
    double ready = t;
    for (;;) {
      // Earliest-start live worker; a worker is usable only when the task
      // can begin before its planned crash. With no crashes this reduces to
      // the fault-free earliest-free choice.
      std::size_t slot = W;
      double start = std::numeric_limits<double>::infinity();
      for (std::size_t w = 0; w < W; ++w) {
        const double s = std::max(worker_free[w], ready);
        if (s >= agent.crash_at[w]) continue;
        if (s < start) {
          start = s;
          slot = w;
        }
      }
      if (slot == W) {
        floor_record(ready, attempt);
        return false;  // agent has no live worker left
      }

      const exec::FaultInjector::TaskFault tf = fx->task_fault(agent.id, key, attempt);
      const double dur = r.sim_duration * tf.slowdown;
      const double end = start + dur;
      const double crash = agent.crash_at[slot];

      double fail_time = 0.0;
      bool emit_failed = true;  // lost results carry their own event type
      double fail_reason = 0.0;  // 0 injected failure, 1 worker crash
      if (end > crash) {
        // The worker dies mid-task and takes the task down with it.
        if (crash > start) monitor.add_busy_interval(start, crash);
        worker_free[slot] = crash;
        fail_time = crash;
        fail_reason = 1.0;
      } else if (tf.fail) {
        fail_time = start + dur * tf.fail_frac;
        monitor.add_busy_interval(start, fail_time);
        worker_free[slot] = fail_time;
      } else if (tf.lost) {
        // The task ran to completion; the result vanished in flight, so the
        // full duration is paid and the attempt still counts as failed.
        monitor.add_busy_interval(start, end);
        worker_free[slot] = end;
        fail_time = end;
        emit_failed = false;
        ++result.lost_results;
        if (inst) {
          inst->fault_lost->inc();
          if (inst->journal != nullptr) {
            inst->journal->append(obs::JournalEventType::kResultLost, end, aid,
                                  {{"attempt", static_cast<double>(attempt)},
                                   {"worker", static_cast<double>(slot)},
                                   {"duration_s", dur}});
          }
        }
      } else {
        // Success (possibly slowed — the watchdog sees the stretched span).
        worker_free[slot] = end;
        monitor.add_busy_interval(start, end);
        rec.time = end;
        rec.attempts = attempt + 1;
        batch_done = std::max(batch_done, end);
        ++real_evals;
        if (inst) {
          inst->trace->span("eval", "exec", start, dur, aid,
                            {{"reward", rec.reward},
                             {"timed_out", rec.timed_out ? 1.0 : 0.0}});
          if (inst->journal != nullptr) {
            inst->journal->append(obs::JournalEventType::kEvalDispatched, start, aid,
                                  {{"duration_s", dur},
                                   {"worker", static_cast<double>(slot)},
                                   {"train_wall_ms", r.train_wall_ms},
                                   {"attempt", static_cast<double>(attempt)}});
          }
        }
        return true;
      }

      if (emit_failed && inst) {
        inst->fault_failures->inc();
        if (inst->journal != nullptr) {
          inst->journal->append(obs::JournalEventType::kEvalFailed, fail_time, aid,
                                {{"attempt", static_cast<double>(attempt)},
                                 {"worker", static_cast<double>(slot)},
                                 {"reason", fail_reason}});
        }
      }
      ++attempt;
      if (attempt > max_retries) {
        floor_record(fail_time, attempt);
        ++real_evals;  // the failed attempts occupied real worker time
        return true;
      }
      const double backoff = fx->backoff(attempt);
      ready = fail_time + backoff;
      ++result.retries;
      if (inst) {
        inst->fault_retries->inc();
        if (inst->journal != nullptr) {
          inst->journal->append(obs::JournalEventType::kEvalRetried, ready, aid,
                                {{"attempt", static_cast<double>(attempt)},
                                 {"backoff_s", backoff}});
        }
      }
    }
  };

  // ---- one agent cycle: sample M, evaluate, occupy workers, schedule ----
  const auto start_cycle = [&](AgentState& agent, double t) {
    if (agent.dead) {  // lost every worker; nothing left to run a batch on
      agent.stopped = true;
      return;
    }
    if (t >= config_.wall_time_seconds || budget_exhausted) {
      agent.stopped = true;
      return;
    }
    if (rl_enabled) {
      agent.theta_pull = ps->pull(agent.id);
      agent.controller->set_flat(agent.theta_pull);
    }
    agent.rollouts.clear();
    agent.archs.clear();
    agent.records.clear();
    for (std::size_t m = 0; m < M; ++m) {
      if (rl_enabled) {
        agent.rollouts.push_back(agent.controller->sample(agent.rng));
        agent.archs.push_back(agent.rollouts.back().actions);
      } else if (evolution && agent.population.size() >= config_.evolution.population) {
        // Tournament selection over the aging window, then a single-gene
        // mutation (regularized-evolution child generation).
        const auto& pop = agent.population;
        std::size_t best_idx = agent.rng.uniform_int(pop.size());
        for (std::size_t round = 1; round < config_.evolution.tournament; ++round) {
          const std::size_t idx = agent.rng.uniform_int(pop.size());
          if (pop[idx].second > pop[best_idx].second) best_idx = idx;
        }
        space::ArchEncoding child = pop[best_idx].first;
        const std::size_t gene = agent.rng.uniform_int(child.size());
        const std::size_t arity = space_->decisions()[gene].arity;
        if (arity > 1) {
          std::uint16_t v = child[gene];
          while (v == child[gene]) {
            v = static_cast<std::uint16_t>(agent.rng.uniform_int(arity));
          }
          child[gene] = v;
        }
        agent.archs.push_back(std::move(child));
      } else {
        agent.archs.push_back(space_->random_arch(agent.rng));
      }
    }

    // Resolve against the agent's cache; farm unique misses out for real.
    std::vector<std::optional<exec::EvalResult>> results(M);
    std::vector<std::size_t> miss_index;           // batch position per unique miss
    std::unordered_set<std::string> miss_keys;
    for (std::size_t m = 0; m < M; ++m) {
      if (config_.use_cache) results[m] = agent.cache->lookup(agent.archs[m]);
      if (!results[m] && miss_keys.insert(space::arch_key(agent.archs[m])).second) {
        miss_index.push_back(m);
      }
    }
    std::vector<exec::EvalResult> fresh(miss_index.size());
    const auto eval_one = [&](std::size_t i) {
      fresh[i] = evaluator.evaluate(agent.archs[miss_index[i]], agent.eval_seed);
    };
    if (pool_ != nullptr && miss_index.size() > 1) {
      tensor::parallel_for(*pool_, miss_index.size(), eval_one);
    } else {
      for (std::size_t i = 0; i < miss_index.size(); ++i) eval_one(i);
    }
    for (std::size_t i = 0; i < miss_index.size(); ++i) {
      agent.cache->insert(agent.archs[miss_index[i]], fresh[i]);
      results[miss_index[i]] = fresh[i];  // first occurrence stays a real task
    }
    // Within-batch duplicates of a fresh miss read the cache result.
    for (std::size_t m = 0; m < M; ++m) {
      if (!results[m]) results[m] = agent.cache->lookup(agent.archs[m]);
    }

    // Worker occupancy: non-cached tasks dispatch onto the agent's W
    // dedicated nodes (earliest-free first); cached results cost nothing.
    std::vector<double> worker_free(W, t);
    double batch_done = t;
    for (std::size_t m = 0; m < M; ++m) {
      const exec::EvalResult& r = *results[m];
      EvalRecord rec;
      rec.reward = r.reward;
      rec.params = r.params;
      rec.sim_duration = r.sim_duration;
      rec.cache_hit = r.cache_hit;
      rec.timed_out = r.timed_out;
      rec.agent = agent.id;
      rec.arch = agent.archs[m];
      if (r.cache_hit) {
        rec.time = t;
        if (inst) {
          inst->trace->instant("eval_cached", "exec", t, static_cast<std::uint32_t>(agent.id),
                               {{"reward", rec.reward}});
        }
      } else if (fx == nullptr) {
        const auto slot = static_cast<std::size_t>(
            std::min_element(worker_free.begin(), worker_free.end()) - worker_free.begin());
        const double start = worker_free[slot];
        const double end = start + r.sim_duration;
        worker_free[slot] = end;
        monitor.add_busy_interval(start, end);
        rec.time = end;
        batch_done = std::max(batch_done, end);
        ++real_evals;
        if (inst) {
          inst->trace->span("eval", "exec", start, r.sim_duration,
                            static_cast<std::uint32_t>(agent.id),
                            {{"reward", rec.reward},
                             {"timed_out", rec.timed_out ? 1.0 : 0.0}});
          if (inst->journal != nullptr) {
            inst->journal->append(obs::JournalEventType::kEvalDispatched, start,
                                  static_cast<std::uint32_t>(agent.id),
                                  {{"duration_s", r.sim_duration},
                                   {"worker", static_cast<double>(slot)},
                                   {"train_wall_ms", r.train_wall_ms}});
          }
        }
      } else if (!dispatch_faulty(agent, worker_free, r, rec, t, batch_done) &&
                 !agent.dead) {
        // First task that found no live worker: the agent's pool is gone.
        // Remaining tasks of this batch floor the same way; the batch still
        // completes (and is harvested) so PPO reward vectors stay aligned.
        agent.dead = true;
        agent.stopped = true;
        ++result.dead_agents;
        if (inst) {
          inst->fault_dead->inc();
          if (inst->journal != nullptr) {
            inst->journal->append(obs::JournalEventType::kAgentDead, t,
                                  static_cast<std::uint32_t>(agent.id),
                                  {{"workers", static_cast<double>(W)}});
          }
        }
      }
      agent.records.push_back(std::move(rec));
    }
    if (config_.max_evaluations != 0 && real_evals >= config_.max_evaluations) {
      budget_exhausted = true;
    }
    const double scheduled = std::max(batch_done, t + 1e-3);
    if (inst) {
      inst->cycles->inc();
      inst->cycle_latency->observe(scheduled - t);
      inst->trace->span("agent_cycle", "driver", t, scheduled - t,
                        static_cast<std::uint32_t>(agent.id),
                        {{"batch", static_cast<double>(M)},
                         {"misses", static_cast<double>(miss_index.size())}});
    }
    queue.push({scheduled, seq++, agent.id});
  };

  // ---- A2C round bookkeeping --------------------------------------------
  // Starts (or restarts) a synchronized round and counts how many agents
  // actually queued a batch — including one that died mid-dispatch, whose
  // floored batch still completes and is harvested. Wall/budget-stopped and
  // already-dead agents queue nothing.
  const auto a2c_begin_round = [&](double resume) {
    a2c_round_time = 0.0;
    a2c_outstanding = 0;
    for (AgentState& a : agents) {
      const bool was_dead = a.dead;
      start_cycle(a, resume);
      if (!was_dead && (!a.stopped || a.dead)) ++a2c_outstanding;
    }
  };

  // When every agent of the round has been harvested but the barrier still
  // holds (dropped exchanges, dead agents), release whatever arrived after
  // the plan's absent-agent timeout and start the next round. If nothing
  // arrived at all the round restarts without a parameter update.
  const auto a2c_release_stuck = [&](double now) {
    if (fx == nullptr || a2c_outstanding != 0) return;
    const double release_t =
        std::max(a2c_round_time, now) + fx->plan().barrier_timeout_seconds;
    (void)ps->try_release(release_t);
    a2c_begin_round(release_t + config_.agent_overhead_seconds);
  };

  // ---- bootstrap: every agent starts at t = 0 ----
  if (config_.strategy == SearchStrategy::kA2C) {
    a2c_begin_round(0.0);
  } else {
    for (AgentState& agent : agents) start_cycle(agent, 0.0);
  }

  // ---- event loop over batch completions ----
  while (!queue.empty()) {
    const Completion done = queue.top();
    queue.pop();
    AgentState& agent = agents[done.agent];
    const double t = done.time;
    last_completion = std::max(last_completion, t);

    // Harvest the batch.
    bool all_cached = true;
    std::vector<float> rewards;
    rewards.reserve(agent.records.size());
    for (EvalRecord& rec : agent.records) {
      all_cached = all_cached && rec.cache_hit;
      if (rec.cache_hit) rec.time = t;  // resolved when the batch closes
      rewards.push_back(rec.reward);
      if (rec.cache_hit) ++result.cache_hits;
      if (rec.timed_out) ++result.timeouts;
      if (inst) {
        inst->evals->inc();
        if (rec.cache_hit) {
          inst->cache_hits->inc();
        } else {
          inst->real_evals->inc();
          inst->eval_sim->observe(rec.sim_duration);
        }
        if (rec.timed_out) inst->timeouts->inc();
        // Journal events are emitted at the same harvest point the counters
        // increment, with the record's own completion time, so a journal
        // replay reconciles with both the counters and SearchResult.evals.
        if (inst->journal != nullptr) {
          const auto aid = static_cast<std::uint32_t>(agent.id);
          if (rec.cache_hit) {
            inst->journal->append(obs::JournalEventType::kEvalCached, rec.time, aid,
                                  {{"reward", rec.reward},
                                   {"timed_out", rec.timed_out ? 1.0 : 0.0}});
          } else {
            std::vector<obs::JournalField> fields{
                {"reward", rec.reward},
                {"duration_s", rec.sim_duration},
                {"timed_out", rec.timed_out ? 1.0 : 0.0},
                {"params", static_cast<double>(rec.params)}};
            if (rec.failed) {
              fields.push_back({"failed", 1.0});
              fields.push_back({"attempts", static_cast<double>(rec.attempts)});
            }
            inst->journal->append(obs::JournalEventType::kEvalFinished, rec.time, aid,
                                  std::move(fields));
          }
          if (rec.timed_out) {
            inst->journal->append(obs::JournalEventType::kEvalTimeout, rec.time, aid,
                                  {{"duration_s", rec.sim_duration}});
          }
        }
      }
      result.evals.push_back(rec);
    }
    agent.cached_streak = all_cached ? agent.cached_streak + 1 : 0;
    if (inst && inst->journal != nullptr &&
        agent.cached_streak == config_.convergence_streak) {
      inst->journal->append(obs::JournalEventType::kAgentConverged, t,
                            static_cast<std::uint32_t>(agent.id),
                            {{"streak", static_cast<double>(agent.cached_streak)}});
    }
    if (inst) {
      std::size_t min_streak = agents[0].cached_streak;
      for (const AgentState& a : agents) min_streak = std::min(min_streak, a.cached_streak);
      inst->streak_min->set(static_cast<double>(min_streak));
    }

    if (config_.strategy == SearchStrategy::kEvolution) {
      for (const EvalRecord& rec : agent.records) {
        agent.population.emplace_back(rec.arch, rec.reward);
        if (agent.population.size() > config_.evolution.population) {
          agent.population.pop_front();  // aging: oldest individual dies
        }
      }
    }

    // Convergence: every agent keeps regenerating cached architectures.
    // Dead agents can't regenerate anything, so they are exempt — as long as
    // at least one agent survived to actually converge.
    const bool converged =
        std::ranges::all_of(agents,
                            [&](const AgentState& a) {
                              return (fx != nullptr && a.dead) ||
                                     a.cached_streak >= config_.convergence_streak;
                            }) &&
        std::ranges::any_of(agents, [](const AgentState& a) { return !a.dead; });
    if (converged) {
      result.converged_early = true;
      result.end_time = t;
      break;
    }

    if (!rl_enabled) {
      start_cycle(agent, t + config_.agent_overhead_seconds);
      continue;
    }

    if (fx != nullptr && agent.dead) {
      // The dead agent's final (floored) batch was harvested above; there is
      // no controller state worth updating and nothing to submit. In A2C the
      // barrier must stop waiting for it — its removal may itself complete
      // the round the surviving agents are parked on.
      if (config_.strategy == SearchStrategy::kA2C) {
        if (a2c_outstanding > 0) --a2c_outstanding;
        a2c_round_time = std::max(a2c_round_time, t);
        if (ps->deactivate(agent.id, t)) {
          a2c_begin_round(a2c_round_time + config_.agent_overhead_seconds);
        } else {
          a2c_release_stuck(t);
        }
      }
      continue;
    }

    // Local PPO epochs, then exchange the parameter delta through the PS.
    const rl::PpoStats ppo_stats = agent.controller->ppo_update(
        agent.rollouts, rewards, config_.ppo, t, static_cast<std::uint32_t>(agent.id));
    ++result.ppo_updates;
    if (inst) {
      inst->ppo_updates->inc();
      inst->trace->instant("ppo_update", "rl", t, static_cast<std::uint32_t>(agent.id),
                           {{"policy_loss", ppo_stats.policy_loss},
                            {"value_loss", ppo_stats.value_loss},
                            {"entropy", ppo_stats.entropy},
                            {"approx_kl", ppo_stats.approx_kl}});
    }
    std::vector<float> delta = agent.controller->get_flat();
    for (std::size_t i = 0; i < delta.size(); ++i) delta[i] -= agent.theta_pull[i];

    if (config_.strategy == SearchStrategy::kA3C) {
      if (fx == nullptr) {
        ps->submit(agent.id, delta, t);
        start_cycle(agent, t + config_.agent_overhead_seconds);
      } else {
        const exec::FaultInjector::ExchangeFault ef =
            fx->exchange_fault(agent.id, agent.exchange_seq++);
        double resume = t + config_.agent_overhead_seconds;
        if (ef.drop) {
          // The delta is lost in flight; the agent carries on with the stale
          // parameters it already holds.
          if (inst) {
            inst->fault_ps_dropped->inc();
            if (inst->journal != nullptr) {
              inst->journal->append(obs::JournalEventType::kPsDropped, t,
                                    static_cast<std::uint32_t>(agent.id), {{"mode", 1.0}});
            }
          }
        } else {
          if (ef.delay_seconds > 0.0) {
            resume += ef.delay_seconds;  // the exchange round trip stretches
            if (inst) {
              inst->fault_ps_delayed->inc();
              if (inst->journal != nullptr) {
                inst->journal->append(obs::JournalEventType::kPsDelayed, t,
                                      static_cast<std::uint32_t>(agent.id),
                                      {{"mode", 1.0}, {"delay_s", ef.delay_seconds}});
              }
            }
          }
          ps->submit(agent.id, delta, t);
        }
        start_cycle(agent, resume);
      }
    } else {
      a2c_round_time = std::max(a2c_round_time, t);
      if (fx == nullptr) {
        const bool round_complete = ps->submit(agent.id, delta, t);
        if (round_complete) {
          const double resume = a2c_round_time + config_.agent_overhead_seconds;
          a2c_begin_round(resume);
        }
      } else {
        if (a2c_outstanding > 0) --a2c_outstanding;
        const exec::FaultInjector::ExchangeFault ef =
            fx->exchange_fault(agent.id, agent.exchange_seq++);
        bool round_complete = false;
        if (ef.drop) {
          // The delta never reaches the barrier; the agent idles while the
          // round is resolved for it (submit next round as usual).
          if (inst) {
            inst->fault_ps_dropped->inc();
            if (inst->journal != nullptr) {
              inst->journal->append(obs::JournalEventType::kPsDropped, t,
                                    static_cast<std::uint32_t>(agent.id), {{"mode", 0.0}});
            }
          }
        } else {
          double arrival = t;
          if (ef.delay_seconds > 0.0) {
            arrival += ef.delay_seconds;
            if (inst) {
              inst->fault_ps_delayed->inc();
              if (inst->journal != nullptr) {
                inst->journal->append(obs::JournalEventType::kPsDelayed, t,
                                      static_cast<std::uint32_t>(agent.id),
                                      {{"mode", 0.0}, {"delay_s", ef.delay_seconds}});
              }
            }
          }
          a2c_round_time = std::max(a2c_round_time, arrival);
          round_complete = ps->submit(agent.id, delta, arrival);
        }
        if (round_complete) {
          a2c_begin_round(a2c_round_time + config_.agent_overhead_seconds);
        } else {
          a2c_release_stuck(t);
        }
      }
    }
  }

  if (result.end_time == 0.0) {
    result.end_time = std::min(config_.wall_time_seconds, std::max(last_completion, 1.0));
  }

  // Order the record stream by completion time and drop post-deadline tails.
  std::ranges::stable_sort(result.evals, [](const EvalRecord& a, const EvalRecord& b) {
    return a.time < b.time;
  });
  std::erase_if(result.evals, [&](const EvalRecord& e) {
    return e.time > config_.wall_time_seconds;
  });

  std::unordered_set<std::string> unique;
  for (const EvalRecord& e : result.evals) unique.insert(space::arch_key(e.arch));
  result.unique_archs = unique.size();

  result.utilization = monitor.series(result.end_time, result.utilization_bucket);

  if (inst && inst->journal != nullptr) {
    float best = -std::numeric_limits<float>::infinity();
    for (const EvalRecord& e : result.evals) best = std::max(best, e.reward);
    inst->journal->append(
        obs::JournalEventType::kRunFinished, result.end_time, obs::kNoAgent,
        {{"end_time_s", result.end_time},
         {"evals", static_cast<double>(result.evals.size())},
         {"best_reward", result.evals.empty() ? 0.0 : static_cast<double>(best)},
         {"cache_hits", static_cast<double>(result.cache_hits)},
         {"timeouts", static_cast<double>(result.timeouts)},
         {"ppo_updates", static_cast<double>(result.ppo_updates)},
         {"converged", result.converged_early ? 1.0 : 0.0},
         {"wall_time_s", config_.wall_time_seconds}});
  }

  if (config_.telemetry != nullptr) {
    result.telemetry_enabled = true;
    result.telemetry =
        std::make_shared<const obs::TelemetrySnapshot>(config_.telemetry->snapshot());
  }
  return result;
}

}  // namespace ncnas::nas
