#include "ncnas/nas/driver.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <queue>
#include <stdexcept>
#include <unordered_set>

#include "ncnas/ckpt/snapshot.hpp"
#include "ncnas/exec/utilization.hpp"
#include "ncnas/obs/profiler.hpp"
#include "ncnas/nas/result_io.hpp"

namespace ncnas::nas {

const char* strategy_name(SearchStrategy s) {
  switch (s) {
    case SearchStrategy::kA3C: return "A3C";
    case SearchStrategy::kA2C: return "A2C";
    case SearchStrategy::kRandom: return "RDM";
    case SearchStrategy::kEvolution: return "EVO";
  }
  return "?";
}

std::vector<std::pair<double, float>> SearchResult::best_so_far() const {
  std::vector<std::pair<double, float>> out;
  out.reserve(evals.size());
  float best = -std::numeric_limits<float>::infinity();
  for (const EvalRecord& e : evals) {
    best = std::max(best, e.reward);
    out.emplace_back(e.time, best);
  }
  return out;
}

std::vector<EvalRecord> SearchResult::top_k(std::size_t k) const {
  std::map<std::string, EvalRecord> best_by_arch;
  for (const EvalRecord& e : evals) {
    if (e.timed_out || e.failed) continue;  // floored rewards are not measurements
    const std::string key = space::arch_key(e.arch);
    const auto it = best_by_arch.find(key);
    if (it == best_by_arch.end() || e.reward > it->second.reward) {
      best_by_arch.insert_or_assign(key, e);
    }
  }
  std::vector<EvalRecord> out;
  out.reserve(best_by_arch.size());
  for (auto& [key, rec] : best_by_arch) out.push_back(rec);
  std::ranges::sort(out, [](const EvalRecord& a, const EvalRecord& b) {
    return a.reward > b.reward;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

namespace {

struct AgentState {
  std::size_t id = 0;
  std::optional<rl::Controller> controller;
  // Evolution strategy: aging population (FIFO of scored architectures).
  std::deque<std::pair<space::ArchEncoding, float>> population;
  tensor::Rng rng{0};
  std::uint64_t eval_seed = 0;
  std::unique_ptr<exec::CachedEvaluator> cache;
  std::vector<float> theta_pull;

  // Current in-flight batch.
  std::vector<rl::Rollout> rollouts;
  std::vector<space::ArchEncoding> archs;
  std::vector<EvalRecord> records;

  std::size_t cached_streak = 0;
  bool stopped = false;

  // Fault-injection state (only populated when a plan is active).
  std::vector<double> crash_at;      ///< per-worker planned death time (+inf = never)
  bool dead = false;                 ///< every worker lost; no further cycles
  std::uint64_t exchange_seq = 0;    ///< PS exchange counter for fault verdicts
};

struct Completion {
  double time;
  std::size_t seq;    // tiebreak: submission order
  std::size_t agent;
  bool operator>(const Completion& o) const {
    return time != o.time ? time > o.time : seq > o.seq;
  }
};

/// Pre-resolved instrument handles so the hot loop never touches the
/// registry maps. Only constructed when SearchConfig::telemetry is set; all
/// instrumentation sites are guarded on this, keeping the null path free.
struct Instruments {
  obs::Counter* evals;
  obs::Counter* cache_hits;
  obs::Counter* shared_hits;
  obs::Counter* real_evals;
  obs::Counter* timeouts;
  obs::Counter* cycles;
  obs::Counter* ppo_updates;
  // Fault-injection and recovery counters (untouched on a fault-free run).
  obs::Counter* fault_failures;
  obs::Counter* fault_retries;
  obs::Counter* fault_exhausted;
  obs::Counter* fault_lost;
  obs::Counter* fault_crashes;
  obs::Counter* fault_dead;
  obs::Counter* fault_ps_dropped;
  obs::Counter* fault_ps_delayed;
  obs::Counter* checkpoints;
  // Fidelity-ladder counters (untouched on flat runs).
  obs::Counter* fidelity_trainings;
  obs::Counter* fidelity_promotions;
  obs::Counter* fidelity_warm_starts;
  obs::Counter* fidelity_rung_hits;
  obs::Gauge* streak_min;
  obs::Histogram* cycle_latency;
  obs::Histogram* eval_sim;
  obs::TraceRecorder* trace;
  obs::Journal* journal;    ///< null unless Telemetry::enable_journal() was called
  obs::Exporter* exporter;  ///< null unless Telemetry::enable_exporter() was called

  explicit Instruments(obs::Telemetry& t) {
    obs::MetricsRegistry& m = t.metrics();
    evals = &m.counter("ncnas_evals_total");
    cache_hits = &m.counter("ncnas_cache_hits_total");
    shared_hits = &m.counter("ncnas_shared_cache_hits_total");
    real_evals = &m.counter("ncnas_real_evals_total");
    timeouts = &m.counter("ncnas_eval_timeouts_total");
    cycles = &m.counter("ncnas_agent_cycles_total");
    ppo_updates = &m.counter("ncnas_ppo_updates_total");
    fault_failures = &m.counter("ncnas_fault_eval_failures_total");
    fault_retries = &m.counter("ncnas_fault_retries_total");
    fault_exhausted = &m.counter("ncnas_fault_exhausted_total");
    fault_lost = &m.counter("ncnas_fault_lost_results_total");
    fault_crashes = &m.counter("ncnas_fault_workers_crashed_total");
    fault_dead = &m.counter("ncnas_fault_dead_agents_total");
    fault_ps_dropped = &m.counter("ncnas_fault_ps_dropped_total");
    fault_ps_delayed = &m.counter("ncnas_fault_ps_delayed_total");
    checkpoints = &m.counter("ncnas_checkpoints_total");
    fidelity_trainings = &m.counter("ncnas_fidelity_rung_trainings_total");
    fidelity_promotions = &m.counter("ncnas_fidelity_promotions_total");
    fidelity_warm_starts = &m.counter("ncnas_fidelity_warm_starts_total");
    fidelity_rung_hits = &m.counter("ncnas_fidelity_rung_hits_total");
    streak_min = &m.gauge("ncnas_convergence_streak_min");
    cycle_latency = &m.histogram("ncnas_cycle_latency_seconds", obs::exp_buckets(4.0, 2.0, 14));
    eval_sim = &m.histogram("ncnas_eval_sim_duration_seconds", obs::exp_buckets(4.0, 2.0, 14));
    trace = &t.trace();
    journal = t.journal();
    exporter = t.exporter();
  }
};

// ---- snapshot payload helpers -----------------------------------------------
// One read/write per statement throughout: C++ leaves argument evaluation
// order unspecified, and the byte stream only works if reads happen in
// exactly the order the writes did.

void put_arch(ckpt::ByteWriter& w, const space::ArchEncoding& arch) {
  w.u64(arch.size());
  for (const auto v : arch) w.u16(static_cast<std::uint16_t>(v));
}

space::ArchEncoding get_arch(ckpt::ByteReader& in) {
  const std::uint64_t n = in.u64();
  space::ArchEncoding arch(n);
  for (auto& v : arch) v = in.u16();
  return arch;
}

void put_record(ckpt::ByteWriter& w, const EvalRecord& e) {
  w.f64(e.time);
  w.f32(e.reward);
  w.u64(e.params);
  w.f64(e.sim_duration);
  w.flag(e.cache_hit);
  w.flag(e.shared_hit);
  w.flag(e.timed_out);
  w.flag(e.failed);
  w.u64(e.agent);
  w.u64(e.attempts);
  w.u32(e.rung);
  put_arch(w, e.arch);
}

EvalRecord get_record(ckpt::ByteReader& in) {
  EvalRecord e;
  e.time = in.f64();
  e.reward = in.f32();
  e.params = in.u64();
  e.sim_duration = in.f64();
  e.cache_hit = in.flag();
  e.shared_hit = in.flag();
  e.timed_out = in.flag();
  e.failed = in.flag();
  e.agent = in.u64();
  e.attempts = in.u64();
  e.rung = in.u32();
  e.arch = get_arch(in);
  return e;
}

void put_eval_result(ckpt::ByteWriter& w, const exec::EvalResult& r) {
  w.f32(r.reward);
  w.f64(r.sim_duration);
  w.u64(r.params);
  w.flag(r.timed_out);
  w.flag(r.cache_hit);
  w.flag(r.shared_hit);
  w.f64(r.train_wall_ms);
  w.u32(r.rung);
}

exec::EvalResult get_eval_result(ckpt::ByteReader& in) {
  exec::EvalResult r;
  r.reward = in.f32();
  r.sim_duration = in.f64();
  r.params = in.u64();
  r.timed_out = in.flag();
  r.cache_hit = in.flag();
  r.shared_hit = in.flag();
  r.train_wall_ms = in.f64();
  r.rung = in.u32();
  return r;
}

/// Shared between SearchDriver and resume_search: validates the cluster and
/// resolves the batch default, so both paths run the exact same config.
SearchConfig normalized(SearchConfig config) {
  if (config.cluster.num_agents == 0 || config.cluster.workers_per_agent == 0) {
    throw std::invalid_argument("SearchDriver: agents and workers must be positive");
  }
  if (config.batch_per_agent == 0) {
    config.batch_per_agent = config.cluster.workers_per_agent;
  }
  config.ladder.validate();  // throws on a malformed (enabled) ladder
  return config;
}

/// The whole search as a resumable object: everything SearchDriver::run()
/// used to hold in locals is a member, so the event loop can serialize it at
/// a safe point (between completions) and a later process can reload it and
/// continue the exact event sequence. Construction rebuilds the pure,
/// config-derived parts (evaluator, PS skeleton, agent seeding); bootstrap()
/// starts a fresh run, restore() overwrites the mutable state from a
/// snapshot payload instead.
class SearchRun {
 public:
  SearchRun(const space::SearchSpace& space, const data::Dataset& dataset,
            SearchConfig config /* pre-normalized */, tensor::ThreadPool* pool);

  void bootstrap();
  void restore(const ckpt::SnapshotHeader& header, ckpt::ByteReader& in);
  SearchResult run();

 private:
  bool process_completion(const Completion& done);  // true = converged, stop
  bool dispatch_faulty(AgentState& agent, std::vector<double>& worker_free,
                       const exec::EvalResult& r, EvalRecord& rec, double t,
                       double& batch_done, std::size_t budget_units);
  void start_cycle(AgentState& agent, double t);
  void a2c_begin_round(double resume);
  void a2c_release_stuck(double now);
  void init_checkpointing(double from_t);
  void maybe_checkpoint(double t);
  void publish_progress(double t, bool finished);
  void serialize_state(ckpt::ByteWriter& w) const;

  const space::SearchSpace* space_;
  const data::Dataset* dataset_;
  SearchConfig config_;
  tensor::ThreadPool* pool_;
  std::size_t N_;
  std::size_t W_;
  std::size_t M_;
  bool rl_enabled_;
  bool evolution_;
  // The fault plan is consulted only when non-null AND non-empty, so an
  // injector built from an empty plan is indistinguishable from no injector:
  // bit-identical results, identical config fingerprint.
  const exec::FaultInjector* fx_;
  exec::TrainingEvaluator evaluator_;
  // Successive-halving fidelity ladder; disengaged (nullopt) unless
  // SearchConfig::ladder enables it. When present it replaces evaluator_ on
  // the miss path and supplies the agent/shared cache contexts.
  std::optional<exec::FidelityLadder> ladder_;
  // Cross-tenant shared cache (null = classic single-search behaviour) and
  // this search's evaluation-context key, resolved once — every shared
  // lookup/insert/erase uses the same (context, arch) address.
  exec::SharedEvalCache* shared_;
  std::string shared_ctx_;
  float floor_reward_;
  exec::UtilizationMonitor monitor_;
  std::optional<Instruments> inst_;
  std::optional<ParameterServer> ps_;
  std::vector<AgentState> agents_;

  SearchResult result_;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>> queue_;
  std::size_t seq_ = 0;
  std::size_t real_evals_ = 0;
  bool budget_exhausted_ = false;
  double a2c_round_time_ = 0.0;
  // Number of agents of the current A2C round still to harvest; when it hits
  // zero with the barrier stuck (drops / deaths) the round is force-released.
  std::size_t a2c_outstanding_ = 0;
  double last_completion_ = 0.0;

  // Checkpointing (all inert when SearchConfig::checkpoint is null).
  std::optional<ckpt::CheckpointWriter> writer_;
  double next_due_ = std::numeric_limits<double>::infinity();
  /// Journal events that existed before this process (snapshot watermark);
  /// journal_base_ + journal->size() is the run-cumulative event count.
  std::uint64_t journal_base_ = 0;
  std::string fingerprint_;
};

SearchRun::SearchRun(const space::SearchSpace& space, const data::Dataset& dataset,
                     SearchConfig config, tensor::ThreadPool* pool)
    : space_(&space),
      dataset_(&dataset),
      config_(std::move(config)),
      pool_(pool),
      N_(config_.cluster.num_agents),
      W_(config_.cluster.workers_per_agent),
      M_(config_.batch_per_agent),
      rl_enabled_(config_.strategy == SearchStrategy::kA3C ||
                  config_.strategy == SearchStrategy::kA2C),
      evolution_(config_.strategy == SearchStrategy::kEvolution),
      fx_((config_.faults != nullptr && config_.faults->enabled()) ? config_.faults : nullptr),
      evaluator_(space, dataset, config_.fidelity, config_.cost),
      ladder_(config_.ladder.enabled()
                  ? std::make_optional<exec::FidelityLadder>(space, dataset, config_.ladder,
                                                             config_.cost)
                  : std::nullopt),
      shared_(config_.shared_cache),
      shared_ctx_(shared_ != nullptr
                      ? (ladder_ ? ladder_->context_key() : evaluator_.context_key())
                      : std::string()),
      floor_reward_(evaluator_.reward_floor()),
      monitor_(config_.cluster.total_workers()) {
  if (shared_ != nullptr && ladder_) {
    // Every rung consults (and feeds) the process-wide store under its own
    // rung context, so promotions can be seeded by another tenant's rungs.
    ladder_->set_shared_cache(shared_, config_.tenant_id);
  }
  if (config_.telemetry != nullptr) {
    inst_.emplace(*config_.telemetry);
    evaluator_.set_telemetry(config_.telemetry);
    if (ladder_) ladder_->set_telemetry(config_.telemetry);
  }

  // All agents start from the same policy parameters, held by the PS.
  if (rl_enabled_) {
    rl::Controller init(space_->arities(), config_.seed);
    ps_.emplace(init.get_flat(),
                config_.strategy == SearchStrategy::kA2C ? ParameterServer::Mode::kSync
                                                         : ParameterServer::Mode::kAsync,
                N_, config_.async_window);
    ps_->set_telemetry(config_.telemetry);
    if (fx_ != nullptr) ps_->set_absent_timeout(fx_->plan().barrier_timeout_seconds);
  }

  tensor::Rng seeder(config_.seed);
  agents_.resize(N_);
  for (std::size_t i = 0; i < N_; ++i) {
    agents_[i].id = i;
    agents_[i].rng = seeder.split(1000 + i);
    agents_[i].eval_seed = seeder.split(5000 + i).next_u64();
    // With a ladder the agent cache wraps it instead of the flat evaluator,
    // so the cache namespace is the ladder-level context — disjoint from
    // every flat key and every rung key.
    agents_[i].cache = std::make_unique<exec::CachedEvaluator>(
        ladder_ ? static_cast<const exec::Evaluator&>(*ladder_)
                : static_cast<const exec::Evaluator&>(evaluator_));
    agents_[i].cache->set_telemetry(config_.telemetry);
    if (rl_enabled_) {
      agents_[i].controller.emplace(space_->arities(), config_.seed + 17 * i);
      agents_[i].controller->set_telemetry(config_.telemetry);
    }
  }
}

void SearchRun::bootstrap() {
  if (inst_ && inst_->journal != nullptr) {
    inst_->journal->append(obs::JournalEventType::kRunStarted, 0.0, obs::kNoAgent,
                           {{"agents", static_cast<double>(N_)},
                            {"workers", static_cast<double>(W_)},
                            {"batch", static_cast<double>(M_)},
                            {"wall_time_s", config_.wall_time_seconds},
                            {"strategy", static_cast<double>(config_.strategy)},
                            {"seed", static_cast<double>(config_.seed)}});
  }

  // Register the plan's worker crashes up front: the planned death times are
  // known (a crash schedule, like a maintenance window), the capacity loss
  // leaves the utilization denominator from the crash on, and the journal
  // records each at t=0 with the crash time in the payload so the watchdog's
  // event clock never runs ahead of the search.
  if (fx_ != nullptr) {
    for (AgentState& agent : agents_) {
      agent.crash_at.assign(W_, std::numeric_limits<double>::infinity());
      for (std::size_t w = 0; w < W_; ++w) {
        const double when = fx_->crash_time(agent.id, w);
        if (when >= config_.wall_time_seconds) continue;  // never felt by this run
        agent.crash_at[w] = when;
        ++result_.crashed_workers;
        monitor_.add_capacity_loss(when);
        if (inst_) {
          inst_->fault_crashes->inc();
          if (inst_->journal != nullptr) {
            inst_->journal->append(obs::JournalEventType::kWorkerCrashed, 0.0,
                                   static_cast<std::uint32_t>(agent.id),
                                   {{"worker", static_cast<double>(w)}, {"at", when}});
          }
        }
      }
    }
  }

  journal_base_ = 0;
  init_checkpointing(0.0);

  // ---- bootstrap: every agent starts at t = 0 ----
  if (config_.strategy == SearchStrategy::kA2C) {
    a2c_begin_round(0.0);
  } else {
    for (AgentState& agent : agents_) start_cycle(agent, 0.0);
  }
}

SearchResult SearchRun::run() {
  // ---- event loop over batch completions ----
  // The scope closes with this block, before the telemetry snapshot below —
  // a still-open scope would show up with zero calls in the profile.
  {
    NCNAS_PROF_SCOPE("driver/run");
    while (!queue_.empty()) {
      const Completion done = queue_.top();
      queue_.pop();
      if (process_completion(done)) break;
      // The gap between two completions is the one point where no batch is
      // half-harvested and no lambda is mid-flight: the members above are the
      // complete search state, which is what makes this the snapshot point.
      maybe_checkpoint(done.time);
      // Same safe point feeds the live exporter. The due() guard is one
      // relaxed atomic load, and publication only *reads* search state, so
      // the exporter-off and exporter-on event sequences are identical.
      if (inst_ && inst_->exporter != nullptr && inst_->exporter->due(done.time)) {
        publish_progress(done.time, /*finished=*/false);
      }
    }
  }

  if (result_.end_time == 0.0) {
    result_.end_time = std::min(config_.wall_time_seconds, std::max(last_completion_, 1.0));
  }

  // Order the record stream by completion time and drop post-deadline tails.
  std::ranges::stable_sort(result_.evals, [](const EvalRecord& a, const EvalRecord& b) {
    return a.time < b.time;
  });
  std::erase_if(result_.evals, [&](const EvalRecord& e) {
    return e.time > config_.wall_time_seconds;
  });

  std::unordered_set<std::string> unique;
  for (const EvalRecord& e : result_.evals) unique.insert(space::arch_key(e.arch));
  result_.unique_archs = unique.size();

  result_.utilization = monitor_.series(result_.end_time, result_.utilization_bucket);

  if (inst_ && inst_->journal != nullptr) {
    float best = -std::numeric_limits<float>::infinity();
    for (const EvalRecord& e : result_.evals) best = std::max(best, e.reward);
    inst_->journal->append(
        obs::JournalEventType::kRunFinished, result_.end_time, obs::kNoAgent,
        {{"end_time_s", result_.end_time},
         {"evals", static_cast<double>(result_.evals.size())},
         {"best_reward", result_.evals.empty() ? 0.0 : static_cast<double>(best)},
         {"cache_hits", static_cast<double>(result_.cache_hits)},
         {"timeouts", static_cast<double>(result_.timeouts)},
         {"ppo_updates", static_cast<double>(result_.ppo_updates)},
         {"converged", result_.converged_early ? 1.0 : 0.0},
         {"wall_time_s", config_.wall_time_seconds}});
  }

  // Final unconditional publication, after run_finished hits the journal so
  // the last delta carries it: scrape-at-end totals reconcile with
  // summarize_journal, and /healthz flips to "run finished".
  if (inst_ && inst_->exporter != nullptr) {
    publish_progress(result_.end_time, /*finished=*/true);
  }

  if (config_.telemetry != nullptr) {
    result_.telemetry_enabled = true;
    result_.telemetry =
        std::make_shared<const obs::TelemetrySnapshot>(config_.telemetry->snapshot());
  }
  return std::move(result_);
}

// Builds the /progress view from the members the event loop already owns and
// hands it to the exporter. Strictly read-only over search state — no RNG
// draws, no cache touches, no reordering — which is what keeps exporter-on
// runs bit-identical to exporter-off runs.
void SearchRun::publish_progress(double t, bool finished) {
  obs::Exporter& exporter = *inst_->exporter;
  obs::ProgressSnapshot p;
  p.virtual_time = t;
  p.wall_time_seconds = config_.wall_time_seconds;
  p.strategy = strategy_name(config_.strategy);
  p.finished = finished;
  p.converged = result_.converged_early;
  p.evals_done = result_.evals.size();
  p.real_evals = real_evals_;
  p.cache_hits = result_.cache_hits;
  p.timeouts = result_.timeouts;
  p.ppo_updates = result_.ppo_updates;
  p.batches_in_flight = queue_.size();
  p.retries = result_.retries;
  p.exhausted = result_.exhausted;
  p.lost_results = result_.lost_results;
  p.crashed_workers = result_.crashed_workers;
  p.dead_agents = result_.dead_agents;

  struct Acc {
    std::size_t evals = 0;
    std::size_t hits = 0;
    std::size_t timeouts = 0;
    float best = -std::numeric_limits<float>::infinity();
    bool has_best = false;
  };
  std::vector<Acc> acc(N_);
  for (const EvalRecord& e : result_.evals) {
    if (e.agent >= N_) continue;
    Acc& a = acc[e.agent];
    ++a.evals;
    if (e.cache_hit) ++a.hits;
    if (e.timed_out) ++a.timeouts;
    if (e.reward > a.best) a.best = e.reward;
    a.has_best = true;
    if (e.reward > p.best_reward || !p.has_best) {
      p.best_reward = e.reward;
      p.has_best = true;
    }
  }
  p.agents.reserve(N_);
  for (std::size_t i = 0; i < N_; ++i) {
    obs::AgentProgress ap;
    ap.id = static_cast<std::uint32_t>(i);
    ap.status = agents_[i].dead        ? "dead"
                : agents_[i].stopped   ? "converged"
                : finished             ? "stopped"
                                       : "running";
    ap.evals = acc[i].evals;
    ap.cache_hits = acc[i].hits;
    ap.timeouts = acc[i].timeouts;
    ap.cached_streak = agents_[i].cached_streak;
    ap.best_reward = acc[i].has_best ? acc[i].best : 0.0f;
    ap.has_best = acc[i].has_best;
    p.agents.push_back(std::move(ap));
  }
  for (const EvalRecord& e : result_.top_k(exporter.config().top_k)) {
    p.top.push_back({space::arch_key(e.arch), e.reward, e.params,
                     static_cast<std::uint32_t>(e.agent)});
  }
  if (finished) {
    exporter.publish(t, std::move(p));
  } else {
    exporter.tick(t, std::move(p));
  }
}

// ---- fault-aware dispatch: one real task with retries and backoff -----
// Only reached when a fault plan is active. Walks the retry loop on the
// virtual clock: each attempt picks the earliest-start live worker, asks
// the injector for this attempt's verdict, and on failure re-dispatches
// after capped exponential backoff until success or the retry budget is
// spent (the record is then floored). Returns false when no live worker
// remains — the caller marks the agent dead. The real training behind the
// record ran once up front; faults only replay its virtual-time cost.
bool SearchRun::dispatch_faulty(AgentState& agent, std::vector<double>& worker_free,
                                const exec::EvalResult& r, EvalRecord& rec, double t,
                                double& batch_done, std::size_t budget_units) {
  const std::string key = space::arch_key(rec.arch);
  const auto aid = static_cast<std::uint32_t>(agent.id);
  const std::size_t max_retries = fx_->plan().max_retries;
  const auto floor_record = [&](double at, std::size_t attempts) {
    rec.time = at;
    rec.reward = floor_reward_;
    rec.failed = true;
    rec.attempts = attempts;
    batch_done = std::max(batch_done, at);
    ++result_.exhausted;
    // The cache was primed with the real result before dispatch; a task
    // that never delivered must not leave that result behind (a later
    // regeneration re-evaluates instead of replaying a non-measurement).
    // The shared cache mirrors the erase: failed evals never poison it for
    // other tenants either.
    if (config_.use_cache) agent.cache->erase(rec.arch);
    if (shared_ != nullptr) shared_->erase(shared_ctx_, key);
    if (inst_) {
      inst_->fault_exhausted->inc();
      if (inst_->journal != nullptr) {
        inst_->journal->append(obs::JournalEventType::kEvalExhausted, at, aid,
                               {{"attempts", static_cast<double>(attempts)},
                                {"reward", static_cast<double>(floor_reward_)}});
      }
    }
  };

  std::size_t attempt = 0;
  double ready = t;
  for (;;) {
    // Earliest-start live worker; a worker is usable only when the task
    // can begin before its planned crash. With no crashes this reduces to
    // the fault-free earliest-free choice.
    std::size_t slot = W_;
    double start = std::numeric_limits<double>::infinity();
    for (std::size_t w = 0; w < W_; ++w) {
      const double s = std::max(worker_free[w], ready);
      if (s >= agent.crash_at[w]) continue;
      if (s < start) {
        start = s;
        slot = w;
      }
    }
    if (slot == W_) {
      floor_record(ready, attempt);
      return false;  // agent has no live worker left
    }

    const exec::FaultInjector::TaskFault tf = fx_->task_fault(agent.id, key, attempt);
    const double dur = r.sim_duration * tf.slowdown;
    const double end = start + dur;
    const double crash = agent.crash_at[slot];

    double fail_time = 0.0;
    bool emit_failed = true;  // lost results carry their own event type
    double fail_reason = 0.0;  // 0 injected failure, 1 worker crash
    if (end > crash) {
      // The worker dies mid-task and takes the task down with it.
      if (crash > start) monitor_.add_busy_interval(start, crash);
      worker_free[slot] = crash;
      fail_time = crash;
      fail_reason = 1.0;
    } else if (tf.fail) {
      fail_time = start + dur * tf.fail_frac;
      monitor_.add_busy_interval(start, fail_time);
      worker_free[slot] = fail_time;
    } else if (tf.lost) {
      // The task ran to completion; the result vanished in flight, so the
      // full duration is paid and the attempt still counts as failed.
      monitor_.add_busy_interval(start, end);
      worker_free[slot] = end;
      fail_time = end;
      emit_failed = false;
      ++result_.lost_results;
      if (inst_) {
        inst_->fault_lost->inc();
        if (inst_->journal != nullptr) {
          inst_->journal->append(obs::JournalEventType::kResultLost, end, aid,
                                 {{"attempt", static_cast<double>(attempt)},
                                  {"worker", static_cast<double>(slot)},
                                  {"duration_s", dur}});
        }
      }
    } else {
      // Success (possibly slowed — the watchdog sees the stretched span).
      worker_free[slot] = end;
      monitor_.add_busy_interval(start, end);
      rec.time = end;
      rec.attempts = attempt + 1;
      batch_done = std::max(batch_done, end);
      real_evals_ += budget_units;
      if (inst_) {
        inst_->trace->span("eval", "exec", start, dur, aid,
                           {{"reward", rec.reward},
                            {"timed_out", rec.timed_out ? 1.0 : 0.0}});
        if (inst_->journal != nullptr) {
          inst_->journal->append(obs::JournalEventType::kEvalDispatched, start, aid,
                                 {{"duration_s", dur},
                                  {"worker", static_cast<double>(slot)},
                                  {"train_wall_ms", r.train_wall_ms},
                                  {"attempt", static_cast<double>(attempt)}});
        }
      }
      return true;
    }

    if (emit_failed && inst_) {
      inst_->fault_failures->inc();
      if (inst_->journal != nullptr) {
        inst_->journal->append(obs::JournalEventType::kEvalFailed, fail_time, aid,
                               {{"attempt", static_cast<double>(attempt)},
                                {"worker", static_cast<double>(slot)},
                                {"reason", fail_reason}});
      }
    }
    ++attempt;
    if (attempt > max_retries) {
      floor_record(fail_time, attempt);
      real_evals_ += budget_units;  // the failed attempts occupied real worker time
      return true;
    }
    const double backoff = fx_->backoff(attempt);
    ready = fail_time + backoff;
    ++result_.retries;
    if (inst_) {
      inst_->fault_retries->inc();
      if (inst_->journal != nullptr) {
        inst_->journal->append(obs::JournalEventType::kEvalRetried, ready, aid,
                               {{"attempt", static_cast<double>(attempt)},
                                {"backoff_s", backoff}});
      }
    }
  }
}

// ---- one agent cycle: sample M, evaluate, occupy workers, schedule ----
void SearchRun::start_cycle(AgentState& agent, double t) {
  NCNAS_PROF_SCOPE("driver/cycle");
  if (agent.dead) {  // lost every worker; nothing left to run a batch on
    agent.stopped = true;
    return;
  }
  if (t >= config_.wall_time_seconds || budget_exhausted_) {
    agent.stopped = true;
    return;
  }
  if (rl_enabled_) {
    agent.theta_pull = ps_->pull(agent.id);
    agent.controller->set_flat(agent.theta_pull);
  }
  agent.rollouts.clear();
  agent.archs.clear();
  agent.records.clear();
  for (std::size_t m = 0; m < M_; ++m) {
    if (rl_enabled_) {
      agent.rollouts.push_back(agent.controller->sample(agent.rng));
      agent.archs.push_back(agent.rollouts.back().actions);
    } else if (evolution_ && agent.population.size() >= config_.evolution.population) {
      // Tournament selection over the aging window, then a single-gene
      // mutation (regularized-evolution child generation).
      const auto& pop = agent.population;
      std::size_t best_idx = agent.rng.uniform_int(pop.size());
      for (std::size_t round = 1; round < config_.evolution.tournament; ++round) {
        const std::size_t idx = agent.rng.uniform_int(pop.size());
        if (pop[idx].second > pop[best_idx].second) best_idx = idx;
      }
      space::ArchEncoding child = pop[best_idx].first;
      const std::size_t gene = agent.rng.uniform_int(child.size());
      const std::size_t arity = space_->decisions()[gene].arity;
      if (arity > 1) {
        std::uint16_t v = child[gene];
        while (v == child[gene]) {
          v = static_cast<std::uint16_t>(agent.rng.uniform_int(arity));
        }
        child[gene] = v;
      }
      agent.archs.push_back(std::move(child));
    } else {
      agent.archs.push_back(space_->random_arch(agent.rng));
    }
  }

  // Resolve against the agent's cache, then the process-wide shared cache;
  // farm unique misses out for real. Shared lookups run serially on the
  // driver's event loop (never from pool threads), and a shared hit also
  // primes the agent cache (flags cleared) so later regenerations stay
  // agent-local and are not double-counted as shared.
  std::vector<std::optional<exec::EvalResult>> results(M_);
  std::vector<std::size_t> miss_index;           // batch position per unique miss
  std::unordered_set<std::string> miss_keys;
  for (std::size_t m = 0; m < M_; ++m) {
    if (config_.use_cache) results[m] = agent.cache->lookup(agent.archs[m]);
    if (!results[m] && shared_ != nullptr) {
      results[m] = shared_->lookup(shared_ctx_, space::arch_key(agent.archs[m]),
                                   config_.tenant_id);
      if (results[m] && config_.use_cache) {
        exec::EvalResult primed = *results[m];
        primed.cache_hit = false;
        primed.shared_hit = false;
        agent.cache->insert(agent.archs[m], primed);
      }
    }
    if (!results[m] && miss_keys.insert(space::arch_key(agent.archs[m])).second) {
      miss_index.push_back(m);
    }
  }
  std::vector<exec::EvalResult> fresh(miss_index.size());
  // Budget units per batch position: 1 per flat training; with a ladder,
  // the number of rung trainings the candidate consumed (its rung-weighted
  // cost — what max_evaluations and serve eval-budget quotas meter).
  std::vector<std::size_t> budget_units(M_, 1);
  if (ladder_) {
    std::vector<space::ArchEncoding> miss_archs;
    miss_archs.reserve(miss_index.size());
    for (const std::size_t m : miss_index) miss_archs.push_back(agent.archs[m]);
    std::vector<exec::LadderRungStats> rung_stats;
    std::vector<exec::LadderOutcome> outcomes =
        ladder_->evaluate_batch(miss_archs, agent.eval_seed, &rung_stats, pool_);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      fresh[i] = outcomes[i].result;
      budget_units[miss_index[i]] = outcomes[i].trainings;
    }
    // Rung accounting and journal events, emitted at batch dispatch time
    // (no deadline filter, like the fault counters): one ladder_rung event
    // per populated rung, reconciling 1:1 with the result counters.
    for (const exec::LadderRungStats& rs : rung_stats) {
      result_.ladder_trainings += rs.trainings;
      result_.ladder_promotions += rs.survivors;
      result_.ladder_warm_starts += rs.warm_starts;
      result_.ladder_rung_hits += rs.rung_hits;
      if (inst_) {
        inst_->fidelity_trainings->inc(rs.trainings);
        inst_->fidelity_promotions->inc(rs.survivors);
        inst_->fidelity_warm_starts->inc(rs.warm_starts);
        inst_->fidelity_rung_hits->inc(rs.rung_hits);
        if (inst_->journal != nullptr) {
          inst_->journal->append(obs::JournalEventType::kLadderRung, t,
                                 static_cast<std::uint32_t>(agent.id),
                                 {{"rung", static_cast<double>(rs.rung)},
                                  {"candidates", static_cast<double>(rs.candidates)},
                                  {"survivors", static_cast<double>(rs.survivors)},
                                  {"trainings", static_cast<double>(rs.trainings)},
                                  {"warm_starts", static_cast<double>(rs.warm_starts)},
                                  {"rung_hits", static_cast<double>(rs.rung_hits)},
                                  {"timeouts", static_cast<double>(rs.timeouts)}});
        }
      }
    }
  } else {
    const auto eval_one = [&](std::size_t i) {
      fresh[i] = evaluator_.evaluate(agent.archs[miss_index[i]], agent.eval_seed);
    };
    if (pool_ != nullptr && miss_index.size() > 1) {
      tensor::parallel_for(*pool_, miss_index.size(), eval_one);
    } else {
      for (std::size_t i = 0; i < miss_index.size(); ++i) eval_one(i);
    }
  }
  for (std::size_t i = 0; i < miss_index.size(); ++i) {
    agent.cache->insert(agent.archs[miss_index[i]], fresh[i]);
    if (shared_ != nullptr) {
      shared_->insert(shared_ctx_, space::arch_key(agent.archs[miss_index[i]]),
                      config_.tenant_id, fresh[i]);
    }
    results[miss_index[i]] = fresh[i];  // first occurrence stays a real task
  }
  // Within-batch duplicates of a fresh miss read the cache result.
  for (std::size_t m = 0; m < M_; ++m) {
    if (!results[m]) results[m] = agent.cache->lookup(agent.archs[m]);
  }

  // Worker occupancy: non-cached tasks dispatch onto the agent's W
  // dedicated nodes (earliest-free first); cached results cost nothing.
  std::vector<double> worker_free(W_, t);
  double batch_done = t;
  for (std::size_t m = 0; m < M_; ++m) {
    const exec::EvalResult& r = *results[m];
    EvalRecord rec;
    rec.reward = r.reward;
    rec.params = r.params;
    rec.sim_duration = r.sim_duration;
    rec.cache_hit = r.cache_hit;
    rec.shared_hit = r.shared_hit;
    rec.timed_out = r.timed_out;
    rec.rung = r.rung;
    rec.agent = agent.id;
    rec.arch = agent.archs[m];
    if (r.cache_hit) {
      rec.time = t;
      if (inst_) {
        inst_->trace->instant("eval_cached", "exec", t, static_cast<std::uint32_t>(agent.id),
                              {{"reward", rec.reward},
                               {"shared", rec.shared_hit ? 1.0 : 0.0}});
      }
    } else if (fx_ == nullptr) {
      const auto slot = static_cast<std::size_t>(
          std::min_element(worker_free.begin(), worker_free.end()) - worker_free.begin());
      const double start = worker_free[slot];
      const double end = start + r.sim_duration;
      worker_free[slot] = end;
      monitor_.add_busy_interval(start, end);
      rec.time = end;
      batch_done = std::max(batch_done, end);
      real_evals_ += budget_units[m];
      if (inst_) {
        inst_->trace->span("eval", "exec", start, r.sim_duration,
                           static_cast<std::uint32_t>(agent.id),
                           {{"reward", rec.reward},
                            {"timed_out", rec.timed_out ? 1.0 : 0.0}});
        if (inst_->journal != nullptr) {
          inst_->journal->append(obs::JournalEventType::kEvalDispatched, start,
                                 static_cast<std::uint32_t>(agent.id),
                                 {{"duration_s", r.sim_duration},
                                  {"worker", static_cast<double>(slot)},
                                  {"train_wall_ms", r.train_wall_ms}});
        }
      }
    } else if (!dispatch_faulty(agent, worker_free, r, rec, t, batch_done, budget_units[m]) &&
               !agent.dead) {
      // First task that found no live worker: the agent's pool is gone.
      // Remaining tasks of this batch floor the same way; the batch still
      // completes (and is harvested) so PPO reward vectors stay aligned.
      agent.dead = true;
      agent.stopped = true;
      ++result_.dead_agents;
      if (inst_) {
        inst_->fault_dead->inc();
        if (inst_->journal != nullptr) {
          inst_->journal->append(obs::JournalEventType::kAgentDead, t,
                                 static_cast<std::uint32_t>(agent.id),
                                 {{"workers", static_cast<double>(W_)}});
        }
      }
    }
    agent.records.push_back(std::move(rec));
  }
  if (config_.max_evaluations != 0 && real_evals_ >= config_.max_evaluations) {
    budget_exhausted_ = true;
  }
  const double scheduled = std::max(batch_done, t + 1e-3);
  if (inst_) {
    inst_->cycles->inc();
    inst_->cycle_latency->observe(scheduled - t);
    inst_->trace->span("agent_cycle", "driver", t, scheduled - t,
                       static_cast<std::uint32_t>(agent.id),
                       {{"batch", static_cast<double>(M_)},
                        {"misses", static_cast<double>(miss_index.size())}});
  }
  queue_.push({scheduled, seq_++, agent.id});
}

// ---- A2C round bookkeeping --------------------------------------------
// Starts (or restarts) a synchronized round and counts how many agents
// actually queued a batch — including one that died mid-dispatch, whose
// floored batch still completes and is harvested. Wall/budget-stopped and
// already-dead agents queue nothing.
void SearchRun::a2c_begin_round(double resume) {
  a2c_round_time_ = 0.0;
  a2c_outstanding_ = 0;
  for (AgentState& a : agents_) {
    const bool was_dead = a.dead;
    start_cycle(a, resume);
    if (!was_dead && (!a.stopped || a.dead)) ++a2c_outstanding_;
  }
}

// When every agent of the round has been harvested but the barrier still
// holds (dropped exchanges, dead agents), release whatever arrived after
// the plan's absent-agent timeout and start the next round. If nothing
// arrived at all the round restarts without a parameter update.
void SearchRun::a2c_release_stuck(double now) {
  if (fx_ == nullptr || a2c_outstanding_ != 0) return;
  const double release_t =
      std::max(a2c_round_time_, now) + fx_->plan().barrier_timeout_seconds;
  (void)ps_->try_release(release_t);
  a2c_begin_round(release_t + config_.agent_overhead_seconds);
}

bool SearchRun::process_completion(const Completion& done) {
  NCNAS_PROF_SCOPE("driver/harvest");
  AgentState& agent = agents_[done.agent];
  const double t = done.time;
  last_completion_ = std::max(last_completion_, t);

  // Harvest the batch.
  bool all_cached = true;
  std::vector<float> rewards;
  rewards.reserve(agent.records.size());
  for (EvalRecord& rec : agent.records) {
    all_cached = all_cached && rec.cache_hit;
    if (rec.cache_hit) rec.time = t;  // resolved when the batch closes
    rewards.push_back(rec.reward);
    if (rec.cache_hit) ++result_.cache_hits;
    if (rec.shared_hit) ++result_.shared_cache_hits;
    if (rec.timed_out) ++result_.timeouts;
    if (inst_) {
      inst_->evals->inc();
      if (rec.cache_hit) {
        inst_->cache_hits->inc();
        if (rec.shared_hit) inst_->shared_hits->inc();
      } else {
        inst_->real_evals->inc();
        inst_->eval_sim->observe(rec.sim_duration);
      }
      if (rec.timed_out) inst_->timeouts->inc();
      // Journal events are emitted at the same harvest point the counters
      // increment, with the record's own completion time, so a journal
      // replay reconciles with both the counters and SearchResult.evals.
      if (inst_->journal != nullptr) {
        const auto aid = static_cast<std::uint32_t>(agent.id);
        if (rec.cache_hit) {
          std::vector<obs::JournalField> fields{
              {"reward", rec.reward},
              {"timed_out", rec.timed_out ? 1.0 : 0.0}};
          // Only shared hits carry the marker, so pre-existing journals (and
          // their replays) are byte-for-byte unchanged.
          if (rec.shared_hit) fields.push_back({"shared", 1.0});
          inst_->journal->append(obs::JournalEventType::kEvalCached, rec.time, aid,
                                 std::move(fields));
        } else {
          std::vector<obs::JournalField> fields{
              {"reward", rec.reward},
              {"duration_s", rec.sim_duration},
              {"timed_out", rec.timed_out ? 1.0 : 0.0},
              {"params", static_cast<double>(rec.params)}};
          if (rec.failed) {
            fields.push_back({"failed", 1.0});
            fields.push_back({"attempts", static_cast<double>(rec.attempts)});
          }
          // Only ladder runs reach a non-zero rung, so flat journals (and
          // their replays) are byte-for-byte unchanged.
          if (rec.rung != 0) fields.push_back({"rung", static_cast<double>(rec.rung)});
          inst_->journal->append(obs::JournalEventType::kEvalFinished, rec.time, aid,
                                 std::move(fields));
        }
        if (rec.timed_out) {
          inst_->journal->append(obs::JournalEventType::kEvalTimeout, rec.time, aid,
                                 {{"duration_s", rec.sim_duration}});
        }
      }
    }
    result_.evals.push_back(rec);
  }
  agent.cached_streak = all_cached ? agent.cached_streak + 1 : 0;
  if (inst_ && inst_->journal != nullptr &&
      agent.cached_streak == config_.convergence_streak) {
    inst_->journal->append(obs::JournalEventType::kAgentConverged, t,
                           static_cast<std::uint32_t>(agent.id),
                           {{"streak", static_cast<double>(agent.cached_streak)}});
  }
  if (inst_) {
    std::size_t min_streak = agents_[0].cached_streak;
    for (const AgentState& a : agents_) min_streak = std::min(min_streak, a.cached_streak);
    inst_->streak_min->set(static_cast<double>(min_streak));
  }

  if (config_.strategy == SearchStrategy::kEvolution) {
    for (const EvalRecord& rec : agent.records) {
      agent.population.emplace_back(rec.arch, rec.reward);
      if (agent.population.size() > config_.evolution.population) {
        agent.population.pop_front();  // aging: oldest individual dies
      }
    }
  }

  // Convergence: every agent keeps regenerating cached architectures.
  // Dead agents can't regenerate anything, so they are exempt — as long as
  // at least one agent survived to actually converge.
  const bool converged =
      std::ranges::all_of(agents_,
                          [&](const AgentState& a) {
                            return (fx_ != nullptr && a.dead) ||
                                   a.cached_streak >= config_.convergence_streak;
                          }) &&
      std::ranges::any_of(agents_, [](const AgentState& a) { return !a.dead; });
  if (converged) {
    result_.converged_early = true;
    result_.end_time = t;
    return true;
  }

  if (!rl_enabled_) {
    start_cycle(agent, t + config_.agent_overhead_seconds);
    return false;
  }

  if (fx_ != nullptr && agent.dead) {
    // The dead agent's final (floored) batch was harvested above; there is
    // no controller state worth updating and nothing to submit. In A2C the
    // barrier must stop waiting for it — its removal may itself complete
    // the round the surviving agents are parked on.
    if (config_.strategy == SearchStrategy::kA2C) {
      if (a2c_outstanding_ > 0) --a2c_outstanding_;
      a2c_round_time_ = std::max(a2c_round_time_, t);
      if (ps_->deactivate(agent.id, t)) {
        a2c_begin_round(a2c_round_time_ + config_.agent_overhead_seconds);
      } else {
        a2c_release_stuck(t);
      }
    }
    return false;
  }

  // Local PPO epochs, then exchange the parameter delta through the PS.
  const rl::PpoStats ppo_stats = agent.controller->ppo_update(
      agent.rollouts, rewards, config_.ppo, t, static_cast<std::uint32_t>(agent.id));
  ++result_.ppo_updates;
  if (inst_) {
    inst_->ppo_updates->inc();
    inst_->trace->instant("ppo_update", "rl", t, static_cast<std::uint32_t>(agent.id),
                          {{"policy_loss", ppo_stats.policy_loss},
                           {"value_loss", ppo_stats.value_loss},
                           {"entropy", ppo_stats.entropy},
                           {"approx_kl", ppo_stats.approx_kl}});
  }
  std::vector<float> delta = agent.controller->get_flat();
  for (std::size_t i = 0; i < delta.size(); ++i) delta[i] -= agent.theta_pull[i];

  if (config_.strategy == SearchStrategy::kA3C) {
    if (fx_ == nullptr) {
      ps_->submit(agent.id, delta, t);
      start_cycle(agent, t + config_.agent_overhead_seconds);
    } else {
      const exec::FaultInjector::ExchangeFault ef =
          fx_->exchange_fault(agent.id, agent.exchange_seq++);
      double resume = t + config_.agent_overhead_seconds;
      if (ef.drop) {
        // The delta is lost in flight; the agent carries on with the stale
        // parameters it already holds.
        if (inst_) {
          inst_->fault_ps_dropped->inc();
          if (inst_->journal != nullptr) {
            inst_->journal->append(obs::JournalEventType::kPsDropped, t,
                                   static_cast<std::uint32_t>(agent.id), {{"mode", 1.0}});
          }
        }
      } else {
        if (ef.delay_seconds > 0.0) {
          resume += ef.delay_seconds;  // the exchange round trip stretches
          if (inst_) {
            inst_->fault_ps_delayed->inc();
            if (inst_->journal != nullptr) {
              inst_->journal->append(obs::JournalEventType::kPsDelayed, t,
                                     static_cast<std::uint32_t>(agent.id),
                                     {{"mode", 1.0}, {"delay_s", ef.delay_seconds}});
            }
          }
        }
        ps_->submit(agent.id, delta, t);
      }
      start_cycle(agent, resume);
    }
  } else {
    a2c_round_time_ = std::max(a2c_round_time_, t);
    if (fx_ == nullptr) {
      const bool round_complete = ps_->submit(agent.id, delta, t);
      if (round_complete) {
        const double resume = a2c_round_time_ + config_.agent_overhead_seconds;
        a2c_begin_round(resume);
      }
    } else {
      if (a2c_outstanding_ > 0) --a2c_outstanding_;
      const exec::FaultInjector::ExchangeFault ef =
          fx_->exchange_fault(agent.id, agent.exchange_seq++);
      bool round_complete = false;
      if (ef.drop) {
        // The delta never reaches the barrier; the agent idles while the
        // round is resolved for it (submit next round as usual).
        if (inst_) {
          inst_->fault_ps_dropped->inc();
          if (inst_->journal != nullptr) {
            inst_->journal->append(obs::JournalEventType::kPsDropped, t,
                                   static_cast<std::uint32_t>(agent.id), {{"mode", 0.0}});
          }
        }
      } else {
        double arrival = t;
        if (ef.delay_seconds > 0.0) {
          arrival += ef.delay_seconds;
          if (inst_) {
            inst_->fault_ps_delayed->inc();
            if (inst_->journal != nullptr) {
              inst_->journal->append(obs::JournalEventType::kPsDelayed, t,
                                     static_cast<std::uint32_t>(agent.id),
                                     {{"mode", 0.0}, {"delay_s", ef.delay_seconds}});
            }
          }
        }
        a2c_round_time_ = std::max(a2c_round_time_, arrival);
        round_complete = ps_->submit(agent.id, delta, arrival);
      }
      if (round_complete) {
        a2c_begin_round(a2c_round_time_ + config_.agent_overhead_seconds);
      } else {
        a2c_release_stuck(t);
      }
    }
  }
  return false;
}

void SearchRun::init_checkpointing(double from_t) {
  if (config_.checkpoint == nullptr) return;
  writer_.emplace(*config_.checkpoint);
  fingerprint_ = config_fingerprint(config_, space_->name());
  // The same formula runs after every write and on restore, so the snapshot
  // cadence of a resumed run lines up exactly with the uninterrupted one.
  const double interval = writer_->config().interval_seconds;
  next_due_ = (std::floor(from_t / interval) + 1.0) * interval;
}

void SearchRun::maybe_checkpoint(double t) {
  if (!writer_ || t < next_due_) return;
  NCNAS_PROF_SCOPE("driver/checkpoint");
  // Count and journal the snapshot *before* serializing, so the snapshot
  // carries its own ordinal and its own journal event: the watermark then
  // covers everything up to and including this checkpoint, and a resumed
  // run's counters reconcile with the merged journal 1:1.
  ++result_.checkpoints_written;
  if (inst_) inst_->checkpoints->inc();
  ckpt::ByteWriter payload;
  serialize_state(payload);
  if (inst_ && inst_->journal != nullptr) {
    inst_->journal->append(obs::JournalEventType::kCheckpointWritten, t, obs::kNoAgent,
                           {{"ordinal", static_cast<double>(result_.checkpoints_written)},
                            {"bytes", static_cast<double>(payload.size())}});
  }
  ckpt::SnapshotHeader header;
  header.fingerprint = fingerprint_;
  header.space_name = space_->name();
  header.virtual_time = t;
  header.journal_events =
      journal_base_ +
      (inst_ && inst_->journal != nullptr ? inst_->journal->size() : 0);
  header.ordinal = result_.checkpoints_written;
  const std::string path = writer_->write(header, payload.bytes());
  const double interval = writer_->config().interval_seconds;
  next_due_ = (std::floor(t / interval) + 1.0) * interval;
  const std::size_t abort_after = writer_->config().abort_after_snapshots;
  if (abort_after != 0 && writer_->session_writes() >= abort_after) {
    throw ckpt::SearchInterrupted(path);
  }
}

void SearchRun::serialize_state(ckpt::ByteWriter& w) const {
  // Prelude: enough config-derived shape for restore() to refuse a payload
  // that cannot belong to this search (fingerprint catches this first; the
  // prelude makes the failure mode a clean error even without one).
  w.u32(static_cast<std::uint32_t>(config_.strategy));
  w.u64(N_);
  w.u64(W_);
  w.u64(M_);

  // Event-loop globals.
  w.u64(seq_);
  w.u64(real_evals_);
  w.flag(budget_exhausted_);
  w.f64(a2c_round_time_);
  w.u64(a2c_outstanding_);
  w.f64(last_completion_);

  // Pending completions, drained from a copy in pop order. Re-pushing them
  // in this order rebuilds a heap with the identical pop sequence (time,
  // seq) — which is all the event loop observes.
  auto pending = queue_;
  w.u64(pending.size());
  while (!pending.empty()) {
    const Completion c = pending.top();
    pending.pop();
    w.f64(c.time);
    w.u64(c.seq);
    w.u64(c.agent);
  }

  // Partial result (records are pre-sort, exactly as the live vector).
  w.u64(result_.evals.size());
  for (const EvalRecord& e : result_.evals) put_record(w, e);
  w.f64(result_.end_time);
  w.flag(result_.converged_early);
  w.u64(result_.cache_hits);
  w.u64(result_.shared_cache_hits);
  w.u64(result_.timeouts);
  w.u64(result_.unique_archs);
  w.u64(result_.ppo_updates);
  w.u64(result_.retries);
  w.u64(result_.exhausted);
  w.u64(result_.lost_results);
  w.u64(result_.crashed_workers);
  w.u64(result_.dead_agents);
  w.u64(result_.checkpoints_written);
  w.u64(result_.resumes);
  w.u64(result_.ladder_trainings);
  w.u64(result_.ladder_promotions);
  w.u64(result_.ladder_warm_starts);
  w.u64(result_.ladder_rung_hits);

  // Utilization monitor.
  const exec::UtilizationMonitor::State ms = monitor_.export_state();
  w.u64(ms.intervals.size());
  for (const auto& [start, end] : ms.intervals) {
    w.f64(start);
    w.f64(end);
  }
  w.doubles(ms.losses);
  w.f64(ms.busy_seconds);

  // Parameter server.
  w.flag(ps_.has_value());
  if (ps_) {
    const ParameterServer::State s = ps_->export_state();
    w.floats(s.params);
    w.u64(s.pending.size());
    for (const auto& d : s.pending) w.floats(d);
    w.u64(s.submitted.size());
    for (const auto v : s.submitted) w.u8(v);
    w.u64(s.active.size());
    for (const auto v : s.active) w.u8(v);
    w.u64(s.active_count);
    w.u64(s.pending_count);
    w.f64(s.last_arrival);
    w.u64(s.recent.size());
    for (const auto& d : s.recent) w.floats(d);
    w.u64(s.recent_next);
    w.u64(s.updates_applied);
    w.u64(s.pulled_version.size());
    for (const auto v : s.pulled_version) w.u64(v);
    w.doubles(s.arrival_time);
  }

  // Per-agent state. crash_at is deliberately absent: it is a pure function
  // of the fault plan and the wall-time limit, recomputed on restore.
  for (const AgentState& a : agents_) {
    const tensor::RngState rs = a.rng.state();
    for (int i = 0; i < 4; ++i) w.u64(rs.s[i]);
    w.flag(rs.has_cached_normal);
    w.f64(rs.cached_normal);
    w.u64(a.eval_seed);
    w.u64(a.cached_streak);
    w.flag(a.stopped);
    w.flag(a.dead);
    w.u64(a.exchange_seq);
    w.floats(a.theta_pull);

    w.flag(a.controller.has_value());
    if (a.controller) {
      const rl::Controller::State cs = a.controller->save_state();
      w.floats(cs.flat);
      w.i64(cs.adam.step_count);
      w.u64(cs.adam.entries.size());
      for (const auto& e : cs.adam.entries) {
        w.str(e.key);
        w.u64(e.shape.size());
        for (const std::size_t d : e.shape) w.u64(d);
        w.floats(e.m);
        w.floats(e.v);
      }
    }

    w.u64(a.population.size());
    for (const auto& [arch, reward] : a.population) {
      put_arch(w, arch);
      w.f32(reward);
    }

    const exec::CachedEvaluator::State cache = a.cache->export_state();
    w.u64(cache.entries.size());
    for (const auto& [key, res] : cache.entries) {
      w.str(key);
      put_eval_result(w, res);
    }
    w.u64(cache.hits);
    w.u64(cache.misses);

    // The in-flight batch: its Completion sits in the queue above, and its
    // evaluations already ran on the host, so the resumed process harvests
    // these records without re-training anything.
    w.u64(a.rollouts.size());
    for (const rl::Rollout& ro : a.rollouts) {
      put_arch(w, ro.actions);
      w.floats(ro.log_probs);
      w.floats(ro.values);
    }
    w.u64(a.archs.size());
    for (const auto& arch : a.archs) put_arch(w, arch);
    w.u64(a.records.size());
    for (const EvalRecord& e : a.records) put_record(w, e);
  }
}

void SearchRun::restore(const ckpt::SnapshotHeader& header, ckpt::ByteReader& in) {
  // Prelude sanity (the fingerprint was validated by the caller already).
  const std::uint32_t strategy = in.u32();
  const std::uint64_t n = in.u64();
  const std::uint64_t w = in.u64();
  const std::uint64_t m = in.u64();
  if (strategy != static_cast<std::uint32_t>(config_.strategy) || n != N_ || w != W_ ||
      m != M_) {
    throw ckpt::SnapshotError(
        "snapshot: strategy/cluster shape does not match the resume config");
  }

  seq_ = in.u64();
  real_evals_ = in.u64();
  budget_exhausted_ = in.flag();
  a2c_round_time_ = in.f64();
  a2c_outstanding_ = in.u64();
  last_completion_ = in.f64();

  const std::uint64_t pending = in.u64();
  for (std::uint64_t i = 0; i < pending; ++i) {
    Completion c{};
    c.time = in.f64();
    c.seq = in.u64();
    c.agent = in.u64();
    queue_.push(c);
  }

  const std::uint64_t evals = in.u64();
  result_.evals.clear();
  result_.evals.reserve(evals);
  for (std::uint64_t i = 0; i < evals; ++i) result_.evals.push_back(get_record(in));
  result_.end_time = in.f64();
  result_.converged_early = in.flag();
  result_.cache_hits = in.u64();
  result_.shared_cache_hits = in.u64();
  result_.timeouts = in.u64();
  result_.unique_archs = in.u64();
  result_.ppo_updates = in.u64();
  result_.retries = in.u64();
  result_.exhausted = in.u64();
  result_.lost_results = in.u64();
  result_.crashed_workers = in.u64();
  result_.dead_agents = in.u64();
  result_.checkpoints_written = in.u64();
  result_.resumes = in.u64();
  result_.ladder_trainings = in.u64();
  result_.ladder_promotions = in.u64();
  result_.ladder_warm_starts = in.u64();
  result_.ladder_rung_hits = in.u64();

  exec::UtilizationMonitor::State ms;
  const std::uint64_t intervals = in.u64();
  ms.intervals.resize(intervals);
  for (auto& [start, end] : ms.intervals) {
    start = in.f64();
    end = in.f64();
  }
  ms.losses = in.doubles();
  ms.busy_seconds = in.f64();
  monitor_.import_state(ms);

  const bool has_ps = in.flag();
  if (has_ps != ps_.has_value()) {
    throw ckpt::SnapshotError("snapshot: parameter-server presence mismatch");
  }
  if (has_ps) {
    ParameterServer::State s;
    s.params = in.floats();
    const std::uint64_t rounds = in.u64();
    s.pending.resize(rounds);
    for (auto& d : s.pending) d = in.floats();
    const std::uint64_t submitted = in.u64();
    s.submitted.resize(submitted);
    for (auto& v : s.submitted) v = in.u8();
    const std::uint64_t active = in.u64();
    s.active.resize(active);
    for (auto& v : s.active) v = in.u8();
    s.active_count = in.u64();
    s.pending_count = in.u64();
    s.last_arrival = in.f64();
    const std::uint64_t recent = in.u64();
    s.recent.resize(recent);
    for (auto& d : s.recent) d = in.floats();
    s.recent_next = in.u64();
    s.updates_applied = in.u64();
    const std::uint64_t pulled = in.u64();
    s.pulled_version.resize(pulled);
    for (auto& v : s.pulled_version) v = in.u64();
    s.arrival_time = in.doubles();
    ps_->import_state(s);
  }

  for (AgentState& a : agents_) {
    tensor::RngState rs;
    for (int i = 0; i < 4; ++i) rs.s[i] = in.u64();
    rs.has_cached_normal = in.flag();
    rs.cached_normal = in.f64();
    a.rng.set_state(rs);
    a.eval_seed = in.u64();
    a.cached_streak = in.u64();
    a.stopped = in.flag();
    a.dead = in.flag();
    a.exchange_seq = in.u64();
    a.theta_pull = in.floats();

    const bool has_controller = in.flag();
    if (has_controller != a.controller.has_value()) {
      throw ckpt::SnapshotError("snapshot: controller presence mismatch");
    }
    if (has_controller) {
      rl::Controller::State cs;
      cs.flat = in.floats();
      cs.adam.step_count = static_cast<long>(in.i64());
      const std::uint64_t entries = in.u64();
      cs.adam.entries.resize(entries);
      for (auto& e : cs.adam.entries) {
        e.key = in.str();
        const std::uint64_t rank = in.u64();
        e.shape.resize(rank);
        for (auto& d : e.shape) d = in.u64();
        e.m = in.floats();
        e.v = in.floats();
      }
      a.controller->load_state(cs);
    }

    const std::uint64_t pop = in.u64();
    a.population.clear();
    for (std::uint64_t i = 0; i < pop; ++i) {
      space::ArchEncoding arch = get_arch(in);
      const float reward = in.f32();
      a.population.emplace_back(std::move(arch), reward);
    }

    exec::CachedEvaluator::State cache;
    const std::uint64_t cached = in.u64();
    cache.entries.resize(cached);
    for (auto& [key, res] : cache.entries) {
      key = in.str();
      res = get_eval_result(in);
    }
    cache.hits = in.u64();
    cache.misses = in.u64();
    a.cache->import_state(cache);

    const std::uint64_t rollouts = in.u64();
    a.rollouts.clear();
    a.rollouts.resize(rollouts);
    for (rl::Rollout& ro : a.rollouts) {
      ro.actions = get_arch(in);
      ro.log_probs = in.floats();
      ro.values = in.floats();
    }
    const std::uint64_t archs = in.u64();
    a.archs.clear();
    a.archs.resize(archs);
    for (auto& arch : a.archs) arch = get_arch(in);
    const std::uint64_t records = in.u64();
    a.records.clear();
    a.records.reserve(records);
    for (std::uint64_t i = 0; i < records; ++i) a.records.push_back(get_record(in));
  }
  in.require_done();

  // crash_at is recomputed, not restored: it is a pure function of the plan
  // and the wall-time limit. Crucially WITHOUT the bootstrap side effects —
  // the crash counters, capacity losses, and journal events all happened in
  // the original process and arrived here through the snapshot.
  if (fx_ != nullptr) {
    for (AgentState& agent : agents_) {
      agent.crash_at.assign(W_, std::numeric_limits<double>::infinity());
      for (std::size_t worker = 0; worker < W_; ++worker) {
        const double when = fx_->crash_time(agent.id, worker);
        if (when >= config_.wall_time_seconds) continue;
        agent.crash_at[worker] = when;
      }
    }
  }

  ++result_.resumes;
  if (inst_ && inst_->journal != nullptr) {
    inst_->journal->append(obs::JournalEventType::kRunResumed, header.virtual_time,
                           obs::kNoAgent,
                           {{"from_t", header.virtual_time},
                            {"prior_events", static_cast<double>(header.journal_events)},
                            {"ordinal", static_cast<double>(header.ordinal)},
                            {"wall_time_s", config_.wall_time_seconds},
                            {"strategy", static_cast<double>(config_.strategy)}});
  }
  journal_base_ = header.journal_events;
  init_checkpointing(header.virtual_time);
}

}  // namespace

SearchDriver::SearchDriver(const space::SearchSpace& space, const data::Dataset& dataset,
                           SearchConfig config, tensor::ThreadPool* pool)
    : space_(&space),
      dataset_(&dataset),
      config_(normalized(std::move(config))),
      pool_(pool) {}

SearchResult SearchDriver::run() {
  // Install the telemetry's profiler (if enabled) as the process-wide sink
  // for the whole search — bootstrap() already dispatches the first round of
  // evaluations, so the guard must cover it, not just the event loop. The
  // layers below SearchConfig (tensor kernels, nn, exec) record through the
  // installed sink; a null profiler makes the guard a no-op and leaves every
  // scope macro at one atomic load.
  obs::ProfilerInstallGuard prof_guard(
      config_.telemetry != nullptr ? config_.telemetry->profiler() : nullptr);
  SearchRun search(*space_, *dataset_, config_, pool_);
  search.bootstrap();
  return search.run();
}

SearchResult resume_search(const std::string& snapshot_path, const space::SearchSpace& space,
                           const data::Dataset& dataset, SearchConfig config,
                           tensor::ThreadPool* pool) {
  config = normalized(std::move(config));
  ckpt::Snapshot snap = ckpt::read_snapshot(snapshot_path);
  const std::string expected = config_fingerprint(config, space.name());
  if (snap.header.fingerprint != expected) {
    throw ckpt::SnapshotError("snapshot " + snapshot_path +
                              ": config fingerprint mismatch (snapshot was taken under \"" +
                              snap.header.fingerprint + "\", resume config is \"" + expected +
                              "\")");
  }
  if (snap.header.space_name != space.name()) {
    throw ckpt::SnapshotError("snapshot " + snapshot_path + ": search space mismatch (\"" +
                              snap.header.space_name + "\" vs \"" + space.name() + "\")");
  }
  SearchRun search(space, dataset, std::move(config), pool);
  ckpt::ByteReader reader(snap.payload);
  search.restore(snap.header, reader);
  obs::ProfilerInstallGuard prof_guard(
      config.telemetry != nullptr ? config.telemetry->profiler() : nullptr);
  return search.run();
}

}  // namespace ncnas::nas
